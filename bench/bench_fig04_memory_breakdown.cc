/**
 * @file
 * Figure 4: breakdown of baseline GPU memory usage by function —
 * weights, feature maps, gradient maps, workspace — and the fraction
 * consumed by feature maps.
 *
 * Paper anchors: the feature-map fraction grows monotonically with
 * network depth; feature extraction accounts for 81% of memory usage
 * on AlexNet and 96% on VGG-16 (256) (Section III).
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "dnn/cudnn_sim.hh"
#include "gpu/gpu_spec.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

void
report()
{
    dnn::CudnnSim cudnn(gpu::titanXMaxwell());

    stats::Table table("Figure 4: baseline memory usage breakdown");
    table.setColumns({"network", "weights (MB)", "feature maps (MB)",
                      "gradient maps (MB)", "workspace (MB)",
                      "feature maps (%)", "feature extraction (%)"});

    double alexnet_fe_pct = 0.0;
    double vgg256_fe_pct = 0.0;
    std::vector<double> fm_fractions;

    for (const auto &entry : net::fullSuite()) {
        auto network = entry.build();
        net::NetworkStats ns(*network, cudnn);
        auto algos = net::performanceOptimalAlgos(*network, cudnn);
        auto full = ns.baselineBreakdown(algos);
        auto managed = ns.managedBreakdown(algos);
        double fm_pct = 100.0 * full.featureMapFraction();
        double fe_pct =
            100.0 * double(managed.total()) / double(full.total());
        fm_fractions.push_back(fm_pct);
        if (entry.name == "AlexNet (128)")
            alexnet_fe_pct = fe_pct;
        if (entry.name == "VGG-16 (256)")
            vgg256_fe_pct = fe_pct;

        table.addRow({entry.name,
                      stats::Table::cell(toMiB(full.weights), 0),
                      stats::Table::cell(toMiB(full.featureMaps), 0),
                      stats::Table::cell(toMiB(full.gradientMaps), 0),
                      stats::Table::cell(toMiB(full.workspace), 0),
                      stats::Table::cell(fm_pct, 1),
                      stats::Table::cell(fe_pct, 1)});
    }
    table.print();

    // Monotonic growth of the feature-map share along the VGG depth
    // sweep occupies the last four rows (VGG-116..416).
    bool monotonic_deep = true;
    for (std::size_t i = fm_fractions.size() - 3;
         i < fm_fractions.size(); ++i) {
        monotonic_deep =
            monotonic_deep && fm_fractions[i] >= fm_fractions[i - 1];
    }

    stats::Comparison cmp("Figure 4");
    cmp.addNumeric("AlexNet (128): feature extraction share (%)", 81.0,
                   alexnet_fe_pct, 0.3);
    cmp.addNumeric("VGG-16 (256): feature extraction share (%)", 96.0,
                   vgg256_fe_pct, 0.15);
    cmp.addBool("feature-map fraction grows with depth (VGG sweep)",
                true, monotonic_deep);
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("fig04/breakdown_full_suite", [] {
        dnn::CudnnSim cudnn(gpu::titanXMaxwell());
        for (const auto &entry : net::fullSuite()) {
            auto network = entry.build();
            net::NetworkStats ns(*network, cudnn);
            auto algos = net::performanceOptimalAlgos(*network, cudnn);
            benchmark::DoNotOptimize(ns.baselineBreakdown(algos).total());
        }
    });
    return benchMain(argc, argv, report);
}
