/**
 * @file
 * Unit tests for the simulated CUDA runtime: stream FIFO semantics,
 * cross-stream overlap, event ordering, synchronization, contention and
 * power accounting. These are the execution semantics vDNN's
 * offload/prefetch correctness rests on (Section III-B, Figure 9).
 */

#include "gpu/runtime.hh"

#include "common/units.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::gpu;
using namespace vdnn::literals;

namespace
{

/** A spec with easy round numbers for hand-computed latencies. */
GpuSpec
testSpec()
{
    GpuSpec s;
    s.name = "test-gpu";
    s.peakFlops = 1.0e12;
    s.dramBandwidth = 100.0e9;
    s.dramCapacity = 1_GiB;
    s.pcie.dmaBandwidth = 10.0e9;
    s.pcie.rawBandwidth = 16.0e9;
    s.pcie.setupLatency = 0;
    return s;
}

KernelDesc
kernel(const std::string &name, TimeNs dur, Bytes dram_bytes = 0)
{
    KernelDesc k;
    k.name = name;
    k.duration = dur;
    k.dramBytes = dram_bytes;
    k.flops = 0.0;
    return k;
}

} // namespace

TEST(Runtime, KernelsOnOneStreamSerialize)
{
    Runtime rt(testSpec());
    auto s = rt.createStream("compute");
    rt.launchKernel(s, kernel("k1", 1000));
    rt.launchKernel(s, kernel("k2", 500));
    rt.synchronize(s);
    EXPECT_EQ(rt.now(), 1500);
    EXPECT_EQ(rt.computeBusyTime(), 1500);
}

TEST(Runtime, HostClockOnlyAdvancesOnSync)
{
    Runtime rt(testSpec());
    auto s = rt.createStream("compute");
    rt.launchKernel(s, kernel("k1", 1000));
    EXPECT_EQ(rt.now(), 0); // async launch does not block the host
    rt.synchronize(s);
    EXPECT_EQ(rt.now(), 1000);
}

TEST(Runtime, KernelAndCopyOverlapAcrossStreams)
{
    Runtime rt(testSpec(), /*enable_contention=*/false);
    auto sc = rt.createStream("compute");
    auto sm = rt.createStream("memory");
    // 10 GB/s link: 1 MiB takes ~104.8 us; kernel takes 200 us.
    rt.launchKernel(sc, kernel("conv", 200_us));
    rt.memcpyAsync(sm, 1_MiB, CopyDir::DeviceToHost, "offload");
    rt.synchronize(sc);
    rt.synchronize(sm);
    // Full overlap: the makespan equals the longer of the two.
    EXPECT_EQ(rt.now(), 200_us);
}

TEST(Runtime, CopyLongerThanKernelDeterminesMakespan)
{
    Runtime rt(testSpec(), false);
    auto sc = rt.createStream("compute");
    auto sm = rt.createStream("memory");
    rt.launchKernel(sc, kernel("conv", 50_us));
    rt.memcpyAsync(sm, 10_MiB, CopyDir::DeviceToHost, "offload");
    rt.deviceSynchronize();
    // 10 MiB at 10 GB/s = 1048.576 us > 50 us.
    EXPECT_GT(rt.now(), 1000_us);
    EXPECT_LT(rt.now(), 1100_us);
}

TEST(Runtime, TwoComputeStreamsShareOneEngine)
{
    // The GPU can only process one layer's kernel at a time (paper
    // Section II-B): two streams of kernels must serialize.
    Runtime rt(testSpec());
    auto s1 = rt.createStream("a");
    auto s2 = rt.createStream("b");
    rt.launchKernel(s1, kernel("k1", 1000));
    rt.launchKernel(s2, kernel("k2", 1000));
    rt.deviceSynchronize();
    EXPECT_EQ(rt.now(), 2000);
}

TEST(Runtime, OppositeDirectionCopiesOverlap)
{
    Runtime rt(testSpec(), false);
    auto s1 = rt.createStream("a");
    auto s2 = rt.createStream("b");
    rt.memcpyAsync(s1, 10_MiB, CopyDir::DeviceToHost, "off");
    rt.memcpyAsync(s2, 10_MiB, CopyDir::HostToDevice, "pre");
    rt.deviceSynchronize();
    TimeNs single = transferTimeNs(10_MiB, 10.0e9);
    EXPECT_EQ(rt.now(), single); // dual copy engines run concurrently
}

TEST(Runtime, SameDirectionCopiesSerialize)
{
    Runtime rt(testSpec(), false);
    auto s1 = rt.createStream("a");
    auto s2 = rt.createStream("b");
    rt.memcpyAsync(s1, 10_MiB, CopyDir::DeviceToHost, "off1");
    rt.memcpyAsync(s2, 10_MiB, CopyDir::DeviceToHost, "off2");
    rt.deviceSynchronize();
    TimeNs single = transferTimeNs(10_MiB, 10.0e9);
    EXPECT_EQ(rt.now(), 2 * single); // one D2H engine
}

TEST(Runtime, EventOrdersAcrossStreams)
{
    Runtime rt(testSpec());
    auto sc = rt.createStream("compute");
    auto sm = rt.createStream("memory");
    auto ev = rt.createEvent();
    // memory stream records after its copy; compute waits on the event
    // before its kernel: the kernel must start only after the copy.
    rt.memcpyAsync(sm, 10_MiB, CopyDir::HostToDevice, "prefetch");
    rt.recordEvent(sm, ev);
    rt.streamWaitEvent(sc, ev);
    rt.launchKernel(sc, kernel("bwd", 100_us));
    rt.deviceSynchronize();
    TimeNs copy = transferTimeNs(10_MiB, 10.0e9);
    EXPECT_EQ(rt.now(), copy + 100_us);
    EXPECT_TRUE(rt.eventFired(ev));
}

TEST(Runtime, WaitOnAlreadyFiredEventDoesNotBlock)
{
    Runtime rt(testSpec());
    auto s1 = rt.createStream("a");
    auto s2 = rt.createStream("b");
    auto ev = rt.createEvent();
    rt.recordEvent(s1, ev);
    rt.synchronize(s1);
    rt.streamWaitEvent(s2, ev);
    rt.launchKernel(s2, kernel("k", 10));
    rt.synchronize(s2);
    EXPECT_EQ(rt.now(), 10);
}

TEST(Runtime, BytesCopiedAccumulatePerDirection)
{
    Runtime rt(testSpec());
    auto s = rt.createStream("m");
    rt.memcpyAsync(s, 1_MiB, CopyDir::DeviceToHost);
    rt.memcpyAsync(s, 2_MiB, CopyDir::DeviceToHost);
    rt.memcpyAsync(s, 4_MiB, CopyDir::HostToDevice);
    rt.synchronize(s);
    EXPECT_EQ(rt.bytesCopied(CopyDir::DeviceToHost), 3_MiB);
    EXPECT_EQ(rt.bytesCopied(CopyDir::HostToDevice), 4_MiB);
}

TEST(Runtime, KernelLogRecordsTiming)
{
    Runtime rt(testSpec());
    rt.setKernelLog(true);
    auto s = rt.createStream("c");
    rt.launchKernel(s, kernel("conv_fwd", 1000, 50000));
    rt.launchKernel(s, kernel("pool_fwd", 500, 10000));
    rt.synchronize(s);
    ASSERT_EQ(rt.kernelLog().size(), 2u);
    EXPECT_EQ(rt.kernelLog()[0].name, "conv_fwd");
    EXPECT_EQ(rt.kernelLog()[0].start, 0);
    EXPECT_EQ(rt.kernelLog()[0].end, 1000);
    EXPECT_EQ(rt.kernelLog()[1].start, 1000);
    EXPECT_EQ(rt.kernelLog()[1].end, 1500);
    EXPECT_GT(rt.kernelLog()[0].dramBandwidth(), 0.0);
}

TEST(Runtime, ContentionStretchesBandwidthBoundKernel)
{
    // Kernel demands 95% of DRAM bandwidth; a concurrent copy steals
    // PCIe-rate bandwidth, so the kernel must stretch.
    GpuSpec spec = testSpec();
    Runtime with(spec, true);
    Runtime without(spec, false);
    for (Runtime *rt : {&with, &without}) {
        auto sc = rt->createStream("c");
        auto sm = rt->createStream("m");
        Bytes kernel_bytes = Bytes(0.95 * 100.0e9 * 1e-3); // 95 GB/s for 1 ms
        rt->launchKernel(sc, kernel("membound", 1_ms, kernel_bytes));
        rt->memcpyAsync(sm, 10_MiB, CopyDir::DeviceToHost, "off");
        rt->deviceSynchronize();
    }
    EXPECT_GT(with.now(), without.now());
    // Worst case bound from the paper: pcie/dram = 10/100 = 10% here.
    EXPECT_LT(double(with.now()), double(without.now()) * 1.11);
}

TEST(Runtime, ComputeBoundKernelUnaffectedByContention)
{
    GpuSpec spec = testSpec();
    Runtime rt(spec, true);
    auto sc = rt.createStream("c");
    auto sm = rt.createStream("m");
    // Demands only 10% of DRAM bandwidth: headroom absorbs the copy.
    Bytes kernel_bytes = Bytes(0.10 * 100.0e9 * 1e-3);
    rt.launchKernel(sc, kernel("flopbound", 1_ms, kernel_bytes));
    rt.memcpyAsync(sm, 1_MiB, CopyDir::DeviceToHost, "off");
    rt.synchronize(sc);
    EXPECT_EQ(rt.now(), 1_ms);
}

TEST(Runtime, PowerWindowAveragesAboveIdle)
{
    GpuSpec spec = testSpec();
    Runtime rt(spec);
    auto s = rt.createStream("c");
    KernelDesc k = kernel("k", 1_ms, 50_MiB);
    k.flops = 1.0e12 * 1e-3; // exactly peak rate for 1 ms
    rt.launchKernel(s, k);
    rt.synchronize(s);
    rt.finishPowerWindow();
    EXPECT_GT(rt.power().averagePowerW(), spec.idlePowerW);
    EXPECT_LE(rt.power().maxPowerW(),
              spec.idlePowerW + spec.computePowerW + spec.dramPowerW +
                  2 * spec.copyPowerW + 1.0);
    EXPECT_GT(rt.power().energyJ(), 0.0);
}

TEST(Runtime, CopiesRaiseMaxPower)
{
    GpuSpec spec = testSpec();
    Runtime base(spec), offload(spec);
    for (Runtime *rt : {&base, &offload}) {
        auto sc = rt->createStream("c");
        KernelDesc k = kernel("k", 1_ms, 10_MiB);
        k.flops = 0.5e12 * 1e-3;
        rt->launchKernel(sc, k);
        if (rt == &offload) {
            auto sm = rt->createStream("m");
            rt->memcpyAsync(sm, 5_MiB, CopyDir::DeviceToHost, "off");
        }
        rt->deviceSynchronize();
        rt->finishPowerWindow();
    }
    EXPECT_GT(offload.power().maxPowerW(), base.power().maxPowerW());
}

TEST(RuntimeDeath, DeadlockOnUnrecordedEventPanics)
{
    Runtime rt(testSpec());
    auto s = rt.createStream("c");
    auto ev = rt.createEvent();
    rt.streamWaitEvent(s, ev);
    rt.launchKernel(s, kernel("never", 10));
    EXPECT_DEATH(rt.synchronize(s), "deadlock");
}

TEST(Runtime, ManyAlternatingLayersMatchHandComputedMakespan)
{
    // vDNN's forward pass shape: kernel(n) on stream_compute overlapped
    // with offload(n) on stream_memory, sync at each layer boundary.
    // With kernel time 100us and offload time 60us the offloads hide
    // completely: makespan = N * 100us.
    Runtime rt(testSpec(), false);
    auto sc = rt.createStream("compute");
    auto sm = rt.createStream("memory");
    const int layers = 16;
    Bytes off_bytes = Bytes(10.0e9 * 60e-6); // 60 us at 10 GB/s
    for (int i = 0; i < layers; ++i) {
        rt.launchKernel(sc, kernel("fwd", 100_us));
        rt.memcpyAsync(sm, off_bytes, CopyDir::DeviceToHost, "off");
        rt.synchronize(sc);
        rt.synchronize(sm);
    }
    EXPECT_EQ(rt.now(), layers * 100_us);
}

TEST(Runtime, SlowOffloadStallsNextLayerExactlyLikeFigure9)
{
    // Figure 9: when OFF(n) outlives FWD(n), FWD(n+1) is delayed by the
    // residual offload time ("wasted time").
    Runtime rt(testSpec(), false);
    auto sc = rt.createStream("compute");
    auto sm = rt.createStream("memory");
    Bytes off_bytes = Bytes(10.0e9 * 150e-6); // 150 us at 10 GB/s
    rt.launchKernel(sc, kernel("fwd1", 100_us));
    rt.memcpyAsync(sm, off_bytes, CopyDir::DeviceToHost, "off1");
    rt.synchronize(sc);
    rt.synchronize(sm); // stall: offload is 50 us longer than compute
    rt.launchKernel(sc, kernel("fwd2", 100_us));
    rt.synchronize(sc);
    EXPECT_EQ(rt.now(), 250_us);
}

// --- PCIe fair-share between tenants ----------------------------------------

TEST(Runtime, ConcurrentOffloadersEachGetHalfTheLink)
{
    // Two tenants, one D2H stream each, saturating the link with
    // equal-size offloads: the fair-share arbiter must interleave the
    // grants so both drain together, each at ~half the DMA bandwidth.
    Runtime rt(testSpec(), /*enable_contention=*/false);
    rt.setKernelLog(true);
    StreamId a = rt.createStream("tenantA_mem");
    StreamId b = rt.createStream("tenantB_mem");
    rt.setStreamClient(a, 1);
    rt.setStreamClient(b, 2);

    const Bytes xfer = 100_MiB;
    const int per_tenant = 8;
    for (int i = 0; i < per_tenant; ++i)
        rt.memcpyAsync(a, xfer, CopyDir::DeviceToHost, "A");
    for (int i = 0; i < per_tenant; ++i)
        rt.memcpyAsync(b, xfer, CopyDir::DeviceToHost, "B");
    rt.deviceSynchronize();

    EXPECT_EQ(rt.bytesCopiedByClient(CopyDir::DeviceToHost, 1),
              Bytes(per_tenant) * xfer);
    EXPECT_EQ(rt.bytesCopiedByClient(CopyDir::DeviceToHost, 2),
              Bytes(per_tenant) * xfer);

    // Fairness over time: the tenants' last transfers complete within
    // one transfer time of each other (FIFO would drain all of A
    // before B even starts)...
    TimeNs one = TimeNs(double(xfer) / testSpec().pcie.dmaBandwidth *
                        1e9);
    TimeNs last_a = 0;
    TimeNs last_b = 0;
    for (const CopyRecord &c : rt.copyLog())
        (c.tag == "A" ? last_a : last_b) = c.end;
    EXPECT_LE(std::abs(double(last_a - last_b)), double(one) * 1.01);

    // ...so over the contended window each tenant achieved ~half the
    // link bandwidth.
    double window = toSeconds(std::min(last_a, last_b));
    double bw_a = double(Bytes(per_tenant) * xfer) / window;
    ASSERT_GT(window, 0.0);
    EXPECT_NEAR(bw_a / testSpec().pcie.dmaBandwidth, 0.5, 0.08);
}

TEST(Runtime, PcieWeightSkewsTheShareTwoToOne)
{
    Runtime rt(testSpec(), /*enable_contention=*/false);
    rt.setKernelLog(true);
    StreamId a = rt.createStream("heavy_mem");
    StreamId b = rt.createStream("light_mem");
    rt.setStreamClient(a, 1, /*weight=*/2.0);
    rt.setStreamClient(b, 2, /*weight=*/1.0);

    const Bytes xfer = 64_MiB;
    for (int i = 0; i < 12; ++i) {
        rt.memcpyAsync(a, xfer, CopyDir::DeviceToHost, "A");
        rt.memcpyAsync(b, xfer, CopyDir::DeviceToHost, "B");
    }
    rt.deviceSynchronize();

    // In the first 9 grants, the weight-2 tenant gets ~2 of every 3.
    int a_grants = 0;
    int seen = 0;
    for (const CopyRecord &c : rt.copyLog()) {
        if (seen++ >= 9)
            break;
        a_grants += c.tag == "A" ? 1 : 0;
    }
    EXPECT_GE(a_grants, 5);
    EXPECT_LE(a_grants, 7);
}
