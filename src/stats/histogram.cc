#include "stats/histogram.hh"

#include "common/logging.hh"

#include <algorithm>
#include <cmath>

namespace vdnn::stats
{

Histogram::Histogram(double lo_, double hi_, std::size_t buckets)
    : lo(lo_), hi(hi_), width((hi_ - lo_) / double(buckets))
{
    VDNN_ASSERT(hi_ > lo_, "histogram bounds inverted");
    VDNN_ASSERT(buckets >= 1, "histogram needs at least one bucket");
    counts.assign(buckets, 0);
}

void
Histogram::add(double v)
{
    ++total;
    if (v < lo) {
        ++under;
        return;
    }
    if (v >= hi) {
        ++over;
        return;
    }
    auto idx = std::size_t((v - lo) / width);
    if (idx >= counts.size())
        idx = counts.size() - 1; // fp edge case at the upper bound
    ++counts[idx];
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo + width * double(i);
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return lo + width * double(i + 1);
}

double
Histogram::quantile(double q) const
{
    VDNN_ASSERT(q >= 0.0 && q <= 1.0, "quantile %f out of range", q);
    if (total == 0)
        return lo;
    std::uint64_t target = std::uint64_t(std::ceil(q * double(total)));
    std::uint64_t seen = under;
    if (seen >= target)
        return lo;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= target)
            return bucketHigh(i);
    }
    return hi;
}

std::string
Histogram::render(std::size_t bar_width) const
{
    std::uint64_t peak = 1;
    for (auto c : counts)
        peak = std::max(peak, c);
    std::string out;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        auto bar = std::size_t(double(counts[i]) / double(peak) *
                               double(bar_width));
        out += strFormat("[%10.3g, %10.3g) |%s%s %llu\n", bucketLow(i),
                         bucketHigh(i), std::string(bar, '#').c_str(),
                         std::string(bar_width - bar, ' ').c_str(),
                         (unsigned long long)counts[i]);
    }
    if (under)
        out += strFormat("underflow: %llu\n", (unsigned long long)under);
    if (over)
        out += strFormat("overflow:  %llu\n", (unsigned long long)over);
    return out;
}

} // namespace vdnn::stats
