/**
 * @file
 * Figure 5: per-layer memory usage of VGG-16 (256) during forward
 * propagation — feature maps + workspace (left axis) against weights
 * (right axis), for all CONV and FC layers.
 *
 * Paper anchors: (1) intermediate feature maps and workspace are an
 * order of magnitude larger than weights in the feature extraction
 * layers; (2) the intermediate data is concentrated in the feature
 * extraction layers; (3) weights are concentrated in the classifier;
 * (4) per-layer usage is far below the 28 GB network-wide allocation.
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "dnn/cudnn_sim.hh"
#include "gpu/gpu_spec.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

void
report()
{
    dnn::CudnnSim cudnn(gpu::titanXMaxwell());
    auto network = net::buildVgg16(256);
    net::NetworkStats ns(*network, cudnn);
    auto algos = net::performanceOptimalAlgos(*network, cudnn);

    stats::Table table(
        "Figure 5: VGG-16 (256) per-layer forward memory usage");
    table.setColumns({"layer", "X (MB)", "Y (MB)", "workspace (MB)",
                      "fmaps+WS (MB)", "weights (MB)"});

    Bytes max_fe_intermediate = 0;    // feature extraction fmaps+WS
    Bytes max_fe_weights = 0;         // feature extraction weights
    Bytes classifier_weights = 0;     // summed classifier weights
    Bytes fe_weights_total = 0;
    Bytes max_layer_total = 0;

    for (const auto &row : ns.perLayerForward(algos)) {
        Bytes intermediates = row.x + row.y + row.workspace;
        table.addRow({row.name, stats::Table::cell(toMiB(row.x), 0),
                      stats::Table::cell(toMiB(row.y), 0),
                      stats::Table::cell(toMiB(row.workspace), 0),
                      stats::Table::cell(toMiB(intermediates), 0),
                      stats::Table::cell(toMiB(row.weights), 1)});
        bool classifier = network->node(row.id).classifier;
        if (!classifier) {
            max_fe_intermediate =
                std::max(max_fe_intermediate, intermediates);
            max_fe_weights = std::max(max_fe_weights, row.weights);
            fe_weights_total += row.weights;
        } else {
            classifier_weights += row.weights;
        }
        max_layer_total =
            std::max(max_layer_total, intermediates + row.weights);
    }
    table.print();

    Bytes baseline_total = ns.baselineBreakdown(algos).total();

    stats::Comparison cmp("Figure 5");
    cmp.addBool("feature maps+WS >= 10x weights in extraction layers",
                true, max_fe_intermediate >= 10 * max_fe_weights);
    cmp.addBool("weights concentrated in the classifier", true,
                classifier_weights > 4 * fe_weights_total);
    cmp.addBool("max per-layer usage far below the 28 GB allocation",
                true, max_layer_total * 2 < baseline_total);
    cmp.addInfo("largest per-layer footprint", "(well under total)",
                strFormat("%.0f MB of %.0f MB total",
                          toMiB(max_layer_total),
                          toMiB(baseline_total)));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("fig05/per_layer_analysis_vgg16_256", [] {
        dnn::CudnnSim cudnn(gpu::titanXMaxwell());
        auto network = net::buildVgg16(256);
        net::NetworkStats ns(*network, cudnn);
        auto algos = net::performanceOptimalAlgos(*network, cudnn);
        benchmark::DoNotOptimize(ns.perLayerForward(algos).size());
    });
    return benchMain(argc, argv, report);
}
