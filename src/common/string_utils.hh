/**
 * @file
 * Small string helpers used by the table / report printers.
 */

#ifndef VDNN_COMMON_STRING_UTILS_HH
#define VDNN_COMMON_STRING_UTILS_HH

#include <string>
#include <vector>

namespace vdnn
{

/** Left-pad @p s with spaces to at least @p width characters. */
std::string padLeft(const std::string &s, size_t width);

/** Right-pad @p s with spaces to at least @p width characters. */
std::string padRight(const std::string &s, size_t width);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

} // namespace vdnn

#endif // VDNN_COMMON_STRING_UTILS_HH
