/**
 * @file
 * Tests for the vDNN memory manager: the buffer residence state
 * machine, managed-vs-total accounting, host-copy retention and
 * eviction, and the offload traffic counters.
 */

#include "core/memory_manager.hh"

#include "common/units.hh"
#include "gpu/runtime.hh"
#include "net/builders.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::core;
using namespace vdnn::literals;

class MemoryManagerTest : public ::testing::Test
{
  protected:
    MemoryManagerTest()
        : rt(gpu::titanXMaxwell()), mm(rt), net(net::buildTinyCnn(4))
    {}

    gpu::Runtime rt;
    MemoryManager mm;
    std::unique_ptr<net::Network> net;
};

TEST_F(MemoryManagerTest, PoolSizedToDeviceCapacity)
{
    EXPECT_EQ(mm.pool().capacity(),
              gpu::titanXMaxwell().dramCapacity);
    EXPECT_EQ(mm.host().capacity(), gpu::titanXMaxwell().hostCapacity);
}

TEST_F(MemoryManagerTest, BufferLifecycleDeviceOnly)
{
    net::BufferId b = net->inputBuffer();
    EXPECT_EQ(mm.residence(b), Residence::Unallocated);
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    EXPECT_EQ(mm.residence(b), Residence::Device);
    EXPECT_EQ(mm.pool().usedBytes(),
              ((net->buffer(b).bytes() + 511) / 512) * 512);
    mm.releaseBuffer(*net, b);
    EXPECT_EQ(mm.residence(b), Residence::Unallocated);
    EXPECT_EQ(mm.pool().usedBytes(), 0);
}

TEST_F(MemoryManagerTest, OffloadStateMachine)
{
    net::BufferId b = net->inputBuffer();
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    ASSERT_TRUE(mm.beginOffload(*net, b));
    EXPECT_EQ(mm.residence(b), Residence::Offloading);
    // Device copy still allocated while the DMA is in flight.
    EXPECT_GT(mm.pool().usedBytes(), 0);
    EXPECT_GT(mm.host().usedBytes(), 0);
    mm.finishOffload(*net, b);
    EXPECT_EQ(mm.residence(b), Residence::Host);
    EXPECT_EQ(mm.pool().usedBytes(), 0); // device copy released
    EXPECT_GT(mm.host().usedBytes(), 0);
}

TEST_F(MemoryManagerTest, PrefetchRestoresDeviceAndKeepsHostCopy)
{
    net::BufferId b = net->inputBuffer();
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    ASSERT_TRUE(mm.beginOffload(*net, b));
    mm.finishOffload(*net, b);

    ASSERT_TRUE(mm.beginPrefetch(*net, b));
    EXPECT_EQ(mm.residence(b), Residence::Prefetching);
    mm.finishPrefetch(b);
    EXPECT_EQ(mm.residence(b), Residence::Device);
    // Host copy retained: eviction stays free.
    EXPECT_TRUE(mm.hostCopyValid(b));
    EXPECT_GT(mm.host().usedBytes(), 0);
}

TEST_F(MemoryManagerTest, EvictionDropsDeviceCopyForFree)
{
    net::BufferId b = net->inputBuffer();
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    ASSERT_TRUE(mm.beginOffload(*net, b));
    mm.finishOffload(*net, b);
    ASSERT_TRUE(mm.beginPrefetch(*net, b));
    mm.finishPrefetch(b);

    Bytes offload_before = mm.offloadedBytes();
    mm.evictToHost(*net, b);
    EXPECT_EQ(mm.residence(b), Residence::Host);
    EXPECT_EQ(mm.pool().usedBytes(), 0);
    // Eviction is not a new offload: no transfer, no traffic counted.
    EXPECT_EQ(mm.offloadedBytes(), offload_before);
    // And it can be prefetched again.
    ASSERT_TRUE(mm.beginPrefetch(*net, b));
    mm.finishPrefetch(b);
    EXPECT_EQ(mm.residence(b), Residence::Device);
}

TEST_F(MemoryManagerTest, FinalReleaseDropsRetainedHostCopy)
{
    net::BufferId b = net->inputBuffer();
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    ASSERT_TRUE(mm.beginOffload(*net, b));
    mm.finishOffload(*net, b);
    ASSERT_TRUE(mm.beginPrefetch(*net, b));
    mm.finishPrefetch(b);
    mm.releaseBuffer(*net, b);
    EXPECT_EQ(mm.residence(b), Residence::Unallocated);
    EXPECT_EQ(mm.host().usedBytes(), 0);
    EXPECT_FALSE(mm.hostCopyValid(b));
}

TEST_F(MemoryManagerTest, OffloadTrafficAccumulates)
{
    net::BufferId b = net->inputBuffer();
    Bytes size = net->buffer(b).bytes();
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(mm.allocBuffer(*net, b));
        ASSERT_TRUE(mm.beginOffload(*net, b));
        mm.finishOffload(*net, b);
        mm.dropHostCopy(b);
    }
    EXPECT_EQ(mm.offloadedBytes(), 3 * size);
}

TEST_F(MemoryManagerTest, ManagedAccountingExcludesClassifier)
{
    // TinyCNN's fc buffers are classifier buffers.
    net::BufferId managed_buf = net->inputBuffer();
    net::BufferId classifier_buf = -1;
    for (net::BufferId b = 0; b < net::BufferId(net->numBuffers()); ++b) {
        if (net->buffer(b).classifier) {
            classifier_buf = b;
            break;
        }
    }
    ASSERT_NE(classifier_buf, -1);

    ASSERT_TRUE(mm.allocBuffer(*net, managed_buf));
    Bytes managed_after_first = mm.managedUsage();
    EXPECT_GT(managed_after_first, 0);
    ASSERT_TRUE(mm.allocBuffer(*net, classifier_buf));
    // The classifier buffer raises total but not managed usage.
    EXPECT_EQ(mm.managedUsage(), managed_after_first);
    EXPECT_GT(mm.pool().usedBytes(), managed_after_first);
}

TEST_F(MemoryManagerTest, ForceReleaseFromEveryState)
{
    net::BufferId b = net->inputBuffer();
    // Device.
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    mm.forceRelease(*net, b);
    EXPECT_EQ(mm.residence(b), Residence::Unallocated);
    // Offloading.
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    ASSERT_TRUE(mm.beginOffload(*net, b));
    mm.forceRelease(*net, b);
    EXPECT_EQ(mm.residence(b), Residence::Unallocated);
    // Host.
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    ASSERT_TRUE(mm.beginOffload(*net, b));
    mm.finishOffload(*net, b);
    mm.forceRelease(*net, b);
    EXPECT_EQ(mm.residence(b), Residence::Unallocated);
    // Prefetching.
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    ASSERT_TRUE(mm.beginOffload(*net, b));
    mm.finishOffload(*net, b);
    ASSERT_TRUE(mm.beginPrefetch(*net, b));
    mm.forceRelease(*net, b);
    EXPECT_EQ(mm.residence(b), Residence::Unallocated);
    // Everything balanced.
    EXPECT_EQ(mm.pool().usedBytes(), 0);
    EXPECT_EQ(mm.host().usedBytes(), 0);
}

TEST_F(MemoryManagerTest, UsageTrackersFollowSimulatedTime)
{
    net::BufferId b = net->inputBuffer();
    // Advance simulated time between allocations via a dummy kernel.
    auto s = rt.createStream("s");
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    gpu::KernelDesc k;
    k.name = "spin";
    k.duration = 1000;
    rt.launchKernel(s, k);
    rt.synchronize(s);
    mm.releaseBuffer(*net, b);
    rt.launchKernel(s, k);
    rt.synchronize(s);
    mm.finishTracking();
    Bytes size = ((net->buffer(b).bytes() + 511) / 512) * 512;
    EXPECT_EQ(mm.totalTracker().peakBytes(), size);
    // Allocated for half the 2000 ns window.
    EXPECT_EQ(mm.totalTracker().averageBytes(), size / 2);
}

TEST_F(MemoryManagerTest, DeviceOomReturnsFalseAndKeepsState)
{
    gpu::GpuSpec tiny = gpu::titanXMaxwell();
    tiny.dramCapacity = 1_MiB;
    gpu::Runtime rt2(tiny);
    MemoryManager mm2(rt2);
    auto big = net::buildTinyCnn(64, 64); // input exceeds 1 MiB
    EXPECT_FALSE(mm2.allocBuffer(*big, big->inputBuffer()));
    EXPECT_EQ(mm2.residence(big->inputBuffer()),
              Residence::Unallocated);
    EXPECT_EQ(mm2.pool().usedBytes(), 0);
}

TEST_F(MemoryManagerTest, HostExhaustionFailsOffloadGracefully)
{
    gpu::GpuSpec spec = gpu::titanXMaxwell();
    spec.hostCapacity = 1_KiB;
    gpu::Runtime rt2(spec);
    MemoryManager mm2(rt2);
    net::BufferId b = net->inputBuffer();
    ASSERT_TRUE(mm2.allocBuffer(*net, b));
    EXPECT_FALSE(mm2.beginOffload(*net, b));
    // Buffer remains device resident and usable.
    EXPECT_EQ(mm2.residence(b), Residence::Device);
}

TEST_F(MemoryManagerTest, DoubleAllocPanics)
{
    net::BufferId b = net->inputBuffer();
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    EXPECT_DEATH(mm.allocBuffer(*net, b), "already materialized");
}

TEST_F(MemoryManagerTest, OffloadOfNonResidentPanics)
{
    EXPECT_DEATH(mm.beginOffload(*net, net->inputBuffer()),
                 "non-resident");
}

TEST_F(MemoryManagerTest, EvictWithoutHostCopyPanics)
{
    net::BufferId b = net->inputBuffer();
    ASSERT_TRUE(mm.allocBuffer(*net, b));
    EXPECT_DEATH(mm.evictToHost(*net, b), "evict");
}
