#include "core/training_session.hh"

#include "common/logging.hh"
#include "common/units.hh"
#include "dnn/cudnn_sim.hh"

namespace vdnn::core
{

SessionConfig::SessionConfig() : gpu(gpu::titanXMaxwell()) {}

std::string
sessionConfigName(const SessionConfig &config)
{
    std::string name = transferPolicyName(config.policy);
    if (config.policy != TransferPolicy::Dynamic) {
        name += " ";
        name += algoModeName(config.algoMode);
    }
    if (config.oracle)
        name += " [oracle]";
    return name;
}

SessionResult
runSession(const net::Network &net, SessionConfig config)
{
    VDNN_ASSERT(config.iterations >= 1, "need at least one iteration");

    SessionResult result;
    result.network = net.name();
    result.configName = sessionConfigName(config);

    gpu::GpuSpec spec = config.gpu;
    if (config.oracle) {
        // Hypothetical GPU with enough memory to hold the entire DNN.
        spec.dramCapacity = Bytes(1024) * 1024 * 1024 * 1024;
        spec.name += " (oracle)";
    }

    dnn::CudnnSim cudnn(spec);

    // Resolve the plan.
    Plan plan;
    if (config.policy == TransferPolicy::Dynamic) {
        DynamicPolicy dyn(net, cudnn, spec, config.exec,
                          config.contention);
        DynamicResult derived = dyn.derive();
        result.trials = derived.trials;
        plan = derived.plan;
        if (!derived.trainable) {
            result.trainable = false;
            result.failReason =
                result.trials.empty()
                    ? "untrainable"
                    : result.trials.front().failReason;
            result.plan = plan;
            return result;
        }
    } else {
        plan = makeStaticPlan(net, cudnn, config.policy, config.algoMode);
    }
    result.plan = plan;

    // Execute.
    gpu::Runtime rt(spec, config.contention);
    rt.setKernelLog(config.kernelLog);
    MemoryManager mm(rt, config.keepTimeline);
    Executor ex(net, cudnn, rt, mm, plan, config.exec);

    if (!ex.setup()) {
        result.trainable = false;
        result.failReason = strFormat(
            "setup OOM ('%s', requested %s, largest free block %s)",
            mm.pool().lastOom().tag.c_str(),
            formatBytes(mm.pool().lastOom().requested).c_str(),
            formatBytes(mm.pool().lastOom().largestFree).c_str());
        return result;
    }

    IterationResult last;
    for (int i = 0; i < config.iterations; ++i) {
        last = ex.runIteration();
        if (!last.ok) {
            result.trainable = false;
            result.failReason = last.failReason;
            ex.teardown();
            return result;
        }
        result.offloadedBytesPerIter = last.offloadedBytes;
        result.offloads = last.offloads;
        result.prefetches = last.prefetches;
        result.onDemandFetches = last.onDemandFetches;
    }

    // Teardown precedes window close so the tracker never records
    // after finish(); the release happens at the final timestamp and
    // adds no weighted time.
    ex.teardown();
    mm.finishTracking();
    rt.finishPowerWindow();

    result.trainable = true;
    result.iterationTime = last.makespan();
    result.featureExtractionTime = last.featureExtractionTime();
    result.classifierTime = last.classifierTime;
    result.transferStallTime = last.transferStallTime;
    result.layerTimings = last.layers;

    result.maxTotalUsage = mm.totalTracker().peakBytes();
    result.avgTotalUsage = mm.totalTracker().averageBytes();
    result.maxManagedUsage = mm.managedTracker().peakBytes();
    result.avgManagedUsage = mm.managedTracker().averageBytes();
    result.persistentBytes = ex.persistentBytes();

    result.hostPeakBytes = mm.host().peakUsage();
    result.avgPowerW = rt.power().averagePowerW();
    result.maxPowerW = rt.power().maxPowerW();

    if (config.kernelLog)
        result.kernels = rt.kernelLog();
    if (config.keepTimeline) {
        result.totalTimeline = mm.totalTracker().signal().timeline();
        result.managedTimeline = mm.managedTracker().signal().timeline();
    }

    return result;
}

} // namespace vdnn::core
