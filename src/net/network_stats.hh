/**
 * @file
 * Analytic network-level memory accounting.
 *
 * Computes, without running the simulator, the quantities behind the
 * paper's motivation figures:
 *
 *  - Fig. 1: baseline network-wide allocation size and the maximum
 *    fraction of it any single layer's computation actually touches;
 *  - Fig. 4: breakdown into weights / feature maps / gradient maps /
 *    workspace;
 *  - Fig. 5: per-layer forward memory usage.
 *
 * The baseline model reproduces the improved Torch-style policy of
 * Section IV-A: network-wide allocation of all feature maps and
 * weights, the minimal number of gradient-map buffers (reused across
 * layers as backward proceeds), and a single workspace buffer sized to
 * the maximum requirement of any layer.
 */

#ifndef VDNN_NET_NETWORK_STATS_HH
#define VDNN_NET_NETWORK_STATS_HH

#include "common/types.hh"
#include "dnn/cudnn_sim.hh"
#include "net/network.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace vdnn::net
{

/** Per-layer convolution algorithm assignment (indexed by LayerId;
 *  entries for non-CONV layers are ignored). */
using AlgoAssignment = std::vector<dnn::ConvAlgo>;

/** Every layer uses the memory-optimal IMPLICIT_GEMM ("(m)"). */
AlgoAssignment memoryOptimalAlgos(const Network &net);

/** Every CONV layer uses its fastest applicable algorithm ("(p)"). */
AlgoAssignment performanceOptimalAlgos(const Network &net,
                                       const dnn::CudnnSim &cudnn);

/** Functional breakdown of a network-wide (baseline) allocation. */
struct MemoryBreakdown
{
    Bytes weights = 0;      ///< W + dW of all layers
    Bytes featureMaps = 0;  ///< input batch + every buffer's Y
    Bytes gradientMaps = 0; ///< reused dX/dY buffers (peak concurrent)
    Bytes workspace = 0;    ///< single shared WS (max over layers)

    Bytes
    total() const
    {
        return weights + featureMaps + gradientMaps + workspace;
    }

    double
    featureMapFraction() const
    {
        return total() > 0 ? double(featureMaps) / double(total()) : 0.0;
    }
};

/** One row of the Fig. 5 style per-layer usage chart. */
struct LayerMemoryRow
{
    LayerId id = -1;
    std::string name;
    dnn::LayerKind kind = dnn::LayerKind::Conv;
    Bytes x = 0;       ///< input feature maps read
    Bytes y = 0;       ///< output feature maps written (0 if in-place)
    Bytes workspace = 0;
    Bytes weights = 0; ///< W (excluding dW)
};

class NetworkStats
{
  public:
    NetworkStats(const Network &net, const dnn::CudnnSim &cudnn);

    /** Full-network baseline breakdown under @p algos. */
    MemoryBreakdown baselineBreakdown(const AlgoAssignment &algos) const;

    /** Baseline breakdown restricted to the vDNN-managed region
     *  (feature-extraction layers + input + their gradients + WS). */
    MemoryBreakdown managedBreakdown(const AlgoAssignment &algos) const;

    /** Constant classifier footprint (weights+grads+activations). */
    Bytes classifierBytes() const;

    /** Scope selector for gradient accounting. */
    enum class GradScope : std::uint8_t { All, Managed, Classifier };

    /**
     * Peak concurrent gradient-map bytes when gradient buffers are
     * allocated on demand and released as soon as their consumer
     * finishes (the "minimally required number ... reused" policy).
     * @param managed_only count only feature-extraction gradients
     */
    Bytes peakGradientBytes(bool managed_only = false) const;

    /** peakGradientBytes with an explicit scope. */
    Bytes peakGradientBytesScoped(GradScope scope) const;

    /** Largest per-layer workspace requirement under @p algos. */
    Bytes maxWorkspaceBytes(const AlgoAssignment &algos,
                            bool managed_only = false) const;

    /** Fig. 5 rows (CONV and FC layers, forward direction). */
    std::vector<LayerMemoryRow>
    perLayerForward(const AlgoAssignment &algos) const;

    /**
     * The largest memory any single layer's forward or backward
     * computation touches (its X, Y, gradients, weights, workspace) —
     * the numerator of Fig. 1's "maximum usage (%)".
     */
    Bytes maxLayerWiseUsage(const AlgoAssignment &algos) const;

    const Network &network() const { return net; }

  private:
    Bytes layerWorkspace(LayerId id, const AlgoAssignment &algos) const;

    const Network &net;
    const dnn::CudnnSim &cudnn;
};

} // namespace vdnn::net

#endif // VDNN_NET_NETWORK_STATS_HH
