/**
 * @file
 * Page-migration (UVM-style) transfer model.
 *
 * Section II-C argues against page-migration based virtualization: prior
 * work measured 20-50 us to page in a single 4 KB page (CPU interrupt,
 * page-table update, TLB shootdown, transfer), i.e. only 80-200 MB/s of
 * PCIe utilization versus 12.8 GB/s for DMA memcpy. This model lets the
 * bench quantify the training-time blow-up of relying on paging.
 */

#ifndef VDNN_INTERCONNECT_PAGE_MIGRATION_HH
#define VDNN_INTERCONNECT_PAGE_MIGRATION_HH

#include "common/types.hh"

namespace vdnn::ic
{

struct PageMigrationSpec
{
    /** Virtual memory page size. */
    Bytes pageSize = 4096;
    /** Best-case per-page handling cost (20 us in [34]). */
    TimeNs perPageCostMin = 20000;
    /** Worst-case per-page handling cost (50 us in [34]). */
    TimeNs perPageCostMax = 50000;
};

class PageMigrationModel
{
  public:
    explicit PageMigrationModel(PageMigrationSpec spec = {});

    /**
     * Time to migrate @p bytes page-by-page.
     * @param pessimistic use the worst-case per-page cost
     */
    TimeNs transferTime(Bytes bytes, bool pessimistic = false) const;

    /** Effective bandwidth (bytes/sec) of page-wise migration. */
    double effectiveBandwidth(bool pessimistic = false) const;

    /** Number of pages needed to back @p bytes. */
    std::int64_t pagesFor(Bytes bytes) const;

    const PageMigrationSpec &spec() const { return pmSpec; }

  private:
    PageMigrationSpec pmSpec;
};

} // namespace vdnn::ic

#endif // VDNN_INTERCONNECT_PAGE_MIGRATION_HH
