/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include "sim/event_queue.hh"

#include <gtest/gtest.h>

#include <vector>

using namespace vdnn;
using vdnn::sim::EventQueue;

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(EventQueue, ClockAdvancesWithEvents)
{
    EventQueue eq;
    TimeNs seen = -1;
    eq.schedule(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42);
    EXPECT_EQ(eq.now(), 42);
}

TEST(EventQueue, CallbackCanScheduleMore)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&]() {
        ++count;
        if (count < 5)
            eq.scheduleAfter(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    TimeNs inner = -1;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { inner = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(inner, 150);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.schedule(10, [&] { ran = true; });
    eq.deschedule(id);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, DescheduleOneOfMany)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    auto id = eq.schedule(20, [&] { order.push_back(2); });
    eq.schedule(30, [&] { order.push_back(3); });
    eq.deschedule(id);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.schedule(30, [&] { order.push_back(3); });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), 20);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWithNoEvents)
{
    EventQueue eq;
    EXPECT_EQ(eq.runUntil(500), 0u);
    EXPECT_EQ(eq.now(), 500);
}

TEST(EventQueue, ExecutedCounterAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 4; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 4u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}
