/**
 * @file
 * ProgramVerifier: dataflow verification (abstract interpretation) of a
 * compiled IterationProgram.
 *
 * The pass walks the op stream once, tracking every feature-map buffer
 * through an abstract residency lattice that refines the runtime's
 * Residence state machine (check the D2H/H2D directions apart and add a
 * terminal Released state):
 *
 *     Unallocated -> Resident -> OffloadInFlight -> Host
 *                       ^                            |
 *                       +------- FetchInFlight <-----+
 *     Resident -> Released                (terminal within an iteration)
 *
 * alongside the forward refcounts, the live gradient set, the current
 * layer's workspace, and the pending (un-joined) DMA lists each Sync op
 * drains — i.e. exactly the state the Executor's op bodies mutate, but
 * interpreted symbolically with no device, pool or clock behind it.
 *
 * Proven properties (each violation is a distinct DiagCode):
 *  - no op touches an Unallocated/Released buffer (UseUnallocated);
 *  - no kernel reads offloaded-and-not-fetched data (ReadOffloaded);
 *  - offloads are issued once, by the last forward reader, never on
 *    static buffers (DoubleOffload);
 *  - releases balance allocations — no refcount underflow or release
 *    of a Released buffer (DoubleRelease), no leaked feature map,
 *    gradient or workspace at EndIteration (LeakedAlloc), no host copy
 *    stranded by an offload-without-fetch (HostLeak);
 *  - every DMA is joined by its layer's Sync / the Barrier / the final
 *    drain (UnjoinedDma), and with syncAtLayerBoundary no Release runs
 *    under its layer's un-joined DMAs (SyncOrder);
 *  - backward kernels have their dY gradient (MissingGradient) and
 *    conv kernels their workspace (MissingWorkspace) in place;
 *  - the stream is well-formed: one BeginIteration first, one
 *    EndIteration last, one Barrier between the phases, canonical
 *    per-layer op order (BadStructure).
 *
 * The walk is sound for peak accounting: asynchronous releases (the
 * syncAtLayerBoundary=false ablation) are nondeterministic at run time,
 * so the verifier retires them only at the Barrier, making
 * peakTransientBytes an upper bound on the per-iteration transient
 * device bytes (the admissibility input PlanVerifier compares against
 * the granted share). Prefetch issue is simulated with the real
 * findPrefetchLayer (Fig. 10) on the verifier's own PrefetchState, so
 * the abstract DMA schedule matches the runtime's deterministic one.
 */

#ifndef VDNN_CHECK_PROGRAM_VERIFIER_HH
#define VDNN_CHECK_PROGRAM_VERIFIER_HH

#include "check/check.hh"
#include "core/executor.hh"
#include "core/iteration_program.hh"
#include "core/planner.hh"
#include "net/network.hh"

#include <cstdint>

namespace vdnn::check
{

/** Abstract residency of one buffer at one program point. */
enum class AbsResidency : std::uint8_t
{
    Unallocated,    ///< never materialized (or re-usable next iteration)
    Resident,       ///< device copy valid, no transfer in flight
    OffloadInFlight,///< device copy valid, D2H DMA not yet joined
    Host,           ///< device copy released, pinned host copy valid
    FetchInFlight,  ///< H2D DMA issued, device copy not yet usable
    Released,       ///< released this iteration (terminal)
};

const char *absResidencyName(AbsResidency r);

/**
 * Verify @p prog against the (net, plan, cfg) triple it was compiled
 * from. Pure function of its inputs: no runtime, pool or clock is
 * consulted, so it can run before any device state exists.
 */
CheckResult verifyProgram(const net::Network &net,
                          const core::MemoryPlan &plan,
                          const core::ExecutorConfig &cfg,
                          const core::IterationProgram &prog);

} // namespace vdnn::check

#endif // VDNN_CHECK_PROGRAM_VERIFIER_HH
