/**
 * @file
 * vDNN memory-transfer and algorithm policies (Section III-C).
 *
 * Transfer policies decide which layers offload their input feature
 * maps to pinned host memory:
 *  - Baseline:    no offloading; network-wide static allocation.
 *  - OffloadAll:  vDNN_all — every (managed) layer offloads its X.
 *  - OffloadConv: vDNN_conv — only CONV layers offload their X.
 *  - Dynamic:     vDNN_dyn — offload set and per-layer algorithms are
 *                 chosen at runtime by profiling passes.
 *
 * Algorithm modes pick the convolution algorithm per CONV layer:
 *  - MemoryOptimal (m): IMPLICIT_GEMM everywhere (zero workspace);
 *  - PerformanceOptimal (p): fastest algorithm regardless of workspace;
 *  - PerLayer: an explicit per-layer assignment (used by vDNN_dyn).
 */

#ifndef VDNN_CORE_POLICY_HH
#define VDNN_CORE_POLICY_HH

#include "dnn/cudnn_sim.hh"
#include "net/network.hh"
#include "net/network_stats.hh"

#include <string>
#include <vector>

namespace vdnn::core
{

enum class TransferPolicy
{
    Baseline,
    OffloadAll,
    OffloadConv,
    Dynamic,
};

enum class AlgoMode
{
    MemoryOptimal,
    PerformanceOptimal,
    PerLayer,
};

const char *transferPolicyName(TransferPolicy p);
const char *algoModeName(AlgoMode m);

/**
 * A fully resolved execution plan: which buffers offload and which
 * algorithm each CONV layer runs. Static policies resolve directly;
 * vDNN_dyn produces one through its profiling passes.
 */
struct Plan
{
    TransferPolicy policy = TransferPolicy::Baseline;
    AlgoMode algoMode = AlgoMode::MemoryOptimal;
    /** Per-buffer offload decision, indexed by BufferId. */
    std::vector<bool> offloadBuffer;
    /** Per-layer algorithm, indexed by LayerId. */
    net::AlgoAssignment algos;
    /** Human-readable description of how the plan was derived. */
    std::string provenance;
};

/**
 * Resolve a static policy into a Plan.
 *
 * Offload eligibility (Section III-A): a buffer may be offloaded only
 * if it is reused during backward propagation, it belongs to the
 * vDNN-managed (feature extraction) region, and the offload is issued
 * by its last forward consumer (refcount rule). OffloadAll offloads
 * every eligible buffer; OffloadConv only those whose last consumer is
 * a CONV layer (those offloads hide behind long CONV kernels).
 */
Plan makeStaticPlan(const net::Network &net, const dnn::CudnnSim &cudnn,
                    TransferPolicy policy, AlgoMode mode);

/** Is @p buffer eligible for offload at all (policy-independent)? */
bool offloadEligible(const net::Network &net, net::BufferId buffer);

} // namespace vdnn::core

#endif // VDNN_CORE_POLICY_HH
