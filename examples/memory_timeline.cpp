/**
 * @file
 * Memory timeline dump: run one iteration and emit the GPU pool usage
 * as a CSV time series (for plotting the sawtooth the vDNN policies
 * produce versus the baseline's flat line).
 *
 * Usage: memory_timeline [mode|policy] > out.csv
 *   policy:  base | conv | all | dyn    usage CSV (default all)
 *   ops:     print the compiled IterationProgram op stream for a
 *            3-layer net under vDNN_all (the step machine the
 *            executor and the packed-overlap scheduler both drive)
 *   overlap: run two vDNN_all tenants under the packed-overlap
 *            scheduler and emit the engine timeline as CSV — shows
 *            tenant B's kernels executing under tenant A's DMAs
 *   lifecycle: run a mixed-priority preemption scenario under
 *            SchedPolicy::PreemptivePriority and emit the tenant
 *            lifecycle audit log as CSV — every admit / suspend /
 *            evict / replan / resume / finish transition with the
 *            device it happened on and the admission ledger's
 *            reserved-byte delta
 *   trace:   run the Fig. 14 single-tenant config (VGG-16 (64) under
 *            vDNN_all) with telemetry attached and emit the Chrome
 *            trace-event timeline as JSON on stdout — load it in
 *            chrome://tracing or Perfetto to see kernels, offload /
 *            prefetch DMAs and iteration spans on one time axis
 *   verify:  run the static PlanVerifier + ProgramVerifier
 *            (src/check/) over every built-in planner x network
 *            combination and print one PASS/FAIL row each with the
 *            plan's provable peak residency; exits nonzero if any
 *            combination has an error-level finding
 */

#include "check/plan_verifier.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "core/dynamic_policy.hh"
#include "core/iteration_program.hh"
#include "core/planner.hh"
#include "core/training_session.hh"
#include "net/builders.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/scheduler.hh"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

using namespace vdnn;
using namespace vdnn::core;

namespace
{

/** The 3-layer net the README's op-stream listing shows. */
std::unique_ptr<net::Network>
buildThreeLayerNet()
{
    dnn::TensorShape in{16, 3, 32, 32};
    auto n = std::make_unique<net::Network>("ThreeLayer (16)", in);
    dnn::ConvParams c;
    c.outChannels = 16;
    c.padH = c.padW = 1;
    n->append(dnn::makeConv("conv1", in, c));
    auto out = n->node(0).spec.out;
    n->append(dnn::makeActivation("relu1", out));
    n->append(dnn::makeSoftmaxLoss("loss", out));
    n->finalize();
    return n;
}

int
dumpOps()
{
    auto network = buildThreeLayerNet();
    OffloadAllPlanner planner(AlgoPreference::MemoryOptimal);
    MemoryPlan plan = planner.plan(
        *network, PlannerContext::exclusive(gpu::titanXMaxwell()));
    IterationProgram program =
        IterationProgram::compile(*network, plan, ExecutorConfig{});
    std::printf("# %s under %s: %zu-op IterationProgram\n",
                network->name().c_str(), planner.name().c_str(),
                program.size());
    std::fputs(program.dump(*network).c_str(), stdout);
    return 0;
}

int
dumpOverlap()
{
    using namespace vdnn::serve;
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::PackedOverlap;
    Scheduler sched(cfg);
    sched.runtime().setKernelLog(true);

    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);
    for (int i = 0; i < 2; ++i) {
        JobSpec spec;
        spec.name = strFormat("tenant%c", 'A' + i);
        spec.network = vgg;
        spec.planner = std::make_shared<OffloadAllPlanner>(
            AlgoPreference::MemoryOptimal);
        spec.iterations = 1;
        sched.submit(std::move(spec));
    }
    gpu::Runtime &rt = sched.runtime();
    ServeReport rep = sched.run();

    std::printf("# 2 VGG-16 (64) vDNN_all tenants, packed-overlap: "
                "engine timeline\n");
    std::printf("start_ms,end_ms,engine,tenant,op\n");
    // Merge kernels and copies into one chronological listing.
    std::size_t ki = 0;
    std::size_t ci = 0;
    const auto &ks = rt.kernelLog();
    const auto &cs = rt.copyLog();
    while (ki < ks.size() || ci < cs.size()) {
        bool kernel_next =
            ci >= cs.size() ||
            (ki < ks.size() && ks[ki].start <= cs[ci].start);
        if (kernel_next) {
            const auto &k = ks[ki++];
            std::printf("%.3f,%.3f,compute,%d,%s\n", toMs(k.start),
                        toMs(k.end), k.client, k.name.c_str());
        } else {
            const auto &c = cs[ci++];
            std::printf("%.3f,%.3f,%s,%d,%s\n", toMs(c.start),
                        toMs(c.end),
                        c.dir == gpu::CopyDir::DeviceToHost ? "dma_d2h"
                                                            : "dma_h2d",
                        c.client, c.tag.c_str());
        }
    }
    std::fprintf(stderr,
                 "%d jobs finished; makespan %.1f ms; compute util "
                 "%.3f\n",
                 rep.finishedCount(), toMs(rep.makespan),
                 rep.computeUtilization());
    return 0;
}

int
dumpLifecycle()
{
    using namespace vdnn::serve;
    // An 11 GiB device so the vDNN_dyn tenant is squeezed beside the
    // Baseline hog: the run exercises every transition — the urgent
    // arrival preempts (suspend -> evict), the victim resumes, and
    // the hog's exit triggers the grow-back replan sweep.
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::PreemptivePriority;
    cfg.gpu.dramCapacity = Bytes(11) * 1024 * 1024 * 1024;
    Scheduler sched(cfg);

    JobSpec hog;
    hog.name = "hog";
    hog.network = net::buildVgg16(64);
    hog.planner = std::make_shared<BaselinePlanner>();
    hog.iterations = 3;
    sched.submit(std::move(hog));

    JobSpec dyn;
    dyn.name = "dyn";
    dyn.network = net::buildVgg16(64);
    dyn.planner = std::make_shared<DynamicPlanner>();
    dyn.arrival = 1 * kNsPerMs;
    dyn.iterations = 6;
    sched.submit(std::move(dyn));

    JobSpec urgent;
    urgent.name = "urgent";
    urgent.network = net::buildVgg16(32);
    urgent.planner = std::make_shared<BaselinePlanner>();
    urgent.priority = 10;
    urgent.arrival = 1000 * kNsPerMs;
    urgent.iterations = 1;
    sched.submit(std::move(urgent));

    ServeReport rep = sched.run();

    std::printf("# mixed-priority tenants under preemptive-priority: "
                "tenant lifecycle audit log\n");
    std::printf("time_ms,job,event,device,reserved_before_mib,"
                "reserved_after_mib,delta_mib\n");
    for (const LifecycleEvent &ev : rep.lifecycle) {
        std::printf("%.3f,%s,%s,%d,%.1f,%.1f,%+.1f\n", toMs(ev.when),
                    rep.jobs[std::size_t(ev.job)].name.c_str(), ev.what,
                    ev.device,
                    toMiB(ev.reservedBefore), toMiB(ev.reservedAfter),
                    toMiB(ev.reservedAfter) - toMiB(ev.reservedBefore));
    }
    std::fprintf(stderr,
                 "%d jobs finished; %zu lifecycle events; reserved at "
                 "end %lld B (must be 0)\n",
                 rep.finishedCount(), rep.lifecycle.size(),
                 (long long)rep.reservedBytesAtEnd);
    return rep.finishedCount() == 3 && rep.reservedBytesAtEnd == 0 ? 0
                                                                   : 1;
}

int
dumpTrace()
{
    // The Fig. 14 single-tenant run with the telemetry pillar on: one
    // exclusive session, two iterations (the second is the profiled
    // steady state), every kernel / DMA / iteration span recorded.
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    auto network = net::buildVgg16(64);
    SessionConfig cfg;
    cfg.planner = std::make_shared<OffloadAllPlanner>(
        AlgoPreference::MemoryOptimal);
    Session session(*network, cfg);
    obs::Telemetry tele;
    tele.trace = &trace;
    tele.metrics = &metrics;
    session.runtime().setTelemetry(tele);
    if (!session.setup()) {
        std::fprintf(stderr, "setup failed: %s\n",
                     session.failReason().c_str());
        return 1;
    }
    for (int i = 0; i < 2; ++i) {
        if (!session.runIteration().ok) {
            std::fprintf(stderr, "iteration failed: %s\n",
                         session.failReason().c_str());
            return 1;
        }
    }
    session.teardown();
    trace.writeJson(std::cout);
    std::fprintf(stderr, "%zu trace events; metrics snapshot:\n",
                 trace.eventCount());
    metrics.writeSnapshot(std::cerr, session.runtime().now());
    return 0;
}

/**
 * Statically verify every built-in planner against every paper
 * network: plan, prove admissibility, compile, and run the program
 * through the abstract interpreter. No simulated device is involved
 * except for DynamicPlanner's own trial iterations.
 */
int
runVerify()
{
    struct NetCase
    {
        const char *label;
        std::unique_ptr<net::Network> net;
    };
    std::vector<NetCase> nets;
    nets.push_back({"AlexNet (128)", net::buildAlexNet(128)});
    nets.push_back({"OverFeat (128)", net::buildOverFeat(128)});
    nets.push_back({"VGG-16 (64)", net::buildVgg16(64)});
    nets.push_back({"GoogLeNet (128)", net::buildGoogLeNet(128)});

    ExecutorConfig exec;
    std::vector<std::shared_ptr<Planner>> planners = {
        std::make_shared<BaselinePlanner>(AlgoPreference::MemoryOptimal),
        std::make_shared<OffloadAllPlanner>(),
        std::make_shared<OffloadConvPlanner>(),
        std::make_shared<CompressedOffloadPlanner>(),
        std::make_shared<DynamicPlanner>(exec),
    };

    PlannerContext ctx = PlannerContext::exclusive(gpu::titanXMaxwell());
    std::printf("%-16s %-22s %-6s %8s %8s  %s\n", "network", "planner",
                "result", "peak_mib", "cap_mib", "notes");
    int failures = 0;
    for (const NetCase &nc : nets) {
        for (const auto &planner : planners) {
            MemoryPlan plan = planner->plan(*nc.net, ctx);
            check::CheckConfig ccfg;
            ccfg.enforceCapacity = false; // report fit, don't fail it
            check::CheckResult r = plan.feasible
                ? check::verifyPlan(*nc.net, plan, ctx, exec, ccfg)
                : check::CheckResult{};
            if (!plan.feasible) {
                r.add(check::DiagCode::Infeasible,
                      check::Severity::Error, plan.failReason);
            }
            bool pass = r.ok();
            failures += !pass;
            std::string notes;
            if (r.provablePeakBytes > ctx.capacity())
                notes = "exceeds device (vDNN's motivation)";
            for (const check::Diagnostic &d : r.diags) {
                if (d.severity == check::Severity::Error) {
                    notes = d.str();
                    break;
                }
            }
            std::printf("%-16s %-22s %-6s %8.0f %8.0f  %s\n",
                        nc.label, planner->name().c_str(),
                        pass ? "PASS" : "FAIL",
                        toMiB(r.provablePeakBytes),
                        toMiB(ctx.capacity()), notes.c_str());
        }
    }
    std::fprintf(stderr, "%d of %zu combinations failed\n", failures,
                 nets.size() * planners.size());
    return failures > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode = argc > 1 ? argv[1] : "all";
    if (mode == "ops")
        return dumpOps();
    if (mode == "verify")
        return runVerify();
    if (mode == "overlap")
        return dumpOverlap();
    if (mode == "lifecycle")
        return dumpLifecycle();
    if (mode == "trace")
        return dumpTrace();

    std::shared_ptr<Planner> planner;
    if (mode == "base") {
        planner = std::make_shared<BaselinePlanner>(
            AlgoPreference::MemoryOptimal);
    } else if (mode == "conv") {
        planner = std::make_shared<OffloadConvPlanner>();
    } else if (mode == "all") {
        planner = std::make_shared<OffloadAllPlanner>();
    } else if (mode == "dyn") {
        planner = std::make_shared<DynamicPlanner>();
    } else {
        fatal("unknown mode '%s'", mode.c_str());
    }

    auto network = net::buildVgg16(64);
    SessionConfig cfg;
    cfg.planner = planner;
    cfg.iterations = 1;
    cfg.keepTimeline = true;
    auto r = runSession(*network, cfg);
    if (!r.trainable) {
        std::fprintf(stderr, "cannot train: %s\n", r.failReason.c_str());
        return 1;
    }

    std::printf("# %s under %s on Titan X; usage in MiB, time in ms\n",
                network->name().c_str(), planner->name().c_str());
    std::printf("time_ms,total_mib,managed_mib\n");
    // Merge the two signals on the total-usage change points.
    std::size_t mi = 0;
    double managed = 0.0;
    for (const auto &s : r.totalTimeline) {
        while (mi < r.managedTimeline.size() &&
               r.managedTimeline[mi].when <= s.when) {
            managed = r.managedTimeline[mi].value;
            ++mi;
        }
        std::printf("%.3f,%.1f,%.1f\n", toMs(s.when),
                    s.value / double(kMiB), managed / double(kMiB));
    }
    std::fprintf(stderr,
                 "%zu samples; peak %.0f MiB, average %.0f MiB\n",
                 r.totalTimeline.size(), toMiB(r.maxTotalUsage),
                 toMiB(r.avgTotalUsage));
    return 0;
}
