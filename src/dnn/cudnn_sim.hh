/**
 * @file
 * Simulated cuDNN handle: per-layer algorithm profiling and selection.
 *
 * Mirrors the cuDNN 4.0 interface surface the paper depends on
 * (Section III-C): `cudnnFindConvolution*Algorithm` exhaustively times
 * every applicable algorithm for a layer and reports (time, workspace)
 * pairs. ML frameworks use this in an initial profiling phase to pick
 * the fastest algorithm per layer; vDNN_dyn re-runs it under memory
 * constraints to trade speed for workspace ("greedy local downgrade").
 */

#ifndef VDNN_DNN_CUDNN_SIM_HH
#define VDNN_DNN_CUDNN_SIM_HH

#include "common/types.hh"
#include "dnn/conv_algo.hh"
#include "dnn/layer.hh"
#include "dnn/perf_model.hh"

#include <optional>
#include <vector>

namespace vdnn::dnn
{

/** Profiled performance of one algorithm on one layer. */
struct ConvAlgoPerf
{
    ConvAlgo algo = ConvAlgo::ImplicitGemm;
    TimeNs fwdTime = 0;
    TimeNs bwdDataTime = 0;
    TimeNs bwdFilterTime = 0;
    Bytes workspace = 0;

    /** Aggregate training-step latency contribution. */
    TimeNs totalTime() const { return fwdTime + bwdDataTime + bwdFilterTime; }
};

class CudnnSim
{
  public:
    explicit CudnnSim(gpu::GpuSpec spec);

    /**
     * Exhaustively profile all applicable algorithms for @p layer,
     * sorted fastest-first (by total forward+backward time).
     * Equivalent of cudnnFindConvolutionForwardAlgorithm and friends.
     */
    std::vector<ConvAlgoPerf> findConvAlgorithms(const LayerSpec &layer) const;

    /** Profile a single algorithm. */
    ConvAlgoPerf algoPerf(const LayerSpec &layer, ConvAlgo algo) const;

    /** Fastest applicable algorithm regardless of workspace. */
    ConvAlgo fastestAlgo(const LayerSpec &layer) const;

    /**
     * Fastest applicable algorithm whose workspace fits @p ws_limit
     * (the greedy downgrade step of vDNN_dyn). Always succeeds:
     * IMPLICIT_GEMM needs no workspace.
     */
    ConvAlgo fastestAlgoWithin(const LayerSpec &layer, Bytes ws_limit) const;

    const PerfModel &perf() const { return perfModel; }
    const gpu::GpuSpec &spec() const { return perfModel.spec(); }

  private:
    PerfModel perfModel;
};

} // namespace vdnn::dnn

#endif // VDNN_DNN_CUDNN_SIM_HH
