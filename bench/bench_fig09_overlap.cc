/**
 * @file
 * Figure 9 (mechanism study): how offload transfers overlap with, or
 * stall, the forward computation.
 *
 * The paper's timeline shows OFF(n) overlapped with FWD(n); when the
 * offload outlives the computation, the next layer's computation is
 * delayed by the residual ("wasted time"). This bench reconstructs the
 * timeline on the raw simulated runtime for a sweep of
 * compute/transfer ratios and verifies the stall arithmetic.
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "gpu/runtime.hh"

using namespace vdnn;
using namespace vdnn::bench;
using namespace vdnn::literals;

namespace
{

struct OverlapResult
{
    TimeNs makespan = 0;
    TimeNs stall = 0;
};

/**
 * Run N layers of @p compute_us each, offloading a buffer that takes
 * @p offload_us to copy, with the paper's sync-at-layer-boundary rule.
 */
OverlapResult
runTimeline(int layers, TimeNs compute_us, TimeNs offload_us)
{
    gpu::GpuSpec spec = gpu::titanXMaxwell();
    gpu::Runtime rt(spec, /*enable_contention=*/false);
    auto sc = rt.createStream("compute");
    auto sm = rt.createStream("memory");
    Bytes bytes = Bytes(spec.pcie.dmaBandwidth *
                        toSeconds(offload_us * kNsPerUs)) -
                  Bytes(spec.pcie.dmaBandwidth *
                        toSeconds(spec.pcie.setupLatency));
    OverlapResult res;
    for (int i = 0; i < layers; ++i) {
        gpu::KernelDesc k;
        k.name = "fwd";
        k.duration = compute_us * kNsPerUs;
        rt.launchKernel(sc, k);
        rt.memcpyAsync(sm, bytes, gpu::CopyDir::DeviceToHost, "off");
        rt.synchronize(sc);
        TimeNs compute_done = rt.now();
        rt.synchronize(sm);
        res.stall += rt.now() - compute_done;
    }
    res.makespan = rt.now();
    return res;
}

void
report()
{
    stats::Table table("Figure 9: offload/compute overlap sweep "
                       "(8 layers, 100 us compute each)");
    table.setColumns({"offload latency (us)", "makespan (us)",
                      "stall (us)", "offload hidden?"});

    const int layers = 8;
    const TimeNs compute_us = 100;
    struct Point
    {
        TimeNs offload_us;
        bool expect_hidden;
    };
    bool all_ok = true;
    for (Point p : {Point{40, true}, Point{80, true}, Point{100, true},
                    Point{130, false}, Point{200, false}}) {
        OverlapResult r = runTimeline(layers, compute_us, p.offload_us);
        bool hidden = r.stall == 0;
        all_ok = all_ok && hidden == p.expect_hidden;
        table.addRow({stats::Table::cellInt(p.offload_us),
                      stats::Table::cell(toUs(r.makespan), 0),
                      stats::Table::cell(toUs(r.stall), 0),
                      hidden ? "yes" : "no"});
    }
    table.print();

    OverlapResult hidden = runTimeline(layers, compute_us, 100);
    OverlapResult exposed = runTimeline(layers, compute_us, 200);

    stats::Comparison cmp("Figure 9");
    cmp.addBool("offload <= compute: fully hidden (no wasted time)",
                true, hidden.stall == 0);
    cmp.addNumeric("offload 2x compute: makespan stretches ~2x",
                   2.0 * double(hidden.makespan),
                   double(exposed.makespan), 0.1);
    cmp.addBool("hidden/exposed transition at compute == offload", true,
                all_ok);
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("fig09/overlap_sweep",
                [] { benchmark::DoNotOptimize(runTimeline(64, 100, 90)); });
    return benchMain(argc, argv, report);
}
