/**
 * @file
 * First-iteration profile of a tenant: measured footprint, timings,
 * PCIe traffic, and activation sparsity.
 *
 * The Session fills a ProfiledFootprint when a tenant's first
 * iteration completes; the scheduler then feeds it back into the
 * AdmissionController (measured instead of analytic reservations) and
 * the PlannerContext (measured sparsity for the compressed-DMA
 * planner). Ids are plain ints (BufferId / layer topo index) so this
 * module depends on nothing above common+stats.
 */

#ifndef VDNN_OBS_PROFILER_HH
#define VDNN_OBS_PROFILER_HH

#include "common/types.hh"

#include <vector>

namespace vdnn::obs
{

/** Measured timings of one layer (topo index) over one iteration. */
struct ProfiledLayer
{
    int id = -1;
    TimeNs fwd = 0;
    TimeNs bwd = 0;
};

/** Everything measured during a tenant's first iteration. */
struct ProfiledFootprint
{
    bool valid = false;
    /** Measured resident weights/workspace (survives iterations). */
    Bytes persistent = 0;
    /** Measured peak transient (activations) above the persistent set. */
    Bytes transientPeak = 0;
    TimeNs iterationTime = 0;
    /** Offload + prefetch + on-demand bytes moved over PCIe. */
    Bytes pcieBytes = 0;
    std::vector<ProfiledLayer> layers;
    /**
     * Measured activation sparsity per buffer, indexed by BufferId;
     * entries < 0 mean "not a ReLU output / not measured".
     */
    std::vector<double> bufferSparsity;

    /** Sparsity of buffer @p b, or -1 when unmeasured. */
    double sparsityFor(int b) const
    {
        if (b < 0 || std::size_t(b) >= bufferSparsity.size())
            return -1.0;
        return bufferSparsity[std::size_t(b)];
    }
};

/**
 * The simulated "ground truth" sparsity of a ReLU output at relative
 * network depth @p depthFrac in [0,1]. Deeper activations are sparser
 * (matching the cDMA paper's observation), with a small deterministic
 * per-buffer jitter so measured values differ from any analytic model.
 */
double groundTruthReluSparsity(int bufferId, double depthFrac);

} // namespace vdnn::obs

#endif // VDNN_OBS_PROFILER_HH
