/**
 * @file
 * Multi-tenant, multi-device GPU-sharing scheduler.
 *
 * Multiplexes N training jobs over a cluster of simulated GPUs
 * (gpu/cluster.hh): per device one compute engine, one DMA engine per
 * direction, one PCIe link, one cnmem pool — all devices on one
 * shared simulated clock. Jobs are admitted by a *per-device*
 * AdmissionController when their policy-dependent footprint fits, and
 * a pluggable PlacementPolicy (serve/placement.hh) picks the device;
 * the freed residency of the vDNN policies is what lets many more
 * tenants pack onto the same 12 GB devices than the baseline
 * allocator. The classic single-device construction (no
 * SchedulerConfig::devices) behaves exactly as it always has.
 *
 * Scheduling policies (iteration order *within* a device):
 *
 *  - FifoExclusive: one job owns a device at a time, run to
 *    completion in arrival order — the status quo this subsystem
 *    exists to beat (head-of-line blocking, queueing delay).
 *  - RoundRobin: iteration-granularity time sharing in the style of
 *    the Salus execution engine — every admitted job keeps its
 *    persistent state device-resident while iterations from all
 *    tenants interleave on the shared compute engine, and the
 *    admission queue is backfilled whenever capacity frees up.
 *  - ShortestRemaining: same packing, but the next iteration goes to
 *    the admitted job with the fewest remaining iterations (SRPT at
 *    iteration granularity) — minimizes mean job completion time.
 *  - PackedOverlap: op-granularity packing over the IterationProgram
 *    steppers (single-device only). Whenever one tenant blocks on a
 *    DMA join, the next ready tenant's compute op is dispatched
 *    instead of idling the compute engine; admission reserves the
 *    *sum* of transients.
 *  - PreemptivePriority: iteration-granularity packing driven by
 *    JobSpec::priority (single-device only). A higher-priority
 *    arrival that fails admission preempts the lowest-priority
 *    running tenants through the Session lifecycle state machine.
 *    JobSpec::agingRatePerSec bounds starvation: a queued job's
 *    effective priority grows with its wait, so a hostile stream of
 *    high-priority arrivals cannot park a low-priority job forever.
 *
 * On a cluster (2+ devices) the scheduler drives one iteration per
 * device concurrently — each device's resident set advances through
 * its own resumable stepper while the others' DMAs and kernels run on
 * the shared timeline — and a periodic rebalance sweep migrates the
 * smallest-footprint tenant off the most-loaded device whenever the
 * queue-depth imbalance reaches a threshold (Session::migrate:
 * suspend -> evict-to-host -> re-plan and resume on the target).
 *
 * In-flight OOM (overcommit or pool fragmentation despite the
 * reservation) aborts only that iteration: the job is torn down,
 * its reservation inflated, and it is requeued for readmission —
 * after a bounded number of attempts it is marked Failed.
 */

#ifndef VDNN_SERVE_SCHEDULER_HH
#define VDNN_SERVE_SCHEDULER_HH

#include "dnn/cudnn_sim.hh"
#include "gpu/cluster.hh"
#include "gpu/gpu_spec.hh"
#include "gpu/runtime.hh"
#include "mem/memory_pool.hh"
#include "mem/pinned_host.hh"
#include "mem/usage_tracker.hh"
#include "serve/admission.hh"
#include "serve/job.hh"
#include "serve/placement.hh"
#include "serve/serve_stats.hh"
#include "serve/wake_set.hh"
#include "stats/time_weighted.hh"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vdnn::serve
{

enum class SchedPolicy : std::uint8_t
{
    FifoExclusive,      ///< one job at a time, arrival order
    RoundRobin,         ///< iteration-granularity packing (Salus-style)
    ShortestRemaining,  ///< packed, fewest-remaining-iterations first
    PackedOverlap,      ///< op-granularity packing, compute/DMA overlap
    PreemptivePriority, ///< priority packing; preempts via suspend/evict
};

const char *schedPolicyName(SchedPolicy p);

struct SchedulerConfig
{
    SchedPolicy policy = SchedPolicy::RoundRobin;
    /** The device all tenants share (single-device mode). */
    gpu::GpuSpec gpu;
    /**
     * Cluster mode: one GpuSpec per device (heterogeneous allowed).
     * Empty (the default) serves on the single device in `gpu`; a
     * non-empty list supersedes `gpu`. With 2+ devices the policy
     * must be FifoExclusive, RoundRobin or ShortestRemaining.
     */
    std::vector<gpu::GpuSpec> devices;
    /** Device chooser for admissions. Null = BestFitPlacement. */
    std::shared_ptr<PlacementPolicy> placement;
    /**
     * Cluster rebalance sweep period: every period, migrate the
     * smallest-footprint tenant off the most-loaded device when the
     * running-tenant imbalance reaches rebalanceThreshold.
     * 0 (default) = placement is static, no migration.
     */
    TimeNs rebalancePeriod = 0;
    /** Queue-depth gap (most vs least loaded) triggering migration. */
    int rebalanceThreshold = 2;
    bool contention = true;
    /** Cap on concurrently admitted jobs (0 = unlimited). */
    int maxJobsInFlight = 0;
    /** Reservation inflation guarding estimate error/fragmentation. */
    double admissionSafety = 1.05;
    /** Reservation growth per OOM requeue of a job. */
    double oomBackoffScale = 1.25;
    /** OOM requeues before a job is marked Failed. */
    int maxOomRequeues = 3;
    /** Retain pool-usage and jobs-in-flight timelines in the report. */
    bool keepTimeline = false;

    /**
     * Telemetry sinks (obs/). Wired through every device of the
     * cluster; scheduler decisions (admission, preemption, migration,
     * rebalance) become instant/flow events and serve-level counters.
     * Null members (the default) cost one branch per choke point.
     */
    obs::Telemetry telemetry;

    SchedulerConfig();
};

class Scheduler
{
  public:
    explicit Scheduler(SchedulerConfig config);

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Register a job; it becomes visible at spec.arrival. */
    JobId submit(JobSpec spec);

    /** Drive every submitted job to a terminal state. */
    ServeReport run();

    // --- introspection (tests) -------------------------------------------
    int deviceCount() const { return int(devs.size()); }
    /** Device 0 — the whole device on a single-GPU scheduler. */
    gpu::Runtime &runtime() { return *devs[0]->dev; }
    gpu::Device &device(int d) { return *devs.at(std::size_t(d))->dev; }
    mem::MemoryPool &devicePool() { return *devs[0]->pool; }
    mem::MemoryPool &devicePoolOn(int d)
    {
        return *devs.at(std::size_t(d))->pool;
    }
    const AdmissionController &admissionState() const
    {
        return devs[0]->admission;
    }
    const AdmissionController &admissionStateOn(int d) const
    {
        return devs.at(std::size_t(d))->admission;
    }
    const Job &job(JobId id) const { return *jobs.at(std::size_t(id)); }
    int jobsInFlight() const;
    int jobsEvicted() const { return int(evictedJobs.size()); }
    int jobsOnDevice(int d) const
    {
        return int(devs.at(std::size_t(d))->running.size());
    }

    /** Event-driven serve-loop accounting (also on the ServeReport). */
    struct LoopStats
    {
        /** Device wake-hook firings (one per executed event). */
        std::uint64_t wakeups = 0;
        /** Step offers that made no progress (blocked / no work). */
        std::uint64_t fruitlessPolls = 0;
        /** Idle clock advances to the next pending arrival. */
        std::uint64_t idleAdvances = 0;
    };
    LoopStats loopStats() const
    {
        return {statWakeups, statFruitlessPolls, statIdleAdvances};
    }

    /**
     * Test hook (spurious-wakeup safety): treat every device as woken
     * on every turn of the cluster loop, degenerating the wake-list
     * sweep back into the old full polling scan. A non-blocking step
     * offered to a blocked or empty device is pure, so outputs must
     * be byte-identical with this on — the equivalence suite pins it.
     */
    void setDebugForceWakeAll(bool on) { forceWakeAll = on; }

  private:
    /** Everything the scheduler keeps per device of the cluster. */
    struct DeviceCtx
    {
        int id;
        gpu::Device *dev;
        mem::MemoryPool *pool;
        mem::PinnedHostAllocator *host;
        dnn::CudnnSim cudnn;        ///< perf model for this device
        AdmissionController admission;
        mem::UsageTracker track;    ///< this device's pool usage
        std::vector<JobId> running; ///< admitted here, submission order
        std::size_t rrCursor = 0;
        /** Job whose iteration the cluster loop has in flight. */
        JobId inFlight = -1;
        /**
         * Poll memo: the in-flight stepper returned Blocked with the
         * shared clock's executed-event counter at blockedExec. A
         * stepper blocks only on its own streams draining, and
         * streams drain only by events executing, so until the
         * counter moves a re-poll must return Blocked again — skip
         * it. Keyed by job id so admission changes invalidate it.
         */
        JobId blockedJob = -1;
        std::uint64_t blockedExec = 0;
        int jobsPlaced = 0;
        int migrationsIn = 0;
        int migrationsOut = 0;

        DeviceCtx(int id, gpu::Cluster &cluster,
                  const SchedulerConfig &cfg);
    };

    void collectArrivals();
    const FootprintEstimate &estimateFor(const Job &job, DeviceCtx &d);
    bool tryAdmit(Job &job, const FootprintEstimate &est, DeviceCtx &d);
    void finishJob(Job &job, JobState final_state,
                   const std::string &why = "");
    void evictForRequeue(Job &job);
    void recordInflight();
    /** Earliest arrival still Pending (kTimeNone when none): the
     *  incrementally maintained numPending/nextPendingArrival pair,
     *  exact because jobs only leave Pending via collectArrivals(). */
    TimeNs nextPendingArrivalTime() const
    {
        return numPending > 0 ? nextPendingArrival : kTimeNone;
    }
    bool allDone() const;
    /** Fold one completed (ok) iteration into the job's record. */
    void chargeIteration(Job &job, const core::IterationResult &r);
    /** Adopt the session's first-iteration profile: shrink the
     *  admission reservation to the measured footprint. */
    void adoptProfile(Job &job);
    /** Reservation bytes summed over every device's ledger. */
    Bytes reservedBytesTotal() const;
    /** Effective priority: static priority plus queue-wait aging
     *  (accrued while Queued/Evicted, retained while running). */
    double effectivePriority(const Job &job, TimeNs now) const;
    /** Fold the current waiting spell into the job's aging clock. */
    void stopWaiting(Job &job);
    /** Drop @p id from its device's resident set, fixing cursors. */
    void removeFromRunning(JobId id);
    /** Append a lifecycle transition to the audit log. */
    void logLifecycle(JobId id, const char *what, Bytes reserved_before,
                      int device);
    ServeReport buildReport();

    // --- single-device paths (golden-pinned legacy behavior) -------------
    void admitFromQueue();
    Job *pickNext();
    /** Iteration-granularity main loop (all policies but packed). */
    void runInterleaved();
    /** Op-granularity main loop (SchedPolicy::PackedOverlap). */
    void runPacked();

    // --- lifecycle state machine (PreemptivePriority) --------------------
    /** Lowest-priority running tenant strictly below @p priority
     *  (latest arrival breaks ties), or nullptr. */
    Job *pickVictim(double below_priority);
    /** Suspend + evict one tenant, moving its reservation to the
     *  evicted ledger. False when pinned host memory is exhausted. */
    bool preempt(Job &victim);
    /** Evict lowest-priority tenants until @p job's reservation (and,
     *  when the in-flight cap binds, a slot) fits. */
    bool makeRoomFor(Job &job, const FootprintEstimate &est);
    /** Resume evicted tenants that fit again, best priority first. */
    void resumeEvicted();
    /** Readmit one evicted tenant onto @p d; false if it stays parked. */
    bool tryResumeOn(Job &job, DeviceCtx &d);
    /** Inflate a setup-OOM'd job's reservation; true when it went
     *  terminal (Failed) and was taken from the queue. */
    bool backoffAfterSetupOom(Job &job, std::size_t queue_index);

    // --- cluster path (2+ devices) ---------------------------------------
    /** Place queued jobs onto devices via the PlacementPolicy. */
    void admitFromQueueCluster();
    /** Snapshot per-device loads and ask the placement policy. */
    int choosePlacement(Job &job);
    /** Within-device iteration order (RR / SRPT / FIFO). */
    Job *pickNextOn(DeviceCtx &d);
    /** Offer device @p d one non-blocking stepper step. */
    bool stepDeviceOnce(DeviceCtx &d);
    /** Periodic migration sweep off the most-loaded device. */
    void maybeRebalance();
    bool migrateJob(Job &job, DeviceCtx &src, DeviceCtx &dst);
    /** Readmit evicted tenants onto their (post-migration) device. */
    void resumeEvictedCluster();
    /** One-iteration-per-device concurrent main loop (event-driven:
     *  drains only devices on the wake-set). */
    void runCluster();
    /** Device wake hook body: push @p device onto the wake-set. */
    void onDeviceWake(int device);
    static void deviceWakeTrampoline(void *self, int device);

    SchedulerConfig cfg;
    gpu::Cluster cluster;
    std::vector<std::unique_ptr<DeviceCtx>> devs;

    std::vector<std::unique_ptr<Job>> jobs;
    /** Footprint estimates are deterministic per (spec, device). */
    std::map<std::pair<JobId, int>, FootprintEstimate> estimates;
    JobQueue queue;                 ///< arrived, waiting for admission
    std::vector<JobId> evictedJobs; ///< preempted/stalled, awaiting resume
    /** Capacity freed since the last resume sweep. */
    bool resumePending = false;
    /** Next rebalance sweep time (cluster mode). */
    TimeNs nextRebalance = kTimeNone;
    /**
     * Scheduler-loop accounting, kept incrementally so the per-event
     * serve loop does not rescan every job: jobs still Pending (with
     * the earliest arrival among them) and jobs gone terminal.
     */
    int numPending = 0;
    TimeNs nextPendingArrival = kTimeNone;
    int numTerminal = 0;
    /**
     * Event-driven cluster-loop state. `wake` holds the devices the
     * next turn must offer a step (populated by the Device completion
     * hooks plus the admit/resume/migrate-in sites); a device leaves
     * it only when a step offer makes no progress. `admissionDirty`
     * gates admitFromQueueCluster(): the queue rescan runs only when
     * an arrival, a ledger change, a running-set change or a pending
     * setup-OOM retry could alter its decisions — on every other turn
     * the old polling rescan was provably pure, so skipping it cannot
     * change outputs. `residentJobs` caches the summed running-set
     * size so the idle test is O(1).
     */
    WakeSet wake;
    bool admissionDirty = true;
    int residentJobs = 0;
    std::uint64_t statWakeups = 0;
    std::uint64_t statFruitlessPolls = 0;
    std::uint64_t statIdleAdvances = 0;
    bool forceWakeAll = false;

    std::vector<LifecycleEvent> lifecycleLog;
    stats::TimeWeighted inflight;
    int peakInflight = 0;
    bool ran = false;

    // --- telemetry (null = off) -------------------------------------------
    obs::Counter *ctrAdmissions = nullptr;
    obs::Counter *ctrPreemptions = nullptr;
    obs::Counter *ctrMigrations = nullptr;
    obs::Counter *ctrProfiles = nullptr;
    stats::Accumulator *jctAcc = nullptr;
    stats::Histogram *iterHist = nullptr;
    /** Open preemption flow: evict (victim) -> admit (beneficiary). */
    std::uint64_t pendingPreemptFlow = 0;
};

} // namespace vdnn::serve

#endif // VDNN_SERVE_SCHEDULER_HH
