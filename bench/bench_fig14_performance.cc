/**
 * @file
 * Figure 14: overall performance (feature-extraction latency)
 * normalized to the baseline, for the six conventional configurations
 * under every (policy, algorithm) combination. Where the baseline
 * cannot train, an oracular baseline with unlimited memory provides
 * the reference (Section V-C).
 *
 * Paper anchors: vDNN_all (m) and vDNN_conv (m) average 58% / 55%
 * performance loss (max 65% / 63%); vDNN_dyn reaches an average 97% of
 * the baseline's throughput, with the worst case (VGG-16 (256)) at 82%
 * of the oracle.
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "stats/accumulator.hh"

#include <map>

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

void
report()
{
    stats::Table table("Figure 14: performance normalized to the "
                       "(oracular) baseline; * = cannot train");
    table.setColumns({"network", "config", "fe latency (ms)",
                      "normalized", "stall (ms)"});

    std::map<std::string, stats::Accumulator> normalized;
    double dyn_worst = 1.0;

    for (const auto &entry : net::conventionalSuite()) {
        auto network = entry.build();
        auto base_p = runPlanner(
            *network,
            baselinePlanner(core::AlgoPreference::PerformanceOptimal));
        core::SessionResult oracle =
            base_p.trainable
                ? base_p
                : runPlanner(*network,
                             baselinePlanner(
                                 core::AlgoPreference::PerformanceOptimal),
                             /*oracle=*/true);
        double base_ms = toMs(oracle.featureExtractionTime);

        for (const auto &point : figurePlannerGrid()) {
            std::string label = point.label;
            if (point.isBaseline &&
                point.pref == core::AlgoPreference::PerformanceOptimal &&
                !base_p.trainable) {
                table.addRow({entry.name, "base (p) *", "*", "*", "*"});
                continue;
            }
            auto r = runPlanner(*network, point.planner);
            if (!r.trainable) {
                table.addRow({entry.name, label + " *", "*", "*", "*"});
                continue;
            }
            double ms = toMs(r.featureExtractionTime);
            double norm = base_ms / ms;
            normalized[point.label].add(norm);
            if (point.isDynamic)
                dyn_worst = std::min(dyn_worst, norm);
            table.addRow({entry.name, point.label,
                          stats::Table::cell(ms, 1),
                          stats::Table::cell(norm, 2),
                          stats::Table::cell(
                              toMs(r.transferStallTime), 1)});
        }
    }
    table.print();

    stats::Comparison cmp("Figure 14");
    cmp.addNumeric("vDNN_all (m): average performance loss (%)", 58.0,
                   100.0 * (1.0 - normalized["all (m)"].mean()), 0.15);
    cmp.addNumeric("vDNN_all (m): maximum performance loss (%)", 65.0,
                   100.0 * (1.0 - normalized["all (m)"].min()), 0.15);
    cmp.addNumeric("vDNN_conv (m): average performance loss (%)", 55.0,
                   100.0 * (1.0 - normalized["conv (m)"].mean()), 0.15);
    cmp.addNumeric("vDNN_dyn: average of baseline throughput (%)", 97.0,
                   100.0 * normalized["dyn"].mean(), 0.05);
    cmp.addNumeric("vDNN_dyn: worst case (VGG-16 (256)) (%)", 82.0,
                   100.0 * dyn_worst, 0.15);
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("fig14/dyn_vgg16_256", [] {
        auto network = net::buildVgg16(256);
        benchmark::DoNotOptimize(
            runPlanner(*network, dynamicPlanner())
                .featureExtractionTime);
    });
    return benchMain(argc, argv, report);
}
