/**
 * @file
 * DEPRECATED policy-enum shim over the Planner API (core/planner.hh).
 *
 * The closed TransferPolicy/AlgoMode enums were the original way to
 * pick a vDNN configuration (Section III-C). They survive only as a
 * migration surface: `plannerForPolicy` maps an enum pair onto the
 * equivalent Planner, and `makeStaticPlan` resolves a static policy
 * directly into a MemoryPlan. New code should construct planners
 * (BaselinePlanner, OffloadAllPlanner, OffloadConvPlanner,
 * DynamicPlanner, CompressedOffloadPlanner, or your own) and hand them
 * to SessionConfig::planner / JobSpec::planner.
 */

#ifndef VDNN_CORE_POLICY_HH
#define VDNN_CORE_POLICY_HH

#include "core/planner.hh"
#include "dnn/cudnn_sim.hh"
#include "net/network.hh"

#include <memory>

namespace vdnn::core
{

struct ExecutorConfig;

/** DEPRECATED: use a concrete Planner instead. */
enum class TransferPolicy
{
    Baseline,
    OffloadAll,
    OffloadConv,
    Dynamic,
};

/** DEPRECATED: use AlgoPreference; the plan IR is always per layer. */
enum class AlgoMode
{
    MemoryOptimal,
    PerformanceOptimal,
    PerLayer,
};

const char *transferPolicyName(TransferPolicy p);
const char *algoModeName(AlgoMode m);

/** DEPRECATED alias: the boolean offload Plan became the MemoryPlan IR. */
using Plan = MemoryPlan;

/**
 * DEPRECATED enum -> Planner factory. AlgoMode::PerLayer has no static
 * planner (per-layer assignments are derived by DynamicPlanner) and
 * is rejected; the mode is ignored for TransferPolicy::Dynamic, which
 * always derives its own algorithms.
 * @param exec executor knobs forwarded to DynamicPlanner's trial runs
 */
std::unique_ptr<Planner> plannerForPolicy(TransferPolicy policy,
                                          AlgoMode mode,
                                          const ExecutorConfig &exec);

/** plannerForPolicy with default executor knobs. */
std::unique_ptr<Planner> plannerForPolicy(TransferPolicy policy,
                                          AlgoMode mode);

/**
 * DEPRECATED: resolve a static policy into a MemoryPlan by invoking
 * the matching planner against the whole device @p cudnn models.
 * Dynamic/PerLayer are rejected (DynamicPlanner derives those).
 */
MemoryPlan makeStaticPlan(const net::Network &net,
                          const dnn::CudnnSim &cudnn,
                          TransferPolicy policy, AlgoMode mode);

} // namespace vdnn::core

#endif // VDNN_CORE_POLICY_HH
