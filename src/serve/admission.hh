/**
 * @file
 * Admission control for the shared device pool.
 *
 * A job's footprint splits Salus-style into:
 *
 *  - persistent bytes, held for the job's whole lifetime (weights,
 *    shared dW, the classifier block — and, for Baseline tenants, the
 *    entire network-wide allocation);
 *  - transient bytes, the per-iteration working set that is allocated
 *    at iteration start and fully released by iteration end (the
 *    executor's steady-state invariant guarantees this).
 *
 * Because the scheduler interleaves tenants at *iteration*
 * granularity, at most one tenant's transient working set is live at
 * any instant; tenants between iterations hold only their persistent
 * bytes. Admission therefore requires
 *
 *     sum(persistent_i) + max(transient_i)  <=  pool capacity
 *
 * — one communal transient arena sized to the largest admitted
 * tenant, not one per tenant. This is where vDNN pays off twice: its
 * offloading shrinks the transient term (feature maps live in host
 * memory between forward and backward), and its persistent term is
 * tiny next to Baseline's network-wide allocation, so far more
 * tenants pack onto the same 12 GB device.
 *
 * Reservations are bookkept against pool capacity rather than live
 * usage so admission is stable while the active tenant's usage
 * fluctuates within its reservation.
 */

#ifndef VDNN_SERVE_ADMISSION_HH
#define VDNN_SERVE_ADMISSION_HH

#include "core/planner.hh"
#include "dnn/cudnn_sim.hh"
#include "net/network.hh"
#include "serve/job.hh"

#include <unordered_map>

namespace vdnn::serve
{

/** Estimated device-pool footprint of one job. */
struct FootprintEstimate
{
    /** Resident for the whole job: weights, dW, classifier block. */
    Bytes persistent = 0;
    /** Peak per-iteration working set (released between iterations). */
    Bytes transient = 0;

    Bytes total() const { return persistent + transient; }
};

/**
 * Analytically estimate the device footprint of training @p net under
 * a resolved MemoryPlan: static-allocation plans hold everything
 * persistently; directive plans keep the non-offloaded reused buffers
 * resident plus the largest per-layer working set.
 */
FootprintEstimate estimateFootprint(const net::Network &net,
                                    const dnn::CudnnSim &cudnn,
                                    const core::MemoryPlan &plan);

/**
 * Estimate the footprint a planner must be budgeted for: its
 * admissionPlan() (the most memory-conservative plan it may settle
 * on — for DynamicPlanner the vDNN_all memory floor).
 */
FootprintEstimate estimatePlannerFootprint(const net::Network &net,
                                           const dnn::CudnnSim &cudnn,
                                           core::Planner &planner,
                                           const core::PlannerContext &ctx);

class AdmissionController
{
  public:
    /**
     * @param capacity shared device pool size
     * @param safety   reservation inflation guarding estimate error
     *                 and allocator fragmentation (e.g. 1.05 = +5%)
     */
    AdmissionController(Bytes capacity, double safety = 1.05);

    /**
     * Packed-overlap mode: iterations of all admitted tenants may be
     * in flight *simultaneously*, so the shared-transient-arena
     * assumption above no longer holds — every tenant's transient
     * working set must be reserved at once (sum instead of max).
     * Default off (iteration-granularity interleaving).
     */
    void setOverlapTransients(bool overlap) { overlapTransients = overlap; }

    /**
     * Would @p est (scaled by @p scale) fit beside the admitted set,
     * i.e. sum(persistent) + max(transient) stays within capacity
     * (sum(transient) in packed-overlap mode)?
     */
    bool canAdmit(const FootprintEstimate &est, double scale = 1.0) const;

    /** Could it fit an *empty* device at all (else: reject outright)?
     *  @p scale includes any OOM-backoff inflation the job accrued. */
    bool feasible(const FootprintEstimate &est, double scale = 1.0) const;

    /** Record an admitted job's reservation. */
    void admit(JobId id, const FootprintEstimate &est, double scale = 1.0);

    /**
     * Drop a reservation (job finished / torn down). The job may be
     * device-resident or evicted — either ledger entry is released.
     */
    void release(JobId id);

    // --- evict / readmit (the lifecycle state machine) -------------------
    //
    // Reserved bytes track the *state machine*, not the job lifetime:
    // an evicted tenant holds no device reservation (its bytes are
    // free for the preemptor) but stays on the evicted ledger, so the
    // controller can restore the exact reservation on readmission and
    // the books balance to zero only when every tenant is gone.

    /** Move an admitted job's reservation to the evicted ledger,
     *  freeing its device bytes (suspend -> evict). */
    void evict(JobId id);

    /** Would the evicted job's reservation fit back beside the
     *  currently resident set? */
    bool canReadmit(JobId id) const;

    /** Restore an evicted job's reservation (resume). */
    void readmit(JobId id);

    /**
     * Replace a resident job's reservation with one derived from a
     * *measured* footprint (first-iteration profiling). Shrink-only:
     * each component takes the min of the existing reservation and the
     * safety-scaled measurement, so a tenant whose profile came in
     * above the analytic estimate is never squeezed past what it was
     * admitted with (the pool already holds its current allocation).
     * @return bytes returned to the pool (>= 0).
     */
    Bytes updateReservation(JobId id, const FootprintEstimate &measured,
                            double scale = 1.0);

    /** Safety-scaled reservation of a single job standing alone. */
    Bytes reservationFor(const FootprintEstimate &est,
                         double scale = 1.0) const;

    Bytes capacity() const { return cap; }
    /** Committed device bytes: sum of resident persistents + the
     *  transient arena. Evicted tenants contribute nothing. */
    Bytes reservedBytes() const;
    /** Device-resident reservations (Running/Suspended tenants). */
    int admittedCount() const { return int(reservations.size()); }
    /** Tenants parked on the evicted ledger. */
    int evictedCount() const { return int(evictedLedger.size()); }

  private:
    struct Reservation
    {
        Bytes persistent = 0;
        Bytes transient = 0;
    };

    /** Transient arena the admitted set needs: max, or sum when
     *  packed overlap keeps several iterations in flight at once. */
    Bytes transientArena() const;

    bool fits(const Reservation &r) const;

    Bytes cap;
    double safety;
    bool overlapTransients = false;
    Bytes persistentSum = 0;
    std::unordered_map<JobId, Reservation> reservations;
    /** Preempted tenants: reservation remembered, device bytes free. */
    std::unordered_map<JobId, Reservation> evictedLedger;
};

} // namespace vdnn::serve

#endif // VDNN_SERVE_ADMISSION_HH
