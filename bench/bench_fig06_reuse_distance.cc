/**
 * @file
 * Figure 6: per-layer forward/backward computation latency of VGG-16
 * and the reuse distance of each layer's input feature maps (time from
 * the end of a layer's forward computation to the start of its own
 * backward computation).
 *
 * Paper anchors: the reuse distance of the first layer exceeds 1200 ms
 * on VGG-16 (64) and 60 ms on AlexNet (128); reuse distance decreases
 * monotonically with layer depth.
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "dnn/layer.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

/** First CONV layer's reuse distance under the oracle baseline. */
double
firstLayerReuseMs(const net::Network &network,
                  const core::SessionResult &result)
{
    for (net::LayerId id : network.topoOrder()) {
        if (network.node(id).spec.kind == dnn::LayerKind::Conv)
            return toMs(result.layerTimings[std::size_t(id)]
                            .reuseDistance());
    }
    return 0.0;
}

void
report()
{
    auto vgg = net::buildVgg16(64);
    auto vgg_result = runPlanner(*vgg, baselinePlanner(core::AlgoPreference::PerformanceOptimal), /*oracle=*/true);

    stats::Table table("Figure 6: VGG-16 (64) per-layer latency and "
                       "reuse distance (baseline)");
    table.setColumns({"layer", "fwd (ms)", "bwd (ms)",
                      "reuse distance (ms)"});
    bool monotonic = true;
    double prev = 1e18;
    for (net::LayerId id : vgg->topoOrder()) {
        const auto &node = vgg->node(id);
        if (node.spec.kind != dnn::LayerKind::Conv &&
            node.spec.kind != dnn::LayerKind::Fc) {
            continue;
        }
        const auto &t = vgg_result.layerTimings[std::size_t(id)];
        double reuse = toMs(t.reuseDistance());
        if (node.spec.kind == dnn::LayerKind::Conv) {
            monotonic = monotonic && reuse <= prev + 1e-9;
            prev = reuse;
        }
        table.addRow({node.spec.name,
                      stats::Table::cell(toMs(t.fwdLatency()), 1),
                      stats::Table::cell(toMs(t.bwdLatency()), 1),
                      stats::Table::cell(reuse, 0)});
    }
    table.print();

    auto alex = net::buildAlexNet(128);
    auto alex_result = runPlanner(*alex, baselinePlanner(core::AlgoPreference::PerformanceOptimal), /*oracle=*/true);

    stats::Comparison cmp("Figure 6");
    cmp.addBool("VGG-16 (64) first-layer reuse distance > 1200 ms", true,
                firstLayerReuseMs(*vgg, vgg_result) > 1200.0);
    cmp.addBool("AlexNet (128) first-layer reuse distance > 60 ms", true,
                firstLayerReuseMs(*alex, alex_result) > 60.0);
    cmp.addBool("reuse distance decreases with layer depth", true,
                monotonic);
    cmp.addInfo("VGG-16 (64) first-layer reuse", "> 1200 ms",
                strFormat("%.0f ms", firstLayerReuseMs(*vgg, vgg_result)));
    cmp.addInfo("AlexNet (128) first-layer reuse", "> 60 ms",
                strFormat("%.0f ms",
                          firstLayerReuseMs(*alex, alex_result)));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("fig06/baseline_iteration_vgg16_64", [] {
        auto network = net::buildVgg16(64);
        benchmark::DoNotOptimize(
            runPlanner(*network, baselinePlanner(core::AlgoPreference::PerformanceOptimal), true)
                .iterationTime);
    });
    return benchMain(argc, argv, report);
}
