/**
 * @file
 * gem5-style status and error reporting.
 *
 * Severity model (mirrors gem5 src/base/logging.hh):
 *  - panic():  an internal invariant was violated (a bug in this
 *              simulator). Aborts.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, impossible request). Throws
 *              FatalError so library users and tests can recover.
 *  - warn():   something is questionable but the run can continue.
 *  - inform(): plain status output.
 *
 * All take printf-style format strings.
 */

#ifndef VDNN_COMMON_LOGGING_HH
#define VDNN_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace vdnn
{

/** Exception thrown by fatal(): unrecoverable *user* error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** strFormat with an explicit va_list. */
std::string vstrFormat(const char *fmt, va_list args);

/** Internal simulator bug: print and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** User/configuration error: throw FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Continue-able warning (written to stderr). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Status message (written to stdout). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (benchmarks want clean stdout). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() are suppressed. */
bool isQuiet();

} // namespace vdnn

/**
 * Assert a simulator invariant; violations are simulator bugs and panic.
 * Enabled in all build types: the simulator's correctness argument rests
 * on these checks, so they must not compile away in release builds.
 */
#define VDNN_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::vdnn::panic("assertion '%s' failed at %s:%d: %s", #cond,       \
                          __FILE__, __LINE__,                                \
                          ::vdnn::strFormat(__VA_ARGS__).c_str());           \
        }                                                                    \
    } while (0)

#endif // VDNN_COMMON_LOGGING_HH
