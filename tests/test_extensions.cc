/**
 * @file
 * Extension and sensitivity tests beyond the paper's core evaluation:
 * NVLINK-class interconnects (mentioned in Section III-A), alternative
 * GPUs, executor configuration variants (the ablation switches), and
 * the prefetch-eviction robustness mechanism.
 */

#include "core/dynamic_policy.hh"
#include "core/training_session.hh"

#include "common/units.hh"
#include "interconnect/pcie_link.hh"
#include "net/builders.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::core;
using namespace vdnn::literals;

namespace
{

SessionResult
runWith(const net::Network &network, SessionConfig cfg)
{
    return runSession(network, cfg);
}

SessionConfig
allM()
{
    SessionConfig cfg;
    cfg.planner = std::make_shared<OffloadAllPlanner>(
        AlgoPreference::MemoryOptimal);
    return cfg;
}

} // namespace

// --- interconnect sensitivity (Section III-A mentions NVLINK) ---------------

TEST(Extensions, NvlinkShrinksOffloadStalls)
{
    auto network = net::buildGoogLeNet(128); // offload-stall heavy
    SessionConfig pcie = allM();
    SessionConfig nvlink = allM();
    nvlink.gpu.pcie = ic::nvlinkGen1();
    auto r_pcie = runWith(*network, pcie);
    auto r_nvlink = runWith(*network, nvlink);
    ASSERT_TRUE(r_pcie.trainable);
    ASSERT_TRUE(r_nvlink.trainable);
    EXPECT_LT(r_nvlink.transferStallTime, r_pcie.transferStallTime / 2);
    EXPECT_LT(r_nvlink.iterationTime, r_pcie.iterationTime);
}

TEST(Extensions, SlowerInterconnectNeverHelps)
{
    auto network = net::buildVgg16(64);
    SessionConfig fast = allM();
    SessionConfig slow = allM();
    slow.gpu.pcie.dmaBandwidth = 4.0e9; // gen2-class
    auto r_fast = runWith(*network, fast);
    auto r_slow = runWith(*network, slow);
    EXPECT_GE(r_slow.iterationTime, r_fast.iterationTime);
    EXPECT_GT(r_slow.transferStallTime, r_fast.transferStallTime);
}

// --- GPU sensitivity -----------------------------------------------------------

TEST(Extensions, PascalTrainsFasterThanMaxwell)
{
    auto network = net::buildVgg16(64);
    SessionConfig maxwell = allM();
    SessionConfig pascal = allM();
    pascal.gpu = gpu::titanXPascal();
    auto r_m = runWith(*network, maxwell);
    auto r_p = runWith(*network, pascal);
    EXPECT_LT(r_p.iterationTime, r_m.iterationTime);
}

TEST(Extensions, FasterGpuExposesMoreOffloadStall)
{
    // Speeding up compute while keeping PCIe fixed makes transfers
    // harder to hide — the flip side of the paper's hiding argument.
    auto network = net::buildGoogLeNet(128);
    SessionConfig maxwell = allM();
    SessionConfig pascal = allM();
    pascal.gpu = gpu::titanXPascal();
    auto r_m = runWith(*network, maxwell);
    auto r_p = runWith(*network, pascal);
    double stall_share_m = double(r_m.transferStallTime) /
                           double(r_m.iterationTime);
    double stall_share_p = double(r_p.transferStallTime) /
                           double(r_p.iterationTime);
    EXPECT_GT(stall_share_p, stall_share_m);
}

TEST(Extensions, SmallGpuRescuedByVdnn)
{
    auto network = net::buildVgg16(64);
    SessionConfig base;
    base.planner = std::make_shared<BaselinePlanner>(
        AlgoPreference::MemoryOptimal);
    base.gpu = gpu::smallGpu4GiB();
    EXPECT_FALSE(runWith(*network, base).trainable);
    SessionConfig dyn;
    dyn.planner = std::make_shared<DynamicPlanner>();
    dyn.gpu = gpu::smallGpu4GiB();
    auto r = runWith(*network, dyn);
    EXPECT_TRUE(r.trainable);
    EXPECT_LE(r.maxTotalUsage, gpu::smallGpu4GiB().dramCapacity);
}

// --- executor configuration variants -----------------------------------------------

TEST(Extensions, AsyncReleaseTradesMemoryForSpeed)
{
    auto network = net::buildAlexNet(128); // offloads outlive layers
    SessionConfig sync = allM();
    SessionConfig async = allM();
    async.exec.syncAtLayerBoundary = false;
    auto r_sync = runWith(*network, sync);
    auto r_async = runWith(*network, async);
    ASSERT_TRUE(r_sync.trainable);
    ASSERT_TRUE(r_async.trainable);
    EXPECT_LE(r_async.iterationTime, r_sync.iterationTime);
    EXPECT_GE(r_async.maxManagedUsage, r_sync.maxManagedUsage);
}

TEST(Extensions, NoPrefetchForcesOnDemandFetches)
{
    auto network = net::buildVgg16(64);
    SessionConfig no_prefetch = allM();
    no_prefetch.exec.prefetchEnabled = false;
    auto r = runWith(*network, no_prefetch);
    ASSERT_TRUE(r.trainable);
    EXPECT_EQ(r.prefetches, 0);
    EXPECT_GT(r.onDemandFetches, 0);
    // Every offloaded buffer must come back one way or another.
    EXPECT_EQ(r.onDemandFetches, r.offloads);
}

TEST(Extensions, UnboundedWindowPrefetchesEverythingEarly)
{
    auto network = net::buildVgg16(64);
    SessionConfig unbounded = allM();
    unbounded.exec.prefetchWindowBounded = false;
    auto r = runWith(*network, unbounded);
    ASSERT_TRUE(r.trainable);
    EXPECT_EQ(r.onDemandFetches, 0);
    // Early prefetching re-inflates memory versus the bounded window.
    auto bounded = runWith(*network, allM());
    EXPECT_GE(r.avgManagedUsage, bounded.avgManagedUsage);
}

// --- prefetch eviction robustness ---------------------------------------------------

TEST(Extensions, EvictionRescuesConvPolicyOnVgg256)
{
    // vDNN_conv (m) on VGG-16 (256) peaks within ~3% of the 12 GiB
    // capacity; without prefetch eviction the transient prefetch
    // co-residency makes the mandatory pool1 gradient allocation fail.
    auto network = net::buildVgg16(256);
    SessionConfig cfg;
    cfg.planner = std::make_shared<OffloadConvPlanner>(
        AlgoPreference::MemoryOptimal);
    auto r = runWith(*network, cfg);
    ASSERT_TRUE(r.trainable) << r.failReason;
    EXPECT_LE(r.maxTotalUsage, gpu::titanXMaxwell().dramCapacity);
}

TEST(Extensions, EvictionUnnecessaryWithHeadroom)
{
    auto network = net::buildVgg16(64); // tons of headroom
    auto r = runWith(*network, allM());
    ASSERT_TRUE(r.trainable);
    EXPECT_EQ(r.onDemandFetches, 0);
}

// --- session plumbing ------------------------------------------------------------------

TEST(Extensions, SessionConfigNames)
{
    SessionConfig cfg;
    cfg.planner = std::make_shared<OffloadAllPlanner>(
        AlgoPreference::MemoryOptimal);
    EXPECT_EQ(sessionConfigName(cfg), "vDNN_all (m)");
    cfg.planner.reset(); // defaults to vDNN_dyn
    EXPECT_EQ(sessionConfigName(cfg), "vDNN_dyn");
    cfg.planner = std::make_shared<BaselinePlanner>(
        AlgoPreference::PerformanceOptimal);
    cfg.oracle = true;
    EXPECT_EQ(sessionConfigName(cfg), "base (p) [oracle]");
}

TEST(Extensions, OracleNeverFails)
{
    for (const auto &entry : net::veryDeepSuite()) {
        auto network = entry.build();
        SessionConfig cfg;
        cfg.planner = std::make_shared<BaselinePlanner>(
            AlgoPreference::PerformanceOptimal);
        cfg.oracle = true;
        auto r = runWith(*network, cfg);
        EXPECT_TRUE(r.trainable) << entry.name;
    }
}

TEST(Extensions, KernelLogCoversEveryLayerTwice)
{
    auto network = net::buildTinyCnn(4);
    SessionConfig cfg;
    cfg.planner = std::make_shared<BaselinePlanner>(
        AlgoPreference::MemoryOptimal);
    cfg.iterations = 1;
    cfg.kernelLog = true;
    auto r = runWith(*network, cfg);
    ASSERT_TRUE(r.trainable);
    // Forward kernel + at least one backward kernel per layer.
    EXPECT_GE(r.kernels.size(), 2 * network->numLayers() - 1);
    for (const auto &k : r.kernels) {
        EXPECT_GT(k.duration(), 0);
        EXPECT_FALSE(k.name.empty());
    }
}

TEST(Extensions, DynProfilingTrialsAreReported)
{
    auto network = net::buildVgg16(256);
    SessionConfig cfg;
    cfg.planner = std::make_shared<DynamicPlanner>();
    auto r = runWith(*network, cfg);
    ASSERT_TRUE(r.trainable);
    // Probe + no-offload + static (p) passes + greedy rounds.
    EXPECT_GE(r.trials.size(), 4u);
    EXPECT_TRUE(r.trials.front().passed); // vDNN_all (m) probe
    EXPECT_FALSE(r.plan.provenance.empty());
}
