/**
 * @file
 * AlexNet builder ("one weird trick" single-tower variant, as in the
 * convnet-benchmarks reference models the paper evaluates, [41]).
 */

#include "net/builders.hh"

#include "common/logging.hh"

namespace vdnn::net
{

using namespace vdnn::dnn;

std::unique_ptr<Network>
buildAlexNet(std::int64_t batch)
{
    VDNN_ASSERT(batch > 0, "batch must be positive");
    TensorShape in{batch, 3, 224, 224};
    auto net = std::make_unique<Network>(
        strFormat("AlexNet (%lld)", (long long)batch), in);

    auto conv = [&](const std::string &name, const TensorShape &x,
                    std::int64_t k, int kernel, int stride, int pad) {
        ConvParams p;
        p.outChannels = k;
        p.kernelH = p.kernelW = kernel;
        p.strideH = p.strideW = stride;
        p.padH = p.padW = pad;
        return net->append(makeConv(name, x, p));
    };
    auto relu = [&](const std::string &name) {
        const TensorShape &x = net->node(LayerId(net->numLayers() - 1)).spec.out;
        return net->append(makeActivation(name, x));
    };
    auto maxpool = [&](const std::string &name, int window, int stride) {
        const TensorShape &x = net->node(LayerId(net->numLayers() - 1)).spec.out;
        PoolParams p;
        p.windowH = p.windowW = window;
        p.strideH = p.strideW = stride;
        return net->append(makePool(name, x, p));
    };
    auto shape = [&]() {
        return net->node(LayerId(net->numLayers() - 1)).spec.out;
    };

    conv("conv1", in, 64, 11, 4, 2); // 224 -> 55
    relu("relu1");
    net->append(makeLrn("lrn1", shape()));
    maxpool("pool1", 3, 2); // 55 -> 27
    conv("conv2", shape(), 192, 5, 1, 2);
    relu("relu2");
    net->append(makeLrn("lrn2", shape()));
    maxpool("pool2", 3, 2); // 27 -> 13
    conv("conv3", shape(), 384, 3, 1, 1);
    relu("relu3");
    conv("conv4", shape(), 256, 3, 1, 1);
    relu("relu4");
    conv("conv5", shape(), 256, 3, 1, 1);
    relu("relu5");
    maxpool("pool5", 3, 2); // 13 -> 6

    net->append(makeFc("fc6", shape(), FcParams{4096}));
    net->append(makeActivation("relu6", shape()));
    net->append(makeDropout("drop6", shape()));
    net->append(makeFc("fc7", shape(), FcParams{4096}));
    net->append(makeActivation("relu7", shape()));
    net->append(makeDropout("drop7", shape()));
    net->append(makeFc("fc8", shape(), FcParams{1000}));
    net->append(makeSoftmaxLoss("loss", shape()));

    net->finalize();
    return net;
}

} // namespace vdnn::net
