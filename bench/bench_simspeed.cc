/**
 * @file
 * Raw simulator speed: wall-clock seconds per million simulated
 * events, with telemetry off and on.
 *
 * Every figure bench measures the *simulated* machine; this one
 * measures the simulator. The workload is a fixed 8-tenant AlexNet /
 * OverFeat burst on 2 devices (round-robin packing, rebalance
 * migration), so the event mix covers kernels, DMAs, arbiter grants
 * and scheduler decisions. The denominator is the event queue's
 * executed-event counter, so the metric is insensitive to workload
 * rescaling only insofar as the event mix stays put — treat it as a
 * trajectory, not an absolute.
 *
 * The telemetry-on column re-runs the same workload with a
 * TraceRecorder and MetricsRegistry attached; the overhead column is
 * what the always-compiled hooks cost when somebody actually looks.
 * With telemetry detached the hooks are null-pointer checks and the
 * overhead must stay in the noise (< 2%).
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/placement.hh"
#include "serve/scheduler.hh"

#include <chrono>
#include <cstdio>
#include <cstring>

using namespace vdnn;
using namespace vdnn::bench;
using namespace vdnn::serve;

namespace
{

std::vector<JobSpec>
speedMix()
{
    std::vector<JobSpec> specs;
    for (int i = 0; i < 8; ++i) {
        JobSpec spec;
        spec.name = strFormat("speed-%02d", i);
        spec.network = i % 2 == 0 ? net::buildAlexNet(128)
                                  : net::buildOverFeat(128);
        spec.planner = offloadAllPlanner();
        spec.arrival = TimeNs(i) * 5 * kNsPerMs;
        spec.iterations = 3;
        specs.push_back(std::move(spec));
    }
    return specs;
}

struct SpeedPoint
{
    double wallSeconds = 0.0;
    std::int64_t events = 0;
    double secondsPerMillionEvents() const
    {
        return events > 0 ? wallSeconds * 1e6 / double(events) : 0.0;
    }
};

SpeedPoint
runWorkload(bool telemetry)
{
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.devices.assign(2, cfg.gpu);
    cfg.placement = std::make_shared<LoadBalancePlacement>();
    cfg.rebalancePeriod = 100 * kNsPerMs;
    cfg.rebalanceThreshold = 2;
    if (telemetry) {
        cfg.telemetry.trace = &trace;
        cfg.telemetry.metrics = &metrics;
    }
    Scheduler sched(cfg);
    for (JobSpec &spec : speedMix())
        sched.submit(std::move(spec));

    auto t0 = std::chrono::steady_clock::now();
    ServeReport rep = sched.run();
    auto t1 = std::chrono::steady_clock::now();
    VDNN_ASSERT(rep.finishedCount() == int(rep.jobs.size()),
                "simspeed workload must finish (%d/%zu)",
                rep.finishedCount(), rep.jobs.size());

    SpeedPoint p;
    p.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    p.events = std::int64_t(sched.runtime().clock().executed());
    return p;
}

/** Best-of-N to shave scheduler-noise off the wall clock. */
SpeedPoint
bestOf(int n, bool telemetry)
{
    SpeedPoint best = runWorkload(telemetry);
    for (int i = 1; i < n; ++i) {
        SpeedPoint p = runWorkload(telemetry);
        if (p.wallSeconds < best.wallSeconds)
            best = p;
    }
    return best;
}

void
report()
{
    SpeedPoint off = bestOf(3, /*telemetry=*/false);
    SpeedPoint on = bestOf(3, /*telemetry=*/true);
    double overhead_pct =
        off.wallSeconds > 0.0
            ? (on.wallSeconds / off.wallSeconds - 1.0) * 100.0
            : 0.0;

    stats::Table table("Simulator speed: 8-tenant burst on 2 devices "
                       "(best of 3)");
    table.setColumns({"telemetry", "events", "wall (ms)",
                      "s / M events", "M events / s"});
    struct Row
    {
        const char *label;
        const SpeedPoint *p;
    };
    const Row rows[] = {{"off", &off}, {"on", &on}};
    for (const Row &r : rows) {
        double mevs = r.p->secondsPerMillionEvents();
        table.addRow({r.label,
                      stats::Table::cellInt((long long)r.p->events),
                      stats::Table::cell(r.p->wallSeconds * 1e3, 1),
                      stats::Table::cell(mevs, 3),
                      stats::Table::cell(mevs > 0 ? 1.0 / mevs : 0.0,
                                         2)});
    }
    table.print();
    std::printf("telemetry overhead: %+.1f%%\n", overhead_pct);

    recordBenchMetric("simspeed.events", double(off.events));
    recordBenchMetric("simspeed.sec_per_mevent",
                      off.secondsPerMillionEvents());
    recordBenchMetric("simspeed.sec_per_mevent_telemetry",
                      on.secondsPerMillionEvents());
    recordBenchMetric("simspeed.telemetry_overhead_pct", overhead_pct);
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("simspeed/8_tenants_2dev", [] {
        runWorkload(/*telemetry=*/false);
    });
    return benchMain(argc, argv, report);
}
