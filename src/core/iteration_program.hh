/**
 * @file
 * IterationProgram — the compiled op-stream IR of one training
 * iteration.
 *
 * The Executor used to run a whole forward+backward pass inside one
 * imperative, blocking loop. That made iteration execution an
 * all-or-nothing unit: an external scheduler could interleave tenants
 * only at iteration granularity, and the compute engine idled through
 * every tenant's DMA stalls. This IR decomposes the iteration into an
 * explicit op stream compiled once from (Network, MemoryPlan,
 * ExecutorConfig):
 *
 *   BeginIteration                          reset state, input batch
 *   per layer, forward order:
 *     Alloc / Kernel / [Offload] / Sync / Release
 *   Barrier                                 drain deferred releases
 *   per layer, reverse order:
 *     [OnDemandFetch] / [Alloc] / [Prefetch] / Kernel / Sync / Release
 *   EndIteration                            drain, verify steady state
 *
 * Bracketed ops are specialized away at compile time when the plan
 * makes them statically dead (a static-allocation plan performs no
 * memory traffic; a layer whose inputs are never offloaded needs no
 * Offload op). Everything data-dependent — opportunistic prefetch
 * hits, host-exhaustion fallbacks, OOM recovery — stays a runtime
 * decision inside the op bodies, so stepping the program reproduces
 * the monolithic loop exactly.
 *
 * The program is executed by an IterationStepper (core/executor.hh),
 * which advances one op at a time and can be suspended at every Sync
 * boundary — the substrate the serve layer's PackedOverlap policy uses
 * to run tenant B's compute under tenant A's DMAs, and that the
 * session lifecycle state machine builds on: mid-run re-planning
 * (Session::replan / resume-after-evict) swaps a freshly compiled
 * program in at an iteration boundary.
 */

#ifndef VDNN_CORE_ITERATION_PROGRAM_HH
#define VDNN_CORE_ITERATION_PROGRAM_HH

#include "net/network.hh"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vdnn::core
{

struct MemoryPlan;
struct ExecutorConfig;

/** What one program step does. */
enum class OpKind : std::uint8_t
{
    BeginIteration, ///< reset per-iteration state, materialize input
    Alloc,          ///< mandatory allocations (Y/workspace/gradients)
    Kernel,         ///< launch the layer's kernels on stream_compute
    Offload,        ///< issue D2H DMAs for the layer's offloaded inputs
    OnDemandFetch,  ///< ensure residency, fetching serialized if needed
    Prefetch,       ///< Fig. 10 search + overlapped H2D issue
    Sync,           ///< layer boundary: join compute and memory streams
    Release,        ///< workspace / dead-buffer releases, timing record
    Barrier,        ///< forward->backward: drain deferred releases
    EndIteration,   ///< final drain, steady-state invariant check
};

const char *opKindName(OpKind k);

/** One step of the compiled iteration. */
struct IterOp
{
    OpKind kind = OpKind::BeginIteration;
    /** Owning layer; kInputLayer for the structural ops. */
    net::LayerId layer = net::kInputLayer;
    /** Backward-phase op (structural ops: phase they belong to). */
    bool backward = false;
};

/**
 * The compiled op stream. Immutable once compiled; one program drives
 * every iteration of an Executor (the plan and config are fixed for
 * the executor's lifetime).
 */
struct IterationProgram
{
    std::vector<IterOp> ops;

    static IterationProgram compile(const net::Network &net,
                                    const MemoryPlan &plan,
                                    const ExecutorConfig &cfg);

    std::size_t size() const { return ops.size(); }

    /** Human-readable op-stream listing (one op per line). */
    std::string dump(const net::Network &net) const;
};

} // namespace vdnn::core

#endif // VDNN_CORE_ITERATION_PROGRAM_HH
