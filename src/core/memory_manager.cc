#include "core/memory_manager.hh"

#include "common/logging.hh"

namespace vdnn::core
{

MemoryManager::MemoryManager(gpu::Runtime &rt, bool keep_timeline)
    : runtime(rt)
{
    const gpu::GpuSpec &spec = runtime.spec();
    ownedPool = std::make_unique<mem::MemoryPool>(spec.dramCapacity,
                                                  spec.name + " pool");
    ownedHost = std::make_unique<mem::PinnedHostAllocator>(
        spec.hostCapacity);
    gpuPool = ownedPool.get();
    hostAlloc = ownedHost.get();
    initTrackers(keep_timeline);
}

MemoryManager::MemoryManager(gpu::Runtime &rt,
                             mem::MemoryPool &shared_pool,
                             mem::PinnedHostAllocator &shared_host,
                             int client_id, bool keep_timeline)
    : runtime(rt), gpuPool(&shared_pool), hostAlloc(&shared_host),
      client(client_id)
{
    initTrackers(keep_timeline);
}

void
MemoryManager::initTrackers(bool keep_timeline)
{
    auto clock = [this] { return runtime.now(); };
    totalTrack = std::make_unique<mem::UsageTracker>(clock, keep_timeline);
    managedTrack =
        std::make_unique<mem::UsageTracker>(clock, keep_timeline);
    totalTrack->onUsage(deviceBytes);
    touchManaged();
}

void
MemoryManager::touchManaged()
{
    managedTrack->onUsage(managedBytes);
}

MemoryManager::BufferState &
MemoryManager::stateFor(net::BufferId buffer)
{
    VDNN_ASSERT(buffer >= 0, "negative buffer id %d", buffer);
    if (size_t(buffer) >= bufferStates.size())
        bufferStates.resize(size_t(buffer) + 1);
    return bufferStates[size_t(buffer)];
}

std::optional<mem::Allocation>
MemoryManager::allocDevice(Bytes bytes, const std::string &tag,
                           bool managed)
{
    auto a = gpuPool->tryAllocate(bytes, tag, client);
    if (a) {
        deviceBytes += a->size;
        totalTrack->onUsage(deviceBytes);
        if (managed) {
            managedBytes += a->size;
            touchManaged();
        }
    }
    return a;
}

void
MemoryManager::releaseDevice(const mem::Allocation &alloc, bool managed)
{
    gpuPool->release(alloc);
    deviceBytes -= alloc.size;
    VDNN_ASSERT(deviceBytes >= 0, "device usage went negative");
    totalTrack->onUsage(deviceBytes);
    if (managed) {
        managedBytes -= alloc.size;
        VDNN_ASSERT(managedBytes >= 0, "managed usage went negative");
        touchManaged();
    }
}

bool
MemoryManager::allocBuffer(const net::Network &net, net::BufferId buffer)
{
    BufferState &st = stateFor(buffer);
    VDNN_ASSERT(st.residence == Residence::Unallocated,
                "buffer %d is already materialized (state %d)", buffer,
                int(st.residence));
    const net::Buffer &b = net.buffer(buffer);
    auto a = allocDevice(b.bytes(),
                         strFormat("fmap:%d", buffer), !b.classifier);
    if (!a)
        return false;
    st.device = *a;
    st.residence = Residence::Device;
    return true;
}

bool
MemoryManager::beginOffload(const net::Network &net, net::BufferId buffer)
{
    BufferState &st = stateFor(buffer);
    VDNN_ASSERT(st.residence == Residence::Device,
                "offload of non-resident buffer %d", buffer);
    const net::Buffer &b = net.buffer(buffer);
    // Pinned host staging region, allocated with cudaMallocHost().
    auto h = hostAlloc->tryAllocate(b.bytes(),
                                    strFormat("offload:%d", buffer));
    if (!h)
        return false;
    st.host = *h;
    st.hostValid = true;
    st.residence = Residence::Offloading;
    offloadTotal += b.bytes();
    return true;
}

void
MemoryManager::finishOffload(const net::Network &net, net::BufferId buffer)
{
    BufferState &st = stateFor(buffer);
    VDNN_ASSERT(st.residence == Residence::Offloading,
                "finishOffload on buffer %d in state %d", buffer,
                int(st.residence));
    releaseDevice(st.device, !net.buffer(buffer).classifier);
    st.device = {};
    st.residence = Residence::Host;
}

bool
MemoryManager::beginPrefetch(const net::Network &net, net::BufferId buffer)
{
    BufferState &st = stateFor(buffer);
    VDNN_ASSERT(st.residence == Residence::Host,
                "prefetch of buffer %d in state %d", buffer,
                int(st.residence));
    const net::Buffer &b = net.buffer(buffer);
    auto a = allocDevice(b.bytes(), strFormat("prefetch:%d", buffer),
                         !b.classifier);
    if (!a)
        return false;
    st.device = *a;
    st.residence = Residence::Prefetching;
    return true;
}

void
MemoryManager::finishPrefetch(net::BufferId buffer)
{
    BufferState &st = stateFor(buffer);
    VDNN_ASSERT(st.residence == Residence::Prefetching,
                "finishPrefetch on buffer %d in state %d", buffer,
                int(st.residence));
    // Host copy retained (still valid) so eviction stays free.
    st.residence = Residence::Device;
}

void
MemoryManager::evictToHost(const net::Network &net, net::BufferId buffer)
{
    BufferState &st = stateFor(buffer);
    VDNN_ASSERT(st.residence == Residence::Device && st.hostValid,
                "evict of buffer %d in state %d (hostValid=%d)", buffer,
                int(st.residence), int(st.hostValid));
    releaseDevice(st.device, !net.buffer(buffer).classifier);
    st.device = {};
    st.residence = Residence::Host;
}

bool
MemoryManager::hostCopyValid(net::BufferId buffer) const
{
    return buffer >= 0 && size_t(buffer) < bufferStates.size() &&
           bufferStates[size_t(buffer)].hostValid;
}

void
MemoryManager::releaseBuffer(const net::Network &net, net::BufferId buffer)
{
    BufferState &st = stateFor(buffer);
    VDNN_ASSERT(st.residence == Residence::Device,
                "release of buffer %d in state %d", buffer,
                int(st.residence));
    releaseDevice(st.device, !net.buffer(buffer).classifier);
    st.device = {};
    if (st.hostValid) {
        hostAlloc->release(st.host);
        st.host = {};
        st.hostValid = false;
    }
    st.residence = Residence::Unallocated;
}

void
MemoryManager::dropHostCopy(net::BufferId buffer)
{
    BufferState &st = stateFor(buffer);
    VDNN_ASSERT(st.residence == Residence::Host,
                "dropHostCopy on buffer %d in state %d", buffer,
                int(st.residence));
    hostAlloc->release(st.host);
    st.host = {};
    st.hostValid = false;
    st.residence = Residence::Unallocated;
}

void
MemoryManager::forceRelease(const net::Network &net, net::BufferId buffer)
{
    switch (residence(buffer)) {
      case Residence::Unallocated:
        return;
      case Residence::Device:
        releaseBuffer(net, buffer);
        return;
      case Residence::Offloading:
        finishOffload(net, buffer);
        dropHostCopy(buffer);
        return;
      case Residence::Host:
        dropHostCopy(buffer);
        return;
      case Residence::Prefetching:
        finishPrefetch(buffer);
        releaseBuffer(net, buffer);
        return;
    }
}

Residence
MemoryManager::residence(net::BufferId buffer) const
{
    if (buffer < 0 || size_t(buffer) >= bufferStates.size())
        return Residence::Unallocated;
    return bufferStates[size_t(buffer)].residence;
}

void
MemoryManager::finishTracking()
{
    totalTrack->finish();
    managedTrack->finish();
}

} // namespace vdnn::core
