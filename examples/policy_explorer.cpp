/**
 * @file
 * Policy explorer: sweep every (transfer policy, algorithm mode)
 * combination for a chosen benchmark network and GPU, printing the
 * memory/performance trade-off surface.
 *
 * Usage: policy_explorer [network] [gpu]
 *   network: alexnet | overfeat | googlenet | vgg16-64 | vgg16-128 |
 *            vgg16-256 | vgg116 | vgg216 | vgg316 | vgg416  (default
 *            vgg16-128)
 *   gpu:     titanx | pascal | k40 | small                (default
 *            titanx)
 */

#include "common/logging.hh"
#include "common/units.hh"
#include "core/training_session.hh"
#include "net/builders.hh"
#include "stats/table.hh"

#include <cstdio>
#include <cstring>
#include <string>

using namespace vdnn;
using namespace vdnn::core;

namespace
{

std::unique_ptr<net::Network>
pickNetwork(const std::string &name)
{
    if (name == "alexnet")
        return net::buildAlexNet(128);
    if (name == "overfeat")
        return net::buildOverFeat(128);
    if (name == "googlenet")
        return net::buildGoogLeNet(128);
    if (name == "vgg16-64")
        return net::buildVgg16(64);
    if (name == "vgg16-128")
        return net::buildVgg16(128);
    if (name == "vgg16-256")
        return net::buildVgg16(256);
    if (name == "vgg116")
        return net::buildVggDeep(116, 32);
    if (name == "vgg216")
        return net::buildVggDeep(216, 32);
    if (name == "vgg316")
        return net::buildVggDeep(316, 32);
    if (name == "vgg416")
        return net::buildVggDeep(416, 32);
    fatal("unknown network '%s'", name.c_str());
}

gpu::GpuSpec
pickGpu(const std::string &name)
{
    if (name == "titanx")
        return gpu::titanXMaxwell();
    if (name == "pascal")
        return gpu::titanXPascal();
    if (name == "k40")
        return gpu::teslaK40();
    if (name == "small")
        return gpu::smallGpu4GiB();
    fatal("unknown gpu '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string net_name = argc > 1 ? argv[1] : "vgg16-128";
    std::string gpu_name = argc > 2 ? argv[2] : "titanx";

    auto network = pickNetwork(net_name);
    gpu::GpuSpec spec = pickGpu(gpu_name);
    std::printf("network %s on %s (%.1f GB, %.1f TFLOPS)\n",
                network->name().c_str(), spec.name.c_str(),
                double(spec.dramCapacity) / 1e9, spec.peakFlops / 1e12);

    struct Point
    {
        TransferPolicy policy;
        AlgoMode mode;
    };
    const Point points[] = {
        {TransferPolicy::Baseline, AlgoMode::MemoryOptimal},
        {TransferPolicy::Baseline, AlgoMode::PerformanceOptimal},
        {TransferPolicy::OffloadConv, AlgoMode::MemoryOptimal},
        {TransferPolicy::OffloadConv, AlgoMode::PerformanceOptimal},
        {TransferPolicy::OffloadAll, AlgoMode::MemoryOptimal},
        {TransferPolicy::OffloadAll, AlgoMode::PerformanceOptimal},
        {TransferPolicy::Dynamic, AlgoMode::PerformanceOptimal},
    };

    stats::Table table("policy x algorithm sweep");
    table.setColumns({"config", "trains?", "iteration (ms)",
                      "max GPU (MiB)", "avg GPU (MiB)",
                      "offload (MiB)", "stall (ms)"});
    for (const Point &pt : points) {
        SessionConfig cfg;
        cfg.policy = pt.policy;
        cfg.algoMode = pt.mode;
        cfg.gpu = spec;
        auto r = runSession(*network, cfg);
        std::string name = transferPolicyName(pt.policy);
        if (pt.policy != TransferPolicy::Dynamic)
            name += std::string(" ") + algoModeName(pt.mode);
        if (!r.trainable) {
            table.addRow({name, "no", "-", "-", "-", "-", "-"});
            continue;
        }
        table.addRow({name, "yes",
                      stats::Table::cell(toMs(r.iterationTime), 1),
                      stats::Table::cell(toMiB(r.maxTotalUsage), 0),
                      stats::Table::cell(toMiB(r.avgTotalUsage), 0),
                      stats::Table::cell(
                          toMiB(r.offloadedBytesPerIter), 0),
                      stats::Table::cell(toMs(r.transferStallTime), 1)});
    }
    table.print();
    return 0;
}
