/**
 * @file
 * Unit and property tests for the cnmem-style memory pool and the
 * pinned host allocator.
 */

#include "mem/memory_pool.hh"
#include "mem/pinned_host.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "common/units.hh"

#include <gtest/gtest.h>

#include <vector>

using namespace vdnn;
using namespace vdnn::mem;
using namespace vdnn::literals;

TEST(MemoryPool, FreshPoolIsEmpty)
{
    MemoryPool pool(1_MiB);
    EXPECT_EQ(pool.usedBytes(), 0);
    EXPECT_EQ(pool.freeBytes(), 1_MiB);
    EXPECT_EQ(pool.largestFreeBlock(), 1_MiB);
    EXPECT_EQ(pool.liveAllocations(), 0u);
    EXPECT_TRUE(pool.checkInvariants());
}

TEST(MemoryPool, AllocateRoundsUpToAlignment)
{
    MemoryPool pool(1_MiB);
    auto a = pool.allocate(1, "tiny");
    EXPECT_EQ(a.size, MemoryPool::kAlignment);
    EXPECT_EQ(a.offset % MemoryPool::kAlignment, 0);
    EXPECT_EQ(pool.usedBytes(), MemoryPool::kAlignment);
}

TEST(MemoryPool, ZeroByteAllocationTakesOneGranule)
{
    MemoryPool pool(1_MiB);
    auto a = pool.allocate(0, "empty");
    EXPECT_EQ(a.size, MemoryPool::kAlignment);
    pool.release(a);
    EXPECT_EQ(pool.usedBytes(), 0);
}

TEST(MemoryPool, ReleaseRestoresCapacity)
{
    MemoryPool pool(1_MiB);
    auto a = pool.allocate(100_KiB);
    auto b = pool.allocate(200_KiB);
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.usedBytes(), 0);
    EXPECT_EQ(pool.largestFreeBlock(), 1_MiB);
    EXPECT_EQ(pool.freeBlockCount(), 1u);
}

TEST(MemoryPool, CoalescesAdjacentBlocksInAnyReleaseOrder)
{
    // Three adjacent allocations, all six release permutations must end
    // with a single maximal free block.
    std::vector<std::vector<int>> perms = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                           {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
    for (const auto &perm : perms) {
        MemoryPool pool(1_MiB);
        std::vector<Allocation> allocs;
        for (int i = 0; i < 3; ++i)
            allocs.push_back(pool.allocate(64_KiB));
        for (int idx : perm)
            pool.release(allocs[size_t(idx)]);
        EXPECT_EQ(pool.freeBlockCount(), 1u);
        EXPECT_EQ(pool.largestFreeBlock(), 1_MiB);
        EXPECT_TRUE(pool.checkInvariants());
    }
}

TEST(MemoryPool, BestFitPrefersSmallestSufficientHole)
{
    MemoryPool pool(1_MiB);
    // Layout: [A 128K][B 64K][C 256K][D rest]; free A and C to create a
    // 128K hole and a 256K hole.
    auto a = pool.allocate(128_KiB);
    auto b = pool.allocate(64_KiB);
    auto c = pool.allocate(256_KiB);
    auto d = pool.allocate(pool.freeBytes());
    pool.release(a);
    pool.release(c);
    // A 100K request fits both holes; best-fit must take the 128K one.
    auto e = pool.allocate(100_KiB);
    EXPECT_EQ(e.offset, 0); // A's hole starts at offset 0
    pool.release(b);
    pool.release(d);
    pool.release(e);
    EXPECT_TRUE(pool.checkInvariants());
}

TEST(MemoryPool, OutOfMemoryReportsDetails)
{
    MemoryPool pool(1_MiB, "gpu");
    auto a = pool.allocate(512_KiB, "x");
    auto r = pool.tryAllocate(768_KiB, "y");
    EXPECT_FALSE(r.has_value());
    EXPECT_EQ(pool.lastOom().requested, 768_KiB);
    EXPECT_EQ(pool.lastOom().tag, "y");
    EXPECT_EQ(pool.lastOom().totalFree, 1_MiB - 512_KiB);
    pool.release(a);
}

TEST(MemoryPool, AllocateThrowsFatalOnOom)
{
    MemoryPool pool(1_MiB);
    pool.allocate(1_MiB);
    EXPECT_THROW(pool.allocate(1_KiB), FatalError);
}

TEST(MemoryPool, FragmentationCanFailLargeRequestDespiteEnoughTotal)
{
    MemoryPool pool(1_MiB);
    // Fill with alternating small blocks and free every other one; no
    // contiguous block of half the pool remains even though half is free.
    std::vector<Allocation> allocs;
    for (int i = 0; i < 16; ++i)
        allocs.push_back(pool.allocate(64_KiB));
    for (size_t i = 0; i < allocs.size(); i += 2)
        pool.release(allocs[i]);
    EXPECT_EQ(pool.freeBytes(), 512_KiB);
    EXPECT_FALSE(pool.tryAllocate(128_KiB).has_value());
    EXPECT_EQ(pool.largestFreeBlock(), 64_KiB);
    EXPECT_TRUE(pool.checkInvariants());
}

TEST(MemoryPool, PeakTracksHighWaterMark)
{
    MemoryPool pool(1_MiB);
    auto a = pool.allocate(300_KiB);
    auto b = pool.allocate(300_KiB);
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.peakUsage(), 600_KiB);
    EXPECT_EQ(pool.usedBytes(), 0);
}

TEST(MemoryPool, ReleaseAllResets)
{
    MemoryPool pool(1_MiB);
    pool.allocate(100_KiB);
    pool.allocate(100_KiB);
    pool.releaseAll();
    EXPECT_EQ(pool.usedBytes(), 0);
    EXPECT_EQ(pool.liveAllocations(), 0u);
    EXPECT_EQ(pool.freeBlockCount(), 1u);
    EXPECT_TRUE(pool.checkInvariants());
}

TEST(MemoryPoolDeath, DoubleReleasePanics)
{
    MemoryPool pool(1_MiB);
    auto a = pool.allocate(64_KiB);
    pool.release(a);
    EXPECT_DEATH(pool.release(a), "unknown allocation");
}

TEST(MemoryPool, TrackerSeesEveryChange)
{
    TimeNs fake_now = 0;
    UsageTracker tracker([&] { return fake_now; }, true);
    MemoryPool pool(1_MiB);
    pool.setTracker(&tracker);

    fake_now = 10;
    auto a = pool.allocate(128_KiB);
    fake_now = 20;
    auto b = pool.allocate(128_KiB);
    fake_now = 30;
    pool.release(a);
    fake_now = 40;
    pool.release(b);
    tracker.finish();

    EXPECT_EQ(tracker.peakBytes(), 256_KiB);
    // 0 for 10ns, 128K for 10ns, 256K for 10ns, 128K for 10ns -> 128K avg
    EXPECT_EQ(tracker.averageBytes(), 128_KiB);
}

/**
 * Property test: a randomized allocate/release workload must keep the
 * pool's internal invariants (disjoint coalesced free list, used-bytes
 * bookkeeping) at every step, and end balanced.
 */
class MemoryPoolPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MemoryPoolPropertyTest, RandomWorkloadKeepsInvariants)
{
    SplitMix64 rng(GetParam());
    MemoryPool pool(16_MiB);
    std::vector<Allocation> live;
    for (int step = 0; step < 2000; ++step) {
        bool do_alloc = live.empty() || rng.nextDouble() < 0.55;
        if (do_alloc) {
            Bytes size = rng.nextRange(1, 256 * kKiB);
            auto a = pool.tryAllocate(size, "prop");
            if (a)
                live.push_back(*a);
        } else {
            size_t idx = size_t(rng.nextRange(0, std::int64_t(live.size()) - 1));
            pool.release(live[idx]);
            live.erase(live.begin() + std::ptrdiff_t(idx));
        }
        if (step % 64 == 0) {
            ASSERT_TRUE(pool.checkInvariants()) << "at step " << step;
        }
    }
    for (const auto &a : live)
        pool.release(a);
    EXPECT_EQ(pool.usedBytes(), 0);
    EXPECT_EQ(pool.freeBlockCount(), 1u);
    EXPECT_TRUE(pool.checkInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryPoolPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

// --- PinnedHostAllocator ------------------------------------------------------

TEST(PinnedHost, TracksUsedAndPeak)
{
    PinnedHostAllocator host(1_GiB);
    auto a = host.allocate(100_MiB, "x1");
    auto b = host.allocate(200_MiB, "x2");
    EXPECT_EQ(host.usedBytes(), 300_MiB);
    host.release(a);
    EXPECT_EQ(host.usedBytes(), 200_MiB);
    EXPECT_EQ(host.peakUsage(), 300_MiB);
    host.release(b);
    EXPECT_EQ(host.liveAllocations(), 0u);
}

TEST(PinnedHost, CumulativeTotalNeverDecreases)
{
    PinnedHostAllocator host(1_GiB);
    auto a = host.allocate(100_MiB);
    host.release(a);
    auto b = host.allocate(50_MiB);
    host.release(b);
    EXPECT_EQ(host.totalAllocated(), 150_MiB);
}

TEST(PinnedHost, FailsWhenHostMemoryExhausted)
{
    PinnedHostAllocator host(256_MiB);
    auto a = host.tryAllocate(200_MiB);
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(host.tryAllocate(100_MiB).has_value());
    EXPECT_THROW(host.allocate(100_MiB), FatalError);
    host.release(*a);
    EXPECT_TRUE(host.tryAllocate(100_MiB).has_value());
}
