/**
 * @file
 * Multi-tenant, multi-device GPU-sharing scheduler.
 *
 * Multiplexes N training jobs over a cluster of simulated GPUs
 * (gpu/cluster.hh): per device one compute engine, one DMA engine per
 * direction, one PCIe link, one cnmem pool — all devices on one
 * shared simulated clock. Jobs are admitted by a *per-device*
 * AdmissionController when their policy-dependent footprint fits, and
 * a pluggable PlacementPolicy (serve/placement.hh) picks the device;
 * the freed residency of the vDNN policies is what lets many more
 * tenants pack onto the same 12 GB devices than the baseline
 * allocator. The classic single-device construction (no
 * SchedulerConfig::devices) behaves exactly as it always has.
 *
 * Scheduling policies (iteration order *within* a device):
 *
 *  - FifoExclusive: one job owns a device at a time, run to
 *    completion in arrival order — the status quo this subsystem
 *    exists to beat (head-of-line blocking, queueing delay).
 *  - RoundRobin: iteration-granularity time sharing in the style of
 *    the Salus execution engine — every admitted job keeps its
 *    persistent state device-resident while iterations from all
 *    tenants interleave on the shared compute engine, and the
 *    admission queue is backfilled whenever capacity frees up.
 *  - ShortestRemaining: same packing, but the next iteration goes to
 *    the admitted job with the fewest remaining iterations (SRPT at
 *    iteration granularity) — minimizes mean job completion time.
 *  - PackedOverlap: op-granularity packing over the IterationProgram
 *    steppers, on any device count. Whenever one tenant blocks on a
 *    DMA join, the next ready tenant's compute op is dispatched
 *    instead of idling the compute engine; admission reserves the
 *    *sum* of transients per device.
 *  - PreemptivePriority: priority packing driven by
 *    JobSpec::priority, on any device count. A higher-priority
 *    arrival that fails admission preempts the lowest-priority
 *    running tenants through the Session lifecycle state machine —
 *    at iteration boundaries by default, or mid-iteration at the
 *    victim's next Sync/Barrier boundary when
 *    SchedulerConfig::preemptGranularity is Op (the beneficiary is
 *    dispatching kernels within simulated microseconds; ServeReport
 *    records the preemption latency). JobSpec::agingRatePerSec
 *    bounds starvation: a queued job's effective priority grows with
 *    its wait, so a hostile stream of high-priority arrivals cannot
 *    park a low-priority job forever.
 *
 * One event-driven engine serves every configuration: per turn it
 * sweeps only the devices on the WakeSet (populated by the Device
 * completion hooks, which also identify the one tenant whose stream
 * drained), offers each woken device one non-blocking step per
 * unblocked tenant, and executes exactly one completion event when no
 * stepper progressed. Admission rescans gate on a dirty flag; the
 * classic single-device iteration-granularity configurations process
 * arrivals and admission only at iteration boundaries, reproducing
 * the legacy loops' cadence byte-for-byte. On a cluster a periodic
 * rebalance sweep migrates the smallest-footprint tenant off the
 * most-loaded device whenever the queue-depth imbalance reaches a
 * threshold (Session::migrate: suspend -> evict-to-host -> re-plan
 * and resume on the target).
 *
 * Under memory pressure the scheduler pages *buffers* before it
 * evicts *tenants* (Salus-style): when SchedulerConfig::bufferPaging
 * is on and a fitting reservation still fails setup, resident
 * tenants — blocked ones first — drop their coldest host-backed
 * device copies (Session::pageOut) before the OOM backoff inflates
 * reservations or a whole tenant is evicted.
 *
 * In-flight OOM (overcommit or pool fragmentation despite the
 * reservation) aborts only that iteration: the job is torn down,
 * its reservation inflated, and it is requeued for readmission —
 * after a bounded number of attempts it is marked Failed.
 */

#ifndef VDNN_SERVE_SCHEDULER_HH
#define VDNN_SERVE_SCHEDULER_HH

#include "dnn/cudnn_sim.hh"
#include "gpu/cluster.hh"
#include "gpu/gpu_spec.hh"
#include "gpu/runtime.hh"
#include "mem/memory_pool.hh"
#include "mem/pinned_host.hh"
#include "mem/usage_tracker.hh"
#include "serve/admission.hh"
#include "serve/job.hh"
#include "serve/placement.hh"
#include "serve/serve_stats.hh"
#include "serve/wake_set.hh"
#include "stats/time_weighted.hh"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vdnn::serve
{

enum class SchedPolicy : std::uint8_t
{
    FifoExclusive,      ///< one job at a time, arrival order
    RoundRobin,         ///< iteration-granularity packing (Salus-style)
    ShortestRemaining,  ///< packed, fewest-remaining-iterations first
    PackedOverlap,      ///< op-granularity packing, compute/DMA overlap
    PreemptivePriority, ///< priority packing; preempts via suspend/evict
};

const char *schedPolicyName(SchedPolicy p);

/** When may PreemptivePriority park a victim? */
enum class PreemptGranularity : std::uint8_t
{
    /**
     * Only tenants with no iteration in flight are preemptible; a
     * high-priority arrival waits out the victim's current iteration.
     * This is the legacy (golden-pinned) behavior and keeps the
     * single-device admission cadence at iteration boundaries.
     */
    Iteration,
    /**
     * A victim's live stepper is parked at its next Sync/Barrier
     * boundary and the partial iteration unwound (it re-runs after
     * resume), so the preemptor dispatches its first kernel within
     * simulated microseconds instead of a full victim iteration.
     * Arrivals and admission are processed every engine turn.
     */
    Op,
};

struct SchedulerConfig
{
    SchedPolicy policy = SchedPolicy::RoundRobin;
    /** The device all tenants share (single-device mode). */
    gpu::GpuSpec gpu;
    /**
     * Cluster mode: one GpuSpec per device (heterogeneous allowed).
     * Empty (the default) serves on the single device in `gpu`; a
     * non-empty list supersedes `gpu`. Every policy works at every
     * device count.
     */
    std::vector<gpu::GpuSpec> devices;
    /** Device chooser for admissions. Null = BestFitPlacement. */
    std::shared_ptr<PlacementPolicy> placement;
    /**
     * Cluster rebalance sweep period: every period, migrate the
     * smallest-footprint tenant off the most-loaded device when the
     * running-tenant imbalance reaches rebalanceThreshold.
     * 0 (default) = placement is static, no migration.
     */
    TimeNs rebalancePeriod = 0;
    /** Queue-depth gap (most vs least loaded) triggering migration. */
    int rebalanceThreshold = 2;
    bool contention = true;
    /** Cap on concurrently admitted jobs (0 = unlimited). */
    int maxJobsInFlight = 0;
    /** Reservation inflation guarding estimate error/fragmentation. */
    double admissionSafety = 1.05;
    /** Reservation growth per OOM requeue of a job. */
    double oomBackoffScale = 1.25;
    /** OOM requeues before a job is marked Failed. */
    int maxOomRequeues = 3;
    /**
     * Preemption granularity (PreemptivePriority only). The default,
     * Iteration, is golden-pinned legacy behavior; Op enables
     * microsecond mid-iteration preemption (see the enum).
     */
    PreemptGranularity preemptGranularity = PreemptGranularity::Iteration;
    /**
     * Salus-style no-progress handling: buffers are evicted before
     * tenants. When a fitting reservation still fails setup (pool
     * fragmentation / co-tenant overshoot), page resident tenants'
     * coldest host-backed device copies (Session::pageOut, blocked
     * tenants first) and retry before the OOM backoff inflates the
     * reservation. When an admitted tenant's *iteration* aborts with
     * OOM, page co-tenants the same way before it requeues, so the
     * re-admitted attempt runs against real headroom instead of
     * OOMing identically. Off by default (legacy behavior).
     */
    bool bufferPaging = false;
    /** Retain pool-usage and jobs-in-flight timelines in the report. */
    bool keepTimeline = false;

    /**
     * Telemetry sinks (obs/). Wired through every device of the
     * cluster; scheduler decisions (admission, preemption, migration,
     * rebalance) become instant/flow events and serve-level counters.
     * Null members (the default) cost one branch per choke point.
     */
    obs::Telemetry telemetry;

    SchedulerConfig();
};

class Scheduler
{
  public:
    explicit Scheduler(SchedulerConfig config);

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Register a job; it becomes visible at spec.arrival. */
    JobId submit(JobSpec spec);

    /** Drive every submitted job to a terminal state. */
    ServeReport run();

    // --- introspection (tests) -------------------------------------------
    int deviceCount() const { return int(devs.size()); }
    /** Device 0 — the whole device on a single-GPU scheduler. */
    gpu::Runtime &runtime() { return *devs[0]->dev; }
    gpu::Device &device(int d) { return *devs.at(std::size_t(d))->dev; }
    mem::MemoryPool &devicePool() { return *devs[0]->pool; }
    mem::MemoryPool &devicePoolOn(int d)
    {
        return *devs.at(std::size_t(d))->pool;
    }
    const AdmissionController &admissionState() const
    {
        return devs[0]->admission;
    }
    const AdmissionController &admissionStateOn(int d) const
    {
        return devs.at(std::size_t(d))->admission;
    }
    const Job &job(JobId id) const { return *jobs.at(std::size_t(id)); }
    int jobsInFlight() const;
    int jobsEvicted() const { return int(evictedJobs.size()); }
    int jobsOnDevice(int d) const
    {
        return int(devs.at(std::size_t(d))->running.size());
    }

    /** Event-driven serve-loop accounting (also on the ServeReport). */
    struct LoopStats
    {
        /** Device wake-hook firings (one per executed event). */
        std::uint64_t wakeups = 0;
        /** Step offers that made no progress (blocked / no work). */
        std::uint64_t fruitlessPolls = 0;
        /** Idle clock advances to the next pending arrival. */
        std::uint64_t idleAdvances = 0;
    };
    LoopStats loopStats() const
    {
        return {statWakeups, statFruitlessPolls, statIdleAdvances};
    }

    /**
     * Test hook (spurious-wakeup safety): treat every device (and
     * every tenant) as woken on every turn of the engine,
     * degenerating the wake-list sweep back into the old full polling
     * scan. A non-blocking step offered to a blocked or empty device
     * is pure, so outputs must be byte-identical with this on — the
     * equivalence suite pins it.
     */
    void setDebugForceWakeAll(bool on) { forceWakeAll = on; }

  private:
    /** Everything the scheduler keeps per device of the cluster. */
    struct DeviceCtx
    {
        int id;
        gpu::Device *dev;
        mem::MemoryPool *pool;
        mem::PinnedHostAllocator *host;
        dnn::CudnnSim cudnn;        ///< perf model for this device
        AdmissionController admission;
        mem::UsageTracker track;    ///< this device's pool usage
        std::vector<JobId> running; ///< admitted here, submission order
        std::size_t rrCursor = 0;
        /** Job whose iteration the engine has in flight
         *  (iteration-granularity policies; -1 under PackedOverlap,
         *  where every resident tenant may hold a live stepper). */
        JobId inFlight = -1;
        int jobsPlaced = 0;
        int migrationsIn = 0;
        int migrationsOut = 0;

        DeviceCtx(int id, gpu::Cluster &cluster,
                  const SchedulerConfig &cfg);
    };

    void collectArrivals();
    const FootprintEstimate &estimateFor(const Job &job, DeviceCtx &d);
    bool tryAdmit(Job &job, const FootprintEstimate &est, DeviceCtx &d);
    void finishJob(Job &job, JobState final_state,
                   const std::string &why = "");
    void evictForRequeue(Job &job);
    void recordInflight();
    /** Earliest arrival still Pending (kTimeNone when none): the
     *  incrementally maintained numPending/nextPendingArrival pair,
     *  exact because jobs only leave Pending via collectArrivals(). */
    TimeNs nextPendingArrivalTime() const
    {
        return numPending > 0 ? nextPendingArrival : kTimeNone;
    }
    bool allDone() const;
    /** Fold one completed (ok) iteration into the job's record. */
    void chargeIteration(Job &job, const core::IterationResult &r);
    /** Adopt the session's first-iteration profile: shrink the
     *  admission reservation to the measured footprint. */
    void adoptProfile(Job &job);
    /** Reservation bytes summed over every device's ledger. */
    Bytes reservedBytesTotal() const;
    /** Effective priority: static priority plus queue-wait aging
     *  (accrued while Queued/Evicted, retained while running). */
    double effectivePriority(const Job &job, TimeNs now) const;
    /** Fold the current waiting spell into the job's aging clock. */
    void stopWaiting(Job &job);
    /** Drop @p id from its device's resident set, fixing cursors. */
    void removeFromRunning(JobId id);
    /** Append a lifecycle transition to the audit log. */
    void logLifecycle(JobId id, const char *what, Bytes reserved_before,
                      int device);
    ServeReport buildReport();

    // --- admission -------------------------------------------------------
    /** Single-device admission sweep (golden-pinned legacy order:
     *  priority sort, feasibility rejection, make-room, backfill). */
    void admitFromQueue();
    /** Cluster admission: place queued jobs via the PlacementPolicy
     *  (same rejection/make-room/backfill structure per job). */
    void admitFromQueueCluster();
    /** Snapshot per-device loads and ask the placement policy. */
    int choosePlacement(Job &job);
    /** Inflate a setup-OOM'd job's reservation; true when it went
     *  terminal (Failed) and was taken from the queue. */
    bool backoffAfterSetupOom(Job &job, std::size_t queue_index);

    // --- lifecycle state machine (PreemptivePriority) --------------------
    /** Lowest-priority tenant of @p d strictly below @p priority
     *  (latest arrival breaks ties), or nullptr. Tenants with an
     *  iteration in flight are victims only at Op granularity. */
    Job *pickVictim(DeviceCtx &d, double below_priority);
    /** Suspend + evict one tenant, moving its reservation to the
     *  evicted ledger. False when pinned host memory is exhausted.
     *  Accepts a victim already parked resident by parkInFlight(). */
    bool preempt(Job &victim);
    /** Highest effective-priority *Running* co-tenant of @p d with
     *  strictly higher priority than the in-flight tenant, or
     *  nullptr. Parked (Suspended) residents never challenge. */
    Job *topChallengerOn(DeviceCtx &d, const Job &inflight);
    /** Op-granularity dispatch preemption: freeze the in-flight
     *  tenant's stepper at its current op boundary and leave it
     *  resident (no DMA, ledger untouched); the device goes to
     *  @p challenger, which is charged the victimsPreempted
     *  attribution that feeds preemption-latency sampling. */
    void parkInFlight(DeviceCtx &d, Job &victim, Job &challenger);
    /** Evict @p d's lowest-priority tenants until @p job's
     *  reservation (and, when the in-flight cap binds, a slot)
     *  fits. */
    bool makeRoomFor(Job &job, const FootprintEstimate &est,
                     DeviceCtx &d);
    /** Cluster make-room target: the feasible device holding the most
     *  evictable (below-@p job's-priority) reserved bytes, or null. */
    DeviceCtx *pickPreemptDevice(Job &job);
    /** Resume evicted tenants that fit again, onto the device each is
     *  homed on — best effective priority first under the priority
     *  policy, earliest arrival otherwise. */
    void resumeEvictedSweep();
    /** Readmit one evicted tenant onto @p d; false if it stays parked. */
    bool tryResumeOn(Job &job, DeviceCtx &d);

    // --- buffer-granularity paging (Salus-style) -------------------------
    /** Page up to @p need bytes of cold device copies off @p d's
     *  resident tenants (blocked tenants first). @return bytes freed. */
    Bytes pageVictimBuffers(DeviceCtx &d, Bytes need);

    // --- the unified event-driven engine ---------------------------------
    /** Within-device iteration order (priority / RR / SRPT / FIFO). */
    Job *pickNextOn(DeviceCtx &d);
    /** Offer @p d's single in-flight iteration one non-blocking step
     *  (iteration-granularity policies). */
    bool stepDeviceOnce(DeviceCtx &d);
    /** Offer every unblocked resident tenant of @p d one non-blocking
     *  step (PackedOverlap: one live stepper per tenant). */
    bool sweepPacked(DeviceCtx &d);
    /** One step offer to @p d, dispatched by policy. */
    bool sweepDevice(DeviceCtx &d);
    /** Feed the preemption-latency telemetry at first dispatch. */
    void notePreemptionLatency(const Job &job);
    /** Periodic migration sweep off the most-loaded device. */
    void maybeRebalance();
    bool migrateJob(Job &job, DeviceCtx &src, DeviceCtx &dst);
    /** The one serve loop: every policy at every device count. */
    void runEngine();
    /** Device wake hook body: push @p device onto the wake-set and
     *  clear @p client's blocked-stepper memo. */
    void onDeviceWake(int device, int client);
    static void deviceWakeTrampoline(void *self, int device, int client);

    SchedulerConfig cfg;
    gpu::Cluster cluster;
    std::vector<std::unique_ptr<DeviceCtx>> devs;

    std::vector<std::unique_ptr<Job>> jobs;
    /** Footprint estimates are deterministic per (spec, device). */
    std::map<std::pair<JobId, int>, FootprintEstimate> estimates;
    JobQueue queue;                 ///< arrived, waiting for admission
    std::vector<JobId> evictedJobs; ///< preempted/stalled, awaiting resume
    /** Capacity freed since the last resume sweep. */
    bool resumePending = false;
    /** Next rebalance sweep time (cluster mode). */
    TimeNs nextRebalance = kTimeNone;
    /**
     * Scheduler-loop accounting, kept incrementally so the per-event
     * serve loop does not rescan every job: jobs still Pending (with
     * the earliest arrival among them) and jobs gone terminal.
     */
    int numPending = 0;
    TimeNs nextPendingArrival = kTimeNone;
    int numTerminal = 0;
    /**
     * Event-driven engine state. `wake` holds the devices the next
     * turn must offer a step (populated by the Device completion
     * hooks plus the admit/resume/migrate-in sites); a device leaves
     * it only when a step offer makes no progress. `admissionDirty`
     * gates the admission rescan: it runs only when an arrival, a
     * ledger change, a running-set change, an iteration boundary
     * under the priority policy, or a pending setup-OOM retry could
     * alter its decisions — on every other turn the old polling
     * rescan was provably pure, so skipping it cannot change outputs.
     * (The classic single-device iteration-granularity configurations
     * instead rescan unconditionally at every iteration boundary,
     * the legacy loops' exact cadence.) `residentJobs` caches the
     * summed running-set size so the idle test is O(1).
     */
    WakeSet wake;
    bool admissionDirty = true;
    int residentJobs = 0;
    std::uint64_t statWakeups = 0;
    std::uint64_t statFruitlessPolls = 0;
    std::uint64_t statIdleAdvances = 0;
    bool forceWakeAll = false;

    std::vector<LifecycleEvent> lifecycleLog;
    stats::TimeWeighted inflight;
    int peakInflight = 0;
    bool ran = false;

    // --- telemetry (null = off) -------------------------------------------
    obs::Counter *ctrAdmissions = nullptr;
    obs::Counter *ctrPreemptions = nullptr;
    obs::Counter *ctrMigrations = nullptr;
    obs::Counter *ctrProfiles = nullptr;
    obs::Counter *ctrPageOuts = nullptr;
    stats::Accumulator *jctAcc = nullptr;
    stats::Accumulator *preemptLatAcc = nullptr;
    stats::Histogram *iterHist = nullptr;
    /** Open preemption flow: evict (victim) -> admit (beneficiary). */
    std::uint64_t pendingPreemptFlow = 0;
};

} // namespace vdnn::serve

#endif // VDNN_SERVE_SCHEDULER_HH
