/**
 * @file
 * Figure 15: scalability to very deep networks. CPU-side vs GPU-side
 * memory allocations of vDNN_dyn against the baseline's network-wide
 * requirement for VGG-116/216/316/416 (batch 32).
 *
 * Paper anchors: the baseline requirement grows ~14x (4.9 GB for
 * VGG-16 to 67.1 GB for VGG-416) and fails beyond the 12 GB card;
 * vDNN_dyn trains all of them within ~4.2 GB of GPU memory, leaving
 * 81%-92% of the total allocations in host memory, with no noticeable
 * performance loss versus an oracular baseline.
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "dnn/cudnn_sim.hh"
#include "gpu/gpu_spec.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

void
report()
{
    dnn::CudnnSim cudnn(gpu::titanXMaxwell());

    stats::Table table("Figure 15: very deep networks (batch 32), "
                       "vDNN_dyn GPU/CPU split vs baseline");
    table.setColumns({"network", "baseline alloc (GB)", "base trains?",
                      "dyn GPU max (GB)", "dyn CPU side (GB)",
                      "CPU share (%)", "dyn vs oracle perf"});

    std::vector<net::BenchmarkNet> nets = {
        {"VGG-16 (32)", [] { return net::buildVgg16(32); }}};
    for (auto &n : net::veryDeepSuite())
        nets.push_back(n);

    double base_first = 0.0, base_last = 0.0;
    double dyn_gpu_max = 0.0;
    double cpu_share_min = 100.0, cpu_share_max = 0.0;
    double dyn_perf_worst = 1.0;
    bool dyn_all_train = true;
    bool base_deep_all_fail = true;

    for (std::size_t i = 0; i < nets.size(); ++i) {
        auto network = nets[i].build();
        net::NetworkStats ns(*network, cudnn);
        auto algos = net::performanceOptimalAlgos(*network, cudnn);
        double base_gb =
            double(ns.baselineBreakdown(algos).total()) / 1e9;
        if (i == 0)
            base_first = base_gb;
        base_last = base_gb;

        auto base = runPlanner(*network, baselinePlanner(core::AlgoPreference::PerformanceOptimal));
        auto dyn = runPlanner(*network, dynamicPlanner());
        auto oracle = runPlanner(*network, baselinePlanner(core::AlgoPreference::PerformanceOptimal), /*oracle=*/true);
        dyn_all_train = dyn_all_train && dyn.trainable;
        if (i > 0)
            base_deep_all_fail = base_deep_all_fail && !base.trainable;

        double gpu_gb = double(dyn.maxTotalUsage) / 1e9;
        double cpu_gb = double(dyn.hostPeakBytes) / 1e9;
        double share = 100.0 * cpu_gb / (cpu_gb + gpu_gb);
        double perf = double(oracle.featureExtractionTime) /
                      double(dyn.featureExtractionTime);
        if (i > 0) {
            dyn_gpu_max = std::max(dyn_gpu_max, gpu_gb);
            cpu_share_min = std::min(cpu_share_min, share);
            cpu_share_max = std::max(cpu_share_max, share);
            dyn_perf_worst = std::min(dyn_perf_worst, perf);
        }

        table.addRow({nets[i].name, stats::Table::cell(base_gb, 1),
                      base.trainable ? "yes" : "no *",
                      stats::Table::cell(gpu_gb, 2),
                      stats::Table::cell(cpu_gb, 1),
                      stats::Table::cell(share, 1),
                      stats::Table::cell(perf, 2)});
    }
    table.print();

    stats::Comparison cmp("Figure 15");
    cmp.addNumeric("VGG-16 (32) baseline allocation (GB)", 4.9,
                   base_first, 0.35);
    cmp.addNumeric("VGG-416 (32) baseline allocation (GB)", 67.1,
                   base_last, 0.15);
    cmp.addNumeric("baseline growth factor 16 -> 416 conv layers", 14.0,
                   base_last / base_first, 0.25);
    cmp.addBool("baseline fails all very deep networks", true,
                base_deep_all_fail);
    cmp.addBool("vDNN_dyn trains all very deep networks", true,
                dyn_all_train);
    cmp.addNumeric("vDNN_dyn max GPU usage across deep nets (GB)", 4.2,
                   dyn_gpu_max, 0.6);
    cmp.addBool("CPU-side share in the 81-92% band (+/-6pp)", true,
                cpu_share_min >= 75.0 && cpu_share_max <= 98.0);
    cmp.addNumeric("vDNN_dyn vs oracle performance (worst, %)", 100.0,
                   100.0 * dyn_perf_worst, 0.2);
    cmp.addInfo("measured CPU-side share band", "81% - 92%",
                strFormat("%.0f%% - %.0f%%", cpu_share_min,
                          cpu_share_max));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("fig15/dyn_vgg116_32", [] {
        auto network = net::buildVggDeep(116, 32);
        benchmark::DoNotOptimize(
            runPlanner(*network, dynamicPlanner())
                .maxTotalUsage);
    });
    return benchMain(argc, argv, report);
}
