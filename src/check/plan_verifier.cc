#include "check/plan_verifier.hh"

#include "check/program_verifier.hh"
#include "common/logging.hh"
#include "core/iteration_program.hh"
#include "dnn/conv_algo.hh"
#include "dnn/cudnn_sim.hh"
#include "net/network_stats.hh"

#include <map>
#include <utility>

namespace vdnn::check
{

using core::BufferDirective;
using core::MemoryPlan;
using core::PlannerContext;

namespace
{

/**
 * Analytic persistent footprint, mirroring Executor::setup(): weights,
 * one shared dW per region, the static classifier block, and — under
 * network-wide static allocation — every feature map, the reused
 * gradient peak and the shared workspace.
 */
Bytes
persistentFootprint(const net::Network &net, const MemoryPlan &plan,
                    const net::NetworkStats &stats)
{
    Bytes persistent = 0;
    Bytes max_dw_managed = 0;
    Bytes max_dw_classifier = 0;
    for (net::LayerId id : net.topoOrder()) {
        const net::LayerNode &n = net.node(id);
        Bytes w = n.spec.weightBytes();
        persistent += w;
        Bytes &max_dw =
            n.classifier ? max_dw_classifier : max_dw_managed;
        max_dw = std::max(max_dw, w);
    }
    persistent += max_dw_managed + max_dw_classifier;
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (net.buffer(b).classifier)
            persistent += net.buffer(b).bytes();
    }
    persistent += stats.peakGradientBytesScoped(
        net::NetworkStats::GradScope::Classifier);

    if (plan.staticAllocation) {
        for (net::BufferId b = 0; b < net::BufferId(net.numBuffers());
             ++b) {
            if (!net.buffer(b).classifier)
                persistent += net.buffer(b).bytes();
        }
        persistent += stats.peakGradientBytesScoped(
            net::NetworkStats::GradScope::Managed);
        persistent += stats.maxWorkspaceBytes(plan.algos, false);
    }
    return persistent;
}

void
checkDirectives(const net::Network &net, const MemoryPlan &plan,
                CheckResult &out)
{
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        const BufferDirective &d = plan.directive(b);
        if (d.offloaded() && plan.staticAllocation) {
            out.add(DiagCode::StaticPlanTraffic, Severity::Error,
                    strFormat("static-allocation plan carries an "
                              "offload directive for buffer %d (it "
                              "would silently never execute)",
                              b),
                    -1, -1, b);
            continue;
        }
        if (d.offloaded() && !core::offloadEligible(net, b)) {
            out.add(DiagCode::IneligibleOffload, Severity::Error,
                    strFormat("offload directive on buffer %d which is "
                              "not offload-eligible (classifier "
                              "region, no backward reuse, or no last "
                              "forward reader to issue it)",
                              b),
                    -1, -1, b);
        }
        if (d.compressed && !d.offloaded()) {
            out.add(DiagCode::CompressedDense, Severity::Error,
                    strFormat("compressed directive on buffer %d which "
                              "is kept resident (nothing crosses PCIe)",
                              b),
                    -1, -1, b);
        }
        if (d.compressed && d.offloaded() &&
            !core::holdsReluOutput(net, b)) {
            out.add(DiagCode::CompressedDense, Severity::Error,
                    strFormat("compressed directive on buffer %d which "
                              "never holds post-ReLU data (dense maps "
                              "do not compress under ZVC)",
                              b),
                    -1, -1, b);
        }
        if (d.compressed && (d.dmaScale <= 0.0 || d.dmaScale > 1.0)) {
            out.add(DiagCode::BadDmaScale, Severity::Error,
                    strFormat("dmaScale %.3f of buffer %d outside "
                              "(0, 1]",
                              d.dmaScale, b),
                    -1, -1, b);
        }
        if (!d.compressed && d.dmaScale != 1.0) {
            out.add(DiagCode::BadDmaScale, Severity::Error,
                    strFormat("dmaScale %.3f on buffer %d without "
                              "compression (the engine would ignore "
                              "it — contradictory directive)",
                              d.dmaScale, b),
                    -1, -1, b);
        }
    }
}

/**
 * The Fig. 10 search prefetches a candidate layer's offloaded input
 * buffers together and breaks priority ties by buffer id — a silent,
 * accidental order. Two offloaded buffers the same layer's backward
 * will consume (a concat join) with the same positive priority make
 * the intended issue order ambiguous.
 */
void
checkPrefetchPriorities(const net::Network &net, const MemoryPlan &plan,
                        CheckResult &out)
{
    for (net::LayerId id : net.topoOrder()) {
        std::map<int, net::BufferId> seen;
        for (net::LayerId in_id : net.node(id).inputs) {
            net::BufferId b = in_id == net::kInputLayer
                                  ? net.inputBuffer()
                                  : net.node(in_id).yBuffer;
            if (!plan.offloads(b))
                continue;
            const BufferDirective &d = plan.directive(b);
            if (d.prefetchPriority <= 0)
                continue; // 0 = default, negative = on-demand; fine
            auto [it, fresh] = seen.emplace(d.prefetchPriority, b);
            if (!fresh && it->second != b) {
                out.add(DiagCode::PriorityConflict, Severity::Warning,
                        strFormat("buffers %d and %d (both prefetch "
                                  "candidates at layer %d) share "
                                  "prefetch priority %d — issue order "
                                  "falls back to buffer id",
                                  it->second, b, id,
                                  d.prefetchPriority),
                        -1, id, b);
            }
        }
    }
}

} // namespace

CheckResult
verifyPlan(const net::Network &net, const MemoryPlan &plan,
           const PlannerContext &ctx, const core::ExecutorConfig &cfg,
           const CheckConfig &ccfg)
{
    CheckResult out;
    VDNN_ASSERT(net.finalized(), "network must be finalized");

    if (!plan.feasible) {
        out.add(DiagCode::Infeasible, Severity::Error,
                strFormat("infeasible plan reached verification: %s",
                          plan.failReason.empty()
                              ? "(no failReason recorded)"
                              : plan.failReason.c_str()));
        return out;
    }
    if (plan.buffers.size() != net.numBuffers() ||
        plan.algos.size() != net.numLayers()) {
        out.add(DiagCode::PlanShape, Severity::Error,
                strFormat("plan does not match the network (%zu "
                          "directives for %zu buffers, %zu algos for "
                          "%zu layers)",
                          plan.buffers.size(), net.numBuffers(),
                          plan.algos.size(), net.numLayers()));
        return out; // nothing below is well-defined
    }

    checkDirectives(net, plan, out);
    checkPrefetchPriorities(net, plan, out);

    // Compile exactly as the Executor would and prove the op stream.
    core::IterationProgram prog =
        core::IterationProgram::compile(net, plan, cfg);
    out.merge(verifyProgram(net, plan, cfg, prog));

    dnn::CudnnSim cudnn(ctx.gpu);
    net::NetworkStats stats(net, cudnn);
    out.persistentBytes = persistentFootprint(net, plan, stats);
    out.provablePeakBytes = out.persistentBytes + out.peakTransientBytes;

    if (out.provablePeakBytes > ctx.capacity()) {
        out.add(DiagCode::ShareExceeded,
                ccfg.enforceCapacity ? Severity::Error
                                     : Severity::Warning,
                strFormat("provable peak residency %lld B exceeds the "
                          "granted share %lld B (persistent %lld B + "
                          "transient peak %lld B)",
                          (long long)out.provablePeakBytes,
                          (long long)ctx.capacity(),
                          (long long)out.persistentBytes,
                          (long long)out.peakTransientBytes));
    }
    return out;
}

} // namespace vdnn::check
