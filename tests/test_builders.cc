/**
 * @file
 * Tests for the DNN benchmark builders: layer counts, geometries and
 * parameter counts of AlexNet, OverFeat, GoogLeNet, VGG-16 and the
 * very deep VGG variants (Section IV-C).
 */

#include "net/builders.hh"

#include "common/units.hh"
#include "dnn/layer.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::dnn;
using namespace vdnn::net;

TEST(Builders, AlexNetShape)
{
    auto net = buildAlexNet(128);
    EXPECT_EQ(net->countKind(LayerKind::Conv), 5);
    EXPECT_EQ(net->countKind(LayerKind::Fc), 3);
    EXPECT_EQ(net->countKind(LayerKind::Lrn), 2);
    EXPECT_EQ(net->countKind(LayerKind::Pool), 3);
    EXPECT_EQ(net->batch(), 128);
    // OWT AlexNet: ~61M parameters (fc6 dominates).
    std::int64_t params = 0;
    for (LayerId id : net->topoOrder())
        params += net->node(id).spec.paramCount();
    EXPECT_GT(params, 55'000'000);
    EXPECT_LT(params, 66'000'000);
}

TEST(Builders, AlexNetBaselineNearPaperAnchor)
{
    // Intro: AlexNet required a "mere" 1.1 GB of memory for training.
    auto net = buildAlexNet(128);
    Bytes feature_maps = 0;
    for (BufferId b = 0; b < BufferId(net->numBuffers()); ++b)
        feature_maps += net->buffer(b).bytes();
    // Feature maps alone land in the hundreds of MB.
    EXPECT_GT(feature_maps, 300 * kMiB);
    EXPECT_LT(feature_maps, 800 * kMiB);
}

TEST(Builders, OverFeatShape)
{
    auto net = buildOverFeat(128);
    EXPECT_EQ(net->countKind(LayerKind::Conv), 5);
    EXPECT_EQ(net->countKind(LayerKind::Fc), 3);
    // OverFeat-fast has ~145M parameters.
    std::int64_t params = 0;
    for (LayerId id : net->topoOrder())
        params += net->node(id).spec.paramCount();
    EXPECT_GT(params, 130'000'000);
    EXPECT_LT(params, 160'000'000);
}

TEST(Builders, GoogLeNetShape)
{
    auto net = buildGoogLeNet(128);
    // 2 stem convs + 9 inception modules x 6 convs + 1 stem reduce.
    EXPECT_EQ(net->countKind(LayerKind::Conv), 57);
    EXPECT_EQ(net->countKind(LayerKind::Concat), 9);
    EXPECT_EQ(net->countKind(LayerKind::Fc), 1);
    // GoogLeNet is famously small: ~7M parameters (+/-).
    std::int64_t params = 0;
    for (LayerId id : net->topoOrder())
        params += net->node(id).spec.paramCount();
    EXPECT_GT(params, 5'000'000);
    EXPECT_LT(params, 9'000'000);
}

TEST(Builders, GoogLeNetInceptionChannelSums)
{
    auto net = buildGoogLeNet(32);
    // Find the 3a concat: output must be 256 channels at 28x28.
    bool found = false;
    for (LayerId id : net->topoOrder()) {
        const auto &spec = net->node(id).spec;
        if (spec.name == "inception_3a/concat") {
            EXPECT_EQ(spec.out.c, 256);
            EXPECT_EQ(spec.out.h, 28);
            found = true;
        }
        if (spec.name == "inception_4e/concat") {
            EXPECT_EQ(spec.out.c, 832);
        }
        if (spec.name == "inception_5b/concat") {
            EXPECT_EQ(spec.out.c, 1024);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Builders, GoogLeNetHasForkJoinTopology)
{
    auto net = buildGoogLeNet(32);
    // At least one buffer must have multiple readers (a fork).
    int forked = 0;
    for (BufferId b = 0; b < BufferId(net->numBuffers()); ++b)
        forked += net->buffer(b).refCount > 1 ? 1 : 0;
    EXPECT_GE(forked, 9); // one fork per inception module
}

TEST(Builders, Vgg16Shape)
{
    auto net = buildVgg16(64);
    // The paper's VGG-16: 16 CONV + 3 FC (Simonyan config E).
    EXPECT_EQ(net->countKind(LayerKind::Conv), 16);
    EXPECT_EQ(net->countKind(LayerKind::Fc), 3);
    EXPECT_EQ(net->countKind(LayerKind::Pool), 5);
    // Config E has ~143.6M parameters.
    std::int64_t params = 0;
    for (LayerId id : net->topoOrder())
        params += net->node(id).spec.paramCount();
    EXPECT_GT(params, 138'000'000);
    EXPECT_LT(params, 148'000'000);
}

TEST(Builders, Vgg16SpatialPyramid)
{
    auto net = buildVgg16(64);
    // Pool outputs: 112, 56, 28, 14, 7.
    std::vector<std::int64_t> pool_sizes;
    for (LayerId id : net->topoOrder()) {
        if (net->node(id).spec.kind == LayerKind::Pool)
            pool_sizes.push_back(net->node(id).spec.out.h);
    }
    EXPECT_EQ(pool_sizes,
              (std::vector<std::int64_t>{112, 56, 28, 14, 7}));
}

class VggDeepTest : public ::testing::TestWithParam<int>
{};

TEST_P(VggDeepTest, ConvLayerCountMatchesName)
{
    int depth = GetParam();
    auto net = buildVggDeep(depth, 32);
    EXPECT_EQ(net->countKind(LayerKind::Conv), depth);
    EXPECT_EQ(net->countKind(LayerKind::Fc), 3);
    EXPECT_EQ(net->countKind(LayerKind::Pool), 5);
}

TEST_P(VggDeepTest, FeatureMapFootprintGrowsLinearly)
{
    int depth = GetParam();
    auto net16 = buildVgg16(32);
    auto deep = buildVggDeep(depth, 32);
    Bytes fm16 = 0, fm_deep = 0;
    for (BufferId b = 0; b < BufferId(net16->numBuffers()); ++b)
        fm16 += net16->buffer(b).bytes();
    for (BufferId b = 0; b < BufferId(deep->numBuffers()); ++b)
        fm_deep += deep->buffer(b).bytes();
    EXPECT_GT(fm_deep, fm16 * (depth / 16 - 1));
}

INSTANTIATE_TEST_SUITE_P(Depths, VggDeepTest,
                         ::testing::Values(116, 216, 316, 416));

TEST(Builders, VggDeepRejectsInvalidDepths)
{
    EXPECT_DEATH(buildVggDeep(100, 32), "depth");
    EXPECT_DEATH(buildVggDeep(17, 32), "depth");
}

TEST(Builders, TinyCnnIsWellFormed)
{
    auto net = buildTinyCnn(8);
    EXPECT_TRUE(net->finalized());
    EXPECT_EQ(net->countKind(LayerKind::Conv), 2);
    EXPECT_EQ(net->countKind(LayerKind::Fc), 2);
}

TEST(Builders, SuiteSizes)
{
    EXPECT_EQ(conventionalSuite().size(), 6u);
    EXPECT_EQ(veryDeepSuite().size(), 4u);
    EXPECT_EQ(fullSuite().size(), 10u);
    // Every suite entry builds a finalized network.
    for (const auto &entry : fullSuite()) {
        auto net = entry.build();
        EXPECT_TRUE(net->finalized()) << entry.name;
        EXPECT_EQ(net->name(), entry.name);
    }
}

TEST(Builders, BatchSizeScalesFeatureMapsExactly)
{
    auto n64 = buildVgg16(64);
    auto n128 = buildVgg16(128);
    Bytes fm64 = 0, fm128 = 0;
    for (BufferId b = 0; b < BufferId(n64->numBuffers()); ++b)
        fm64 += n64->buffer(b).bytes();
    for (BufferId b = 0; b < BufferId(n128->numBuffers()); ++b)
        fm128 += n128->buffer(b).bytes();
    EXPECT_EQ(fm128, 2 * fm64);
}
