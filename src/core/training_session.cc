#include "core/training_session.hh"

#include "check/plan_verifier.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "dnn/cudnn_sim.hh"

#include <algorithm>

namespace vdnn::core
{

SessionConfig::SessionConfig() : gpu(gpu::titanXMaxwell()) {}

std::string
sessionConfigName(const SessionConfig &config)
{
    std::string name =
        config.planner ? config.planner->name() : "vDNN_dyn";
    if (config.oracle)
        name += " [oracle]";
    return name;
}

const char *
sessionStateName(SessionState s)
{
    switch (s) {
      case SessionState::Fresh:
        return "fresh";
      case SessionState::Active:
        return "active";
      case SessionState::Suspended:
        return "suspended";
      case SessionState::Evicted:
        return "evicted";
      case SessionState::Torn:
        return "torn";
    }
    return "?";
}

// --- Session -----------------------------------------------------------------

Session::Session(const net::Network &net_, SessionConfig config_)
    : net(net_), config(std::move(config_)), spec(config.gpu)
{
    if (config.oracle) {
        // Hypothetical GPU with enough memory to hold the entire DNN.
        spec.dramCapacity = Bytes(1024) * 1024 * 1024 * 1024;
        spec.name += " (oracle)";
    }
    cudnn = std::make_unique<dnn::CudnnSim>(spec);
    ownedRt = std::make_unique<gpu::Runtime>(spec, config.contention);
    rt = ownedRt.get();
    rt->setKernelLog(config.kernelLog);
    mm = std::make_unique<MemoryManager>(*rt, config.keepTimeline);
}

Session::Session(const net::Network &net_, SessionConfig config_,
                 SharedGpu shared)
    : net(net_), config(std::move(config_)), sharedMode(true)
{
    VDNN_ASSERT(shared.runtime && shared.pool && shared.host,
                "SharedGpu handles must all be set");
    VDNN_ASSERT(!config.oracle,
                "oracle mode is meaningless on a shared device");
    rt = shared.runtime;
    spec = rt->spec();
    cudnn = std::make_unique<dnn::CudnnSim>(spec);
    mm = std::make_unique<MemoryManager>(*rt, *shared.pool, *shared.host,
                                         shared.clientId,
                                         config.keepTimeline);
}

Session::~Session()
{
    if (lifecycle != SessionState::Torn)
        teardown();
}

PlannerContext
Session::plannerContext() const
{
    // Exclusive sessions plan against the whole device; a tenant of a
    // shared pool plans against its current free share, so trial-
    // running planners (vDNN_dyn) probe what it can actually get. A
    // mid-run re-plan keeps the persistent state allocated, so those
    // bytes count toward the share the fresh plan may assume.
    PlannerContext ctx;
    if (!sharedMode) {
        ctx = PlannerContext::exclusive(spec, config.contention);
    } else {
        Bytes share = mm->pool().freeBytes() +
                      (ex ? ex->persistentBytes() : 0);
        ctx = PlannerContext::shared(spec, share, config.contention,
                                     rt->deviceId());
    }
    // Once the first iteration has been profiled, planners see the
    // measured footprint/sparsity instead of their analytic models.
    ctx.profile = profiledFp.valid ? &profiledFp : nullptr;
    return ctx;
}

void
Session::traceLifecycle(const char *what)
{
    if (rt->telemetry().tracing()) {
        rt->telemetry().trace->instant(rt->deviceId(), mm->clientId(),
                                       "session", what, rt->now());
    }
}

void
Session::collectProfile(const IterationResult &r)
{
    profiledFp.valid = true;
    profiledFp.persistent = ex->persistentBytes();
    profiledFp.transientPeak = std::max<Bytes>(
        mm->totalTracker().peakBytes() - profiledFp.persistent, 0);
    profiledFp.iterationTime = r.makespan();
    profiledFp.pcieBytes = r.pcieBytes;
    profiledFp.layers.clear();
    profiledFp.layers.reserve(r.layers.size());
    for (const LayerTiming &lt : r.layers) {
        profiledFp.layers.push_back(obs::ProfiledLayer{
            int(lt.id), lt.fwdLatency(), lt.bwdLatency()});
    }

    // Measure activation sparsity for every buffer holding post-ReLU
    // data, at the same depth normalization the compressing planner
    // uses, so a re-plan can swap its analytic model for these values.
    int max_topo = 1;
    for (net::LayerId id : net.topoOrder()) {
        if (!net.node(id).classifier)
            max_topo = std::max(max_topo, net.node(id).topoIndex);
    }
    profiledFp.bufferSparsity.assign(net.numBuffers(), -1.0);
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (!holdsReluOutput(net, b))
            continue;
        net::LayerId producer = net.buffer(b).producer;
        double depth = producer == net::kInputLayer
                           ? 0.0
                           : double(net.node(producer).topoIndex) /
                                 double(max_topo);
        profiledFp.bufferSparsity[std::size_t(b)] =
            obs::groundTruthReluSparsity(int(b), depth);
    }
    traceLifecycle("profiled");
}

bool
Session::resolvePlan()
{
    if (planResolved)
        return true;

    if (!config.planner)
        config.planner = std::make_shared<DynamicPlanner>(config.exec);
    plannerLabel = config.planner->name();
    if (config.oracle)
        plannerLabel += " [oracle]";

    execPlan = config.planner->plan(net, plannerContext());
    trials = execPlan.trials;
    if (!execPlan.feasible) {
        failed = true;
        failure = execPlan.failReason.empty() ? "untrainable"
                                              : execPlan.failReason;
        return false;
    }
    if (config.exec.check.verifyPlans) {
        // Every plan path (setup, resume-after-evict, in-place replan,
        // migrate) funnels through here, so this one call covers all
        // re-plan surfaces. Capacity overrun stays a warning: the
        // runtime degrades to OOM-requeue, which serving tests rely on.
        check::CheckResult r = check::verifyPlan(
            net, execPlan, plannerContext(), config.exec,
            config.exec.check);
        if (obs::MetricsRegistry *m = rt->telemetry().metrics) {
            m->counter("check.plans_verified").add();
            if (!r.diags.empty())
                m->counter("check.findings").add(double(r.diags.size()));
        }
        if (!r.diags.empty() && rt->telemetry().tracing()) {
            rt->telemetry().trace->instant(rt->deviceId(),
                                           mm->clientId(), "check",
                                           "check-findings:plan",
                                           rt->now());
        }
        if (!r.ok() && config.exec.check.failFast) {
            panic("plan verification failed for '%s':\n%s",
                  plannerLabel.c_str(), r.report().c_str());
        }
    }
    planResolved = true;
    return true;
}

bool
Session::setup()
{
    VDNN_ASSERT(lifecycle == SessionState::Fresh,
                "setup() on a %s session",
                sessionStateName(lifecycle));
    if (!resolvePlan())
        return false;
    ex = std::make_unique<Executor>(net, *cudnn, *rt, *mm, execPlan,
                                    config.exec);
    if (!ex->setup()) {
        failed = true;
        failure = strFormat(
            "setup OOM ('%s', requested %s, largest free block %s)",
            mm->pool().lastOom().tag.c_str(),
            formatBytes(mm->pool().lastOom().requested).c_str(),
            formatBytes(mm->pool().lastOom().largestFree).c_str());
        ex.reset();
        return false;
    }
    failed = false;
    failure.clear();
    lifecycle = SessionState::Active;
    return true;
}

IterationResult
Session::runIteration()
{
    IterationStepper &s = beginIteration();
    while (!s.finished())
        s.step(/*blocking=*/true);
    return completeIteration();
}

IterationStepper &
Session::beginIteration()
{
    VDNN_ASSERT(active(), "beginIteration() on a %s session",
                sessionStateName(lifecycle));
    return ex->beginIteration();
}

IterationStepper *
Session::activeStepper()
{
    return ex ? ex->activeStepper() : nullptr;
}

IterationResult
Session::completeIteration()
{
    VDNN_ASSERT(active(), "completeIteration() on a %s session",
                sessionStateName(lifecycle));
    IterationResult r = ex->finishIteration();
    if (r.ok) {
        ++itersDone;
        lastIter = r;
        if (itersDone == 1)
            collectProfile(r);
    } else {
        failed = true;
        failure = r.failReason;
    }
    return r;
}

const IterationProgram &
Session::program() const
{
    VDNN_ASSERT(ex, "program() before setup()");
    return ex->program();
}

// --- lifecycle transitions ---------------------------------------------------

void
Session::suspend()
{
    VDNN_ASSERT(lifecycle == SessionState::Active,
                "suspend() on a %s session", sessionStateName(lifecycle));
    // The host holds control, so a live stepper is by construction at
    // a legal boundary (between ops, or parked on a Sync/Barrier
    // join); it simply stops receiving steps until resume().
    lifecycle = SessionState::Suspended;
    ++suspends;
    traceLifecycle("suspend");
}

bool
Session::evictToHost()
{
    VDNN_ASSERT(lifecycle == SessionState::Suspended,
                "evictToHost() on a %s session",
                sessionStateName(lifecycle));
    VDNN_ASSERT(ex, "evicting a session with no executor");

    Bytes persist = ex->persistentBytes();
    auto stage = mm->host().tryAllocate(
        persist, strFormat("evict:%s", net.name().c_str()));
    if (!stage)
        return false; // pinned host exhausted; stay Suspended

    // A partially executed iteration cannot survive the device share
    // being released: cancel it (its transients are dead; the
    // iteration re-runs from the top after resume).
    ex->cancelIteration();
    VDNN_ASSERT(mm->deviceUsage() == persist,
                "tenant holds %lld device bytes at eviction, "
                "persistent is %lld",
                (long long)mm->deviceUsage(), (long long)persist);

    // Stage the persistent state out over PCIe, then release the
    // whole device share.
    evictStage = *stage;
    ex->dmaState(persist, gpu::CopyDir::DeviceToHost,
                 strFormat("evict:%s", net.name().c_str()));
    ex->teardown();
    lifecycle = SessionState::Evicted;
    ++evicts;
    traceLifecycle("evict-to-host");
    return true;
}

bool
Session::resume()
{
    if (lifecycle == SessionState::Suspended) {
        // Resident suspension: nothing moved, nothing to re-plan; the
        // parked stepper (if any) continues exactly where it froze.
        lifecycle = SessionState::Active;
        traceLifecycle("resume");
        return true;
    }
    VDNN_ASSERT(lifecycle == SessionState::Evicted,
                "resume() on a %s session", sessionStateName(lifecycle));

    // Re-plan before restoring: the planner sees the *current* free
    // share, so the tenant may come back under a different plan (the
    // IterationProgram is recompiled by the fresh Executor).
    Bytes staged = evictStage.size;
    MemoryPlan old_plan = std::move(execPlan);
    planResolved = false;
    if (!resolvePlan()) {
        execPlan = std::move(old_plan);
        return false; // infeasible right now; retry later
    }

    auto fresh = std::make_unique<Executor>(net, *cudnn, *rt, *mm,
                                            execPlan, config.exec);
    if (!fresh->setup()) {
        // The pool cannot hold the rebuilt persistent state yet.
        failure = strFormat(
            "resume OOM ('%s', requested %s, largest free block %s)",
            mm->pool().lastOom().tag.c_str(),
            formatBytes(mm->pool().lastOom().requested).c_str(),
            formatBytes(mm->pool().lastOom().largestFree).c_str());
        planResolved = false;
        return false;
    }
    ex = std::move(fresh);

    // Restore the staged state over PCIe and drop the staging buffer.
    ex->dmaState(staged, gpu::CopyDir::HostToDevice,
                 strFormat("restore:%s", net.name().c_str()));
    mm->host().release(evictStage);
    evictStage = {};
    failed = false;
    failure.clear();
    lifecycle = SessionState::Active;
    traceLifecycle("resume-from-evict");
    return true;
}

bool
Session::migrate(SharedGpu target)
{
    VDNN_ASSERT(lifecycle == SessionState::Evicted,
                "migrate() on a %s session", sessionStateName(lifecycle));
    VDNN_ASSERT(sharedMode, "migrate() is for shared-device tenants");
    VDNN_ASSERT(target.runtime && target.pool && target.host,
                "SharedGpu handles must all be set");

    if (target.runtime != rt) {
        // Move the staged state into the target device's pinned-host
        // share first, so a refusal leaves the session untouched on
        // the source. The shares partition one physical host DRAM, so
        // the hand-off itself moves no data.
        auto stage = target.host->tryAllocate(
            evictStage.size,
            strFormat("migrate:%s", net.name().c_str()));
        if (!stage)
            return false; // target host share exhausted; stay put

        mm->host().release(evictStage);
        evictStage = *stage;
        mm->finishTracking();

        // Re-home the runtime handles: target device spec (the node
        // may be heterogeneous), its perf model, its pool and host
        // share. The plan is invalidated so resume() re-plans against
        // the target's free share and recompiles the program there.
        rt = target.runtime;
        spec = rt->spec();
        config.gpu = spec;
        cudnn = std::make_unique<dnn::CudnnSim>(spec);
        mm = std::make_unique<MemoryManager>(*rt, *target.pool,
                                             *target.host,
                                             target.clientId,
                                             config.keepTimeline);
        planResolved = false;
        ++migrations;
        traceLifecycle("migrate-in");
    }
    return resume();
}

bool
Session::replan()
{
    VDNN_ASSERT(lifecycle == SessionState::Active,
                "replan() on a %s session", sessionStateName(lifecycle));
    VDNN_ASSERT(!ex->activeStepper(),
                "replan() with an iteration in flight");
    if (config.planner->replanHint() != ReplanHint::InPlace)
        return false;

    MemoryPlan old_plan = std::move(execPlan);
    planResolved = false;
    if (!resolvePlan()) {
        // The fresh share supports no feasible plan; keep the old one
        // (the tenant is already running under it).
        execPlan = std::move(old_plan);
        planResolved = true;
        failed = false;
        failure.clear();
        return false;
    }
    ex->adoptPlan(execPlan);
    ++replans;
    traceLifecycle("replan");
    return true;
}

Bytes
Session::pageOut(Bytes need)
{
    VDNN_ASSERT(lifecycle == SessionState::Active,
                "pageOut() on a %s session", sessionStateName(lifecycle));
    return ex ? ex->pageOutCold(need) : 0;
}

void
Session::teardown()
{
    if (lifecycle == SessionState::Fresh ||
        lifecycle == SessionState::Torn) {
        lifecycle = SessionState::Torn;
        return;
    }
    // Teardown precedes window close so the tracker never records
    // after finish(); the release happens at the final timestamp and
    // adds no weighted time.
    if (lifecycle == SessionState::Evicted) {
        // Nothing device-resident; just drop the host staging.
        mm->host().release(evictStage);
        evictStage = {};
    } else {
        ex->cancelIteration();
        ex->teardown();
    }
    mm->finishTracking();
    if (ownedRt)
        ownedRt->finishPowerWindow();
    lifecycle = SessionState::Torn;
}

Bytes
Session::persistentBytes() const
{
    return ex ? ex->persistentBytes() : 0;
}

SessionResult
Session::result() const
{
    SessionResult r;
    r.network = net.name();
    r.configName = plannerLabel.empty() ? sessionConfigName(config)
                                        : plannerLabel;
    r.plan = execPlan;
    r.trials = trials;

    if (failed || itersDone == 0) {
        r.trainable = false;
        r.failReason = failure.empty() ? "no iteration completed"
                                       : failure;
        return r;
    }

    r.trainable = true;
    r.iterationTime = lastIter.makespan();
    r.featureExtractionTime = lastIter.featureExtractionTime();
    r.classifierTime = lastIter.classifierTime;
    r.transferStallTime = lastIter.transferStallTime;
    r.layerTimings = lastIter.layers;

    r.offloadedBytesPerIter = lastIter.offloadedBytes;
    r.pcieBytesPerIter = lastIter.pcieBytes;
    r.offloads = lastIter.offloads;
    r.prefetches = lastIter.prefetches;
    r.onDemandFetches = lastIter.onDemandFetches;

    r.maxTotalUsage = mm->totalTracker().peakBytes();
    r.avgTotalUsage = mm->totalTracker().averageBytes();
    r.maxManagedUsage = mm->managedTracker().peakBytes();
    r.avgManagedUsage = mm->managedTracker().averageBytes();
    r.persistentBytes = ex ? ex->persistentBytes() : 0;

    // Host allocator and power model are device-wide; on a shared
    // device they mix in co-tenant activity, so they are reported
    // only for exclusive sessions (the serve layer builds per-tenant
    // metrics from the pool's client accounting instead).
    if (!sharedMode) {
        r.hostPeakBytes = mm->host().peakUsage();
        r.avgPowerW = rt->power().averagePowerW();
        r.maxPowerW = rt->power().maxPowerW();
    }

    if (config.kernelLog)
        r.kernels = rt->kernelLog();
    if (config.keepTimeline) {
        r.totalTimeline = mm->totalTracker().signal().timeline();
        r.managedTimeline = mm->managedTracker().signal().timeline();
    }
    return r;
}

// --- one-shot driver ---------------------------------------------------------

SessionResult
runSession(const net::Network &net, SessionConfig config)
{
    VDNN_ASSERT(config.iterations >= 1, "need at least one iteration");

    int iterations = config.iterations;
    Session session(net, std::move(config));
    if (!session.setup())
        return session.result();

    for (int i = 0; i < iterations; ++i) {
        IterationResult last = session.runIteration();
        if (!last.ok) {
            session.teardown();
            SessionResult r = session.result();
            r.trainable = false;
            r.failReason = last.failReason;
            return r;
        }
    }

    session.teardown();
    return session.result();
}

} // namespace vdnn::core
