/**
 * @file
 * Tests for the static-analysis subsystem (src/check/): the clean-pass
 * matrix over every planner x network, seeded-defect rejection with
 * the right diagnostic for each defect class, and the LedgerAuditor's
 * replay over both hand-built and corrupted lifecycle trails.
 *
 * Each seeded defect hand-corrupts a golden artifact (a compiled
 * IterationProgram, a planner-produced MemoryPlan, or a lifecycle
 * event log) the way a real compiler/scheduler bug would, and asserts
 * the matching pass rejects it with the expected DiagCode — so a
 * regression that weakens a verifier check fails here, not in some
 * downstream golden-output diff.
 */

#include "check/check.hh"
#include "check/ledger_auditor.hh"
#include "check/plan_verifier.hh"
#include "check/program_verifier.hh"

#include "common/units.hh"
#include "core/dynamic_policy.hh"
#include "core/executor.hh"
#include "core/iteration_program.hh"
#include "core/planner.hh"
#include "net/builders.hh"
#include "serve/serve_stats.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

using namespace vdnn;
using namespace vdnn::core;
using check::CheckResult;
using check::DiagCode;

namespace
{

PlannerContext
titanCtx()
{
    return PlannerContext::exclusive(gpu::titanXMaxwell());
}

bool
hasCode(const CheckResult &r, DiagCode code)
{
    return std::any_of(r.diags.begin(), r.diags.end(),
                       [code](const check::Diagnostic &d) {
                           return d.code == code;
                       });
}

/** Index of the @p nth op matching (kind, backward), or -1. */
int
findOp(const IterationProgram &p, OpKind kind, bool backward,
       int nth = 0)
{
    for (std::size_t i = 0; i < p.ops.size(); ++i) {
        if (p.ops[i].kind == kind && p.ops[i].backward == backward &&
            nth-- == 0) {
            return int(i);
        }
    }
    return -1;
}

/** A golden (net, plan, program) triple under vDNN_all. */
struct Golden
{
    std::unique_ptr<net::Network> net;
    MemoryPlan plan;
    ExecutorConfig cfg;
    IterationProgram prog;

    explicit Golden(ExecutorConfig config = {})
        : net(net::buildTinyCnn(8)), cfg(config)
    {
        plan = OffloadAllPlanner(AlgoPreference::MemoryOptimal)
                   .plan(*net, titanCtx());
        prog = IterationProgram::compile(*net, plan, cfg);
    }

    CheckResult verify() const
    {
        return check::verifyProgram(*net, plan, cfg, prog);
    }
};

} // namespace

// --- clean passes ------------------------------------------------------------

TEST(CheckCleanPass, EveryPlannerByEveryNetwork)
{
    struct NetCase
    {
        const char *label;
        std::unique_ptr<net::Network> net;
    };
    std::vector<NetCase> nets;
    nets.push_back({"VGG-16 (64)", net::buildVgg16(64)});
    nets.push_back({"AlexNet (128)", net::buildAlexNet(128)});
    nets.push_back({"OverFeat (128)", net::buildOverFeat(128)});

    ExecutorConfig exec;
    std::vector<std::shared_ptr<Planner>> planners = {
        std::make_shared<BaselinePlanner>(AlgoPreference::MemoryOptimal),
        std::make_shared<OffloadAllPlanner>(),
        std::make_shared<OffloadConvPlanner>(),
        std::make_shared<CompressedOffloadPlanner>(),
        std::make_shared<DynamicPlanner>(exec),
    };

    for (const NetCase &nc : nets) {
        for (const auto &planner : planners) {
            MemoryPlan plan = planner->plan(*nc.net, titanCtx());
            ASSERT_TRUE(plan.feasible)
                << nc.label << " x " << planner->name();
            CheckResult r = check::verifyPlan(*nc.net, plan, titanCtx(),
                                              exec);
            EXPECT_TRUE(r.ok()) << nc.label << " x " << planner->name()
                                << "\n"
                                << r.report();
            EXPECT_GT(r.provablePeakBytes, 0);
            EXPECT_GT(r.persistentBytes, 0);
        }
    }
}

TEST(CheckCleanPass, AblationsAndStaticPrograms)
{
    // The asynchronous-release ablation and the prefetch-disabled
    // configuration emit differently shaped programs; all must verify.
    for (bool sync_boundary : {true, false}) {
        for (bool prefetch : {true, false}) {
            ExecutorConfig cfg;
            cfg.syncAtLayerBoundary = sync_boundary;
            cfg.prefetchEnabled = prefetch;
            Golden g(cfg);
            CheckResult r = g.verify();
            EXPECT_TRUE(r.ok())
                << "sync=" << sync_boundary << " prefetch=" << prefetch
                << "\n"
                << r.report();
            EXPECT_EQ(r.dmasIssued, r.dmasJoined);
        }
    }
}

TEST(CheckCleanPass, PeakCoversOffloadTraffic)
{
    Golden g;
    CheckResult r = g.verify();
    ASSERT_TRUE(r.ok()) << r.report();
    EXPECT_GT(r.peakTransientBytes, 0);
    EXPECT_GT(r.dmasIssued, 0);

    // Keeping everything resident can only raise the provable peak.
    MemoryPlan resident = g.plan;
    resident.clearOffloads();
    IterationProgram p2 =
        IterationProgram::compile(*g.net, resident, g.cfg);
    CheckResult r2 = check::verifyProgram(*g.net, resident, g.cfg, p2);
    ASSERT_TRUE(r2.ok()) << r2.report();
    EXPECT_GE(r2.peakTransientBytes, r.peakTransientBytes);
}

// --- seeded program defects --------------------------------------------------

TEST(CheckSeededDefect, DroppedReleaseLeaksAllocation)
{
    // Not every backward Release owns live state (an in-place ReLU's
    // may be a no-op), so find one whose removal provably leaks.
    Golden golden;
    bool leaked = false;
    for (int nth = 0;; ++nth) {
        Golden g;
        int idx = findOp(g.prog, OpKind::Release, /*backward=*/true,
                         nth);
        if (idx < 0)
            break;
        g.prog.ops.erase(g.prog.ops.begin() + idx);
        CheckResult r = g.verify();
        EXPECT_FALSE(r.ok()); // at minimum a malformed group
        if (hasCode(r, DiagCode::LeakedAlloc)) {
            leaked = true;
            break;
        }
    }
    EXPECT_TRUE(leaked)
        << "no dropped backward Release produced LeakedAlloc";
}

TEST(CheckSeededDefect, ReorderedSyncRunsReleaseUnderDma)
{
    Golden g;
    // Swap the first forward Sync with the Release that follows it:
    // the Release now runs under its layer's un-joined offload DMAs.
    int idx = findOp(g.prog, OpKind::Sync, /*backward=*/false);
    ASSERT_GE(idx, 0);
    ASSERT_EQ(g.prog.ops[idx + 1].kind, OpKind::Release);
    std::swap(g.prog.ops[idx], g.prog.ops[idx + 1]);
    CheckResult r = g.verify();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::SyncOrder)) << r.report();
}

TEST(CheckSeededDefect, OffloadWithoutFetchReadsStaleData)
{
    // Disable prefetching so the OnDemandFetch ops are the only H2D
    // path, then drop one: the backward kernel reads a Host buffer.
    ExecutorConfig cfg;
    cfg.prefetchEnabled = false;
    // Fetch ops of classifier layers guard already-resident buffers,
    // so find the one whose removal leaves offloaded data stranded.
    bool stale = false;
    for (int nth = 0;; ++nth) {
        Golden g(cfg);
        int idx = findOp(g.prog, OpKind::OnDemandFetch,
                         /*backward=*/true, nth);
        if (idx < 0)
            break;
        g.prog.ops.erase(g.prog.ops.begin() + idx);
        CheckResult r = g.verify();
        if (hasCode(r, DiagCode::ReadOffloaded)) {
            EXPECT_FALSE(r.ok());
            stale = true;
            break;
        }
    }
    EXPECT_TRUE(stale)
        << "no dropped OnDemandFetch produced ReadOffloaded";
}

TEST(CheckSeededDefect, UnjoinedDmaSurvivesToEndIteration)
{
    Golden g;
    // Drop every forward Sync: offload DMAs are never joined (the
    // backward's on-demand fetches would join dropped *prefetches*,
    // but nothing ever joins an offload besides a Sync).
    auto &ops = g.prog.ops;
    ops.erase(std::remove_if(ops.begin(), ops.end(),
                             [](const IterOp &op) {
                                 return op.kind == OpKind::Sync &&
                                        !op.backward;
                             }),
              ops.end());
    CheckResult r = g.verify();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::UnjoinedDma)) << r.report();
}

TEST(CheckSeededDefect, DuplicateReleaseUnderflowsRefcount)
{
    Golden g;
    int idx = findOp(g.prog, OpKind::Release, /*backward=*/false);
    ASSERT_GE(idx, 0);
    g.prog.ops.insert(g.prog.ops.begin() + idx,
                      g.prog.ops[std::size_t(idx)]);
    CheckResult r = g.verify();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::DoubleRelease)) << r.report();
}

TEST(CheckSeededDefect, DroppedAllocLeavesOutputUnallocated)
{
    Golden g;
    // The first layer is a CONV (not in-place): dropping its Alloc
    // leaves its Y unallocated when the kernel writes it.
    ASSERT_FALSE(g.net->node(0).spec.inPlace());
    int idx = findOp(g.prog, OpKind::Alloc, /*backward=*/false,
                     /*nth=*/0);
    ASSERT_GE(idx, 0);
    g.prog.ops.erase(g.prog.ops.begin() + idx);
    CheckResult r = g.verify();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::UseUnallocated)) << r.report();
}

TEST(CheckSeededDefect, MisplacedBarrierBreaksPhaseStructure)
{
    Golden g;
    // A forward op after the Barrier is a phase violation.
    int barrier = findOp(g.prog, OpKind::Barrier, /*backward=*/true);
    if (barrier < 0)
        barrier = findOp(g.prog, OpKind::Barrier, /*backward=*/false);
    ASSERT_GE(barrier, 0);
    int kernel = findOp(g.prog, OpKind::Kernel, /*backward=*/false);
    ASSERT_GE(kernel, 0);
    IterOp moved = g.prog.ops[std::size_t(kernel)];
    g.prog.ops.insert(g.prog.ops.begin() + barrier + 1, moved);
    CheckResult r = g.verify();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::BadStructure)) << r.report();
}

// --- seeded plan defects -----------------------------------------------------

TEST(CheckSeededDefect, OffloadOfIneligibleBuffer)
{
    Golden g;
    // The classifier region is never offload-eligible.
    int seeded = -1;
    for (net::BufferId b = 0;
         b < net::BufferId(g.net->numBuffers()); ++b) {
        if (!offloadEligible(*g.net, b)) {
            g.plan.directive(b).action =
                BufferDirective::Action::Offload;
            seeded = int(b);
            break;
        }
    }
    ASSERT_GE(seeded, 0);
    CheckResult r = check::verifyPlan(*g.net, g.plan, titanCtx(),
                                      g.cfg);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::IneligibleOffload)) << r.report();
}

TEST(CheckSeededDefect, CompressedDirectiveWithoutSparsity)
{
    Golden g;
    // Compression on a kept-resident buffer moves nothing over PCIe.
    net::BufferId target = -1;
    for (net::BufferId b = 0;
         b < net::BufferId(g.net->numBuffers()); ++b) {
        if (!g.plan.offloads(b)) {
            target = b;
            break;
        }
    }
    ASSERT_GE(target, 0);
    g.plan.directive(target).compressed = true;
    g.plan.directive(target).dmaScale = 0.5;
    CheckResult r = check::verifyPlan(*g.net, g.plan, titanCtx(),
                                      g.cfg);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::CompressedDense)) << r.report();
}

TEST(CheckSeededDefect, DmaScaleOutsideUnitInterval)
{
    auto network = net::buildVgg16(32);
    MemoryPlan plan =
        CompressedOffloadPlanner().plan(*network, titanCtx());
    net::BufferId target = -1;
    for (net::BufferId b = 0;
         b < net::BufferId(network->numBuffers()); ++b) {
        if (plan.offloads(b) && plan.directive(b).compressed) {
            target = b;
            break;
        }
    }
    ASSERT_GE(target, 0);
    plan.directive(target).dmaScale = 1.5; // would *grow* the traffic
    CheckResult r = check::verifyPlan(*network, plan, titanCtx(),
                                      ExecutorConfig{});
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::BadDmaScale)) << r.report();
}

TEST(CheckSeededDefect, OversubscribedShareRejectedWhenEnforced)
{
    Golden g;
    PlannerContext tiny = PlannerContext::shared(
        gpu::titanXMaxwell(), Bytes(4096));
    check::CheckConfig enforce;
    enforce.enforceCapacity = true;
    CheckResult r =
        check::verifyPlan(*g.net, g.plan, tiny, g.cfg, enforce);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::ShareExceeded)) << r.report();

    // The wired (runtime) default only warns: OOM-requeue handles it.
    CheckResult warned =
        check::verifyPlan(*g.net, g.plan, tiny, g.cfg);
    EXPECT_TRUE(warned.ok()) << warned.report();
    EXPECT_TRUE(hasCode(warned, DiagCode::ShareExceeded));
}

TEST(CheckSeededDefect, StaticPlanWithOffloadDirectives)
{
    auto network = net::buildTinyCnn(8);
    MemoryPlan plan =
        BaselinePlanner(AlgoPreference::MemoryOptimal)
            .plan(*network, titanCtx());
    ASSERT_TRUE(plan.staticAllocation);
    for (net::BufferId b = 0;
         b < net::BufferId(network->numBuffers()); ++b) {
        if (offloadEligible(*network, b)) {
            plan.directive(b).action = BufferDirective::Action::Offload;
            break;
        }
    }
    CheckResult r = check::verifyPlan(*network, plan, titanCtx(),
                                      ExecutorConfig{});
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::StaticPlanTraffic)) << r.report();
}

TEST(CheckSeededDefect, PlanShapeMismatch)
{
    Golden g;
    g.plan.buffers.pop_back();
    CheckResult r = check::verifyPlan(*g.net, g.plan, titanCtx(),
                                      g.cfg);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::PlanShape)) << r.report();
}

TEST(CheckSeededDefect, AmbiguousPrefetchPriorities)
{
    // A concat join (GoogLeNet inception) is the only place one layer
    // prefetches several buffers; equal positive priorities there make
    // the issue order fall back to buffer id.
    auto network = net::buildGoogLeNet(8);
    MemoryPlan plan = OffloadAllPlanner().plan(*network, titanCtx());
    bool seeded = false;
    for (net::LayerId id : network->topoOrder()) {
        const net::LayerNode &n = network->node(id);
        std::vector<net::BufferId> offloaded;
        for (net::LayerId in_id : n.inputs) {
            net::BufferId b = in_id == net::kInputLayer
                                  ? network->inputBuffer()
                                  : network->node(in_id).yBuffer;
            if (plan.offloads(b) &&
                std::find(offloaded.begin(), offloaded.end(), b) ==
                    offloaded.end()) {
                offloaded.push_back(b);
            }
        }
        if (offloaded.size() >= 2) {
            plan.directive(offloaded[0]).prefetchPriority = 3;
            plan.directive(offloaded[1]).prefetchPriority = 3;
            seeded = true;
            break;
        }
    }
    ASSERT_TRUE(seeded);
    CheckResult r = check::verifyPlan(*network, plan, titanCtx(),
                                      ExecutorConfig{});
    EXPECT_TRUE(hasCode(r, DiagCode::PriorityConflict)) << r.report();
    EXPECT_TRUE(r.ok()); // a warning, not an error
}

// --- ledger auditing ---------------------------------------------------------

namespace
{

serve::LifecycleEvent
event(TimeNs when, serve::JobId job, const char *what, int device,
      Bytes before, Bytes after)
{
    serve::LifecycleEvent ev;
    ev.when = when;
    ev.job = job;
    ev.what = what;
    ev.device = device;
    ev.reservedBefore = before;
    ev.reservedAfter = after;
    return ev;
}

/** A well-formed single-job trail: admit, preempt, resume, finish. */
serve::ServeReport
goldenReport()
{
    serve::ServeReport rep;
    rep.lifecycle = {
        event(10, 0, "admit", 0, 0, 100),
        event(20, 0, "suspend", 0, 100, 100),
        event(30, 0, "evict", 0, 100, 0),
        event(40, 0, "resume", 0, 0, 100),
        event(50, 0, "finish", 0, 100, 0),
    };
    serve::JobOutcome job;
    job.id = 0;
    job.state = serve::JobState::Finished;
    job.preemptions = 1;
    rep.jobs.push_back(job);
    return rep;
}

} // namespace

TEST(CheckLedgerAudit, GoldenTrailPasses)
{
    CheckResult r = check::auditLedger(goldenReport());
    EXPECT_TRUE(r.ok()) << r.report();
}

TEST(CheckLedgerAudit, BrokenChainRejected)
{
    serve::ServeReport rep = goldenReport();
    rep.lifecycle[3].reservedBefore = 42; // does not chain from evict
    CheckResult r = check::auditLedger(rep);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::LedgerChain)) << r.report();
}

TEST(CheckLedgerAudit, DoubleAdmissionRejected)
{
    serve::ServeReport rep = goldenReport();
    rep.lifecycle.insert(rep.lifecycle.begin() + 1,
                         event(15, 0, "admit", 1, 100, 200));
    for (std::size_t i = 2; i < rep.lifecycle.size(); ++i) {
        rep.lifecycle[i].reservedBefore += 100;
        rep.lifecycle[i].reservedAfter += 100;
    }
    rep.reservedBytesAtEnd = 100;
    CheckResult r = check::auditLedger(rep);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::DoubleResidency)) << r.report();
}

TEST(CheckLedgerAudit, IllegalTransitionRejected)
{
    serve::ServeReport rep = goldenReport();
    rep.lifecycle.erase(rep.lifecycle.begin() + 1); // evict w/o suspend
    CheckResult r = check::auditLedger(rep);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::BadTransition)) << r.report();
}

TEST(CheckLedgerAudit, WrongDeltaSignRejected)
{
    serve::ServeReport rep = goldenReport();
    // A suspend that moves reserved bytes is bookkeeping corruption.
    rep.lifecycle[1].reservedAfter = 150;
    rep.lifecycle[2].reservedBefore = 150;
    rep.lifecycle[2].reservedAfter = 50;
    rep.lifecycle[3].reservedBefore = 50;
    rep.lifecycle[3].reservedAfter = 150;
    rep.lifecycle[4].reservedBefore = 150;
    rep.lifecycle[4].reservedAfter = 50;
    rep.reservedBytesAtEnd = 0;
    CheckResult r = check::auditLedger(rep);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::DeltaSign)) << r.report();
}

TEST(CheckLedgerAudit, UnresolvedPreemptionIsLost)
{
    serve::ServeReport rep = goldenReport();
    rep.lifecycle.resize(3); // ends Evicted, never resumed
    rep.jobs[0].state = serve::JobState::Evicted;
    CheckResult r = check::auditLedger(rep);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::LostJob)) << r.report();
}

TEST(CheckLedgerAudit, UndrainedLedgerRejected)
{
    serve::ServeReport rep = goldenReport();
    rep.reservedBytesAtEnd = 7;
    rep.evictedLedgerAtEnd = 1;
    CheckResult r = check::auditLedger(rep);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::LedgerNonZero)) << r.report();
}

TEST(CheckLedgerAudit, OutcomeCountersMustMatchLog)
{
    serve::ServeReport rep = goldenReport();
    rep.jobs[0].preemptions = 0; // log shows one evict
    CheckResult r = check::auditLedger(rep);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(hasCode(r, DiagCode::OutcomeMismatch)) << r.report();
}

TEST(CheckLedgerAudit, MigrationTrailPasses)
{
    serve::ServeReport rep;
    rep.lifecycle = {
        event(10, 0, "admit", 0, 0, 100),
        event(20, 0, "migrate-out", 0, 100, 0),
        event(21, 0, "migrate", 1, 0, 120),
        event(30, 0, "finish", 1, 120, 0),
    };
    serve::JobOutcome job;
    job.id = 0;
    job.state = serve::JobState::Finished;
    job.migrations = 1;
    rep.jobs.push_back(job);
    CheckResult r = check::auditLedger(rep);
    EXPECT_TRUE(r.ok()) << r.report();
}

// --- diagnostics rendering ---------------------------------------------------

TEST(CheckDiagnostics, RenderingAndCounts)
{
    CheckResult r;
    r.add(DiagCode::UnjoinedDma, check::Severity::Error, "boom", 12, 3,
          7);
    r.add(DiagCode::ShareExceeded, check::Severity::Warning, "close");
    EXPECT_EQ(r.errorCount(), 1);
    EXPECT_EQ(r.warningCount(), 1);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.diags[0].str(),
              "error[UnjoinedDma] op 12 layer 3 buffer 7: boom");
    EXPECT_NE(r.report().find("warning[ShareExceeded]"),
              std::string::npos);
}
