/**
 * @file
 * Paper-vs-measured comparison rows for EXPERIMENTS.md.
 *
 * Each bench records the value the paper reports next to the value this
 * reproduction measures, and whether the qualitative claim (the "shape")
 * holds. The accumulated rows render as one summary table per bench.
 */

#ifndef VDNN_STATS_COMPARISON_HH
#define VDNN_STATS_COMPARISON_HH

#include <string>
#include <vector>

namespace vdnn::stats
{

class Comparison
{
  public:
    explicit Comparison(std::string experiment)
        : name(std::move(experiment))
    {}

    /**
     * Record a quantitative claim.
     * @param what      description of the metric
     * @param paper     the paper's number
     * @param measured  this reproduction's number
     * @param tolerance acceptable relative deviation for "holds"
     */
    void addNumeric(const std::string &what, double paper, double measured,
                    double tolerance = 0.5);

    /** Record a qualitative claim (e.g. "configuration X fails"). */
    void addBool(const std::string &what, bool paper_says, bool measured);

    /** Record an informational row that is not pass/fail checked. */
    void addInfo(const std::string &what, const std::string &paper,
                 const std::string &measured);

    /** All rows hold? */
    bool allHold() const { return failures == 0; }

    int failed() const { return failures; }
    int total() const { return int(rows.size()); }

    /** Render the summary table (also returns it for logging). */
    std::string render() const;

    /** Print to stdout. */
    void print() const;

  private:
    struct Row
    {
        std::string what;
        std::string paper;
        std::string measured;
        std::string verdict;
    };

    std::string name;
    std::vector<Row> rows;
    int failures = 0;
    int checked = 0;
};

} // namespace vdnn::stats

#endif // VDNN_STATS_COMPARISON_HH
