/**
 * @file
 * Unit tests for the GPU power model (Section V-D substrate).
 */

#include "gpu/power_model.hh"

#include "common/units.hh"
#include "gpu/gpu_spec.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::gpu;
using namespace vdnn::literals;

class PowerModelUnitTest : public ::testing::Test
{
  protected:
    GpuSpec spec = titanXMaxwell();
};

TEST_F(PowerModelUnitTest, IdleWindowDrawsIdlePower)
{
    PowerModel pm(spec);
    pm.begin(0);
    pm.finish(1_ms);
    EXPECT_DOUBLE_EQ(pm.averagePowerW(), spec.idlePowerW);
    EXPECT_DOUBLE_EQ(pm.maxPowerW(), spec.idlePowerW);
}

TEST_F(PowerModelUnitTest, KernelRaisesDrawForItsDuration)
{
    PowerModel pm(spec);
    pm.begin(0);
    pm.kernelStart(0, 1.0, 0.5);
    pm.kernelEnd(500_us, 1.0, 0.5);
    pm.finish(1_ms);
    // Busy half the window at full compute + half DRAM.
    double busy = spec.idlePowerW + spec.computePowerW +
                  spec.dramPowerW * (0.5 + 0.5 * 0.5);
    EXPECT_NEAR(pm.maxPowerW(), busy, 1e-9);
    EXPECT_NEAR(pm.averagePowerW(),
                (busy + spec.idlePowerW) / 2.0, 1e-9);
}

TEST_F(PowerModelUnitTest, UtilizationSpreadIsFlattened)
{
    // Real kernels draw near-constant power regardless of useful-FLOP
    // efficiency: low-util and high-util kernels differ by at most the
    // flattened fraction.
    PowerModel low(spec), high(spec);
    low.begin(0);
    low.kernelStart(0, 0.2, 0.1);
    low.kernelEnd(1_ms, 0.2, 0.1);
    low.finish(1_ms);
    high.begin(0);
    high.kernelStart(0, 1.0, 1.0);
    high.kernelEnd(1_ms, 1.0, 1.0);
    high.finish(1_ms);
    double spread = high.maxPowerW() / low.maxPowerW();
    EXPECT_GT(spread, 1.0);
    EXPECT_LT(spread, 1.35);
}

TEST_F(PowerModelUnitTest, CopyAddsCopyEnginePower)
{
    PowerModel pm(spec);
    pm.begin(0);
    pm.copyStart(0, spec.pcie.dmaBandwidth);
    pm.copyEnd(1_ms, spec.pcie.dmaBandwidth);
    pm.finish(1_ms);
    EXPECT_GT(pm.maxPowerW(), spec.idlePowerW + spec.copyPowerW - 1e-9);
}

TEST_F(PowerModelUnitTest, OverlappingActivitiesSum)
{
    PowerModel pm(spec);
    pm.begin(0);
    pm.kernelStart(0, 0.8, 0.3);
    pm.copyStart(100_us, spec.pcie.dmaBandwidth);
    pm.copyEnd(300_us, spec.pcie.dmaBandwidth);
    pm.kernelEnd(1_ms, 0.8, 0.3);
    pm.finish(1_ms);
    // Peak occurs during the overlap and exceeds either alone.
    PowerModel kernel_only(spec);
    kernel_only.begin(0);
    kernel_only.kernelStart(0, 0.8, 0.3);
    kernel_only.kernelEnd(1_ms, 0.8, 0.3);
    kernel_only.finish(1_ms);
    EXPECT_GT(pm.maxPowerW(), kernel_only.maxPowerW());
}

TEST_F(PowerModelUnitTest, EnergyIsAvgTimesDuration)
{
    PowerModel pm(spec);
    pm.begin(0);
    pm.finish(2_s);
    EXPECT_NEAR(pm.energyJ(), spec.idlePowerW * 2.0, 1e-6);
}

TEST_F(PowerModelUnitTest, UtilClampedToValidRange)
{
    PowerModel pm(spec);
    pm.begin(0);
    pm.kernelStart(0, 5.0, -1.0); // clamped to [0,1]
    pm.kernelEnd(1_ms, 5.0, -1.0);
    pm.finish(1_ms);
    EXPECT_LE(pm.maxPowerW(),
              spec.idlePowerW + spec.computePowerW + spec.dramPowerW);
}

TEST_F(PowerModelUnitTest, MismatchedEndPanics)
{
    PowerModel pm(spec);
    pm.begin(0);
    // Ending a kernel that never started drives draw below idle.
    EXPECT_DEATH(pm.kernelEnd(10, 1.0, 1.0), "below idle");
}

TEST(GpuSpecs, PresetsAreOrderedSensibly)
{
    EXPECT_GT(titanXPascal().peakFlops, titanXMaxwell().peakFlops);
    EXPECT_LT(teslaK40().peakFlops, titanXMaxwell().peakFlops);
    EXPECT_LT(smallGpu4GiB().dramCapacity,
              titanXMaxwell().dramCapacity);
    EXPECT_EQ(titanXMaxwell().dramCapacity, 12_GiB);
    EXPECT_DOUBLE_EQ(titanXMaxwell().peakFlops, 7.0e12);
    EXPECT_DOUBLE_EQ(titanXMaxwell().dramBandwidth, 336.0e9);
}
