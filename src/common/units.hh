/**
 * @file
 * Unit constants, literals, and conversion helpers.
 *
 * Conventions used throughout the code base:
 *  - sizes are bytes (Bytes), with KiB/MiB/GiB binary multiples;
 *  - bandwidths are bytes per second (double);
 *  - times are integer nanoseconds (TimeNs).
 */

#ifndef VDNN_COMMON_UNITS_HH
#define VDNN_COMMON_UNITS_HH

#include "common/types.hh"

#include <cmath>
#include <string>

namespace vdnn
{

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

inline constexpr TimeNs kNsPerUs = 1000;
inline constexpr TimeNs kNsPerMs = 1000 * kNsPerUs;
inline constexpr TimeNs kNsPerSec = 1000 * kNsPerMs;

namespace literals
{

constexpr Bytes operator""_KiB(unsigned long long v) { return Bytes(v) * kKiB; }
constexpr Bytes operator""_MiB(unsigned long long v) { return Bytes(v) * kMiB; }
constexpr Bytes operator""_GiB(unsigned long long v) { return Bytes(v) * kGiB; }

constexpr TimeNs operator""_ns(unsigned long long v) { return TimeNs(v); }
constexpr TimeNs operator""_us(unsigned long long v) { return TimeNs(v) * kNsPerUs; }
constexpr TimeNs operator""_ms(unsigned long long v) { return TimeNs(v) * kNsPerMs; }
constexpr TimeNs operator""_s(unsigned long long v) { return TimeNs(v) * kNsPerSec; }

} // namespace literals

/** Convert a byte count to (double) mebibytes. */
inline double
toMiB(Bytes b)
{
    return double(b) / double(kMiB);
}

/** Convert a byte count to (double) gibibytes. */
inline double
toGiB(Bytes b)
{
    return double(b) / double(kGiB);
}

/** Convert integer nanoseconds to (double) milliseconds. */
inline double
toMs(TimeNs t)
{
    return double(t) / double(kNsPerMs);
}

/** Convert integer nanoseconds to (double) microseconds. */
inline double
toUs(TimeNs t)
{
    return double(t) / double(kNsPerUs);
}

/** Convert integer nanoseconds to (double) seconds. */
inline double
toSeconds(TimeNs t)
{
    return double(t) / double(kNsPerSec);
}

/** Convert (double) seconds to integer nanoseconds, rounding to nearest. */
inline TimeNs
secondsToNs(double s)
{
    return TimeNs(std::llround(s * double(kNsPerSec)));
}

/**
 * Time for moving @p bytes at @p bytes_per_sec, rounded up to a whole
 * nanosecond so a non-empty transfer never takes zero time.
 */
inline TimeNs
transferTimeNs(Bytes bytes, double bytes_per_sec)
{
    if (bytes <= 0)
        return 0;
    double s = double(bytes) / bytes_per_sec;
    TimeNs t = TimeNs(std::ceil(s * double(kNsPerSec)));
    return t > 0 ? t : 1;
}

/** Human readable byte count, e.g. "11.3 GiB". */
std::string formatBytes(Bytes b);

/** Human readable duration, e.g. "12.5 ms". */
std::string formatTime(TimeNs t);

} // namespace vdnn

#endif // VDNN_COMMON_UNITS_HH
