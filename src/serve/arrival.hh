/**
 * @file
 * Job arrival generators for the serving workload.
 *
 * Three shapes cover the evaluation needs: Poisson arrivals (the
 * classic open-loop cluster model — exponential inter-arrival gaps at
 * a given rate), uniform gaps, and trace replay. TraceArrivals reads
 * a CSV cluster log — one job per line with its submit time, network,
 * priority, planner and iteration budget — so the cluster/preemption
 * benches can replay real (or crafted) arrival skew instead of
 * synthetic processes; bench/traces/ ships a sample. All arrival
 * times are absolute simulated times suitable for JobSpec::arrival.
 */

#ifndef VDNN_SERVE_ARRIVAL_HH
#define VDNN_SERVE_ARRIVAL_HH

#include "common/random.hh"
#include "common/types.hh"

#include <iosfwd>
#include <string>
#include <vector>

namespace vdnn::serve
{

/**
 * @p count arrival times of a Poisson process with @p rate_per_sec
 * expected arrivals per simulated second, starting at @p start.
 * Deterministic for a given @p rng seed.
 */
std::vector<TimeNs> poissonArrivals(int count, double rate_per_sec,
                                    SplitMix64 &rng, TimeNs start = 0);

/** @p count arrivals spaced a fixed @p gap apart, starting at @p start. */
std::vector<TimeNs> uniformArrivals(int count, TimeNs gap,
                                    TimeNs start = 0);

/** Convert trace timestamps in (double) seconds to arrival times. */
std::vector<TimeNs> traceArrivals(const std::vector<double> &seconds);

/** One replayed job of an arrival trace. */
struct TraceEntry
{
    /** Submit time (absolute, converted from the trace's seconds). */
    TimeNs submit = 0;
    /** Network label, e.g. "vgg16:64" (builder:batch — the consumer
     *  maps it to a net::Network). */
    std::string net;
    int priority = 0;
    /** Planner label, e.g. "vdnn_all" (consumer-mapped). */
    std::string planner;
    int iterations = 1;
};

/**
 * A replayed cluster log: CSV lines of
 *
 *     submit_s,net,priority,planner[,iterations]
 *
 * with '#' comments and blank lines skipped, and an optional leading
 * header line (first field starts with a letter, e.g. "submit_s").
 * Entries are sorted by submit time. Malformed lines — including a
 * first data line with a broken submit field — poison the trace:
 * ok() turns false and error() says which line; replaying a silently
 * truncated log would fake the very load pattern the experiment is
 * about.
 */
class TraceArrivals
{
  public:
    /** Parse a trace from a file. */
    static TraceArrivals load(const std::string &path);

    /** Parse a trace from an open stream (tests, embedded traces). */
    static TraceArrivals parse(std::istream &in);

    /** Parse a trace from CSV text. */
    static TraceArrivals parseString(const std::string &text);

    bool ok() const { return err.empty(); }
    const std::string &error() const { return err; }

    const std::vector<TraceEntry> &entries() const { return jobs; }
    std::size_t size() const { return jobs.size(); }

  private:
    std::vector<TraceEntry> jobs;
    std::string err;
};

} // namespace vdnn::serve

#endif // VDNN_SERVE_ARRIVAL_HH
