/**
 * @file
 * Figure 12: size of the GPU memory allocations offloaded to host-side
 * pinned memory (cudaMallocHost) per training iteration, for vDNN_all
 * and vDNN_conv.
 *
 * Paper anchor: vDNN_all reaches up to 16 GB of offloaded data for
 * VGG-16 (256); vDNN_conv offloads strictly less than vDNN_all.
 */

#include "bench_common.hh"

#include "common/units.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

void
report()
{
    stats::Table table("Figure 12: offloaded bytes per iteration");
    table.setColumns({"network", "vDNN_all (MiB)", "vDNN_conv (MiB)",
                      "host peak (all, MiB)"});

    double vgg256_all_gb = 0.0;
    bool conv_less = true;
    for (const auto &entry : net::conventionalSuite()) {
        auto network = entry.build();
        auto all = runPlanner(*network, offloadAllPlanner(core::AlgoPreference::MemoryOptimal));
        auto conv = runPlanner(*network, offloadConvPlanner(core::AlgoPreference::MemoryOptimal));
        conv_less = conv_less && conv.offloadedBytesPerIter <=
                                     all.offloadedBytesPerIter;
        if (entry.name == "VGG-16 (256)")
            vgg256_all_gb = double(all.offloadedBytesPerIter) / 1e9;
        table.addRow(
            {entry.name,
             stats::Table::cell(toMiB(all.offloadedBytesPerIter), 0),
             stats::Table::cell(toMiB(conv.offloadedBytesPerIter), 0),
             stats::Table::cell(toMiB(all.hostPeakBytes), 0)});
    }
    table.print();

    stats::Comparison cmp("Figure 12");
    cmp.addNumeric("VGG-16 (256) vDNN_all offload traffic (GB)", 16.0,
                   vgg256_all_gb, 0.2);
    cmp.addBool("vDNN_conv offloads no more than vDNN_all", true,
                conv_less);
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("fig12/offload_traffic_six_networks", [] {
        for (const auto &entry : net::conventionalSuite()) {
            auto network = entry.build();
            benchmark::DoNotOptimize(
                runPlanner(*network, offloadAllPlanner(core::AlgoPreference::MemoryOptimal))
                    .offloadedBytesPerIter);
        }
    });
    return benchMain(argc, argv, report);
}
