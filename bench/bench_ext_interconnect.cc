/**
 * @file
 * Extension: interconnect sensitivity (Section III-A mentions NVLINK
 * as an alternative to PCIe for the offload path, but the paper only
 * evaluates PCIe gen3 x16).
 *
 * Sweeps the host-device link bandwidth and reports where vDNN_all's
 * transfer stalls vanish — the point at which even the most aggressive
 * offload policy becomes free. Expected shape: stalls shrink
 * monotonically with bandwidth; an NVLINK-class link (~68 GB/s
 * effective) hides essentially all offload traffic even for the
 * stall-heavy networks (GoogLeNet, whose many short layers cannot hide
 * PCIe-rate transfers).
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "interconnect/pcie_link.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

core::SessionResult
runWithLink(const net::Network &network, double dma_bytes_per_sec)
{
    core::SessionConfig cfg;
    cfg.planner =
        offloadAllPlanner(core::AlgoPreference::PerformanceOptimal);
    cfg.gpu.pcie.dmaBandwidth = dma_bytes_per_sec;
    cfg.gpu.pcie.rawBandwidth =
        std::max(cfg.gpu.pcie.rawBandwidth, dma_bytes_per_sec);
    return core::runSession(network, cfg);
}

void
report()
{
    struct Link
    {
        const char *name;
        double dma;
    };
    const Link links[] = {
        {"PCIe gen2 x16 (6.2 GB/s)", 6.2e9},
        {"PCIe gen3 x16 (12.8 GB/s, paper)", 12.8e9},
        {"PCIe gen4 x16 (25 GB/s)", 25.0e9},
        {"NVLINK gen1 (68 GB/s)", ic::nvlinkGen1().dmaBandwidth},
    };

    stats::Table table("Extension: vDNN_all (p) stall time by "
                       "host-device interconnect");
    table.setColumns({"network", "link", "fe latency (ms)",
                      "stall (ms)", "stall share"});

    double gl_pcie_stall = 0.0, gl_nvlink_stall = 0.0;
    bool monotonic = true;
    for (const char *name : {"GoogLeNet (128)", "VGG-16 (64)"}) {
        auto network = std::string(name) == "GoogLeNet (128)"
                           ? net::buildGoogLeNet(128)
                           : net::buildVgg16(64);
        double prev_stall = 1e18;
        for (const Link &link : links) {
            auto r = runWithLink(*network, link.dma);
            if (!r.trainable) {
                table.addRow({name, link.name, "FAILS", "-", "-"});
                continue;
            }
            double stall = toMs(r.transferStallTime);
            monotonic = monotonic && stall <= prev_stall + 1e-9;
            prev_stall = stall;
            if (std::string(name) == "GoogLeNet (128)") {
                if (std::string(link.name).find("paper") !=
                    std::string::npos) {
                    gl_pcie_stall = stall;
                }
                if (std::string(link.name).find("NVLINK") !=
                    std::string::npos) {
                    gl_nvlink_stall = stall;
                }
            }
            table.addRow(
                {name, link.name,
                 stats::Table::cell(toMs(r.featureExtractionTime), 1),
                 stats::Table::cell(stall, 1),
                 stats::Table::cellPercent(
                     double(r.transferStallTime) /
                     double(r.featureExtractionTime))});
        }
    }
    table.print();

    stats::Comparison cmp("Interconnect extension");
    cmp.addBool("stall time decreases monotonically with bandwidth",
                true, monotonic);
    cmp.addBool("NVLINK removes >80% of GoogLeNet's PCIe stalls", true,
                gl_nvlink_stall < 0.2 * gl_pcie_stall);
    cmp.addInfo("GoogLeNet stall, PCIe gen3 -> NVLINK", "(shrinks)",
                strFormat("%.0f ms -> %.0f ms", gl_pcie_stall,
                          gl_nvlink_stall));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("ext/nvlink_googlenet", [] {
        auto network = net::buildGoogLeNet(128);
        benchmark::DoNotOptimize(
            runWithLink(*network, ic::nvlinkGen1().dmaBandwidth)
                .iterationTime);
    });
    return benchMain(argc, argv, report);
}
