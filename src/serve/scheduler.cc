#include "serve/scheduler.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>

namespace vdnn::serve
{

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::FifoExclusive:
        return "fifo-exclusive";
      case SchedPolicy::RoundRobin:
        return "round-robin";
      case SchedPolicy::ShortestRemaining:
        return "shortest-remaining";
      case SchedPolicy::PackedOverlap:
        return "packed-overlap";
      case SchedPolicy::PreemptivePriority:
        return "preemptive-priority";
    }
    return "?";
}

SchedulerConfig::SchedulerConfig() : gpu(gpu::titanXMaxwell()) {}

Scheduler::Scheduler(SchedulerConfig config)
    : cfg(std::move(config)), rt(cfg.gpu, cfg.contention),
      pool(cfg.gpu.dramCapacity, cfg.gpu.name + " shared pool"),
      host(cfg.gpu.hostCapacity),
      poolTrack([this] { return rt.now(); }, cfg.keepTimeline),
      cudnn(cfg.gpu), admission(pool.capacity(), cfg.admissionSafety),
      inflight(cfg.keepTimeline)
{
    VDNN_ASSERT(cfg.maxJobsInFlight >= 0,
                "maxJobsInFlight must be >= 0");
    pool.setTracker(&poolTrack);
    inflight.record(rt.now(), 0.0);
    // Packed overlap keeps several tenants' iterations in flight at
    // once, so their transient working sets must be reserved together.
    admission.setOverlapTransients(cfg.policy ==
                                   SchedPolicy::PackedOverlap);
}

JobId
Scheduler::submit(JobSpec spec)
{
    VDNN_ASSERT(!ran, "submit() after run()");
    VDNN_ASSERT(spec.network && spec.network->finalized(),
                "job needs a finalized network");
    VDNN_ASSERT(spec.iterations >= 1,
                "job needs at least one iteration");
    VDNN_ASSERT(spec.arrival >= 0, "negative arrival time");
    auto job = std::make_unique<Job>();
    job->id = JobId(jobs.size());
    job->spec = std::move(spec);
    if (job->spec.name.empty())
        job->spec.name = strFormat("job%d", job->id);
    // Default planner, resolved once here so admission and session
    // setup agree on the plan source.
    if (!job->spec.planner) {
        job->spec.planner = std::make_shared<core::OffloadAllPlanner>(
            core::AlgoPreference::MemoryOptimal);
    }
    jobs.push_back(std::move(job));
    return jobs.back()->id;
}

void
Scheduler::collectArrivals()
{
    std::vector<JobId> arrived;
    for (const auto &job : jobs) {
        if (job->record.state == JobState::Pending &&
            job->spec.arrival <= rt.now()) {
            arrived.push_back(job->id);
        }
    }
    std::sort(arrived.begin(), arrived.end(),
              [this](JobId a, JobId b) {
                  const Job &ja = *jobs[std::size_t(a)];
                  const Job &jb = *jobs[std::size_t(b)];
                  if (ja.spec.arrival != jb.spec.arrival)
                      return ja.spec.arrival < jb.spec.arrival;
                  return a < b;
              });
    for (JobId id : arrived) {
        jobs[std::size_t(id)]->record.state = JobState::Queued;
        queue.push(id);
    }
}

const FootprintEstimate &
Scheduler::estimateFor(const Job &job)
{
    auto it = estimates.find(job.id);
    if (it == estimates.end()) {
        // Budget for the planner's most conservative plan, derived
        // against the whole device (the reservation must hold however
        // crowded the pool is when the job finally runs).
        it = estimates
                 .emplace(job.id,
                          estimatePlannerFootprint(
                              *job.spec.network, cudnn,
                              *job.spec.planner,
                              core::PlannerContext::exclusive(
                                  cfg.gpu, cfg.contention)))
                 .first;
    }
    return it->second;
}

bool
Scheduler::tryAdmit(Job &job, const FootprintEstimate &est)
{
    core::SessionConfig scfg;
    scfg.planner = job.spec.planner;
    scfg.gpu = cfg.gpu;
    scfg.contention = cfg.contention;
    scfg.exec = job.spec.exec;
    core::SharedGpu shared;
    shared.runtime = &rt;
    shared.pool = &pool;
    shared.host = &host;
    shared.clientId = job.id;
    job.session = std::make_unique<core::Session>(*job.spec.network,
                                                  scfg, shared);
    if (!job.session->setup()) {
        // The estimate said fit; the allocator disagreed
        // (fragmentation or estimate error).
        job.record.failReason = job.session->failReason();
        job.session.reset();
        return false;
    }
    Bytes before = admission.reservedBytes();
    admission.admit(job.id, est, job.reserveScale);
    job.record.state = JobState::Running;
    if (job.record.admitTime == kTimeNone)
        job.record.admitTime = rt.now();
    job.record.persistentBytes =
        std::max(job.record.persistentBytes,
                 job.session->persistentBytes());
    running.push_back(job.id);
    recordInflight();
    logLifecycle(job.id, "admit", before);
    return true;
}

void
Scheduler::admitFromQueue()
{
    // Priority scheduling admits the most important arrivals first;
    // the queue stays FIFO within a priority level.
    if (cfg.policy == SchedPolicy::PreemptivePriority) {
        queue.stableSort([this](JobId a, JobId b) {
            return jobs[std::size_t(a)]->spec.priority >
                   jobs[std::size_t(b)]->spec.priority;
        });
    }
    std::size_t i = 0;
    while (i < queue.size()) {
        Job &job = *jobs[std::size_t(queue.at(i))];
        const FootprintEstimate &est = estimateFor(job);
        // Feasibility includes any OOM-backoff inflation: a job whose
        // grown reservation no longer fits even an empty device must
        // go terminal here, or it would sit in the queue forever.
        if (!admission.feasible(est, job.reserveScale)) {
            queue.take(i);
            job.record.state = JobState::Rejected;
            job.record.finishTime = rt.now();
            job.record.failReason = strFormat(
                "reservation %s exceeds device capacity %s",
                formatBytes(
                    admission.reservationFor(est, job.reserveScale))
                    .c_str(),
                formatBytes(admission.capacity()).c_str());
            continue;
        }
        bool wants_room =
            (cfg.maxJobsInFlight > 0 &&
             int(running.size()) >= cfg.maxJobsInFlight) ||
            !admission.canAdmit(est, job.reserveScale);
        if (wants_room && cfg.policy == SchedPolicy::PreemptivePriority)
            wants_room = !makeRoomFor(job, est);
        if (cfg.maxJobsInFlight > 0 &&
            int(running.size()) >= cfg.maxJobsInFlight) {
            break;
        }
        if (cfg.policy == SchedPolicy::FifoExclusive &&
            !running.empty()) {
            break;
        }
        if (wants_room) {
            if (cfg.policy != SchedPolicy::FifoExclusive) {
                // Backfill: a smaller job further back may still fit.
                ++i;
                continue;
            }
            break; // strict arrival order for FIFO
        }
        if (tryAdmit(job, est)) {
            queue.take(i);
            continue;
        }
        // Setup OOM despite a fitting reservation: grow the
        // reservation and retry later, give up after a few attempts.
        ++job.record.oomRequeues;
        job.reserveScale *= cfg.oomBackoffScale;
        if (job.record.oomRequeues > cfg.maxOomRequeues) {
            std::string why = job.record.failReason;
            queue.take(i);
            job.record.state = JobState::Failed;
            job.record.finishTime = rt.now();
            job.record.failReason =
                "admission gave up after repeated setup OOM: " + why;
            continue;
        }
        ++i;
    }
}

void
Scheduler::removeFromRunning(JobId id)
{
    auto it = std::find(running.begin(), running.end(), id);
    VDNN_ASSERT(it != running.end(), "job %d not running", id);
    std::size_t idx = std::size_t(it - running.begin());
    running.erase(it);
    if (idx < rrCursor)
        --rrCursor;
    recordInflight();
}

void
Scheduler::finishJob(Job &job, JobState final_state,
                     const std::string &why)
{
    VDNN_ASSERT(jobStateLive(job.record.state),
                "finishing job %d in state %s", job.id,
                jobStateName(job.record.state));
    Bytes before = admission.reservedBytes();
    job.record.peakPoolBytes = pool.peakByClient(job.id);
    job.record.offloadedBytes = job.session->memory().offloadedBytes();
    job.session->teardown();
    job.session.reset();
    admission.release(job.id);

    if (job.record.state == JobState::Evicted) {
        auto ev = std::find(evictedJobs.begin(), evictedJobs.end(),
                            job.id);
        VDNN_ASSERT(ev != evictedJobs.end(), "job %d not evicted",
                    job.id);
        evictedJobs.erase(ev);
    } else {
        removeFromRunning(job.id);
    }

    job.record.state = final_state;
    job.record.finishTime = rt.now();
    job.record.failReason = why;
    logLifecycle(job.id,
                 final_state == JobState::Finished ? "finish"
                 : final_state == JobState::Queued ? "requeue"
                                                   : "fail",
                 before);

    // Freed capacity: evicted tenants may fit again, and survivors
    // whose planner supports it may grow their plans back.
    if (cfg.policy == SchedPolicy::PreemptivePriority) {
        resumePending = true;
        for (JobId id : running)
            jobs[std::size_t(id)]->replanRequested = true;
    }
}

void
Scheduler::evictForRequeue(Job &job)
{
    ++job.record.oomRequeues;
    job.reserveScale *= cfg.oomBackoffScale;
    std::string why = job.session->failReason();
    if (job.record.oomRequeues > cfg.maxOomRequeues) {
        finishJob(job, JobState::Failed,
                  "gave up after repeated iteration OOM: " + why);
        return;
    }
    finishJob(job, JobState::Queued, why);
    // Not terminal: the finish timestamp belongs to real completion.
    job.record.finishTime = kTimeNone;
    // Head of the queue: the job keeps its arrival-order priority.
    queue.pushFront(job.id);
}

Job *
Scheduler::pickNext()
{
    VDNN_ASSERT(!running.empty(), "pickNext() with nothing running");
    if (cfg.policy == SchedPolicy::FifoExclusive)
        return jobs[std::size_t(running.front())].get();
    if (cfg.policy == SchedPolicy::ShortestRemaining) {
        Job *best = nullptr;
        for (JobId id : running) {
            Job *j = jobs[std::size_t(id)].get();
            int rem = j->spec.iterations - j->record.itersDone;
            if (!best ||
                rem < best->spec.iterations - best->record.itersDone) {
                best = j;
            }
        }
        return best;
    }
    if (cfg.policy == SchedPolicy::PreemptivePriority) {
        // Strict priority; round-robin within the top level.
        int top = jobs[std::size_t(running.front())]->spec.priority;
        for (JobId id : running)
            top = std::max(top, jobs[std::size_t(id)]->spec.priority);
        for (std::size_t k = 0; k < running.size(); ++k) {
            std::size_t idx = (rrCursor + k) % running.size();
            Job *j = jobs[std::size_t(running[idx])].get();
            if (j->spec.priority == top) {
                rrCursor = idx + 1;
                return j;
            }
        }
    }
    if (rrCursor >= running.size())
        rrCursor = 0;
    return jobs[std::size_t(running[rrCursor++])].get();
}

// --- lifecycle state machine (PreemptivePriority) ----------------------------

Job *
Scheduler::pickVictim(int below_priority)
{
    // Lowest priority first; the latest-arrived tenant of that level
    // goes first (LIFO), so incumbents are disturbed least.
    Job *victim = nullptr;
    for (JobId id : running) {
        Job *j = jobs[std::size_t(id)].get();
        if (j->spec.priority >= below_priority)
            continue;
        if (!victim || j->spec.priority < victim->spec.priority ||
            (j->spec.priority == victim->spec.priority &&
             j->spec.arrival > victim->spec.arrival)) {
            victim = j;
        }
    }
    return victim;
}

bool
Scheduler::preempt(Job &victim)
{
    VDNN_ASSERT(victim.record.state == JobState::Running,
                "preempting job %d in state %s", victim.id,
                jobStateName(victim.record.state));
    Bytes before = admission.reservedBytes();
    victim.session->suspend();
    victim.record.state = JobState::Suspended;
    logLifecycle(victim.id, "suspend", before);

    if (!victim.session->evictToHost()) {
        // Pinned host memory cannot stage the state; undo the park.
        victim.session->resume();
        victim.record.state = JobState::Running;
        logLifecycle(victim.id, "resume", before);
        return false;
    }
    admission.evict(victim.id);
    removeFromRunning(victim.id);
    evictedJobs.push_back(victim.id);
    victim.record.state = JobState::Evicted;
    ++victim.record.preemptions;
    logLifecycle(victim.id, "evict", before);
    // Schedule a resume sweep: if the beneficiary then fails
    // admission (setup OOM, host exhaustion partway through
    // makeRoomFor), the freed capacity must not strand the victim
    // until an unrelated job finishes.
    resumePending = true;
    return true;
}

bool
Scheduler::makeRoomFor(Job &job, const FootprintEstimate &est)
{
    auto blocked = [&] {
        return (cfg.maxJobsInFlight > 0 &&
                int(running.size()) >= cfg.maxJobsInFlight) ||
               !admission.canAdmit(est, job.reserveScale);
    };
    while (blocked()) {
        Job *victim = pickVictim(job.spec.priority);
        if (!victim || !preempt(*victim))
            return false; // nobody below this priority (or host full)
    }
    return true;
}

void
Scheduler::resumeEvicted()
{
    // Best priority first, then earliest arrival: the order admission
    // would have picked them in.
    std::vector<JobId> order = evictedJobs;
    std::sort(order.begin(), order.end(), [this](JobId a, JobId b) {
        const Job &ja = *jobs[std::size_t(a)];
        const Job &jb = *jobs[std::size_t(b)];
        if (ja.spec.priority != jb.spec.priority)
            return ja.spec.priority > jb.spec.priority;
        if (ja.spec.arrival != jb.spec.arrival)
            return ja.spec.arrival < jb.spec.arrival;
        return a < b;
    });
    for (JobId id : order) {
        // Readmission honours the in-flight cap exactly like fresh
        // admission does.
        if (cfg.maxJobsInFlight > 0 &&
            int(running.size()) >= cfg.maxJobsInFlight) {
            break;
        }
        Job &job = *jobs[std::size_t(id)];
        if (!admission.canReadmit(id))
            continue;
        Bytes before = admission.reservedBytes();
        // resume() re-plans against the current free share before
        // restoring the staged state; it may fail here (fragmentation,
        // co-tenant bursts above their reservations) — the tenant
        // simply stays evicted until the next capacity event.
        if (!job.session->resume())
            continue;
        admission.readmit(id);
        auto ev = std::find(evictedJobs.begin(), evictedJobs.end(), id);
        VDNN_ASSERT(ev != evictedJobs.end(), "job %d not evicted", id);
        evictedJobs.erase(ev);
        running.push_back(id);
        job.record.state = JobState::Running;
        recordInflight();
        logLifecycle(id, "resume", before);
    }
}

void
Scheduler::logLifecycle(JobId id, const char *what,
                        Bytes reserved_before)
{
    LifecycleEvent ev;
    ev.when = rt.now();
    ev.job = id;
    ev.what = what;
    ev.reservedBefore = reserved_before;
    ev.reservedAfter = admission.reservedBytes();
    lifecycleLog.push_back(ev);
}

void
Scheduler::recordInflight()
{
    inflight.record(rt.now(), double(running.size()));
    peakInflight = std::max(peakInflight, int(running.size()));
}

TimeNs
Scheduler::nextArrivalAfter(TimeNs t) const
{
    TimeNs next = kTimeNone;
    for (const auto &job : jobs) {
        if (job->record.state != JobState::Pending)
            continue;
        if (job->spec.arrival > t &&
            (next == kTimeNone || job->spec.arrival < next)) {
            next = job->spec.arrival;
        }
    }
    return next;
}

bool
Scheduler::allDone() const
{
    for (const auto &job : jobs) {
        if (!job->done())
            return false;
    }
    return true;
}

void
Scheduler::chargeIteration(Job &job, const core::IterationResult &r)
{
    ++job.record.itersDone;
    // Service time is derived solely from the iteration's own
    // [start, end) window, never from scheduler wall time: host
    // advances between iterations — in particular advancing the device
    // clock to the next sparse arrival while a job sits admitted with
    // no iteration in flight — must not be billed to any tenant.
    job.record.serviceTime += r.makespan();
}

void
Scheduler::runInterleaved()
{
    while (!allDone()) {
        collectArrivals();
        admitFromQueue();
        if (resumePending) {
            resumePending = false;
            resumeEvicted();
        }

        if (running.empty()) {
            if (!evictedJobs.empty()) {
                // Preempted tenants and nothing resident: readmit.
                resumeEvicted();
                if (!running.empty())
                    continue;
            }
            TimeNs next = nextArrivalAfter(rt.now());
            if (next == kTimeNone) {
                if (!evictedJobs.empty()) {
                    // Backstop: an evicted tenant that cannot come
                    // back even with the device drained must go
                    // terminal, not hang the scheduler.
                    std::vector<JobId> stuck = evictedJobs;
                    for (JobId id : stuck) {
                        finishJob(*jobs[std::size_t(id)],
                                  JobState::Failed,
                                  "evicted tenant could not be "
                                  "readmitted: " +
                                      jobs[std::size_t(id)]
                                          ->session->failReason());
                    }
                    continue;
                }
                // Nothing running, nothing admissible, nothing still
                // to arrive: every queued job was terminal-handled.
                break;
            }
            rt.advanceTo(next);
            continue;
        }

        Job &job = *pickNext();
        // Grow-back sweep: a co-tenant exited since this tenant last
        // ran; planners that support it re-plan in place against the
        // fresh free share at this iteration boundary.
        if (job.replanRequested) {
            job.replanRequested = false;
            if (cfg.policy == SchedPolicy::PreemptivePriority &&
                !job.session->activeStepper()) {
                Bytes before = admission.reservedBytes();
                if (job.session->replan()) {
                    ++job.record.replans;
                    logLifecycle(job.id, "replan", before);
                }
            }
        }
        if (job.record.firstDispatchTime == kTimeNone)
            job.record.firstDispatchTime = rt.now();
        core::IterationResult r = job.session->runIteration();
        if (r.ok) {
            chargeIteration(job, r);
            if (job.record.itersDone >= job.spec.iterations)
                finishJob(job, JobState::Finished);
        } else {
            // In-flight OOM: overcommit or fragmentation beyond the
            // reservation. Only this job's iteration aborts.
            evictForRequeue(job);
        }
    }
}

void
Scheduler::runPacked()
{
    // Op-granularity packing: every admitted tenant owns a resumable
    // IterationStepper over its compiled IterationProgram. One pass of
    // the loop offers each tenant a single step; a tenant blocked on a
    // stream join (its offload or prefetch still in flight) is skipped
    // rather than allowed to stall the host, so the next tenant's
    // compute op dispatches under the blocked tenant's DMA. Only when
    // *every* admitted tenant is blocked does the host advance the
    // device clock — by exactly one event, so whichever tenant
    // unblocks first resumes first.
    while (!allDone()) {
        collectArrivals();
        admitFromQueue();

        if (running.empty()) {
            TimeNs next = nextArrivalAfter(rt.now());
            if (next == kTimeNone)
                break;
            rt.advanceTo(next);
            continue;
        }

        bool progress = false;
        std::vector<JobId> round = running;
        for (JobId id : round) {
            Job &job = *jobs[std::size_t(id)];
            if (job.record.state != JobState::Running)
                continue; // finished or evicted earlier in this round
            core::IterationStepper *st = job.session->activeStepper();
            if (!st) {
                if (job.record.firstDispatchTime == kTimeNone)
                    job.record.firstDispatchTime = rt.now();
                st = &job.session->beginIteration();
            }
            core::IterationStepper::Status s =
                st->step(/*blocking=*/false);
            if (s == core::IterationStepper::Status::Blocked)
                continue;
            progress = true;
            if (!st->finished())
                continue;
            core::IterationResult r = job.session->completeIteration();
            if (r.ok) {
                chargeIteration(job, r);
                if (job.record.itersDone >= job.spec.iterations)
                    finishJob(job, JobState::Finished);
            } else {
                evictForRequeue(job);
            }
        }

        if (!progress) {
            // Every admitted tenant is blocked on in-flight device
            // work; there must be a pending completion to run.
            bool advanced = rt.stepDevice();
            VDNN_ASSERT(advanced,
                        "all tenants blocked with an empty event queue");
        }
    }
}

ServeReport
Scheduler::run()
{
    VDNN_ASSERT(!ran, "run() called twice");
    ran = true;

    if (cfg.policy == SchedPolicy::PackedOverlap)
        runPacked();
    else
        runInterleaved();

    return buildReport();
}

ServeReport
Scheduler::buildReport()
{
    inflight.finish(rt.now());
    poolTrack.finish();

    ServeReport rep;
    rep.schedulerName = schedPolicyName(cfg.policy);
    rep.gpuName = cfg.gpu.name;
    rep.poolCapacity = pool.capacity();
    rep.peakJobsInFlight = peakInflight;
    rep.avgJobsInFlight = inflight.average();
    rep.poolPeakBytes = poolTrack.peakBytes();
    rep.poolAvgBytes = poolTrack.averageBytes();
    rep.computeBusyTime = rt.computeBusyTime();
    rep.copyBusyTime = rt.copyBusyTime(gpu::CopyDir::DeviceToHost) +
                       rt.copyBusyTime(gpu::CopyDir::HostToDevice);
    rep.lifecycle = lifecycleLog;
    rep.reservedBytesAtEnd = admission.reservedBytes();
    rep.evictedLedgerAtEnd = admission.evictedCount();
    if (cfg.keepTimeline) {
        rep.poolTimeline = poolTrack.signal().timeline();
        rep.inflightTimeline = inflight.timeline();
    }

    TimeNs first_arrival = kTimeNone;
    TimeNs last_finish = 0;
    for (const auto &job : jobs) {
        const JobRecord &rec = job->record;
        JobOutcome out;
        out.id = job->id;
        out.name = job->spec.name;
        out.configName = job->spec.planner->name();
        out.state = rec.state;
        out.priority = job->spec.priority;
        out.arrival = job->spec.arrival;
        out.admitTime = rec.admitTime;
        out.firstDispatchTime = rec.firstDispatchTime;
        out.finishTime = rec.finishTime;
        out.queueingDelay = job->queueingDelay();
        out.completionTime = rec.state == JobState::Finished
                                 ? job->completionTime()
                                 : 0;
        out.serviceTime = rec.serviceTime;
        out.iterations = rec.itersDone;
        out.oomRequeues = rec.oomRequeues;
        out.preemptions = rec.preemptions;
        out.replans = rec.replans;
        out.persistentBytes = rec.persistentBytes;
        out.peakPoolBytes = rec.peakPoolBytes;
        out.offloadedBytes = rec.offloadedBytes;
        out.failReason = rec.failReason;
        rep.jobs.push_back(std::move(out));

        if (first_arrival == kTimeNone ||
            job->spec.arrival < first_arrival) {
            first_arrival = job->spec.arrival;
        }
        if (rec.finishTime != kTimeNone)
            last_finish = std::max(last_finish, rec.finishTime);
    }
    if (first_arrival != kTimeNone && last_finish > first_arrival)
        rep.makespan = last_finish - first_arrival;
    return rep;
}

} // namespace vdnn::serve
