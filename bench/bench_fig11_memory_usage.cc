/**
 * @file
 * Figure 11: average and maximum GPU memory usage for the six
 * conventional DNN configurations under every (policy, algorithm)
 * combination, plus the average-usage savings over baseline.
 * Configurations that cannot be trained are marked "*".
 *
 * Paper anchors: vDNN_all (m) cuts maximum/average usage by 73%/93% on
 * average; vDNN_all (p) by 64%/90%; vDNN_conv (p) by 52%/76%; vDNN_dyn
 * by 49%/69%. The trainability marks: baseline fails VGG-16 (128) with
 * (p) and VGG-16 (256) entirely; the (p) static vDNN policies fail
 * VGG-16 (256).
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "stats/accumulator.hh"

#include <map>

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

struct Cell
{
    bool trainable = false;
    double max_mb = 0.0;
    double avg_mb = 0.0;
};

void
report()
{
    stats::Table table("Figure 11: GPU memory usage (managed pool), "
                       "max / avg MiB; * = cannot train");
    table.setColumns({"network", "config", "max (MiB)", "avg (MiB)",
                      "avg savings vs base"});

    // Per-policy savings accumulators (vs the best trainable baseline).
    std::map<std::string, stats::Accumulator> avg_savings;
    std::map<std::string, stats::Accumulator> max_savings;
    std::map<std::pair<std::string, std::string>, Cell> cells;

    for (const auto &entry : net::conventionalSuite()) {
        auto network = entry.build();

        // Baseline reference: the (p) baseline when it trains, else the
        // (m) baseline, else the oracular baseline (VGG-16 (256)).
        auto base_p = runPlanner(
            *network,
            baselinePlanner(core::AlgoPreference::PerformanceOptimal));
        auto base_m = runPlanner(
            *network,
            baselinePlanner(core::AlgoPreference::MemoryOptimal));
        core::SessionResult base_ref =
            base_p.trainable
                ? base_p
                : (base_m.trainable
                       ? base_m
                       : runPlanner(*network,
                                    baselinePlanner(
                                        core::AlgoPreference::
                                            PerformanceOptimal),
                                    /*oracle=*/true));

        for (const auto &point : figurePlannerGrid()) {
            auto r = runPlanner(*network, point.planner);
            Cell cell;
            cell.trainable = r.trainable;
            if (r.trainable) {
                cell.max_mb = toMiB(r.maxManagedUsage);
                cell.avg_mb = toMiB(r.avgManagedUsage);
            }
            cells[{entry.name, point.label}] = cell;

            std::string savings = "-";
            if (r.trainable && !point.isBaseline) {
                double s = 1.0 - double(r.avgManagedUsage) /
                                     double(base_ref.avgManagedUsage);
                double sm = 1.0 - double(r.maxManagedUsage) /
                                      double(base_ref.maxManagedUsage);
                avg_savings[point.label].add(s);
                max_savings[point.label].add(sm);
                savings = stats::Table::cellPercent(s);
            }
            table.addRow({entry.name,
                          std::string(point.label) +
                              (r.trainable ? "" : " *"),
                          r.trainable
                              ? stats::Table::cell(cell.max_mb, 0)
                              : "*",
                          r.trainable
                              ? stats::Table::cell(cell.avg_mb, 0)
                              : "*",
                          savings});
        }
    }
    table.print();

    auto trainable = [&](const char *network, const char *config) {
        return cells[{network, config}].trainable;
    };

    stats::Comparison cmp("Figure 11");
    cmp.addNumeric("vDNN_all (m): average-usage savings (%)", 93.0,
                   100.0 * avg_savings["all (m)"].mean(), 0.2);
    cmp.addNumeric("vDNN_all (m): max-usage savings (%)", 73.0,
                   100.0 * max_savings["all (m)"].mean(), 0.35);
    cmp.addNumeric("vDNN_all (p): average-usage savings (%)", 90.0,
                   100.0 * avg_savings["all (p)"].mean(), 0.25);
    cmp.addNumeric("vDNN_conv (p): average-usage savings (%)", 76.0,
                   100.0 * avg_savings["conv (p)"].mean(), 0.35);
    cmp.addNumeric("vDNN_dyn: average-usage savings (%)", 69.0,
                   100.0 * avg_savings["dyn"].mean(), 0.45);
    cmp.addBool("baseline fails VGG-16 (128) with (p)", true,
                !trainable("VGG-16 (128)", "base (p)"));
    cmp.addBool("baseline trains VGG-16 (128) with (m)", true,
                trainable("VGG-16 (128)", "base (m)"));
    cmp.addBool("baseline fails VGG-16 (256) entirely", true,
                !trainable("VGG-16 (256)", "base (m)") &&
                    !trainable("VGG-16 (256)", "base (p)"));
    cmp.addBool("vDNN_all (m) trains VGG-16 (256)", true,
                trainable("VGG-16 (256)", "all (m)"));
    cmp.addBool("vDNN_conv (m) trains VGG-16 (256)", true,
                trainable("VGG-16 (256)", "conv (m)"));
    cmp.addBool("static (p) policies fail VGG-16 (256)", true,
                !trainable("VGG-16 (256)", "all (p)") &&
                    !trainable("VGG-16 (256)", "conv (p)"));
    cmp.addBool("vDNN_dyn trains every configuration", true,
                trainable("AlexNet (128)", "dyn") &&
                    trainable("OverFeat (128)", "dyn") &&
                    trainable("GoogLeNet (128)", "dyn") &&
                    trainable("VGG-16 (64)", "dyn") &&
                    trainable("VGG-16 (128)", "dyn") &&
                    trainable("VGG-16 (256)", "dyn"));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("fig11/vdnn_all_m_vgg16_256", [] {
        auto network = net::buildVgg16(256);
        benchmark::DoNotOptimize(
            runPlanner(*network,
                       offloadAllPlanner(
                           core::AlgoPreference::MemoryOptimal))
                .avgManagedUsage);
    });
    registerSim("fig11/full_grid_alexnet", [] {
        auto network = net::buildAlexNet(128);
        for (const auto &point : figurePlannerGrid()) {
            benchmark::DoNotOptimize(
                runPlanner(*network, point.planner).trainable);
        }
    });
    return benchMain(argc, argv, report);
}
