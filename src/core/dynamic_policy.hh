/**
 * @file
 * DynamicPlanner — vDNN_dyn, the profiling memory planner
 * (Section III-C).
 *
 * Before real training starts, vDNN_dyn runs a short sequence of
 * profiling passes (simulated trial iterations — the paper runs real
 * ones; their cost is negligible against days of training):
 *
 *  1. vDNN_all with memory-optimal algorithms: the least-memory
 *     configuration. If this fails, the network is untrainable.
 *  2. No offloading with the fastest algorithms: adopted outright if
 *     it fits — highest performance, no transfer overhead.
 *  3. vDNN_conv then vDNN_all with the fastest algorithms.
 *  4. A greedy pass per offload set (conv, then all): start from the
 *     fastest algorithm everywhere; whenever a trial overflows on a
 *     layer's workspace, locally downgrade that layer to the next
 *     fastest algorithm with a smaller workspace and retry, bottoming
 *     out at the zero-workspace IMPLICIT_GEMM.
 *  5. Fall back to the step-1 configuration.
 *
 * All trial devices are sized to the PlannerContext's *available*
 * capacity — the whole device in exclusive mode, the tenant's current
 * free share of the communal pool in multi-tenant serving — so a
 * shared-pool tenant derives a plan for what it can actually get.
 */

#ifndef VDNN_CORE_DYNAMIC_POLICY_HH
#define VDNN_CORE_DYNAMIC_POLICY_HH

#include "core/executor.hh"
#include "core/planner.hh"

#include <string>
#include <vector>

namespace vdnn::core
{

class DynamicPlanner : public Planner
{
  public:
    /** @param exec executor knobs used in the trial iterations */
    explicit DynamicPlanner(ExecutorConfig exec = {});

    std::string name() const override { return "vDNN_dyn"; }

    /**
     * Run the profiling passes and derive the execution plan. The
     * returned plan carries the full trial history; on an untrainable
     * network feasible is false and failReason says why.
     */
    MemoryPlan plan(const net::Network &net,
                    const PlannerContext &ctx) override;

    /**
     * Admission floor: the least-memory configuration vDNN_dyn falls
     * back to under pressure (vDNN_all, memory-optimal algorithms),
     * produced without running any trials.
     */
    MemoryPlan admissionPlan(const net::Network &net,
                             const PlannerContext &ctx) override;

    /**
     * vDNN_dyn's trial passes consult the context's available
     * capacity, so a running tenant can be re-planned in place at an
     * iteration boundary — shrinking toward the vDNN_all floor when
     * the pool tightens, growing back toward the no-offload ideal
     * when co-tenants exit.
     */
    ReplanHint replanHint() const override { return ReplanHint::InPlace; }

    /** Maximum trial iterations in the greedy downgrade loop. */
    static constexpr int kMaxGreedyTrials = 256;

  private:
    ExecutorConfig execCfg;
};

} // namespace vdnn::core

#endif // VDNN_CORE_DYNAMIC_POLICY_HH
