/**
 * @file
 * Unit tests for the dnn substrate: tensor shapes, layer descriptors,
 * shape inference, convolution algorithm models and the analytic
 * performance model.
 */

#include "dnn/conv_algo.hh"
#include "dnn/cudnn_sim.hh"
#include "dnn/layer.hh"
#include "dnn/perf_model.hh"
#include "dnn/tensor.hh"

#include "common/units.hh"
#include "gpu/gpu_spec.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::dnn;

// --- TensorShape --------------------------------------------------------------

TEST(TensorShape, ElementAndByteCounts)
{
    TensorShape s{256, 64, 224, 224};
    EXPECT_EQ(s.elements(), 256LL * 64 * 224 * 224);
    EXPECT_EQ(s.bytes(), s.elements() * 4);
    EXPECT_EQ(s.elementsPerImage(), 64LL * 224 * 224);
}

TEST(TensorShape, LargeShapesDoNotOverflow)
{
    // VGG-16 (256) first conv output is ~3.2 GB: must exceed 2^31.
    TensorShape s{256, 64, 224, 224};
    EXPECT_GT(s.bytes(), Bytes(3) * 1000 * 1000 * 1000);
}

TEST(TensorShape, StrAndValidity)
{
    TensorShape s{1, 2, 3, 4};
    EXPECT_EQ(s.str(), "1x2x3x4");
    EXPECT_TRUE(s.valid());
    EXPECT_FALSE((TensorShape{0, 2, 3, 4}).valid());
}

// --- shape inference -------------------------------------------------------------

TEST(ShapeInference, VggStyleConvPreservesSpatialDims)
{
    TensorShape in{64, 3, 224, 224};
    ConvParams p;
    p.outChannels = 64;
    p.kernelH = p.kernelW = 3;
    p.padH = p.padW = 1;
    TensorShape out = convOutShape(in, p);
    EXPECT_EQ(out, (TensorShape{64, 64, 224, 224}));
}

TEST(ShapeInference, AlexNetFirstConv)
{
    // 224x224, 11x11 kernel, stride 4, pad 2 -> 55x55.
    TensorShape in{128, 3, 224, 224};
    ConvParams p;
    p.outChannels = 64;
    p.kernelH = p.kernelW = 11;
    p.strideH = p.strideW = 4;
    p.padH = p.padW = 2;
    TensorShape out = convOutShape(in, p);
    EXPECT_EQ(out.h, 55);
    EXPECT_EQ(out.w, 55);
    EXPECT_EQ(out.c, 64);
}

TEST(ShapeInference, PoolHalvesVggMaps)
{
    TensorShape in{64, 64, 224, 224};
    PoolParams p; // 2x2 stride 2
    TensorShape out = poolOutShape(in, p);
    EXPECT_EQ(out, (TensorShape{64, 64, 112, 112}));
}

TEST(ShapeInference, CeilModePoolingMatchesCaffe)
{
    // AlexNet pool1: 55 -> 27 with window 3 stride 2 (ceil mode).
    TensorShape in{1, 64, 55, 55};
    PoolParams p;
    p.windowH = p.windowW = 3;
    p.strideH = p.strideW = 2;
    EXPECT_EQ(poolOutShape(in, p).h, 27);
    in.h = in.w = 13;
    EXPECT_EQ(poolOutShape(in, p).h, 6);
}

TEST(ShapeInference, FcFlattensInput)
{
    TensorShape in{64, 512, 7, 7};
    TensorShape out = fcOutShape(in, FcParams{4096});
    EXPECT_EQ(out, (TensorShape{64, 4096, 1, 1}));
}

// --- layer descriptors ---------------------------------------------------------------

TEST(LayerSpec, ConvParamCount)
{
    TensorShape in{1, 3, 224, 224};
    ConvParams p;
    p.outChannels = 64;
    p.kernelH = p.kernelW = 3;
    p.padH = p.padW = 1;
    LayerSpec l = makeConv("c", in, p);
    EXPECT_EQ(l.paramCount(), 64 * 3 * 3 * 3 + 64); // weights + bias
    EXPECT_EQ(l.weightBytes(), l.paramCount() * 4);
    EXPECT_TRUE(l.hasWeights());
}

TEST(LayerSpec, Vgg16FcWeightSizes)
{
    // fc6 of VGG: 25088 -> 4096 = 102.8M parameters.
    TensorShape in{64, 512, 7, 7};
    LayerSpec l = makeFc("fc6", in, FcParams{4096});
    EXPECT_EQ(l.paramCount(), 25088LL * 4096 + 4096);
}

TEST(LayerSpec, InPlaceLayers)
{
    TensorShape in{8, 16, 32, 32};
    EXPECT_TRUE(makeActivation("r", in).inPlace());
    EXPECT_TRUE(makeDropout("d", in).inPlace());
    ConvParams p;
    p.outChannels = 8;
    EXPECT_FALSE(makeConv("c", in, p).inPlace());
    EXPECT_FALSE(makePool("p", in, PoolParams{}).inPlace());
}

TEST(LayerSpec, BackwardNeedsMatchCudnnSignatures)
{
    TensorShape in{8, 16, 32, 32};
    ConvParams cp;
    cp.outChannels = 8;
    cp.padH = cp.padW = 1;
    // CONV backward reads X (for dW) but not Y.
    LayerSpec conv = makeConv("c", in, cp);
    EXPECT_TRUE(conv.backwardNeedsX());
    EXPECT_FALSE(conv.backwardNeedsY());
    // In-place ACTV backward reads only Y.
    LayerSpec actv = makeActivation("r", in);
    EXPECT_FALSE(actv.backwardNeedsX());
    EXPECT_TRUE(actv.backwardNeedsY());
    // POOL backward reads x, y, dy (cuDNN signature).
    LayerSpec pool = makePool("p", in, PoolParams{});
    EXPECT_TRUE(pool.backwardNeedsX());
    EXPECT_TRUE(pool.backwardNeedsY());
    // FC backward reads X for the weight gradient.
    LayerSpec fc = makeFc("f", in, FcParams{10});
    EXPECT_TRUE(fc.backwardNeedsX());
    EXPECT_FALSE(fc.backwardNeedsY());
}

TEST(LayerSpec, ConcatSumsChannels)
{
    std::vector<TensorShape> branches = {{8, 64, 28, 28},
                                         {8, 128, 28, 28},
                                         {8, 32, 28, 28},
                                         {8, 32, 28, 28}};
    LayerSpec l = makeConcat("concat", branches);
    EXPECT_EQ(l.out, (TensorShape{8, 256, 28, 28}));
}

TEST(LayerSpecDeath, ConcatRejectsMismatchedShapes)
{
    std::vector<TensorShape> branches = {{8, 64, 28, 28},
                                         {8, 64, 14, 14}};
    EXPECT_DEATH(makeConcat("bad", branches), "mismatch");
}

TEST(LayerSpec, FeatureExtractionVsClassifierKinds)
{
    TensorShape in{8, 16, 32, 32};
    ConvParams cp;
    cp.outChannels = 8;
    cp.padH = cp.padW = 1;
    EXPECT_TRUE(makeConv("c", in, cp).isFeatureExtraction());
    EXPECT_TRUE(makePool("p", in, PoolParams{}).isFeatureExtraction());
    EXPECT_FALSE(makeFc("f", in, FcParams{10}).isFeatureExtraction());
    EXPECT_FALSE(makeSoftmaxLoss("l", in).isFeatureExtraction());
}

// --- convolution algorithms ---------------------------------------------------------

namespace
{

LayerSpec
vggConv(std::int64_t batch = 64, std::int64_t c = 64,
        std::int64_t k = 64, std::int64_t hw = 224)
{
    ConvParams p;
    p.outChannels = k;
    p.kernelH = p.kernelW = 3;
    p.padH = p.padW = 1;
    return makeConv("conv", TensorShape{batch, c, hw, hw}, p);
}

LayerSpec
stridedConv()
{
    ConvParams p;
    p.outChannels = 64;
    p.kernelH = p.kernelW = 11;
    p.strideH = p.strideW = 4;
    p.padH = p.padW = 2;
    return makeConv("conv1", TensorShape{128, 3, 224, 224}, p);
}

} // namespace

TEST(ConvAlgo, ImplicitGemmNeedsNoWorkspace)
{
    EXPECT_EQ(convWorkspaceBytes(ConvAlgo::ImplicitGemm, vggConv()), 0);
    EXPECT_EQ(convWorkspaceBytes(ConvAlgo::Direct, vggConv()), 0);
}

TEST(ConvAlgo, TransformAlgosNeedLargeWorkspace)
{
    LayerSpec l = vggConv();
    EXPECT_GT(convWorkspaceBytes(ConvAlgo::Winograd, l), 100 * kMiB);
    EXPECT_GT(convWorkspaceBytes(ConvAlgo::Fft, l), 100 * kMiB);
}

TEST(ConvAlgo, WinogradRequires3x3UnitStride)
{
    EXPECT_TRUE(convAlgoApplicable(ConvAlgo::Winograd, vggConv()));
    EXPECT_FALSE(convAlgoApplicable(ConvAlgo::Winograd, stridedConv()));
}

TEST(ConvAlgo, FftFamilyRequiresUnitStride)
{
    EXPECT_TRUE(convAlgoApplicable(ConvAlgo::Fft, vggConv()));
    EXPECT_TRUE(convAlgoApplicable(ConvAlgo::FftTiling, vggConv()));
    EXPECT_FALSE(convAlgoApplicable(ConvAlgo::Fft, stridedConv()));
    EXPECT_FALSE(convAlgoApplicable(ConvAlgo::FftTiling, stridedConv()));
}

TEST(ConvAlgo, GemmFamilyAlwaysApplicable)
{
    for (LayerSpec l : {vggConv(), stridedConv()}) {
        EXPECT_TRUE(convAlgoApplicable(ConvAlgo::ImplicitGemm, l));
        EXPECT_TRUE(convAlgoApplicable(ConvAlgo::ImplicitPrecompGemm, l));
        EXPECT_TRUE(convAlgoApplicable(ConvAlgo::Gemm, l));
    }
}

TEST(ConvAlgo, TransformAlgosFasterThanImplicitGemmOnVggShapes)
{
    LayerSpec l = vggConv();
    EXPECT_GT(convAlgoEfficiency(ConvAlgo::Winograd, l),
              2.0 * convAlgoEfficiency(ConvAlgo::ImplicitGemm, l));
}

TEST(ConvAlgo, FewInputChannelsDerateEfficiency)
{
    LayerSpec wide = vggConv(64, 64, 64);
    LayerSpec narrow = vggConv(64, 3, 64);
    EXPECT_GT(convAlgoEfficiency(ConvAlgo::Gemm, wide),
              convAlgoEfficiency(ConvAlgo::Gemm, narrow));
}

TEST(ConvAlgo, WorkspaceScalesWithBatch)
{
    Bytes ws64 = convWorkspaceBytes(ConvAlgo::Winograd, vggConv(64));
    Bytes ws256 = convWorkspaceBytes(ConvAlgo::Winograd, vggConv(256));
    EXPECT_EQ(ws256, 4 * ws64);
}

TEST(ConvAlgo, NamesAreUnique)
{
    std::set<std::string> names;
    for (ConvAlgo a : allConvAlgos())
        names.insert(convAlgoName(a));
    EXPECT_EQ(names.size(), allConvAlgos().size());
}

// --- performance model ------------------------------------------------------------------

class PerfModelTest : public ::testing::Test
{
  protected:
    PerfModel perf{gpu::titanXMaxwell()};
};

TEST_F(PerfModelTest, ConvFlopsFormula)
{
    LayerSpec l = vggConv(1, 3, 64, 224);
    // 2 * N*K*C*R*S*outH*outW.
    EXPECT_DOUBLE_EQ(PerfModel::convFlops(l),
                     2.0 * 1 * 64 * 3 * 9 * 224 * 224);
}

TEST_F(PerfModelTest, FasterAlgorithmGivesShorterTime)
{
    LayerSpec l = vggConv();
    EXPECT_LT(perf.convForward(l, ConvAlgo::Winograd).time,
              perf.convForward(l, ConvAlgo::ImplicitGemm).time);
}

TEST_F(PerfModelTest, TimeScalesWithBatch)
{
    TimeNs t64 = perf.convForward(vggConv(64), ConvAlgo::Winograd).time;
    TimeNs t256 = perf.convForward(vggConv(256), ConvAlgo::Winograd).time;
    EXPECT_NEAR(double(t256), 4.0 * double(t64), 0.01 * double(t256));
}

TEST_F(PerfModelTest, BackwardSlowerThanForward)
{
    LayerSpec l = vggConv();
    TimeNs fwd = perf.convForward(l, ConvAlgo::Winograd).time;
    TimeNs bwd = perf.convBackwardData(l, ConvAlgo::Winograd).time +
                 perf.convBackwardFilter(l, ConvAlgo::Winograd).time;
    EXPECT_GT(bwd, fwd); // two kernels, each ~forward cost
    EXPECT_LT(bwd, 3 * fwd);
}

TEST_F(PerfModelTest, ActivationIsBandwidthBound)
{
    LayerSpec l = makeActivation("r", TensorShape{64, 64, 224, 224});
    dnn::OpCost c = perf.forward(l);
    // Streaming 2x the buffer at ~70% of 336 GB/s.
    double expected_s =
        double(2 * l.in.bytes()) / (0.70 * 336.0e9);
    EXPECT_NEAR(toSeconds(c.time), expected_s, 0.05 * expected_s);
}

TEST_F(PerfModelTest, MinimumKernelLatency)
{
    // Tiny layers still pay a launch latency (1 us floor).
    LayerSpec l = makeActivation("r", TensorShape{1, 1, 2, 2});
    EXPECT_GE(perf.forward(l).time, 1000);
}

TEST_F(PerfModelTest, FcComputeMatchesGemmFlops)
{
    LayerSpec l = makeFc("fc", TensorShape{128, 4096, 1, 1},
                         FcParams{4096});
    dnn::OpCost c = perf.forward(l);
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * 128 * 4096 * 4096);
    EXPECT_GT(c.time, 0);
}

TEST_F(PerfModelTest, VggIterationLatencyCalibration)
{
    // The model is calibrated so VGG-16 (64) fwd+bwd lands near the
    // published ~1.1-1.3 s Titan X / cuDNN-4 envelope that anchors the
    // paper's Fig. 6 (first-layer reuse distance > 1200 ms).
    auto net_time = [&](std::int64_t c, std::int64_t k,
                        std::int64_t hw, int reps) {
        LayerSpec l = vggConv(64, c, k, hw);
        ConvAlgo algo = ConvAlgo::Winograd;
        TimeNs t = perf.convForward(l, algo).time +
                   perf.convBackwardData(l, algo).time +
                   perf.convBackwardFilter(l, algo).time;
        return double(t) * reps;
    };
    double total_ns = net_time(3, 64, 224, 1) + net_time(64, 64, 224, 1) +
                      net_time(64, 128, 112, 1) +
                      net_time(128, 128, 112, 1) +
                      net_time(128, 256, 56, 1) +
                      net_time(256, 256, 56, 3) +
                      net_time(256, 512, 28, 1) +
                      net_time(512, 512, 28, 3) +
                      net_time(512, 512, 14, 4);
    double ms = total_ns / 1e6;
    EXPECT_GT(ms, 700.0);
    EXPECT_LT(ms, 1800.0);
}

// --- CudnnSim --------------------------------------------------------------------------

class CudnnSimTest : public ::testing::Test
{
  protected:
    dnn::CudnnSim cudnn{gpu::titanXMaxwell()};
};

TEST_F(CudnnSimTest, FindReturnsSortedByTotalTime)
{
    auto perfs = cudnn.findConvAlgorithms(vggConv());
    ASSERT_GE(perfs.size(), 4u);
    for (std::size_t i = 1; i < perfs.size(); ++i)
        EXPECT_LE(perfs[i - 1].totalTime(), perfs[i].totalTime());
}

TEST_F(CudnnSimTest, FindExcludesInapplicableAlgos)
{
    auto perfs = cudnn.findConvAlgorithms(stridedConv());
    for (const auto &p : perfs) {
        EXPECT_NE(p.algo, ConvAlgo::Winograd);
        EXPECT_NE(p.algo, ConvAlgo::Fft);
        EXPECT_NE(p.algo, ConvAlgo::FftTiling);
    }
}

TEST_F(CudnnSimTest, FastestAlgoOnVggIsTransformDomain)
{
    ConvAlgo algo = cudnn.fastestAlgo(vggConv());
    EXPECT_TRUE(algo == ConvAlgo::Winograd || algo == ConvAlgo::Fft ||
                algo == ConvAlgo::FftTiling);
}

TEST_F(CudnnSimTest, WorkspaceLimitForcesDowngrade)
{
    LayerSpec l = vggConv();
    ConvAlgo unlimited = cudnn.fastestAlgoWithin(l, Bytes(1) << 40);
    ConvAlgo zero = cudnn.fastestAlgoWithin(l, 0);
    EXPECT_EQ(unlimited, cudnn.fastestAlgo(l));
    EXPECT_EQ(convWorkspaceBytes(zero, l), 0);
}

TEST_F(CudnnSimTest, MidLimitPicksFastestThatFits)
{
    LayerSpec l = vggConv();
    Bytes limit = 50 * kMiB;
    ConvAlgo algo = cudnn.fastestAlgoWithin(l, limit);
    EXPECT_LE(convWorkspaceBytes(algo, l), limit);
    // Everything strictly faster must exceed the limit.
    auto all = cudnn.findConvAlgorithms(l);
    for (const auto &p : all) {
        if (p.algo == algo)
            break;
        EXPECT_GT(p.workspace, limit);
    }
}

/**
 * Property sweep: for every algorithm and a grid of VGG-ish layer
 * geometries, workspace must be non-negative and forward time must be
 * positive and monotonic in batch size.
 */
class ConvAlgoPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>>
{};

TEST_P(ConvAlgoPropertyTest, WorkspaceAndTimeSane)
{
    auto [algo_idx, batch] = GetParam();
    ConvAlgo algo = allConvAlgos()[std::size_t(algo_idx)];
    PerfModel perf(gpu::titanXMaxwell());
    for (std::int64_t hw : {7, 14, 56, 224}) {
        LayerSpec small = vggConv(batch, 64, 64, hw);
        if (!convAlgoApplicable(algo, small))
            continue;
        EXPECT_GE(convWorkspaceBytes(algo, small), 0);
        TimeNs t1 = perf.convForward(small, algo).time;
        LayerSpec bigger = vggConv(batch * 2, 64, 64, hw);
        TimeNs t2 = perf.convForward(bigger, algo).time;
        EXPECT_GT(t1, 0);
        EXPECT_GE(t2, t1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AlgoGrid, ConvAlgoPropertyTest,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values<std::int64_t>(1, 16, 64, 128)));
