/**
 * @file
 * Tests for the multi-tenant serving subsystem: admission accounting,
 * arrival generation, scheduler fairness and the headline tenancy
 * result (vDNN_all packs more VGG-16 jobs onto a 12 GB Titan X than
 * the Baseline allocator).
 */

#include "serve/admission.hh"
#include "serve/arrival.hh"
#include "serve/job.hh"
#include "core/dynamic_policy.hh"
#include "serve/scheduler.hh"

#include "common/random.hh"
#include "common/units.hh"
#include "mem/memory_pool.hh"
#include "net/builders.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>

using namespace vdnn;
using namespace vdnn::serve;
using namespace vdnn::literals;

// --- per-tenant pool accounting ---------------------------------------------

TEST(PoolClientAccounting, ChargesAndReleasesPerClient)
{
    mem::MemoryPool pool(1_MiB);
    auto a = pool.allocate(100_KiB, "a", /*client=*/1);
    auto b = pool.allocate(200_KiB, "b", /*client=*/2);
    auto c = pool.allocate(50_KiB, "c", /*client=*/1);
    EXPECT_EQ(pool.usedByClient(1), 150_KiB);
    EXPECT_EQ(pool.usedByClient(2), 200_KiB);
    EXPECT_EQ(pool.usedByClient(3), 0);
    EXPECT_EQ(pool.activeClients(), 2u);
    EXPECT_TRUE(pool.checkInvariants());

    pool.release(a);
    pool.release(c);
    EXPECT_EQ(pool.usedByClient(1), 0);
    EXPECT_EQ(pool.peakByClient(1), 150_KiB);
    EXPECT_EQ(pool.activeClients(), 1u);
    pool.release(b);
    EXPECT_TRUE(pool.checkInvariants());
}

// --- arrival generators ------------------------------------------------------

TEST(Arrivals, PoissonIsDeterministicAndMonotonic)
{
    SplitMix64 rng1(7), rng2(7);
    auto a = poissonArrivals(32, 5.0, rng1);
    auto b = poissonArrivals(32, 5.0, rng2);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 32u);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    EXPECT_GT(a.front(), 0);
}

TEST(Arrivals, PoissonRateRoughlyHolds)
{
    SplitMix64 rng(11);
    const int n = 2000;
    auto a = poissonArrivals(n, 10.0, rng);
    double horizon_s = toSeconds(a.back());
    double rate = double(n) / horizon_s;
    EXPECT_NEAR(rate, 10.0, 1.0);
}

TEST(Arrivals, UniformAndTrace)
{
    auto u = uniformArrivals(4, 10_ms, 5_ms);
    ASSERT_EQ(u.size(), 4u);
    EXPECT_EQ(u[0], 5_ms);
    EXPECT_EQ(u[3], 35_ms);

    auto t = traceArrivals({2.0, 0.5, 1.0});
    ASSERT_EQ(t.size(), 3u);
    EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
    EXPECT_EQ(t[0], secondsToNs(0.5));
}

// --- job queue ---------------------------------------------------------------

TEST(JobQueueTest, TakePreservesOrder)
{
    JobQueue q;
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.take(1), 2); // backfill from the middle
    EXPECT_EQ(q.take(0), 1);
    q.pushFront(9);
    EXPECT_EQ(q.take(0), 9);
    EXPECT_EQ(q.take(0), 3);
    EXPECT_TRUE(q.empty());
}

// --- admission controller ----------------------------------------------------

TEST(Admission, RejectWhenFullAdmitAfterRelease)
{
    AdmissionController ac(10_GiB, /*safety=*/1.0);

    FootprintEstimate big;
    big.persistent = 4_GiB;
    big.transient = 2_GiB;

    // persistent sum + shared transient arena: 4+4+2 = 10 GiB fits...
    EXPECT_TRUE(ac.canAdmit(big));
    ac.admit(0, big);
    EXPECT_TRUE(ac.canAdmit(big));
    ac.admit(1, big);
    EXPECT_EQ(ac.admittedCount(), 2);
    EXPECT_EQ(ac.reservedBytes(), 10_GiB);

    // ...but a third tenant would need 4 more persistent GiB: full.
    EXPECT_FALSE(ac.canAdmit(big));
    EXPECT_TRUE(ac.feasible(big)); // would fit an empty device

    // Teardown frees the reservation and admission resumes.
    ac.release(0);
    EXPECT_TRUE(ac.canAdmit(big));
    ac.admit(2, big);
    EXPECT_FALSE(ac.canAdmit(big));
}

TEST(Admission, TransientArenaIsSharedNotSummed)
{
    AdmissionController ac(10_GiB, /*safety=*/1.0);
    FootprintEstimate est;
    est.persistent = 1_GiB;
    est.transient = 7_GiB;
    // Summed reservations would cap at one tenant (8 GiB each);
    // the shared arena admits three: 3x1 + 7 = 10 GiB.
    ac.admit(0, est);
    ac.admit(1, est);
    EXPECT_TRUE(ac.canAdmit(est));
    ac.admit(2, est);
    EXPECT_FALSE(ac.canAdmit(est));
    EXPECT_EQ(ac.reservedBytes(), 10_GiB);
}

TEST(Admission, InfeasibleJobDetected)
{
    AdmissionController ac(1_GiB);
    FootprintEstimate est;
    est.persistent = 2_GiB;
    EXPECT_FALSE(ac.feasible(est));
    EXPECT_FALSE(ac.canAdmit(est));
}

TEST(Admission, BackoffInflationCanMakeJobInfeasible)
{
    // After OOM requeues grow a job's reservation scale, feasibility
    // must be judged at the grown scale or the job queues forever.
    AdmissionController ac(10_GiB, /*safety=*/1.0);
    FootprintEstimate est;
    est.persistent = 5_GiB;
    est.transient = 3_GiB;
    EXPECT_TRUE(ac.feasible(est));
    EXPECT_FALSE(ac.feasible(est, /*scale=*/1.5));
}

TEST(Admission, FootprintEstimateShape)
{
    dnn::CudnnSim cudnn(gpu::titanXMaxwell());
    auto vgg = net::buildVgg16(64);
    core::PlannerContext ctx =
        core::PlannerContext::exclusive(gpu::titanXMaxwell());

    FootprintEstimate base = estimateFootprint(
        *vgg, cudnn,
        core::BaselinePlanner(core::AlgoPreference::MemoryOptimal)
            .plan(*vgg, ctx));
    FootprintEstimate all = estimateFootprint(
        *vgg, cudnn,
        core::OffloadAllPlanner(core::AlgoPreference::MemoryOptimal)
            .plan(*vgg, ctx));
    FootprintEstimate conv = estimateFootprint(
        *vgg, cudnn,
        core::OffloadConvPlanner(core::AlgoPreference::MemoryOptimal)
            .plan(*vgg, ctx));

    // Baseline holds everything persistently; vDNN virtualizes the
    // feature maps away into a much smaller persistent footprint.
    EXPECT_EQ(base.transient, 0);
    EXPECT_GT(base.persistent, 4 * all.persistent);
    EXPECT_GT(all.transient, 0);
    EXPECT_LT(all.total(), base.total());
    // vDNN_conv keeps the non-CONV-consumed buffers resident.
    EXPECT_GE(conv.transient, all.transient);
}

TEST(Admission, DynamicBudgetedAtTheMemoryFloor)
{
    // Dynamic jobs are budgeted at the vDNN_dyn memory floor
    // (vDNN_all with memory-optimal algorithms), without trials.
    dnn::CudnnSim cudnn(gpu::titanXMaxwell());
    auto vgg = net::buildVgg16(64);
    core::PlannerContext ctx =
        core::PlannerContext::exclusive(gpu::titanXMaxwell());

    core::OffloadAllPlanner all_m(core::AlgoPreference::MemoryOptimal);
    FootprintEstimate floor =
        estimatePlannerFootprint(*vgg, cudnn, all_m, ctx);
    core::DynamicPlanner dyn;
    FootprintEstimate budget =
        estimatePlannerFootprint(*vgg, cudnn, dyn, ctx);
    EXPECT_EQ(budget.persistent, floor.persistent);
    EXPECT_EQ(budget.transient, floor.transient);
}

// --- scheduler ---------------------------------------------------------------

namespace
{

std::shared_ptr<const net::Network>
tinyNet()
{
    return net::buildTinyCnn(16);
}

JobSpec
makeJob(const std::shared_ptr<const net::Network> &network,
        std::shared_ptr<core::Planner> planner, TimeNs arrival,
        int iterations)
{
    JobSpec spec;
    spec.network = network;
    spec.planner = std::move(planner);
    spec.arrival = arrival;
    spec.iterations = iterations;
    return spec;
}

std::shared_ptr<core::Planner>
vdnnAll()
{
    return std::make_shared<core::OffloadAllPlanner>(
        core::AlgoPreference::MemoryOptimal);
}

std::shared_ptr<core::Planner>
baseline()
{
    return std::make_shared<core::BaselinePlanner>(
        core::AlgoPreference::MemoryOptimal);
}

} // namespace

TEST(Scheduler, SingleJobRunsToCompletion)
{
    SchedulerConfig cfg;
    Scheduler sched(cfg);
    auto network = tinyNet();
    sched.submit(makeJob(network, vdnnAll(), 10_ms, 3));
    ServeReport rep = sched.run();
    ASSERT_EQ(rep.jobs.size(), 1u);
    EXPECT_EQ(rep.jobs[0].state, JobState::Finished);
    EXPECT_EQ(rep.jobs[0].iterations, 3);
    EXPECT_EQ(rep.jobs[0].queueingDelay, 0);
    EXPECT_GT(rep.makespan, 0);
    EXPECT_EQ(rep.finishedCount(), 1);
    // The shared pool drains completely after teardown.
    EXPECT_EQ(sched.devicePool().usedBytes(), 0);
    EXPECT_EQ(sched.admissionState().admittedCount(), 0);
}

TEST(Scheduler, RoundRobinIsFairAcrossEqualJobs)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    Scheduler sched(cfg);
    auto network = tinyNet();
    const int kIters = 4;
    for (int i = 0; i < 3; ++i) {
        sched.submit(makeJob(network, vdnnAll(), 0, kIters));
    }
    ServeReport rep = sched.run();
    ASSERT_EQ(rep.finishedCount(), 3);
    EXPECT_EQ(rep.peakJobsInFlight, 3);

    // Equal budgets served round-robin finish within one iteration of
    // each other: nobody is starved.
    TimeNs first = rep.jobs[0].finishTime;
    TimeNs last = rep.jobs[2].finishTime;
    TimeNs iter = rep.jobs[0].serviceTime / kIters;
    for (const JobOutcome &j : rep.jobs) {
        first = std::min(first, j.finishTime);
        last = std::max(last, j.finishTime);
        EXPECT_EQ(j.iterations, kIters);
        EXPECT_LE(j.queueingDelay, iter);
    }
    EXPECT_LE(last - first, 2 * iter + 2 * kNsPerMs);
}

TEST(Scheduler, FifoExclusiveSerializesJobs)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::FifoExclusive;
    Scheduler sched(cfg);
    auto network = tinyNet();
    sched.submit(makeJob(network, vdnnAll(), 0, 4));
    sched.submit(makeJob(network, vdnnAll(), 0, 4));
    ServeReport rep = sched.run();
    EXPECT_EQ(rep.finishedCount(), 2);
    EXPECT_EQ(rep.peakJobsInFlight, 1);
    // The second job waits for the whole first job.
    EXPECT_GE(rep.jobs[1].queueingDelay, rep.jobs[0].serviceTime);
}

TEST(Scheduler, InfeasibleJobIsRejected)
{
    SchedulerConfig cfg; // 12 GB Titan X
    Scheduler sched(cfg);
    // VGG-16 (256) under Baseline needs ~28 GB network-wide: can
    // never fit, must be rejected, and must not wedge the queue.
    std::shared_ptr<const net::Network> vgg256 = net::buildVgg16(256);
    sched.submit(makeJob(vgg256, baseline(), 0, 2));
    sched.submit(makeJob(tinyNet(), vdnnAll(), 0, 2));
    ServeReport rep = sched.run();
    EXPECT_EQ(rep.jobs[0].state, JobState::Rejected);
    EXPECT_EQ(rep.jobs[1].state, JobState::Finished);
    EXPECT_EQ(rep.rejectedCount(), 1);
    EXPECT_EQ(rep.finishedCount(), 1);
}

TEST(Scheduler, BaselineAdmitsSecondTenantOnlyAfterTeardown)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    Scheduler sched(cfg);
    // Two Baseline VGG-16 (64) jobs: each holds ~6.4 GiB persistently,
    // so the 12 GiB device fits exactly one at a time.
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);
    sched.submit(makeJob(vgg, baseline(), 0, 2));
    sched.submit(makeJob(vgg, baseline(), 0, 2));
    ServeReport rep = sched.run();
    EXPECT_EQ(rep.finishedCount(), 2);
    EXPECT_EQ(rep.peakJobsInFlight, 1);
    EXPECT_GE(rep.jobs[1].admitTime, rep.jobs[0].finishTime);
}

TEST(Scheduler, VdnnAllPacksMoreVgg16TenantsThanBaseline)
{
    // The headline: on the paper's 12 GB Titan X, vDNN_all admits
    // strictly more concurrent VGG-16 tenants than Baseline.
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);
    auto peakTenants =
        [&](const std::function<std::shared_ptr<core::Planner>()>
                &planner) {
            SchedulerConfig cfg;
            cfg.policy = SchedPolicy::RoundRobin;
            Scheduler sched(cfg);
            for (int i = 0; i < 6; ++i)
                sched.submit(makeJob(vgg, planner(), 0, 2));
            ServeReport rep = sched.run();
            EXPECT_EQ(rep.finishedCount(), 6);
            return rep.peakJobsInFlight;
        };
    int base_peak = peakTenants(baseline);
    int vdnn_peak = peakTenants(vdnnAll);
    EXPECT_EQ(base_peak, 1);
    EXPECT_GT(vdnn_peak, base_peak);
    EXPECT_GE(vdnn_peak, 2 * base_peak);
}

TEST(Scheduler, MaxJobsInFlightCapsTenancy)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.maxJobsInFlight = 2;
    Scheduler sched(cfg);
    auto network = tinyNet();
    for (int i = 0; i < 4; ++i) {
        sched.submit(makeJob(network, vdnnAll(), 0, 2));
    }
    ServeReport rep = sched.run();
    EXPECT_EQ(rep.finishedCount(), 4);
    EXPECT_EQ(rep.peakJobsInFlight, 2);
}

TEST(Scheduler, PlannerJobSpecDrivesTheTenant)
{
    // A job submitted with an explicit Planner (no enum fields) runs
    // under that planner and reports its name.
    SchedulerConfig cfg;
    Scheduler sched(cfg);
    JobSpec spec;
    spec.network = tinyNet();
    spec.planner = std::make_shared<core::CompressedOffloadPlanner>();
    spec.iterations = 2;
    sched.submit(std::move(spec));
    ServeReport rep = sched.run();
    ASSERT_EQ(rep.finishedCount(), 1);
    EXPECT_EQ(rep.jobs[0].configName, "vDNN_all+cDMA (m)");
    EXPECT_GT(rep.jobs[0].offloadedBytes, 0);
}

TEST(Scheduler, ShortestRemainingFavorsShortJobs)
{
    auto meanJct = [](SchedPolicy policy) {
        SchedulerConfig cfg;
        cfg.policy = policy;
        Scheduler sched(cfg);
        auto network = tinyNet();
        sched.submit(makeJob(network, vdnnAll(), 0, 16));
        for (int i = 0; i < 3; ++i) {
            sched.submit(makeJob(network, vdnnAll(), 0, 2));
        }
        ServeReport rep = sched.run();
        EXPECT_EQ(rep.finishedCount(), 4);
        return rep.meanJct();
    };
    // SRPT strictly beats plain round-robin on a short-vs-long mix.
    EXPECT_LT(meanJct(SchedPolicy::ShortestRemaining),
              meanJct(SchedPolicy::RoundRobin));
}

// --- packed overlap ----------------------------------------------------------

namespace
{

/** Mixed stall-heavy workload used by the overlap tests. */
std::vector<JobSpec>
overlapWorkload()
{
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);
    std::shared_ptr<const net::Network> alex = net::buildAlexNet(128);
    std::vector<JobSpec> specs;
    for (int i = 0; i < 4; ++i) {
        JobSpec spec;
        spec.network = i % 2 == 0 ? vgg : alex;
        spec.planner = std::make_shared<core::OffloadAllPlanner>(
            core::AlgoPreference::MemoryOptimal);
        spec.arrival = TimeNs(i) * 50 * kNsPerMs;
        spec.iterations = 2 + i % 2;
        specs.push_back(std::move(spec));
    }
    return specs;
}

ServeReport
runOverlapMix(SchedPolicy policy)
{
    SchedulerConfig cfg;
    cfg.policy = policy;
    Scheduler sched(cfg);
    for (JobSpec &spec : overlapWorkload())
        sched.submit(std::move(spec));
    return sched.run();
}

} // namespace

TEST(PackedOverlap, FinishesEveryJobAndDrainsThePool)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::PackedOverlap;
    Scheduler sched(cfg);
    auto network = tinyNet();
    for (int i = 0; i < 3; ++i) {
        sched.submit(makeJob(network, vdnnAll(), 0, 3));
    }
    ServeReport rep = sched.run();
    EXPECT_EQ(rep.finishedCount(), 3);
    for (const JobOutcome &j : rep.jobs)
        EXPECT_EQ(j.iterations, 3);
    EXPECT_EQ(sched.devicePool().usedBytes(), 0);
    EXPECT_EQ(sched.admissionState().admittedCount(), 0);
}

TEST(PackedOverlap, BeatsRoundRobinOnJctAndComputeUtilization)
{
    ServeReport rr = runOverlapMix(SchedPolicy::RoundRobin);
    ServeReport packed = runOverlapMix(SchedPolicy::PackedOverlap);
    ASSERT_EQ(rr.finishedCount(), 4);
    ASSERT_EQ(packed.finishedCount(), 4);
    // Dispatching tenant B's compute under tenant A's DMAs must
    // strictly raise utilization and lower mean JCT.
    EXPECT_LT(packed.meanJct(), rr.meanJct());
    EXPECT_GT(packed.computeUtilization(), rr.computeUtilization());
    EXPECT_LE(packed.makespan, rr.makespan);
}

TEST(PackedOverlap, AdmissionReservesTransientsSummed)
{
    AdmissionController ac(10_GiB, /*safety=*/1.0);
    ac.setOverlapTransients(true);
    FootprintEstimate est;
    est.persistent = 1_GiB;
    est.transient = 3_GiB;
    // Shared-arena accounting would admit three (3x1 + 3 = 6 GiB);
    // overlapping iterations need 2x(1+3) = 8, and a third tenant's
    // 1+3 would burst the 10 GiB device.
    ac.admit(0, est);
    EXPECT_TRUE(ac.canAdmit(est));
    ac.admit(1, est);
    EXPECT_EQ(ac.reservedBytes(), 8_GiB);
    EXPECT_FALSE(ac.canAdmit(est));
}

// --- service-time accounting -------------------------------------------------

TEST(Scheduler, SparseArrivalIdleTimeIsNotBilledAsService)
{
    // Job A finishes long before job B arrives; the scheduler advances
    // the device clock across the gap. Identical jobs must report
    // identical service time — the advance belongs to neither, even
    // though A sat in the system while the clock moved.
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    Scheduler sched(cfg);
    auto network = tinyNet();
    sched.submit(makeJob(network, vdnnAll(), 0, 2));
    sched.submit(makeJob(network, vdnnAll(), 60'000 * kNsPerMs, 2));
    ServeReport rep = sched.run();
    ASSERT_EQ(rep.finishedCount(), 2);
    EXPECT_EQ(rep.jobs[0].serviceTime, rep.jobs[1].serviceTime);
    // Service time is the iterations' own window, a tiny fraction of
    // the 60 s arrival gap.
    EXPECT_LT(rep.jobs[0].serviceTime, 1'000 * kNsPerMs);
    EXPECT_GE(rep.jobs[1].admitTime, 60'000 * kNsPerMs);
}

// --- in-flight OOM requeue path ----------------------------------------------

namespace
{

/**
 * A planner whose admission estimate is honest vDNN_all but whose
 * execution plan keeps every feature map resident: admission happily
 * admits it, and the iteration then OOMs in flight — the path that
 * exercises evict -> reservation inflation -> readmission.
 */
class UnderestimatingPlanner : public core::Planner
{
  public:
    std::string name() const override { return "underestimator"; }

    core::MemoryPlan plan(const net::Network &net,
                          const core::PlannerContext &ctx) override
    {
        core::MemoryPlan p =
            core::OffloadAllPlanner(core::AlgoPreference::MemoryOptimal)
                .plan(net, ctx);
        p.clearOffloads(); // keep everything resident at run time
        return p;
    }

    core::MemoryPlan admissionPlan(const net::Network &net,
                                   const core::PlannerContext &ctx) override
    {
        return core::OffloadAllPlanner(
                   core::AlgoPreference::MemoryOptimal)
            .plan(net, ctx);
    }
};

} // namespace

TEST(Scheduler, InFlightOomRequeuesBoundedThenFails)
{
    // A lone tenant whose true working set can never fit the device:
    // every admission ends in an in-flight OOM abort. The scheduler
    // must evict it, inflate its reservation, requeue it at the head,
    // and give up with Failed after maxOomRequeues attempts — not
    // wedge the queue or loop forever.
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.oomBackoffScale = 1.0; // stays feasible: exercises the bound
    cfg.maxOomRequeues = 2;
    Scheduler sched(cfg);
    JobSpec spec;
    spec.network = net::buildVgg16(256);
    spec.planner = std::make_shared<UnderestimatingPlanner>();
    spec.iterations = 1;
    sched.submit(std::move(spec));
    ServeReport rep = sched.run();
    ASSERT_EQ(rep.jobs.size(), 1u);
    EXPECT_EQ(rep.jobs[0].state, JobState::Failed);
    EXPECT_EQ(rep.jobs[0].oomRequeues, cfg.maxOomRequeues + 1);
    EXPECT_NE(rep.jobs[0].failReason.find("repeated iteration OOM"),
              std::string::npos);
    EXPECT_EQ(rep.failedCount(), 1);
    // The abort path released everything it took.
    EXPECT_EQ(sched.devicePool().usedBytes(), 0);
    EXPECT_EQ(sched.admissionState().admittedCount(), 0);
}

TEST(Scheduler, InFlightOomRequeueRecoversWhenCoTenantLeaves)
{
    // The same underestimating tenant OOMs only because a Baseline hog
    // crowds the pool; after eviction + backoff inflation its grown
    // reservation no longer fits beside the hog, so it waits, readmits
    // once the hog finishes, and completes — with the requeue counted.
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    Scheduler sched(cfg);
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);

    JobSpec hog;
    hog.network = vgg;
    hog.planner = std::make_shared<core::BaselinePlanner>(
        core::AlgoPreference::PerformanceOptimal);
    hog.iterations = 6;
    JobId hog_id = sched.submit(std::move(hog));

    JobSpec liar;
    liar.network = vgg;
    liar.planner = std::make_shared<UnderestimatingPlanner>();
    liar.arrival = 1 * kNsPerMs;
    liar.iterations = 1;
    JobId liar_id = sched.submit(std::move(liar));

    ServeReport rep = sched.run();
    const JobOutcome &hog_out = rep.jobs[std::size_t(hog_id)];
    const JobOutcome &liar_out = rep.jobs[std::size_t(liar_id)];
    EXPECT_EQ(rep.finishedCount(), 2);
    EXPECT_EQ(hog_out.state, JobState::Finished);
    ASSERT_EQ(liar_out.state, JobState::Finished);
    EXPECT_GE(liar_out.oomRequeues, 1);
    // Recovery happened after the hog freed the pool.
    EXPECT_GE(liar_out.finishTime, hog_out.finishTime);
    EXPECT_EQ(sched.devicePool().usedBytes(), 0);
}

// --- preemptive priority: the tenant lifecycle state machine -----------------

TEST(Admission, EvictReadmitLedgerTracksTheStateMachine)
{
    AdmissionController ac(10_GiB, /*safety=*/1.0);
    FootprintEstimate est;
    est.persistent = 4_GiB;
    est.transient = 2_GiB;
    ac.admit(0, est);
    ac.admit(1, est);
    EXPECT_EQ(ac.reservedBytes(), 10_GiB);
    EXPECT_FALSE(ac.canAdmit(est));

    // Evicting a tenant frees its device bytes but keeps it on the
    // books: a third tenant fits, and the evicted one can come back
    // only once the space frees again.
    ac.evict(0);
    EXPECT_EQ(ac.admittedCount(), 1);
    EXPECT_EQ(ac.evictedCount(), 1);
    EXPECT_EQ(ac.reservedBytes(), 6_GiB);
    EXPECT_TRUE(ac.canAdmit(est));
    ac.admit(2, est);
    EXPECT_FALSE(ac.canReadmit(0));
    ac.release(2);
    EXPECT_TRUE(ac.canReadmit(0));
    ac.readmit(0);
    EXPECT_EQ(ac.reservedBytes(), 10_GiB);
    EXPECT_EQ(ac.evictedCount(), 0);

    // release() balances the books from either ledger.
    ac.evict(1);
    ac.release(1);
    ac.release(0);
    EXPECT_EQ(ac.reservedBytes(), 0);
    EXPECT_EQ(ac.admittedCount(), 0);
    EXPECT_EQ(ac.evictedCount(), 0);
}

TEST(PreemptivePriority, HighPriorityArrivalPreemptsAndVictimResumes)
{
    // Two Baseline VGG-16 (64) tenants can never share the 12 GiB
    // device. The low-priority incumbent must be suspended and
    // evicted to host when the high-priority job arrives, then
    // resume and finish after it leaves.
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::PreemptivePriority;
    Scheduler sched(cfg);
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);

    JobSpec low;
    low.network = vgg;
    low.planner = baseline();
    low.priority = 0;
    low.iterations = 4;
    JobId low_id = sched.submit(std::move(low));

    JobSpec high;
    high.network = vgg;
    high.planner = baseline();
    high.priority = 10;
    high.arrival = 1 * kNsPerMs;
    high.iterations = 2;
    JobId high_id = sched.submit(std::move(high));

    ServeReport rep = sched.run();
    const JobOutcome &low_out = rep.jobs[std::size_t(low_id)];
    const JobOutcome &high_out = rep.jobs[std::size_t(high_id)];
    EXPECT_EQ(rep.finishedCount(), 2);
    EXPECT_EQ(low_out.preemptions, 1);
    EXPECT_EQ(high_out.preemptions, 0);
    // The high-priority job ran to completion while the victim sat
    // evicted, then the victim resumed.
    EXPECT_LT(high_out.finishTime, low_out.finishTime);
    EXPECT_GT(low_out.iterations, 0);

    // The admission ledger balances to zero after the drain.
    EXPECT_EQ(rep.reservedBytesAtEnd, 0);
    EXPECT_EQ(rep.evictedLedgerAtEnd, 0);
    EXPECT_EQ(sched.devicePool().usedBytes(), 0);
    EXPECT_EQ(sched.admissionState().admittedCount(), 0);

    // The audit log shows the suspend -> evict -> resume round trip,
    // with reserved bytes dropping at eviction and restored on resume.
    bool saw_suspend = false, saw_evict = false, saw_resume = false;
    for (const LifecycleEvent &ev : rep.lifecycle) {
        if (ev.job != low_id)
            continue;
        if (std::string(ev.what) == "suspend")
            saw_suspend = true;
        if (std::string(ev.what) == "evict") {
            saw_evict = true;
            EXPECT_LT(ev.reservedAfter, ev.reservedBefore);
        }
        if (std::string(ev.what) == "resume" && saw_evict) {
            saw_resume = true;
            EXPECT_GT(ev.reservedAfter, ev.reservedBefore);
        }
    }
    EXPECT_TRUE(saw_suspend);
    EXPECT_TRUE(saw_evict);
    EXPECT_TRUE(saw_resume);
}

TEST(PreemptivePriority, InFlightCapPreemptsLowestPriority)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::PreemptivePriority;
    cfg.maxJobsInFlight = 2;
    Scheduler sched(cfg);
    auto network = tinyNet();
    for (int i = 0; i < 2; ++i) {
        JobSpec spec;
        spec.network = network;
        spec.planner = vdnnAll();
        spec.priority = 0;
        spec.iterations = 6;
        sched.submit(std::move(spec));
    }
    JobSpec high;
    high.network = network;
    high.planner = vdnnAll();
    high.priority = 5;
    high.arrival = 1 * kNsPerMs;
    high.iterations = 2;
    JobId high_id = sched.submit(std::move(high));

    ServeReport rep = sched.run();
    EXPECT_EQ(rep.finishedCount(), 3);
    EXPECT_EQ(rep.peakJobsInFlight, 2); // the cap held throughout
    int preempted = 0;
    for (const JobOutcome &j : rep.jobs)
        preempted += j.preemptions;
    EXPECT_EQ(preempted, 1);
    EXPECT_EQ(rep.jobs[std::size_t(high_id)].preemptions, 0);
    EXPECT_EQ(rep.reservedBytesAtEnd, 0);
    EXPECT_EQ(rep.evictedLedgerAtEnd, 0);
}

TEST(PreemptivePriority, HighPriorityJctBeatsRoundRobinUnderLoad)
{
    auto runMix = [](SchedPolicy policy) {
        SchedulerConfig cfg;
        cfg.policy = policy;
        Scheduler sched(cfg);
        auto network = tinyNet();
        for (int i = 0; i < 4; ++i) {
            JobSpec spec;
            spec.network = network;
            spec.planner = vdnnAll();
            spec.priority = 0;
            spec.iterations = 8;
            sched.submit(std::move(spec));
        }
        JobSpec high;
        high.network = network;
        high.planner = vdnnAll();
        high.priority = 10;
        high.arrival = 1 * kNsPerMs;
        high.iterations = 2;
        JobId high_id = sched.submit(std::move(high));
        ServeReport rep = sched.run();
        EXPECT_EQ(rep.finishedCount(), 5);
        return rep.jobs[std::size_t(high_id)].completionTime;
    };
    TimeNs rr = runMix(SchedPolicy::RoundRobin);
    TimeNs pp = runMix(SchedPolicy::PreemptivePriority);
    // Strict priority dispatch gets the important job out first.
    EXPECT_LT(pp, rr);
}

TEST(PreemptivePriority, GrowBackReplanAfterCoTenantExit)
{
    // A vDNN_dyn tenant admitted beside a Baseline hog plans against
    // the squeezed share; when the hog exits, the re-plan sweep lets
    // it swap to a larger plan at its next iteration boundary.
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::PreemptivePriority;
    Scheduler sched(cfg);
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);

    JobSpec hog;
    hog.network = vgg;
    hog.planner = baseline();
    hog.iterations = 2;
    sched.submit(std::move(hog));

    JobSpec dyn;
    dyn.network = vgg;
    dyn.planner = std::make_shared<core::DynamicPlanner>();
    dyn.arrival = 1 * kNsPerMs;
    dyn.iterations = 8;
    JobId dyn_id = sched.submit(std::move(dyn));

    ServeReport rep = sched.run();
    EXPECT_EQ(rep.finishedCount(), 2);
    const JobOutcome &dyn_out = rep.jobs[std::size_t(dyn_id)];
    EXPECT_GE(dyn_out.replans, 1);
    bool saw_replan = false;
    for (const LifecycleEvent &ev : rep.lifecycle)
        saw_replan |= std::string(ev.what) == "replan";
    EXPECT_TRUE(saw_replan);
    EXPECT_EQ(rep.reservedBytesAtEnd, 0);
    EXPECT_EQ(sched.devicePool().usedBytes(), 0);
}

// --- priority aging ----------------------------------------------------------

namespace
{

/** Starved low-priority job vs a hostile high-priority stream. */
ServeReport
runHostileStream(double aging_rate, JobId *starved_id,
                 std::vector<JobId> *hostile_ids)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::PreemptivePriority;
    Scheduler sched(cfg);
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);

    // Baseline VGG-16 (64): exactly one fits the device, so whoever
    // holds it starves everyone else.
    JobSpec hostile;
    hostile.network = vgg;
    hostile.planner = baseline();
    hostile.priority = 10;
    hostile.iterations = 2;
    hostile_ids->clear();
    for (int i = 0; i < 3; ++i) {
        JobSpec h = hostile;
        h.name = "hostile-" + std::to_string(i);
        h.arrival = TimeNs(i) * 1000 * kNsPerMs;
        hostile_ids->push_back(sched.submit(std::move(h)));
    }

    JobSpec starved;
    starved.network = vgg;
    starved.planner = baseline();
    starved.priority = 0;
    starved.agingRatePerSec = aging_rate;
    starved.arrival = 50 * kNsPerMs; // behind hostile-0
    starved.iterations = 1;
    *starved_id = sched.submit(std::move(starved));

    return sched.run();
}

} // namespace

TEST(PriorityAging, QueueWaitLiftsAStarvedJobPastTheHostileStream)
{
    JobId starved;
    std::vector<JobId> hostiles;

    // Without aging the hostile stream monopolizes the device: the
    // low-priority job finishes strictly last.
    ServeReport rigid = runHostileStream(0.0, &starved, &hostiles);
    EXPECT_EQ(rigid.finishedCount(), 4);
    for (JobId h : hostiles) {
        EXPECT_GT(rigid.jobs[std::size_t(starved)].finishTime,
                  rigid.jobs[std::size_t(h)].finishTime);
    }

    // With aging, a few seconds of queue wait lift the starved job's
    // effective priority past 10: it is admitted (preempting the
    // incumbent if needed) and finishes before the stream drains.
    ServeReport aged = runHostileStream(4.0, &starved, &hostiles);
    EXPECT_EQ(aged.finishedCount(), 4);
    TimeNs last_hostile = 0;
    int hostile_preemptions = 0;
    for (JobId h : hostiles) {
        last_hostile = std::max(
            last_hostile, aged.jobs[std::size_t(h)].finishTime);
        hostile_preemptions += aged.jobs[std::size_t(h)].preemptions;
    }
    EXPECT_LT(aged.jobs[std::size_t(starved)].finishTime,
              last_hostile);
    // It got there by out-prioritizing the stream, not by luck: the
    // starved job was dispatched while hostile jobs still had work.
    EXPECT_GT(hostile_preemptions, 0);
    // Ledgers still balance after the aged preemptions.
    EXPECT_EQ(aged.reservedBytesAtEnd, 0);
    EXPECT_EQ(aged.evictedLedgerAtEnd, 0);
}

// --- trace replay ------------------------------------------------------------

TEST(TraceReplay, ParsesSortsAndSkipsCommentsAndHeader)
{
    TraceArrivals t = TraceArrivals::parseString(
        "# a comment\n"
        "submit_s,net,priority,planner,iterations\n"
        "0.50,alexnet:128,0,vdnn_all,3\n"
        "\n"
        "0.10,vgg16:64,5,baseline\n"
        "0.25,overfeat:128,0,vdnn_dyn,2\n");
    ASSERT_TRUE(t.ok()) << t.error();
    ASSERT_EQ(t.size(), 3u);
    // Sorted by submit time.
    EXPECT_EQ(t.entries()[0].net, "vgg16:64");
    EXPECT_EQ(t.entries()[0].submit, secondsToNs(0.1));
    EXPECT_EQ(t.entries()[0].priority, 5);
    EXPECT_EQ(t.entries()[0].planner, "baseline");
    EXPECT_EQ(t.entries()[0].iterations, 1); // defaulted
    EXPECT_EQ(t.entries()[1].net, "overfeat:128");
    EXPECT_EQ(t.entries()[1].iterations, 2);
    EXPECT_EQ(t.entries()[2].net, "alexnet:128");
    EXPECT_EQ(t.entries()[2].iterations, 3);
}

TEST(TraceReplay, MalformedLinesPoisonTheTrace)
{
    TraceArrivals bad_time = TraceArrivals::parseString(
        "0.1,vgg16:64,0,vdnn_all\n"
        "oops,vgg16:64,0,vdnn_all\n");
    EXPECT_FALSE(bad_time.ok());

    TraceArrivals bad_fields =
        TraceArrivals::parseString("0.1,vgg16:64,0\n");
    EXPECT_FALSE(bad_fields.ok());

    TraceArrivals bad_iters =
        TraceArrivals::parseString("0.1,vgg16:64,0,vdnn_all,0\n");
    EXPECT_FALSE(bad_iters.ok());

    // Non-finite / overflowing numerics are corrupt lines, not data.
    EXPECT_FALSE(TraceArrivals::parseString(
                     "inf,vgg16:64,0,vdnn_all\n")
                     .ok());
    EXPECT_FALSE(TraceArrivals::parseString(
                     "1e300,vgg16:64,0,vdnn_all\n")
                     .ok());
    EXPECT_FALSE(TraceArrivals::parseString(
                     "0.1,vgg16:64,99999999999,vdnn_all\n")
                     .ok());

    // A malformed first data line must poison the trace, not vanish
    // as a pretend header (headers start with a letter).
    TraceArrivals typo = TraceArrivals::parseString(
        "0.5s,vgg16:64,0,vdnn_all\n"
        "1.0,vgg16:64,0,vdnn_all\n");
    EXPECT_FALSE(typo.ok());
    TraceArrivals empty_field = TraceArrivals::parseString(
        ",vgg16:64,0,vdnn_all\n");
    EXPECT_FALSE(empty_field.ok());

    TraceArrivals missing = TraceArrivals::load("/nonexistent.csv");
    EXPECT_FALSE(missing.ok());
}

TEST(TraceReplay, ShippedSampleTraceLoads)
{
    TraceArrivals t =
        TraceArrivals::load(VDNN_SOURCE_DIR "/bench/traces/"
                            "skewed_arrivals.csv");
    ASSERT_TRUE(t.ok()) << t.error();
    EXPECT_GE(t.size(), 10u);
    for (const TraceEntry &e : t.entries())
        EXPECT_GE(e.iterations, 1);
}

// Golden byte-identity pin for a multi-tenant serve run: three equal
// tenants under round-robin with staggered arrivals.  The exact
// makespan, per-job finish times, and engine busy totals are
// deterministic; simulator-speed work (pooled events, flat dispatch,
// indexed accounting) must not move any of them.
TEST(Scheduler, GoldenMultiTenantExactValues)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    Scheduler sched(cfg);
    auto network = tinyNet();
    sched.submit(makeJob(network, vdnnAll(), 0, 3));
    sched.submit(makeJob(network, vdnnAll(), 1_ms, 3));
    sched.submit(makeJob(network, vdnnAll(), 2_ms, 3));
    ServeReport rep = sched.run();
    ASSERT_EQ(rep.finishedCount(), 3);
    EXPECT_EQ(rep.makespan, 4349448);
    EXPECT_EQ(rep.computeBusyTime, 1747998);
    EXPECT_EQ(rep.copyBusyTime, 3761280);
    EXPECT_EQ(rep.poolPeakBytes, 5025792);
    for (const JobOutcome &j : rep.jobs) {
        EXPECT_EQ(j.iterations, 3);
    }
    EXPECT_EQ(rep.jobs[0].finishTime, 1449816);
    EXPECT_EQ(rep.jobs[1].finishTime, 3382904);
    EXPECT_EQ(rep.jobs[2].finishTime, 4349448);
}
