#include "bench_common.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

namespace vdnn::bench
{

using core::AlgoPreference;

std::shared_ptr<core::Planner>
baselinePlanner(AlgoPreference pref)
{
    return std::make_shared<core::BaselinePlanner>(pref);
}

std::shared_ptr<core::Planner>
offloadAllPlanner(AlgoPreference pref)
{
    return std::make_shared<core::OffloadAllPlanner>(pref);
}

std::shared_ptr<core::Planner>
offloadConvPlanner(AlgoPreference pref)
{
    return std::make_shared<core::OffloadConvPlanner>(pref);
}

std::shared_ptr<core::Planner>
dynamicPlanner()
{
    return std::make_shared<core::DynamicPlanner>();
}

const std::vector<PlannerPoint> &
figurePlannerGrid()
{
    static const std::vector<PlannerPoint> grid = {
        {offloadAllPlanner(AlgoPreference::MemoryOptimal), "all (m)",
         false, false, AlgoPreference::MemoryOptimal},
        {offloadAllPlanner(AlgoPreference::PerformanceOptimal),
         "all (p)", false, false, AlgoPreference::PerformanceOptimal},
        {offloadConvPlanner(AlgoPreference::MemoryOptimal), "conv (m)",
         false, false, AlgoPreference::MemoryOptimal},
        {offloadConvPlanner(AlgoPreference::PerformanceOptimal),
         "conv (p)", false, false, AlgoPreference::PerformanceOptimal},
        {dynamicPlanner(), "dyn", false, true,
         AlgoPreference::PerformanceOptimal},
        {baselinePlanner(AlgoPreference::MemoryOptimal), "base (m)",
         true, false, AlgoPreference::MemoryOptimal},
        {baselinePlanner(AlgoPreference::PerformanceOptimal),
         "base (p)", true, false,
         AlgoPreference::PerformanceOptimal},
    };
    return grid;
}

core::SessionResult
runPlanner(const net::Network &net,
           std::shared_ptr<core::Planner> planner, bool oracle)
{
    core::SessionConfig cfg;
    cfg.planner = std::move(planner);
    cfg.oracle = oracle;
    return core::runSession(net, cfg);
}

namespace
{

std::vector<std::pair<std::string, std::function<void()>>> &
registry()
{
    static std::vector<std::pair<std::string, std::function<void()>>> r;
    return r;
}

void
runRegistered(benchmark::State &state, const std::function<void()> &fn)
{
    for (auto _ : state) {
        fn();
        benchmark::ClobberMemory();
    }
}

} // namespace

void
registerSim(const std::string &name, std::function<void()> fn)
{
    registry().emplace_back(name, std::move(fn));
}

namespace
{

std::vector<std::pair<std::string, double>> &
metricSink()
{
    static std::vector<std::pair<std::string, double>> m;
    return m;
}

/** Take `--bench-json <path>` out of argv before google-benchmark
 *  sees it; returns the path ("" when absent). */
std::string
stripBenchJsonFlag(int &argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--bench-json" && i + 1 < argc) {
            std::string path = argv[i + 1];
            for (int k = i; k + 2 < argc; ++k)
                argv[k] = argv[k + 2];
            argc -= 2;
            return path;
        }
    }
    return "";
}

void
writeJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "0";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
}

bool
writeBenchJson(const std::string &path, const std::string &bench)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    os << "{\n  \"bench\": \"" << bench << "\",\n  \"metrics\": {";
    bool first = true;
    for (const auto &[name, value] : metricSink()) {
        os << (first ? "" : ",") << "\n    \"" << name << "\": ";
        writeJsonNumber(os, value);
        first = false;
    }
    os << "\n  }\n}\n";
    return bool(os);
}

} // namespace

void
recordBenchMetric(const std::string &name, double value)
{
    metricSink().emplace_back(name, value);
}

void
recordServeMetrics(const std::string &prefix, const serve::ServeReport &r)
{
    Bytes offloaded = 0;
    for (const serve::JobOutcome &j : r.jobs)
        offloaded += j.offloadedBytes;
    recordBenchMetric(prefix + ".finished", double(r.finishedCount()));
    recordBenchMetric(prefix + ".failed", double(r.failedCount()));
    recordBenchMetric(prefix + ".makespan_ms", toMs(r.makespan));
    recordBenchMetric(prefix + ".throughput_iters_per_s",
                      r.aggregateThroughput());
    recordBenchMetric(prefix + ".mean_jct_ms", toMs(r.meanJct()));
    recordBenchMetric(prefix + ".p95_jct_ms", toMs(r.p95Jct()));
    recordBenchMetric(prefix + ".p99_jct_ms", toMs(r.p99Jct()));
    recordBenchMetric(prefix + ".mean_queue_ms",
                      toMs(r.meanQueueingDelay()));
    recordBenchMetric(prefix + ".p99_queue_ms",
                      toMs(r.p99QueueingDelay()));
    recordBenchMetric(prefix + ".compute_util", r.computeUtilization());
    recordBenchMetric(prefix + ".offloaded_gib", toGiB(offloaded));
}

int
benchMain(int argc, char **argv, std::function<void()> report)
{
    std::string json_path = stripBenchJsonFlag(argc, argv);
    // Keep stdout clean for the figure tables.
    setQuiet(true);
    benchmark::Initialize(&argc, argv);

    report();

    for (auto &[name, fn] : registry()) {
        benchmark::RegisterBenchmark(
            name.c_str(), [fn = fn](benchmark::State &state) {
                runRegistered(state, fn);
            })
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (!json_path.empty()) {
        std::string bench = argv[0];
        std::size_t slash = bench.find_last_of('/');
        if (slash != std::string::npos)
            bench = bench.substr(slash + 1);
        if (!writeBenchJson(json_path, bench))
            return 1;
    }
    return 0;
}

} // namespace vdnn::bench
