#include "core/executor.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>

namespace vdnn::core
{

using dnn::LayerKind;
using gpu::CopyDir;

Executor::Executor(const net::Network &net_, const dnn::CudnnSim &cudnn_,
                   gpu::Runtime &runtime, MemoryManager &mm_,
                   const MemoryPlan &plan, ExecutorConfig config)
    : net(net_), cudnn(cudnn_), rt(runtime), mm(mm_), execPlan(plan),
      cfg(config), stats(net_, cudnn_)
{
    VDNN_ASSERT(net.finalized(), "network must be finalized");
    VDNN_ASSERT(execPlan.feasible, "cannot execute an infeasible plan");
    VDNN_ASSERT(execPlan.algos.size() == net.numLayers(),
                "plan algo assignment size mismatch");
    VDNN_ASSERT(execPlan.buffers.size() == net.numBuffers(),
                "plan directive vector size mismatch");
    streamCompute = rt.createStream("stream_compute");
    streamMemory = rt.createStream("stream_memory");

    // Map each layer to the buffers it is the last backward user of.
    bwdReleaseAt.assign(net.numLayers(), {});
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        net::LayerId last = net.lastBwdUser(b);
        if (last != net::kInputLayer)
            bwdReleaseAt[std::size_t(last)].push_back(b);
    }
    staticBuffers.assign(net.numBuffers(), false);
}

// --- setup -------------------------------------------------------------------

bool
Executor::allocPersistent(Bytes bytes, const std::string &tag,
                          bool managed)
{
    if (bytes <= 0)
        return true;
    auto a = mm.allocDevice(bytes, tag, managed);
    if (!a)
        return false;
    persistent.push_back(TaggedAlloc{*a, managed});
    return true;
}

bool
Executor::setup()
{
    VDNN_ASSERT(!setupDone, "setup() called twice");

    // Weights: W per layer, resident for the whole run. Weight
    // gradients use a single shared max-size buffer per region, with
    // updates applied in place during backward (Section IV-A).
    Bytes max_dw_managed = 0;
    Bytes max_dw_classifier = 0;
    bool ok = true;
    for (net::LayerId id : net.topoOrder()) {
        const net::LayerNode &n = net.node(id);
        Bytes w = n.spec.weightBytes();
        if (w <= 0)
            continue;
        ok = ok && allocPersistent(w, "W:" + n.spec.name, !n.classifier);
        (n.classifier ? max_dw_classifier : max_dw_managed) =
            std::max(n.classifier ? max_dw_classifier : max_dw_managed, w);
    }
    ok = ok && allocPersistent(max_dw_managed, "dW:shared", true);
    ok = ok && allocPersistent(max_dw_classifier, "dW:classifier", false);

    staticBuffers.assign(net.numBuffers(), false);
    if (staticAlloc()) {
        ok = ok && setupBaseline();
    } else {
        // The classifier tail is executed by unmodified cuBLAS code
        // (Section IV-A): its activations and gradient maps live in a
        // static region untouched by vDNN.
        for (net::BufferId b = 0; ok && b < net::BufferId(net.numBuffers());
             ++b) {
            if (!net.buffer(b).classifier)
                continue;
            ok = ok && mm.allocBuffer(net, b);
            staticBuffers[std::size_t(b)] = ok;
        }
        ok = ok &&
             allocPersistent(stats.peakGradientBytesScoped(
                                 net::NetworkStats::GradScope::Classifier),
                             "grad:classifier", false);
    }

    if (!ok) {
        teardownPartial();
        return false;
    }
    persistentTotal = mm.deviceUsage();
    setupDone = true;
    return true;
}

bool
Executor::setupBaseline()
{
    // Network-wide allocation (Section II-C): every feature-map buffer,
    // the minimal reused gradient buffers, and one workspace buffer
    // sized to the network maximum.
    bool ok = true;
    for (net::BufferId b = 0; ok && b < net::BufferId(net.numBuffers());
         ++b) {
        ok = ok && mm.allocBuffer(net, b);
        staticBuffers[std::size_t(b)] = ok;
    }
    ok = ok && allocPersistent(stats.peakGradientBytesScoped(
                                   net::NetworkStats::GradScope::Managed),
                               "grad:shared", true);
    ok = ok && allocPersistent(stats.peakGradientBytesScoped(
                                   net::NetworkStats::GradScope::Classifier),
                               "grad:classifier", false);
    ok = ok && allocPersistent(
                   stats.maxWorkspaceBytes(execPlan.algos, false),
                   "ws:shared", true);
    buffersStatic = ok;
    return ok;
}

void
Executor::teardownPartial()
{
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (std::size_t(b) < staticBuffers.size() &&
            staticBuffers[std::size_t(b)]) {
            mm.releaseBuffer(net, b);
            staticBuffers[std::size_t(b)] = false;
        }
    }
    for (const TaggedAlloc &a : persistent)
        mm.releaseDevice(a.alloc, a.managed);
    persistent.clear();
    buffersStatic = false;
}

void
Executor::teardown()
{
    VDNN_ASSERT(setupDone, "teardown() without setup()");
    teardownPartial();
    setupDone = false;
    persistentTotal = 0;
}

// --- kernel launches -----------------------------------------------------------

void
Executor::launch(const std::string &name, const dnn::OpCost &cost)
{
    gpu::KernelDesc k;
    k.name = name;
    k.duration = cost.time;
    k.flops = cost.flops;
    k.dramBytes = cost.dramBytes;
    rt.launchKernel(streamCompute, k);
}

void
Executor::launchForwardKernels(net::LayerId id)
{
    const auto &spec = net.node(id).spec;
    if (spec.kind == LayerKind::Conv) {
        launch("fwd:" + spec.name,
               cudnn.perf().convForward(
                   spec, execPlan.algos[std::size_t(id)]));
    } else {
        launch("fwd:" + spec.name, cudnn.perf().forward(spec));
    }
}

void
Executor::launchBackwardKernels(net::LayerId id)
{
    const net::LayerNode &n = net.node(id);
    const auto &spec = n.spec;
    if (spec.kind == LayerKind::Conv) {
        dnn::ConvAlgo algo = execPlan.algos[std::size_t(id)];
        launch("bwdF:" + spec.name,
               cudnn.perf().convBackwardFilter(spec, algo));
        // Data gradients are skipped for layers fed by the network
        // input: nobody consumes the input image gradient.
        if (n.xBuffer != net.inputBuffer()) {
            launch("bwdD:" + spec.name,
                   cudnn.perf().convBackwardData(spec, algo));
        }
    } else {
        launch("bwd:" + spec.name, cudnn.perf().backward(spec));
    }
}

// --- gradient buffers -------------------------------------------------------------

bool
Executor::gradientLive(net::BufferId b) const
{
    return gradients.count(b) != 0;
}

bool
Executor::allocGradient(net::BufferId b)
{
    const net::Buffer &buf = net.buffer(b);
    if (buffersStatic || buf.classifier)
        return true; // served by the static gradient region
    if (gradients.count(b))
        return true;
    auto a = mm.allocDevice(buf.bytes(), strFormat("grad:%d", b), true);
    if (!a)
        return false;
    gradients.emplace(b, TaggedAlloc{*a, true});
    return true;
}

void
Executor::releaseGradient(net::BufferId b)
{
    auto it = gradients.find(b);
    if (it == gradients.end())
        return;
    mm.releaseDevice(it->second.alloc, it->second.managed);
    gradients.erase(it);
}

// --- transfers ----------------------------------------------------------------------

bool
Executor::evictUnconsumedPrefetches(Bytes need, net::LayerId curr)
{
    // Candidates: buffers brought back by an (opportunistic) prefetch
    // whose first backward use is still ahead of the current layer.
    // Dropping their device copy is free because the pinned host copy
    // is still valid; they will be re-fetched later.
    int curr_topo = net.node(curr).topoIndex;
    bool evicted_any = false;
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (mm.pool().largestFreeBlock() >= need)
            break;
        if (!prefetchState || !prefetchState->prefetched[std::size_t(b)])
            continue;
        if (mm.residence(b) != Residence::Device || !mm.hostCopyValid(b))
            continue;
        const net::Buffer &buf = net.buffer(b);
        if (buf.bwdUsers.empty())
            continue;
        int first_use_topo = net.node(buf.bwdUsers.back()).topoIndex;
        if (first_use_topo >= curr_topo)
            continue; // in use by this or an already-running layer
        mm.evictToHost(net, b);
        prefetchState->prefetched[std::size_t(b)] = false;
        evicted_any = true;
    }
    return evicted_any;
}

bool
Executor::ensureResident(net::BufferId b, net::LayerId curr,
                         IterationResult &result)
{
    switch (mm.residence(b)) {
      case Residence::Device:
      case Residence::Offloading: // device copy still valid
        return true;
      case Residence::Host: {
        // On-demand fetch: the serialized path prefetching tries to
        // avoid (Section III-A). The backward pass blocks until the
        // copy lands.
        if (!mm.beginPrefetch(net, b)) {
            if (!evictUnconsumedPrefetches(net.buffer(b).bytes(), curr) ||
                !mm.beginPrefetch(net, b)) {
                return false;
            }
        }
        TimeNs t0 = rt.now();
        Bytes dma = execPlan.dmaBytes(b, net.buffer(b).bytes());
        rt.memcpyAsync(streamMemory, dma, CopyDir::HostToDevice,
                       strFormat("fetch:%d", b));
        rt.synchronize(streamMemory);
        mm.finishPrefetch(b);
        result.transferStallTime += rt.now() - t0;
        result.pcieBytes += dma;
        ++result.onDemandFetches;
        if (prefetchState)
            prefetchState->prefetched[std::size_t(b)] = true;
        return true;
      }
      case Residence::Prefetching:
        // In flight on stream_memory; wait for it.
        rt.synchronize(streamMemory);
        mm.finishPrefetch(b);
        return true;
      case Residence::Unallocated:
        panic("buffer %d needed but unallocated (buffer of layer flow "
              "'%s')",
              b, net.name().c_str());
    }
    return false;
}

void
Executor::processDeferredReleases(bool force)
{
    // Asynchronous-release mode (ablation): offloaded device copies are
    // released at the first synchronization point after their copy
    // completes, instead of stalling the layer boundary.
    auto it = deferredReleases.begin();
    while (it != deferredReleases.end()) {
        if (force || rt.eventFired(it->second)) {
            if (force)
                rt.synchronize(streamMemory);
            mm.finishOffload(net, it->first);
            it = deferredReleases.erase(it);
        } else {
            ++it;
        }
    }
}

void
Executor::abortIteration(IterationResult &result, const std::string &why,
                         FailKind kind, net::LayerId layer)
{
    result.ok = false;
    result.failReason = why;
    result.failKind = kind;
    result.failLayer = layer;
    // Drain all in-flight work so state machines can be forced down.
    rt.deviceSynchronize();
    deferredReleases.clear();
    for (auto &[b, alloc] : gradients)
        mm.releaseDevice(alloc.alloc, alloc.managed);
    gradients.clear();
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (!staticBuffers[std::size_t(b)])
            mm.forceRelease(net, b);
    }
    result.end = rt.now();
}

// --- forward ------------------------------------------------------------------------

bool
Executor::forwardLayer(net::LayerId id, IterationResult &result)
{
    const net::LayerNode &n = net.node(id);
    const auto &spec = n.spec;
    TimeNs t_layer_start = rt.now();

    // Input feature maps must be device-resident during forward
    // propagation (they are only ever offloaded by their last reader).
    for (net::LayerId in_id : n.inputs) {
        net::BufferId b = in_id == net::kInputLayer ? net.inputBuffer()
                                                    : net.node(in_id).yBuffer;
        Residence r = mm.residence(b);
        VDNN_ASSERT(r == Residence::Device,
                    "fwd '%s': input buffer %d not resident (state %d)",
                    spec.name.c_str(), b, int(r));
    }

    // Allocate the output feature maps (in-place layers reuse X).
    if (!spec.inPlace() &&
        mm.residence(n.yBuffer) == Residence::Unallocated) {
        if (!mm.allocBuffer(net, n.yBuffer)) {
            abortIteration(result,
                           strFormat("OOM allocating Y of '%s' (%s)",
                                     spec.name.c_str(),
                                     formatBytes(net.buffer(n.yBuffer)
                                                     .bytes())
                                         .c_str()),
                           FailKind::FeatureMap, id);
            return false;
        }
    }

    // Convolution workspace for the chosen algorithm.
    std::optional<TaggedAlloc> ws;
    Bytes ws_bytes =
        spec.kind == LayerKind::Conv && !buffersStatic
            ? dnn::convWorkspaceBytes(execPlan.algos[std::size_t(id)],
                                      spec)
            : 0;
    if (ws_bytes > 0) {
        auto a = mm.allocDevice(ws_bytes, "ws:" + spec.name,
                                !n.classifier);
        if (!a) {
            abortIteration(result,
                           strFormat("OOM allocating workspace of '%s' "
                                     "(%s)",
                                     spec.name.c_str(),
                                     formatBytes(ws_bytes).c_str()),
                           FailKind::Workspace, id);
            return false;
        }
        ws = TaggedAlloc{*a, !n.classifier};
    }

    launchForwardKernels(id);

    // Offload: issued by the last forward consumer of each input buffer
    // (the refcount rule of Fig. 3), overlapped with this layer's own
    // forward computation on stream_memory.
    std::vector<net::BufferId> offloading;
    if (!staticAlloc()) {
        for (net::LayerId in_id : n.inputs) {
            net::BufferId b = in_id == net::kInputLayer
                                  ? net.inputBuffer()
                                  : net.node(in_id).yBuffer;
            if (!execPlan.offloads(b))
                continue;
            if (net.buffer(b).lastFwdReader != id)
                continue;
            if (std::find(offloading.begin(), offloading.end(), b) !=
                offloading.end()) {
                continue;
            }
            if (!mm.beginOffload(net, b)) {
                warn("host memory exhausted; keeping buffer %d resident",
                     b);
                continue;
            }
            Bytes dma = execPlan.dmaBytes(b, net.buffer(b).bytes());
            rt.memcpyAsync(streamMemory, dma, CopyDir::DeviceToHost,
                           strFormat("offload:%d", b));
            offloading.push_back(b);
            prefetchState->offloaded[std::size_t(b)] = true;
            ++result.offloads;
            result.offloadedBytes += net.buffer(b).bytes();
            result.pcieBytes += dma;
        }
    }

    // Layer boundary: wait for the computation, and (by default) for
    // the offload so the device copy is released before the next layer
    // starts — maximizing the memory saving at the cost of the Fig. 9
    // "wasted time" when the offload outlives the computation.
    rt.synchronize(streamCompute);
    if (!offloading.empty()) {
        if (cfg.syncAtLayerBoundary) {
            TimeNs t_compute_done = rt.now();
            rt.synchronize(streamMemory);
            result.transferStallTime += rt.now() - t_compute_done;
            for (net::BufferId b : offloading)
                mm.finishOffload(net, b);
        } else {
            for (net::BufferId b : offloading) {
                gpu::CudaEventId ev = rt.createEvent();
                rt.recordEvent(streamMemory, ev);
                deferredReleases.emplace_back(b, ev);
            }
        }
    }
    processDeferredReleases(false);

    if (ws)
        mm.releaseDevice(ws->alloc, ws->managed);

    // Aggressive release: buffers whose last reader has executed and
    // that are not reused by backward propagation are freed outright.
    if (!buffersStatic) {
        for (net::LayerId in_id : n.inputs) {
            net::BufferId b = in_id == net::kInputLayer
                                  ? net.inputBuffer()
                                  : net.node(in_id).yBuffer;
            if (--remainingReaders[std::size_t(b)] > 0)
                continue;
            const net::Buffer &buf = net.buffer(b);
            if (buf.bwdUsers.empty() && !buf.classifier &&
                mm.residence(b) == Residence::Device) {
                mm.releaseBuffer(net, b);
            }
        }
    }

    LayerTiming t;
    t.id = id;
    t.fwdStart = t_layer_start;
    t.fwdEnd = rt.now();
    result.layers[std::size_t(id)] = t;
    if (n.classifier)
        result.classifierTime += t.fwdEnd - t.fwdStart;
    return true;
}

// --- backward ------------------------------------------------------------------------

bool
Executor::backwardLayer(net::LayerId id, IterationResult &result)
{
    const net::LayerNode &n = net.node(id);
    const auto &spec = n.spec;
    TimeNs t_layer_start = rt.now();

    // Residency: the layer's backward pass needs X and/or Y (Section
    // III-A); offloaded data must be fetched back before the kernels.
    if (!buffersStatic) {
        std::vector<net::BufferId> needed;
        if (spec.backwardNeedsX()) {
            for (net::LayerId in_id : n.inputs) {
                needed.push_back(in_id == net::kInputLayer
                                     ? net.inputBuffer()
                                     : net.node(in_id).yBuffer);
            }
        }
        if (spec.backwardNeedsY())
            needed.push_back(n.yBuffer);
        for (net::BufferId b : needed) {
            // A buffer prefetched during *this* layer cannot serve this
            // layer's own kernels without waiting; that only happens in
            // the degenerate single-layer-window case.
            if (!ensureResident(b, id, result)) {
                abortIteration(
                    result,
                    strFormat("OOM fetching buffer %d for '%s' backward",
                              b, spec.name.c_str()),
                    FailKind::Fetch, id);
                return false;
            }
        }

        // Gradient maps: dY must exist (allocated by this buffer's
        // consumers, or seeded here for the terminal loss layer); dX is
        // allocated on demand. The network input receives no gradient.
        auto grad_with_recovery = [&](net::BufferId b) {
            if (allocGradient(b))
                return true;
            if (!evictUnconsumedPrefetches(net.buffer(b).bytes(), id))
                return false;
            ++result.prefetchEvictions;
            return allocGradient(b);
        };
        if (!grad_with_recovery(n.yBuffer)) {
            abortIteration(result,
                           strFormat("OOM allocating dY of '%s'",
                                     spec.name.c_str()),
                           FailKind::Gradient, id);
            return false;
        }
        for (net::LayerId in_id : n.inputs) {
            if (in_id == net::kInputLayer)
                continue;
            if (!grad_with_recovery(net.node(in_id).yBuffer)) {
                abortIteration(result,
                               strFormat("OOM allocating dX of '%s'",
                                         spec.name.c_str()),
                               FailKind::Gradient, id);
                return false;
            }
        }
    }

    // Backward convolution workspace.
    std::optional<TaggedAlloc> ws;
    Bytes ws_bytes =
        spec.kind == LayerKind::Conv && !buffersStatic
            ? dnn::convWorkspaceBytes(execPlan.algos[std::size_t(id)],
                                      spec)
            : 0;
    if (ws_bytes > 0) {
        auto a = mm.allocDevice(ws_bytes, "ws:" + spec.name,
                                !n.classifier);
        if (!a && evictUnconsumedPrefetches(ws_bytes, id)) {
            ++result.prefetchEvictions;
            a = mm.allocDevice(ws_bytes, "ws:" + spec.name,
                               !n.classifier);
        }
        if (!a) {
            abortIteration(result,
                           strFormat("OOM allocating bwd workspace of "
                                     "'%s' (%s)",
                                     spec.name.c_str(),
                                     formatBytes(ws_bytes).c_str()),
                           FailKind::Workspace, id);
            return false;
        }
        ws = TaggedAlloc{*a, !n.classifier};
    }

    // Prefetch: with the layer's mandatory allocations in place, search
    // for the best preceding layer to prefetch (Fig. 10) and overlap
    // its H2D copy with this layer's backward kernels. The prefetch is
    // opportunistic: when the pool cannot host the target yet (memory
    // is at its tightest around the first conv groups' backward pass),
    // it falls back to a later on-demand fetch instead of failing the
    // iteration.
    std::vector<net::BufferId> prefetching;
    if (!staticAlloc() && cfg.prefetchEnabled) {
        PrefetchCandidate cand =
            findPrefetchLayer(net, id, *prefetchState,
                              cfg.prefetchWindowBounded, &execPlan);
        for (net::BufferId b : cand.buffers) {
            if (mm.residence(b) != Residence::Host) {
                continue; // already fetched on demand earlier
            }
            if (!mm.beginPrefetch(net, b)) {
                // No room yet; fall back to a later on-demand fetch.
                prefetchState->prefetched[std::size_t(b)] = false;
                continue;
            }
            Bytes dma = execPlan.dmaBytes(b, net.buffer(b).bytes());
            rt.memcpyAsync(streamMemory, dma, CopyDir::HostToDevice,
                           strFormat("prefetch:%d", b));
            prefetching.push_back(b);
            ++result.prefetches;
            result.pcieBytes += dma;
        }
    }

    TimeNs t_kernels = rt.now();
    launchBackwardKernels(id);

    // Layer boundary: wait for computation and any prefetch launched
    // during it, guaranteeing the prefetched data is ready before the
    // preceding layer's backward computation (Section III-B).
    rt.synchronize(streamCompute);
    if (!prefetching.empty()) {
        TimeNs t_compute_done = rt.now();
        rt.synchronize(streamMemory);
        result.transferStallTime += rt.now() - t_compute_done;
        for (net::BufferId b : prefetching)
            mm.finishPrefetch(b);
    }
    processDeferredReleases(false);

    if (ws)
        mm.releaseDevice(ws->alloc, ws->managed);

    if (!buffersStatic) {
        // dY fully consumed once this buffer's producer has run.
        if (net.buffer(n.yBuffer).producer == id)
            releaseGradient(n.yBuffer);
        // Feature maps whose last backward user just executed are
        // released immediately (Fig. 8).
        for (net::BufferId b : bwdReleaseAt[std::size_t(id)]) {
            if (!staticBuffers[std::size_t(b)] &&
                mm.residence(b) == Residence::Device) {
                mm.releaseBuffer(net, b);
            }
        }
    }

    LayerTiming &t = result.layers[std::size_t(id)];
    t.bwdStart = t_kernels;
    t.bwdEnd = rt.now();
    if (n.classifier)
        result.classifierTime += t.bwdEnd - t_layer_start;
    return true;
}

// --- iteration driver ---------------------------------------------------------------

IterationResult
Executor::runIteration()
{
    VDNN_ASSERT(setupDone, "runIteration() before setup()");

    IterationResult result;
    result.layers.assign(net.numLayers(), LayerTiming{});
    gradients.clear();
    deferredReleases.clear();
    remainingReaders.assign(net.numBuffers(), 0);
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b)
        remainingReaders[std::size_t(b)] = net.buffer(b).refCount;
    prefetchState.emplace(net.numBuffers());

    result.start = rt.now();

    // Materialize the input batch (static under the baseline policy).
    if (!buffersStatic &&
        mm.residence(net.inputBuffer()) == Residence::Unallocated) {
        if (!mm.allocBuffer(net, net.inputBuffer())) {
            abortIteration(result, "OOM allocating the input batch",
                           FailKind::FeatureMap, net::kInputLayer);
            return result;
        }
    }

    for (net::LayerId id : net.topoOrder()) {
        if (!forwardLayer(id, result))
            return result;
    }
    // Any deferred (asynchronous) offload releases must land before
    // backward propagation starts reusing the buffers.
    processDeferredReleases(true);
    for (auto it = net.topoOrder().rbegin(); it != net.topoOrder().rend();
         ++it) {
        if (!backwardLayer(*it, result))
            return result;
    }

    processDeferredReleases(true);
    rt.deviceSynchronize();
    result.end = rt.now();

    // Steady-state invariant: everything allocated inside the iteration
    // has been returned to the pool.
    VDNN_ASSERT(gradients.empty(), "gradient buffers leaked");
    VDNN_ASSERT(mm.deviceUsage() == persistentTotal,
                "tenant usage %lld != persistent %lld after iteration",
                (long long)mm.deviceUsage(),
                (long long)persistentTotal);

    result.ok = true;
    return result;
}

} // namespace vdnn::core
