/**
 * @file
 * Multi-device serving: throughput scaling and rebalance migration.
 *
 * vDNN virtualizes one GPU's memory; the cluster layer pluralizes the
 * device. This bench checks the two headline claims of the
 * multi-device scheduler (gpu/cluster.hh + serve/placement.hh):
 *
 * Scenario A — aggregate-throughput scaling: 16 mixed VGG-16 (64) /
 * AlexNet (128) / OverFeat (128) vDNN_all (m) tenants arrive in a
 * burst and are served by 1, 2 and 4 simulated 12 GB Titan X devices
 * (load-balance placement, round-robin packing per device, rebalance
 * migration smoothing the drain tail). Each device contributes an
 * independent compute engine, pool and PCIe link on one shared
 * clock, so completed iterations per second should scale
 * near-linearly: >= 1.8x at 2 devices and >= 3.2x at 4.
 *
 * Scenario A2 — cluster-native PackedOverlap: the unified serve
 * engine steps one resumable stepper per admitted tenant per device,
 * so the bench_overlap_serve overlap workload doubled onto two
 * devices must reach >= 0.95 mean per-device compute utilization —
 * co-tenant compute ops dispatch under every DMA-join stall that
 * leaves round-robin iteration interleave idling.
 *
 * Scenario B — migration on imbalance: the shipped skewed arrival
 * trace (bench/traces/skewed_arrivals.csv, replayed through
 * serve::TraceArrivals) front-loads a burst that static best-fit
 * placement consolidates onto one device while its sibling idles.
 * The rebalance sweep (Session::migrate: suspend -> evict-to-host ->
 * re-plan and resume on the target) repairs exactly that: best-fit
 * *with* migration — and load-balance placement with migration —
 * must beat static best-fit mean JCT.
 *
 * `bench_cluster smoke` replays the trace on 2 devices to completion
 * and exits (the CI Release smoke stage). `bench_cluster --trace
 * out.json` replays it with telemetry on and writes a Chrome
 * trace-event timeline (chrome://tracing / Perfetto): one process
 * track per device, one thread lane per tenant, migration flow
 * arrows from the source eviction to the target admission.
 */

#include "bench_common.hh"

#include "check/ledger_auditor.hh"
#include "common/units.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/arrival.hh"
#include "serve/placement.hh"
#include "serve/scheduler.hh"

#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace vdnn;
using namespace vdnn::bench;
using namespace vdnn::literals;
using namespace vdnn::serve;

namespace
{

// --- workload construction ---------------------------------------------------

/** "vgg16:64" -> buildVgg16(64); networks cached per label. */
std::shared_ptr<const net::Network>
netForLabel(const std::string &label)
{
    static std::map<std::string, std::shared_ptr<const net::Network>>
        cache;
    auto it = cache.find(label);
    if (it != cache.end())
        return it->second;

    std::size_t colon = label.find(':');
    VDNN_ASSERT(colon != std::string::npos,
                "net label '%s' wants builder:batch", label.c_str());
    std::string builder = label.substr(0, colon);
    std::int64_t batch = std::atoll(label.c_str() + colon + 1);
    std::shared_ptr<const net::Network> net;
    if (builder == "vgg16")
        net = net::buildVgg16(batch);
    else if (builder == "alexnet")
        net = net::buildAlexNet(batch);
    else if (builder == "overfeat")
        net = net::buildOverFeat(batch);
    else if (builder == "googlenet")
        net = net::buildGoogLeNet(batch);
    else
        panic("unknown net builder '%s'", builder.c_str());
    cache.emplace(label, net);
    return net;
}

std::shared_ptr<core::Planner>
plannerForLabel(const std::string &label)
{
    if (label == "vdnn_all")
        return offloadAllPlanner();
    if (label == "vdnn_conv")
        return offloadConvPlanner();
    if (label == "vdnn_dyn")
        return dynamicPlanner();
    if (label == "baseline")
        return baselinePlanner(core::AlgoPreference::MemoryOptimal);
    if (label == "cdma") {
        return std::make_shared<core::CompressedOffloadPlanner>(
            core::AlgoPreference::MemoryOptimal);
    }
    panic("unknown planner label '%s'", label.c_str());
}

std::vector<JobSpec>
jobsFromTrace(const TraceArrivals &trace)
{
    std::vector<JobSpec> specs;
    int i = 0;
    for (const TraceEntry &e : trace.entries()) {
        JobSpec spec;
        spec.name = strFormat("t%02d-%s", i++, e.net.c_str());
        spec.network = netForLabel(e.net);
        spec.planner = plannerForLabel(e.planner);
        spec.priority = e.priority;
        spec.arrival = e.submit;
        spec.iterations = e.iterations;
        specs.push_back(std::move(spec));
    }
    return specs;
}

TraceArrivals
loadSkewedTrace()
{
    TraceArrivals trace = TraceArrivals::load(
        VDNN_SOURCE_DIR "/bench/traces/skewed_arrivals.csv");
    VDNN_ASSERT(trace.ok(), "%s", trace.error().c_str());
    return trace;
}

/** The 16-tenant burst mix of Scenario A. */
std::vector<JobSpec>
burstMix()
{
    const char *nets[] = {"vgg16:64", "alexnet:128", "overfeat:128",
                          "alexnet:128"};
    std::vector<JobSpec> specs;
    for (int i = 0; i < 16; ++i) {
        JobSpec spec;
        spec.name = strFormat("mix-%02d", i);
        spec.network = netForLabel(nets[i % 4]);
        spec.planner = offloadAllPlanner();
        // A dense burst: everyone is queued within the first 150 ms,
        // so every device has tenants for the whole run.
        spec.arrival = TimeNs(i) * 10 * kNsPerMs;
        spec.iterations = 3 + i % 3;
        specs.push_back(std::move(spec));
    }
    return specs;
}

/**
 * Scenario A2's mix: bench_overlap_serve's single-device overlap
 * workload (VGG-16 (64) / AlexNet (128) vDNN_all tenants, two
 * long-running anchors plus a stream of short arrivals) doubled onto
 * two devices. PackedOverlap's sum-of-transients admission keeps ~5
 * tenants resident per device — enough ready co-tenants to fill every
 * DMA-join stall without over-subscribing the per-device PCIe link.
 */
std::vector<JobSpec>
denseMix()
{
    // Submitted in same-shape pairs: count-based load-balance
    // placement alternates devices on a burst, so pairing keeps each
    // device's VGG/AlexNet mix — and total work — identical (a lone
    // VGG-16 imbalance is ~10 AlexNet iterations of skew).
    const char *nets[] = {"vgg16:64", "alexnet:128"};
    std::vector<JobSpec> specs;
    for (int i = 0; i < 16; ++i) {
        int pair = i / 2;
        JobSpec spec;
        spec.name = strFormat("dense-%02d", i);
        spec.network = netForLabel(nets[pair % 2]);
        spec.planner = offloadAllPlanner();
        spec.arrival = TimeNs(i) * 50 * kNsPerMs;
        spec.iterations = pair == 0 ? 8 : 2 + pair % 3;
        specs.push_back(std::move(spec));
    }
    return specs;
}

ServeReport
runScaling(int ndev,
           SchedPolicy policy = SchedPolicy::RoundRobin)
{
    SchedulerConfig cfg;
    cfg.policy = policy;
    cfg.devices.assign(std::size_t(ndev), cfg.gpu);
    cfg.placement = std::make_shared<LoadBalancePlacement>();
    // Placement balances tenant *counts*; per-tenant work still
    // differs (a VGG-16 iteration is ~10x an AlexNet one), so the
    // drain leaves stragglers piled on one device while its siblings
    // idle. The rebalance sweep converts that queue-depth imbalance
    // into migrations, which is what keeps the scaling near-linear.
    cfg.rebalancePeriod = 250 * kNsPerMs;
    cfg.rebalanceThreshold = 2;
    Scheduler sched(cfg);
    for (JobSpec &spec : burstMix())
        sched.submit(std::move(spec));
    return sched.run();
}

ServeReport
runDense(int ndev, SchedPolicy policy)
{
    SchedulerConfig cfg;
    cfg.policy = policy;
    cfg.devices.assign(std::size_t(ndev), cfg.gpu);
    cfg.placement = std::make_shared<LoadBalancePlacement>();
    Scheduler sched(cfg);
    for (JobSpec &spec : denseMix())
        sched.submit(std::move(spec));
    return sched.run();
}

ServeReport
runTrace(std::shared_ptr<PlacementPolicy> placement, bool rebalance,
         int ndev = 2)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.devices.assign(std::size_t(ndev), cfg.gpu);
    cfg.placement = std::move(placement);
    if (rebalance) {
        cfg.rebalancePeriod = 100 * kNsPerMs;
        cfg.rebalanceThreshold = 2;
    }
    Scheduler sched(cfg);
    for (JobSpec &spec : jobsFromTrace(loadSkewedTrace()))
        sched.submit(std::move(spec));
    return sched.run();
}

int
totalMigrations(const ServeReport &rep)
{
    int n = 0;
    for (const JobOutcome &j : rep.jobs)
        n += j.migrations;
    return n;
}

// --- scenario A: throughput scaling ------------------------------------------

void
scenarioA()
{
    ServeReport one = runScaling(1);
    ServeReport two = runScaling(2);
    ServeReport four = runScaling(4);
    // Cluster-native PackedOverlap: the unified engine steps one
    // resumable stepper per tenant per device, so whenever a tenant
    // blocks on a DMA join the next ready co-tenant's compute op
    // dispatches under it — the round-robin iteration interleave
    // above leaves each device idle for exactly those joins.
    ServeReport two_packed =
        runScaling(2, SchedPolicy::PackedOverlap);
    ServeReport four_packed =
        runScaling(4, SchedPolicy::PackedOverlap);

    double t1 = one.aggregateThroughput();
    double t2 = two.aggregateThroughput();
    double t4 = four.aggregateThroughput();

    stats::Table table("Scenario A: 16 mixed vDNN_all tenants on 1/2/4 "
                       "x 12 GB Titan X (load-balance placement + "
                       "rebalance migration)");
    table.setColumns({"config", "finished", "makespan (s)",
                      "throughput (iters/s)", "scaling",
                      "mean JCT (s)", "compute util"});
    struct Row
    {
        const char *label;
        const ServeReport *rep;
        double thru;
    };
    const Row rows[] = {
        {"1 dev, round-robin", &one, t1},
        {"2 dev, round-robin", &two, t2},
        {"4 dev, round-robin", &four, t4},
        {"2 dev, packed-overlap", &two_packed,
         two_packed.aggregateThroughput()},
        {"4 dev, packed-overlap", &four_packed,
         four_packed.aggregateThroughput()}};
    for (const Row &r : rows) {
        table.addRow(
            {r.label, stats::Table::cellInt(r.rep->finishedCount()),
             stats::Table::cell(toSeconds(r.rep->makespan), 1),
             stats::Table::cell(r.thru, 2),
             stats::Table::cell(r.thru / t1, 2),
             stats::Table::cell(toSeconds(r.rep->meanJct()), 1),
             stats::Table::cell(r.rep->computeUtilization(), 3)});
    }
    table.print();

    stats::Comparison cmp("Multi-device aggregate-throughput scaling");
    cmp.addBool("every tenant finishes on every cluster size", true,
                one.finishedCount() == 16 && two.finishedCount() == 16 &&
                    four.finishedCount() == 16);
    cmp.addNumeric("2-device scaling (want >= 1.8x)", 2.0, t2 / t1,
                   0.10);
    cmp.addNumeric("4-device scaling (want >= 3.2x)", 4.0, t4 / t1,
                   0.20);
    cmp.addBool("per-device ledgers balance to zero", true,
                one.reservedBytesAtEnd == 0 &&
                    two.reservedBytesAtEnd == 0 &&
                    four.reservedBytesAtEnd == 0);
    cmp.addBool("packed-overlap drains the burst on every cluster "
                "size",
                true,
                two_packed.finishedCount() == 16 &&
                    four_packed.finishedCount() == 16);
    cmp.addBool("packing beats iteration interleave on mean JCT at "
                "every size",
                true,
                two_packed.meanJct() < two.meanJct() &&
                    four_packed.meanJct() < four.meanJct());
    cmp.print();

    recordServeMetrics("scaling.1dev", one);
    recordServeMetrics("scaling.2dev", two);
    recordServeMetrics("scaling.4dev", four);
    recordServeMetrics("scaling.2dev_packed", two_packed);
    recordServeMetrics("scaling.4dev_packed", four_packed);
    recordBenchMetric("scaling.2dev.speedup", t2 / t1);
    recordBenchMetric("scaling.4dev.speedup", t4 / t1);
    recordBenchMetric("scaling.2dev_packed.compute_util",
                      two_packed.computeUtilization());
    recordBenchMetric("scaling.4dev_packed.compute_util",
                      four_packed.computeUtilization());
}

// --- scenario A2: packed density = utilization -------------------------------

void
scenarioA2()
{
    ServeReport rr = runDense(2, SchedPolicy::RoundRobin);
    ServeReport packed = runDense(2, SchedPolicy::PackedOverlap);

    stats::Table table("Scenario A2: 16 VGG-16/AlexNet vDNN_all "
                       "tenants on 2 x 12 GB Titan X (work-balanced "
                       "paired placement)");
    table.setColumns({"config", "finished", "makespan (s)",
                      "throughput (iters/s)", "mean JCT (s)",
                      "compute util"});
    struct Row
    {
        const char *label;
        const ServeReport *rep;
    };
    const Row rows[] = {{"round-robin interleave", &rr},
                        {"packed-overlap", &packed}};
    for (const Row &r : rows) {
        table.addRow(
            {r.label, stats::Table::cellInt(r.rep->finishedCount()),
             stats::Table::cell(toSeconds(r.rep->makespan), 1),
             stats::Table::cell(r.rep->aggregateThroughput(), 2),
             stats::Table::cell(toSeconds(r.rep->meanJct()), 1),
             stats::Table::cell(r.rep->computeUtilization(), 3)});
    }
    table.print();

    stats::Comparison cmp("Cluster-native PackedOverlap utilization");
    cmp.addBool("every dense tenant finishes under both policies",
                true,
                rr.finishedCount() == int(rr.jobs.size()) &&
                    packed.finishedCount() == int(packed.jobs.size()));
    cmp.addNumeric("packed 2-device compute util (want >= 0.95)", 1.0,
                   packed.computeUtilization(), 0.05);
    cmp.addBool("packing lifts util over iteration interleave", true,
                packed.computeUtilization() >
                    rr.computeUtilization());
    cmp.addBool("ledgers balance to zero", true,
                packed.reservedBytesAtEnd == 0 &&
                    packed.evictedLedgerAtEnd == 0 &&
                    rr.reservedBytesAtEnd == 0 &&
                    rr.evictedLedgerAtEnd == 0);
    cmp.print();

    recordServeMetrics("dense.2dev_rr", rr);
    recordServeMetrics("dense.2dev_packed", packed);
    recordBenchMetric("dense.2dev_packed.compute_util",
                      packed.computeUtilization());
    recordBenchMetric("dense.2dev_rr.compute_util",
                      rr.computeUtilization());
}

// --- scenario B: migration on imbalance --------------------------------------

void
scenarioB()
{
    ServeReport best = runTrace(std::make_shared<BestFitPlacement>(),
                                /*rebalance=*/false);
    ServeReport best_mig = runTrace(std::make_shared<BestFitPlacement>(),
                                    /*rebalance=*/true);
    ServeReport lb_mig =
        runTrace(std::make_shared<LoadBalancePlacement>(),
                 /*rebalance=*/true);

    stats::Table table("Scenario B: skewed arrival trace "
                       "(bench/traces/skewed_arrivals.csv) on 2 x 12 GB "
                       "Titan X");
    table.setColumns({"config", "finished", "mean JCT (s)",
                      "p99 JCT (s)", "makespan (s)", "migrations",
                      "dev0/dev1 placed"});
    struct Row
    {
        const char *label;
        const ServeReport *rep;
    };
    const Row rows[] = {{"best-fit, static", &best},
                        {"best-fit + rebalance", &best_mig},
                        {"load-balance + rebalance", &lb_mig}};
    for (const Row &r : rows) {
        table.addRow(
            {r.label, stats::Table::cellInt(r.rep->finishedCount()),
             stats::Table::cell(toSeconds(r.rep->meanJct()), 1),
             stats::Table::cell(toSeconds(r.rep->p99Jct()), 1),
             stats::Table::cell(toSeconds(r.rep->makespan), 1),
             stats::Table::cellInt(totalMigrations(*r.rep)),
             strFormat("%d/%d", r.rep->devices[0].jobsPlaced,
                       r.rep->devices[1].jobsPlaced)});
    }
    table.print();

    stats::Comparison cmp("Migration on imbalance (Gandiva-style)");
    cmp.addBool("every trace job finishes in every config", true,
                best.finishedCount() == int(best.jobs.size()) &&
                    best_mig.finishedCount() == int(best.jobs.size()) &&
                    lb_mig.finishedCount() == int(best.jobs.size()));
    cmp.addBool("static best-fit consolidates the burst onto one "
                "device",
                true,
                best.devices[0].jobsPlaced == int(best.jobs.size()) ||
                    best.devices[1].jobsPlaced ==
                        int(best.jobs.size()));
    cmp.addBool("the rebalance sweep migrates tenants", true,
                totalMigrations(best_mig) > 0);
    cmp.addBool("best-fit + migration beats static best-fit mean JCT",
                true, best_mig.meanJct() < best.meanJct());
    cmp.addBool("load-balance + migration beats static best-fit mean "
                "JCT",
                true, lb_mig.meanJct() < best.meanJct());
    cmp.addBool("ledgers balance to zero after migrations", true,
                best_mig.reservedBytesAtEnd == 0 &&
                    best_mig.evictedLedgerAtEnd == 0 &&
                    lb_mig.reservedBytesAtEnd == 0 &&
                    lb_mig.evictedLedgerAtEnd == 0);
    cmp.print();

    recordServeMetrics("skewed.bestfit", best);
    recordServeMetrics("skewed.bestfit_rebalance", best_mig);
    recordBenchMetric("skewed.bestfit_rebalance.migrations",
                      double(totalMigrations(best_mig)));
}

void
report()
{
    scenarioA();
    std::printf("\n");
    scenarioA2();
    std::printf("\n");
    scenarioB();
}

int
traceMode(const char *path)
{
    // The migration-rich Scenario B config with telemetry on: every
    // kernel, DMA, iteration, arbiter grant and scheduler decision
    // lands on the timeline; rebalance migrations draw flow arrows.
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.devices.assign(2, cfg.gpu);
    cfg.placement = std::make_shared<BestFitPlacement>();
    cfg.rebalancePeriod = 100 * kNsPerMs;
    cfg.rebalanceThreshold = 2;
    cfg.telemetry.trace = &trace;
    cfg.telemetry.metrics = &metrics;
    Scheduler sched(cfg);
    for (JobSpec &spec : jobsFromTrace(loadSkewedTrace()))
        sched.submit(std::move(spec));
    ServeReport rep = sched.run();

    if (!trace.writeJsonFile(path)) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::printf("wrote %zu trace events to %s (%d jobs finished, %d "
                "migrations)\n",
                trace.eventCount(), path, rep.finishedCount(),
                totalMigrations(rep));
    metrics.writeSnapshot(std::cout, sched.runtime().now());
    return rep.finishedCount() == int(rep.jobs.size()) ? 0 : 1;
}

int
smoke()
{
    // The trace replayed on 2 devices with migration, run to
    // completion (the CI Release smoke stage).
    ServeReport rep = runTrace(std::make_shared<BestFitPlacement>(),
                               /*rebalance=*/true);
    rep.summaryTable().print();
    rep.deviceTable().print();
    check::CheckResult audit = check::auditLedger(rep);
    if (!audit.ok())
        std::printf("ledger audit:\n%s", audit.report().c_str());
    bool ok = rep.finishedCount() == int(rep.jobs.size()) &&
              rep.reservedBytesAtEnd == 0 &&
              rep.evictedLedgerAtEnd == 0 &&
              totalMigrations(rep) > 0 && audit.ok();
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "smoke") == 0) {
        setQuiet(true);
        return smoke();
    }
    if (argc > 2 && std::strcmp(argv[1], "--trace") == 0) {
        setQuiet(true);
        return traceMode(argv[2]);
    }
    registerSim("cluster/16_tenants_2dev_loadbalance",
                [] { runScaling(2); });
    registerSim("cluster/16_tenants_2dev_packed_overlap",
                [] { runDense(2, SchedPolicy::PackedOverlap); });
    registerSim("cluster/skewed_trace_bestfit_rebalance", [] {
        runTrace(std::make_shared<BestFitPlacement>(), true);
    });
    return benchMain(argc, argv, report);
}
