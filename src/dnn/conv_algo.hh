/**
 * @file
 * Convolution algorithm models (cuDNN 4.0 style).
 *
 * cuDNN 4.0 exposes six-plus convolution algorithms that trade workspace
 * memory for speed (Section II-B, footnote 2). The two poles the paper
 * leans on are:
 *
 *  - IMPLICIT_GEMM: the memory-optimal algorithm — zero workspace but
 *    the slowest (this is vDNN's "(m)" configuration);
 *  - FFT / FFT_TILING / WINOGRAD: the performance-optimal algorithms —
 *    up to ~2-3x faster but requiring large temporary workspace to hold
 *    transformed feature maps ("(p)").
 *
 * Each algorithm is modelled by (a) an applicability predicate on the
 * layer geometry, (b) a workspace size formula, and (c) an efficiency
 * factor (fraction of the device's peak FLOP/s achieved when executing
 * direct-convolution-equivalent FLOPs). Efficiency factors are
 * calibrated against published Titan X / cuDNN-4 convnet-benchmarks
 * results (see DESIGN.md).
 */

#ifndef VDNN_DNN_CONV_ALGO_HH
#define VDNN_DNN_CONV_ALGO_HH

#include "common/types.hh"
#include "dnn/layer.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace vdnn::dnn
{

enum class ConvAlgo : std::uint8_t
{
    ImplicitGemm,        ///< zero workspace, slowest (memory-optimal)
    ImplicitPrecompGemm, ///< small index workspace
    Gemm,                ///< explicit im2col, workspace = lowered matrix
    Direct,              ///< direct convolution, no workspace
    Fft,                 ///< full-tensor FFT, largest workspace
    FftTiling,           ///< tiled FFT, large workspace
    Winograd,            ///< Winograd F(2x2,3x3), large workspace
};

/** All algorithms, in cuDNN enumeration order. */
const std::vector<ConvAlgo> &allConvAlgos();

/** Human readable name ("IMPLICIT_GEMM", ...). */
const char *convAlgoName(ConvAlgo algo);

/** The memory-optimal algorithm (never requires workspace). */
inline constexpr ConvAlgo kMemoryOptimalAlgo = ConvAlgo::ImplicitGemm;

/**
 * Can @p algo execute this convolution? (FFT-family algorithms require
 * unit stride; Winograd additionally requires 3x3 filters; full FFT is
 * limited to moderate filter sizes.)
 */
bool convAlgoApplicable(ConvAlgo algo, const LayerSpec &layer);

/**
 * Forward workspace bytes for @p algo on @p layer. Backward data/filter
 * passes are modelled with the same workspace requirement (cuDNN sizes
 * them separately but of the same magnitude; vDNN allocates the max).
 */
Bytes convWorkspaceBytes(ConvAlgo algo, const LayerSpec &layer);

/**
 * Fraction of device peak FLOP/s achieved by @p algo on @p layer, in
 * direct-convolution FLOP terms. Transform-domain algorithms can exceed
 * the efficiency of GEMM-based ones because they do less real work.
 */
double convAlgoEfficiency(ConvAlgo algo, const LayerSpec &layer);

} // namespace vdnn::dnn

#endif // VDNN_DNN_CONV_ALGO_HH
