/**
 * @file
 * Builders for the ten DNN benchmarks of the paper (Section IV-C).
 *
 * Conventional DNNs (geometries follow the convnet-benchmarks reference
 * models the paper uses):
 *  - AlexNet, "one weird trick" single-tower variant, batch 128
 *  - OverFeat, fast model, batch 128
 *  - GoogLeNet v1 (all 9 inception modules, fork/join graph), batch 128
 *  - VGG-16 (configuration D), batch 64 / 128 / 256
 *
 * Very deep networks (Section IV-C "Very Deep Networks"): VGG-style
 * networks extended from 16 to 116/216/316/416 CONV layers by adding 20
 * CONV layers per +100 to each of the five CONV groups, batch 32.
 */

#ifndef VDNN_NET_BUILDERS_HH
#define VDNN_NET_BUILDERS_HH

#include "net/network.hh"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace vdnn::net
{

/** AlexNet (one-weird-trick variant): 5 CONV + 3 FC, 227x227 input. */
std::unique_ptr<Network> buildAlexNet(std::int64_t batch);

/** OverFeat (fast): 5 CONV + 3 FC, 231x231 input. */
std::unique_ptr<Network> buildOverFeat(std::int64_t batch);

/** GoogLeNet v1: 57 CONV + 1 FC with inception fork/join modules. */
std::unique_ptr<Network> buildGoogLeNet(std::int64_t batch);

/** VGG-16 (configuration D): 13+3 stacked 3x3 CONV + 3 FC. */
std::unique_ptr<Network> buildVgg16(std::int64_t batch);

/**
 * VGG-style very deep network with @p conv_layers total CONV layers
 * (16 + multiple of 100: each +100 adds 20 CONV layers to each of the
 * five groups). Valid inputs: 16, 116, 216, 316, 416.
 */
std::unique_ptr<Network> buildVggDeep(int conv_layers, std::int64_t batch);

/** A small synthetic linear CNN for tests and the quickstart example. */
std::unique_ptr<Network> buildTinyCnn(std::int64_t batch,
                                      std::int64_t image = 32);

/** Named benchmark suite entry. */
struct BenchmarkNet
{
    std::string name;
    std::function<std::unique_ptr<Network>()> build;
};

/** The six conventional configurations of Figs. 11/12/14. */
std::vector<BenchmarkNet> conventionalSuite();

/** The four very deep configurations of Fig. 15 (batch 32). */
std::vector<BenchmarkNet> veryDeepSuite();

/** All ten studied DNNs (Fig. 1 / Fig. 4). */
std::vector<BenchmarkNet> fullSuite();

} // namespace vdnn::net

#endif // VDNN_NET_BUILDERS_HH
