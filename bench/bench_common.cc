#include "bench_common.hh"

#include "common/logging.hh"

#include <memory>
#include <vector>

namespace vdnn::bench
{

const std::vector<PolicyPoint> &
figurePolicyGrid()
{
    using core::AlgoMode;
    using core::TransferPolicy;
    static const std::vector<PolicyPoint> grid = {
        {TransferPolicy::OffloadAll, AlgoMode::MemoryOptimal,
         "all (m)"},
        {TransferPolicy::OffloadAll, AlgoMode::PerformanceOptimal,
         "all (p)"},
        {TransferPolicy::OffloadConv, AlgoMode::MemoryOptimal,
         "conv (m)"},
        {TransferPolicy::OffloadConv, AlgoMode::PerformanceOptimal,
         "conv (p)"},
        {TransferPolicy::Dynamic, AlgoMode::PerformanceOptimal, "dyn"},
        {TransferPolicy::Baseline, AlgoMode::MemoryOptimal, "base (m)"},
        {TransferPolicy::Baseline, AlgoMode::PerformanceOptimal,
         "base (p)"},
    };
    return grid;
}

core::SessionResult
runPoint(const net::Network &net, core::TransferPolicy policy,
         core::AlgoMode mode, bool oracle)
{
    return runPlanner(net, core::plannerForPolicy(policy, mode),
                      oracle);
}

core::SessionResult
runPlanner(const net::Network &net,
           std::shared_ptr<core::Planner> planner, bool oracle)
{
    core::SessionConfig cfg;
    cfg.planner = std::move(planner);
    cfg.oracle = oracle;
    return core::runSession(net, cfg);
}

namespace
{

std::vector<std::pair<std::string, std::function<void()>>> &
registry()
{
    static std::vector<std::pair<std::string, std::function<void()>>> r;
    return r;
}

void
runRegistered(benchmark::State &state, const std::function<void()> &fn)
{
    for (auto _ : state) {
        fn();
        benchmark::ClobberMemory();
    }
}

} // namespace

void
registerSim(const std::string &name, std::function<void()> fn)
{
    registry().emplace_back(name, std::move(fn));
}

int
benchMain(int argc, char **argv, std::function<void()> report)
{
    // Keep stdout clean for the figure tables.
    setQuiet(true);
    benchmark::Initialize(&argc, argv);

    report();

    for (auto &[name, fn] : registry()) {
        benchmark::RegisterBenchmark(
            name.c_str(), [fn = fn](benchmark::State &state) {
                runRegistered(state, fn);
            })
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace vdnn::bench
