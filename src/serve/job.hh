/**
 * @file
 * Multi-tenant serving: jobs and the arrival queue.
 *
 * A Job is one tenant's training request against the shared GPU: a
 * network, a memory Planner, a priority, an arrival time and an
 * iteration budget. The Scheduler drives each admitted job through
 * the core::Session lifecycle state machine
 *
 *   Queued -> Admitted/Running <-> Suspended(resident)
 *                                  <-> Evicted(host) -> Finished/Failed
 *
 * (suspend/evict/resume under SchedPolicy::PreemptivePriority);
 * JobRecord captures the timestamps the serving metrics (queueing
 * delay, job completion time) are computed from.
 */

#ifndef VDNN_SERVE_JOB_HH
#define VDNN_SERVE_JOB_HH

#include "core/training_session.hh"
#include "net/network.hh"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace vdnn::serve
{

using JobId = int;

enum class JobState : std::uint8_t
{
    Pending,   ///< submitted, arrival time not reached yet
    Queued,    ///< arrived, waiting for admission
    Running,   ///< admitted; session active on the shared device
    Suspended, ///< preempted; device share retained, no steps offered
    Evicted,   ///< preempted; device share released, state on host
    Finished,  ///< iteration budget completed
    Failed,    ///< gave up after repeated in-flight OOM aborts
    Rejected   ///< can never fit the device, even alone
};

const char *jobStateName(JobState s);

/** A job still occupying (or entitled to re-occupy) the system. */
bool jobStateLive(JobState s);

/** One tenant's training request. */
struct JobSpec
{
    std::string name;
    std::shared_ptr<const net::Network> network;
    /**
     * The memory planner this tenant trains under. When null,
     * submission defaults to OffloadAllPlanner (vDNN_all,
     * memory-optimal algorithms).
     */
    std::shared_ptr<core::Planner> planner;
    core::ExecutorConfig exec;
    /**
     * Scheduling priority (higher = more important). Under
     * SchedPolicy::PreemptivePriority a higher-priority arrival that
     * fails admission preempts (suspend -> evict) the lowest-priority
     * running tenants until it fits.
     */
    int priority = 0;
    /**
     * Priority aging (starvation control): a queued job's *effective*
     * priority grows by this much per second of queue wait, so a
     * low-priority job facing a hostile stream of high-priority
     * arrivals eventually sorts ahead of them — and, under
     * PreemptivePriority, eventually out-preempts them. 0 (the
     * default) disables aging; running jobs never age.
     */
    double agingRatePerSec = 0.0;
    /** Simulated time the job enters the system. */
    TimeNs arrival = 0;
    /** Training iterations requested. */
    int iterations = 1;
    /**
     * Job-completion-time service-level objective (arrival to
     * finish), 0 = none. Purely observational: the scheduler never
     * consults it, but ServeReport::sloAttainment() reports the
     * fraction of SLO-carrying jobs that finished within theirs —
     * the scenario generator's headline quality metric.
     */
    TimeNs sloJct = 0;
};

/** Scheduler-maintained lifecycle record of one job. */
struct JobRecord
{
    JobState state = JobState::Pending;
    TimeNs admitTime = kTimeNone;
    /** First time an iteration of this job was dispatched. */
    TimeNs firstDispatchTime = kTimeNone;
    TimeNs finishTime = kTimeNone;
    int itersDone = 0;
    /** Times the job was torn down and requeued after an OOM abort. */
    int oomRequeues = 0;
    /** Times the job was preempted (suspend -> evict) by a
     *  higher-priority arrival. */
    int preemptions = 0;
    /** Mid-run in-place re-plans (grow-back sweeps). */
    int replans = 0;
    /** Cross-device rebalance migrations. */
    int migrations = 0;
    /** Times this tenant's cold buffers were paged out to make room
     *  for a co-tenant (Salus-style buffer-granularity eviction). */
    int pageOuts = 0;
    /** Tenants this job preempted (evicted) to get admitted. Jobs
     *  with a nonzero count contribute a preemption-latency sample
     *  (arrival to first dispatch) to the report. */
    int victimsPreempted = 0;
    /**
     * Priority-aging bookkeeping: wait accrued over completed
     * Queued/Evicted spells, and the start of the current spell
     * (kTimeNone while the job is running). The earned boost is
     * *retained* while running — otherwise the next hostile arrival
     * would instantly re-preempt a job that aged its way in, and the
     * starvation aging exists to bound would continue.
     */
    TimeNs agedWait = 0;
    TimeNs waitingSince = kTimeNone;
    /** Device the job is homed on (-1 before first admission). */
    int deviceId = -1;
    /** Every device the job was placed on, in order. */
    std::vector<int> placements;
    std::string failReason;

    Bytes persistentBytes = 0;
    /** Peak bytes this tenant held in the shared pool(s). */
    Bytes peakPoolBytes = 0;
    Bytes offloadedBytes = 0;
    /** Offload traffic accrued on devices the job has migrated off
     *  (its live MemoryManager counts the current device only). */
    Bytes offloadedBytesPrior = 0;
    /**
     * Sum of the job's own iteration windows [start, end). Time the
     * job spends admitted with no iteration in flight — e.g. the
     * device clock advancing to the next sparse arrival — is never
     * billed here. Under packed overlap an iteration window includes
     * co-tenant interleaving, so it measures occupancy, not exclusive
     * compute.
     */
    TimeNs serviceTime = 0;
};

/**
 * Measured device footprint adopted after first-iteration profiling
 * (mirrors admission's FootprintEstimate split, which lives above this
 * header; the scheduler converts between the two).
 */
struct MeasuredFootprint
{
    bool valid = false;
    Bytes persistent = 0;
    Bytes transient = 0;
};

/** A job owned by the scheduler. */
struct Job
{
    JobId id = -1;
    JobSpec spec;
    JobRecord record;
    /** Live while Running / Suspended / Evicted. */
    std::unique_ptr<core::Session> session;
    /** Multiplier applied to the admission reservation; grows after
     *  each OOM requeue so readmission is more conservative. */
    double reserveScale = 1.0;
    /** A co-tenant exited: re-plan at the next iteration boundary. */
    bool replanRequested = false;
    /**
     * Blocked-stepper memo (the per-tenant wake precision of the
     * serve engine): the live stepper returned Blocked on one of its
     * own streams, and no completion has landed on this tenant's
     * streams since. A stepper blocks only on its own device streams
     * draining, and those drain only through the completion paths
     * that fire the wake hook (which clears this), so until then a
     * re-poll must return Blocked again — skip it. Only meaningful
     * while a stepper is live; reset at every beginIteration.
     */
    bool stepBlocked = false;
    /** Measured footprint from the tenant's first iteration; once
     *  valid, admission math uses it instead of the analytic model. */
    MeasuredFootprint measured;

    TimeNs queueingDelay() const
    {
        return record.admitTime == kTimeNone
                   ? 0
                   : record.admitTime - spec.arrival;
    }

    /** Job completion time (arrival to finish). */
    TimeNs completionTime() const
    {
        return record.finishTime == kTimeNone
                   ? 0
                   : record.finishTime - spec.arrival;
    }

    bool done() const
    {
        return record.state == JobState::Finished ||
               record.state == JobState::Failed ||
               record.state == JobState::Rejected;
    }
};

/** FIFO admission queue of arrived jobs. */
class JobQueue
{
  public:
    void push(JobId id) { ids.push_back(id); }
    void pushFront(JobId id) { ids.push_front(id); }
    bool empty() const { return ids.empty(); }
    std::size_t size() const { return ids.size(); }

    /** Remove and return the i-th queued job (0 = head). */
    JobId take(std::size_t i);

    JobId at(std::size_t i) const { return ids.at(i); }

    /** Stable-sort the queued ids (priority admission order). */
    template <typename Cmp>
    void stableSort(Cmp cmp)
    {
        std::stable_sort(ids.begin(), ids.end(), cmp);
    }

  private:
    std::deque<JobId> ids;
};

} // namespace vdnn::serve

#endif // VDNN_SERVE_JOB_HH
