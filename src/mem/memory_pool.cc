#include "mem/memory_pool.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>

namespace vdnn::mem
{

namespace
{

Bytes
alignUp(Bytes v, Bytes alignment)
{
    return (v + alignment - 1) / alignment * alignment;
}

} // namespace

MemoryPool::MemoryPool(Bytes capacity, std::string name)
    : cap(alignUp(capacity, kAlignment)),
      largeThreshold(cap / kLargeFraction), poolName(std::move(name))
{
    VDNN_ASSERT(capacity > 0, "pool capacity must be positive");
    freeBlocks.emplace(0, cap);
}

void
MemoryPool::setTracker(UsageTracker *tracker)
{
    usageTracker = tracker;
    notify();
}

void
MemoryPool::notify()
{
    if (usageTracker)
        usageTracker->onUsage(used);
}

std::optional<Allocation>
MemoryPool::tryAllocate(Bytes size, const std::string &tag, int client)
{
    VDNN_ASSERT(size >= 0, "negative allocation size");
    Bytes need = std::max<Bytes>(alignUp(size, kAlignment), kAlignment);

    // Two-tier best fit. Small requests first look for the smallest
    // sufficient *small* free block, so the holes the giant-class
    // buffers cycle through are raided only as a last resort — best-fit
    // alone steers small allocations into those holes whenever they are
    // momentarily the tightest fit, and a single small tenant splits a
    // giant hole for the rest of the run. Ties go to the lowest offset
    // for deterministic layouts.
    auto best = freeBlocks.end();
    if (need < largeThreshold) {
        for (auto it = freeBlocks.begin(); it != freeBlocks.end(); ++it) {
            if (it->second < need || it->second >= largeThreshold)
                continue;
            if (best == freeBlocks.end() || it->second < best->second)
                best = it;
        }
    }
    if (best == freeBlocks.end()) {
        for (auto it = freeBlocks.begin(); it != freeBlocks.end(); ++it) {
            if (it->second < need)
                continue;
            if (best == freeBlocks.end() || it->second < best->second)
                best = it;
        }
    }

    if (best == freeBlocks.end()) {
        oom.requested = need;
        oom.totalFree = freeBytes();
        oom.largestFree = largestFreeBlock();
        oom.tag = tag;
        oom.layout = layoutString();
        return std::nullopt;
    }

    Bytes block_offset = best->first;
    Bytes block_size = best->second;
    freeBlocks.erase(best);
    Bytes offset;
    if (need >= largeThreshold) {
        // Large: carve from the high end of the block.
        offset = block_offset + block_size - need;
        if (block_size > need)
            freeBlocks.emplace(block_offset, block_size - need);
    } else {
        // Small: carve from the low end.
        offset = block_offset;
        if (block_size > need)
            freeBlocks.emplace(block_offset + need, block_size - need);
    }

    Allocation a;
    a.id = nextId++;
    a.offset = offset;
    a.size = need;
    live.emplace(a.id, LiveBlock{offset, need, tag, client});
    used += need;
    peak = std::max(peak, used);
    ClientUsage &cu = clients[client];
    cu.used += need;
    cu.peak = std::max(cu.peak, cu.used);
    notify();
    return a;
}

Allocation
MemoryPool::allocate(Bytes size, const std::string &tag, int client)
{
    auto a = tryAllocate(size, tag, client);
    if (!a) {
        fatal("%s: out of memory allocating %s for '%s' "
              "(free %s, largest block %s)",
              poolName.c_str(), formatBytes(size).c_str(), tag.c_str(),
              formatBytes(oom.totalFree).c_str(),
              formatBytes(oom.largestFree).c_str());
    }
    return *a;
}

void
MemoryPool::release(const Allocation &alloc)
{
    auto it = live.find(alloc.id);
    VDNN_ASSERT(it != live.end(), "releasing unknown allocation id %lld",
                (long long)alloc.id);
    Bytes offset = it->second.offset;
    Bytes size = it->second.size;
    int client = it->second.client;
    live.erase(it);
    used -= size;
    auto cit = clients.find(client);
    VDNN_ASSERT(cit != clients.end() && cit->second.used >= size,
                "client %d accounting underflow", client);
    cit->second.used -= size;

    auto [ins, ok] = freeBlocks.emplace(offset, size);
    VDNN_ASSERT(ok, "double free at offset %lld", (long long)offset);

    // Coalesce with successor.
    auto next = std::next(ins);
    if (next != freeBlocks.end() &&
        ins->first + ins->second == next->first) {
        ins->second += next->second;
        freeBlocks.erase(next);
    }
    // Coalesce with predecessor.
    if (ins != freeBlocks.begin()) {
        auto prev = std::prev(ins);
        if (prev->first + prev->second == ins->first) {
            prev->second += ins->second;
            freeBlocks.erase(ins);
        }
    }
    notify();
}

void
MemoryPool::releaseAll()
{
    live.clear();
    freeBlocks.clear();
    freeBlocks.emplace(0, cap);
    used = 0;
    for (auto &[client, cu] : clients)
        cu.used = 0;
    notify();
}

Bytes
MemoryPool::usedByClient(int client) const
{
    auto it = clients.find(client);
    return it == clients.end() ? 0 : it->second.used;
}

Bytes
MemoryPool::peakByClient(int client) const
{
    auto it = clients.find(client);
    return it == clients.end() ? 0 : it->second.peak;
}

std::size_t
MemoryPool::activeClients() const
{
    std::size_t n = 0;
    for (const auto &[client, cu] : clients)
        n += cu.used > 0 ? 1 : 0;
    return n;
}

Bytes
MemoryPool::largestFreeBlock() const
{
    Bytes largest = 0;
    for (const auto &[off, size] : freeBlocks)
        largest = std::max(largest, size);
    return largest;
}

std::string
MemoryPool::layoutString() const
{
    // Merge live and free blocks into one offset-ordered map.
    std::map<Bytes, std::pair<Bytes, std::string>> blocks;
    for (const auto &[off, size] : freeBlocks)
        blocks[off] = {size, "<free>"};
    for (const auto &[id, blk] : live)
        blocks[blk.offset] = {blk.size, blk.tag};
    std::string out = strFormat("%s: %s used of %s\n", poolName.c_str(),
                                formatBytes(used).c_str(),
                                formatBytes(cap).c_str());
    for (const auto &[off, info] : blocks) {
        out += strFormat("  [%12lld +%12lld] %8.1f MiB  %s\n",
                         (long long)off, (long long)info.first,
                         double(info.first) / double(kMiB),
                         info.second.c_str());
    }
    return out;
}

bool
MemoryPool::checkInvariants() const
{
    // Free blocks are disjoint, sorted, non-adjacent and inside the arena.
    Bytes total_free = 0;
    Bytes prev_end = -1;
    for (const auto &[off, size] : freeBlocks) {
        if (size <= 0 || off < 0 || off + size > cap)
            return false;
        if (prev_end >= 0 && off <= prev_end)
            return false; // overlapping or uncoalesced adjacency
        prev_end = off + size;
        total_free += size;
    }
    Bytes total_live = 0;
    for (const auto &[id, blk] : live)
        total_live += blk.size;
    Bytes total_client = 0;
    for (const auto &[client, cu] : clients)
        total_client += cu.used;
    return total_free + total_live == cap && total_live == used &&
           total_client == used;
}

} // namespace vdnn::mem
