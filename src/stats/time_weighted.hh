/**
 * @file
 * Time-weighted statistics over a piecewise-constant signal.
 *
 * Figures 11/15 of the vDNN paper report the *average* GPU memory usage,
 * i.e. the time integral of pool usage divided by run time. This class
 * records a piecewise-constant signal (value changes at discrete sim
 * times) and exposes the integral mean, the peak, and an optional sample
 * timeline for plotting.
 */

#ifndef VDNN_STATS_TIME_WEIGHTED_HH
#define VDNN_STATS_TIME_WEIGHTED_HH

#include "common/types.hh"

#include <vector>

namespace vdnn::stats
{

class TimeWeighted
{
  public:
    struct Sample
    {
        TimeNs when;
        double value;
    };

    /**
     * @param keep_timeline record every (time, value) change point so the
     *        full usage curve can be dumped (memory_timeline example).
     */
    explicit TimeWeighted(bool keep_timeline = false)
        : keepTimeline(keep_timeline)
    {}

    /**
     * Record that the signal takes @p value from time @p when onward.
     * Times must be non-decreasing.
     */
    void record(TimeNs when, double value);

    /** Close the window at @p when; further record() calls are invalid. */
    void finish(TimeNs when);

    /** Peak value observed. */
    double peak() const { return peakVal; }

    /** Time-weighted mean over [firstTime, lastTime]. */
    double average() const;

    /** Total observation window length. */
    TimeNs duration() const { return lastTime - firstTime; }

    /** Change points (empty unless keep_timeline was set). */
    const std::vector<Sample> &timeline() const { return samples; }

    bool finished() const { return done; }

  private:
    bool keepTimeline;
    bool started = false;
    bool done = false;
    TimeNs firstTime = 0;
    TimeNs lastTime = 0;
    double curVal = 0.0;
    double peakVal = 0.0;
    double integral = 0.0; // value * ns
    std::vector<Sample> samples;
};

} // namespace vdnn::stats

#endif // VDNN_STATS_TIME_WEIGHTED_HH
