/**
 * @file
 * Unit tests for the PCIe DMA and page-migration transfer models,
 * cross-checked against the constants the paper quotes in Section II-C.
 */

#include "interconnect/arbiter.hh"
#include "interconnect/page_migration.hh"
#include "interconnect/pcie_link.hh"

#include "common/units.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::ic;
using namespace vdnn::literals;

TEST(PcieLink, PresetMatchesPaperNode)
{
    PcieLink link(pcieGen3x16());
    EXPECT_DOUBLE_EQ(link.spec().rawBandwidth, 16.0e9);
    EXPECT_DOUBLE_EQ(link.spec().dmaBandwidth, 12.8e9);
}

TEST(PcieLink, LargeTransferApproachesDmaBandwidth)
{
    PcieLink link(pcieGen3x16());
    // 1 GiB: the fixed setup cost is negligible.
    double bw = link.achievedBandwidth(1_GiB);
    EXPECT_GT(bw, 0.99 * 12.8e9);
    EXPECT_LE(bw, 12.8e9);
}

TEST(PcieLink, SmallTransferDominatedBySetupCost)
{
    PcieLink link(pcieGen3x16());
    double bw = link.achievedBandwidth(4096);
    EXPECT_LT(bw, 1.0e9); // far below line rate
}

TEST(PcieLink, TransferTimeScalesLinearly)
{
    PcieLink link(pcieGen3x16());
    TimeNs t1 = link.transferTime(256_MiB);
    TimeNs t2 = link.transferTime(512_MiB);
    double setup = double(link.spec().setupLatency);
    EXPECT_NEAR(double(t2) - setup, 2.0 * (double(t1) - setup),
                double(t1) * 0.01);
}

TEST(PcieLink, ZeroBytesStillCostsSetup)
{
    PcieLink link(pcieGen3x16());
    EXPECT_EQ(link.transferTime(0), link.spec().setupLatency);
}

TEST(PcieLink, NvlinkPresetIsFaster)
{
    PcieLink pcie(pcieGen3x16());
    PcieLink nvlink(nvlinkGen1());
    EXPECT_LT(nvlink.transferTime(1_GiB), pcie.transferTime(1_GiB));
}

TEST(PageMigration, EffectiveBandwidthMatchesPaperRange)
{
    // Section II-C: 20-50 us per 4 KB page -> 80-200 MB/s.
    PageMigrationModel pm;
    double best = pm.effectiveBandwidth(false);
    double worst = pm.effectiveBandwidth(true);
    EXPECT_NEAR(best, 200.0e6, 10.0e6);
    EXPECT_NEAR(worst, 80.0e6, 5.0e6);
}

TEST(PageMigration, PageCountRoundsUp)
{
    PageMigrationModel pm;
    EXPECT_EQ(pm.pagesFor(0), 0);
    EXPECT_EQ(pm.pagesFor(1), 1);
    EXPECT_EQ(pm.pagesFor(4096), 1);
    EXPECT_EQ(pm.pagesFor(4097), 2);
}

TEST(PageMigration, DmaIsOrdersOfMagnitudeFaster)
{
    PcieLink link(pcieGen3x16());
    PageMigrationModel pm;
    Bytes payload = 256_MiB;
    double ratio = double(pm.transferTime(payload)) /
                   double(link.transferTime(payload));
    // 12.8 GB/s vs 200 MB/s -> ~64x in the optimistic case.
    EXPECT_GT(ratio, 50.0);
    EXPECT_LT(ratio, 80.0);
}

// --- PCIe fair-share arbiter -------------------------------------------------

TEST(FairShareArbiter, FifoWithinASingleClient)
{
    FairShareArbiter arb;
    // One client: every pick is the FIFO head, regardless of history.
    EXPECT_EQ(arb.pick({7, 7, 7}), 0u);
    arb.charge(7, 1_GiB);
    EXPECT_EQ(arb.pick({7, 7}), 0u);
}

TEST(FairShareArbiter, LeastServedClientGoesNext)
{
    FairShareArbiter arb;
    arb.setWeight(1, 1.0);
    arb.setWeight(2, 1.0);
    // Equal service: FIFO order breaks the tie.
    EXPECT_EQ(arb.pick({1, 2}), 0u);
    arb.charge(1, 64_MiB);
    // Client 1 has been served; client 2 jumps the queue.
    EXPECT_EQ(arb.pick({1, 2}), 1u);
    arb.charge(2, 64_MiB);
    EXPECT_EQ(arb.pick({2, 1}), 0u); // tie again -> FIFO
}

TEST(FairShareArbiter, WeightsScaleTheShare)
{
    FairShareArbiter arb;
    arb.setWeight(1, 2.0);
    arb.setWeight(2, 1.0);
    // Simulate a saturated engine: both clients always queued.
    int grants1 = 0;
    for (int i = 0; i < 30; ++i) {
        std::size_t pick = arb.pick({1, 2});
        int winner = pick == 0 ? 1 : 2;
        grants1 += winner == 1 ? 1 : 0;
        arb.charge(winner, 64_MiB);
    }
    // Weight 2:1 -> client 1 receives ~2/3 of the grants.
    EXPECT_GE(grants1, 18);
    EXPECT_LE(grants1, 22);
}

TEST(FairShareArbiter, ServiceAccountingAndReset)
{
    FairShareArbiter arb;
    arb.charge(3, 100);
    arb.charge(3, 28);
    EXPECT_EQ(arb.servedBytes(3), 128);
    EXPECT_EQ(arb.servedBytes(9), 0);
    arb.resetService();
    EXPECT_EQ(arb.servedBytes(3), 0);
    EXPECT_DOUBLE_EQ(arb.weight(3), 1.0);
}

TEST(FairShareArbiter, LateArrivalCannotStarveTheIncumbent)
{
    // Tenant 1 offloaded 10 GiB alone before tenant 2 was admitted.
    // Once both contend, tenant 2's catch-up priority is bounded by
    // the credit cap: after at most a few transfers the grants
    // alternate — tenant 1 is not starved until lifetime byte counts
    // converge.
    FairShareArbiter arb;
    arb.charge(1, 10_GiB);

    const Bytes xfer = 100_MiB;
    int grants1 = 0;
    int run2 = 0;
    int longest_run2 = 0;
    for (int i = 0; i < 24; ++i) {
        std::size_t p = arb.pick({1, 2});
        int winner = p == 0 ? 1 : 2;
        if (winner == 1) {
            ++grants1;
            run2 = 0;
        } else {
            longest_run2 = std::max(longest_run2, ++run2);
        }
        arb.charge(winner, xfer);
    }
    // The newcomer's head start is capped at kMaxCreditBytes worth of
    // transfers; from then on the link splits evenly.
    EXPECT_LE(longest_run2,
              int(FairShareArbiter::kMaxCreditBytes / xfer) + 1);
    EXPECT_GE(grants1, 9);
}
