#include "sim/event_queue.hh"

namespace vdnn::sim
{

EventQueue::~EventQueue()
{
    // Destroy callbacks of events that never ran (the heap may also
    // hold tombstones for them; slot occupancy is authoritative).
    for (Slot &s : slots) {
        if (s.id != 0)
            s.ops->destroy(s.storage);
    }
}

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead != kNoSlot) {
        std::uint32_t slot = freeHead;
        freeHead = slots[slot].nextFree;
        return slot;
    }
    VDNN_ASSERT(slots.size() <= kSlotMask,
                "event slab full: %zu concurrent events",
                slots.size());
    slots.emplace_back();
    return std::uint32_t(slots.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Slot &s = slots[slot];
    s.id = 0;
    s.ops = nullptr;
    s.nextFree = freeHead;
    freeHead = slot;
}

void
EventQueue::heapPush(HeapEntry e)
{
    // Min-heap on (when, id); the id's high bits are the monotonic
    // schedule sequence, so equal times run in insertion order.
    std::size_t i = heap.size();
    heap.push_back(e);
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        HeapEntry &p = heap[parent];
        if (p.when < e.when || (p.when == e.when && p.id < e.id))
            break;
        heap[i] = p;
        i = parent;
    }
    heap[i] = e;
}

EventQueue::HeapEntry
EventQueue::heapPop()
{
    HeapEntry top = heap.front();
    HeapEntry last = heap.back();
    heap.pop_back();
    std::size_t n = heap.size();
    if (n > 0) {
        std::size_t i = 0;
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            std::size_t right = child + 1;
            if (right < n &&
                (heap[right].when < heap[child].when ||
                 (heap[right].when == heap[child].when &&
                  heap[right].id < heap[child].id))) {
                child = right;
            }
            HeapEntry &c = heap[child];
            if (last.when < c.when ||
                (last.when == c.when && last.id < c.id)) {
                break;
            }
            heap[i] = c;
            i = child;
        }
        heap[i] = last;
    }
    return top;
}

void
EventQueue::deschedule(EventId id)
{
    std::uint32_t slot = std::uint32_t(id & kSlotMask);
    if (slot >= slots.size())
        return;
    Slot &s = slots[slot];
    if (s.id != id)
        return; // already ran or already cancelled: true no-op
    s.ops->destroy(s.storage);
    freeSlot(slot);
    VDNN_ASSERT(liveEvents > 0, "descheduling with no live events");
    --liveEvents;
    // The heap entry stays behind as a tombstone; pruneTop() drops it
    // when it surfaces (its slot no longer holds this id).
}

bool
EventQueue::pruneTop()
{
    while (!heap.empty()) {
        const HeapEntry &e = heap.front();
        if (slots[std::size_t(e.id & kSlotMask)].id == e.id)
            return true;
        heapPop();
    }
    return false;
}

void
EventQueue::executeTop()
{
    HeapEntry e = heapPop();
    std::uint32_t slot = std::uint32_t(e.id & kSlotMask);
    Slot &s = slots[slot];
    VDNN_ASSERT(e.when >= curTime, "event time went backwards");
    curTime = e.when;
    --liveEvents;
    ++numExecuted;
    // The callback may schedule new events and grow the slab; move it
    // out to the stack and release the slot before invoking.
    const Ops *ops = s.ops;
    alignas(std::max_align_t) unsigned char fn[kInlineBytes];
    ops->relocate(fn, s.storage);
    freeSlot(slot);
    ops->invokeAndDestroy(fn);
}

bool
EventQueue::step()
{
    if (!pruneTop())
        return false;
    executeTop();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(TimeNs until)
{
    std::uint64_t n = 0;
    while (pruneTop() && heap.front().when <= until) {
        executeTop();
        ++n;
    }
    if (curTime < until)
        curTime = until;
    return n;
}

} // namespace vdnn::sim
