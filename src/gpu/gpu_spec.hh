/**
 * @file
 * GPU device specifications.
 *
 * The paper evaluates on an NVIDIA Titan X (Maxwell): 7 TFLOPS single
 * precision, 336 GB/s GDDR5, 12 GB capacity, attached over PCIe gen3 x16
 * to an i7-5930K with 64 GB DDR4 (Section IV-B). Presets for a few other
 * devices are provided for sensitivity studies.
 */

#ifndef VDNN_GPU_GPU_SPEC_HH
#define VDNN_GPU_GPU_SPEC_HH

#include "common/types.hh"
#include "interconnect/pcie_link.hh"

#include <string>

namespace vdnn::gpu
{

struct GpuSpec
{
    std::string name = "GPU";
    /** Peak single-precision throughput, FLOP/s. */
    double peakFlops = 7.0e12;
    /** Peak DRAM bandwidth, bytes/s. */
    double dramBandwidth = 336.0e9;
    /** Device memory capacity. */
    Bytes dramCapacity = Bytes(12) * 1024 * 1024 * 1024;
    /** Host DRAM capacity available for pinned buffers. */
    Bytes hostCapacity = Bytes(64) * 1024 * 1024 * 1024;
    /** Host<->device interconnect. */
    ic::PcieSpec pcie = ic::pcieGen3x16();

    /**
     * Power model parameters (linear activity model, Section V-D).
     * Titan X TDP is 250 W; nvprof-style measurements put idle draw
     * around 70 W and full-tilt training around 200-240 W.
     */
    double idlePowerW = 70.0;
    /** Dynamic compute power at 100% SM utilization. */
    double computePowerW = 140.0;
    /** Dynamic memory power at 100% DRAM bandwidth utilization. */
    double dramPowerW = 40.0;
    /** Copy engine + PCIe PHY power while a DMA is in flight. */
    double copyPowerW = 8.0;
};

/** NVIDIA Titan X (Maxwell) — the paper's evaluation GPU. */
GpuSpec titanXMaxwell();

/** NVIDIA Titan X (Pascal) — sensitivity preset: faster compute. */
GpuSpec titanXPascal();

/** NVIDIA Tesla K40 — sensitivity preset: older, slower, 12 GB. */
GpuSpec teslaK40();

/** A small 4 GB device used to stress trainability decisions. */
GpuSpec smallGpu4GiB();

} // namespace vdnn::gpu

#endif // VDNN_GPU_GPU_SPEC_HH
