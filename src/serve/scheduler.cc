#include "serve/scheduler.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>

namespace vdnn::serve
{

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::FifoExclusive:
        return "fifo-exclusive";
      case SchedPolicy::RoundRobin:
        return "round-robin";
      case SchedPolicy::ShortestRemaining:
        return "shortest-remaining";
      case SchedPolicy::PackedOverlap:
        return "packed-overlap";
      case SchedPolicy::PreemptivePriority:
        return "preemptive-priority";
    }
    return "?";
}

SchedulerConfig::SchedulerConfig() : gpu(gpu::titanXMaxwell()) {}

namespace
{

gpu::ClusterSpec
clusterSpecFor(const SchedulerConfig &cfg)
{
    gpu::ClusterSpec cs;
    cs.devices = cfg.devices.empty()
                     ? std::vector<gpu::GpuSpec>{cfg.gpu}
                     : cfg.devices;
    cs.contention = cfg.contention;
    return cs;
}

} // namespace

Scheduler::DeviceCtx::DeviceCtx(int id_, gpu::Cluster &cluster_,
                                const SchedulerConfig &cfg_)
    : id(id_), dev(&cluster_.device(id_)), pool(&cluster_.pool(id_)),
      host(&cluster_.host(id_)), cudnn(dev->spec()),
      admission(pool->capacity(), cfg_.admissionSafety),
      track([this] { return this->dev->now(); }, cfg_.keepTimeline)
{
    pool->setTracker(&track);
    // Packed overlap keeps several tenants' iterations in flight at
    // once, so their transient working sets must be reserved together.
    admission.setOverlapTransients(cfg_.policy ==
                                   SchedPolicy::PackedOverlap);
}

Scheduler::Scheduler(SchedulerConfig config)
    : cfg(std::move(config)), cluster(clusterSpecFor(cfg)),
      inflight(cfg.keepTimeline)
{
    VDNN_ASSERT(cfg.maxJobsInFlight >= 0,
                "maxJobsInFlight must be >= 0");
    for (int d = 0; d < cluster.deviceCount(); ++d)
        devs.push_back(std::make_unique<DeviceCtx>(d, cluster, cfg));
    cluster.setTelemetry(cfg.telemetry);
    if (obs::MetricsRegistry *m = cfg.telemetry.metrics) {
        ctrAdmissions = &m->counter("sched.admissions");
        ctrPreemptions = &m->counter("sched.preemptions");
        ctrMigrations = &m->counter("sched.migrations");
        ctrProfiles = &m->counter("sched.profiled_updates");
        ctrPageOuts = &m->counter("sched.page_outs");
        jctAcc = &m->accumulator("sched.jct_ms");
        preemptLatAcc = &m->accumulator("sched.preemption_latency_ms");
        iterHist = &m->histogram("sched.iteration_ms", 0.0, 2000.0, 100);
    }
    if (!cfg.placement)
        cfg.placement = std::make_shared<BestFitPlacement>();
    VDNN_ASSERT(cfg.rebalancePeriod >= 0, "negative rebalance period");
    VDNN_ASSERT(cfg.rebalanceThreshold >= 1,
                "rebalance threshold must be >= 1");
    wake.resize(deviceCount());
    cluster.setWakeHook(&Scheduler::deviceWakeTrampoline, this);
    inflight.record(cluster.now(), 0.0);
}

void
Scheduler::deviceWakeTrampoline(void *self, int device, int client)
{
    static_cast<Scheduler *>(self)->onDeviceWake(device, client);
}

void
Scheduler::onDeviceWake(int device, int client)
{
    // Every executed completion event lands here: the owning device
    // may have an unblocked stepper (or a drained stream an admission
    // teardown was waiting on), so the next turn must offer it a step.
    wake.add(device);
    ++statWakeups;
    // The completion landed on `client`'s stream, and a stepper
    // blocks only on its own streams: this is the one tenant whose
    // blocked stepper could have been released. (Clearing a terminal
    // or stepper-less tenant's memo is harmless — the memo is
    // consulted only while a stepper is live.)
    if (client >= 0 && std::size_t(client) < jobs.size())
        jobs[std::size_t(client)]->stepBlocked = false;
}

JobId
Scheduler::submit(JobSpec spec)
{
    VDNN_ASSERT(!ran, "submit() after run()");
    VDNN_ASSERT(spec.network && spec.network->finalized(),
                "job needs a finalized network");
    VDNN_ASSERT(spec.iterations >= 1,
                "job needs at least one iteration");
    VDNN_ASSERT(spec.arrival >= 0, "negative arrival time");
    VDNN_ASSERT(spec.agingRatePerSec >= 0.0, "negative aging rate");
    auto job = std::make_unique<Job>();
    job->id = JobId(jobs.size());
    job->spec = std::move(spec);
    if (job->spec.name.empty())
        job->spec.name = strFormat("job%d", job->id);
    // Default planner, resolved once here so admission and session
    // setup agree on the plan source.
    if (!job->spec.planner) {
        job->spec.planner = std::make_shared<core::OffloadAllPlanner>(
            core::AlgoPreference::MemoryOptimal);
    }
    jobs.push_back(std::move(job));
    ++numPending;
    if (nextPendingArrival == kTimeNone ||
        jobs.back()->spec.arrival < nextPendingArrival) {
        nextPendingArrival = jobs.back()->spec.arrival;
    }
    return jobs.back()->id;
}

void
Scheduler::collectArrivals()
{
    // Nothing can arrive before the cached earliest pending arrival,
    // so the per-event serve loop skips the job scan entirely.
    if (numPending == 0 || cluster.now() < nextPendingArrival)
        return;
    std::vector<JobId> arrived;
    TimeNs next = kTimeNone;
    for (const auto &job : jobs) {
        if (job->record.state != JobState::Pending)
            continue;
        if (job->spec.arrival <= cluster.now()) {
            arrived.push_back(job->id);
        } else if (next == kTimeNone || job->spec.arrival < next) {
            next = job->spec.arrival;
        }
    }
    numPending -= int(arrived.size());
    nextPendingArrival = next;
    // New queue entries: the admission rescan has fresh work.
    if (!arrived.empty())
        admissionDirty = true;
    std::sort(arrived.begin(), arrived.end(),
              [this](JobId a, JobId b) {
                  const Job &ja = *jobs[std::size_t(a)];
                  const Job &jb = *jobs[std::size_t(b)];
                  if (ja.spec.arrival != jb.spec.arrival)
                      return ja.spec.arrival < jb.spec.arrival;
                  return a < b;
              });
    for (JobId id : arrived) {
        jobs[std::size_t(id)]->record.state = JobState::Queued;
        // Aging clock: the wait began at submission, not collection.
        jobs[std::size_t(id)]->record.waitingSince =
            jobs[std::size_t(id)]->spec.arrival;
        queue.push(id);
    }
}

void
Scheduler::stopWaiting(Job &job)
{
    if (job.record.waitingSince == kTimeNone)
        return;
    job.record.agedWait += cluster.now() - job.record.waitingSince;
    job.record.waitingSince = kTimeNone;
}

namespace
{

/** Do two devices yield identical footprint estimates? */
bool
sameEstimateSpec(const gpu::GpuSpec &a, const gpu::GpuSpec &b)
{
    return a.name == b.name && a.peakFlops == b.peakFlops &&
           a.dramBandwidth == b.dramBandwidth &&
           a.dramCapacity == b.dramCapacity &&
           a.hostCapacity == b.hostCapacity &&
           a.pcie.rawBandwidth == b.pcie.rawBandwidth &&
           a.pcie.dmaBandwidth == b.pcie.dmaBandwidth &&
           a.pcie.setupLatency == b.pcie.setupLatency;
}

} // namespace

const FootprintEstimate &
Scheduler::estimateFor(const Job &job, DeviceCtx &d)
{
    if (job.measured.valid) {
        // Measured footprints are bytes, not times — device-
        // independent, so one slot overrides every per-device
        // analytic entry.
        FootprintEstimate &m = estimates[std::make_pair(job.id, -1)];
        m.persistent = job.measured.persistent;
        m.transient = job.measured.transient;
        return m;
    }
    // Identical devices yield identical estimates: share the cache
    // entry of the first same-spec device so a homogeneous cluster
    // derives each job's admission plan once, not once per device.
    int canonical = d.id;
    for (int k = 0; k < d.id; ++k) {
        if (sameEstimateSpec(devs[std::size_t(k)]->dev->spec(),
                             d.dev->spec())) {
            canonical = k;
            break;
        }
    }
    auto key = std::make_pair(job.id, canonical);
    auto it = estimates.find(key);
    if (it == estimates.end()) {
        // Budget for the planner's most conservative plan, derived
        // against the whole device (the reservation must hold however
        // crowded the pool is when the job finally runs).
        it = estimates
                 .emplace(key,
                          estimatePlannerFootprint(
                              *job.spec.network, d.cudnn,
                              *job.spec.planner,
                              core::PlannerContext::exclusive(
                                  d.dev->spec(), cfg.contention)))
                 .first;
    }
    return it->second;
}

double
Scheduler::effectivePriority(const Job &job, TimeNs now) const
{
    double p = double(job.spec.priority);
    if (job.spec.agingRatePerSec > 0.0) {
        TimeNs waited = job.record.agedWait;
        if (job.record.waitingSince != kTimeNone &&
            now > job.record.waitingSince) {
            waited += now - job.record.waitingSince;
        }
        p += job.spec.agingRatePerSec * toSeconds(waited);
    }
    return p;
}

Bytes
Scheduler::reservedBytesTotal() const
{
    Bytes total = 0;
    for (const auto &d : devs)
        total += d->admission.reservedBytes();
    return total;
}

int
Scheduler::jobsInFlight() const
{
    int n = 0;
    for (const auto &d : devs)
        n += int(d->running.size());
    return n;
}

bool
Scheduler::tryAdmit(Job &job, const FootprintEstimate &est, DeviceCtx &d)
{
    core::SessionConfig scfg;
    scfg.planner = job.spec.planner;
    scfg.gpu = d.dev->spec();
    scfg.contention = cfg.contention;
    scfg.exec = job.spec.exec;
    core::SharedGpu shared;
    shared.runtime = d.dev;
    shared.pool = d.pool;
    shared.host = d.host;
    shared.clientId = job.id;
    job.session = std::make_unique<core::Session>(*job.spec.network,
                                                  scfg, shared);
    if (!job.session->setup()) {
        // The estimate said fit; the allocator disagreed
        // (fragmentation or estimate error).
        job.record.failReason = job.session->failReason();
        job.session.reset();
        return false;
    }
    Bytes before = reservedBytesTotal();
    d.admission.admit(job.id, est, job.reserveScale);
    job.record.state = JobState::Running;
    stopWaiting(job);
    if (job.record.admitTime == kTimeNone)
        job.record.admitTime = cluster.now();
    job.record.persistentBytes =
        std::max(job.record.persistentBytes,
                 job.session->persistentBytes());
    job.record.deviceId = d.id;
    if (job.record.placements.empty() ||
        job.record.placements.back() != d.id) {
        job.record.placements.push_back(d.id);
    }
    ++d.jobsPlaced;
    d.running.push_back(job.id);
    ++residentJobs;
    wake.add(d.id); // the new resident's first iteration can begin
    recordInflight();
    logLifecycle(job.id, "admit", before, d.id);
    if (ctrAdmissions)
        ctrAdmissions->add();
    if (cfg.telemetry.tracing()) {
        cfg.telemetry.trace->setThreadName(d.id, job.id, job.spec.name);
        if (pendingPreemptFlow) {
            // Close the preemption arrow at its beneficiary: this
            // admission is what the eviction paid for.
            cfg.telemetry.trace->flowEnd(pendingPreemptFlow, d.id,
                                         job.id, "sched", "preempt",
                                         cluster.now());
            pendingPreemptFlow = 0;
        }
    }
    return true;
}

void
Scheduler::admitFromQueue()
{
    DeviceCtx &d0 = *devs[0];
    // Priority scheduling admits the most important arrivals first;
    // the queue stays FIFO within a priority level. Aging lifts a
    // long-waiting job's effective priority, so a starved arrival
    // eventually sorts ahead of younger, nominally hotter ones.
    if (cfg.policy == SchedPolicy::PreemptivePriority) {
        TimeNs now = cluster.now();
        queue.stableSort([this, now](JobId a, JobId b) {
            return effectivePriority(*jobs[std::size_t(a)], now) >
                   effectivePriority(*jobs[std::size_t(b)], now);
        });
    }
    std::size_t i = 0;
    while (i < queue.size()) {
        Job &job = *jobs[std::size_t(queue.at(i))];
        const FootprintEstimate &est = estimateFor(job, d0);
        // Feasibility includes any OOM-backoff inflation: a job whose
        // grown reservation no longer fits even an empty device must
        // go terminal here, or it would sit in the queue forever.
        if (!d0.admission.feasible(est, job.reserveScale)) {
            queue.take(i);
            job.record.state = JobState::Rejected;
            ++numTerminal;
            job.record.finishTime = cluster.now();
            job.record.failReason = strFormat(
                "reservation %s exceeds device capacity %s",
                formatBytes(
                    d0.admission.reservationFor(est, job.reserveScale))
                    .c_str(),
                formatBytes(d0.admission.capacity()).c_str());
            continue;
        }
        bool wants_room =
            (cfg.maxJobsInFlight > 0 &&
             jobsInFlight() >= cfg.maxJobsInFlight) ||
            !d0.admission.canAdmit(est, job.reserveScale);
        if (wants_room && cfg.policy == SchedPolicy::PreemptivePriority)
            wants_room = !makeRoomFor(job, est, d0);
        if (cfg.maxJobsInFlight > 0 &&
            jobsInFlight() >= cfg.maxJobsInFlight) {
            break;
        }
        if (cfg.policy == SchedPolicy::FifoExclusive &&
            !d0.running.empty()) {
            break;
        }
        if (wants_room) {
            if (cfg.policy != SchedPolicy::FifoExclusive) {
                // Backfill: a smaller job further back may still fit.
                ++i;
                continue;
            }
            break; // strict arrival order for FIFO
        }
        if (tryAdmit(job, est, d0)) {
            queue.take(i);
            continue;
        }
        // No progress despite a fitting reservation: page co-tenants'
        // cold buffers before inflating this job's reservation (and,
        // under the priority policy, before tenants get evicted).
        if (cfg.bufferPaging &&
            pageVictimBuffers(
                d0, d0.admission.reservationFor(est, job.reserveScale)) >
                0 &&
            tryAdmit(job, est, d0)) {
            queue.take(i);
            continue;
        }
        if (backoffAfterSetupOom(job, i))
            continue;
        ++i;
    }
}

bool
Scheduler::backoffAfterSetupOom(Job &job, std::size_t queue_index)
{
    // Setup OOM despite a fitting reservation: grow the reservation
    // and retry later, give up after a few attempts. Setup success
    // depends on the pool's instantaneous free-block structure, which
    // co-tenant iterations churn between turns — so the retry must
    // run every turn, exactly as the polling loop did: keep the
    // admission rescan dirty until the job admits or goes terminal.
    admissionDirty = true;
    ++job.record.oomRequeues;
    job.reserveScale *= cfg.oomBackoffScale;
    if (job.record.oomRequeues > cfg.maxOomRequeues) {
        std::string why = job.record.failReason;
        queue.take(queue_index);
        job.record.state = JobState::Failed;
        ++numTerminal;
        job.record.finishTime = cluster.now();
        job.record.failReason =
            "admission gave up after repeated setup OOM: " + why;
        return true; // taken from the queue, now terminal
    }
    return false;
}

void
Scheduler::removeFromRunning(JobId id)
{
    Job &job = *jobs[std::size_t(id)];
    VDNN_ASSERT(job.record.deviceId >= 0, "job %d has no device", id);
    DeviceCtx &d = *devs[std::size_t(job.record.deviceId)];
    auto it = std::find(d.running.begin(), d.running.end(), id);
    VDNN_ASSERT(it != d.running.end(), "job %d not running", id);
    std::size_t idx = std::size_t(it - d.running.begin());
    d.running.erase(it);
    --residentJobs;
    if (idx < d.rrCursor)
        --d.rrCursor;
    if (d.inFlight == id)
        d.inFlight = -1;
    recordInflight();
}

void
Scheduler::finishJob(Job &job, JobState final_state,
                     const std::string &why)
{
    VDNN_ASSERT(jobStateLive(job.record.state),
                "finishing job %d in state %s", job.id,
                jobStateName(job.record.state));
    DeviceCtx &d = *devs[std::size_t(job.record.deviceId)];
    Bytes before = reservedBytesTotal();
    job.record.peakPoolBytes = std::max(
        job.record.peakPoolBytes, d.pool->peakByClient(job.id));
    job.record.offloadedBytes = job.record.offloadedBytesPrior +
                                job.session->memory().offloadedBytes();
    job.session->teardown();
    job.session.reset();
    d.admission.release(job.id);
    // Freed reservation and a shrunk running set: queued jobs that
    // did not fit may now, so the admission rescan must run again.
    admissionDirty = true;

    if (job.record.state == JobState::Evicted) {
        auto ev = std::find(evictedJobs.begin(), evictedJobs.end(),
                            job.id);
        VDNN_ASSERT(ev != evictedJobs.end(), "job %d not evicted",
                    job.id);
        evictedJobs.erase(ev);
    } else {
        removeFromRunning(job.id);
    }

    job.record.state = final_state;
    if (final_state == JobState::Finished ||
        final_state == JobState::Failed) {
        ++numTerminal;
    }
    job.record.finishTime = cluster.now();
    job.record.failReason = why;
    logLifecycle(job.id,
                 final_state == JobState::Finished ? "finish"
                 : final_state == JobState::Queued ? "requeue"
                                                   : "fail",
                 before, d.id);
    if (final_state == JobState::Finished && jctAcc)
        jctAcc->add(double(job.completionTime()) / 1e6);

    // Freed capacity: evicted tenants may fit again, and survivors
    // whose planner supports it may grow their plans back.
    if (cfg.policy == SchedPolicy::PreemptivePriority) {
        resumePending = true;
        for (JobId id : d.running)
            jobs[std::size_t(id)]->replanRequested = true;
    } else if (deviceCount() > 1) {
        resumePending = true;
    }
}

void
Scheduler::evictForRequeue(Job &job)
{
    ++job.record.oomRequeues;
    job.reserveScale *= cfg.oomBackoffScale;
    // Buffers before tenants, in-flight flavor: the aborted iteration
    // is already unwound, but paging co-tenants' cold prefetched-ahead
    // copies now means the re-admitted attempt runs against a pool
    // with real headroom instead of OOMing the same way again.
    if (cfg.bufferPaging && job.record.deviceId >= 0) {
        DeviceCtx &d = *devs[std::size_t(job.record.deviceId)];
        pageVictimBuffers(
            d, d.admission.reservationFor(estimateFor(job, d),
                                          job.reserveScale));
    }
    std::string why = job.session->failReason();
    if (job.record.oomRequeues > cfg.maxOomRequeues) {
        finishJob(job, JobState::Failed,
                  "gave up after repeated iteration OOM: " + why);
        return;
    }
    finishJob(job, JobState::Queued, why);
    // Not terminal: the finish timestamp belongs to real completion.
    job.record.finishTime = kTimeNone;
    job.record.waitingSince = cluster.now(); // aging resumes
    // Head of the queue: the job keeps its arrival-order priority.
    queue.pushFront(job.id);
}

// --- lifecycle state machine (PreemptivePriority) ----------------------------

Job *
Scheduler::pickVictim(DeviceCtx &d, double below_priority)
{
    // Lowest effective priority first (an aged-in tenant keeps the
    // boost it earned, so it is not the default victim); the
    // latest-arrived tenant of that level goes first (LIFO), so
    // incumbents are disturbed least.
    TimeNs now = cluster.now();
    Job *victim = nullptr;
    double victim_eff = 0.0;
    for (JobId id : d.running) {
        Job *j = jobs[std::size_t(id)].get();
        double eff = effectivePriority(*j, now);
        if (eff >= below_priority)
            continue;
        // Iteration granularity parks victims only at iteration
        // boundaries; at op granularity a live stepper is parked at
        // its current Sync/Barrier boundary and the partial iteration
        // unwound by evictToHost().
        if (cfg.preemptGranularity == PreemptGranularity::Iteration &&
            j->session->activeStepper()) {
            continue;
        }
        if (!victim || eff < victim_eff ||
            (eff == victim_eff &&
             j->spec.arrival > victim->spec.arrival)) {
            victim = j;
            victim_eff = eff;
        }
    }
    return victim;
}

Job *
Scheduler::topChallengerOn(DeviceCtx &d, const Job &inflight)
{
    // Strictly higher effective priority only: at equal priority the
    // in-flight tenant keeps the device (no same-level thrash), and
    // parked (Suspended) residents cannot challenge — they wait until
    // they are top again.
    TimeNs now = cluster.now();
    double bar = effectivePriority(inflight, now);
    Job *top = nullptr;
    double top_eff = bar;
    for (JobId id : d.running) {
        Job *j = jobs[std::size_t(id)].get();
        if (j->id == inflight.id ||
            j->record.state != JobState::Running)
            continue;
        double eff = effectivePriority(*j, now);
        if (eff > top_eff) {
            top = j;
            top_eff = eff;
        }
    }
    return top;
}

void
Scheduler::parkInFlight(DeviceCtx &d, Job &victim, Job &challenger)
{
    // Salus-style fast switch: the victim's stepper freezes at its
    // current op boundary and every byte it holds stays resident, so
    // the reservation ledger does not move and no staging DMA is
    // issued. The beneficiary samples preemption latency at its first
    // dispatch (notePreemptionLatency keys on victimsPreempted).
    // record.preemptions is *not* bumped: the auditor equates that
    // count with evict events, and nothing was evicted.
    Bytes before = reservedBytesTotal();
    victim.session->suspend();
    victim.record.state = JobState::Suspended;
    logLifecycle(victim.id, "suspend", before, d.id);
    d.inFlight = -1;
    ++challenger.record.victimsPreempted;
    if (ctrPreemptions)
        ctrPreemptions->add();
}

bool
Scheduler::preempt(Job &victim)
{
    VDNN_ASSERT(victim.record.state == JobState::Running ||
                    victim.record.state == JobState::Suspended,
                "preempting job %d in state %s", victim.id,
                jobStateName(victim.record.state));
    DeviceCtx &d = *devs[std::size_t(victim.record.deviceId)];
    Bytes before = reservedBytesTotal();
    // An op-granularity dispatch preemption may already have parked
    // this victim resident (Suspended); eviction then just skips the
    // suspend step and stages the frozen state out.
    const bool was_parked =
        victim.record.state == JobState::Suspended;
    if (!was_parked) {
        victim.session->suspend();
        victim.record.state = JobState::Suspended;
        logLifecycle(victim.id, "suspend", before, d.id);
    }

    if (!victim.session->evictToHost()) {
        // Pinned host memory cannot stage the state; undo the park
        // (unless the victim was parked before this call — then it
        // stays parked, exactly as it was).
        if (!was_parked) {
            victim.session->resume();
            victim.record.state = JobState::Running;
            logLifecycle(victim.id, "resume", before, d.id);
        }
        return false;
    }
    d.admission.evict(victim.id);
    removeFromRunning(victim.id);
    admissionDirty = true;
    evictedJobs.push_back(victim.id);
    victim.record.state = JobState::Evicted;
    victim.record.waitingSince = cluster.now(); // aging resumes
    ++victim.record.preemptions;
    victim.stepBlocked = false; // evictToHost unwound any stepper
    logLifecycle(victim.id, "evict", before, d.id);
    if (ctrPreemptions)
        ctrPreemptions->add();
    if (cfg.telemetry.tracing()) {
        pendingPreemptFlow = cfg.telemetry.trace->flowStart(
            d.id, victim.id, "sched", "preempt", cluster.now());
    }
    // Schedule a resume sweep: if the beneficiary then fails
    // admission (setup OOM, host exhaustion partway through
    // makeRoomFor), the freed capacity must not strand the victim
    // until an unrelated job finishes.
    resumePending = true;
    return true;
}

bool
Scheduler::makeRoomFor(Job &job, const FootprintEstimate &est,
                       DeviceCtx &d)
{
    auto blocked = [&] {
        return (cfg.maxJobsInFlight > 0 &&
                jobsInFlight() >= cfg.maxJobsInFlight) ||
               !d.admission.canAdmit(est, job.reserveScale);
    };
    double bar = effectivePriority(job, cluster.now());
    while (blocked()) {
        Job *victim = pickVictim(d, bar);
        if (!victim || !preempt(*victim))
            return false; // nobody below this priority (or host full)
        ++job.record.victimsPreempted;
    }
    return true;
}

Scheduler::DeviceCtx *
Scheduler::pickPreemptDevice(Job &job)
{
    // Cluster make-room target: the feasible device holding the most
    // evictable reserved bytes strictly below the arrival's effective
    // priority — where makeRoomFor() has the best odds of clearing
    // enough space. Side-effect-free: nothing is evicted here.
    TimeNs now = cluster.now();
    double bar = effectivePriority(job, now);
    DeviceCtx *best = nullptr;
    Bytes best_evictable = 0;
    for (auto &dp : devs) {
        DeviceCtx &d = *dp;
        if (!d.admission.feasible(estimateFor(job, d),
                                  job.reserveScale)) {
            continue;
        }
        Bytes evictable = 0;
        for (JobId id : d.running) {
            Job &v = *jobs[std::size_t(id)];
            if (effectivePriority(v, now) >= bar)
                continue;
            if (cfg.preemptGranularity ==
                    PreemptGranularity::Iteration &&
                v.session->activeStepper()) {
                continue;
            }
            evictable += d.admission.reservationFor(estimateFor(v, d),
                                                    v.reserveScale);
        }
        if (evictable > 0 && (!best || evictable > best_evictable)) {
            best = &d;
            best_evictable = evictable;
        }
    }
    return best;
}

// --- buffer-granularity paging (Salus-style) ---------------------------------

Bytes
Scheduler::pageVictimBuffers(DeviceCtx &d, Bytes need)
{
    // Buffers before tenants: resident tenants drop their coldest
    // host-backed device copies (already-consumed prefetches the
    // backward pass will want again later) so an arrival whose
    // reservation fit on the ledger can actually set up, instead of
    // inflating its reservation or evicting a whole co-tenant.
    // Blocked tenants first: they are waiting on DMA joins anyway, so
    // the re-fetch hides behind the stall they were already serving.
    Bytes freed = 0;
    for (int pass = 0; pass < 2 && freed < need; ++pass) {
        for (JobId id : d.running) {
            if (freed >= need)
                break;
            Job &vic = *jobs[std::size_t(id)];
            if (vic.record.state != JobState::Running)
                continue;
            if ((pass == 0) != vic.stepBlocked)
                continue;
            Bytes before = reservedBytesTotal();
            Bytes got = vic.session->pageOut(need - freed);
            if (got <= 0)
                continue;
            freed += got;
            ++vic.record.pageOuts;
            if (ctrPageOuts)
                ctrPageOuts->add();
            // Ledger-neutral by construction: paging moves pool bytes,
            // not reservations (the auditor checks the zero delta).
            logLifecycle(vic.id, "page-out", before, d.id);
        }
    }
    return freed;
}

void
Scheduler::resumeEvictedSweep()
{
    // Under the priority policy: best *effective* priority first
    // (evicted tenants keep aging, so a long-parked job climbs this
    // order too), then earliest arrival. Otherwise earliest arrival —
    // either way, the order admission would have picked them in. Each
    // tenant resumes on the device it is homed on (post-migration).
    TimeNs now = cluster.now();
    std::vector<JobId> order = evictedJobs;
    std::sort(order.begin(), order.end(),
              [this, now](JobId a, JobId b) {
        const Job &ja = *jobs[std::size_t(a)];
        const Job &jb = *jobs[std::size_t(b)];
        if (cfg.policy == SchedPolicy::PreemptivePriority) {
            double ea = effectivePriority(ja, now);
            double eb = effectivePriority(jb, now);
            if (ea != eb)
                return ea > eb;
        }
        if (ja.spec.arrival != jb.spec.arrival)
            return ja.spec.arrival < jb.spec.arrival;
        return a < b;
    });
    for (JobId id : order) {
        // Readmission honours the in-flight cap exactly like fresh
        // admission does.
        if (cfg.maxJobsInFlight > 0 &&
            jobsInFlight() >= cfg.maxJobsInFlight) {
            break;
        }
        Job &job = *jobs[std::size_t(id)];
        tryResumeOn(job, *devs[std::size_t(job.record.deviceId)]);
    }
}

bool
Scheduler::tryResumeOn(Job &job, DeviceCtx &d)
{
    if (!d.admission.canReadmit(job.id))
        return false;
    Bytes before = reservedBytesTotal();
    // resume() re-plans against the current free share before
    // restoring the staged state; it may fail here (fragmentation,
    // co-tenant bursts above their reservations) — the tenant
    // simply stays evicted until the next capacity event.
    if (!job.session->resume())
        return false;
    d.admission.readmit(job.id);
    auto ev =
        std::find(evictedJobs.begin(), evictedJobs.end(), job.id);
    VDNN_ASSERT(ev != evictedJobs.end(), "job %d not evicted", job.id);
    evictedJobs.erase(ev);
    d.running.push_back(job.id);
    ++residentJobs;
    wake.add(d.id);
    admissionDirty = true;
    job.record.state = JobState::Running;
    stopWaiting(job);
    recordInflight();
    logLifecycle(job.id, "resume", before, d.id);
    return true;
}

void
Scheduler::logLifecycle(JobId id, const char *what,
                        Bytes reserved_before, int device)
{
    LifecycleEvent ev;
    ev.when = cluster.now();
    ev.job = id;
    ev.what = what;
    ev.device = device;
    ev.reservedBefore = reserved_before;
    ev.reservedAfter = reservedBytesTotal();
    lifecycleLog.push_back(ev);
    if (cfg.telemetry.tracing()) {
        cfg.telemetry.trace->instant(
            device, id, "sched", what, ev.when,
            strFormat(
                "{\"reserved_before\":%lld,\"reserved_after\":%lld}",
                (long long)ev.reservedBefore,
                (long long)ev.reservedAfter));
    }
}

void
Scheduler::recordInflight()
{
    int n = jobsInFlight();
    inflight.record(cluster.now(), double(n));
    peakInflight = std::max(peakInflight, n);
}

bool
Scheduler::allDone() const
{
    return numTerminal == int(jobs.size());
}

void
Scheduler::chargeIteration(Job &job, const core::IterationResult &r)
{
    ++job.record.itersDone;
    // Service time is derived solely from the iteration's own
    // [start, end) window, never from scheduler wall time: host
    // advances between iterations — in particular advancing the device
    // clock to the next sparse arrival while a job sits admitted with
    // no iteration in flight — must not be billed to any tenant.
    job.record.serviceTime += r.makespan();
    if (iterHist)
        iterHist->add(double(r.makespan()) / 1e6);
    if (job.record.itersDone == 1)
        adoptProfile(job);
}

void
Scheduler::adoptProfile(Job &job)
{
    // First-iteration profile: replace the analytic reservation with
    // the measured footprint (shrink-only; see
    // AdmissionController::updateReservation). From here on every
    // admission decision for this job — readmit after eviction,
    // migration-target fit — runs on measured bytes.
    const obs::ProfiledFootprint &fp = job.session->profiledFootprint();
    if (!fp.valid)
        return;
    job.measured.valid = true;
    job.measured.persistent = fp.persistent;
    job.measured.transient = fp.transientPeak;
    DeviceCtx &d = *devs[std::size_t(job.record.deviceId)];
    Bytes before = reservedBytesTotal();
    FootprintEstimate meas;
    meas.persistent = fp.persistent;
    meas.transient = fp.transientPeak;
    Bytes freed =
        d.admission.updateReservation(job.id, meas, job.reserveScale);
    if (ctrProfiles)
        ctrProfiles->add();
    logLifecycle(job.id, "profile", before, d.id);
    // Returned bytes may readmit a parked tenant right away — or let
    // a queued one through admission.
    if (freed > 0) {
        resumePending = true;
        admissionDirty = true;
    }
}

// --- cluster path (2+ devices) -----------------------------------------------

int
Scheduler::choosePlacement(Job &job)
{
    std::vector<DeviceLoad> loads;
    loads.reserve(devs.size());
    for (auto &d : devs) {
        DeviceLoad l;
        l.device = d->id;
        l.capacity = d->admission.capacity();
        l.reserved = d->admission.reservedBytes();
        l.runningJobs = int(d->running.size());
        l.fits = d->admission.canAdmit(estimateFor(job, *d),
                                       job.reserveScale);
        // FIFO-exclusive serves one tenant per device at a time.
        if (cfg.policy == SchedPolicy::FifoExclusive &&
            !d->running.empty()) {
            l.fits = false;
        }
        loads.push_back(l);
    }
    int pick = cfg.placement->place(loads);
    VDNN_ASSERT(pick == -1 ||
                    (pick >= 0 && pick < deviceCount() &&
                     loads[std::size_t(pick)].fits),
                "placement policy '%s' chose an unfit device %d",
                cfg.placement->name().c_str(), pick);
    return pick;
}

void
Scheduler::admitFromQueueCluster()
{
    // Same admission order as the single-device sweep: under the
    // priority policy the most important (aging-adjusted) arrivals
    // place first, FIFO within a level.
    if (cfg.policy == SchedPolicy::PreemptivePriority) {
        TimeNs now = cluster.now();
        queue.stableSort([this, now](JobId a, JobId b) {
            return effectivePriority(*jobs[std::size_t(a)], now) >
                   effectivePriority(*jobs[std::size_t(b)], now);
        });
    }
    std::size_t i = 0;
    while (i < queue.size()) {
        Job &job = *jobs[std::size_t(queue.at(i))];
        // Rejection only when no device of the cluster could ever
        // hold the (possibly backoff-inflated) reservation alone.
        bool feasible_somewhere = false;
        Bytes largest_cap = 0;
        for (auto &d : devs) {
            feasible_somewhere |= d->admission.feasible(
                estimateFor(job, *d), job.reserveScale);
            largest_cap = std::max(largest_cap,
                                   d->admission.capacity());
        }
        if (!feasible_somewhere) {
            queue.take(i);
            job.record.state = JobState::Rejected;
            ++numTerminal;
            job.record.finishTime = cluster.now();
            job.record.failReason = strFormat(
                "reservation exceeds every device's capacity "
                "(largest %s)",
                formatBytes(largest_cap).c_str());
            continue;
        }
        if (cfg.maxJobsInFlight > 0 &&
            jobsInFlight() >= cfg.maxJobsInFlight) {
            break;
        }
        int target = choosePlacement(job);
        if (target < 0 &&
            cfg.policy == SchedPolicy::PreemptivePriority) {
            // No device fits outright: evict below-priority tenants
            // on the device holding the most reclaimable reservation,
            // then place there.
            if (DeviceCtx *pd = pickPreemptDevice(job)) {
                if (makeRoomFor(job, estimateFor(job, *pd), *pd))
                    target = pd->id;
            }
        }
        if (target < 0) {
            // Nothing fits right now. FIFO keeps strict arrival order
            // (no later job may jump a blocked head, matching the
            // single-device path); the packing policies backfill.
            if (cfg.policy == SchedPolicy::FifoExclusive)
                break;
            ++i;
            continue;
        }
        DeviceCtx &d = *devs[std::size_t(target)];
        if (tryAdmit(job, estimateFor(job, d), d)) {
            queue.take(i);
            continue;
        }
        // No progress despite a fitting reservation: page co-tenants'
        // cold buffers before inflating this job's reservation.
        if (cfg.bufferPaging &&
            pageVictimBuffers(d, d.admission.reservationFor(
                                     estimateFor(job, d),
                                     job.reserveScale)) > 0 &&
            tryAdmit(job, estimateFor(job, d), d)) {
            queue.take(i);
            continue;
        }
        if (backoffAfterSetupOom(job, i))
            continue;
        ++i;
    }
}

Job *
Scheduler::pickNextOn(DeviceCtx &d)
{
    VDNN_ASSERT(!d.running.empty(), "pickNextOn() with nothing running");
    if (cfg.policy == SchedPolicy::FifoExclusive)
        return jobs[std::size_t(d.running.front())].get();
    if (cfg.policy == SchedPolicy::ShortestRemaining) {
        Job *best = nullptr;
        for (JobId id : d.running) {
            Job *j = jobs[std::size_t(id)].get();
            int rem = j->spec.iterations - j->record.itersDone;
            if (!best ||
                rem < best->spec.iterations - best->record.itersDone) {
                best = j;
            }
        }
        return best;
    }
    if (cfg.policy == SchedPolicy::PreemptivePriority) {
        // Strict (effective) priority; round-robin within the top
        // level. Aged-in tenants keep their earned boost here too.
        TimeNs now = cluster.now();
        double top =
            effectivePriority(*jobs[std::size_t(d.running.front())],
                              now);
        for (JobId id : d.running) {
            top = std::max(
                top, effectivePriority(*jobs[std::size_t(id)], now));
        }
        for (std::size_t k = 0; k < d.running.size(); ++k) {
            std::size_t idx = (d.rrCursor + k) % d.running.size();
            Job *j = jobs[std::size_t(d.running[idx])].get();
            if (effectivePriority(*j, now) == top) {
                d.rrCursor = idx + 1;
                return j;
            }
        }
    }
    if (d.rrCursor >= d.running.size())
        d.rrCursor = 0;
    return jobs[std::size_t(d.running[d.rrCursor++])].get();
}

bool
Scheduler::stepDeviceOnce(DeviceCtx &d)
{
    if (d.running.empty()) {
        ++statFruitlessPolls;
        return false;
    }
    Job *job = nullptr;
    if (d.inFlight >= 0) {
        job = jobs[std::size_t(d.inFlight)].get();
        // Op-granularity dispatch preemption: ledger room is not the
        // only resource a high-priority arrival needs — it needs the
        // SMs. At iteration granularity the device hands over only at
        // the in-flight tenant's boundary; at op granularity a
        // strictly higher-priority resident tenant takes the device at
        // the next op step. The in-flight tenant parks *resident*
        // (suspend() freezes its stepper mid-iteration, memory and
        // ledger reservation untouched) and continues byte-identically
        // when it is next picked, so the switch costs no DMA at all.
        if (cfg.policy == SchedPolicy::PreemptivePriority &&
            cfg.preemptGranularity == PreemptGranularity::Op) {
            Job *top = topChallengerOn(d, *job);
            if (top) {
                parkInFlight(d, *job, *top);
                job = nullptr;
            }
        }
    }
    if (!job) {
        job = pickNextOn(d);
        if (job->record.state == JobState::Suspended) {
            // A parked-resident victim is top again: un-freeze its
            // stepper and continue the interrupted iteration in place.
            Bytes before = reservedBytesTotal();
            job->session->resume();
            job->record.state = JobState::Running;
            logLifecycle(job->id, "resume", before, d.id);
        }
        // Grow-back sweep: a co-tenant exited since this tenant last
        // ran; planners that support it re-plan in place against the
        // fresh free share at this iteration boundary.
        if (job->replanRequested) {
            job->replanRequested = false;
            if (cfg.policy == SchedPolicy::PreemptivePriority &&
                !job->session->activeStepper()) {
                Bytes before = reservedBytesTotal();
                if (job->session->replan()) {
                    ++job->record.replans;
                    logLifecycle(job->id, "replan", before, d.id);
                }
            }
        }
        if (job->record.firstDispatchTime == kTimeNone) {
            job->record.firstDispatchTime = cluster.now();
            notePreemptionLatency(*job);
        }
        if (!job->session->activeStepper())
            job->session->beginIteration();
        job->stepBlocked = false;
        d.inFlight = job->id;
    }
    core::IterationStepper *st = job->session->activeStepper();
    VDNN_ASSERT(st, "in-flight job %d has no stepper", job->id);
    if (job->stepBlocked && !forceWakeAll) {
        // Still blocked: no completion has landed on this tenant's
        // streams since the stepper last returned Blocked, so a
        // re-poll must block again — skip the pure call.
        ++statFruitlessPolls;
        return false;
    }
    core::IterationStepper::Status s = st->step(/*blocking=*/false);
    if (s == core::IterationStepper::Status::Blocked) {
        job->stepBlocked = true;
        ++statFruitlessPolls;
        return false;
    }
    if (!st->finished())
        return true;
    d.inFlight = -1;
    core::IterationResult r = job->session->completeIteration();
    if (r.ok) {
        chargeIteration(*job, r);
        if (job->record.itersDone >= job->spec.iterations)
            finishJob(*job, JobState::Finished);
    } else {
        // In-flight OOM: only this job's iteration aborts; it is torn
        // down and requeued (it may be re-placed on another device).
        evictForRequeue(*job);
    }
    // Completed-iteration boundary: effective priorities aged, so the
    // priority policy's admission decisions (sort order, make-room
    // bar) may have shifted on time alone — rescan next turn.
    if (cfg.policy == SchedPolicy::PreemptivePriority)
        admissionDirty = true;
    return true;
}

bool
Scheduler::sweepPacked(DeviceCtx &d)
{
    // Op-granularity packing: every resident tenant owns a resumable
    // IterationStepper over its compiled IterationProgram. One sweep
    // offers each tenant a single step; a tenant blocked on a stream
    // join (its offload or prefetch still in flight) is skipped rather
    // than allowed to stall the host, so the next tenant's compute op
    // dispatches under the blocked tenant's DMA.
    if (d.running.empty()) {
        ++statFruitlessPolls;
        return false;
    }
    bool progress = false;
    std::vector<JobId> round = d.running;
    for (JobId id : round) {
        Job &job = *jobs[std::size_t(id)];
        if (job.record.state != JobState::Running)
            continue; // finished or evicted earlier in this round
        core::IterationStepper *st = job.session->activeStepper();
        if (!st) {
            if (job.record.firstDispatchTime == kTimeNone) {
                job.record.firstDispatchTime = cluster.now();
                notePreemptionLatency(job);
            }
            st = &job.session->beginIteration();
            job.stepBlocked = false;
        }
        if (job.stepBlocked && !forceWakeAll) {
            // No completion on this tenant's streams since it
            // blocked: the re-poll is provably fruitless.
            ++statFruitlessPolls;
            continue;
        }
        core::IterationStepper::Status s =
            st->step(/*blocking=*/false);
        if (s == core::IterationStepper::Status::Blocked) {
            job.stepBlocked = true;
            ++statFruitlessPolls;
            continue;
        }
        progress = true;
        if (!st->finished())
            continue;
        core::IterationResult r = job.session->completeIteration();
        if (r.ok) {
            chargeIteration(job, r);
            if (job.record.itersDone >= job.spec.iterations)
                finishJob(job, JobState::Finished);
        } else {
            evictForRequeue(job);
        }
    }
    return progress;
}

bool
Scheduler::sweepDevice(DeviceCtx &d)
{
    return cfg.policy == SchedPolicy::PackedOverlap ? sweepPacked(d)
                                                    : stepDeviceOnce(d);
}

void
Scheduler::notePreemptionLatency(const Job &job)
{
    // Only beneficiaries sample the metric: arrival to first kernel
    // dispatch of a job that had to evict someone to get in is the
    // responsiveness its priority actually bought.
    if (job.record.victimsPreempted > 0 && preemptLatAcc) {
        preemptLatAcc->add(
            double(job.record.firstDispatchTime - job.spec.arrival) /
            1e6);
    }
}

void
Scheduler::maybeRebalance()
{
    if (cfg.rebalancePeriod <= 0 || deviceCount() < 2)
        return;
    TimeNs now = cluster.now();
    if (nextRebalance == kTimeNone) {
        nextRebalance = now + cfg.rebalancePeriod;
        return;
    }
    if (now < nextRebalance)
        return;
    nextRebalance = now + cfg.rebalancePeriod;

    DeviceCtx *src = nullptr;
    DeviceCtx *dst = nullptr;
    for (auto &d : devs) {
        if (!src || d->running.size() > src->running.size())
            src = d.get();
        if (!dst || d->running.size() < dst->running.size())
            dst = d.get();
    }
    if (!src || !dst || src == dst)
        return;
    if (int(src->running.size()) - int(dst->running.size()) <
        cfg.rebalanceThreshold) {
        return;
    }

    // Smallest-footprint tenant not mid-iteration: cheapest state to
    // move over PCIe, and nothing to cancel.
    Job *cand = nullptr;
    for (JobId id : src->running) {
        Job *j = jobs[std::size_t(id)].get();
        if (id == src->inFlight || j->session->activeStepper())
            continue;
        if (!cand || j->session->persistentBytes() <
                         cand->session->persistentBytes()) {
            cand = j;
        }
    }
    if (!cand)
        return;
    if (!dst->admission.canAdmit(estimateFor(*cand, *dst),
                                 cand->reserveScale)) {
        return;
    }
    migrateJob(*cand, *src, *dst);
}

bool
Scheduler::migrateJob(Job &job, DeviceCtx &src, DeviceCtx &dst)
{
    VDNN_ASSERT(job.record.state == JobState::Running,
                "migrating job %d in state %s", job.id,
                jobStateName(job.record.state));
    Bytes before = reservedBytesTotal();
    job.session->suspend();
    if (!job.session->evictToHost()) {
        job.session->resume();
        return false; // source host share full; stay put
    }
    // Hand the reservation over: off the source ledger entirely
    // (release drops a resident reservation directly; the evicted
    // ledger is for tenants that will resume on the *same* device),
    // onto the target's. The offload traffic accrued on the source is
    // banked before migrate() rebuilds the memory manager.
    Bytes src_offloaded = job.session->memory().offloadedBytes();
    Bytes src_peak = src.pool->peakByClient(job.id);
    src.admission.release(job.id);
    removeFromRunning(job.id);
    // Both outcomes move ledger entries across devices.
    admissionDirty = true;
    ++src.migrationsOut;
    job.record.state = JobState::Evicted;
    logLifecycle(job.id, "migrate-out", before, src.id);
    // The migrate-out event above already accounted the source
    // release; the migrate/migrate-stall event below must chain from
    // the ledger as it stands *now*, or its delta double-counts it.
    before = reservedBytesTotal();
    std::uint64_t flow = 0;
    if (cfg.telemetry.tracing()) {
        flow = cfg.telemetry.trace->flowStart(
            src.id, job.id, "sched", "migrate", cluster.now());
    }

    const FootprintEstimate &est = estimateFor(job, dst);
    dst.admission.admit(job.id, est, job.reserveScale);
    core::SharedGpu target;
    target.runtime = dst.dev;
    target.pool = dst.pool;
    target.host = dst.host;
    target.clientId = job.id;
    bool ok = job.session->migrate(target);
    bool rehomed = job.session->deviceId() == dst.id;
    if (rehomed) {
        job.record.offloadedBytesPrior += src_offloaded;
        job.record.peakPoolBytes =
            std::max(job.record.peakPoolBytes, src_peak);
        job.record.deviceId = dst.id;
        job.record.placements.push_back(dst.id);
        ++job.record.migrations;
        ++dst.migrationsIn;
        ++dst.jobsPlaced;
    }
    if (!ok) {
        // The tenant is parked Evicted — on the target when the
        // re-plan/rebuild failed there, still on the source when its
        // pinned-host share refused the staged state. Either way the
        // resume sweep retries on the device it is homed on.
        if (rehomed) {
            dst.admission.evict(job.id);
        } else {
            dst.admission.release(job.id);
            src.admission.admit(job.id, estimateFor(job, src),
                                job.reserveScale);
            src.admission.evict(job.id);
        }
        evictedJobs.push_back(job.id);
        resumePending = true;
        logLifecycle(job.id, "migrate-stall", before,
                     job.record.deviceId);
        if (flow) {
            cfg.telemetry.trace->flowEnd(flow, job.record.deviceId,
                                         job.id, "sched", "migrate",
                                         cluster.now());
        }
        return false;
    }
    job.record.state = JobState::Running;
    dst.running.push_back(job.id);
    ++residentJobs;
    wake.add(dst.id); // the migrant's next iteration starts here
    recordInflight();
    logLifecycle(job.id, "migrate", before, dst.id);
    if (ctrMigrations)
        ctrMigrations->add();
    if (cfg.telemetry.tracing()) {
        cfg.telemetry.trace->setThreadName(dst.id, job.id,
                                           job.spec.name);
        if (flow) {
            cfg.telemetry.trace->flowEnd(flow, dst.id, job.id, "sched",
                                         "migrate", cluster.now());
        }
    }
    return true;
}

void
Scheduler::runEngine()
{
    // The one serve loop: every policy at every device count. Each
    // device's resident set advances through resumable steppers while
    // its siblings' kernels and DMAs run on the shared clock, so N
    // devices genuinely serve N tenants' compute concurrently — and
    // under PackedOverlap every resident tenant of a device holds a
    // live stepper at once.
    //
    // The loop is event-driven. The old per-configuration loops
    // polled: every turn rescanned the admission queue and offered
    // every tenant a step, an O(devices + tenants + queued) toll per
    // executed event. Here each turn drains only the wake-set — the
    // devices whose state actually changed since they last made no
    // progress (a completion event executed on them, or a tenant was
    // admitted / resumed / migrated in) — and within a device each
    // tenant carries a blocked-stepper memo (Job::stepBlocked, cleared
    // by the wake hook of the one tenant whose stream the completion
    // landed on), so a thousand-tenant device re-polls one tenant per
    // completion, not a thousand. The admission rescan runs only when
    // `admissionDirty` says one of its inputs moved. Outputs are
    // byte-identical to the polling loops because every skipped call
    // was pure: a non-blocking step offered to a blocked or empty
    // tenant returns without side effects, and a rescan with unchanged
    // inputs reproduces its previous (fruitless) decisions.
    //
    // The classic single-device iteration-granularity configurations
    // instead run their preamble exactly at iteration boundaries, with
    // an *unconditional* admission rescan there — the legacy loops'
    // cadence, which matters under the priority policy because aging
    // makes admission order a function of time, not just of ledger
    // events. (At Op preemption granularity the preamble runs every
    // turn: a high-priority arrival must not wait out an iteration to
    // be seen.)
    //
    // Arrivals stay turn-boundary-scheduled rather than becoming real
    // clock events: collectArrivals() is O(1) until the cached
    // nextPendingArrival is due (a real arrival-time event would
    // process the queue *mid*-turn and shift admit times). The idle
    // path advances straight to that cached arrival, and rebalance
    // sweeps gate on their precomputed next-due time.
    const bool boundary_preamble =
        deviceCount() == 1 &&
        cfg.policy != SchedPolicy::PackedOverlap &&
        cfg.preemptGranularity == PreemptGranularity::Iteration;
    for (auto &d : devs)
        wake.add(d->id);
    while (!allDone()) {
        if (!boundary_preamble || devs[0]->inFlight < 0) {
            collectArrivals();
            if (boundary_preamble) {
                admitFromQueue();
            } else if (admissionDirty) {
                admissionDirty = false;
                // May re-dirty itself: a setup-OOM backoff must retry
                // against the pool's next-turn state, every turn,
                // until it admits or goes terminal (the polling
                // cadence).
                if (deviceCount() == 1)
                    admitFromQueue();
                else
                    admitFromQueueCluster();
            }
            if (resumePending) {
                resumePending = false;
                resumeEvictedSweep();
            }
            if (cfg.rebalancePeriod > 0 &&
                (nextRebalance == kTimeNone ||
                 cluster.now() >= nextRebalance)) {
                maybeRebalance();
            }

            if (residentJobs == 0) {
                if (!evictedJobs.empty()) {
                    // Preempted tenants and nothing resident: readmit.
                    resumeEvictedSweep();
                    if (residentJobs > 0)
                        continue;
                }
                TimeNs next = nextPendingArrivalTime();
                if (next == kTimeNone) {
                    if (!evictedJobs.empty()) {
                        // Backstop: an evicted tenant that cannot come
                        // back even with the cluster drained must go
                        // terminal, not hang the scheduler.
                        std::vector<JobId> stuck = evictedJobs;
                        for (JobId id : stuck) {
                            finishJob(*jobs[std::size_t(id)],
                                      JobState::Failed,
                                      "evicted tenant could not be "
                                      "readmitted: " +
                                          jobs[std::size_t(id)]
                                              ->session->failReason());
                        }
                        continue;
                    }
                    // Nothing running, nothing admissible, nothing
                    // still to arrive: every job went terminal.
                    break;
                }
                ++statIdleAdvances;
                cluster.advanceTo(next);
                continue;
            }
        }

        if (forceWakeAll) {
            // Spurious-wakeup test mode: degenerate to the polling
            // scan (the sweeps also bypass the per-tenant memo).
            // Extra offers to blocked tenants are pure, so the
            // equivalence goldens must still hold.
            for (auto &d : devs)
                wake.add(d->id);
        }
        // Ascending-id sweep over the live wake-set. A device woken
        // *above* the cursor mid-sweep (a teardown's stream drain
        // executes events) is stepped this turn, one woken at or
        // below it next turn — both exactly when the polling scan
        // would have offered it a step. A device leaves the set only
        // when its offer makes no progress; it re-enters via its wake
        // hook or an admission, so a runnable device is never
        // stranded.
        bool progress = false;
        for (int id = wake.next(0); id != -1; id = wake.next(id + 1)) {
            if (sweepDevice(*devs[std::size_t(id)]))
                progress = true;
            else
                wake.remove(id);
        }
        if (!progress) {
            // Every woken tenant is blocked on in-flight device work
            // (or the set is empty); run the single next completion —
            // its wake hook repopulates the set and clears exactly the
            // blocked memo of the tenant whose stream drained.
            bool advanced = cluster.stepDevice();
            VDNN_ASSERT(advanced,
                        "all tenants blocked with an empty event queue");
        }
    }
}

ServeReport
Scheduler::run()
{
    VDNN_ASSERT(!ran, "run() called twice");
    ran = true;
    runEngine();
    return buildReport();
}

ServeReport
Scheduler::buildReport()
{
    inflight.finish(cluster.now());
    for (auto &d : devs)
        d->track.finish();

    ServeReport rep;
    rep.schedulerName = schedPolicyName(cfg.policy);
    rep.deviceCount = deviceCount();
    if (deviceCount() > 1) {
        rep.gpuName = strFormat("%s x%d",
                                devs[0]->dev->spec().name.c_str(),
                                deviceCount());
        rep.placementName = cfg.placement->name();
    } else {
        rep.gpuName = devs[0]->dev->spec().name;
    }
    rep.peakJobsInFlight = peakInflight;
    rep.avgJobsInFlight = inflight.average();
    for (auto &d : devs) {
        rep.poolCapacity += d->pool->capacity();
        rep.poolPeakBytes += d->track.peakBytes();
        rep.poolAvgBytes += d->track.averageBytes();
        rep.computeBusyTime += d->dev->computeBusyTime();
        rep.copyBusyTime +=
            d->dev->copyBusyTime(gpu::CopyDir::DeviceToHost) +
            d->dev->copyBusyTime(gpu::CopyDir::HostToDevice);
        rep.reservedBytesAtEnd += d->admission.reservedBytes();
        rep.evictedLedgerAtEnd += d->admission.evictedCount();

        DeviceOutcome out;
        out.device = d->id;
        out.gpuName = d->dev->spec().name;
        out.poolCapacity = d->pool->capacity();
        out.poolPeakBytes = d->track.peakBytes();
        out.poolAvgBytes = d->track.averageBytes();
        out.computeBusyTime = d->dev->computeBusyTime();
        out.jobsPlaced = d->jobsPlaced;
        out.migrationsIn = d->migrationsIn;
        out.migrationsOut = d->migrationsOut;
        out.reservedAtEnd = d->admission.reservedBytes();
        out.evictedLedgerAtEnd = d->admission.evictedCount();
        rep.devices.push_back(std::move(out));
    }
    rep.lifecycle = lifecycleLog;
    if (cfg.keepTimeline) {
        // Device 0's pool trace (the whole story on a single GPU).
        rep.poolTimeline = devs[0]->track.signal().timeline();
        rep.inflightTimeline = inflight.timeline();
    }

    TimeNs first_arrival = kTimeNone;
    TimeNs last_finish = 0;
    for (const auto &job : jobs) {
        const JobRecord &rec = job->record;
        JobOutcome out;
        out.id = job->id;
        out.name = job->spec.name;
        out.configName = job->spec.planner->name();
        out.state = rec.state;
        out.priority = job->spec.priority;
        out.arrival = job->spec.arrival;
        out.admitTime = rec.admitTime;
        out.firstDispatchTime = rec.firstDispatchTime;
        out.finishTime = rec.finishTime;
        out.queueingDelay = job->queueingDelay();
        out.completionTime = rec.state == JobState::Finished
                                 ? job->completionTime()
                                 : 0;
        out.serviceTime = rec.serviceTime;
        out.iterations = rec.itersDone;
        out.oomRequeues = rec.oomRequeues;
        out.preemptions = rec.preemptions;
        out.replans = rec.replans;
        out.pageOuts = rec.pageOuts;
        out.victimsPreempted = rec.victimsPreempted;
        out.migrations = rec.migrations;
        out.device = rec.deviceId;
        out.placements = rec.placements;
        out.persistentBytes = rec.persistentBytes;
        out.peakPoolBytes = rec.peakPoolBytes;
        out.offloadedBytes = rec.offloadedBytes;
        out.sloJct = job->spec.sloJct;
        out.failReason = rec.failReason;
        rep.jobs.push_back(std::move(out));

        if (first_arrival == kTimeNone ||
            job->spec.arrival < first_arrival) {
            first_arrival = job->spec.arrival;
        }
        if (rec.finishTime != kTimeNone)
            last_finish = std::max(last_finish, rec.finishTime);
    }
    if (first_arrival != kTimeNone && last_finish > first_arrival)
        rep.makespan = last_finish - first_arrival;

    rep.loopWakeups = statWakeups;
    rep.loopFruitlessPolls = statFruitlessPolls;
    rep.loopIdleAdvances = statIdleAdvances;
    if (obs::MetricsRegistry *m = cfg.telemetry.metrics) {
        m->counter("serve.wakeups").add(double(statWakeups));
        m->counter("serve.fruitless_polls")
            .add(double(statFruitlessPolls));
        m->counter("serve.idle_advances").add(double(statIdleAdvances));
    }
    return rep;
}

} // namespace vdnn::serve
