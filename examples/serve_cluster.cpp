/**
 * @file
 * Multi-tenant serving demo: pack a queue of VGG-16 training jobs
 * onto one simulated 12 GB Titan X and compare scheduling/memory
 * policies.
 *
 * The status quo (FIFO-exclusive, baseline allocator) runs one job at
 * a time with head-of-line blocking. vDNN's reduced residency lets
 * the round-robin scheduler admit several tenants at once: queueing
 * delay collapses and short jobs stop waiting behind long ones.
 *
 * Usage: serve_cluster [njobs] [batch]
 */

#include "common/logging.hh"
#include "common/random.hh"
#include "common/units.hh"
#include "core/planner.hh"
#include "net/builders.hh"
#include "serve/arrival.hh"
#include "serve/scheduler.hh"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>

using namespace vdnn;
using namespace vdnn::serve;

namespace
{

using PlannerFactory = std::function<std::shared_ptr<core::Planner>()>;

PlannerFactory
baselineM()
{
    return [] {
        return std::make_shared<core::BaselinePlanner>(
            core::AlgoPreference::MemoryOptimal);
    };
}

PlannerFactory
offloadAllM()
{
    return [] {
        return std::make_shared<core::OffloadAllPlanner>(
            core::AlgoPreference::MemoryOptimal);
    };
}

ServeReport
runCluster(const std::shared_ptr<const net::Network> &network,
           int njobs, SchedPolicy sched, const PlannerFactory &planner)
{
    SchedulerConfig cfg;
    cfg.policy = sched;

    Scheduler scheduler(cfg);

    // The same deterministic workload for every configuration:
    // Poisson arrivals (2 jobs/s) and budgets mixing short fine-tune
    // jobs with longer training runs.
    SplitMix64 rng(42);
    std::vector<TimeNs> arrivals = poissonArrivals(njobs, 2.0, rng);
    for (int i = 0; i < njobs; ++i) {
        JobSpec spec;
        spec.name = strFormat("vgg16-%d", i);
        spec.network = network;
        spec.planner = planner();
        spec.arrival = arrivals[std::size_t(i)];
        spec.iterations = int(1 + rng.nextRange(1, 7));
        scheduler.submit(std::move(spec));
    }
    return scheduler.run();
}

} // namespace

int
main(int argc, char **argv)
{
    int njobs = argc > 1 ? std::atoi(argv[1]) : 8;
    std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 64;

    std::shared_ptr<const net::Network> network =
        net::buildVgg16(batch);
    std::printf("workload: %d x %s training jobs, Poisson arrivals, "
                "mixed iteration budgets\n\n",
                njobs, network->name().c_str());

    struct Config
    {
        const char *label;
        SchedPolicy sched;
        PlannerFactory planner;
    };
    const Config configs[] = {
        {"fifo-exclusive + baseline", SchedPolicy::FifoExclusive,
         baselineM()},
        {"round-robin + baseline", SchedPolicy::RoundRobin,
         baselineM()},
        {"fifo-exclusive + vDNN_all", SchedPolicy::FifoExclusive,
         offloadAllM()},
        {"round-robin + vDNN_all", SchedPolicy::RoundRobin,
         offloadAllM()},
        {"shortest-remaining + vDNN_all", SchedPolicy::ShortestRemaining,
         offloadAllM()},
    };

    for (const Config &c : configs) {
        ServeReport rep =
            runCluster(network, njobs, c.sched, c.planner);
        std::printf("=== %s ===\n", c.label);
        rep.summaryTable().print();
        rep.jobTable().print();
        std::printf("\n");
    }

    std::printf("vDNN virtualization turns freed memory into tenancy:\n"
                "the round-robin + vDNN_all configuration packs several\n"
                "jobs onto the device, eliminating queueing delay.\n");
    return 0;
}
