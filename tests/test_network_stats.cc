/**
 * @file
 * Tests for the analytic memory accounting (NetworkStats): baseline
 * breakdowns, gradient-map peaks, per-layer usage rows, and the
 * calibration anchors the paper's motivation figures rest on.
 */

#include "net/network_stats.hh"

#include "common/units.hh"
#include "dnn/cudnn_sim.hh"
#include "gpu/gpu_spec.hh"
#include "net/builders.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::net;
using namespace vdnn::literals;

class NetworkStatsTest : public ::testing::Test
{
  protected:
    dnn::CudnnSim cudnn{gpu::titanXMaxwell()};
};

TEST_F(NetworkStatsTest, MemoryOptimalHasZeroWorkspace)
{
    auto net = buildVgg16(64);
    NetworkStats ns(*net, cudnn);
    auto algos = memoryOptimalAlgos(*net);
    EXPECT_EQ(ns.maxWorkspaceBytes(algos), 0);
}

TEST_F(NetworkStatsTest, PerformanceOptimalNeedsWorkspace)
{
    auto net = buildVgg16(64);
    NetworkStats ns(*net, cudnn);
    auto algos = performanceOptimalAlgos(*net, cudnn);
    EXPECT_GT(ns.maxWorkspaceBytes(algos), 100_MiB);
}

TEST_F(NetworkStatsTest, BreakdownComponentsSumToTotal)
{
    auto net = buildAlexNet(128);
    NetworkStats ns(*net, cudnn);
    auto algos = performanceOptimalAlgos(*net, cudnn);
    auto b = ns.baselineBreakdown(algos);
    EXPECT_EQ(b.total(), b.weights + b.featureMaps + b.gradientMaps +
                             b.workspace);
    EXPECT_GT(b.weights, 0);
    EXPECT_GT(b.featureMaps, 0);
    EXPECT_GT(b.gradientMaps, 0);
}

TEST_F(NetworkStatsTest, PaperAnchorAlexNetAround1GB)
{
    auto net = buildAlexNet(128);
    NetworkStats ns(*net, cudnn);
    double gb =
        double(ns.baselineBreakdown(memoryOptimalAlgos(*net)).total()) /
        1e9;
    EXPECT_GT(gb, 0.8);
    EXPECT_LT(gb, 1.5); // paper: 1.1 GB
}

TEST_F(NetworkStatsTest, PaperAnchorVgg16b256NeedsOver20GB)
{
    auto net = buildVgg16(256);
    NetworkStats ns(*net, cudnn);
    double gb =
        double(ns.baselineBreakdown(performanceOptimalAlgos(*net, cudnn))
                   .total()) /
        1e9;
    EXPECT_GT(gb, 20.0);
    EXPECT_LT(gb, 32.0); // paper: 28 GB
}

TEST_F(NetworkStatsTest, PaperAnchorVgg16b128MFitsTitanX)
{
    // The power study requires baseline (m) VGG-16 (128) to train.
    auto net = buildVgg16(128);
    NetworkStats ns(*net, cudnn);
    EXPECT_LE(ns.baselineBreakdown(memoryOptimalAlgos(*net)).total(),
              gpu::titanXMaxwell().dramCapacity);
    // ... while (p) must not fit (Fig. 11 asterisk).
    EXPECT_GT(ns.baselineBreakdown(performanceOptimalAlgos(*net, cudnn))
                  .total(),
              gpu::titanXMaxwell().dramCapacity);
}

TEST_F(NetworkStatsTest, GradientPeakIsTwoMaxBuffersOnLinearNets)
{
    // For VGG the two largest adjacent gradient maps are the first conv
    // group's 224x224x64 buffers.
    auto net = buildVgg16(64);
    NetworkStats ns(*net, cudnn);
    Bytes big = Bytes(64) * 64 * 224 * 224 * 4;
    EXPECT_EQ(ns.peakGradientBytes(false), 2 * big);
}

TEST_F(NetworkStatsTest, GradientScopesArePartitioned)
{
    auto net = buildAlexNet(128);
    NetworkStats ns(*net, cudnn);
    using Scope = NetworkStats::GradScope;
    Bytes all = ns.peakGradientBytesScoped(Scope::All);
    Bytes managed = ns.peakGradientBytesScoped(Scope::Managed);
    Bytes classifier = ns.peakGradientBytesScoped(Scope::Classifier);
    EXPECT_LE(managed, all);
    EXPECT_LE(classifier, all);
    EXPECT_GE(managed + classifier, all);
}

TEST_F(NetworkStatsTest, ManagedExcludesClassifierWeights)
{
    auto net = buildVgg16(64);
    NetworkStats ns(*net, cudnn);
    auto algos = memoryOptimalAlgos(*net);
    auto full = ns.baselineBreakdown(algos);
    auto managed = ns.managedBreakdown(algos);
    // VGG's classifier holds ~494 MB of weights; the managed view drops
    // them.
    EXPECT_LT(managed.weights, full.weights / 4);
    EXPECT_LT(managed.total(), full.total());
}

TEST_F(NetworkStatsTest, ClassifierBytesSmallShareForVgg)
{
    auto net = buildVgg16(256);
    NetworkStats ns(*net, cudnn);
    auto algos = memoryOptimalAlgos(*net);
    Bytes total = ns.baselineBreakdown(algos).total();
    // Section III: feature extraction is 96% of VGG-16 (256), so the
    // classifier is ~4%.
    EXPECT_LT(ns.classifierBytes(), total / 10);
}

TEST_F(NetworkStatsTest, PerLayerRowsCoverConvAndFcOnly)
{
    auto net = buildVgg16(64);
    NetworkStats ns(*net, cudnn);
    auto rows = ns.perLayerForward(performanceOptimalAlgos(*net, cudnn));
    EXPECT_EQ(rows.size(), 16u + 3u);
    for (const auto &row : rows) {
        EXPECT_TRUE(row.kind == dnn::LayerKind::Conv ||
                    row.kind == dnn::LayerKind::Fc);
        EXPECT_GT(row.x, 0);
    }
}

TEST_F(NetworkStatsTest, MaxLayerwiseUsageFarBelowTotal)
{
    for (int depth : {116, 216}) {
        auto net = buildVggDeep(depth, 32);
        NetworkStats ns(*net, cudnn);
        auto algos = memoryOptimalAlgos(*net);
        Bytes total = ns.baselineBreakdown(algos).total();
        Bytes layer = ns.maxLayerWiseUsage(algos);
        // The deeper the network, the smaller the fraction (Fig. 1).
        EXPECT_LT(layer * 10, total);
    }
}

TEST_F(NetworkStatsTest, DeepVggScalingAnchors)
{
    // Fig. 15: baseline growth ~14x from VGG-16 to VGG-416 (batch 32),
    // reaching ~67 GB.
    auto base = buildVgg16(32);
    auto deep = buildVggDeep(416, 32);
    NetworkStats ns16(*base, cudnn);
    NetworkStats ns416(*deep, cudnn);
    double gb16 = double(ns16.baselineBreakdown(memoryOptimalAlgos(*base))
                             .total()) /
                  1e9;
    double gb416 =
        double(ns416.baselineBreakdown(memoryOptimalAlgos(*deep)).total()) /
        1e9;
    EXPECT_GT(gb416 / gb16, 10.0);
    EXPECT_LT(gb416 / gb16, 20.0);
    EXPECT_NEAR(gb416, 67.1, 8.0);
}

TEST_F(NetworkStatsTest, GoogLeNetGradientPeakHandlesForks)
{
    // The inception joins keep several branch gradients live at once;
    // the analysis must not underflow or explode.
    auto net = buildGoogLeNet(128);
    NetworkStats ns(*net, cudnn);
    Bytes peak = ns.peakGradientBytes(false);
    EXPECT_GT(peak, 100_MiB);
    EXPECT_LT(peak, 2_GiB);
}
