#include "interconnect/pcie_link.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace vdnn::ic
{

PcieSpec
pcieGen3x16()
{
    return PcieSpec{};
}

PcieSpec
nvlinkGen1()
{
    PcieSpec s;
    s.name = "NVLINK gen1";
    s.rawBandwidth = 80.0e9;
    s.dmaBandwidth = 68.0e9;
    s.setupLatency = 2000; // 2 us
    return s;
}

PcieLink::PcieLink(PcieSpec spec) : linkSpec(std::move(spec))
{
    VDNN_ASSERT(linkSpec.dmaBandwidth > 0.0 &&
                    linkSpec.dmaBandwidth <= linkSpec.rawBandwidth,
                "inconsistent PCIe bandwidths");
    VDNN_ASSERT(linkSpec.setupLatency >= 0, "negative setup latency");
}

TimeNs
PcieLink::transferTime(Bytes bytes) const
{
    VDNN_ASSERT(bytes >= 0, "negative transfer size");
    if (bytes == 0)
        return linkSpec.setupLatency;
    return linkSpec.setupLatency +
           transferTimeNs(bytes, linkSpec.dmaBandwidth);
}

double
PcieLink::achievedBandwidth(Bytes bytes) const
{
    TimeNs t = transferTime(bytes);
    if (t <= 0)
        return linkSpec.dmaBandwidth;
    return double(bytes) / toSeconds(t);
}

} // namespace vdnn::ic
