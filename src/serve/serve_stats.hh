/**
 * @file
 * Serving metrics: the report the multi-tenant scheduler produces.
 *
 * Per job: queueing delay (arrival to admission) and job completion
 * time (arrival to finish). Aggregate: makespan, mean/p99 JCT, jobs
 * admitted concurrently (peak and time-weighted average), and the
 * shared pool occupancy (peak, time-weighted average, timeline).
 */

#ifndef VDNN_SERVE_SERVE_STATS_HH
#define VDNN_SERVE_SERVE_STATS_HH

#include "serve/job.hh"
#include "stats/table.hh"
#include "stats/time_weighted.hh"

#include <string>
#include <vector>

namespace vdnn::serve
{

/** Final per-job line of the report. */
struct JobOutcome
{
    JobId id = -1;
    std::string name;
    std::string configName;
    JobState state = JobState::Pending;
    int priority = 0;
    TimeNs arrival = 0;
    TimeNs admitTime = kTimeNone;
    /** First iteration dispatch (preemption responsiveness metric). */
    TimeNs firstDispatchTime = kTimeNone;
    TimeNs finishTime = kTimeNone;
    TimeNs queueingDelay = 0;
    TimeNs completionTime = 0; ///< JCT; 0 unless Finished
    TimeNs serviceTime = 0;
    int iterations = 0;
    int oomRequeues = 0;
    int preemptions = 0;
    int replans = 0;
    Bytes persistentBytes = 0;
    Bytes peakPoolBytes = 0;
    Bytes offloadedBytes = 0;
    std::string failReason;
};

/**
 * One tenant lifecycle transition, with the admission ledger's
 * reserved bytes on both sides — the audit trail the state machine
 * leaves behind (dumped by `memory_timeline lifecycle`).
 */
struct LifecycleEvent
{
    TimeNs when = 0;
    JobId job = -1;
    /** "admit" / "suspend" / "evict" / "replan" / "resume" /
     *  "finish" / "requeue" / "fail". */
    const char *what = "";
    Bytes reservedBefore = 0;
    Bytes reservedAfter = 0;
};

struct ServeReport
{
    std::string schedulerName;
    std::string gpuName;
    std::vector<JobOutcome> jobs;

    /** First arrival to last completion. */
    TimeNs makespan = 0;
    /** Most jobs admitted (device-resident) at once. */
    int peakJobsInFlight = 0;
    /** Time-weighted average of admitted jobs over the run. */
    double avgJobsInFlight = 0.0;

    Bytes poolCapacity = 0;
    Bytes poolPeakBytes = 0;
    Bytes poolAvgBytes = 0; ///< time-weighted

    /** Cumulative busy time of the shared compute engine. */
    TimeNs computeBusyTime = 0;
    /** Cumulative busy time of both DMA engines. */
    TimeNs copyBusyTime = 0;
    /** Compute-engine busy fraction over the serving makespan. */
    double computeUtilization() const
    {
        return makespan > 0
                   ? double(computeBusyTime) / double(makespan)
                   : 0.0;
    }

    /** Shared-pool usage change points (when keepTimeline was set). */
    std::vector<stats::TimeWeighted::Sample> poolTimeline;
    /** Jobs-in-flight change points (when keepTimeline was set). */
    std::vector<stats::TimeWeighted::Sample> inflightTimeline;

    /** Every lifecycle transition, in time order. */
    std::vector<LifecycleEvent> lifecycle;

    /** Admission ledger after the run drained: both must be zero when
     *  every job reached a terminal state. */
    Bytes reservedBytesAtEnd = 0;
    int evictedLedgerAtEnd = 0;

    int finishedCount() const;
    int failedCount() const;
    int rejectedCount() const;

    /** Mean job completion time over finished jobs. */
    TimeNs meanJct() const;
    /** p99 (nearest-rank) job completion time over finished jobs. */
    TimeNs p99Jct() const;
    TimeNs meanQueueingDelay() const;

    /** Mean JCT over finished jobs at exactly @p priority. */
    TimeNs meanJctAtPriority(int priority) const;
    /** p95 (nearest-rank) JCT over finished jobs at @p priority. */
    TimeNs p95JctAtPriority(int priority) const;

    /** Per-job ASCII table. */
    stats::Table jobTable() const;
    /** One-row aggregate summary. */
    stats::Table summaryTable() const;
};

} // namespace vdnn::serve

#endif // VDNN_SERVE_SERVE_STATS_HH
