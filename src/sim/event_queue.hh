/**
 * @file
 * Discrete-event simulation core.
 *
 * A minimal gem5-style event queue: events are (time, callback) pairs
 * executed in non-decreasing time order; ties are broken by insertion
 * order so simulations are fully deterministic. The queue owns the
 * simulated clock — curTick() only advances when events execute.
 *
 * Storage layout (hot path, see bench_simspeed):
 *
 *  - Callbacks live in a slab of fixed-size slots with inline storage
 *    (no per-event heap allocation for anything up to kInlineBytes,
 *    which covers every lambda in the simulator and a std::function);
 *    larger callables are boxed behind a pointer in the same slot.
 *  - The heap itself holds POD (time, id) pairs only, so sift
 *    operations move 16 bytes, never a std::function.
 *  - An EventId packs (sequence << kSlotBits | slot). The sequence is
 *    monotonic, so comparing ids preserves the insertion-order
 *    tie-break exactly; the slot gives O(1) id -> callback lookup.
 *  - deschedule() frees the slot immediately (O(1)) and leaves a
 *    tombstone in the heap; a popped entry whose slot no longer holds
 *    its id is skipped. An id that already ran (or was already
 *    cancelled) no longer occupies its slot, so descheduling it is a
 *    true no-op — the slot either is free or belongs to a newer event
 *    with a different sequence.
 */

#ifndef VDNN_SIM_EVENT_QUEUE_HH
#define VDNN_SIM_EVENT_QUEUE_HH

#include "common/logging.hh"
#include "common/types.hh"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace vdnn::sim
{

/** Identifier of a scheduled event (usable for cancellation). */
using EventId = std::uint64_t;

class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @p when must not be in the past.
     * @return an id that can later be passed to deschedule().
     */
    template <typename F>
    EventId
    schedule(TimeNs when, F &&fn)
    {
        VDNN_ASSERT(when >= curTime,
                    "scheduling into the past: when=%lld now=%lld",
                    (long long)when, (long long)curTime);
        using Fn = std::decay_t<F>;
        if constexpr (std::is_same_v<Fn, std::function<void()>>) {
            VDNN_ASSERT(fn != nullptr, "scheduling a null callback");
        }
        std::uint32_t slot = allocSlot();
        Slot &s = slots[slot];
        EventId id = (nextSeq++ << kSlotBits) | slot;
        s.id = id;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(s.storage))
                Fn(std::forward<F>(fn));
            s.ops = &InlineOps<Fn>::ops;
        } else {
            using Boxed = Fn *;
            ::new (static_cast<void *>(s.storage))
                Boxed(new Fn(std::forward<F>(fn)));
            s.ops = &BoxedOps<Fn>::ops;
        }
        heapPush(HeapEntry{when, id});
        ++liveEvents;
        return id;
    }

    /** Schedule @p fn @p delay after the current time. */
    template <typename F>
    EventId
    scheduleAfter(TimeNs delay, F &&fn)
    {
        VDNN_ASSERT(delay >= 0, "negative delay %lld",
                    (long long)delay);
        return schedule(curTime + delay, std::forward<F>(fn));
    }

    /** Cancel a pending event; no-op if it already ran or was cancelled. */
    void deschedule(EventId id);

    /** Execute the single earliest pending event. @return false if none. */
    bool step();

    /** Run until the queue drains. @return number of events executed. */
    std::uint64_t run();

    /**
     * Run while events exist with time <= @p until, then set the clock to
     * @p until (if it is ahead). @return number of events executed.
     */
    std::uint64_t runUntil(TimeNs until);

    /** Current simulated time. */
    TimeNs now() const { return curTime; }

    /** True when no live events remain. */
    bool empty() const { return liveEvents == 0; }

    /** Number of live (non-cancelled, pending) events. */
    std::uint64_t pending() const { return liveEvents; }

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return numExecuted; }

  private:
    /** Low bits of an EventId address the slot; high bits order. */
    static constexpr unsigned kSlotBits = 22;
    static constexpr std::uint64_t kSlotMask =
        (std::uint64_t(1) << kSlotBits) - 1;
    /** Inline callback storage; fits a std::function with room over. */
    static constexpr std::size_t kInlineBytes = 48;
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t(0);

    /** Per-callable-type operations on a slot's storage. */
    struct Ops
    {
        /** Run the callback in @p p and destroy it. */
        void (*invokeAndDestroy)(void *p);
        /** Move-construct @p dst from @p src and destroy @p src. */
        void (*relocate)(void *dst, void *src);
        /** Destroy the callback in @p p without running it. */
        void (*destroy)(void *p);
    };

    template <typename Fn>
    struct InlineOps
    {
        static void
        invokeAndDestroy(void *p)
        {
            Fn *f = static_cast<Fn *>(p);
            (*f)();
            f->~Fn();
        }
        static void
        relocate(void *dst, void *src)
        {
            Fn *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        }
        static void
        destroy(void *p)
        {
            static_cast<Fn *>(p)->~Fn();
        }
        static constexpr Ops ops{&invokeAndDestroy, &relocate,
                                 &destroy};
    };

    template <typename Fn>
    struct BoxedOps
    {
        static Fn *
        unbox(void *p)
        {
            return *static_cast<Fn **>(p);
        }
        static void
        invokeAndDestroy(void *p)
        {
            Fn *f = unbox(p);
            (*f)();
            delete f;
        }
        static void
        relocate(void *dst, void *src)
        {
            *static_cast<Fn **>(dst) = unbox(src);
        }
        static void
        destroy(void *p)
        {
            delete unbox(p);
        }
        static constexpr Ops ops{&invokeAndDestroy, &relocate,
                                 &destroy};
    };

    struct Slot
    {
        EventId id = 0; // 0 = free
        const Ops *ops = nullptr;
        std::uint32_t nextFree = kNoSlot;
        alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    };

    /** What the heap orders: 16 POD bytes per pending event. */
    struct HeapEntry
    {
        TimeNs when;
        EventId id;
    };

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);

    void heapPush(HeapEntry e);
    HeapEntry heapPop();
    /** Drop tombstones off the heap top. @return false when empty. */
    bool pruneTop();
    /** Pop the (live) top entry and execute it. */
    void executeTop();

    std::vector<HeapEntry> heap;
    std::vector<Slot> slots;
    std::uint32_t freeHead = kNoSlot;
    TimeNs curTime = 0;
    std::uint64_t nextSeq = 1;
    std::uint64_t liveEvents = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace vdnn::sim

#endif // VDNN_SIM_EVENT_QUEUE_HH
