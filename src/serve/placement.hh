/**
 * @file
 * Placement policies: which device of the cluster a job lands on.
 *
 * The multi-device Scheduler keeps one admission ledger per device;
 * when a queued job's reservation could be admitted, the pluggable
 * PlacementPolicy picks the device from a per-device load snapshot.
 * Placement is the serve layer's second policy axis, orthogonal to
 * the SchedPolicy that orders iterations *within* a device:
 *
 *  - BestFitPlacement packs jobs onto the feasible device with the
 *    least free ledger bytes (classic best-fit). Densest
 *    consolidation — frees whole devices for giant arrivals — but a
 *    skewed arrival burst piles tenants onto one device while its
 *    siblings idle; the rebalance sweep's migrations exist to undo
 *    exactly that.
 *  - RoundRobinPlacement rotates over the feasible devices.
 *  - LoadBalancePlacement picks the feasible device with the fewest
 *    resident tenants (queue depth), breaking ties toward the most
 *    free bytes — keeps per-device service rates even.
 */

#ifndef VDNN_SERVE_PLACEMENT_HH
#define VDNN_SERVE_PLACEMENT_HH

#include "common/types.hh"

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace vdnn::serve
{

/** One device's load, as offered to a PlacementPolicy. */
struct DeviceLoad
{
    int device = -1;
    /** Admission-ledger capacity (the device pool size). */
    Bytes capacity = 0;
    /** Reservation bytes committed on that ledger. */
    Bytes reserved = 0;
    /** Device-resident tenants (the device's queue depth). */
    int runningJobs = 0;
    /** The candidate job's reservation fits this device right now. */
    bool fits = false;

    Bytes freeBytes() const
    {
        return reserved < capacity ? capacity - reserved : 0;
    }
};

/**
 * Chooses the device for one admission. Policies may keep state
 * across calls (round-robin cursor); a Scheduler owns one instance
 * for its whole run.
 */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Short label (reports). */
    virtual std::string name() const = 0;

    /**
     * Pick a device for the candidate job. @p loads has one entry per
     * device, in device order. @return the chosen entry's device id —
     * it must have fits == true — or -1 to defer the job (nothing
     * fits now).
     */
    virtual int place(const std::vector<DeviceLoad> &loads) = 0;
};

/** Best fit by free ledger bytes (densest feasible device). */
class BestFitPlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "best-fit"; }
    int place(const std::vector<DeviceLoad> &loads) override;
};

/** Rotate over the feasible devices. */
class RoundRobinPlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "round-robin"; }
    int place(const std::vector<DeviceLoad> &loads) override;

  private:
    std::size_t cursor = 0;
};

/** Fewest resident tenants first; ties toward the most free bytes. */
class LoadBalancePlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "load-balance"; }
    int place(const std::vector<DeviceLoad> &loads) override;
};

} // namespace vdnn::serve

#endif // VDNN_SERVE_PLACEMENT_HH
