/**
 * @file
 * WakeSet: the serve loop's ready-set of device ids.
 *
 * A fixed-capacity bitset over small dense device ids, built for the
 * event-driven cluster serve loop (scheduler.cc): the Device wake
 * hooks add the owner of every executed completion event, and the
 * loop's step sweep visits exactly the set bits in ascending id
 * order — the same device order the old polling loop scanned in,
 * which the byte-identity requirement pins. Dedup is free (a bit
 * can only be set once) and membership/size are O(1).
 *
 * Live mutation during iteration is part of the contract: a bit
 * added at an id *above* the sweep cursor (a finishing iteration's
 * teardown drains streams, executing events whose hooks wake other
 * devices) is visited in the same sweep — the polling loop would
 * have reached that device this turn too — while a bit added at or
 * below the cursor is picked up next turn, exactly when the polling
 * loop would next have offered that device a step.
 */

#ifndef VDNN_SERVE_WAKE_SET_HH
#define VDNN_SERVE_WAKE_SET_HH

#include "common/logging.hh"

#include <bit>
#include <cstdint>
#include <vector>

namespace vdnn::serve
{

class WakeSet
{
  public:
    explicit WakeSet(int capacity = 0) { resize(capacity); }

    /** Drop every member and re-bound the id range to [0, n). */
    void resize(int n)
    {
        VDNN_ASSERT(n >= 0, "negative WakeSet capacity");
        cap = n;
        words.assign(std::size_t(n + 63) / 64, 0);
        cnt = 0;
    }

    int capacity() const { return cap; }
    int size() const { return cnt; }
    bool empty() const { return cnt == 0; }

    bool contains(int id) const
    {
        VDNN_ASSERT(id >= 0 && id < cap, "WakeSet id %d out of range",
                    id);
        return (words[word(id)] >> bit(id)) & 1u;
    }

    /** Insert @p id; duplicates are absorbed (a bit sets once). */
    void add(int id)
    {
        VDNN_ASSERT(id >= 0 && id < cap, "WakeSet id %d out of range",
                    id);
        std::uint64_t &w = words[word(id)];
        std::uint64_t m = std::uint64_t(1) << bit(id);
        cnt += int(!(w & m));
        w |= m;
    }

    /** Erase @p id; erasing a non-member is a no-op. */
    void remove(int id)
    {
        VDNN_ASSERT(id >= 0 && id < cap, "WakeSet id %d out of range",
                    id);
        std::uint64_t &w = words[word(id)];
        std::uint64_t m = std::uint64_t(1) << bit(id);
        cnt -= int(!!(w & m));
        w &= ~m;
    }

    void clear()
    {
        words.assign(words.size(), 0);
        cnt = 0;
    }

    /**
     * Smallest member >= @p from, or -1 when none. The ascending
     * sweep is `for (int d = s.next(0); d != -1; d = s.next(d + 1))`;
     * it observes live mutation as documented above.
     */
    int next(int from) const
    {
        if (from < 0)
            from = 0;
        if (from >= cap)
            return -1;
        std::size_t wi = word(from);
        std::uint64_t w =
            words[wi] & (~std::uint64_t(0) << bit(from));
        while (true) {
            if (w)
                return int(wi * 64) + std::countr_zero(w);
            if (++wi >= words.size())
                return -1;
            w = words[wi];
        }
    }

  private:
    static std::size_t word(int id) { return std::size_t(id) >> 6; }
    static int bit(int id) { return id & 63; }

    std::vector<std::uint64_t> words;
    int cap = 0;
    int cnt = 0;
};

} // namespace vdnn::serve

#endif // VDNN_SERVE_WAKE_SET_HH
