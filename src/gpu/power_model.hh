/**
 * @file
 * Linear activity-based GPU power model.
 *
 * Section V-D measures average and maximum GPU power with nvprof and
 * finds vDNN_dyn adds 1-7% maximum power (from PCIe offload/prefetch
 * traffic) with negligible average power change. The mechanism is
 * additive activity power, which this model captures directly:
 *
 *   P(t) = idle + sum(active kernels: compute + DRAM terms)
 *               + sum(active copies: copy engine + DRAM term)
 *
 * The model tracks the piecewise-constant P(t) with a TimeWeighted stat
 * so both the average and the instantaneous maximum fall out.
 */

#ifndef VDNN_GPU_POWER_MODEL_HH
#define VDNN_GPU_POWER_MODEL_HH

#include "common/types.hh"
#include "gpu/gpu_spec.hh"
#include "stats/time_weighted.hh"

namespace vdnn::gpu
{

class PowerModel
{
  public:
    explicit PowerModel(const GpuSpec &spec);

    /** Start the observation window at @p when. */
    void begin(TimeNs when);

    /** A kernel with the given utilizations became active. */
    void kernelStart(TimeNs when, double compute_util, double dram_util);

    /** The matching kernel finished. */
    void kernelEnd(TimeNs when, double compute_util, double dram_util);

    /** A DMA copy at @p bandwidth (bytes/s) became active. */
    void copyStart(TimeNs when, double bandwidth);

    /** The matching copy finished. */
    void copyEnd(TimeNs when, double bandwidth);

    /** Close the observation window. */
    void finish(TimeNs when);

    /** Time-weighted average power over the window, watts. */
    double averagePowerW() const;

    /** Maximum instantaneous power over the window, watts. */
    double maxPowerW() const;

    /** Energy over the window, joules. */
    double energyJ() const;

    bool finished() const { return tw.finished(); }

  private:
    double kernelDraw(double compute_util, double dram_util) const;
    double copyDraw(double bandwidth) const;
    void update(TimeNs when, double delta);

    GpuSpec gpu;
    double currentDraw;
    stats::TimeWeighted tw;
    bool begun = false;
};

} // namespace vdnn::gpu

#endif // VDNN_GPU_POWER_MODEL_HH
