/**
 * @file
 * Weighted fair-share arbiter for the PCIe DMA engines.
 *
 * When several tenants of a shared device offload or prefetch
 * concurrently, their DMAs queue on the same copy engine (one per
 * direction, as on Titan X). A plain FIFO grant order lets a
 * burst-happy tenant monopolize the link: whoever enqueues first
 * drains first, and a tenant with many queued transfers starves the
 * others. This arbiter instead grants the engine by weighted fair
 * share over the *bytes already served*: among the queued candidates,
 * the client with the smallest served-bytes/weight ratio goes next
 * (deficit-style weighted round-robin at whole-transfer granularity),
 * so two equal-weight tenants that keep the link busy each receive
 * ~half its bandwidth, and a weight-2 tenant receives ~two thirds.
 *
 * Like DRR's bounded deficit counter, the credit a tenant can hold
 * against its peers is capped: at every grant, each queued tenant's
 * normalized service is raised to within kMaxCreditBytes/weight of
 * the furthest-ahead queued tenant. A tenant that was idle — or
 * admitted long after a co-tenant moved gigabytes uncontended — gets
 * at most that one bounded burst of priority instead of starving the
 * incumbent until their lifetime byte counts converge.
 *
 * With a single client (exclusive training, or one tenant active at a
 * time) every pick degenerates to the FIFO head, so the arbiter is
 * always on without perturbing single-tenant timelines.
 */

#ifndef VDNN_INTERCONNECT_ARBITER_HH
#define VDNN_INTERCONNECT_ARBITER_HH

#include "common/types.hh"

#include <cstddef>
#include <vector>

namespace vdnn::ic
{

class FairShareArbiter
{
  public:
    /** Set a client's link share weight (> 0; default 1.0). */
    void setWeight(int client, double weight);

    double weight(int client) const;

    /**
     * Maximum normalized-service credit (bytes at weight 1.0) a
     * queued tenant may hold over the furthest-ahead queued tenant.
     * Bounds how long a freshly arrived tenant can monopolize the
     * link before alternation resumes (a couple of feature maps).
     */
    static constexpr Bytes kMaxCreditBytes = Bytes(256) * 1024 * 1024;

    /**
     * Choose which queued transfer is granted the engine next.
     * Raises lagging tenants' service floors (see kMaxCreditBytes)
     * before comparing.
     * @param candidates owning clients of the queued transfers, in
     *        FIFO order (one entry per transfer; repeats allowed)
     * @return index into @p candidates: the first transfer of the
     *         client with the least normalized service; FIFO order
     *         breaks ties
     */
    std::size_t pick(const std::vector<int> &candidates);

    /** Account @p bytes of link service to @p client. */
    void charge(int client, Bytes bytes);

    /** Total bytes granted to @p client so far. */
    Bytes servedBytes(int client) const;

    /** Forget all service history (weights are kept). */
    void resetService();

  private:
    struct ClientState
    {
        double weight = 1.0;
        Bytes served = 0;
    };

    /** Grow the table to cover @p client and return its state. */
    ClientState &stateFor(int client);

    /**
     * Client ids are small dense integers (tenant ids), so the state
     * table is a flat vector: charge() — once per completed DMA — is
     * an indexed increment instead of a hash lookup.
     */
    std::vector<ClientState> clients;
};

} // namespace vdnn::ic

#endif // VDNN_INTERCONNECT_ARBITER_HH
