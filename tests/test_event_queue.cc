/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include "sim/event_queue.hh"

#include <gtest/gtest.h>

#include <vector>

using namespace vdnn;
using vdnn::sim::EventQueue;

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(EventQueue, ClockAdvancesWithEvents)
{
    EventQueue eq;
    TimeNs seen = -1;
    eq.schedule(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42);
    EXPECT_EQ(eq.now(), 42);
}

TEST(EventQueue, CallbackCanScheduleMore)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&]() {
        ++count;
        if (count < 5)
            eq.scheduleAfter(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    TimeNs inner = -1;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { inner = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(inner, 150);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.schedule(10, [&] { ran = true; });
    eq.deschedule(id);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, DescheduleOneOfMany)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    auto id = eq.schedule(20, [&] { order.push_back(2); });
    eq.schedule(30, [&] { order.push_back(3); });
    eq.deschedule(id);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.schedule(30, [&] { order.push_back(3); });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), 20);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWithNoEvents)
{
    EventQueue eq;
    EXPECT_EQ(eq.runUntil(500), 0u);
    EXPECT_EQ(eq.now(), 500);
}

TEST(EventQueue, ExecutedCounterAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 4; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 4u);
}

TEST(EventQueue, DescheduleAfterExecutionIsANoOp)
{
    // Regression: the old lazy-cancellation scheme could not tell an
    // executed id from a pending one — descheduling an id that had
    // already run pushed it onto the cancelled list forever and
    // wrongly decremented the live-event count, so a later event
    // could vanish. Device::refreshComputeSchedule() hits this path
    // on every copy completion.
    EventQueue eq;
    bool first = false;
    bool second = false;
    auto id = eq.schedule(10, [&] { first = true; });
    eq.runUntil(15);
    EXPECT_TRUE(first);
    eq.deschedule(id); // must be a true no-op
    eq.deschedule(id); // and stay one when repeated
    EXPECT_EQ(eq.pending(), 0u);
    eq.schedule(20, [&] { second = true; });
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_TRUE(second);
}

TEST(EventQueue, DescheduleTwiceCancelsOnlyOnce)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.schedule(10, [&] { ran = true; });
    eq.schedule(20, [&] {});
    eq.deschedule(id);
    eq.deschedule(id);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelThenReschedulePreservesOrder)
{
    // Cancel-then-fire at the same timestamp: the replacement event
    // schedules later, so it must run after everything scheduled in
    // between — the tie-break follows insertion order, not slot reuse.
    EventQueue eq;
    std::vector<int> order;
    auto id = eq.schedule(100, [&] { order.push_back(0); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.deschedule(id);
    eq.schedule(100, [&] { order.push_back(2); });
    eq.schedule(100, [&] { order.push_back(3); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CallbackCanCancelLaterEvent)
{
    // Fire-then-cancel: a running callback cancels an event that is
    // still pending at the same timestamp.
    EventQueue eq;
    std::vector<int> order;
    sim::EventId victim = 0;
    eq.schedule(10, [&] {
        order.push_back(1);
        eq.deschedule(victim);
    });
    victim = eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(10, [&] { order.push_back(3); });
    EXPECT_EQ(eq.run(), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, InterleavedScheduleFromCallback)
{
    // A callback scheduling at the *current* time runs in this very
    // drain, after everything already pending at that time.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(1);
        eq.scheduleAfter(0, [&] { order.push_back(4); });
    });
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(10, [&] { order.push_back(3); });
    EXPECT_EQ(eq.run(), 4u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, DescheduleUnknownIdIsANoOp)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.deschedule(0);                      // the "no event" sentinel
    eq.deschedule(~sim::EventId(0));       // never issued
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.run(), 1u);
}

TEST(EventQueue, SlotReuseKeepsIdsDistinct)
{
    // Drive enough schedule/execute cycles that slab slots are reused
    // many times; stale ids must never alias a newer occupant.
    EventQueue eq;
    std::vector<sim::EventId> retired;
    int ran = 0;
    for (int wave = 0; wave < 100; ++wave) {
        std::vector<sim::EventId> ids;
        for (int i = 0; i < 8; ++i) {
            ids.push_back(
                eq.schedule(eq.now() + 1, [&] { ++ran; }));
        }
        eq.runUntil(eq.now() + 1);
        for (auto id : ids)
            retired.push_back(id);
        // Descheduling any retired id must never disturb live state.
        for (auto id : retired)
            eq.deschedule(id);
    }
    EXPECT_EQ(ran, 800);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, LargeCallablesAreBoxed)
{
    // Callables above the inline-storage budget take the boxed path;
    // they must still run, cancel, and destruct correctly.
    EventQueue eq;
    struct Big
    {
        char pad[200];
    };
    Big big{};
    big.pad[0] = 7;
    int seen = 0;
    eq.schedule(10, [big, &seen] { seen = big.pad[0]; });
    auto id = eq.schedule(20, [big, &seen] { seen = 99; });
    eq.deschedule(id);
    eq.run();
    EXPECT_EQ(seen, 7);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}
