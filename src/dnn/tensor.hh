/**
 * @file
 * Tensor shape descriptor.
 *
 * All tensors are NCHW single-precision (4 bytes/element), matching the
 * cuDNN defaults the paper's evaluation uses. FC layer activations are
 * represented as N x C x 1 x 1.
 */

#ifndef VDNN_DNN_TENSOR_HH
#define VDNN_DNN_TENSOR_HH

#include "common/types.hh"

#include <cstdint>
#include <string>

namespace vdnn::dnn
{

/** Bytes per element (fp32). */
inline constexpr Bytes kElementSize = 4;

struct TensorShape
{
    std::int64_t n = 0; ///< batch size
    std::int64_t c = 0; ///< channels / features
    std::int64_t h = 1; ///< height
    std::int64_t w = 1; ///< width

    std::int64_t elements() const { return n * c * h * w; }
    Bytes bytes() const { return elements() * kElementSize; }

    /** Per-image element count (drop the batch dimension). */
    std::int64_t elementsPerImage() const { return c * h * w; }

    bool operator==(const TensorShape &o) const = default;

    /** "256x64x224x224" */
    std::string str() const;

    bool
    valid() const
    {
        return n > 0 && c > 0 && h > 0 && w > 0;
    }
};

} // namespace vdnn::dnn

#endif // VDNN_DNN_TENSOR_HH
