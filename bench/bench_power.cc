/**
 * @file
 * Section V-D: GPU power consumption of vDNN_dyn versus baseline.
 *
 * Paper anchors: vDNN_dyn adds 1%-7% to the *maximum* instantaneous
 * power (the offload/prefetch DMA traffic raises peaks), while the
 * *average* power is essentially unchanged because vDNN_dyn adds no
 * noticeable run time and the studied DNNs do not saturate DRAM
 * bandwidth. VGG-16 (128) is compared with memory-optimal algorithms
 * (the only baseline configuration that trains); VGG-16 (256) has no
 * trainable baseline and is excluded, as in the paper.
 */

#include "bench_common.hh"

#include "common/units.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

core::SessionResult
runPowerPoint(const net::Network &network,
              std::shared_ptr<core::Planner> planner)
{
    core::SessionConfig cfg;
    cfg.planner = std::move(planner);
    cfg.iterations = 4; // average over several steady-state iterations
    return core::runSession(network, cfg);
}

void
report()
{
    stats::Table table("Section V-D: GPU power, vDNN_dyn vs baseline");
    table.setColumns({"network", "base avg (W)", "base max (W)",
                      "dyn avg (W)", "dyn max (W)", "max overhead",
                      "avg overhead"});

    double worst_max_overhead = 0.0;
    double worst_avg_overhead = 0.0;

    for (const auto &entry : net::conventionalSuite()) {
        if (entry.name == "VGG-16 (256)")
            continue; // no trainable baseline to compare against
        auto network = entry.build();
        // VGG-16 (128) only trains under baseline with (m) (Fig. 11).
        bool memory_optimal = entry.name == "VGG-16 (128)";
        core::AlgoPreference pref =
            memory_optimal ? core::AlgoPreference::MemoryOptimal
                           : core::AlgoPreference::PerformanceOptimal;
        auto base = runPowerPoint(*network, baselinePlanner(pref));
        // vDNN_dyn derives its own per-layer algorithms; the preference
        // knob only applies to the baseline measurement.
        auto dyn = runPowerPoint(*network, dynamicPlanner());
        double max_ovh = dyn.maxPowerW / base.maxPowerW - 1.0;
        double avg_ovh = dyn.avgPowerW / base.avgPowerW - 1.0;
        worst_max_overhead = std::max(worst_max_overhead, max_ovh);
        // The average-power claim compares like against like: for
        // VGG-16 (128) the baseline is pinned to memory-optimal
        // algorithms while vDNN_dyn picks faster ones, which raises
        // average draw for algorithmic (not vDNN-traffic) reasons.
        if (!memory_optimal) {
            worst_avg_overhead =
                std::max(worst_avg_overhead, std::abs(avg_ovh));
        }
        table.addRow({entry.name, stats::Table::cell(base.avgPowerW, 1),
                      stats::Table::cell(base.maxPowerW, 1),
                      stats::Table::cell(dyn.avgPowerW, 1),
                      stats::Table::cell(dyn.maxPowerW, 1),
                      stats::Table::cellPercent(max_ovh),
                      stats::Table::cellPercent(avg_ovh)});
    }
    table.print();

    stats::Comparison cmp("Section V-D (power)");
    cmp.addBool("max-power overhead stays within ~1-7% band (<= 8%)",
                true, worst_max_overhead <= 0.08);
    cmp.addBool("average power essentially unchanged (<= 3%)", true,
                worst_avg_overhead <= 0.03);
    cmp.addInfo("worst max-power overhead", "1% - 7%",
                strFormat("%.1f%%", 100.0 * worst_max_overhead));
    cmp.addInfo("avg-power claim scope", "same-algorithm comparisons",
                "VGG-16 (128) excluded: baseline forced to (m)");
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("power/dyn_alexnet_128", [] {
        auto network = net::buildAlexNet(128);
        benchmark::DoNotOptimize(
            runPowerPoint(*network, dynamicPlanner()).maxPowerW);
    });
    return benchMain(argc, argv, report);
}
