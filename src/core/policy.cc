#include "core/policy.hh"

#include "common/logging.hh"

namespace vdnn::core
{

const char *
transferPolicyName(TransferPolicy p)
{
    switch (p) {
      case TransferPolicy::Baseline:
        return "base";
      case TransferPolicy::OffloadAll:
        return "vDNN_all";
      case TransferPolicy::OffloadConv:
        return "vDNN_conv";
      case TransferPolicy::Dynamic:
        return "vDNN_dyn";
    }
    panic("unknown policy %d", int(p));
}

const char *
algoModeName(AlgoMode m)
{
    switch (m) {
      case AlgoMode::MemoryOptimal:
        return "(m)";
      case AlgoMode::PerformanceOptimal:
        return "(p)";
      case AlgoMode::PerLayer:
        return "(dyn)";
    }
    panic("unknown algo mode %d", int(m));
}

bool
offloadEligible(const net::Network &net, net::BufferId buffer)
{
    const net::Buffer &b = net.buffer(buffer);
    // Classifier buffers are outside the managed pool; buffers with no
    // backward reuse are simply released, not offloaded; buffers nobody
    // reads (terminal outputs) have no last consumer to offload them.
    return !b.classifier && !b.bwdUsers.empty() && !b.readers.empty();
}

Plan
makeStaticPlan(const net::Network &net, const dnn::CudnnSim &cudnn,
               TransferPolicy policy, AlgoMode mode)
{
    VDNN_ASSERT(policy != TransferPolicy::Dynamic,
                "dynamic plans are produced by DynamicPolicy");
    VDNN_ASSERT(mode != AlgoMode::PerLayer,
                "per-layer algo assignments are produced by DynamicPolicy");

    Plan plan;
    plan.policy = policy;
    plan.algoMode = mode;
    plan.algos = mode == AlgoMode::MemoryOptimal
                     ? net::memoryOptimalAlgos(net)
                     : net::performanceOptimalAlgos(net, cudnn);
    plan.offloadBuffer.assign(net.numBuffers(), false);
    plan.provenance = strFormat("static %s %s", transferPolicyName(policy),
                                algoModeName(mode));

    if (policy == TransferPolicy::Baseline)
        return plan;

    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (!offloadEligible(net, b))
            continue;
        if (policy == TransferPolicy::OffloadAll) {
            plan.offloadBuffer[std::size_t(b)] = true;
        } else if (policy == TransferPolicy::OffloadConv) {
            // vDNN_conv: offload only the Xs of CONV layers, i.e.
            // buffers whose last forward consumer is a CONV layer (only
            // that consumer may issue the offload, and only CONV
            // kernels are long enough to hide it).
            net::LayerId last = net.buffer(b).lastFwdReader;
            if (last != net::kInputLayer &&
                net.node(last).spec.kind == dnn::LayerKind::Conv) {
                plan.offloadBuffer[std::size_t(b)] = true;
            }
        }
    }
    return plan;
}

} // namespace vdnn::core
