/**
 * @file
 * PlanVerifier: MemoryPlan admissibility against its PlannerContext,
 * before any program compiles or device state exists.
 *
 * The pass proves (or rejects) four families of properties:
 *
 *  - Directive sanity — every directive must be realizable: no offload
 *    of an offload-ineligible buffer (IneligibleOffload), no compressed
 *    DMA routing for a buffer that never holds post-ReLU sparse data
 *    (CompressedDense), dmaScale within (0, 1] and only meaningful
 *    under compression (BadDmaScale), no offload traffic declared by a
 *    network-wide static plan (StaticPlanTraffic).
 *  - Prefetch-priority ordering — among buffers the Fig. 10 search
 *    would fetch from the same producing layer, equal positive
 *    priorities make the issue order ambiguous (PriorityConflict).
 *  - Program correctness — the plan is compiled exactly as the
 *    Executor would and the resulting op stream is run through the
 *    ProgramVerifier; its findings are folded into this result.
 *  - Capacity — the analytic persistent footprint (mirroring
 *    Executor::setup) plus the program's provable transient peak must
 *    fit PlannerContext::capacity() (ShareExceeded; an error only when
 *    CheckConfig::enforceCapacity, a warning otherwise, because the
 *    runtime degrades gracefully on OOM).
 */

#ifndef VDNN_CHECK_PLAN_VERIFIER_HH
#define VDNN_CHECK_PLAN_VERIFIER_HH

#include "check/check.hh"
#include "core/executor.hh"
#include "core/planner.hh"
#include "net/network.hh"

namespace vdnn::check
{

/**
 * Verify @p plan for @p net against the capacity granted by @p ctx.
 * Compiles the plan under @p cfg and runs the ProgramVerifier on the
 * result, so a passing plan is admissible *and* compiles to a correct
 * program. CheckResult carries persistentBytes, peakTransientBytes and
 * provablePeakBytes (their sum) on return.
 */
CheckResult verifyPlan(const net::Network &net,
                       const core::MemoryPlan &plan,
                       const core::PlannerContext &ctx,
                       const core::ExecutorConfig &cfg,
                       const CheckConfig &ccfg = {});

} // namespace vdnn::check

#endif // VDNN_CHECK_PLAN_VERIFIER_HH
