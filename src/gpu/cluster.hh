/**
 * @file
 * A multi-GPU node: N simulated devices on one shared clock.
 *
 * The Cluster owns the discrete-event queue every member device
 * schedules against, so kernels and DMAs on different devices overlap
 * on one consistent simulated timeline — the defining difference from
 * instantiating N independent Runtimes, whose private clocks could
 * never interleave. Each device keeps its own engines (one compute,
 * two DMA), PCIe link and fair-share arbiters (gpu/device.hh), and the
 * cluster additionally gives each one:
 *
 *  - a private cnmem-style device pool sized to its GpuSpec capacity
 *    (vDNN reserves the whole physical memory up front, Section
 *    III-B); tenants of different devices never contend for arena
 *    space, only tenants of the same device do;
 *  - a pinned-host staging share sized to its GpuSpec hostCapacity —
 *    the slice of node DRAM reserved for that device's offload,
 *    eviction and migration traffic.
 *
 * Devices may be heterogeneous: each entry of ClusterSpec::devices is
 * a full GpuSpec, so a node can mix, say, a Titan X with a K40 and the
 * serve layer's placement policies see the per-device capacities.
 */

#ifndef VDNN_GPU_CLUSTER_HH
#define VDNN_GPU_CLUSTER_HH

#include "gpu/device.hh"
#include "gpu/gpu_spec.hh"
#include "mem/memory_pool.hh"
#include "mem/pinned_host.hh"
#include "sim/event_queue.hh"

#include <memory>
#include <vector>

namespace vdnn::gpu
{

/** What to build a cluster out of. */
struct ClusterSpec
{
    /** One GpuSpec per device (heterogeneous clusters allowed). */
    std::vector<GpuSpec> devices;
    /** Model compute/DMA DRAM contention on every device. */
    bool contention = true;
};

/** @p count identical devices of @p spec. */
ClusterSpec homogeneousCluster(const GpuSpec &spec, int count,
                               bool contention = true);

class Cluster
{
  public:
    explicit Cluster(ClusterSpec spec);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    int deviceCount() const { return int(nodes.size()); }

    Device &device(int i);
    const Device &device(int i) const;

    /** Device @p i's private cnmem pool (sized to its dramCapacity). */
    mem::MemoryPool &pool(int i);

    /** Device @p i's pinned-host staging share. */
    mem::PinnedHostAllocator &host(int i);

    /** The shared clock all member devices schedule against. */
    sim::EventQueue &clock() { return eq; }

    TimeNs now() const { return eq.now(); }

    /** Advance the shared clock, executing due work on every device. */
    void advanceTo(TimeNs t) { eq.runUntil(t); }

    /**
     * Execute the single next pending event on whichever device owns
     * it. @return false when no event is pending anywhere.
     */
    bool stepDevice() { return eq.step(); }

    /** Sum of the member devices' memory capacities. */
    Bytes totalCapacity() const;

    /** Close every device's power observation window. */
    void finishPowerWindows();

    /** Attach telemetry sinks to every member device. */
    void setTelemetry(obs::Telemetry t);

    /** Attach an event-completion wake hook to every member device
     *  (see Device::setWakeHook); the hook receives the device id and
     *  the owning client of the stream the completion landed on. */
    void setWakeHook(Device::WakeHook hook, void *ctx);

  private:
    struct Node
    {
        std::unique_ptr<Device> dev;
        std::unique_ptr<mem::MemoryPool> pool;
        std::unique_ptr<mem::PinnedHostAllocator> host;
    };

    sim::EventQueue eq;
    std::vector<Node> nodes;
};

} // namespace vdnn::gpu

#endif // VDNN_GPU_CLUSTER_HH
