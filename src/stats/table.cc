#include "stats/table.hh"

#include "common/logging.hh"
#include "common/string_utils.hh"

#include <algorithm>
#include <cstdio>

namespace vdnn::stats
{

void
Table::setColumns(std::vector<std::string> names)
{
    VDNN_ASSERT(body.empty(), "setColumns() after rows were added");
    VDNN_ASSERT(!names.empty(), "a table needs at least one column");
    header = std::move(names);
}

void
Table::addRow(std::vector<std::string> cells)
{
    VDNN_ASSERT(cells.size() == header.size(),
                "row has %zu cells, table has %zu columns", cells.size(),
                header.size());
    body.push_back(std::move(cells));
}

std::string
Table::cell(double v, int precision)
{
    return strFormat("%.*f", precision, v);
}

std::string
Table::cellInt(long long v)
{
    return strFormat("%lld", v);
}

std::string
Table::cellPercent(double fraction, int precision)
{
    return strFormat("%.*f%%", precision, fraction * 100.0);
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            line += " " + padRight(row[c], widths[c]) + " |";
        return line + "\n";
    };

    std::size_t total = 1;
    for (auto w : widths)
        total += w + 3;

    std::string rule(total, '-');
    std::string out;
    out += "\n=== " + tableTitle + " ===\n";
    out += rule + "\n";
    out += renderRow(header);
    out += rule + "\n";
    for (const auto &row : body)
        out += renderRow(row);
    out += rule + "\n";
    return out;
}

std::string
Table::csv() const
{
    auto escape = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string q = "\"";
        for (char ch : s) {
            if (ch == '"')
                q += "\"\"";
            else
                q += ch;
        }
        return q + "\"";
    };
    std::string out;
    std::vector<std::string> cells;
    cells.reserve(header.size());
    for (const auto &h : header)
        cells.push_back(escape(h));
    out += join(cells, ",") + "\n";
    for (const auto &row : body) {
        cells.clear();
        for (const auto &c : row)
            cells.push_back(escape(c));
        out += join(cells, ",") + "\n";
    }
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace vdnn::stats
