/**
 * @file
 * Tests for the Session lifecycle state machine: suspend/resume
 * identity (golden-pinned against the uninterrupted stepper run),
 * evict-to-host / restore round trips, mid-iteration cancellation,
 * and mid-run in-place re-planning against a moving free share.
 */

#include "core/dynamic_policy.hh"
#include "core/executor.hh"
#include "core/training_session.hh"

#include "common/units.hh"
#include "mem/memory_pool.hh"
#include "mem/pinned_host.hh"
#include "net/builders.hh"

#include <gtest/gtest.h>

#include <memory>

using namespace vdnn;
using namespace vdnn::core;
using namespace vdnn::literals;

namespace
{

SessionConfig
vggAllConfig()
{
    SessionConfig cfg;
    cfg.planner = std::make_shared<OffloadAllPlanner>(
        AlgoPreference::MemoryOptimal);
    cfg.iterations = 2;
    return cfg;
}

SessionConfig
tinyAllConfig()
{
    SessionConfig cfg;
    cfg.planner = std::make_shared<OffloadAllPlanner>(
        AlgoPreference::MemoryOptimal);
    return cfg;
}

} // namespace

// --- suspend/resume identity -------------------------------------------------

TEST(Lifecycle, FreshSessionStateMachine)
{
    auto network = net::buildTinyCnn(8);
    Session session(*network, tinyAllConfig());
    EXPECT_EQ(session.state(), SessionState::Fresh);
    ASSERT_TRUE(session.setup());
    EXPECT_EQ(session.state(), SessionState::Active);
    session.suspend();
    EXPECT_EQ(session.state(), SessionState::Suspended);
    EXPECT_TRUE(session.resume());
    EXPECT_EQ(session.state(), SessionState::Active);
    session.teardown();
    EXPECT_EQ(session.state(), SessionState::Torn);
    EXPECT_EQ(session.suspendCount(), 1);
    EXPECT_EQ(session.evictCount(), 0);
}

TEST(Lifecycle, SuspendAtEveryBoundaryMatchesUninterruptedGolden)
{
    // Golden numbers recorded from the pre-refactor monolithic
    // executor (VGG-16 (64), vDNN_all (m), Titan X, 2 iterations) —
    // the same constants test_iteration_program pins. Suspending and
    // immediately resuming at *every* stepper boundary must leave the
    // device timeline byte-identical.
    auto network = net::buildVgg16(64);
    Session session(*network, vggAllConfig());
    ASSERT_TRUE(session.setup());
    int boundaries = 0;
    for (int i = 0; i < 2; ++i) {
        IterationStepper &st = session.beginIteration();
        while (!st.finished()) {
            IterationStepper::Status s = st.step(/*blocking=*/false);
            if (st.finished())
                break;
            session.suspend();
            ASSERT_TRUE(session.resume());
            ++boundaries;
            if (s == IterationStepper::Status::Blocked) {
                ASSERT_TRUE(session.runtime().stepDevice());
            }
        }
        ASSERT_EQ(st.status(), IterationStepper::Status::Done);
        session.completeIteration();
    }
    session.teardown();
    SessionResult r = session.result();
    ASSERT_TRUE(r.trainable);
    EXPECT_GT(boundaries, 100);
    EXPECT_EQ(r.iterationTime, 3230943807LL);
    EXPECT_EQ(r.featureExtractionTime, 3213061240LL);
    EXPECT_EQ(r.transferStallTime, 222438258LL);
    EXPECT_EQ(r.pcieBytesPerIter, 8464891904LL);
    EXPECT_EQ(r.offloads, 22);
    EXPECT_EQ(r.prefetches, 22);
    EXPECT_EQ(r.onDemandFetches, 0);
}

// --- evict / restore ---------------------------------------------------------

TEST(Lifecycle, EvictRestoreBetweenIterationsPreservesIterations)
{
    auto network = net::buildVgg16(64);

    // Reference: two uninterrupted iterations.
    SessionResult golden = runSession(*network, vggAllConfig());
    ASSERT_TRUE(golden.trainable);

    // Same experiment, but the tenant is parked, fully evicted to
    // pinned host memory and restored between the two iterations.
    Session session(*network, vggAllConfig());
    ASSERT_TRUE(session.setup());
    Bytes persistent = session.persistentBytes();
    ASSERT_TRUE(session.runIteration().ok);

    session.suspend();
    ASSERT_TRUE(session.evictToHost());
    EXPECT_EQ(session.state(), SessionState::Evicted);
    // The entire device share is released; the state is staged in
    // pinned host memory.
    EXPECT_EQ(session.memory().pool().usedBytes(), 0);
    EXPECT_EQ(session.evictedBytes(), persistent);

    ASSERT_TRUE(session.resume());
    EXPECT_EQ(session.state(), SessionState::Active);
    EXPECT_EQ(session.evictedBytes(), 0);
    EXPECT_EQ(session.persistentBytes(), persistent);

    ASSERT_TRUE(session.runIteration().ok);
    session.teardown();
    SessionResult r = session.result();
    ASSERT_TRUE(r.trainable);
    EXPECT_EQ(session.iterationsDone(), 2);
    EXPECT_EQ(session.evictCount(), 1);
    // Per-iteration behaviour is unchanged by the round trip: the
    // restored tenant re-plans to the same plan (same free share) and
    // the steady-state iteration reproduces the golden metrics.
    EXPECT_EQ(r.iterationTime, golden.iterationTime);
    EXPECT_EQ(r.offloadedBytesPerIter, golden.offloadedBytesPerIter);
    EXPECT_EQ(r.pcieBytesPerIter, golden.pcieBytesPerIter);
    EXPECT_EQ(r.offloads, golden.offloads);
    EXPECT_EQ(r.prefetches, golden.prefetches);
}

TEST(Lifecycle, EvictMidIterationCancelsAndRerunsCleanly)
{
    auto network = net::buildVgg16(64);
    Session session(*network, vggAllConfig());
    ASSERT_TRUE(session.setup());
    Bytes persistent = session.persistentBytes();

    // Park the stepper somewhere in the middle of the iteration.
    IterationStepper &st = session.beginIteration();
    for (int steps = 0; steps < 40 && !st.finished(); ++steps) {
        if (st.step(/*blocking=*/false) ==
            IterationStepper::Status::Blocked) {
            ASSERT_TRUE(session.runtime().stepDevice());
        }
    }
    ASSERT_FALSE(st.finished());
    ASSERT_GT(st.pc(), 0u);

    session.suspend();
    ASSERT_TRUE(session.evictToHost());
    // The partial iteration was cancelled, not counted, and every
    // transient it held was unwound before the DMA out.
    EXPECT_EQ(session.iterationsDone(), 0);
    EXPECT_EQ(session.memory().pool().usedBytes(), 0);
    EXPECT_EQ(session.evictedBytes(), persistent);

    ASSERT_TRUE(session.resume());
    EXPECT_EQ(session.activeStepper(), nullptr);
    // The iteration re-runs from the top under the restored state.
    ASSERT_TRUE(session.runIteration().ok);
    EXPECT_EQ(session.iterationsDone(), 1);
    session.teardown();
    // Pool and host fully drained.
    EXPECT_EQ(session.memory().pool().usedBytes(), 0);
    EXPECT_EQ(session.memory().host().usedBytes(), 0);
}

TEST(Lifecycle, EvictFailsGracefullyWhenHostExhausted)
{
    // A pinned host allocator too small to stage the persistent state:
    // evictToHost() must refuse and leave the tenant Suspended
    // (resident), still resumable.
    gpu::GpuSpec spec = gpu::titanXMaxwell();
    gpu::Runtime rt(spec);
    mem::MemoryPool pool(spec.dramCapacity, "shared pool");
    mem::PinnedHostAllocator host(1_KiB);
    SharedGpu shared;
    shared.runtime = &rt;
    shared.pool = &pool;
    shared.host = &host;
    shared.clientId = 1;

    auto network = net::buildTinyCnn(8);
    SessionConfig cfg;
    cfg.planner = std::make_shared<BaselinePlanner>(
        AlgoPreference::MemoryOptimal);
    Session session(*network, cfg, shared);
    ASSERT_TRUE(session.setup());
    session.suspend();
    EXPECT_FALSE(session.evictToHost());
    EXPECT_EQ(session.state(), SessionState::Suspended);
    EXPECT_TRUE(session.resume());
    EXPECT_TRUE(session.runIteration().ok);
    session.teardown();
    EXPECT_EQ(pool.usedBytes(), 0);
}

// --- mid-run re-planning -----------------------------------------------------

TEST(Lifecycle, ReplanRefusedForCapacityIndependentPlanners)
{
    auto network = net::buildTinyCnn(8);
    Session session(*network, tinyAllConfig());
    ASSERT_TRUE(session.setup());
    // vDNN_all advertises ReplanHint::Evict: no in-place swap.
    EXPECT_FALSE(session.replan());
    EXPECT_EQ(session.replanCount(), 0);
    session.teardown();
}

TEST(Lifecycle, DynamicTenantGrowsBackWhenTheShareFrees)
{
    // A vDNN_dyn tenant squeezed by a co-tenant hog plans offloads;
    // when the hog's share frees, an in-place replan at the iteration
    // boundary grows the plan back to the no-offload ideal — the
    // ROADMAP's mid-run re-planning item.
    gpu::GpuSpec spec = gpu::titanXMaxwell();
    gpu::Runtime rt(spec);
    mem::MemoryPool pool(spec.dramCapacity, "shared pool");
    mem::PinnedHostAllocator host(spec.hostCapacity);
    auto hog = pool.allocate(7_GiB + 512_MiB, "co-tenant hog", /*client=*/99);

    SharedGpu shared;
    shared.runtime = &rt;
    shared.pool = &pool;
    shared.host = &host;
    shared.clientId = 1;

    auto network = net::buildVgg16(64);
    SessionConfig cfg;
    cfg.planner = std::make_shared<DynamicPlanner>();
    Session session(*network, cfg, shared);
    ASSERT_TRUE(session.setup());
    EXPECT_GT(session.plan().offloadCount(), 0); // squeezed to offload
    ASSERT_TRUE(session.runIteration().ok);

    pool.release(hog);
    ASSERT_TRUE(session.replan());
    EXPECT_EQ(session.replanCount(), 1);
    EXPECT_EQ(session.plan().offloadCount(), 0); // grown back
    // The recompiled program runs under the new plan.
    core::IterationResult r = session.runIteration();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.offloads, 0);
    session.teardown();
    EXPECT_EQ(pool.usedBytes(), 0);
}

TEST(Lifecycle, ResumedTenantReplansAgainstTheCurrentShare)
{
    // Evicted under a full device, resumed against an empty one: the
    // re-plan on resume() picks a larger plan than the tenant left
    // with (vDNN_dyn grows from offloading to no-offload).
    gpu::GpuSpec spec = gpu::titanXMaxwell();
    gpu::Runtime rt(spec);
    mem::MemoryPool pool(spec.dramCapacity, "shared pool");
    mem::PinnedHostAllocator host(spec.hostCapacity);
    auto hog = pool.allocate(7_GiB + 512_MiB, "co-tenant hog", /*client=*/99);

    SharedGpu shared;
    shared.runtime = &rt;
    shared.pool = &pool;
    shared.host = &host;
    shared.clientId = 1;

    auto network = net::buildVgg16(64);
    SessionConfig cfg;
    cfg.planner = std::make_shared<DynamicPlanner>();
    Session session(*network, cfg, shared);
    ASSERT_TRUE(session.setup());
    EXPECT_GT(session.plan().offloadCount(), 0);
    ASSERT_TRUE(session.runIteration().ok);

    session.suspend();
    ASSERT_TRUE(session.evictToHost());
    EXPECT_EQ(pool.usedByClient(1), 0);

    pool.release(hog);
    ASSERT_TRUE(session.resume());
    EXPECT_EQ(session.plan().offloadCount(), 0); // re-planned larger
    EXPECT_TRUE(session.runIteration().ok);
    session.teardown();
    EXPECT_EQ(pool.usedBytes(), 0);
    EXPECT_EQ(host.usedBytes(), 0);
}
