/**
 * @file
 * Unit tests for the statistics library (accumulator, time-weighted
 * signal, histogram, table, comparison).
 */

#include "stats/accumulator.hh"
#include "stats/comparison.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"
#include "stats/time_weighted.hh"

#include "common/random.hh"

#include <gtest/gtest.h>

#include <cmath>

using namespace vdnn;
using namespace vdnn::stats;

// --- Accumulator -----------------------------------------------------------

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, BasicMoments)
{
    Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(v);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-12); // classic textbook set
}

TEST(Accumulator, MergeMatchesCombinedStream)
{
    SplitMix64 rng(7);
    Accumulator whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextDouble() * 100.0;
        whole.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptySides)
{
    Accumulator a, empty;
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

// --- TimeWeighted ------------------------------------------------------------

TEST(TimeWeighted, PiecewiseConstantAverage)
{
    TimeWeighted tw;
    tw.record(0, 10.0);   // 10 for 100 ns
    tw.record(100, 30.0); // 30 for 100 ns
    tw.finish(200);
    EXPECT_DOUBLE_EQ(tw.average(), 20.0);
    EXPECT_DOUBLE_EQ(tw.peak(), 30.0);
    EXPECT_EQ(tw.duration(), 200);
}

TEST(TimeWeighted, UnevenDurationsWeightCorrectly)
{
    TimeWeighted tw;
    tw.record(0, 100.0); // 100 for 900 ns
    tw.record(900, 0.0); // 0 for 100 ns
    tw.finish(1000);
    EXPECT_DOUBLE_EQ(tw.average(), 90.0);
}

TEST(TimeWeighted, PeakSeesShortSpikes)
{
    TimeWeighted tw;
    tw.record(0, 1.0);
    tw.record(500, 1000.0);
    tw.record(501, 1.0); // 1 ns spike
    tw.finish(1000);
    EXPECT_DOUBLE_EQ(tw.peak(), 1000.0);
    EXPECT_LT(tw.average(), 3.0);
}

TEST(TimeWeighted, ZeroWindowFallsBackToLastValue)
{
    TimeWeighted tw;
    tw.record(5, 42.0);
    tw.finish(5);
    EXPECT_DOUBLE_EQ(tw.average(), 42.0);
}

TEST(TimeWeighted, TimelineKeptOnlyWhenRequested)
{
    TimeWeighted off, on(true);
    off.record(0, 1.0);
    on.record(0, 1.0);
    on.record(10, 2.0);
    off.finish(10);
    on.finish(10);
    EXPECT_TRUE(off.timeline().empty());
    ASSERT_EQ(on.timeline().size(), 2u);
    EXPECT_EQ(on.timeline()[1].when, 10);
    EXPECT_DOUBLE_EQ(on.timeline()[1].value, 2.0);
}

TEST(TimeWeightedDeath, RecordAfterFinishPanics)
{
    TimeWeighted tw;
    tw.record(0, 1.0);
    tw.finish(10);
    EXPECT_DEATH(tw.record(20, 2.0), "finish");
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, BucketsAndBounds)
{
    Histogram h(0.0, 100.0, 10);
    h.add(5.0);
    h.add(15.0);
    h.add(15.5);
    h.add(99.999);
    h.add(-1.0);  // underflow
    h.add(100.0); // overflow (hi-exclusive)
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.bucketLow(1), 10.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(1), 20.0);
}

TEST(Histogram, QuantileOfUniformSamples)
{
    Histogram h(0.0, 1000.0, 100);
    for (int i = 0; i < 1000; ++i)
        h.add(double(i));
    double median = h.quantile(0.5);
    EXPECT_GE(median, 450.0);
    EXPECT_LE(median, 550.0);
}

// --- Table ---------------------------------------------------------------------

TEST(Table, RenderContainsTitleHeadersAndCells)
{
    Table t("Demo table");
    t.setColumns({"network", "memory (MB)"});
    t.addRow({"AlexNet", Table::cell(1123.4, 1)});
    std::string out = t.render();
    EXPECT_NE(out.find("Demo table"), std::string::npos);
    EXPECT_NE(out.find("network"), std::string::npos);
    EXPECT_NE(out.find("AlexNet"), std::string::npos);
    EXPECT_NE(out.find("1123.4"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters)
{
    Table t("csv");
    t.setColumns({"a", "b"});
    t.addRow({"has,comma", "has\"quote"});
    std::string csv = t.csv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CellHelpers)
{
    EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
    EXPECT_EQ(Table::cellInt(-42), "-42");
    EXPECT_EQ(Table::cellPercent(0.931, 1), "93.1%");
}

TEST(TableDeath, RowWidthMismatchPanics)
{
    Table t("bad");
    t.setColumns({"one", "two"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

// --- Comparison ------------------------------------------------------------------

TEST(Comparison, NumericWithinToleranceHolds)
{
    Comparison c("test");
    c.addNumeric("metric", 100.0, 110.0, 0.2);
    EXPECT_TRUE(c.allHold());
    c.addNumeric("metric2", 100.0, 200.0, 0.2);
    EXPECT_FALSE(c.allHold());
    EXPECT_EQ(c.failed(), 1);
}

TEST(Comparison, BoolClaims)
{
    Comparison c("test");
    c.addBool("fails to train", true, true);
    c.addBool("fails to train", true, false);
    EXPECT_EQ(c.failed(), 1);
    std::string out = c.render();
    EXPECT_NE(out.find("DEVIATES"), std::string::npos);
    EXPECT_NE(out.find("holds"), std::string::npos);
}

TEST(Comparison, InfoRowsAreNotChecked)
{
    Comparison c("test");
    c.addInfo("note", "qualitative", "also qualitative");
    EXPECT_TRUE(c.allHold());
    EXPECT_EQ(c.total(), 1);
}
