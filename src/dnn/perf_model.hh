/**
 * @file
 * Analytic layer performance model.
 *
 * Substitutes for executing real cuDNN kernels: every layer operation is
 * assigned a latency from a roofline-style model,
 *
 *   time = max( flops / (efficiency * peakFlops),
 *               dram_bytes / (mem_eff * peakBandwidth) )
 *
 * CONV and FC layers are compute-bound on these networks; ACTV / POOL /
 * LRN / DROPOUT / CONCAT are bandwidth-bound element-wise kernels. The
 * efficiency factors are calibrated so that whole-network iteration
 * latencies land near published Titan X cuDNN-4 measurements (VGG-16
 * batch 64 forward+backward ~1.1 s; AlexNet batch 128 ~0.1 s), which is
 * what anchors the paper's Figure 6 reuse distances.
 */

#ifndef VDNN_DNN_PERF_MODEL_HH
#define VDNN_DNN_PERF_MODEL_HH

#include "common/types.hh"
#include "dnn/conv_algo.hh"
#include "dnn/layer.hh"
#include "gpu/gpu_spec.hh"

namespace vdnn::dnn
{

/** Cost of one kernel launch. */
struct OpCost
{
    TimeNs time = 0;
    Flops flops = 0.0;
    Bytes dramBytes = 0;
};

class PerfModel
{
  public:
    explicit PerfModel(gpu::GpuSpec spec);

    // --- convolution (algorithm dependent) ------------------------------
    OpCost convForward(const LayerSpec &layer, ConvAlgo algo) const;
    OpCost convBackwardData(const LayerSpec &layer, ConvAlgo algo) const;
    OpCost convBackwardFilter(const LayerSpec &layer, ConvAlgo algo) const;

    // --- every other layer kind -------------------------------------------
    /** Forward cost of a non-conv layer. */
    OpCost forward(const LayerSpec &layer) const;

    /** Backward cost of a non-conv layer (all gradient kernels). */
    OpCost backward(const LayerSpec &layer) const;

    /** Direct-convolution FLOPs of a conv forward pass. */
    static Flops convFlops(const LayerSpec &layer);

    const gpu::GpuSpec &spec() const { return gpuSpec; }

  private:
    OpCost roofline(Flops flops, double flop_eff, Bytes bytes,
                    double mem_eff) const;
    OpCost convOp(const LayerSpec &layer, ConvAlgo algo,
                  double eff_scale) const;

    gpu::GpuSpec gpuSpec;

    /** Achievable fraction of peak DRAM bandwidth for streaming kernels. */
    static constexpr double kMemEfficiency = 0.70;
    /** FC GEMM efficiency (fraction of peak FLOP/s). */
    static constexpr double kFcEfficiency = 0.50;
    /** Backward conv kernels run slightly below forward efficiency. */
    static constexpr double kBackwardDerate = 0.90;
};

} // namespace vdnn::dnn

#endif // VDNN_DNN_PERF_MODEL_HH
