/**
 * @file
 * Multi-tenant serving on one virtualized GPU.
 *
 * A queued workload of 8 VGG-16 training jobs — one long training run
 * arriving first, seven short jobs (fine-tunes / hyper-parameter
 * probes) queued behind it — is packed onto a single 12 GB Titan X
 * under every scheduler x memory-policy combination.
 *
 * Claims checked (the reason this subsystem exists):
 *  - the vDNN_all policy admits >= 2x the concurrent jobs of the
 *    Baseline allocator on the same device (Baseline fits a single
 *    VGG-16 resident set; vDNN's persistent footprint is ~7x smaller);
 *  - with iteration-granularity packing, vDNN_all turns that tenancy
 *    into a lower mean job completion time than any Baseline
 *    configuration (short jobs stop queueing behind the long run —
 *    the head-of-line blocking the Salus engine targets).
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "serve/arrival.hh"
#include "serve/scheduler.hh"

#include <memory>

using namespace vdnn;
using namespace vdnn::bench;
using namespace vdnn::serve;

namespace
{

constexpr int kJobs = 8;

/** Baseline vs vDNN_all tenants, both memory-optimal. */
std::shared_ptr<core::Planner>
makePlanner(bool vdnn)
{
    if (vdnn) {
        return std::make_shared<core::OffloadAllPlanner>(
            core::AlgoPreference::MemoryOptimal);
    }
    return std::make_shared<core::BaselinePlanner>(
        core::AlgoPreference::MemoryOptimal);
}

/** One long job arriving first, short jobs queued behind it. */
std::vector<JobSpec>
headOfLineWorkload(const std::shared_ptr<const net::Network> &network,
                   bool vdnn)
{
    std::vector<TimeNs> arrivals =
        uniformArrivals(kJobs, 500 * kNsPerMs, 100 * kNsPerMs);
    std::vector<JobSpec> specs;
    for (int i = 0; i < kJobs; ++i) {
        JobSpec spec;
        spec.name = strFormat(i == 0 ? "train-%d" : "probe-%d", i);
        spec.network = network;
        spec.planner = makePlanner(vdnn);
        spec.arrival = arrivals[std::size_t(i)];
        spec.iterations = i == 0 ? 20 : 2 + i % 3;
        specs.push_back(std::move(spec));
    }
    return specs;
}

ServeReport
runCluster(const std::shared_ptr<const net::Network> &network,
           SchedPolicy sched, bool vdnn)
{
    SchedulerConfig cfg;
    cfg.policy = sched;
    Scheduler scheduler(cfg);
    for (JobSpec &spec : headOfLineWorkload(network, vdnn))
        scheduler.submit(std::move(spec));
    return scheduler.run();
}

void
report()
{
    std::shared_ptr<const net::Network> vgg16 = net::buildVgg16(64);

    struct Cell
    {
        const char *sched_label;
        SchedPolicy sched;
        const char *policy_label;
        bool vdnn;
    };
    const std::vector<Cell> grid = {
        {"fifo-exclusive", SchedPolicy::FifoExclusive, "base (m)",
         false},
        {"fifo-exclusive", SchedPolicy::FifoExclusive, "vDNN_all (m)",
         true},
        {"round-robin", SchedPolicy::RoundRobin, "base (m)", false},
        {"round-robin", SchedPolicy::RoundRobin, "vDNN_all (m)", true},
        {"shortest-remaining", SchedPolicy::ShortestRemaining,
         "base (m)", false},
        {"shortest-remaining", SchedPolicy::ShortestRemaining,
         "vDNN_all (m)", true},
    };

    stats::Table table(strFormat(
        "Multi-tenant serving: %d VGG-16 (64) jobs on a 12 GB Titan X "
        "(1 long run + %d short jobs)",
        kJobs, kJobs - 1));
    table.setColumns({"scheduler", "policy", "finished", "peak jobs",
                      "avg jobs", "mean queue (s)", "mean JCT (s)",
                      "p99 JCT (s)", "makespan (s)", "peak pool (GiB)"});

    ServeReport base_rr;
    ServeReport vdnn_rr;
    ServeReport vdnn_srpt;
    double best_base_mean_jct = 0.0;
    for (const Cell &cell : grid) {
        ServeReport rep = runCluster(vgg16, cell.sched, cell.vdnn);
        table.addRow(
            {cell.sched_label, cell.policy_label,
             stats::Table::cellInt(rep.finishedCount()),
             stats::Table::cellInt(rep.peakJobsInFlight),
             stats::Table::cell(rep.avgJobsInFlight, 2),
             stats::Table::cell(toSeconds(rep.meanQueueingDelay()), 2),
             stats::Table::cell(toSeconds(rep.meanJct()), 2),
             stats::Table::cell(toSeconds(rep.p99Jct()), 2),
             stats::Table::cell(toSeconds(rep.makespan), 2),
             stats::Table::cell(toGiB(rep.poolPeakBytes), 2)});
        if (!cell.vdnn) {
            double jct = toSeconds(rep.meanJct());
            if (best_base_mean_jct == 0.0 || jct < best_base_mean_jct)
                best_base_mean_jct = jct;
            if (cell.sched == SchedPolicy::RoundRobin)
                base_rr = rep;
        } else if (cell.sched == SchedPolicy::RoundRobin) {
            vdnn_rr = rep;
        } else if (cell.sched == SchedPolicy::ShortestRemaining) {
            vdnn_srpt = rep;
        }
    }
    table.print();

    stats::Comparison cmp("Multi-tenant GPU sharing");
    cmp.addBool("every job finishes under every configuration", true,
                base_rr.finishedCount() == kJobs &&
                    vdnn_rr.finishedCount() == kJobs &&
                    vdnn_srpt.finishedCount() == kJobs);
    cmp.addNumeric("vDNN_all concurrent jobs vs Baseline (x, >=2)", 2.0,
                   double(vdnn_rr.peakJobsInFlight) /
                       double(base_rr.peakJobsInFlight),
                   /*tolerance=*/3.0);
    cmp.addBool("vDNN_all admits >= 2x Baseline's concurrent jobs",
                true,
                vdnn_rr.peakJobsInFlight >=
                    2 * base_rr.peakJobsInFlight);
    cmp.addBool("round-robin vDNN_all mean JCT below Baseline", true,
                toSeconds(vdnn_rr.meanJct()) < best_base_mean_jct);
    cmp.addBool("shortest-remaining vDNN_all mean JCT below Baseline",
                true,
                toSeconds(vdnn_srpt.meanJct()) < best_base_mean_jct);
    cmp.addInfo("mean queueing delay, Baseline round-robin",
                "head-of-line blocking",
                strFormat("%.1f s",
                          toSeconds(base_rr.meanQueueingDelay())));
    cmp.addInfo("mean queueing delay, vDNN_all round-robin",
                "near zero",
                strFormat("%.1f s",
                          toSeconds(vdnn_rr.meanQueueingDelay())));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("multitenant/vgg16_roundrobin_vdnn_all", [] {
        std::shared_ptr<const net::Network> vgg16 =
            net::buildVgg16(64);
        runCluster(vgg16, SchedPolicy::RoundRobin, /*vdnn=*/true);
    });
    return benchMain(argc, argv, report);
}
