/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Every bench binary follows the same shape:
 *   1. run the experiment(s) on the simulated Titan X node,
 *   2. print the paper-style table plus a paper-vs-measured comparison,
 *   3. register google-benchmark entries that re-run representative
 *      simulations so the binary doubles as a perf benchmark of the
 *      simulator itself.
 *
 * All helpers speak the Planner API directly.
 */

#ifndef VDNN_BENCH_COMMON_HH
#define VDNN_BENCH_COMMON_HH

#include "common/logging.hh"
#include "common/units.hh"
#include "core/dynamic_policy.hh"
#include "core/planner.hh"
#include "core/training_session.hh"
#include "net/builders.hh"
#include "net/network_stats.hh"
#include "serve/serve_stats.hh"
#include "stats/comparison.hh"
#include "stats/table.hh"

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>

namespace vdnn::bench
{

/** One column of the Figs. 11/12/14 planner grid. */
struct PlannerPoint
{
    std::shared_ptr<core::Planner> planner;
    const char *label;
    /** Baseline (no offloading) column — figures treat it as the
     *  reference, not a measurement. */
    bool isBaseline = false;
    /** vDNN_dyn column (derives its own per-layer algorithms). */
    bool isDynamic = false;
    /** Algorithm preference of the static planners; meaningless for
     *  the dynamic column. */
    core::AlgoPreference pref = core::AlgoPreference::PerformanceOptimal;
};

/** all/conv x (m)/(p), dyn, base x (m)/(p) — the paper's column order. */
const std::vector<PlannerPoint> &figurePlannerGrid();

// Shorthand planner factories for the paper's configurations.
std::shared_ptr<core::Planner> baselinePlanner(
    core::AlgoPreference pref = core::AlgoPreference::PerformanceOptimal);
std::shared_ptr<core::Planner> offloadAllPlanner(
    core::AlgoPreference pref = core::AlgoPreference::MemoryOptimal);
std::shared_ptr<core::Planner> offloadConvPlanner(
    core::AlgoPreference pref = core::AlgoPreference::MemoryOptimal);
std::shared_ptr<core::Planner> dynamicPlanner();

/** Run one session under an explicit planner on the Titan X node. */
core::SessionResult runPlanner(const net::Network &net,
                               std::shared_ptr<core::Planner> planner,
                               bool oracle = false);

/**
 * Register a google-benchmark that executes @p fn once per iteration.
 * The simulation is deterministic, so a single iteration suffices.
 */
void registerSim(const std::string &name, std::function<void()> fn);

/**
 * Machine-readable metric sink. Benches call recordBenchMetric()
 * while building their report; when the binary was invoked with
 * `--bench-json <path>`, benchMain() writes every recorded metric to
 * @p path as one JSON document (`{"bench": ..., "metrics": {...}}`) —
 * the BENCH_<name>.json perf-trajectory snapshots CI archives.
 */
void recordBenchMetric(const std::string &name, double value);

/** Record the standard serving metrics of @p r under "<prefix>.":
 *  throughput, mean/p95/p99 JCT, queueing-delay percentiles, compute
 *  utilization and offloaded PCIe traffic. */
void recordServeMetrics(const std::string &prefix,
                        const serve::ServeReport &r);

/**
 * Standard bench main body: strip `--bench-json <path>`, print
 * tables, run the google-benchmark registry, then emit the recorded
 * metrics when the flag was given.
 */
int benchMain(int argc, char **argv, std::function<void()> report);

} // namespace vdnn::bench

#endif // VDNN_BENCH_COMMON_HH
