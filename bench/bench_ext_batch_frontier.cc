/**
 * @file
 * Extension: the maximum trainable batch size per policy.
 *
 * The paper's introduction motivates vDNN with exactly this frontier:
 * "a single GPU can only accommodate a batch size of 64 for VGG-16",
 * so batch-256 training needs four GPUs — or vDNN. This bench binary
 * searches the largest power-of-two batch each policy can train on the
 * 12 GB Titan X for VGG-16 and AlexNet.
 *
 * Expected shape: baseline tops out at 64 for VGG-16; vDNN policies
 * extend the frontier by ~4x (256+), bounded eventually by the working
 * set of the first conv group and pinned host capacity.
 */

#include "bench_common.hh"

#include "common/units.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

/** Largest power-of-two batch (up to 1024) the planner can train. */
std::int64_t
maxBatch(const std::function<std::unique_ptr<net::Network>(std::int64_t)>
             &build,
         const std::function<std::shared_ptr<core::Planner>()> &planner)
{
    std::int64_t best = 0;
    for (std::int64_t batch = 16; batch <= 1024; batch *= 2) {
        auto network = build(batch);
        auto r = runPlanner(*network, planner());
        if (!r.trainable)
            break;
        best = batch;
    }
    return best;
}

void
report()
{
    stats::Table table("Extension: max trainable batch on the 12 GB "
                       "Titan X (powers of two up to 1024)");
    table.setColumns({"network", "base (p)", "base (m)", "conv (m)",
                      "all (m)", "dyn"});

    struct Net
    {
        const char *name;
        std::function<std::unique_ptr<net::Network>(std::int64_t)> build;
    };
    const Net nets[] = {
        {"VGG-16", [](std::int64_t b) { return net::buildVgg16(b); }},
        {"AlexNet", [](std::int64_t b) { return net::buildAlexNet(b); }},
    };

    std::int64_t vgg_base_p = 0, vgg_dyn = 0;
    for (const Net &n : nets) {
        using core::AlgoPreference;
        std::int64_t base_p = maxBatch(n.build, [] {
            return baselinePlanner(AlgoPreference::PerformanceOptimal);
        });
        std::int64_t base_m = maxBatch(n.build, [] {
            return baselinePlanner(AlgoPreference::MemoryOptimal);
        });
        std::int64_t conv_m = maxBatch(n.build, [] {
            return offloadConvPlanner(AlgoPreference::MemoryOptimal);
        });
        std::int64_t all_m = maxBatch(n.build, [] {
            return offloadAllPlanner(AlgoPreference::MemoryOptimal);
        });
        std::int64_t dyn =
            maxBatch(n.build, [] { return dynamicPlanner(); });
        if (std::string(n.name) == "VGG-16") {
            vgg_base_p = base_p;
            vgg_dyn = dyn;
        }
        table.addRow({n.name, stats::Table::cellInt(base_p),
                      stats::Table::cellInt(base_m),
                      stats::Table::cellInt(conv_m),
                      stats::Table::cellInt(all_m),
                      stats::Table::cellInt(dyn)});
    }
    table.print();

    stats::Comparison cmp("Batch frontier extension");
    cmp.addNumeric("VGG-16 max batch under baseline (p)", 64.0,
                   double(vgg_base_p), 0.0);
    cmp.addBool("vDNN extends the VGG-16 frontier to 256+", true,
                vgg_dyn >= 256);
    cmp.addInfo("frontier growth (VGG-16, baseline -> dyn)", ">= 4x",
                strFormat("%lldx", (long long)(vgg_dyn / vgg_base_p)));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("ext/frontier_vgg16_dyn_256", [] {
        auto network = net::buildVgg16(256);
        benchmark::DoNotOptimize(
            runPlanner(*network, dynamicPlanner()).trainable);
    });
    return benchMain(argc, argv, report);
}
