/**
 * @file
 * Scalability case study (Section V-E): training VGG-style networks
 * with hundreds of CONV layers on a single 12 GB GPU.
 *
 * Usage: very_deep_networks [batch]
 */

#include "common/logging.hh"
#include "common/units.hh"
#include "core/dynamic_policy.hh"
#include "core/planner.hh"
#include "core/training_session.hh"
#include "net/builders.hh"
#include "stats/table.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace vdnn;
using namespace vdnn::core;

int
main(int argc, char **argv)
{
    std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 32;

    stats::Table table(strFormat(
        "very deep VGG-style networks (batch %lld) under vDNN_dyn",
        (long long)batch));
    table.setColumns({"network", "conv layers", "baseline needs (GB)",
                      "dyn GPU max (GB)", "dyn CPU side (GB)",
                      "iteration (s)"});

    for (int depth : {16, 116, 216, 316, 416}) {
        auto network = net::buildVggDeep(depth, batch);

        SessionConfig oracle_cfg;
        oracle_cfg.planner = std::make_shared<BaselinePlanner>(
            AlgoPreference::PerformanceOptimal);
        oracle_cfg.oracle = true;
        auto oracle = runSession(*network, oracle_cfg);

        SessionConfig dyn_cfg;
        dyn_cfg.planner = std::make_shared<DynamicPlanner>();
        auto dyn = runSession(*network, dyn_cfg);
        if (!dyn.trainable) {
            std::printf("%s: vDNN cannot train (%s)\n",
                        network->name().c_str(), dyn.failReason.c_str());
            continue;
        }

        table.addRow(
            {network->name(), stats::Table::cellInt(depth),
             stats::Table::cell(double(oracle.maxTotalUsage) / 1e9, 1),
             stats::Table::cell(double(dyn.maxTotalUsage) / 1e9, 2),
             stats::Table::cell(double(dyn.hostPeakBytes) / 1e9, 1),
             stats::Table::cell(toSeconds(dyn.iterationTime), 2)});
    }
    table.print();

    std::printf("\nThe baseline requirement grows linearly with depth\n"
                "and leaves the 12 GB card far behind; vDNN keeps the\n"
                "GPU footprint nearly flat by moving the feature maps\n"
                "of all but the active layers to host memory.\n");
    return 0;
}
