/**
 * @file
 * The vDNN training-iteration executor (Sections III-A and III-B),
 * decomposed into a compile-then-step architecture.
 *
 * The Executor compiles one IterationProgram — an explicit op stream
 * of Alloc / Kernel / Offload / OnDemandFetch / Prefetch / Sync /
 * Release steps (core/iteration_program.hh) — from its (Network,
 * MemoryPlan, ExecutorConfig) triple, and executes it on the simulated
 * CUDA runtime with two streams, exactly as the paper's prototype:
 *
 *  - stream_compute sequences all layer kernels (cuDNN / cuBLAS);
 *  - stream_memory performs offload (D2H) and prefetch (H2D) DMAs.
 *
 * Forward, per layer: allocate Y and workspace from the cnmem pool,
 * launch the kernel; if the plan's directive offloads the layer's
 * input feature maps and this layer is their last consumer (refcount
 * rule, Fig. 3), launch the offload concurrently and synchronize both
 * streams at the layer boundary, then release the device copy.
 * Compressed directives shrink the bytes the DMA moves. Workspace is
 * released after the layer completes; buffers with no backward reuse
 * are aggressively released.
 *
 * Backward, per layer (reverse order): findPrefetchLayer (Fig. 10)
 * launches an overlapped prefetch; missing inputs are fetched on demand
 * (serialized, the case prefetching exists to avoid); gradient maps are
 * allocated on demand and released as soon as their consumer finishes;
 * Y/dY are released once the layer's backward completes (Fig. 8).
 *
 * A static-allocation plan (BaselinePlanner) instead allocates the
 * whole network at setup (Section II-C) and performs no memory
 * traffic. The executor consumes only the MemoryPlan's per-buffer
 * directives — it never consults a policy enum.
 *
 * Execution is driven by an IterationStepper: a resumable cursor over
 * the program. runIteration() is a drain loop (step(blocking=true)
 * until done) and reproduces the former monolithic loop's timing
 * exactly. An external scheduler can instead step(blocking=false):
 * Sync boundaries (and the Barrier / EndIteration drains) then return
 * Blocked instead of stalling the host, so iterations of concurrent
 * tenants on a shared runtime can interleave at op granularity — one
 * tenant's compute ops run under another's in-flight DMAs
 * (serve::SchedPolicy::PackedOverlap). The on-demand fetch path stays
 * host-blocking even then: it is the serialized fallback prefetching
 * exists to avoid.
 */

#ifndef VDNN_CORE_EXECUTOR_HH
#define VDNN_CORE_EXECUTOR_HH

#include "check/check.hh"
#include "core/iteration_program.hh"
#include "core/memory_manager.hh"
#include "core/planner.hh"
#include "core/prefetch.hh"
#include "dnn/cudnn_sim.hh"
#include "gpu/runtime.hh"
#include "net/network.hh"
#include "net/network_stats.hh"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace vdnn::core
{

/** Executor knobs (defaults reproduce the paper's design). */
struct ExecutorConfig
{
    /**
     * Release offloaded buffers at the owning layer's boundary by
     * synchronizing both streams (the paper's design). false defers the
     * release to the next synchronization point after the copy
     * completes (asynchronous release; ablation study).
     */
    bool syncAtLayerBoundary = true;
    /** Enable overlapped prefetching (false: on-demand fetches only). */
    bool prefetchEnabled = true;
    /** Bound the prefetch search window at the next CONV layer. */
    bool prefetchWindowBounded = true;
    /**
     * Weight of this executor's DMAs in the PCIe fair-share arbiter
     * when several tenants contend for the link (src/interconnect/).
     */
    double pcieWeight = 1.0;
    /**
     * Static verification (src/check/): run the ProgramVerifier over
     * every compiled IterationProgram and the PlanVerifier over every
     * resolved MemoryPlan. Defaults on, except in Release builds.
     */
    check::CheckConfig check;
};

/** Wall-clock window of one layer's kernels within the iteration. */
struct LayerTiming
{
    net::LayerId id = -1;
    TimeNs fwdStart = 0;
    TimeNs fwdEnd = 0;
    TimeNs bwdStart = 0;
    TimeNs bwdEnd = 0;

    TimeNs fwdLatency() const { return fwdEnd - fwdStart; }
    TimeNs bwdLatency() const { return bwdEnd - bwdStart; }
    /** Fig. 6 reuse distance: end of forward to start of backward. */
    TimeNs reuseDistance() const { return bwdStart - fwdEnd; }
};

/** What kind of allocation failed an iteration (for vDNN_dyn). */
enum class FailKind : std::uint8_t
{
    None,
    Workspace,
    FeatureMap,
    Gradient,
    Fetch,
};

/** Outcome of one training iteration. */
struct IterationResult
{
    bool ok = false;
    std::string failReason;
    FailKind failKind = FailKind::None;
    net::LayerId failLayer = net::kInputLayer;

    TimeNs start = 0;
    TimeNs end = 0;
    TimeNs makespan() const { return end - start; }

    /** Portion of the makespan spent in classifier layers. */
    TimeNs classifierTime = 0;
    /** Feature-extraction-only latency (the paper's Fig. 14 metric). */
    TimeNs featureExtractionTime() const
    {
        return makespan() - classifierTime;
    }

    /** Time stream_compute spent stalled on stream_memory transfers. */
    TimeNs transferStallTime = 0;

    Bytes offloadedBytes = 0;
    /**
     * Bytes that actually crossed PCIe (offloads + prefetches +
     * on-demand fetches). Equals the raw traffic unless the plan
     * routes buffers through the compressing DMA engine.
     */
    Bytes pcieBytes = 0;
    int offloads = 0;
    int prefetches = 0;
    int onDemandFetches = 0;
    /** Prefetched device copies dropped again under memory pressure. */
    int prefetchEvictions = 0;

    std::vector<LayerTiming> layers;
};

/** A pool allocation plus its managed-usage accounting flag. */
struct TaggedAlloc
{
    mem::Allocation alloc;
    bool managed = false;
};

/**
 * Pre-resolved dispatch tables (the flat-dispatch layer). The
 * IterationProgram stays the verifiable IR (src/check interprets it);
 * these tables cache, per layer / per buffer / per op, everything the
 * IR's semantics determine statically — kernel descriptors with their
 * costs resolved, DMA tags and compressed byte counts, and the exact
 * buffer lists each op touches — so the stepper's per-op work is a
 * table walk, not graph traversal plus string formatting. Rebuilt by
 * Executor::rebuildDispatchPlan() at construction and adoptPlan().
 */
struct ExecLaunchPlan
{
    /** Forward kernel, cost and name resolved against the plan algo. */
    gpu::KernelDesc fwd;
    /** Backward filter-gradient kernel (the only one for non-conv). */
    gpu::KernelDesc bwdFilter;
    /** Backward data-gradient kernel (conv with non-input X only). */
    gpu::KernelDesc bwdData;
    bool hasBwdData = false;
    /** Conv workspace for the plan's algorithm (0 for non-conv). */
    Bytes wsBytes = 0;
    std::string wsTag;
    bool wsManaged = false;
    bool classifier = false;
};

struct ExecBufferPlan
{
    Bytes bytes = 0;
    /** Bytes crossing PCIe per transfer (compression applied). */
    Bytes dmaBytes = 0;
    /** No backward reuse, not classifier: free after last fwd read. */
    bool fwdReleasable = false;
    /** Lives in the static classifier region (no managed gradient). */
    bool classifier = false;
    std::string offloadTag;
    std::string prefetchTag;
    std::string fetchTag;
    std::string gradTag;
};

/** Per-op resolved operands, aligned index-for-index with prog.ops. */
struct ExecOpPlan
{
    /**
     * The buffers this op touches: forward Alloc = input feature maps
     * (residency preconditions); Offload = inputs the plan offloads
     * whose last forward reader is this layer (deduplicated); Fetch =
     * X/Y operands backward needs resident; backward Alloc = the dX
     * gradient buffers; Release = forward input buffers (refcount
     * drops) or the backward release set (last backward user here).
     */
    std::vector<net::BufferId> buffers;
    /** The layer's output buffer (Alloc ops). */
    net::BufferId yBuffer = -1;
    /** Forward Alloc materializes yBuffer (not in-place). */
    bool allocY = false;
    /** Backward Release frees dY (this layer produced yBuffer). */
    bool releaseDY = false;
};

class Executor;

/**
 * A resumable cursor over an Executor's IterationProgram.
 *
 * step(blocking=true) always executes the next op, stalling the
 * simulated host at stream joins exactly like the former monolithic
 * loop. step(blocking=false) instead returns Blocked from a Sync /
 * Barrier / EndIteration op whose stream has in-flight work, leaving
 * the host free to advance another tenant's stepper; the op resumes
 * where it left off on the next call. The two modes produce identical
 * device timelines for a single tenant — non-blocking mode only hands
 * the wait loop to the caller.
 */
class IterationStepper
{
  public:
    enum class Status : std::uint8_t
    {
        Running, ///< more ops to execute
        Blocked, ///< next op waits on blockedStream() (non-blocking)
        Done,    ///< iteration completed; result().ok == true
        Failed,  ///< iteration aborted; result().failReason says why
    };

    /** Execute (or resume) the next op. */
    Status step(bool blocking = true);

    Status status() const { return st; }
    bool finished() const
    {
        return st == Status::Done || st == Status::Failed;
    }

    /** Stream the stepper is blocked on (valid while Blocked). */
    gpu::StreamId blockedStream() const { return blockedOn; }

    /** Index of the next op to execute (the program counter). */
    std::size_t pc() const { return pcIndex; }
    const IterOp *nextOp() const;

    const IterationResult &result() const { return res; }

  private:
    friend class Executor;

    explicit IterationStepper(Executor &executor);

    Status blocked(gpu::StreamId stream);

    /** Unwind a partially executed iteration (tenant eviction). */
    void cancel();

    // --- op bodies (false = iteration aborted) ---------------------------
    bool opBeginIteration();
    bool opFwdAlloc(net::LayerId id, const ExecOpPlan &p);
    void opFwdKernel(net::LayerId id);
    void opFwdOffload(const ExecOpPlan &p);
    void opFwdRelease(net::LayerId id, const ExecOpPlan &p);
    bool opBwdFetch(net::LayerId id, const ExecOpPlan &p);
    bool opBwdAlloc(net::LayerId id, const ExecOpPlan &p);
    void opBwdPrefetch(net::LayerId id);
    void opBwdKernel(net::LayerId id);
    void opBwdRelease(net::LayerId id, const ExecOpPlan &p);
    Status opSync(const IterOp &op, bool blocking);
    Status opBarrier(bool blocking);
    Status opEndIteration(bool blocking);

    Executor &ex;
    std::size_t pcIndex = 0;
    Status st = Status::Running;
    gpu::StreamId blockedOn = -1;

    /** Resume point inside a partially executed Sync op. */
    int syncPhase = 0;
    TimeNs tComputeDone = 0;

    /** (layer, phase) group the cursor is in, for entry timestamps. */
    net::LayerId groupLayer = -2;
    bool groupBackward = false;
    /** rt.now() when the cursor entered the current layer group. */
    TimeNs tLayerStart = 0;

    /** Live convolution workspace of the current layer. */
    std::optional<TaggedAlloc> ws;
    /** Buffers whose offload DMA this layer's Sync op joins. */
    std::vector<net::BufferId> offloading;
    /** Buffers whose prefetch DMA this layer's Sync op joins. */
    std::vector<net::BufferId> prefetching;

    IterationResult res;
};

class Executor
{
  public:
    Executor(const net::Network &net, const dnn::CudnnSim &cudnn,
             gpu::Runtime &runtime, MemoryManager &mm,
             const MemoryPlan &plan, ExecutorConfig config = {});

    /**
     * Allocate the persistent state: weights, the shared dW buffer, the
     * classifier block, and — for static-allocation plans — the full
     * network-wide allocation (all feature maps, reused gradient
     * buffers, shared max workspace).
     * @return false when the pool cannot hold it (untrainable).
     */
    bool setup();

    /** Run one forward+backward pass. Requires a successful setup(). */
    IterationResult runIteration();

    /**
     * Start an iteration to be driven one op at a time. At most one
     * stepper is live; the previous iteration must have been drained
     * (finished()) and collected with finishIteration().
     */
    IterationStepper &beginIteration();

    /** The live stepper, or nullptr between iterations. */
    IterationStepper *activeStepper() { return stepper.get(); }

    /** Collect a finished stepper's result and retire it. */
    IterationResult finishIteration();

    /**
     * Abandon the in-flight iteration (if any) without folding it into
     * any result: drain the device, unwind every per-iteration
     * allocation and retire the stepper. The iteration is simply
     * re-run later — the path a tenant eviction takes when it parks
     * mid-iteration. No-op between iterations.
     */
    void cancelIteration();

    /**
     * Move @p bytes of tenant state across PCIe on the executor's
     * memory stream and block until the copy lands. Used by the
     * session lifecycle to evict the persistent state to pinned host
     * memory (D2H) and restore it on resume (H2D).
     */
    void dmaState(Bytes bytes, gpu::CopyDir dir, const std::string &tag);

    /**
     * Buffer-granularity paging under external (serve-layer) memory
     * pressure: drop up to @p need bytes of this tenant's *cold*
     * device copies — buffers an opportunistic prefetch brought back
     * whose first backward use is still ahead of the live stepper's
     * cursor and whose pinned-host copy is still valid, so releasing
     * the device copy costs no DMA and ensureResident() re-fetches
     * them on demand. Between iterations nothing is prefetched, so
     * there is nothing cold and the call returns 0.
     * @return bytes freed.
     */
    Bytes pageOutCold(Bytes need);

    /**
     * Swap the execution plan in place at an iteration boundary
     * (mid-run re-planning). Requires no iteration in flight and a
     * plan of the same allocation style (the persistent set — weights,
     * dW, classifier block — is identical across layer-wise plans, so
     * only the directives/algorithms and the recompiled
     * IterationProgram change).
     */
    void adoptPlan(const MemoryPlan &plan);

    /** Release the persistent state. */
    void teardown();

    /** Persistent footprint allocated by setup(). */
    Bytes persistentBytes() const { return persistentTotal; }

    const MemoryPlan &plan() const { return execPlan; }

    /** The compiled op stream every iteration executes. */
    const IterationProgram &program() const { return prog; }

  private:
    friend class IterationStepper;

    /** Run the ProgramVerifier over prog (cfg.check gates callers). */
    void verifyCompiledProgram(const char *when);

    // --- setup helpers ------------------------------------------------------
    bool allocPersistent(Bytes bytes, const std::string &tag,
                         bool managed);
    bool setupBaseline();
    void teardownPartial();

    // --- kernel launch helpers -----------------------------------------------
    void launchForwardKernels(net::LayerId id);
    void launchBackwardKernels(net::LayerId id);

    // --- memory helpers -----------------------------------------------------
    bool ensureResident(net::BufferId b, net::LayerId curr,
                        IterationResult &result);
    /**
     * Memory-pressure recovery: evict prefetched-but-unconsumed buffers
     * (device copy dropped for free; the pinned host copy is still
     * valid) until a block of @p need bytes could fit, so mandatory
     * allocations win over opportunistic prefetches.
     * @return true if anything was evicted
     */
    bool evictUnconsumedPrefetches(Bytes need, net::LayerId curr);
    bool allocGradient(net::BufferId b);
    void releaseGradient(net::BufferId b);
    bool gradientLive(net::BufferId b) const;
    void processDeferredReleases(bool force);
    void abortIteration(IterationResult &result, const std::string &why,
                        FailKind kind = FailKind::None,
                        net::LayerId layer = net::kInputLayer);

    /** Network-wide static allocation: no directives are executed. */
    bool staticAlloc() const { return execPlan.staticAllocation; }

    /** Rebuild the flat-dispatch tables from (net, execPlan, prog). */
    void rebuildDispatchPlan();

    const net::Network &net;
    const dnn::CudnnSim &cudnn;
    gpu::Runtime &rt;
    MemoryManager &mm;
    MemoryPlan execPlan;
    ExecutorConfig cfg;
    net::NetworkStats stats;
    IterationProgram prog;

    gpu::StreamId streamCompute = -1;
    gpu::StreamId streamMemory = -1;

    bool setupDone = false;
    std::vector<TaggedAlloc> persistent;
    Bytes persistentTotal = 0;
    /** Baseline only: every buffer is pre-materialized. */
    bool buffersStatic = false;
    /** Buffers materialized at setup (classifier block / baseline). */
    std::vector<bool> staticBuffers;
    /** Per layer: buffers whose last backward user is that layer. */
    std::vector<std::vector<net::BufferId>> bwdReleaseAt;

    // Flat-dispatch tables (rebuildDispatchPlan).
    std::vector<ExecLaunchPlan> launchPlan; // per layer
    std::vector<ExecBufferPlan> bufferPlan; // per buffer
    std::vector<ExecOpPlan> opPlan;         // aligned with prog.ops
    /** Initial forward refcounts, copied into remainingReaders. */
    std::vector<int> initialReaders;

    // Per-iteration state (reset by the BeginIteration op).
    /** Live gradient allocations, indexed by buffer id. */
    std::vector<std::optional<TaggedAlloc>> gradients;
    int liveGradients = 0;
    std::vector<std::pair<net::BufferId, gpu::CudaEventId>>
        deferredReleases;
    std::vector<int> remainingReaders; // forward refcounts, per buffer
    std::optional<PrefetchState> prefetchState;

    std::unique_ptr<IterationStepper> stepper;

    /** Registry slots cached at construction (null = telemetry off). */
    obs::Counter *ctrIters = nullptr;
    obs::Counter *ctrOffloads = nullptr;
    obs::Counter *ctrPrefetches = nullptr;
    obs::Counter *ctrOnDemand = nullptr;
};

} // namespace vdnn::core

#endif // VDNN_CORE_EXECUTOR_HH
