/**
 * @file
 * Figure 1: GPU memory usage of the baseline network-wide allocation
 * policy, and the maximum fraction of that allocation any single
 * layer's computation actually uses.
 *
 * Paper anchors: AlexNet needs a "mere" 1.1 GB while VGG-16 (256)
 * needs 28 GB; 53%-79% of the allocated memory is not used at all at
 * any given time (i.e. the maximum layer-wise usage is 21%-47%).
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "dnn/cudnn_sim.hh"
#include "gpu/gpu_spec.hh"

#include <algorithm>

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

void
report()
{
    dnn::CudnnSim cudnn(gpu::titanXMaxwell());

    stats::Table table("Figure 1: baseline (network-wide) memory "
                       "allocation and max layer-wise usage");
    table.setColumns({"network", "allocation (MB)", "max layer-wise (MB)",
                      "max usage (%)", "unused (%)"});

    double min_unused = 100.0;
    double max_unused = 0.0;
    double alexnet_gb = 0.0;
    double vgg256_gb = 0.0;

    std::size_t row = 0;
    const std::size_t conventional = net::conventionalSuite().size();
    for (const auto &entry : net::fullSuite()) {
        auto network = entry.build();
        net::NetworkStats ns(*network, cudnn);
        // The paper's allocation anchors (1.1 GB AlexNet) correspond to
        // the memory-optimal algorithm choice (no workspace).
        auto algos = net::memoryOptimalAlgos(*network);
        Bytes total = ns.baselineBreakdown(algos).total();
        Bytes layerwise = ns.maxLayerWiseUsage(algos);
        double used_pct = 100.0 * double(layerwise) / double(total);
        double unused_pct = 100.0 - used_pct;
        // The 53-79% unused band refers to the conventional networks;
        // the very deep ones leave even more unused.
        if (row < conventional) {
            min_unused = std::min(min_unused, unused_pct);
            max_unused = std::max(max_unused, unused_pct);
        }
        ++row;
        if (entry.name == "AlexNet (128)")
            alexnet_gb = double(total) / 1e9;
        if (entry.name == "VGG-16 (256)")
            vgg256_gb = double(total) / 1e9;

        table.addRow({entry.name, stats::Table::cell(toMiB(total), 0),
                      stats::Table::cell(toMiB(layerwise), 0),
                      stats::Table::cell(used_pct, 1),
                      stats::Table::cell(unused_pct, 1)});
    }
    table.print();

    stats::Comparison cmp("Figure 1");
    cmp.addNumeric("AlexNet (128) baseline allocation (GB)", 1.1,
                   alexnet_gb, 0.35);
    cmp.addNumeric("VGG-16 (256) baseline allocation (GB)", 28.0,
                   vgg256_gb, 0.35);
    cmp.addNumeric("min unused memory, conventional networks (%)", 53.0,
                   min_unused, 0.2);
    cmp.addNumeric("max unused memory, conventional networks (%)", 79.0,
                   max_unused, 0.25);
    cmp.addInfo("measured unused-memory band (conventional)",
                "53% - 79%",
                strFormat("%.0f%% - %.0f%%", min_unused, max_unused));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("fig01/footprint_analysis_full_suite", [] {
        dnn::CudnnSim cudnn(gpu::titanXMaxwell());
        for (const auto &entry : net::fullSuite()) {
            auto network = entry.build();
            net::NetworkStats ns(*network, cudnn);
            auto algos = net::performanceOptimalAlgos(*network, cudnn);
            benchmark::DoNotOptimize(
                ns.baselineBreakdown(algos).total());
            benchmark::DoNotOptimize(ns.maxLayerWiseUsage(algos));
        }
    });
    return benchMain(argc, argv, report);
}
