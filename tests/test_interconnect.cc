/**
 * @file
 * Unit tests for the PCIe DMA and page-migration transfer models,
 * cross-checked against the constants the paper quotes in Section II-C.
 */

#include "interconnect/page_migration.hh"
#include "interconnect/pcie_link.hh"

#include "common/units.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::ic;
using namespace vdnn::literals;

TEST(PcieLink, PresetMatchesPaperNode)
{
    PcieLink link(pcieGen3x16());
    EXPECT_DOUBLE_EQ(link.spec().rawBandwidth, 16.0e9);
    EXPECT_DOUBLE_EQ(link.spec().dmaBandwidth, 12.8e9);
}

TEST(PcieLink, LargeTransferApproachesDmaBandwidth)
{
    PcieLink link(pcieGen3x16());
    // 1 GiB: the fixed setup cost is negligible.
    double bw = link.achievedBandwidth(1_GiB);
    EXPECT_GT(bw, 0.99 * 12.8e9);
    EXPECT_LE(bw, 12.8e9);
}

TEST(PcieLink, SmallTransferDominatedBySetupCost)
{
    PcieLink link(pcieGen3x16());
    double bw = link.achievedBandwidth(4096);
    EXPECT_LT(bw, 1.0e9); // far below line rate
}

TEST(PcieLink, TransferTimeScalesLinearly)
{
    PcieLink link(pcieGen3x16());
    TimeNs t1 = link.transferTime(256_MiB);
    TimeNs t2 = link.transferTime(512_MiB);
    double setup = double(link.spec().setupLatency);
    EXPECT_NEAR(double(t2) - setup, 2.0 * (double(t1) - setup),
                double(t1) * 0.01);
}

TEST(PcieLink, ZeroBytesStillCostsSetup)
{
    PcieLink link(pcieGen3x16());
    EXPECT_EQ(link.transferTime(0), link.spec().setupLatency);
}

TEST(PcieLink, NvlinkPresetIsFaster)
{
    PcieLink pcie(pcieGen3x16());
    PcieLink nvlink(nvlinkGen1());
    EXPECT_LT(nvlink.transferTime(1_GiB), pcie.transferTime(1_GiB));
}

TEST(PageMigration, EffectiveBandwidthMatchesPaperRange)
{
    // Section II-C: 20-50 us per 4 KB page -> 80-200 MB/s.
    PageMigrationModel pm;
    double best = pm.effectiveBandwidth(false);
    double worst = pm.effectiveBandwidth(true);
    EXPECT_NEAR(best, 200.0e6, 10.0e6);
    EXPECT_NEAR(worst, 80.0e6, 5.0e6);
}

TEST(PageMigration, PageCountRoundsUp)
{
    PageMigrationModel pm;
    EXPECT_EQ(pm.pagesFor(0), 0);
    EXPECT_EQ(pm.pagesFor(1), 1);
    EXPECT_EQ(pm.pagesFor(4096), 1);
    EXPECT_EQ(pm.pagesFor(4097), 2);
}

TEST(PageMigration, DmaIsOrdersOfMagnitudeFaster)
{
    PcieLink link(pcieGen3x16());
    PageMigrationModel pm;
    Bytes payload = 256_MiB;
    double ratio = double(pm.transferTime(payload)) /
                   double(link.transferTime(payload));
    // 12.8 GB/s vs 200 MB/s -> ~64x in the optimistic case.
    EXPECT_GT(ratio, 50.0);
    EXPECT_LT(ratio, 80.0);
}
