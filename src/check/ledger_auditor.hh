/**
 * @file
 * LedgerAuditor: replayable verification of a finished serving run.
 *
 * The serve-layer scheduler leaves a complete audit trail behind — the
 * time-ordered LifecycleEvent log with the admission ledger's reserved
 * bytes on both sides of every transition, plus the drained ledger
 * state and per-job outcome counters in the ServeReport. The auditor
 * replays that trail through a per-tenant state machine
 *
 *     Queued -admit-> Running -suspend-> Suspended -evict-> Evicted
 *     Suspended/Evicted -resume-> Running
 *     Running -migrate-out-> Migrating -migrate-> Running
 *                            Migrating -migrate-stall-> Evicted
 *     (live) -finish/fail-> done, -requeue-> Queued
 *     Running -profile/replan/page-out-> Running
 *
 * and proves:
 *  - every transition is legal for the tenant's replayed state
 *    (BadTransition), and no tenant is admitted or resumed while it is
 *    already Running somewhere (DoubleResidency);
 *  - the reserved-bytes ledger chains: each event's reservedBefore
 *    equals the previous event's reservedAfter, starting from zero
 *    (LedgerChain);
 *  - every delta has the sign its event kind implies — admission
 *    reserves, eviction and release free, suspend/replan move nothing
 *    (DeltaSign);
 *  - at drain every tenant reached a terminal state (LostJob) and the
 *    reserved/evicted ledgers — aggregate and per device — balance to
 *    zero (LedgerNonZero);
 *  - the JobOutcome counters agree with the event log: replans,
 *    preemptions and page-outs exactly, migrations at least the
 *    successful "migrate" count (OutcomeMismatch).
 *
 * Header-only dependency on serve/serve_stats.hh: the auditor reads
 * report fields, so vdnn_check needs no link against vdnn_serve.
 */

#ifndef VDNN_CHECK_LEDGER_AUDITOR_HH
#define VDNN_CHECK_LEDGER_AUDITOR_HH

#include "check/check.hh"
#include "serve/serve_stats.hh"

namespace vdnn::check
{

/** Replay and verify the lifecycle/ledger trail of a drained run. */
CheckResult auditLedger(const serve::ServeReport &report);

} // namespace vdnn::check

#endif // VDNN_CHECK_LEDGER_AUDITOR_HH
