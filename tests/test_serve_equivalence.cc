/**
 * @file
 * Golden equivalence suite for the event-driven cluster serve loop.
 *
 * PR 9 replaced the polling `runCluster()` (scan every device per
 * turn) with a wake-list loop that drains only devices an executed
 * event actually woke. The refactor must not change a single
 * scheduling decision: these tests pin ServeReports produced by the
 * *polling* loop — makespan, per-job admit/dispatch/finish times,
 * iteration counts, placements and the full lifecycle ledger folded
 * into one hash — on four deterministic workloads covering the
 * cluster round-robin burst (with rebalance migration), the sparse
 * FIFO idle path (clock advances to the next arrival), SRPT packing,
 * and the single-device preemptive-priority state machine whose idle
 * path shares the nextPendingArrival fast path.
 *
 * If any of these change, the wake-list loop made a different
 * decision than the polling loop did — a correctness bug, not a perf
 * win. Debug by diffing `memory_timeline lifecycle` / bench_cluster
 * output against a pre-change build.
 */

#include "serve/placement.hh"
#include "serve/scheduler.hh"

#include "check/ledger_auditor.hh"
#include "common/units.hh"
#include "net/builders.hh"
#include "obs/metrics.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

using namespace vdnn;
using namespace vdnn::serve;

namespace
{

std::shared_ptr<core::Planner>
vdnnAll()
{
    return std::make_shared<core::OffloadAllPlanner>(
        core::AlgoPreference::MemoryOptimal);
}

std::shared_ptr<const net::Network>
sharedNet(int which, std::int64_t batch)
{
    // Cached per (builder, batch): network construction is expensive
    // and the specs are immutable.
    static std::map<std::pair<int, std::int64_t>,
                    std::shared_ptr<const net::Network>>
        cache;
    auto key = std::make_pair(which, batch);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    std::shared_ptr<const net::Network> net =
        which == 0 ? net::buildAlexNet(batch) : net::buildOverFeat(batch);
    cache.emplace(key, net);
    return net;
}

/** FNV-1a over the fields a scheduling decision can influence. */
struct Fold
{
    std::uint64_t h = 1469598103934665603ULL;
    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
    void
    addStr(const char *s)
    {
        for (; *s; ++s) {
            h ^= std::uint64_t(static_cast<unsigned char>(*s));
            h *= 1099511628211ULL;
        }
    }
};

std::uint64_t
foldJobs(const ServeReport &r)
{
    Fold f;
    for (const JobOutcome &j : r.jobs) {
        f.add(std::uint64_t(j.id));
        f.add(std::uint64_t(j.state));
        f.add(std::uint64_t(j.arrival));
        f.add(std::uint64_t(j.admitTime));
        f.add(std::uint64_t(j.firstDispatchTime));
        f.add(std::uint64_t(j.finishTime));
        f.add(std::uint64_t(j.serviceTime));
        f.add(std::uint64_t(j.iterations));
        f.add(std::uint64_t(j.oomRequeues));
        f.add(std::uint64_t(j.preemptions));
        f.add(std::uint64_t(j.migrations));
        f.add(std::uint64_t(j.device));
        for (int d : j.placements)
            f.add(std::uint64_t(d));
    }
    return f.h;
}

std::uint64_t
foldLifecycle(const ServeReport &r)
{
    Fold f;
    for (const LifecycleEvent &ev : r.lifecycle) {
        f.add(std::uint64_t(ev.when));
        f.add(std::uint64_t(ev.job));
        f.addStr(ev.what);
        f.add(std::uint64_t(ev.device));
        f.add(std::uint64_t(ev.reservedBefore));
        f.add(std::uint64_t(ev.reservedAfter));
    }
    return f.h;
}

/** The ledger must balance and the audit trail must replay cleanly
 *  whatever loop produced the report. */
void
expectClean(const ServeReport &r)
{
    EXPECT_EQ(r.reservedBytesAtEnd, 0);
    EXPECT_EQ(r.evictedLedgerAtEnd, 0);
    check::CheckResult audit = check::auditLedger(r);
    EXPECT_TRUE(audit.ok()) << audit.report();
}

// --- workloads ---------------------------------------------------------------

/** The simspeed burst: 8 mixed tenants on 2 devices, round-robin
 *  packing, load-balance placement, rebalance migration. */
ServeReport
runClusterBurst(bool forceWakeAll = false)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.devices.assign(2, cfg.gpu);
    cfg.placement = std::make_shared<LoadBalancePlacement>();
    cfg.rebalancePeriod = 100 * kNsPerMs;
    cfg.rebalanceThreshold = 2;
    Scheduler sched(cfg);
    for (int i = 0; i < 8; ++i) {
        JobSpec spec;
        spec.name = strFormat("eq-%02d", i);
        spec.network = sharedNet(i % 2, 128);
        spec.planner = vdnnAll();
        spec.arrival = TimeNs(i) * 5 * kNsPerMs;
        spec.iterations = 3;
        sched.submit(std::move(spec));
    }
    sched.setDebugForceWakeAll(forceWakeAll);
    return sched.run();
}

/** Sparse FIFO arrivals on 3 devices: between bursts every device
 *  drains, so the loop takes the idle advance-to-next-arrival path
 *  (the nextPendingArrival fast path) repeatedly. */
ServeReport
runClusterSparse()
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::FifoExclusive;
    cfg.devices.assign(3, cfg.gpu);
    Scheduler sched(cfg);
    for (int i = 0; i < 6; ++i) {
        JobSpec spec;
        spec.name = strFormat("sparse-%02d", i);
        spec.network = sharedNet(0, 64);
        spec.planner = vdnnAll();
        spec.arrival = TimeNs(i) * 3 * kNsPerSec;
        spec.iterations = 2;
        sched.submit(std::move(spec));
    }
    return sched.run();
}

/** SRPT packing with mixed iteration budgets on 2 devices. */
ServeReport
runClusterSrpt(bool forceWakeAll = false)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::ShortestRemaining;
    cfg.devices.assign(2, cfg.gpu);
    Scheduler sched(cfg);
    for (int i = 0; i < 10; ++i) {
        JobSpec spec;
        spec.name = strFormat("srpt-%02d", i);
        spec.network = sharedNet(i % 2, 64);
        spec.planner = vdnnAll();
        spec.arrival = TimeNs(i) * 2 * kNsPerMs;
        spec.iterations = i % 4 + 1;
        sched.submit(std::move(spec));
    }
    sched.setDebugForceWakeAll(forceWakeAll);
    return sched.run();
}

// --- single-device workloads (legacy-loop goldens) ---------------------------
//
// PR 10 collapses the legacy single-device loops (`runInterleaved`,
// `runPacked`) into the unified event-driven engine. These workloads
// were pinned against the *pre-refactor* build, one per policy, so
// the engine provably reproduces every legacy scheduling decision:
// FIFO's exclusive idle path, round-robin packing, SRPT ordering,
// op-granularity packed overlap, and (below) the preemptive-priority
// state machine.

ServeReport
runSingleDevice(SchedPolicy policy, bool forceWakeAll = false)
{
    SchedulerConfig cfg;
    cfg.policy = policy;
    Scheduler sched(cfg);
    int n = policy == SchedPolicy::FifoExclusive ? 5 : 8;
    for (int i = 0; i < n; ++i) {
        JobSpec spec;
        spec.name = strFormat("sd-%02d", i);
        spec.network = sharedNet(i % 2, 64);
        spec.planner = vdnnAll();
        // FIFO: 2 s gaps drain the device between arrivals (idle
        // advance path); the packing policies arrive in a 2 ms burst.
        spec.arrival = policy == SchedPolicy::FifoExclusive
                           ? TimeNs(i) * 2 * kNsPerSec
                           : TimeNs(i) * 2 * kNsPerMs;
        spec.iterations = i % 3 + 1;
        sched.submit(std::move(spec));
    }
    sched.setDebugForceWakeAll(forceWakeAll);
    return sched.run();
}

/** The preemption workload: a priority-10 urgent arrival preempts
 *  background tenants on one device (runInterleaved shares the
 *  idle-path fast path the satellite fix touched). */
ServeReport
runPreemption()
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::PreemptivePriority;
    Scheduler sched(cfg);
    for (int i = 0; i < 4; ++i) {
        JobSpec spec;
        spec.name = strFormat("bg-%02d", i);
        spec.network = sharedNet(1, 128);
        spec.planner = vdnnAll();
        spec.priority = 0;
        spec.agingRatePerSec = 0.5;
        spec.arrival = TimeNs(i) * kNsPerMs;
        spec.iterations = 3;
        sched.submit(std::move(spec));
    }
    JobSpec urgent;
    urgent.name = "urgent";
    urgent.network = sharedNet(0, 64);
    urgent.planner = std::make_shared<core::BaselinePlanner>(
        core::AlgoPreference::MemoryOptimal);
    urgent.priority = 10;
    urgent.arrival = 50 * kNsPerMs;
    urgent.iterations = 2;
    sched.submit(std::move(urgent));
    return sched.run();
}

} // namespace

// Golden values produced by the polling-loop build at PR 9's base
// commit. The wake-list loop must reproduce every one of them.

TEST(ServeEquivalence, ClusterBurstGolden)
{
    ServeReport r = runClusterBurst();
    EXPECT_EQ(r.finishedCount(), 8);
    EXPECT_EQ(r.makespan, 7799969597);
    EXPECT_EQ(foldJobs(r), 4623866629423474671ULL);
    EXPECT_EQ(foldLifecycle(r), 15514790360774009672ULL);
    EXPECT_EQ(r.lifecycle.size(), 28u);
    expectClean(r);
}

TEST(ServeEquivalence, ClusterSparseGolden)
{
    ServeReport r = runClusterSparse();
    EXPECT_EQ(r.finishedCount(), 6);
    EXPECT_EQ(r.makespan, 15304944816);
    EXPECT_EQ(foldJobs(r), 11180232576600094268ULL);
    EXPECT_EQ(foldLifecycle(r), 12640906346956073136ULL);
    EXPECT_EQ(r.lifecycle.size(), 18u);
    expectClean(r);
}

TEST(ServeEquivalence, ClusterSrptGolden)
{
    ServeReport r = runClusterSrpt();
    EXPECT_EQ(r.finishedCount(), 10);
    EXPECT_EQ(r.makespan, 7909967178);
    EXPECT_EQ(foldJobs(r), 17133718095427305840ULL);
    EXPECT_EQ(foldLifecycle(r), 7414691562356460462ULL);
    EXPECT_EQ(r.lifecycle.size(), 30u);
    expectClean(r);
}

// Golden values produced by the legacy single-device loops
// (`runInterleaved` / `runPacked`) at PR 10's base commit. The
// unified engine must reproduce every one of them.

TEST(ServeEquivalence, SingleFifoGolden)
{
    ServeReport r = runSingleDevice(SchedPolicy::FifoExclusive);
    EXPECT_EQ(r.finishedCount(), 5);
    EXPECT_EQ(r.makespan, 8304944816);
    EXPECT_EQ(foldJobs(r), 7770679107251919159ULL);
    EXPECT_EQ(foldLifecycle(r), 6006062426620275345ULL);
    expectClean(r);
}

TEST(ServeEquivalence, SingleRoundRobinGolden)
{
    ServeReport r = runSingleDevice(SchedPolicy::RoundRobin);
    EXPECT_EQ(r.finishedCount(), 8);
    EXPECT_EQ(r.makespan, 4803144288);
    EXPECT_EQ(foldJobs(r), 17887363300148685550ULL);
    EXPECT_EQ(foldLifecycle(r), 3054758802806694419ULL);
    expectClean(r);
}

TEST(ServeEquivalence, SingleSrptGolden)
{
    ServeReport r = runSingleDevice(SchedPolicy::ShortestRemaining);
    EXPECT_EQ(r.finishedCount(), 8);
    EXPECT_EQ(r.makespan, 4803144288);
    EXPECT_EQ(foldJobs(r), 1464349741132414958ULL);
    EXPECT_EQ(foldLifecycle(r), 18029822621006097403ULL);
    expectClean(r);
}

TEST(ServeEquivalence, SinglePackedGolden)
{
    ServeReport r = runSingleDevice(SchedPolicy::PackedOverlap);
    EXPECT_EQ(r.finishedCount(), 8);
    EXPECT_EQ(r.makespan, 4513138165);
    EXPECT_EQ(foldJobs(r), 12319659211156963112ULL);
    EXPECT_EQ(foldLifecycle(r), 2357761639762418875ULL);
    expectClean(r);
}

TEST(ServeEquivalence, PreemptionGolden)
{
    ServeReport r = runPreemption();
    EXPECT_EQ(r.finishedCount(), 5);
    EXPECT_EQ(r.makespan, 11466176140);
    EXPECT_EQ(foldJobs(r), 13172782408820595359ULL);
    EXPECT_EQ(foldLifecycle(r), 11727778982525866355ULL);
    EXPECT_EQ(r.lifecycle.size(), 15u);
    expectClean(r);
}

// Spurious-wakeup safety: forceWakeAll re-adds every device to the
// wake-set each turn, so the sweep degenerates to the old full
// polling scan — every wake-list skip becomes an explicit (pure) step
// offer. Outputs must not move by a byte, or a skipped offer was not
// actually pure and the wake-list loop is dropping decisions.

TEST(ServeEquivalence, SpuriousWakeupsClusterBurst)
{
    ServeReport r = runClusterBurst(/*forceWakeAll=*/true);
    EXPECT_EQ(r.makespan, 7799969597);
    EXPECT_EQ(foldJobs(r), 4623866629423474671ULL);
    EXPECT_EQ(foldLifecycle(r), 15514790360774009672ULL);
    expectClean(r);
}

TEST(ServeEquivalence, SpuriousWakeupsClusterSrpt)
{
    ServeReport r = runClusterSrpt(/*forceWakeAll=*/true);
    EXPECT_EQ(r.makespan, 7909967178);
    EXPECT_EQ(foldJobs(r), 17133718095427305840ULL);
    EXPECT_EQ(foldLifecycle(r), 7414691562356460462ULL);
    expectClean(r);
}

// Single-device spurious wakeups: forceWakeAll additionally bypasses
// the per-tenant blocked-stepper memo (Job::stepBlocked), so every
// memoized skip becomes an explicit step offer to a blocked stepper.
// Identical outputs prove the skip was pure — re-polling a tenant
// whose streams saw no completion cannot change the trajectory.

TEST(ServeEquivalence, SpuriousWakeupsSingleFifo)
{
    ServeReport r =
        runSingleDevice(SchedPolicy::FifoExclusive, /*forceWakeAll=*/true);
    EXPECT_EQ(r.makespan, 8304944816);
    EXPECT_EQ(foldJobs(r), 7770679107251919159ULL);
    EXPECT_EQ(foldLifecycle(r), 6006062426620275345ULL);
    expectClean(r);
}

TEST(ServeEquivalence, SpuriousWakeupsSingleRoundRobin)
{
    ServeReport r =
        runSingleDevice(SchedPolicy::RoundRobin, /*forceWakeAll=*/true);
    EXPECT_EQ(r.makespan, 4803144288);
    EXPECT_EQ(foldJobs(r), 17887363300148685550ULL);
    EXPECT_EQ(foldLifecycle(r), 3054758802806694419ULL);
    expectClean(r);
}

TEST(ServeEquivalence, SpuriousWakeupsSingleSrpt)
{
    ServeReport r = runSingleDevice(SchedPolicy::ShortestRemaining,
                                    /*forceWakeAll=*/true);
    EXPECT_EQ(r.makespan, 4803144288);
    EXPECT_EQ(foldJobs(r), 1464349741132414958ULL);
    EXPECT_EQ(foldLifecycle(r), 18029822621006097403ULL);
    expectClean(r);
}

TEST(ServeEquivalence, SpuriousWakeupsSinglePacked)
{
    ServeReport r =
        runSingleDevice(SchedPolicy::PackedOverlap, /*forceWakeAll=*/true);
    EXPECT_EQ(r.makespan, 4513138165);
    EXPECT_EQ(foldJobs(r), 12319659211156963112ULL);
    EXPECT_EQ(foldLifecycle(r), 2357761639762418875ULL);
    expectClean(r);
}

// The serve-loop accounting lands both on the report and in the
// MetricsRegistry (and the counters never appear in golden-pinned
// tables, so they are free to exist).

TEST(ServeEquivalence, LoopCountersFlushToMetrics)
{
    obs::MetricsRegistry metrics;
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.devices.assign(2, cfg.gpu);
    cfg.telemetry.metrics = &metrics;
    Scheduler sched(cfg);
    for (int i = 0; i < 4; ++i) {
        JobSpec spec;
        spec.name = strFormat("ctr-%02d", i);
        spec.network = sharedNet(0, 64);
        spec.planner = vdnnAll();
        spec.arrival = TimeNs(i) * 2 * kNsPerSec;
        spec.iterations = 2;
        sched.submit(std::move(spec));
    }
    ServeReport r = sched.run();

    EXPECT_GT(r.loopWakeups, 0u);
    EXPECT_GT(r.loopIdleAdvances, 0u); // 2 s gaps drain the cluster
    EXPECT_EQ(metrics.counter("serve.wakeups").value(),
              double(r.loopWakeups));
    EXPECT_EQ(metrics.counter("serve.fruitless_polls").value(),
              double(r.loopFruitlessPolls));
    EXPECT_EQ(metrics.counter("serve.idle_advances").value(),
              double(r.loopIdleAdvances));
    Scheduler::LoopStats stats = sched.loopStats();
    EXPECT_EQ(stats.wakeups, r.loopWakeups);
    EXPECT_EQ(stats.fruitlessPolls, r.loopFruitlessPolls);
    EXPECT_EQ(stats.idleAdvances, r.loopIdleAdvances);
}

// The legacy single-device loops never swept the wake-set, so the
// loop counters read zero on a single GPU and sloAttainment was only
// exercised through the cluster path. The unified engine serves
// single-device configurations through the same wake-set sweep, so
// the counters and SLO accounting must now report there too.

TEST(ServeEquivalence, SingleDeviceCountersAndSlo)
{
    obs::MetricsRegistry metrics;
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.telemetry.metrics = &metrics;
    Scheduler sched(cfg);
    for (int i = 0; i < 3; ++i) {
        JobSpec spec;
        spec.name = strFormat("slo-%02d", i);
        spec.network = sharedNet(0, 64);
        spec.planner = vdnnAll();
        spec.arrival = TimeNs(i) * 2 * kNsPerSec;
        spec.iterations = 2;
        // Job 0 carries a generous SLO (met), job 1 an impossible
        // one-nanosecond SLO (missed), job 2 none (not eligible).
        spec.sloJct = i == 0 ? 60 * kNsPerSec : i == 1 ? TimeNs(1) : 0;
        sched.submit(std::move(spec));
    }
    ServeReport r = sched.run();

    EXPECT_EQ(r.finishedCount(), 3);
    EXPECT_GT(r.loopWakeups, 0u);
    EXPECT_GT(r.loopFruitlessPolls, 0u); // DMA joins block the stepper
    EXPECT_GT(r.loopIdleAdvances, 0u);   // 2 s gaps drain the device
    EXPECT_EQ(metrics.counter("serve.wakeups").value(),
              double(r.loopWakeups));
    EXPECT_EQ(metrics.counter("serve.fruitless_polls").value(),
              double(r.loopFruitlessPolls));

    EXPECT_EQ(r.sloEligible(), 2);
    EXPECT_EQ(r.sloMet(), 1);
    EXPECT_DOUBLE_EQ(r.sloAttainment(), 0.5);
}
