#include "mem/pinned_host.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>

namespace vdnn::mem
{

PinnedHostAllocator::PinnedHostAllocator(Bytes capacity) : cap(capacity)
{
    VDNN_ASSERT(capacity > 0, "host capacity must be positive");
}

std::optional<HostAllocation>
PinnedHostAllocator::tryAllocate(Bytes size, const std::string &tag)
{
    VDNN_ASSERT(size >= 0, "negative allocation size");
    (void)tag;
    if (used + size > cap)
        return std::nullopt;
    HostAllocation a;
    a.id = nextId++;
    a.size = size;
    live.emplace(a.id, size);
    used += size;
    totalAlloc += size;
    peak = std::max(peak, used);
    return a;
}

HostAllocation
PinnedHostAllocator::allocate(Bytes size, const std::string &tag)
{
    auto a = tryAllocate(size, tag);
    if (!a) {
        fatal("pinned host allocator: out of memory allocating %s for "
              "'%s' (used %s of %s)",
              formatBytes(size).c_str(), tag.c_str(),
              formatBytes(used).c_str(), formatBytes(cap).c_str());
    }
    return *a;
}

void
PinnedHostAllocator::release(const HostAllocation &alloc)
{
    auto it = live.find(alloc.id);
    VDNN_ASSERT(it != live.end(),
                "releasing unknown host allocation id %lld",
                (long long)alloc.id);
    used -= it->second;
    live.erase(it);
}

void
PinnedHostAllocator::releaseAll()
{
    live.clear();
    used = 0;
}

} // namespace vdnn::mem
