/**
 * @file
 * The vDNN prefetch layer-selection algorithm (Figure 10).
 *
 * Before a layer's backward computation starts, vDNN searches the
 * preceding layers (lower topological index) for the *closest* layer
 * whose input feature maps were offloaded and are not yet prefetched.
 * The search window is bounded by the next CONV layer: if a CONV layer
 * is reached without finding a candidate, the search fails (-1). This
 * bounding keeps prefetched data from arriving too far ahead of its
 * reuse, which would re-inflate GPU memory usage (Section III-B).
 *
 * This generalizes the paper's pseudo code to non-linear graphs: a
 * layer may own several input buffers (CONCAT), so offloaded/prefetched
 * state is tracked per buffer and a hit prefetches all of that layer's
 * offloaded-but-not-prefetched buffers.
 */

#ifndef VDNN_CORE_PREFETCH_HH
#define VDNN_CORE_PREFETCH_HH

#include "core/planner.hh"
#include "net/network.hh"

#include <vector>

namespace vdnn::core
{

/** Per-buffer transfer state consulted by the search. */
struct PrefetchState
{
    /** Buffer was offloaded to host during forward propagation. */
    std::vector<bool> offloaded;
    /** Buffer has been prefetched (or fetched on demand) already. */
    std::vector<bool> prefetched;

    explicit PrefetchState(std::size_t num_buffers)
        : offloaded(num_buffers, false), prefetched(num_buffers, false)
    {}
};

/** Result of one search. */
struct PrefetchCandidate
{
    net::LayerId layer = net::kInputLayer; ///< -1: nothing to prefetch
    /** The layer's input buffers that need prefetching. */
    std::vector<net::BufferId> buffers;

    bool found() const { return layer != net::kInputLayer; }
};

/**
 * Figure 10's findPrefetchLayer.
 *
 * @param net        the network
 * @param curr_layer the layer whose backward pass is about to start
 * @param state      per-buffer offload/prefetch flags; hit buffers are
 *                   marked prefetched
 * @param bounded    search window bounded by the next CONV layer
 *                   (false = unbounded search, for the ablation study)
 * @param plan       optional plan whose per-buffer prefetch-priority
 *                   hints are honoured: a hit layer's buffers are
 *                   issued in descending priority, and buffers with a
 *                   negative priority are never prefetched (they fall
 *                   back to an on-demand fetch)
 */
PrefetchCandidate findPrefetchLayer(const net::Network &net,
                                    net::LayerId curr_layer,
                                    PrefetchState &state,
                                    bool bounded = true,
                                    const MemoryPlan *plan = nullptr);

} // namespace vdnn::core

#endif // VDNN_CORE_PREFETCH_HH
