/**
 * @file
 * Raw simulator speed: wall-clock seconds per million simulated
 * events, with telemetry off and on.
 *
 * Every figure bench measures the *simulated* machine; this one
 * measures the simulator. Two scenarios:
 *
 *  - "burst": a fixed 8-tenant AlexNet / OverFeat burst on 2 devices
 *    (round-robin packing, rebalance migration), so the event mix
 *    covers kernels, DMAs, arbiter grants and scheduler decisions.
 *    This is the original trajectory metric and its config must not
 *    change (simspeed.sec_per_mevent is compared across PRs).
 *
 *  - "hightenant": 64 tenants on 8 devices with 1 ms arrival spacing
 *    and 12 iterations each. An order of magnitude more events, with
 *    constant admission-queue pressure, cross-device rebalance
 *    migration and heavy event-queue churn (every DMA start/finish
 *    reschedules the in-flight kernel's completion through a
 *    deschedule + reschedule pair), so this scenario stresses the
 *    event queue itself, not just the op bodies between events.
 *
 * The denominator is the event queue's executed-event counter, so the
 * metric is insensitive to workload rescaling only insofar as the
 * event mix stays put — treat it as a trajectory, not an absolute.
 *
 * The telemetry-on column re-runs the burst scenario with a
 * TraceRecorder and MetricsRegistry attached; the overhead column is
 * what the always-compiled hooks cost when somebody actually looks.
 * With telemetry detached the hooks are null-pointer checks and the
 * overhead must stay in the noise.
 */

#include "bench_common.hh"

#include "check/ledger_auditor.hh"
#include "common/units.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/placement.hh"
#include "serve/scheduler.hh"

#include <chrono>
#include <cstdio>
#include <cstring>

using namespace vdnn;
using namespace vdnn::bench;
using namespace vdnn::serve;

namespace
{

struct Scenario
{
    const char *name;
    int tenants = 8;
    int devices = 2;
    int iterations = 3;
    TimeNs arrivalSpacing = 5 * kNsPerMs;
    SchedPolicy policy = SchedPolicy::RoundRobin;
};

constexpr Scenario kBurst{"burst", 8, 2, 3, 5 * kNsPerMs};
constexpr Scenario kHighTenant{"hightenant", 64, 8, 12, kNsPerMs};
/**
 * The op-granularity density stressor: 256 tenants pour onto ONE
 * device under PackedOverlap, so nearly the whole tenant population
 * sits either in the admission queue or blocked on a DMA join at any
 * instant. The legacy `runPacked` loop re-offered every resident
 * tenant a step and rescanned the whole admission queue on every
 * round; the unified engine sweeps only woken tenants and gates the
 * rescan on the admission dirty flag. This is the scenario the PR 10
 * before/after numbers pin.
 */
constexpr Scenario kDense256x1{"dense256x1", 256, 1, 2, kNsPerMs / 4,
                               SchedPolicy::PackedOverlap};
/**
 * The wake-list stressor: 256 tenants pour onto 16 devices four times
 * faster than hightenant, so for most of the run every device has an
 * iteration in flight and a deep admission queue sits behind them. A
 * serve loop that polls every device (and rescans the queue) per
 * event pays O(devices + queued) per executed event here; the
 * event-driven loop pays only for the devices an event actually
 * woke. This is the scenario the PR 9 before/after numbers pin.
 */
constexpr Scenario kCluster16{"cluster16", 256, 16, 4, kNsPerMs / 4};

std::vector<JobSpec>
speedMix(const Scenario &sc)
{
    std::vector<JobSpec> specs;
    for (int i = 0; i < sc.tenants; ++i) {
        JobSpec spec;
        spec.name = strFormat("speed-%02d", i);
        spec.network = i % 2 == 0 ? net::buildAlexNet(128)
                                  : net::buildOverFeat(128);
        spec.planner = offloadAllPlanner();
        spec.arrival = TimeNs(i) * sc.arrivalSpacing;
        spec.iterations = sc.iterations;
        specs.push_back(std::move(spec));
    }
    return specs;
}

struct SpeedPoint
{
    double wallSeconds = 0.0;
    std::int64_t events = 0;
    double secondsPerMillionEvents() const
    {
        return events > 0 ? wallSeconds * 1e6 / double(events) : 0.0;
    }
};

SpeedPoint
runWorkload(const Scenario &sc, bool telemetry)
{
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    SchedulerConfig cfg;
    cfg.policy = sc.policy;
    if (sc.devices > 1) {
        cfg.devices.assign(std::size_t(sc.devices), cfg.gpu);
        cfg.placement = std::make_shared<LoadBalancePlacement>();
        cfg.rebalancePeriod = 100 * kNsPerMs;
        cfg.rebalanceThreshold = 2;
    }
    if (telemetry) {
        cfg.telemetry.trace = &trace;
        cfg.telemetry.metrics = &metrics;
    }
    Scheduler sched(cfg);
    for (JobSpec &spec : speedMix(sc))
        sched.submit(std::move(spec));

    auto t0 = std::chrono::steady_clock::now();
    ServeReport rep = sched.run();
    auto t1 = std::chrono::steady_clock::now();
    VDNN_ASSERT(rep.finishedCount() == int(rep.jobs.size()),
                "simspeed workload must finish (%d/%zu)",
                rep.finishedCount(), rep.jobs.size());

    SpeedPoint p;
    p.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    p.events = std::int64_t(sched.runtime().clock().executed());
    return p;
}

/** Best-of-N to shave scheduler-noise off the wall clock. */
SpeedPoint
bestOf(int n, const Scenario &sc, bool telemetry)
{
    SpeedPoint best = runWorkload(sc, telemetry);
    for (int i = 1; i < n; ++i) {
        SpeedPoint p = runWorkload(sc, telemetry);
        if (p.wallSeconds < best.wallSeconds)
            best = p;
    }
    return best;
}

void
report()
{
    SpeedPoint off = bestOf(3, kBurst, /*telemetry=*/false);
    SpeedPoint on = bestOf(3, kBurst, /*telemetry=*/true);
    SpeedPoint high = bestOf(3, kHighTenant, /*telemetry=*/false);
    SpeedPoint c16 = bestOf(3, kCluster16, /*telemetry=*/false);
    SpeedPoint dense = bestOf(3, kDense256x1, /*telemetry=*/false);
    double overhead_pct =
        off.wallSeconds > 0.0
            ? (on.wallSeconds / off.wallSeconds - 1.0) * 100.0
            : 0.0;

    stats::Table table("Simulator speed (best of 3)");
    table.setColumns({"scenario", "telemetry", "events", "wall (ms)",
                      "s / M events", "M events / s"});
    struct Row
    {
        const char *scenario;
        const char *label;
        const SpeedPoint *p;
    };
    const Row rows[] = {{"8t x 2dev burst", "off", &off},
                        {"8t x 2dev burst", "on", &on},
                        {"64t x 8dev hightenant", "off", &high},
                        {"256t x 16dev cluster16", "off", &c16},
                        {"256t x 1dev dense256x1", "off", &dense}};
    for (const Row &r : rows) {
        double mevs = r.p->secondsPerMillionEvents();
        table.addRow({r.scenario, r.label,
                      stats::Table::cellInt((long long)r.p->events),
                      stats::Table::cell(r.p->wallSeconds * 1e3, 1),
                      stats::Table::cell(mevs, 3),
                      stats::Table::cell(mevs > 0 ? 1.0 / mevs : 0.0,
                                         2)});
    }
    table.print();
    std::printf("telemetry overhead: %+.1f%%\n", overhead_pct);

    recordBenchMetric("simspeed.events", double(off.events));
    recordBenchMetric("simspeed.sec_per_mevent",
                      off.secondsPerMillionEvents());
    recordBenchMetric("simspeed.sec_per_mevent_telemetry",
                      on.secondsPerMillionEvents());
    recordBenchMetric("simspeed.telemetry_overhead_pct", overhead_pct);
    recordBenchMetric("simspeed.hightenant.events", double(high.events));
    recordBenchMetric("simspeed.hightenant.sec_per_mevent",
                      high.secondsPerMillionEvents());
    recordBenchMetric("simspeed.cluster16.events", double(c16.events));
    recordBenchMetric("simspeed.cluster16.sec_per_mevent",
                      c16.secondsPerMillionEvents());
    recordBenchMetric("simspeed.dense256x1.events", double(dense.events));
    recordBenchMetric("simspeed.dense256x1.sec_per_mevent",
                      dense.secondsPerMillionEvents());
}

/**
 * `bench_simspeed dense-smoke`: the dense256x1 scenario run once to
 * completion with the lifecycle audit replayed — the CI ASan/UBSan
 * smoke for the unified engine at thousand-tenant density (no timing
 * claims; sanitizers make the wall clock meaningless).
 */
int
denseSmoke()
{
    SchedulerConfig cfg;
    cfg.policy = kDense256x1.policy;
    Scheduler sched(cfg);
    for (JobSpec &spec : speedMix(kDense256x1))
        sched.submit(std::move(spec));
    ServeReport rep = sched.run();
    check::CheckResult audit = check::auditLedger(rep);
    if (!audit.ok())
        std::printf("ledger audit:\n%s", audit.report().c_str());
    bool ok = rep.finishedCount() == int(rep.jobs.size()) &&
              rep.reservedBytesAtEnd == 0 &&
              rep.evictedLedgerAtEnd == 0 && audit.ok();
    std::printf("dense-smoke: %s (%d/%zu tenants finished)\n",
                ok ? "PASS" : "FAIL", rep.finishedCount(),
                rep.jobs.size());
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "dense-smoke") == 0) {
        setQuiet(true);
        return denseSmoke();
    }
    registerSim("simspeed/8_tenants_2dev", [] {
        runWorkload(kBurst, /*telemetry=*/false);
    });
    registerSim("simspeed/64_tenants_8dev", [] {
        runWorkload(kHighTenant, /*telemetry=*/false);
    });
    registerSim("simspeed/256_tenants_16dev", [] {
        runWorkload(kCluster16, /*telemetry=*/false);
    });
    registerSim("simspeed/256_tenants_1dev_packed", [] {
        runWorkload(kDense256x1, /*telemetry=*/false);
    });
    return benchMain(argc, argv, report);
}
