/**
 * @file
 * Time-aware memory usage tracker.
 *
 * Binds a memory pool's usage counter to the simulated clock so that
 * peak and *time-weighted average* usage (the metrics of Figs. 11/15)
 * can be computed. The clock is injected as a callback so the mem
 * library does not depend on the GPU runtime.
 */

#ifndef VDNN_MEM_USAGE_TRACKER_HH
#define VDNN_MEM_USAGE_TRACKER_HH

#include "common/types.hh"
#include "stats/time_weighted.hh"

#include <functional>

namespace vdnn::mem
{

class UsageTracker
{
  public:
    /**
     * @param clock        returns the current simulated time
     * @param keep_timeline keep all change points (for timeline dumps)
     */
    explicit UsageTracker(std::function<TimeNs()> clock,
                          bool keep_timeline = false);

    /** Record that usage is now @p current bytes. */
    void onUsage(Bytes current);

    /** Close the observation window at the current clock value. */
    void finish();

    /** Peak usage in bytes. */
    Bytes peakBytes() const;

    /** Time-weighted average usage in bytes (valid after finish()). */
    Bytes averageBytes() const;

    const stats::TimeWeighted &signal() const { return tw; }

  private:
    std::function<TimeNs()> clock;
    stats::TimeWeighted tw;
};

} // namespace vdnn::mem

#endif // VDNN_MEM_USAGE_TRACKER_HH
