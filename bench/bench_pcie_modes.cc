/**
 * @file
 * Section II-C: why vDNN uses DMA transfers instead of page-migration
 * based virtualization.
 *
 * Paper anchors: paging a 4 KB page to the GPU costs 20-50 us, so
 * page-migration utilizes only 80-200 MB/s of PCIe bandwidth, versus
 * 12.8 GB/s for DMA-initiated cudaMemcpy (of a 16 GB/s link). Training
 * that moves tens of GB per iteration over the interconnect is
 * unusable at paging rates.
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "gpu/gpu_spec.hh"
#include "interconnect/page_migration.hh"
#include "interconnect/pcie_link.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

/** vDNN_all run with the interconnect replaced by a degraded link. */
core::SessionResult
runWithLinkBandwidth(const net::Network &network, double bytes_per_sec)
{
    core::SessionConfig cfg;
    cfg.planner =
        offloadAllPlanner(core::AlgoPreference::MemoryOptimal);
    cfg.gpu = gpu::titanXMaxwell();
    cfg.gpu.pcie.dmaBandwidth = bytes_per_sec;
    cfg.gpu.pcie.rawBandwidth =
        std::max(cfg.gpu.pcie.rawBandwidth, bytes_per_sec);
    return core::runSession(network, cfg);
}

void
report()
{
    ic::PcieLink dma(ic::pcieGen3x16());
    ic::PageMigrationModel paging;

    using namespace vdnn::literals;
    stats::Table modes("Section II-C: transfer mode comparison");
    modes.setColumns({"mode", "effective bandwidth (GB/s)",
                      "256 MiB transfer (ms)"});
    modes.addRow({"DMA cudaMemcpy (measured 12.8 GB/s)",
                  stats::Table::cell(
                      dma.achievedBandwidth(256_MiB) / 1e9, 2),
                  stats::Table::cell(toMs(dma.transferTime(256_MiB)), 1)});
    modes.addRow({"page migration (20 us/page)",
                  stats::Table::cell(
                      paging.effectiveBandwidth(false) / 1e9, 3),
                  stats::Table::cell(
                      toMs(paging.transferTime(256_MiB, false)), 1)});
    modes.addRow({"page migration (50 us/page)",
                  stats::Table::cell(
                      paging.effectiveBandwidth(true) / 1e9, 3),
                  stats::Table::cell(
                      toMs(paging.transferTime(256_MiB, true)), 1)});
    modes.print();

    // End-to-end effect: vDNN_all on VGG-16 (64) with the interconnect
    // running at DMA vs paging rates.
    auto network = net::buildVgg16(64);
    auto with_dma = runWithLinkBandwidth(*network, 12.8e9);
    auto with_paging_fast =
        runWithLinkBandwidth(*network, paging.effectiveBandwidth(false));

    stats::Table e2e("vDNN_all (m) on VGG-16 (64): iteration latency by "
                     "interconnect");
    e2e.setColumns({"interconnect", "iteration (ms)", "slowdown"});
    e2e.addRow({"DMA 12.8 GB/s",
                stats::Table::cell(toMs(with_dma.iterationTime), 0),
                "1.00x"});
    e2e.addRow({"paging 200 MB/s",
                stats::Table::cell(
                    toMs(with_paging_fast.iterationTime), 0),
                strFormat("%.1fx", double(with_paging_fast.iterationTime) /
                                       double(with_dma.iterationTime))});
    e2e.print();

    stats::Comparison cmp("Section II-C (transfer modes)");
    cmp.addNumeric("page-migration effective bandwidth, best (MB/s)",
                   200.0, paging.effectiveBandwidth(false) / 1e6, 0.05);
    cmp.addNumeric("page-migration effective bandwidth, worst (MB/s)",
                   80.0, paging.effectiveBandwidth(true) / 1e6, 0.05);
    cmp.addNumeric("DMA effective bandwidth (GB/s)", 12.8,
                   dma.achievedBandwidth(1_GiB) / 1e9, 0.05);
    cmp.addBool("paging-rate interconnect cripples training (>5x)", true,
                with_paging_fast.iterationTime >
                    5 * with_dma.iterationTime);
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("pcie/vdnn_all_visa_degraded_link", [] {
        auto network = net::buildVgg16(64);
        benchmark::DoNotOptimize(
            runWithLinkBandwidth(*network, 0.2e9).iterationTime);
    });
    return benchMain(argc, argv, report);
}
