#include "interconnect/page_migration.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace vdnn::ic
{

PageMigrationModel::PageMigrationModel(PageMigrationSpec spec)
    : pmSpec(spec)
{
    VDNN_ASSERT(pmSpec.pageSize > 0, "page size must be positive");
    VDNN_ASSERT(pmSpec.perPageCostMin > 0 &&
                    pmSpec.perPageCostMax >= pmSpec.perPageCostMin,
                "inconsistent per-page costs");
}

std::int64_t
PageMigrationModel::pagesFor(Bytes bytes) const
{
    VDNN_ASSERT(bytes >= 0, "negative size");
    return (bytes + pmSpec.pageSize - 1) / pmSpec.pageSize;
}

TimeNs
PageMigrationModel::transferTime(Bytes bytes, bool pessimistic) const
{
    TimeNs per = pessimistic ? pmSpec.perPageCostMax : pmSpec.perPageCostMin;
    return pagesFor(bytes) * per;
}

double
PageMigrationModel::effectiveBandwidth(bool pessimistic) const
{
    TimeNs per = pessimistic ? pmSpec.perPageCostMax : pmSpec.perPageCostMin;
    return double(pmSpec.pageSize) / toSeconds(per);
}

} // namespace vdnn::ic
