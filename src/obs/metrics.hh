/**
 * @file
 * Named metrics registry: counters, gauges, and histograms.
 *
 * Producers register a metric once (find-or-create by name) and keep
 * the returned reference; the hot path is then a plain member update
 * with no lookup. The registry can snapshot every metric to JSON at
 * any simulated time, and the snapshot is deterministic (metrics are
 * kept name-sorted).
 */

#ifndef VDNN_OBS_METRICS_HH
#define VDNN_OBS_METRICS_HH

#include "common/types.hh"
#include "stats/accumulator.hh"
#include "stats/histogram.hh"

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

namespace vdnn::obs
{

/** Monotonic counter. */
class Counter
{
  public:
    void add(double d = 1.0) { v += d; }
    double value() const { return v; }

  private:
    double v = 0.0;
};

class MetricsRegistry
{
  public:
    /** Find-or-create; the reference is stable for the registry's life. */
    Counter &counter(const std::string &name);

    /** Register a gauge sampled lazily at snapshot time. */
    void gauge(const std::string &name, std::function<double()> sample);

    /** Find-or-create; bounds are fixed by the first registration. */
    stats::Histogram &histogram(const std::string &name, double lo,
                                double hi, std::size_t buckets);

    /** Find-or-create a Welford accumulator (mean/min/max/stddev). */
    stats::Accumulator &accumulator(const std::string &name);

    std::size_t size() const;

    /** Serialise every metric as one JSON object, stamped with @p now. */
    void writeSnapshot(std::ostream &os, TimeNs now) const;
    std::string snapshotJson(TimeNs now) const;
    bool writeJsonFile(const std::string &path, TimeNs now) const;

  private:
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::function<double()>> gauges;
    std::map<std::string, std::unique_ptr<stats::Histogram>> histograms;
    std::map<std::string, std::unique_ptr<stats::Accumulator>> accums;
};

} // namespace vdnn::obs

#endif // VDNN_OBS_METRICS_HH
