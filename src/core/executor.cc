#include "core/executor.hh"

#include "check/program_verifier.hh"
#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>

namespace vdnn::core
{

using dnn::LayerKind;
using gpu::CopyDir;

Executor::Executor(const net::Network &net_, const dnn::CudnnSim &cudnn_,
                   gpu::Runtime &runtime, MemoryManager &mm_,
                   const MemoryPlan &plan, ExecutorConfig config)
    : net(net_), cudnn(cudnn_), rt(runtime), mm(mm_), execPlan(plan),
      cfg(config), stats(net_, cudnn_),
      prog(IterationProgram::compile(net_, plan, config))
{
    VDNN_ASSERT(net.finalized(), "network must be finalized");
    VDNN_ASSERT(execPlan.feasible, "cannot execute an infeasible plan");
    VDNN_ASSERT(execPlan.algos.size() == net.numLayers(),
                "plan algo assignment size mismatch");
    VDNN_ASSERT(execPlan.buffers.size() == net.numBuffers(),
                "plan directive vector size mismatch");
    streamCompute = rt.createStream("stream_compute");
    streamMemory = rt.createStream("stream_memory");
    rt.setStreamClient(streamCompute, mm.clientId(), cfg.pcieWeight);
    rt.setStreamClient(streamMemory, mm.clientId(), cfg.pcieWeight);

    // Map each layer to the buffers it is the last backward user of.
    bwdReleaseAt.assign(net.numLayers(), {});
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        net::LayerId last = net.lastBwdUser(b);
        if (last != net::kInputLayer)
            bwdReleaseAt[std::size_t(last)].push_back(b);
    }
    staticBuffers.assign(net.numBuffers(), false);

    if (obs::MetricsRegistry *m = rt.telemetry().metrics) {
        ctrIters = &m->counter("exec.iterations");
        ctrOffloads = &m->counter("exec.offloads");
        ctrPrefetches = &m->counter("exec.prefetches");
        ctrOnDemand = &m->counter("exec.on_demand_fetches");
    }

    rebuildDispatchPlan();
    gradients.assign(net.numBuffers(), std::nullopt);

    if (cfg.check.verifyPrograms)
        verifyCompiledProgram("compile");
}

void
Executor::rebuildDispatchPlan()
{
    const std::size_t n_layers = net.numLayers();
    const std::size_t n_bufs = net.numBuffers();

    // Per layer: kernel descriptors with their cost-model results and
    // names resolved once, instead of per launch.
    launchPlan.assign(n_layers, {});
    for (net::LayerId id = 0; id < net::LayerId(n_layers); ++id) {
        const net::LayerNode &n = net.node(id);
        const auto &spec = n.spec;
        ExecLaunchPlan &lp = launchPlan[std::size_t(id)];
        lp.classifier = n.classifier;
        auto fill = [](gpu::KernelDesc &k, std::string name,
                       const dnn::OpCost &cost) {
            k.name = std::move(name);
            k.duration = cost.time;
            k.flops = cost.flops;
            k.dramBytes = cost.dramBytes;
        };
        if (spec.kind == LayerKind::Conv) {
            dnn::ConvAlgo algo = execPlan.algos[std::size_t(id)];
            fill(lp.fwd, "fwd:" + spec.name,
                 cudnn.perf().convForward(spec, algo));
            fill(lp.bwdFilter, "bwdF:" + spec.name,
                 cudnn.perf().convBackwardFilter(spec, algo));
            // Data gradients are skipped for layers fed by the network
            // input: nobody consumes the input image gradient.
            lp.hasBwdData = n.xBuffer != net.inputBuffer();
            if (lp.hasBwdData) {
                fill(lp.bwdData, "bwdD:" + spec.name,
                     cudnn.perf().convBackwardData(spec, algo));
            }
            lp.wsBytes = dnn::convWorkspaceBytes(algo, spec);
        } else {
            fill(lp.fwd, "fwd:" + spec.name, cudnn.perf().forward(spec));
            fill(lp.bwdFilter, "bwd:" + spec.name,
                 cudnn.perf().backward(spec));
        }
        lp.wsTag = "ws:" + spec.name;
        lp.wsManaged = !n.classifier;
    }

    // Per buffer: sizes, compressed DMA byte counts and tag strings.
    bufferPlan.assign(n_bufs, {});
    initialReaders.assign(n_bufs, 0);
    for (net::BufferId b = 0; b < net::BufferId(n_bufs); ++b) {
        const net::Buffer &buf = net.buffer(b);
        ExecBufferPlan &bp = bufferPlan[std::size_t(b)];
        bp.bytes = buf.bytes();
        bp.dmaBytes = execPlan.dmaBytes(b, bp.bytes);
        bp.fwdReleasable = buf.bwdUsers.empty() && !buf.classifier;
        bp.classifier = buf.classifier;
        bp.offloadTag = strFormat("offload:%d", b);
        bp.prefetchTag = strFormat("prefetch:%d", b);
        bp.fetchTag = strFormat("fetch:%d", b);
        bp.gradTag = strFormat("grad:%d", b);
        initialReaders[std::size_t(b)] = buf.refCount;
    }

    // Per op: the exact operand buffers, resolved from the graph once.
    auto input_buffer = [this](net::LayerId in_id) {
        return in_id == net::kInputLayer ? net.inputBuffer()
                                         : net.node(in_id).yBuffer;
    };
    opPlan.assign(prog.ops.size(), {});
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
        const IterOp &op = prog.ops[i];
        if (op.layer == net::kInputLayer)
            continue; // structural ops carry no operands
        ExecOpPlan &p = opPlan[i];
        const net::LayerNode &n = net.node(op.layer);
        const auto &spec = n.spec;
        switch (op.kind) {
          case OpKind::Alloc:
            if (!op.backward) {
                for (net::LayerId in_id : n.inputs)
                    p.buffers.push_back(input_buffer(in_id));
                p.yBuffer = n.yBuffer;
                p.allocY = !spec.inPlace();
            } else {
                // dY first (p.yBuffer), then the dX buffers; the
                // network input receives no gradient.
                p.yBuffer = n.yBuffer;
                for (net::LayerId in_id : n.inputs) {
                    if (in_id != net::kInputLayer)
                        p.buffers.push_back(net.node(in_id).yBuffer);
                }
            }
            break;
          case OpKind::Offload:
            // The refcount rule of Fig. 3, resolved statically: the
            // plan offloads b and this layer is its last forward
            // reader (so each buffer lands in exactly one Offload op).
            for (net::LayerId in_id : n.inputs) {
                net::BufferId b = input_buffer(in_id);
                if (!execPlan.offloads(b))
                    continue;
                if (net.buffer(b).lastFwdReader != op.layer)
                    continue;
                if (std::find(p.buffers.begin(), p.buffers.end(), b) !=
                    p.buffers.end()) {
                    continue;
                }
                p.buffers.push_back(b);
            }
            break;
          case OpKind::OnDemandFetch:
            if (spec.backwardNeedsX()) {
                for (net::LayerId in_id : n.inputs)
                    p.buffers.push_back(input_buffer(in_id));
            }
            if (spec.backwardNeedsY())
                p.buffers.push_back(n.yBuffer);
            break;
          case OpKind::Release:
            if (!op.backward) {
                for (net::LayerId in_id : n.inputs)
                    p.buffers.push_back(input_buffer(in_id));
            } else {
                p.buffers = bwdReleaseAt[std::size_t(op.layer)];
                p.yBuffer = n.yBuffer;
                p.releaseDY = net.buffer(n.yBuffer).producer == op.layer;
            }
            break;
          default:
            break;
        }
    }
}

void
Executor::verifyCompiledProgram(const char *when)
{
    check::CheckResult r = check::verifyProgram(net, execPlan, cfg, prog);
    if (obs::MetricsRegistry *m = rt.telemetry().metrics) {
        m->counter("check.programs_verified").add();
        if (!r.diags.empty())
            m->counter("check.findings").add(double(r.diags.size()));
    }
    if (!r.diags.empty() && rt.telemetry().tracing()) {
        rt.telemetry().trace->instant(
            rt.deviceId(), mm.clientId(), "check",
            strFormat("check-findings:%s", when), rt.now());
    }
    if (r.ok())
        return;
    if (cfg.check.failFast) {
        panic("program verification failed at %s:\n%s", when,
              r.report().c_str());
    }
    warn("program verification found %d errors at %s:\n%s",
         r.errorCount(), when, r.report().c_str());
}

// --- setup -------------------------------------------------------------------

bool
Executor::allocPersistent(Bytes bytes, const std::string &tag,
                          bool managed)
{
    if (bytes <= 0)
        return true;
    auto a = mm.allocDevice(bytes, tag, managed);
    if (!a)
        return false;
    persistent.push_back(TaggedAlloc{*a, managed});
    return true;
}

bool
Executor::setup()
{
    VDNN_ASSERT(!setupDone, "setup() called twice");

    // Weights: W per layer, resident for the whole run. Weight
    // gradients use a single shared max-size buffer per region, with
    // updates applied in place during backward (Section IV-A).
    Bytes max_dw_managed = 0;
    Bytes max_dw_classifier = 0;
    bool ok = true;
    for (net::LayerId id : net.topoOrder()) {
        const net::LayerNode &n = net.node(id);
        Bytes w = n.spec.weightBytes();
        if (w <= 0)
            continue;
        ok = ok && allocPersistent(w, "W:" + n.spec.name, !n.classifier);
        (n.classifier ? max_dw_classifier : max_dw_managed) =
            std::max(n.classifier ? max_dw_classifier : max_dw_managed, w);
    }
    ok = ok && allocPersistent(max_dw_managed, "dW:shared", true);
    ok = ok && allocPersistent(max_dw_classifier, "dW:classifier", false);

    staticBuffers.assign(net.numBuffers(), false);
    if (staticAlloc()) {
        ok = ok && setupBaseline();
    } else {
        // The classifier tail is executed by unmodified cuBLAS code
        // (Section IV-A): its activations and gradient maps live in a
        // static region untouched by vDNN.
        for (net::BufferId b = 0; ok && b < net::BufferId(net.numBuffers());
             ++b) {
            if (!net.buffer(b).classifier)
                continue;
            ok = ok && mm.allocBuffer(net, b);
            staticBuffers[std::size_t(b)] = ok;
        }
        ok = ok &&
             allocPersistent(stats.peakGradientBytesScoped(
                                 net::NetworkStats::GradScope::Classifier),
                             "grad:classifier", false);
    }

    if (!ok) {
        teardownPartial();
        return false;
    }
    persistentTotal = mm.deviceUsage();
    setupDone = true;
    return true;
}

bool
Executor::setupBaseline()
{
    // Network-wide allocation (Section II-C): every feature-map buffer,
    // the minimal reused gradient buffers, and one workspace buffer
    // sized to the network maximum.
    bool ok = true;
    for (net::BufferId b = 0; ok && b < net::BufferId(net.numBuffers());
         ++b) {
        ok = ok && mm.allocBuffer(net, b);
        staticBuffers[std::size_t(b)] = ok;
    }
    ok = ok && allocPersistent(stats.peakGradientBytesScoped(
                                   net::NetworkStats::GradScope::Managed),
                               "grad:shared", true);
    ok = ok && allocPersistent(stats.peakGradientBytesScoped(
                                   net::NetworkStats::GradScope::Classifier),
                               "grad:classifier", false);
    ok = ok && allocPersistent(
                   stats.maxWorkspaceBytes(execPlan.algos, false),
                   "ws:shared", true);
    buffersStatic = ok;
    return ok;
}

void
Executor::teardownPartial()
{
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (std::size_t(b) < staticBuffers.size() &&
            staticBuffers[std::size_t(b)]) {
            mm.releaseBuffer(net, b);
            staticBuffers[std::size_t(b)] = false;
        }
    }
    for (const TaggedAlloc &a : persistent)
        mm.releaseDevice(a.alloc, a.managed);
    persistent.clear();
    buffersStatic = false;
}

void
Executor::teardown()
{
    VDNN_ASSERT(setupDone, "teardown() without setup()");
    VDNN_ASSERT(!stepper || stepper->finished(),
                "teardown() with an iteration in flight");
    stepper.reset();
    teardownPartial();
    setupDone = false;
    persistentTotal = 0;
}

void
Executor::cancelIteration()
{
    if (!stepper)
        return;
    if (!stepper->finished()) {
        stepper->cancel();
        if (rt.telemetry().tracing()) {
            rt.telemetry().trace->instant(rt.deviceId(), mm.clientId(),
                                          "iteration", "iteration-cancel",
                                          rt.now());
        }
    }
    stepper.reset();
}

void
Executor::dmaState(Bytes bytes, CopyDir dir, const std::string &tag)
{
    VDNN_ASSERT(bytes > 0, "state DMA of zero bytes");
    rt.memcpyAsync(streamMemory, bytes, dir, tag);
    rt.synchronize(streamMemory);
}

void
Executor::adoptPlan(const MemoryPlan &plan)
{
    VDNN_ASSERT(setupDone, "adoptPlan() before setup()");
    VDNN_ASSERT(!stepper, "adoptPlan() with an iteration in flight");
    VDNN_ASSERT(plan.feasible, "cannot adopt an infeasible plan");
    VDNN_ASSERT(plan.staticAllocation == execPlan.staticAllocation,
                "adoptPlan() cannot change the allocation style");
    VDNN_ASSERT(plan.algos.size() == net.numLayers() &&
                    plan.buffers.size() == net.numBuffers(),
                "adopted plan does not match the network");
    execPlan = plan;
    prog = IterationProgram::compile(net, execPlan, cfg);
    rebuildDispatchPlan();
    if (cfg.check.verifyPrograms)
        verifyCompiledProgram("adopt-plan");
}

// --- kernel launches -----------------------------------------------------------

void
Executor::launchForwardKernels(net::LayerId id)
{
    rt.launchKernel(streamCompute, launchPlan[std::size_t(id)].fwd);
}

void
Executor::launchBackwardKernels(net::LayerId id)
{
    const ExecLaunchPlan &lp = launchPlan[std::size_t(id)];
    rt.launchKernel(streamCompute, lp.bwdFilter);
    if (lp.hasBwdData)
        rt.launchKernel(streamCompute, lp.bwdData);
}

// --- gradient buffers -------------------------------------------------------------

bool
Executor::gradientLive(net::BufferId b) const
{
    return gradients[std::size_t(b)].has_value();
}

bool
Executor::allocGradient(net::BufferId b)
{
    const ExecBufferPlan &bp = bufferPlan[std::size_t(b)];
    if (buffersStatic || bp.classifier)
        return true; // served by the static gradient region
    std::optional<TaggedAlloc> &g = gradients[std::size_t(b)];
    if (g)
        return true;
    auto a = mm.allocDevice(bp.bytes, bp.gradTag, true);
    if (!a)
        return false;
    g = TaggedAlloc{*a, true};
    ++liveGradients;
    return true;
}

void
Executor::releaseGradient(net::BufferId b)
{
    std::optional<TaggedAlloc> &g = gradients[std::size_t(b)];
    if (!g)
        return;
    mm.releaseDevice(g->alloc, g->managed);
    g.reset();
    --liveGradients;
}

// --- transfers ----------------------------------------------------------------------

bool
Executor::evictUnconsumedPrefetches(Bytes need, net::LayerId curr)
{
    // Candidates: buffers brought back by an (opportunistic) prefetch
    // whose first backward use is still ahead of the current layer.
    // Dropping their device copy is free because the pinned host copy
    // is still valid; they will be re-fetched later.
    int curr_topo = net.node(curr).topoIndex;
    bool evicted_any = false;
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (mm.pool().largestFreeBlock() >= need)
            break;
        if (!prefetchState || !prefetchState->prefetched[std::size_t(b)])
            continue;
        if (mm.residence(b) != Residence::Device || !mm.hostCopyValid(b))
            continue;
        const net::Buffer &buf = net.buffer(b);
        if (buf.bwdUsers.empty())
            continue;
        int first_use_topo = net.node(buf.bwdUsers.back()).topoIndex;
        if (first_use_topo >= curr_topo)
            continue; // in use by this or an already-running layer
        mm.evictToHost(net, b);
        prefetchState->prefetched[std::size_t(b)] = false;
        evicted_any = true;
    }
    return evicted_any;
}

Bytes
Executor::pageOutCold(Bytes need)
{
    // Serve-layer variant of evictUnconsumedPrefetches: the same
    // candidate set (prefetched-but-unconsumed buffers whose device
    // copy is redundant with a valid pinned-host copy), but driven by
    // a byte budget on behalf of a *co-tenant* rather than by one of
    // this tenant's own allocations, and anchored at the live
    // stepper's cursor.
    if (!stepper || !prefetchState)
        return 0;
    net::LayerId curr = stepper->groupLayer;
    if (curr < 0)
        return 0; // cursor not inside a layer group yet
    int curr_topo = net.node(curr).topoIndex;
    Bytes freed = 0;
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (freed >= need)
            break;
        if (!prefetchState->prefetched[std::size_t(b)])
            continue;
        if (mm.residence(b) != Residence::Device || !mm.hostCopyValid(b))
            continue;
        const net::Buffer &buf = net.buffer(b);
        if (buf.bwdUsers.empty())
            continue;
        if (net.node(buf.bwdUsers.back()).topoIndex >= curr_topo)
            continue; // in use by this or an already-running layer
        freed += bufferPlan[std::size_t(b)].bytes;
        mm.evictToHost(net, b);
        prefetchState->prefetched[std::size_t(b)] = false;
    }
    return freed;
}

bool
Executor::ensureResident(net::BufferId b, net::LayerId curr,
                         IterationResult &result)
{
    switch (mm.residence(b)) {
      case Residence::Device:
      case Residence::Offloading: // device copy still valid
        return true;
      case Residence::Host: {
        // On-demand fetch: the serialized path prefetching tries to
        // avoid (Section III-A). The backward pass blocks until the
        // copy lands.
        const ExecBufferPlan &bp = bufferPlan[std::size_t(b)];
        if (!mm.beginPrefetch(net, b)) {
            if (!evictUnconsumedPrefetches(bp.bytes, curr) ||
                !mm.beginPrefetch(net, b)) {
                return false;
            }
        }
        TimeNs t0 = rt.now();
        rt.memcpyAsync(streamMemory, bp.dmaBytes, CopyDir::HostToDevice,
                       bp.fetchTag);
        rt.synchronize(streamMemory);
        mm.finishPrefetch(b);
        result.transferStallTime += rt.now() - t0;
        result.pcieBytes += bp.dmaBytes;
        ++result.onDemandFetches;
        if (prefetchState)
            prefetchState->prefetched[std::size_t(b)] = true;
        return true;
      }
      case Residence::Prefetching:
        // In flight on stream_memory; wait for it.
        rt.synchronize(streamMemory);
        mm.finishPrefetch(b);
        return true;
      case Residence::Unallocated:
        panic("buffer %d needed but unallocated (buffer of layer flow "
              "'%s')",
              b, net.name().c_str());
    }
    return false;
}

void
Executor::processDeferredReleases(bool force)
{
    // Asynchronous-release mode (ablation): offloaded device copies are
    // released at the first synchronization point after their copy
    // completes, instead of stalling the layer boundary.
    auto it = deferredReleases.begin();
    while (it != deferredReleases.end()) {
        if (force || rt.eventFired(it->second)) {
            if (force)
                rt.synchronize(streamMemory);
            mm.finishOffload(net, it->first);
            it = deferredReleases.erase(it);
        } else {
            ++it;
        }
    }
}

void
Executor::abortIteration(IterationResult &result, const std::string &why,
                         FailKind kind, net::LayerId layer)
{
    result.ok = false;
    result.failReason = why;
    result.failKind = kind;
    result.failLayer = layer;
    // Drain all in-flight work so state machines can be forced down.
    rt.deviceSynchronize();
    deferredReleases.clear();
    for (std::optional<TaggedAlloc> &g : gradients) {
        if (g) {
            mm.releaseDevice(g->alloc, g->managed);
            g.reset();
        }
    }
    liveGradients = 0;
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (!staticBuffers[std::size_t(b)])
            mm.forceRelease(net, b);
    }
    result.end = rt.now();
}

// --- stepper: op bodies ------------------------------------------------------

IterationStepper::IterationStepper(Executor &executor) : ex(executor) {}

void
IterationStepper::cancel()
{
    VDNN_ASSERT(!finished(), "cancel() on a finished iteration");
    // A parked cursor may hold a live workspace and joins it never
    // reached; abortIteration()'s drain-and-force-release unwinds the
    // buffer state machines, so only the stepper-local state needs
    // explicit cleanup here.
    if (ws) {
        ex.mm.releaseDevice(ws->alloc, ws->managed);
        ws.reset();
    }
    offloading.clear();
    prefetching.clear();
    ex.abortIteration(res, "iteration cancelled (tenant preempted)");
    st = Status::Failed;
}

const IterOp *
IterationStepper::nextOp() const
{
    return pcIndex < ex.prog.ops.size() ? &ex.prog.ops[pcIndex] : nullptr;
}

IterationStepper::Status
IterationStepper::blocked(gpu::StreamId stream)
{
    blockedOn = stream;
    st = Status::Blocked;
    return st;
}

bool
IterationStepper::opBeginIteration()
{
    res.layers.assign(ex.net.numLayers(), LayerTiming{});
    ex.gradients.assign(ex.net.numBuffers(), std::nullopt);
    ex.liveGradients = 0;
    ex.deferredReleases.clear();
    ex.remainingReaders = ex.initialReaders;
    ex.prefetchState.emplace(ex.net.numBuffers());

    res.start = ex.rt.now();

    // Materialize the input batch (static under the baseline policy).
    if (!ex.buffersStatic &&
        ex.mm.residence(ex.net.inputBuffer()) == Residence::Unallocated) {
        if (!ex.mm.allocBuffer(ex.net, ex.net.inputBuffer())) {
            ex.abortIteration(res, "OOM allocating the input batch",
                              FailKind::FeatureMap, net::kInputLayer);
            return false;
        }
    }
    return true;
}

bool
IterationStepper::opFwdAlloc(net::LayerId id, const ExecOpPlan &p)
{
    // Input feature maps must be device-resident during forward
    // propagation (they are only ever offloaded by their last reader).
    for (net::BufferId b : p.buffers) {
        Residence r = ex.mm.residence(b);
        VDNN_ASSERT(r == Residence::Device,
                    "fwd '%s': input buffer %d not resident (state %d)",
                    ex.net.node(id).spec.name.c_str(), b, int(r));
    }

    // Allocate the output feature maps (in-place layers reuse X).
    if (p.allocY &&
        ex.mm.residence(p.yBuffer) == Residence::Unallocated) {
        if (!ex.mm.allocBuffer(ex.net, p.yBuffer)) {
            ex.abortIteration(
                res,
                strFormat("OOM allocating Y of '%s' (%s)",
                          ex.net.node(id).spec.name.c_str(),
                          formatBytes(
                              ex.bufferPlan[std::size_t(p.yBuffer)].bytes)
                              .c_str()),
                FailKind::FeatureMap, id);
            return false;
        }
    }

    // Convolution workspace for the chosen algorithm.
    ws.reset();
    const ExecLaunchPlan &lp = ex.launchPlan[std::size_t(id)];
    Bytes ws_bytes = ex.buffersStatic ? 0 : lp.wsBytes;
    if (ws_bytes > 0) {
        auto a = ex.mm.allocDevice(ws_bytes, lp.wsTag, lp.wsManaged);
        if (!a) {
            ex.abortIteration(res,
                              strFormat("OOM allocating workspace of '%s' "
                                        "(%s)",
                                        ex.net.node(id).spec.name.c_str(),
                                        formatBytes(ws_bytes).c_str()),
                              FailKind::Workspace, id);
            return false;
        }
        ws = TaggedAlloc{*a, lp.wsManaged};
    }
    return true;
}

void
IterationStepper::opFwdKernel(net::LayerId id)
{
    ex.launchForwardKernels(id);
}

void
IterationStepper::opFwdOffload(const ExecOpPlan &p)
{
    // Offload: issued by the last forward consumer of each input buffer
    // (the refcount rule of Fig. 3, resolved into p.buffers at compile
    // time), overlapped with this layer's own forward computation on
    // stream_memory.
    for (net::BufferId b : p.buffers) {
        if (!ex.mm.beginOffload(ex.net, b)) {
            warn("host memory exhausted; keeping buffer %d resident", b);
            continue;
        }
        const ExecBufferPlan &bp = ex.bufferPlan[std::size_t(b)];
        ex.rt.memcpyAsync(ex.streamMemory, bp.dmaBytes,
                          CopyDir::DeviceToHost, bp.offloadTag);
        offloading.push_back(b);
        ex.prefetchState->offloaded[std::size_t(b)] = true;
        ++res.offloads;
        res.offloadedBytes += bp.bytes;
        res.pcieBytes += bp.dmaBytes;
    }
}

IterationStepper::Status
IterationStepper::opSync(const IterOp &op, bool blocking)
{
    // Layer boundary: wait for the computation, and for any transfer
    // launched under it — offloads so the device copy is released
    // before the next layer starts (maximizing the memory saving at
    // the cost of the Fig. 9 "wasted time" when the offload outlives
    // the computation), prefetches so the data is ready before the
    // preceding layer's backward computation (Section III-B).
    std::vector<net::BufferId> &pending =
        op.backward ? prefetching : offloading;

    if (syncPhase == 0) {
        if (!blocking && !ex.rt.streamIdle(ex.streamCompute))
            return blocked(ex.streamCompute);
        ex.rt.synchronize(ex.streamCompute);
        tComputeDone = ex.rt.now();
        syncPhase = 1;
    }
    if (syncPhase == 1) {
        bool join_memory = !pending.empty() &&
                           (op.backward || ex.cfg.syncAtLayerBoundary);
        if (join_memory) {
            if (!blocking && !ex.rt.streamIdle(ex.streamMemory))
                return blocked(ex.streamMemory);
            ex.rt.synchronize(ex.streamMemory);
            res.transferStallTime += ex.rt.now() - tComputeDone;
            for (net::BufferId b : pending) {
                if (op.backward)
                    ex.mm.finishPrefetch(b);
                else
                    ex.mm.finishOffload(ex.net, b);
            }
        } else if (!pending.empty()) {
            // Asynchronous-release mode (ablation): release at the
            // first synchronization point after the copy completes.
            for (net::BufferId b : pending) {
                gpu::CudaEventId ev = ex.rt.createEvent();
                ex.rt.recordEvent(ex.streamMemory, ev);
                ex.deferredReleases.emplace_back(b, ev);
            }
        }
        pending.clear();
        syncPhase = 2;
    }
    ex.processDeferredReleases(false);
    syncPhase = 0;
    return Status::Running;
}

void
IterationStepper::opFwdRelease(net::LayerId id, const ExecOpPlan &p)
{
    if (ws) {
        ex.mm.releaseDevice(ws->alloc, ws->managed);
        ws.reset();
    }

    // Aggressive release: buffers whose last reader has executed and
    // that are not reused by backward propagation are freed outright.
    if (!ex.buffersStatic) {
        for (net::BufferId b : p.buffers) {
            if (--ex.remainingReaders[std::size_t(b)] > 0)
                continue;
            if (ex.bufferPlan[std::size_t(b)].fwdReleasable &&
                ex.mm.residence(b) == Residence::Device) {
                ex.mm.releaseBuffer(ex.net, b);
            }
        }
    }

    LayerTiming &t = res.layers[std::size_t(id)];
    t.id = id;
    t.fwdStart = tLayerStart;
    t.fwdEnd = ex.rt.now();
    if (ex.launchPlan[std::size_t(id)].classifier)
        res.classifierTime += t.fwdEnd - t.fwdStart;
}

IterationStepper::Status
IterationStepper::opBarrier(bool blocking)
{
    // Any deferred (asynchronous) offload releases must land before
    // backward propagation starts reusing the buffers.
    if (!blocking && !ex.deferredReleases.empty() &&
        !ex.rt.streamIdle(ex.streamMemory)) {
        return blocked(ex.streamMemory);
    }
    ex.processDeferredReleases(true);
    return Status::Running;
}

bool
IterationStepper::opBwdFetch(net::LayerId id, const ExecOpPlan &p)
{
    // Residency: the layer's backward pass needs X and/or Y (Section
    // III-A, resolved into p.buffers at compile time); offloaded data
    // must be fetched back before the kernels.
    for (net::BufferId b : p.buffers) {
        // A buffer prefetched during *this* layer cannot serve this
        // layer's own kernels without waiting; that only happens in
        // the degenerate single-layer-window case.
        if (!ex.ensureResident(b, id, res)) {
            ex.abortIteration(
                res,
                strFormat("OOM fetching buffer %d for '%s' backward", b,
                          ex.net.node(id).spec.name.c_str()),
                FailKind::Fetch, id);
            return false;
        }
    }
    return true;
}

bool
IterationStepper::opBwdAlloc(net::LayerId id, const ExecOpPlan &p)
{
    // Gradient maps: dY must exist (allocated by this buffer's
    // consumers, or seeded here for the terminal loss layer); dX is
    // allocated on demand. The network input receives no gradient
    // (p.buffers holds the dX set with it already excluded).
    auto grad_with_recovery = [&](net::BufferId b) {
        if (ex.allocGradient(b))
            return true;
        if (!ex.evictUnconsumedPrefetches(
                ex.bufferPlan[std::size_t(b)].bytes, id)) {
            return false;
        }
        ++res.prefetchEvictions;
        return ex.allocGradient(b);
    };
    if (!grad_with_recovery(p.yBuffer)) {
        ex.abortIteration(res,
                          strFormat("OOM allocating dY of '%s'",
                                    ex.net.node(id).spec.name.c_str()),
                          FailKind::Gradient, id);
        return false;
    }
    for (net::BufferId b : p.buffers) {
        if (!grad_with_recovery(b)) {
            ex.abortIteration(res,
                              strFormat("OOM allocating dX of '%s'",
                                        ex.net.node(id).spec.name.c_str()),
                              FailKind::Gradient, id);
            return false;
        }
    }

    // Backward convolution workspace.
    ws.reset();
    const ExecLaunchPlan &lp = ex.launchPlan[std::size_t(id)];
    Bytes ws_bytes = ex.buffersStatic ? 0 : lp.wsBytes;
    if (ws_bytes > 0) {
        auto a = ex.mm.allocDevice(ws_bytes, lp.wsTag, lp.wsManaged);
        if (!a && ex.evictUnconsumedPrefetches(ws_bytes, id)) {
            ++res.prefetchEvictions;
            a = ex.mm.allocDevice(ws_bytes, lp.wsTag, lp.wsManaged);
        }
        if (!a) {
            ex.abortIteration(res,
                              strFormat("OOM allocating bwd workspace of "
                                        "'%s' (%s)",
                                        ex.net.node(id).spec.name.c_str(),
                                        formatBytes(ws_bytes).c_str()),
                              FailKind::Workspace, id);
            return false;
        }
        ws = TaggedAlloc{*a, lp.wsManaged};
    }
    return true;
}

void
IterationStepper::opBwdPrefetch(net::LayerId id)
{
    // Prefetch: with the layer's mandatory allocations in place, search
    // for the best preceding layer to prefetch (Fig. 10) and overlap
    // its H2D copy with this layer's backward kernels. The prefetch is
    // opportunistic: when the pool cannot host the target yet (memory
    // is at its tightest around the first conv groups' backward pass),
    // it falls back to a later on-demand fetch instead of failing the
    // iteration.
    PrefetchCandidate cand =
        findPrefetchLayer(ex.net, id, *ex.prefetchState,
                          ex.cfg.prefetchWindowBounded, &ex.execPlan);
    for (net::BufferId b : cand.buffers) {
        if (ex.mm.residence(b) != Residence::Host) {
            continue; // already fetched on demand earlier
        }
        if (!ex.mm.beginPrefetch(ex.net, b)) {
            // No room yet; fall back to a later on-demand fetch.
            ex.prefetchState->prefetched[std::size_t(b)] = false;
            continue;
        }
        const ExecBufferPlan &bp = ex.bufferPlan[std::size_t(b)];
        ex.rt.memcpyAsync(ex.streamMemory, bp.dmaBytes,
                          CopyDir::HostToDevice, bp.prefetchTag);
        prefetching.push_back(b);
        ++res.prefetches;
        res.pcieBytes += bp.dmaBytes;
    }
}

void
IterationStepper::opBwdKernel(net::LayerId id)
{
    res.layers[std::size_t(id)].bwdStart = ex.rt.now();
    ex.launchBackwardKernels(id);
}

void
IterationStepper::opBwdRelease(net::LayerId id, const ExecOpPlan &p)
{
    if (ws) {
        ex.mm.releaseDevice(ws->alloc, ws->managed);
        ws.reset();
    }

    if (!ex.buffersStatic) {
        // dY fully consumed once this buffer's producer has run.
        if (p.releaseDY)
            ex.releaseGradient(p.yBuffer);
        // Feature maps whose last backward user just executed are
        // released immediately (Fig. 8).
        for (net::BufferId b : p.buffers) {
            if (!ex.staticBuffers[std::size_t(b)] &&
                ex.mm.residence(b) == Residence::Device) {
                ex.mm.releaseBuffer(ex.net, b);
            }
        }
    }

    LayerTiming &t = res.layers[std::size_t(id)];
    t.bwdEnd = ex.rt.now();
    if (ex.launchPlan[std::size_t(id)].classifier)
        res.classifierTime += t.bwdEnd - tLayerStart;
}

IterationStepper::Status
IterationStepper::opEndIteration(bool blocking)
{
    if (blocking) {
        ex.processDeferredReleases(true);
        ex.rt.deviceSynchronize();
    } else {
        // Drain this executor's own streams only: a co-tenant's
        // in-flight work on the shared device must not serialize this
        // tenant's iteration boundary.
        if (!ex.rt.streamIdle(ex.streamCompute))
            return blocked(ex.streamCompute);
        if (!ex.rt.streamIdle(ex.streamMemory))
            return blocked(ex.streamMemory);
        ex.processDeferredReleases(true);
    }
    res.end = ex.rt.now();

    // Steady-state invariant: everything allocated inside the iteration
    // has been returned to the pool.
    VDNN_ASSERT(ex.liveGradients == 0, "gradient buffers leaked");
    VDNN_ASSERT(ex.mm.deviceUsage() == ex.persistentTotal,
                "tenant usage %lld != persistent %lld after iteration",
                (long long)ex.mm.deviceUsage(),
                (long long)ex.persistentTotal);

    res.ok = true;
    return Status::Done;
}

// --- stepper: dispatch -------------------------------------------------------

IterationStepper::Status
IterationStepper::step(bool blocking)
{
    if (finished())
        return st;
    VDNN_ASSERT(pcIndex < ex.prog.ops.size(),
                "stepper ran off the program");
    const IterOp &op = ex.prog.ops[pcIndex];
    const ExecOpPlan &plan = ex.opPlan[pcIndex];

    // Entering a new (layer, phase) group: take the timestamp the
    // monolithic loop captured at forwardLayer/backwardLayer entry.
    if (op.layer != groupLayer || op.backward != groupBackward) {
        groupLayer = op.layer;
        groupBackward = op.backward;
        tLayerStart = ex.rt.now();
    }

    st = Status::Running;
    blockedOn = -1;
    bool ok = true;
    switch (op.kind) {
      case OpKind::BeginIteration:
        ok = opBeginIteration();
        break;
      case OpKind::Alloc:
        ok = op.backward ? opBwdAlloc(op.layer, plan)
                         : opFwdAlloc(op.layer, plan);
        break;
      case OpKind::Kernel:
        if (op.backward)
            opBwdKernel(op.layer);
        else
            opFwdKernel(op.layer);
        break;
      case OpKind::Offload:
        opFwdOffload(plan);
        break;
      case OpKind::OnDemandFetch:
        ok = opBwdFetch(op.layer, plan);
        break;
      case OpKind::Prefetch:
        opBwdPrefetch(op.layer);
        break;
      case OpKind::Release:
        if (op.backward)
            opBwdRelease(op.layer, plan);
        else
            opFwdRelease(op.layer, plan);
        break;
      case OpKind::Sync:
        if (opSync(op, blocking) == Status::Blocked)
            return st;
        break;
      case OpKind::Barrier:
        if (opBarrier(blocking) == Status::Blocked)
            return st;
        break;
      case OpKind::EndIteration: {
        Status s = opEndIteration(blocking);
        if (s == Status::Blocked)
            return st;
        st = s;
        ++pcIndex;
        return st;
      }
    }

    if (!ok) {
        st = Status::Failed;
        return st;
    }
    ++pcIndex;
    return st;
}

// --- iteration driver ---------------------------------------------------------------

IterationStepper &
Executor::beginIteration()
{
    VDNN_ASSERT(setupDone, "beginIteration() before setup()");
    VDNN_ASSERT(!stepper, "previous iteration not collected with "
                          "finishIteration()");
    stepper.reset(new IterationStepper(*this));
    return *stepper;
}

IterationResult
Executor::finishIteration()
{
    VDNN_ASSERT(stepper && stepper->finished(),
                "finishIteration() without a finished iteration");
    IterationResult r = std::move(stepper->res);
    stepper.reset();
    if (r.ok) {
        if (ctrIters) {
            ctrIters->add();
            ctrOffloads->add(r.offloads);
            ctrPrefetches->add(r.prefetches);
            ctrOnDemand->add(r.onDemandFetches);
        }
        if (rt.telemetry().tracing()) {
            rt.telemetry().trace->complete(
                rt.deviceId(), mm.clientId(), "iteration", "iteration",
                r.start, r.end,
                "{\"offloads\":" + std::to_string(r.offloads) +
                    ",\"prefetches\":" + std::to_string(r.prefetches) +
                    ",\"on_demand\":" +
                    std::to_string(r.onDemandFetches) + "}");
        }
    }
    return r;
}

IterationResult
Executor::runIteration()
{
    IterationStepper &s = beginIteration();
    while (!s.finished())
        s.step(/*blocking=*/true);
    return finishIteration();
}

} // namespace vdnn::core
