/**
 * @file
 * Multi-tenant GPU-sharing scheduler.
 *
 * Multiplexes N training jobs over one simulated GPU: a single shared
 * gpu::Runtime (one compute engine, one DMA engine per direction, one
 * PCIe link) and a single shared cnmem pool. Jobs are admitted by the
 * AdmissionController when their policy-dependent footprint fits; the
 * freed residency of the vDNN policies is what lets many more tenants
 * pack onto the same 12 GB device than the baseline allocator.
 *
 * Two scheduling policies:
 *
 *  - FifoExclusive: one job owns the device at a time, run to
 *    completion in arrival order — the status quo this subsystem
 *    exists to beat (head-of-line blocking, queueing delay).
 *  - RoundRobin: iteration-granularity time sharing in the style of
 *    the Salus execution engine — every admitted job keeps its
 *    persistent state device-resident while iterations from all
 *    tenants interleave on the shared compute engine, and the
 *    admission queue is backfilled whenever capacity frees up.
 *  - ShortestRemaining: same packing, but the next iteration goes to
 *    the admitted job with the fewest remaining iterations (SRPT at
 *    iteration granularity) — minimizes mean job completion time.
 *  - PackedOverlap: op-granularity packing over the IterationProgram
 *    steppers. Every admitted tenant keeps a resumable
 *    core::IterationStepper; whenever one tenant blocks on a DMA join
 *    (offload/prefetch sync boundary), the next ready tenant's compute
 *    op is dispatched instead of idling the compute engine — tenant
 *    B's kernels run under tenant A's transfers. Concurrent offloads
 *    share the PCIe link under the weighted fair-share arbiter
 *    (src/interconnect/arbiter.hh; per-job weight via
 *    JobSpec::exec.pcieWeight). Because several tenants' per-iteration
 *    working sets are live at once, admission reserves the *sum* of
 *    transients instead of the shared arena.
 *  - PreemptivePriority: iteration-granularity packing driven by
 *    JobSpec::priority (highest runs first). A higher-priority arrival
 *    that fails admission preempts the lowest-priority running tenants
 *    through the Session lifecycle state machine — suspend() then
 *    evictToHost(), releasing the victim's entire device share while
 *    its reservation moves to the admission controller's evicted
 *    ledger. Victims resume (re-planning against the then-current
 *    free share) once capacity frees, and a re-plan sweep lets
 *    in-place-replannable tenants (ReplanHint::InPlace) grow their
 *    plans back when co-tenants exit.
 *
 * In-flight OOM (overcommit or pool fragmentation despite the
 * reservation) aborts only that iteration: the job is torn down,
 * its reservation inflated, and it is requeued for readmission —
 * after a bounded number of attempts it is marked Failed.
 */

#ifndef VDNN_SERVE_SCHEDULER_HH
#define VDNN_SERVE_SCHEDULER_HH

#include "dnn/cudnn_sim.hh"
#include "gpu/gpu_spec.hh"
#include "gpu/runtime.hh"
#include "mem/memory_pool.hh"
#include "mem/pinned_host.hh"
#include "mem/usage_tracker.hh"
#include "serve/admission.hh"
#include "serve/job.hh"
#include "serve/serve_stats.hh"
#include "stats/time_weighted.hh"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace vdnn::serve
{

enum class SchedPolicy
{
    FifoExclusive,      ///< one job at a time, arrival order
    RoundRobin,         ///< iteration-granularity packing (Salus-style)
    ShortestRemaining,  ///< packed, fewest-remaining-iterations first
    PackedOverlap,      ///< op-granularity packing, compute/DMA overlap
    PreemptivePriority, ///< priority packing; preempts via suspend/evict
};

const char *schedPolicyName(SchedPolicy p);

struct SchedulerConfig
{
    SchedPolicy policy = SchedPolicy::RoundRobin;
    /** The device all tenants share. */
    gpu::GpuSpec gpu;
    bool contention = true;
    /** Cap on concurrently admitted jobs (0 = unlimited). */
    int maxJobsInFlight = 0;
    /** Reservation inflation guarding estimate error/fragmentation. */
    double admissionSafety = 1.05;
    /** Reservation growth per OOM requeue of a job. */
    double oomBackoffScale = 1.25;
    /** OOM requeues before a job is marked Failed. */
    int maxOomRequeues = 3;
    /** Retain pool-usage and jobs-in-flight timelines in the report. */
    bool keepTimeline = false;

    SchedulerConfig();
};

class Scheduler
{
  public:
    explicit Scheduler(SchedulerConfig config);

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Register a job; it becomes visible at spec.arrival. */
    JobId submit(JobSpec spec);

    /** Drive every submitted job to a terminal state. */
    ServeReport run();

    // --- introspection (tests) -------------------------------------------
    gpu::Runtime &runtime() { return rt; }
    mem::MemoryPool &devicePool() { return pool; }
    const AdmissionController &admissionState() const { return admission; }
    const Job &job(JobId id) const { return *jobs.at(std::size_t(id)); }
    int jobsInFlight() const { return int(running.size()); }
    int jobsEvicted() const { return int(evictedJobs.size()); }

  private:
    void collectArrivals();
    void admitFromQueue();
    const FootprintEstimate &estimateFor(const Job &job);
    bool tryAdmit(Job &job, const FootprintEstimate &est);
    void finishJob(Job &job, JobState final_state,
                   const std::string &why = "");
    void evictForRequeue(Job &job);
    Job *pickNext();
    void recordInflight();
    TimeNs nextArrivalAfter(TimeNs t) const;
    bool allDone() const;
    /** Fold one completed (ok) iteration into the job's record. */
    void chargeIteration(Job &job, const core::IterationResult &r);
    /** Iteration-granularity main loop (all policies but packed). */
    void runInterleaved();
    /** Op-granularity main loop (SchedPolicy::PackedOverlap). */
    void runPacked();
    ServeReport buildReport();

    // --- lifecycle state machine (PreemptivePriority) --------------------
    /** Drop @p id from the resident set, fixing the RR cursor. */
    void removeFromRunning(JobId id);
    /** Lowest-priority running tenant strictly below @p priority
     *  (latest arrival breaks ties), or nullptr. */
    Job *pickVictim(int below_priority);
    /** Suspend + evict one tenant, moving its reservation to the
     *  evicted ledger. False when pinned host memory is exhausted. */
    bool preempt(Job &victim);
    /** Evict lowest-priority tenants until @p job's reservation (and,
     *  when the in-flight cap binds, a slot) fits. */
    bool makeRoomFor(Job &job, const FootprintEstimate &est);
    /** Resume evicted tenants that fit again, best priority first. */
    void resumeEvicted();
    /** Append a lifecycle transition to the audit log. */
    void logLifecycle(JobId id, const char *what, Bytes reserved_before);

    SchedulerConfig cfg;
    gpu::Runtime rt;
    mem::MemoryPool pool;
    mem::PinnedHostAllocator host;
    mem::UsageTracker poolTrack;
    dnn::CudnnSim cudnn;
    AdmissionController admission;

    std::vector<std::unique_ptr<Job>> jobs;
    /** Footprint estimates are deterministic per spec; cache them. */
    std::unordered_map<JobId, FootprintEstimate> estimates;
    JobQueue queue;            ///< arrived, waiting for admission
    std::vector<JobId> running; ///< admitted, in submission order
    std::vector<JobId> evictedJobs; ///< preempted, awaiting resume
    std::size_t rrCursor = 0;
    /** Capacity freed since the last resume sweep. */
    bool resumePending = false;

    std::vector<LifecycleEvent> lifecycleLog;
    stats::TimeWeighted inflight;
    int peakInflight = 0;
    bool ran = false;
};

} // namespace vdnn::serve

#endif // VDNN_SERVE_SCHEDULER_HH
