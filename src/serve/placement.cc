#include "serve/placement.hh"

namespace vdnn::serve
{

int
BestFitPlacement::place(const std::vector<DeviceLoad> &loads)
{
    const DeviceLoad *best = nullptr;
    for (const DeviceLoad &l : loads) {
        if (!l.fits)
            continue;
        if (!best || l.freeBytes() < best->freeBytes())
            best = &l;
    }
    return best ? best->device : -1;
}

int
RoundRobinPlacement::place(const std::vector<DeviceLoad> &loads)
{
    if (loads.empty())
        return -1;
    for (std::size_t k = 0; k < loads.size(); ++k) {
        const DeviceLoad &l = loads[(cursor + k) % loads.size()];
        if (l.fits) {
            cursor = (cursor + k + 1) % loads.size();
            return l.device;
        }
    }
    return -1;
}

int
LoadBalancePlacement::place(const std::vector<DeviceLoad> &loads)
{
    const DeviceLoad *best = nullptr;
    for (const DeviceLoad &l : loads) {
        if (!l.fits)
            continue;
        if (!best || l.runningJobs < best->runningJobs ||
            (l.runningJobs == best->runningJobs &&
             l.freeBytes() > best->freeBytes())) {
            best = &l;
        }
    }
    return best ? best->device : -1;
}

} // namespace vdnn::serve
