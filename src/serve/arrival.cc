#include "serve/arrival.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace vdnn::serve
{

std::vector<TimeNs>
poissonArrivals(int count, double rate_per_sec, SplitMix64 &rng,
                TimeNs start)
{
    VDNN_ASSERT(count >= 0, "negative arrival count");
    VDNN_ASSERT(rate_per_sec > 0.0, "arrival rate must be positive");
    std::vector<TimeNs> out;
    out.reserve(std::size_t(count));
    TimeNs t = start;
    for (int i = 0; i < count; ++i) {
        // Exponential inter-arrival gap via inverse transform; clamp
        // the uniform away from 0 so log() stays finite.
        double u = std::max(rng.nextDouble(), 1e-12);
        double gap_s = -std::log(u) / rate_per_sec;
        t += secondsToNs(gap_s);
        out.push_back(t);
    }
    return out;
}

std::vector<TimeNs>
uniformArrivals(int count, TimeNs gap, TimeNs start)
{
    VDNN_ASSERT(count >= 0, "negative arrival count");
    VDNN_ASSERT(gap >= 0, "negative arrival gap");
    std::vector<TimeNs> out;
    out.reserve(std::size_t(count));
    for (int i = 0; i < count; ++i)
        out.push_back(start + TimeNs(i) * gap);
    return out;
}

std::vector<TimeNs>
traceArrivals(const std::vector<double> &seconds)
{
    std::vector<TimeNs> out;
    out.reserve(seconds.size());
    for (double s : seconds) {
        VDNN_ASSERT(s >= 0.0, "trace timestamps must be non-negative");
        out.push_back(secondsToNs(s));
    }
    std::sort(out.begin(), out.end());
    return out;
}

// --- TraceArrivals -----------------------------------------------------------

namespace
{

std::vector<std::string>
splitCsv(const std::string &line)
{
    std::vector<std::string> fields;
    std::string cur;
    for (char c : line) {
        if (c == ',') {
            fields.push_back(cur);
            cur.clear();
        } else if (c != '\r') {
            cur += c;
        }
    }
    fields.push_back(cur);
    for (std::string &f : fields) {
        std::size_t a = f.find_first_not_of(" \t");
        std::size_t b = f.find_last_not_of(" \t");
        f = a == std::string::npos ? std::string()
                                   : f.substr(a, b - a + 1);
    }
    return fields;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    // Reject inf/nan and magnitudes whose ns conversion would
    // overflow TimeNs (UB): traces are wall-clock logs, so anything
    // beyond ~292 years is a corrupt line, not a workload.
    return end && *end == '\0' && std::isfinite(out) &&
           std::fabs(out) < 9.2e9;
}

bool
parseInt(const std::string &s, int &out)
{
    double d = 0.0;
    if (!parseDouble(s, d) || d != std::floor(d) ||
        std::fabs(d) > 2147483647.0) {
        return false;
    }
    out = int(d);
    return true;
}

} // namespace

TraceArrivals
TraceArrivals::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        TraceArrivals t;
        t.err = "cannot open trace '" + path + "'";
        return t;
    }
    return parse(in);
}

TraceArrivals
TraceArrivals::parseString(const std::string &text)
{
    std::istringstream in(text);
    return parse(in);
}

TraceArrivals
TraceArrivals::parse(std::istream &in)
{
    TraceArrivals t;
    std::string line;
    int lineno = 0;
    bool header_allowed = true;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::vector<std::string> f = splitCsv(line);
        double submit_s = 0.0;
        if (!parseDouble(f[0], submit_s)) {
            // The optional header line must *look* like one: a field
            // with no numeric prefix at all ("submit_s"). A field
            // strtod can bite into but that fails validation ("0.5s",
            // "1e999", "inf") is a malformed data line and must
            // poison the trace, not vanish as a pretend header.
            char *end = nullptr;
            std::strtod(f[0].c_str(), &end);
            bool header_shaped =
                !f[0].empty() && end == f[0].c_str();
            if (header_allowed && header_shaped) {
                header_allowed = false;
                continue; // column-header line
            }
            t.err = strFormat("trace line %d: bad submit time '%s'",
                              lineno, f[0].c_str());
            return t;
        }
        header_allowed = false;
        if (f.size() < 4 || f.size() > 5) {
            t.err = strFormat(
                "trace line %d: want submit_s,net,priority,planner"
                "[,iterations], got %zu fields",
                lineno, f.size());
            return t;
        }
        TraceEntry e;
        if (submit_s < 0.0) {
            t.err = strFormat("trace line %d: negative submit time",
                              lineno);
            return t;
        }
        e.submit = secondsToNs(submit_s);
        e.net = f[1];
        if (e.net.empty()) {
            t.err = strFormat("trace line %d: empty net", lineno);
            return t;
        }
        if (!parseInt(f[2], e.priority)) {
            t.err = strFormat("trace line %d: bad priority '%s'",
                              lineno, f[2].c_str());
            return t;
        }
        e.planner = f[3];
        if (e.planner.empty()) {
            t.err = strFormat("trace line %d: empty planner", lineno);
            return t;
        }
        if (f.size() == 5) {
            if (!parseInt(f[4], e.iterations) || e.iterations < 1) {
                t.err = strFormat("trace line %d: bad iterations '%s'",
                                  lineno, f[4].c_str());
                return t;
            }
        }
        t.jobs.push_back(std::move(e));
    }
    std::stable_sort(t.jobs.begin(), t.jobs.end(),
                     [](const TraceEntry &a, const TraceEntry &b) {
                         return a.submit < b.submit;
                     });
    return t;
}

} // namespace vdnn::serve
