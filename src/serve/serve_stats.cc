#include "serve/serve_stats.hh"

#include "common/units.hh"

#include <algorithm>
#include <cstdint>

namespace vdnn::serve
{

namespace
{

int
countState(const std::vector<JobOutcome> &jobs, JobState s)
{
    int n = 0;
    for (const JobOutcome &j : jobs)
        n += j.state == s ? 1 : 0;
    return n;
}

std::vector<TimeNs>
finishedJcts(const std::vector<JobOutcome> &jobs)
{
    std::vector<TimeNs> jcts;
    for (const JobOutcome &j : jobs) {
        if (j.state == JobState::Finished)
            jcts.push_back(j.completionTime);
    }
    std::sort(jcts.begin(), jcts.end());
    return jcts;
}

std::vector<TimeNs>
finishedJctsAtPriority(const std::vector<JobOutcome> &jobs, int priority)
{
    std::vector<TimeNs> jcts;
    for (const JobOutcome &j : jobs) {
        if (j.state == JobState::Finished && j.priority == priority)
            jcts.push_back(j.completionTime);
    }
    std::sort(jcts.begin(), jcts.end());
    return jcts;
}

std::vector<TimeNs>
admittedQueueingDelays(const std::vector<JobOutcome> &jobs)
{
    std::vector<TimeNs> delays;
    for (const JobOutcome &j : jobs) {
        if (j.admitTime != kTimeNone)
            delays.push_back(j.queueingDelay);
    }
    std::sort(delays.begin(), delays.end());
    return delays;
}

TimeNs
meanOf(const std::vector<TimeNs> &jcts)
{
    if (jcts.empty())
        return 0;
    double sum = 0.0;
    for (TimeNs t : jcts)
        sum += double(t);
    return TimeNs(sum / double(jcts.size()));
}

TimeNs
nearestRank(const std::vector<TimeNs> &jcts, double pct)
{
    if (jcts.empty())
        return 0;
    std::size_t rank = std::size_t(std::max<double>(
        1.0, std::ceil(pct * double(jcts.size()))));
    return jcts[rank - 1];
}

} // namespace

int
ServeReport::finishedCount() const
{
    return countState(jobs, JobState::Finished);
}

int
ServeReport::failedCount() const
{
    return countState(jobs, JobState::Failed);
}

int
ServeReport::rejectedCount() const
{
    return countState(jobs, JobState::Rejected);
}

int
ServeReport::sloEligible() const
{
    int n = 0;
    for (const JobOutcome &j : jobs)
        n += int(j.sloJct > 0);
    return n;
}

int
ServeReport::sloMet() const
{
    int n = 0;
    for (const JobOutcome &j : jobs)
        n += int(j.sloMet());
    return n;
}

double
ServeReport::sloAttainment() const
{
    int eligible = sloEligible();
    return eligible > 0 ? double(sloMet()) / double(eligible) : 1.0;
}

TimeNs
ServeReport::meanJct() const
{
    return meanOf(finishedJcts(jobs));
}

TimeNs
ServeReport::p95Jct() const
{
    return nearestRank(finishedJcts(jobs), 0.95);
}

TimeNs
ServeReport::p99Jct() const
{
    return nearestRank(finishedJcts(jobs), 0.99);
}

std::vector<TimeNs>
ServeReport::preemptionLatencies() const
{
    std::vector<TimeNs> lats;
    for (const JobOutcome &j : jobs) {
        if (j.victimsPreempted > 0 && j.firstDispatchTime != kTimeNone)
            lats.push_back(j.firstDispatchTime - j.arrival);
    }
    std::sort(lats.begin(), lats.end());
    return lats;
}

TimeNs
ServeReport::meanPreemptionLatency() const
{
    return meanOf(preemptionLatencies());
}

TimeNs
ServeReport::p95PreemptionLatency() const
{
    return nearestRank(preemptionLatencies(), 0.95);
}

int
ServeReport::totalPageOuts() const
{
    int n = 0;
    for (const JobOutcome &j : jobs)
        n += j.pageOuts;
    return n;
}

TimeNs
ServeReport::meanJctAtPriority(int priority) const
{
    return meanOf(finishedJctsAtPriority(jobs, priority));
}

TimeNs
ServeReport::p95JctAtPriority(int priority) const
{
    return nearestRank(finishedJctsAtPriority(jobs, priority), 0.95);
}

double
ServeReport::aggregateThroughput() const
{
    if (makespan <= 0)
        return 0.0;
    std::int64_t iters = 0;
    for (const JobOutcome &j : jobs)
        iters += j.iterations;
    return double(iters) / toSeconds(makespan);
}

TimeNs
ServeReport::meanQueueingDelay() const
{
    double sum = 0.0;
    int n = 0;
    for (const JobOutcome &j : jobs) {
        if (j.admitTime != kTimeNone) {
            sum += double(j.queueingDelay);
            ++n;
        }
    }
    return n > 0 ? TimeNs(sum / double(n)) : 0;
}

TimeNs
ServeReport::p95QueueingDelay() const
{
    return nearestRank(admittedQueueingDelays(jobs), 0.95);
}

TimeNs
ServeReport::p99QueueingDelay() const
{
    return nearestRank(admittedQueueingDelays(jobs), 0.99);
}

namespace
{

/** "0>1>0" placement-history cell. */
std::string
placementCell(const JobOutcome &j)
{
    if (j.placements.empty())
        return "-";
    std::string s;
    for (std::size_t i = 0; i < j.placements.size(); ++i) {
        if (i > 0)
            s += '>';
        s += std::to_string(j.placements[i]);
    }
    return s;
}

} // namespace

stats::Table
ServeReport::jobTable() const
{
    // The placement column appears only on a cluster, so classic
    // single-device reports stay byte-identical.
    bool cluster = deviceCount > 1;
    stats::Table t(schedulerName + " on " + gpuName + ": per-job report");
    std::vector<std::string> cols = {"job", "config", "prio", "state",
                                     "arrive (ms)", "queue (ms)",
                                     "iters", "preempt", "replan"};
    if (cluster)
        cols.push_back("dev");
    cols.insert(cols.end(), {"JCT (ms)", "persistent (MiB)",
                             "peak pool (MiB)"});
    t.setColumns(cols);
    for (const JobOutcome &j : jobs) {
        std::vector<std::string> row = {
            j.name, j.configName, stats::Table::cellInt(j.priority),
            jobStateName(j.state),
            stats::Table::cell(toMs(j.arrival), 1),
            stats::Table::cell(toMs(j.queueingDelay), 1),
            stats::Table::cellInt(j.iterations),
            stats::Table::cellInt(j.preemptions),
            stats::Table::cellInt(j.replans)};
        if (cluster)
            row.push_back(placementCell(j));
        row.insert(row.end(),
                   {j.state == JobState::Finished
                        ? stats::Table::cell(toMs(j.completionTime), 1)
                        : std::string("-"),
                    stats::Table::cell(toMiB(j.persistentBytes), 1),
                    stats::Table::cell(toMiB(j.peakPoolBytes), 1)});
        t.addRow(row);
    }
    return t;
}

stats::Table
ServeReport::deviceTable() const
{
    stats::Table t(schedulerName +
                   (placementName.empty() ? std::string()
                                          : " / " + placementName) +
                   ": per-device report");
    t.setColumns({"dev", "gpu", "placed", "migr in", "migr out",
                  "compute busy (ms)", "peak pool (GiB)",
                  "avg pool (GiB)", "reserved at end (B)"});
    for (const DeviceOutcome &d : devices) {
        t.addRow({stats::Table::cellInt(d.device), d.gpuName,
                  stats::Table::cellInt(d.jobsPlaced),
                  stats::Table::cellInt(d.migrationsIn),
                  stats::Table::cellInt(d.migrationsOut),
                  stats::Table::cell(toMs(d.computeBusyTime), 1),
                  stats::Table::cell(toGiB(d.poolPeakBytes), 2),
                  stats::Table::cell(toGiB(d.poolAvgBytes), 2),
                  stats::Table::cellInt((long long)d.reservedAtEnd)});
    }
    return t;
}

stats::Table
ServeReport::summaryTable() const
{
    stats::Table t(schedulerName + " on " + gpuName + ": summary");
    t.setColumns({"finished", "failed", "rejected", "makespan (ms)",
                  "mean JCT (ms)", "p95 JCT (ms)", "p99 JCT (ms)",
                  "mean queue (ms)", "p99 queue (ms)",
                  "peak jobs", "avg jobs", "peak pool (GiB)",
                  "avg pool (GiB)"});
    t.addRow({stats::Table::cellInt(finishedCount()),
              stats::Table::cellInt(failedCount()),
              stats::Table::cellInt(rejectedCount()),
              stats::Table::cell(toMs(makespan), 1),
              stats::Table::cell(toMs(meanJct()), 1),
              stats::Table::cell(toMs(p95Jct()), 1),
              stats::Table::cell(toMs(p99Jct()), 1),
              stats::Table::cell(toMs(meanQueueingDelay()), 1),
              stats::Table::cell(toMs(p99QueueingDelay()), 1),
              stats::Table::cellInt(peakJobsInFlight),
              stats::Table::cell(avgJobsInFlight, 2),
              stats::Table::cell(toGiB(poolPeakBytes), 2),
              stats::Table::cell(toGiB(poolAvgBytes), 2)});
    return t;
}

} // namespace vdnn::serve
