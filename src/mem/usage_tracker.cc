#include "mem/usage_tracker.hh"

#include "common/logging.hh"

#include <cmath>

namespace vdnn::mem
{

UsageTracker::UsageTracker(std::function<TimeNs()> clock_,
                           bool keep_timeline)
    : clock(std::move(clock_)), tw(keep_timeline)
{
    VDNN_ASSERT(clock != nullptr, "usage tracker needs a clock");
}

void
UsageTracker::onUsage(Bytes current)
{
    tw.record(clock(), double(current));
}

void
UsageTracker::finish()
{
    tw.finish(clock());
}

Bytes
UsageTracker::peakBytes() const
{
    return Bytes(std::llround(tw.peak()));
}

Bytes
UsageTracker::averageBytes() const
{
    return Bytes(std::llround(tw.average()));
}

} // namespace vdnn::mem
