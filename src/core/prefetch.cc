#include "core/prefetch.hh"

#include "common/logging.hh"

#include <algorithm>

namespace vdnn::core
{

PrefetchCandidate
findPrefetchLayer(const net::Network &net, net::LayerId curr_layer,
                  PrefetchState &state, bool bounded,
                  const MemoryPlan *plan)
{
    VDNN_ASSERT(state.offloaded.size() == net.numBuffers() &&
                    state.prefetched.size() == net.numBuffers(),
                "prefetch state size mismatch");

    const auto &topo = net.topoOrder();
    int curr_idx = net.node(curr_layer).topoIndex;

    // Search all preceding layers, nearest first (Fig. 10 line 06).
    for (int idx = curr_idx - 1; idx >= 0; --idx) {
        net::LayerId id = topo[std::size_t(idx)];
        const net::LayerNode &n = net.node(id);

        // Gather this layer's input buffers that were offloaded and not
        // yet prefetched (Fig. 10 line 08).
        PrefetchCandidate cand;
        for (net::LayerId in_id : n.inputs) {
            net::BufferId b = in_id == net::kInputLayer
                                  ? net.inputBuffer()
                                  : net.node(in_id).yBuffer;
            if (plan && plan->directive(b).prefetchPriority < 0)
                continue; // hinted out of overlapped prefetching
            if (state.offloaded[std::size_t(b)] &&
                !state.prefetched[std::size_t(b)]) {
                if (std::find(cand.buffers.begin(), cand.buffers.end(),
                              b) == cand.buffers.end()) {
                    cand.buffers.push_back(b);
                }
            }
        }
        if (!cand.buffers.empty()) {
            // Issue order within the hit layer: descending priority
            // hint (stable, so equal priorities keep input order).
            if (plan) {
                std::stable_sort(
                    cand.buffers.begin(), cand.buffers.end(),
                    [&](net::BufferId a, net::BufferId b) {
                        return plan->directive(a).prefetchPriority >
                               plan->directive(b).prefetchPriority;
                    });
            }
            // Flag as being prefetched by the current layer (line 10).
            for (net::BufferId b : cand.buffers)
                state.prefetched[std::size_t(b)] = true;
            cand.layer = id;
            return cand;
        }

        // Reached the end of the search window without a candidate
        // (Fig. 10 line 14).
        if (bounded && n.spec.kind == dnn::LayerKind::Conv)
            return {};
    }
    return {};
}

} // namespace vdnn::core
