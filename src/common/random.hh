/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * A SplitMix64 generator: tiny state, excellent statistical quality for
 * the simulator's needs (synthetic jitter, property-test inputs), and —
 * unlike std::mt19937 + std::uniform_* — bit-identical results across
 * standard library implementations, which keeps experiment outputs
 * reproducible everywhere.
 */

#ifndef VDNN_COMMON_RANDOM_HH
#define VDNN_COMMON_RANDOM_HH

#include <cstdint>

namespace vdnn
{

class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [lo, hi] (inclusive); requires lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Reset to a new seed. */
    void reseed(std::uint64_t seed) { state = seed; }

  private:
    std::uint64_t state;
};

} // namespace vdnn

#endif // VDNN_COMMON_RANDOM_HH
