/**
 * @file
 * Multi-tenant serving demo: pack a queue of VGG-16 training jobs
 * onto one simulated 12 GB Titan X and compare scheduling/memory
 * policies.
 *
 * The status quo (FIFO-exclusive, baseline allocator) runs one job at
 * a time with head-of-line blocking. vDNN's reduced residency lets
 * the round-robin scheduler admit several tenants at once: queueing
 * delay collapses and short jobs stop waiting behind long ones.
 *
 * The final configuration demos mixed-priority arrivals under
 * SchedPolicy::PreemptivePriority: every third job is submitted as
 * high priority, runs ahead of the low-priority mix, and preempts
 * incumbents (suspend -> evict -> resume) when admission is tight —
 * watch the `prio`/`preempt` columns and the high-priority JCTs.
 *
 * With `--devices N` (N >= 2) the same workload is served by an
 * N-device cluster instead: round-robin packing per device, jobs
 * routed by the three placement policies, and — for the final
 * configuration — the periodic rebalance sweep migrating tenants off
 * the most-loaded device (watch the `dev` column and the per-device
 * table's `migr in`/`migr out`).
 *
 * Usage: serve_cluster [njobs] [batch] [--devices N]
 */

#include "common/logging.hh"
#include "common/random.hh"
#include "common/units.hh"
#include "core/planner.hh"
#include "net/builders.hh"
#include "serve/arrival.hh"
#include "serve/scheduler.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>

using namespace vdnn;
using namespace vdnn::serve;

namespace
{

using PlannerFactory = std::function<std::shared_ptr<core::Planner>()>;

PlannerFactory
baselineM()
{
    return [] {
        return std::make_shared<core::BaselinePlanner>(
            core::AlgoPreference::MemoryOptimal);
    };
}

PlannerFactory
offloadAllM()
{
    return [] {
        return std::make_shared<core::OffloadAllPlanner>(
            core::AlgoPreference::MemoryOptimal);
    };
}

ServeReport
runCluster(const std::shared_ptr<const net::Network> &network,
           int njobs, SchedPolicy sched, const PlannerFactory &planner,
           bool mixed_priorities = false)
{
    SchedulerConfig cfg;
    cfg.policy = sched;

    Scheduler scheduler(cfg);

    // The same deterministic workload for every configuration:
    // Poisson arrivals (2 jobs/s) and budgets mixing short fine-tune
    // jobs with longer training runs. In the mixed-priority demo
    // every third job is urgent.
    SplitMix64 rng(42);
    std::vector<TimeNs> arrivals = poissonArrivals(njobs, 2.0, rng);
    for (int i = 0; i < njobs; ++i) {
        JobSpec spec;
        bool urgent = mixed_priorities && i % 3 == 2;
        spec.name = strFormat(urgent ? "urgent-%d" : "vgg16-%d", i);
        spec.network = network;
        spec.planner = planner();
        spec.priority = urgent ? 10 : 0;
        spec.arrival = arrivals[std::size_t(i)];
        spec.iterations = int(1 + rng.nextRange(1, 7));
        scheduler.submit(std::move(spec));
    }
    return scheduler.run();
}

ServeReport
runMultiDevice(const std::shared_ptr<const net::Network> &network,
               int njobs, int ndev,
               std::shared_ptr<PlacementPolicy> placement,
               const PlannerFactory &planner, bool rebalance)
{
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.devices.assign(std::size_t(ndev), cfg.gpu);
    cfg.placement = std::move(placement);
    if (rebalance) {
        cfg.rebalancePeriod = 100 * kNsPerMs;
        cfg.rebalanceThreshold = 2;
    }
    Scheduler scheduler(cfg);

    SplitMix64 rng(42);
    std::vector<TimeNs> arrivals = poissonArrivals(njobs, 2.0, rng);
    for (int i = 0; i < njobs; ++i) {
        JobSpec spec;
        spec.name = strFormat("vgg16-%d", i);
        spec.network = network;
        spec.planner = planner();
        spec.arrival = arrivals[std::size_t(i)];
        spec.iterations = int(1 + rng.nextRange(1, 7));
        scheduler.submit(std::move(spec));
    }
    return scheduler.run();
}

int
mainMultiDevice(int njobs, std::int64_t batch, int ndev)
{
    std::shared_ptr<const net::Network> network =
        net::buildVgg16(batch);
    std::printf("workload: %d x %s training jobs, Poisson arrivals, "
                "served by %d devices\n\n",
                njobs, network->name().c_str(), ndev);

    struct Config
    {
        const char *label;
        std::shared_ptr<PlacementPolicy> placement;
        bool rebalance;
    };
    const Config configs[] = {
        {"best-fit placement (static)",
         std::make_shared<BestFitPlacement>(), false},
        {"round-robin placement (static)",
         std::make_shared<RoundRobinPlacement>(), false},
        {"load-balance placement (static)",
         std::make_shared<LoadBalancePlacement>(), false},
        {"load-balance placement + rebalance migration",
         std::make_shared<LoadBalancePlacement>(), true},
    };
    for (const Config &c : configs) {
        ServeReport rep = runMultiDevice(network, njobs, ndev,
                                         c.placement, offloadAllM(),
                                         c.rebalance);
        std::printf("=== %s ===\n", c.label);
        rep.summaryTable().print();
        rep.deviceTable().print();
        rep.jobTable().print();
        std::printf("aggregate throughput %.2f iters/s\n\n",
                    rep.aggregateThroughput());
    }
    std::printf("placement chooses the device, the rebalance sweep\n"
                "corrects it: migrations (suspend -> evict-to-host ->\n"
                "re-plan and resume on the target) drain hot devices\n"
                "while tenants keep their training state.\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    int njobs = 8;
    std::int64_t batch = 64;
    int ndev = 1;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--devices") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--devices needs a device count\n");
                return 1;
            }
            ndev = std::atoi(argv[++i]);
        } else if (positional == 0) {
            njobs = std::atoi(argv[i]);
            ++positional;
        } else if (positional == 1) {
            batch = std::atoll(argv[i]);
            ++positional;
        }
    }
    if (ndev > 1)
        return mainMultiDevice(njobs, batch, ndev);

    std::shared_ptr<const net::Network> network =
        net::buildVgg16(batch);
    std::printf("workload: %d x %s training jobs, Poisson arrivals, "
                "mixed iteration budgets\n\n",
                njobs, network->name().c_str());

    struct Config
    {
        const char *label;
        SchedPolicy sched;
        PlannerFactory planner;
        bool mixedPriorities;
    };
    const Config configs[] = {
        {"fifo-exclusive + baseline", SchedPolicy::FifoExclusive,
         baselineM(), false},
        {"round-robin + baseline", SchedPolicy::RoundRobin,
         baselineM(), false},
        {"fifo-exclusive + vDNN_all", SchedPolicy::FifoExclusive,
         offloadAllM(), false},
        {"round-robin + vDNN_all", SchedPolicy::RoundRobin,
         offloadAllM(), false},
        {"shortest-remaining + vDNN_all", SchedPolicy::ShortestRemaining,
         offloadAllM(), false},
        {"preemptive-priority + baseline, mixed priorities",
         SchedPolicy::PreemptivePriority, baselineM(), true},
        {"preemptive-priority + vDNN_all, mixed priorities",
         SchedPolicy::PreemptivePriority, offloadAllM(), true},
    };

    for (const Config &c : configs) {
        ServeReport rep = runCluster(network, njobs, c.sched,
                                     c.planner, c.mixedPriorities);
        std::printf("=== %s ===\n", c.label);
        rep.summaryTable().print();
        rep.jobTable().print();
        if (c.mixedPriorities) {
            std::printf("high-priority mean JCT %.1f ms vs "
                        "low-priority %.1f ms\n",
                        toMs(rep.meanJctAtPriority(10)),
                        toMs(rep.meanJctAtPriority(0)));
        }
        std::printf("\n");
    }

    std::printf("vDNN virtualization turns freed memory into tenancy:\n"
                "the round-robin + vDNN_all configuration packs several\n"
                "jobs onto the device, eliminating queueing delay;\n"
                "preemptive-priority additionally keeps urgent jobs\n"
                "ahead of the mix by suspending and evicting incumbents\n"
                "through the session lifecycle state machine.\n");
    return 0;
}
