/**
 * @file
 * One simulated GPU: streams, events, kernels and async copies.
 *
 * This is the substrate vDNN is built on. It reproduces the CUDA
 * execution semantics the paper relies on (Section III-B):
 *
 *  - streams are FIFO command queues; commands on the same stream
 *    execute strictly in order;
 *  - commands on different streams may overlap, subject to engine
 *    availability: one compute engine (the GPU processes a single
 *    layer's kernel at a time, Section II-B) and two DMA copy engines
 *    (one per direction, as on Titan X);
 *  - cudaEvent-style record/wait provides cross-stream ordering;
 *  - synchronize() blocks the (simulated) host until a stream drains.
 *
 * Time is advanced by a discrete-event queue; the host runs at
 * synchronization boundaries, exactly like a real CUDA host thread that
 * enqueues asynchronous work and blocks on cudaStreamSynchronize().
 * A Device either owns its clock (the classic single-GPU `Runtime`
 * mode) or shares one with the other devices of a `Cluster`
 * (gpu/cluster.hh), so kernels and DMAs on different devices of one
 * node overlap in simulated time while each device keeps its own
 * engines, PCIe link, fair-share arbiters and power model.
 *
 * A simple DRAM contention model stretches kernels whose bandwidth
 * demand cannot be met while a DMA copy is stealing PCIe-rate bandwidth
 * (the paper bounds this interference at 16/336 = 4.7%, Section V-B).
 */

#ifndef VDNN_GPU_DEVICE_HH
#define VDNN_GPU_DEVICE_HH

#include "common/types.hh"
#include "gpu/gpu_spec.hh"
#include "gpu/power_model.hh"
#include "interconnect/arbiter.hh"
#include "interconnect/pcie_link.hh"
#include "obs/telemetry.hh"
#include "sim/event_queue.hh"

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace vdnn::gpu
{

using StreamId = int;
using CudaEventId = std::int64_t;

/** Direction of a DMA transfer. */
enum class CopyDir : std::uint8_t { HostToDevice, DeviceToHost };

/** Description of a kernel launch (latency precomputed by the caller). */
struct KernelDesc
{
    std::string name;
    /** Execution time with exclusive use of the device. */
    TimeNs duration = 1;
    /** Total floating point work, for power accounting. */
    Flops flops = 0.0;
    /** DRAM traffic generated, for bandwidth/contention accounting. */
    Bytes dramBytes = 0;
};

/** Completed-kernel record (enable via setKernelLog()). */
struct KernelRecord
{
    std::string name;
    TimeNs start = 0;
    TimeNs end = 0;
    Flops flops = 0.0;
    Bytes dramBytes = 0;
    /** Tenant of the launching stream (multi-tenant timelines). */
    int client = 0;

    TimeNs duration() const { return end - start; }
    /** Achieved DRAM bandwidth, bytes/s. */
    double dramBandwidth() const;
};

/** Completed-copy record. */
struct CopyRecord
{
    std::string tag;
    TimeNs start = 0;
    TimeNs end = 0;
    Bytes bytes = 0;
    CopyDir dir = CopyDir::HostToDevice;
    /** Tenant of the issuing stream (multi-tenant timelines). */
    int client = 0;
};

class Device
{
  public:
    /**
     * Self-clocked device: owns a private event queue. This is the
     * classic single-GPU `Runtime` construction — every existing
     * single-device call site builds exactly this.
     * @param spec device model
     * @param enable_contention stretch kernels that compete with DMA
     *        traffic for DRAM bandwidth (ablation toggle)
     */
    explicit Device(GpuSpec spec, bool enable_contention = true);

    /**
     * Cluster member: device @p id of a multi-GPU node, sharing
     * @p clock with its siblings so cross-device work interleaves on
     * one simulated timeline. @p clock must outlive the device.
     */
    Device(int id, GpuSpec spec, sim::EventQueue &clock,
           bool enable_contention = true);

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /** Index of this device within its cluster (0 when self-clocked). */
    int deviceId() const { return devId; }

    // --- stream / event management -------------------------------------
    StreamId createStream(const std::string &name);
    CudaEventId createEvent();

    /**
     * Attach a stream to a tenant for per-client accounting and PCIe
     * fair-share arbitration. @p weight is the tenant's share of the
     * link when several tenants' DMAs are queued on the same copy
     * engine. Streams default to client 0, weight 1 (exclusive mode).
     */
    void setStreamClient(StreamId stream, int client,
                         double weight = 1.0);

    /** Tenant a stream is attached to (0 unless set). */
    int streamClient(StreamId stream) const;

    // --- asynchronous command submission --------------------------------
    /** Enqueue a kernel on @p stream. */
    void launchKernel(StreamId stream, KernelDesc desc);

    /** Enqueue an async DMA of @p bytes on @p stream. */
    void memcpyAsync(StreamId stream, Bytes bytes, CopyDir dir,
                     const std::string &tag = "");

    /** Enqueue an event record; fires when prior commands complete. */
    void recordEvent(StreamId stream, CudaEventId event);

    /** Enqueue a wait: later commands stall until @p event fires. */
    void streamWaitEvent(StreamId stream, CudaEventId event);

    // --- host-side synchronization ---------------------------------------
    /** Block the host until @p stream drains (advances simulated time). */
    void synchronize(StreamId stream);

    /** Block the host until every stream of this device drains. */
    void deviceSynchronize();

    /** True when @p stream has no pending or executing commands. */
    bool streamIdle(StreamId stream) const;

    /** True when the event has fired. */
    bool eventFired(CudaEventId event) const;

    // --- time and statistics ---------------------------------------------
    /** Current simulated time (the host clock). */
    TimeNs now() const { return eq.now(); }

    /**
     * Advance the host clock to absolute time @p t, executing any
     * device work scheduled before it (no-op when already past @p t).
     * Models a host thread sleeping until, e.g., the next job arrival
     * in a serving scenario. On a shared cluster clock this advances
     * every sibling device too.
     */
    void advanceTo(TimeNs t) { eq.runUntil(t); }

    /**
     * Execute the single next pending device event, advancing the
     * host clock to it. Lets an external scheduler make minimal time
     * progress while every tenant's stepper is blocked on in-flight
     * device work, instead of committing the host to one stream's
     * full drain. @return false when no event is pending.
     */
    bool stepDevice() { return eq.step(); }

    /** The event queue driving this device (the cluster's when shared). */
    sim::EventQueue &clock() { return eq; }

    PowerModel &power() { return powerModel; }
    const PowerModel &power() const { return powerModel; }

    /** Total bytes copied in @p dir so far. */
    Bytes bytesCopied(CopyDir dir) const;

    /** Bytes copied in @p dir so far on @p client's streams. */
    Bytes bytesCopiedByClient(CopyDir dir, int client) const;

    /** The fair-share arbiter granting the @p dir copy engine. */
    const ic::FairShareArbiter &pcieArbiter(CopyDir dir) const;

    /** Cumulative busy time of the compute engine. */
    TimeNs computeBusyTime() const { return computeBusy; }

    /** Cumulative busy time of the copy engine for @p dir. */
    TimeNs copyBusyTime(CopyDir dir) const;

    /** Enable/disable retention of per-kernel and per-copy records. */
    void setKernelLog(bool enabled) { keepLog = enabled; }

    /**
     * Completion wake hook: invoked every time this device executes a
     * scheduled event (kernel retirement or DMA completion), after the
     * completion is fully processed — dependent commands dispatched,
     * waiting streams released, cudaEvents fired. A stepper blocks
     * only on its own device's streams, and streams drain only
     * through these two completion paths, so an external serve loop
     * that wakes exactly the hooked device on each call never misses
     * an unblock — it drains woken devices instead of polling all of
     * them per event. `client` is the owner of the completing stream
     * (setStreamClient), so a multi-tenant loop can further narrow the
     * wake to the one tenant whose stepper the completion could have
     * unblocked. Plain function pointer + context: the unset case
     * (every classic single-Runtime user) costs one branch.
     */
    using WakeHook = void (*)(void *ctx, int device, int client);
    void setWakeHook(WakeHook hook, void *ctx)
    {
        wakeHook = hook;
        wakeCtx = ctx;
    }

    /**
     * Attach telemetry sinks (null members = off). Kernel and DMA
     * completions become trace spans (pid = device id, tid = tenant),
     * arbiter grants become instant events, and per-device counters
     * are registered with the metrics registry.
     */
    void setTelemetry(obs::Telemetry t);

    /** The attached sinks (members null when telemetry is off). */
    const obs::Telemetry &telemetry() const { return tele; }

    const std::vector<KernelRecord> &kernelLog() const { return kLog; }
    const std::vector<CopyRecord> &copyLog() const { return cLog; }

    const GpuSpec &spec() const { return gpuSpec; }

    /** Close the power observation window at the current time. */
    void finishPowerWindow() { powerModel.finish(now()); }

  private:
    struct Command
    {
        enum class Type : std::uint8_t { Kernel, Copy, EventRecord, EventWait };
        Type type;
        KernelDesc kernel;   // Type::Kernel
        Bytes bytes = 0;     // Type::Copy
        CopyDir dir = CopyDir::HostToDevice;
        std::string tag;     // Type::Copy
        CudaEventId event = -1; // EventRecord / EventWait
    };

    struct Stream
    {
        std::string name;
        std::deque<Command> queue;
        /** Head command handed to an engine and executing. */
        bool headDispatched = false;
        /** Head is an EventWait blocked on an unfired event. */
        bool waiting = false;
        /** Owning tenant (per-client accounting, PCIe arbitration). */
        int client = 0;
    };

    struct EventState
    {
        bool fired = false;
        TimeNs fireTime = kTimeNone;
        std::vector<StreamId> waiters;
    };

    /** One-kernel-at-a-time compute engine with contention stretching. */
    struct ComputeEngine
    {
        bool busy = false;
        StreamId stream = -1;
        KernelDesc desc;
        TimeNs start = 0;
        /** Unfinished work measured in ns of exclusive-device time. */
        double remainingBase = 0.0;
        TimeNs lastUpdate = 0;
        double rate = 1.0;
        sim::EventId completion = 0;
        std::vector<StreamId> waitQueue;
    };

    /** Single-transfer DMA engine. */
    struct CopyEngine
    {
        bool busy = false;
        StreamId stream = -1;
        Command cmd;
        TimeNs start = 0;
        std::vector<StreamId> waitQueue;
    };

    void tryDispatch(StreamId sid);
    void dispatchHead(StreamId sid);
    void commandDone(StreamId sid);
    void fireEvent(CudaEventId event);

    void computeTryStart();
    void computeFinish();
    double computeRate() const;
    void refreshComputeSchedule();

    CopyEngine &engineFor(CopyDir dir);
    const CopyEngine &engineFor(CopyDir dir) const;
    ic::FairShareArbiter &arbiterFor(CopyDir dir);
    void copyTryStart(CopyDir dir);
    void copyFinish(CopyDir dir);

    double kernelComputeUtil(const KernelDesc &desc) const;
    double kernelDramUtil(const KernelDesc &desc) const;
    double kernelDemandBw(const KernelDesc &desc) const;

    GpuSpec gpuSpec;
    bool contention;
    int devId = 0;
    /** The private clock of a self-clocked (single-GPU) device. */
    std::unique_ptr<sim::EventQueue> ownedEq;
    sim::EventQueue &eq;
    ic::PcieLink pcie;
    PowerModel powerModel;

    std::vector<Stream> streams;
    std::unordered_map<CudaEventId, EventState> events;
    CudaEventId nextEvent = 1;

    ComputeEngine compute;
    CopyEngine copyD2H;
    CopyEngine copyH2D;
    ic::FairShareArbiter arbD2H;
    ic::FairShareArbiter arbH2D;

    Bytes copiedD2H = 0;
    Bytes copiedH2D = 0;
    // Indexed by client id (small dense tenant ids): copy completion
    // accounting is an indexed increment, not a hash insert.
    std::vector<Bytes> copiedByClientD2H;
    std::vector<Bytes> copiedByClientH2D;
    TimeNs computeBusy = 0;
    TimeNs copyBusyD2H = 0;
    TimeNs copyBusyH2D = 0;

    bool keepLog = false;
    std::vector<KernelRecord> kLog;
    std::vector<CopyRecord> cLog;

    WakeHook wakeHook = nullptr;
    void *wakeCtx = nullptr;

    obs::Telemetry tele;
    /** Cached registry slots so the hot path is one null check. */
    obs::Counter *ctrKernels = nullptr;
    obs::Counter *ctrDmaD2H = nullptr;
    obs::Counter *ctrDmaH2D = nullptr;
    obs::Counter *ctrArbGrants = nullptr;
};

} // namespace vdnn::gpu

#endif // VDNN_GPU_DEVICE_HH
