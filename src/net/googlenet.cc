/**
 * @file
 * GoogLeNet v1 builder (Szegedy et al. [17]).
 *
 * The inception modules are the paper's example of non-linear topology
 * (Figure 3): each module forks its input into four branches whose
 * outputs join in a channel concatenation, so vDNN's refcount rule
 * (offload/release only by the last consumer) is exercised for real.
 * Auxiliary classifier heads are omitted, as in the convnet-benchmarks
 * training configuration the paper uses.
 */

#include "net/builders.hh"

#include "common/logging.hh"

#include <iterator>

namespace vdnn::net
{

using namespace vdnn::dnn;

namespace
{

struct InceptionSpec
{
    std::int64_t p1x1;    ///< branch 1: 1x1 channels
    std::int64_t p3x3red; ///< branch 2: 1x1 reduce channels
    std::int64_t p3x3;    ///< branch 2: 3x3 channels
    std::int64_t p5x5red; ///< branch 3: 1x1 reduce channels
    std::int64_t p5x5;    ///< branch 3: 5x5 channels
    std::int64_t pproj;   ///< branch 4: pool projection channels
};

/** conv + relu; returns the relu layer id (the branch output). */
LayerId
convRelu(Network &net, const std::string &name, LayerId input,
         const TensorShape &x, std::int64_t k, int kernel, int stride,
         int pad)
{
    ConvParams p;
    p.outChannels = k;
    p.kernelH = p.kernelW = kernel;
    p.strideH = p.strideW = stride;
    p.padH = p.padW = pad;
    LayerId conv = net.addLayer(makeConv(name, x, p), {input});
    return net.addLayer(
        makeActivation("relu_" + name, net.node(conv).spec.out), {conv});
}

/** Build one inception module; returns the concat layer id. */
LayerId
inception(Network &net, const std::string &name, LayerId input,
          const InceptionSpec &s)
{
    const TensorShape x = input == kInputLayer ? net.inputShape()
                                               : net.node(input).spec.out;

    // Branch 1: 1x1 conv.
    LayerId b1 = convRelu(net, name + "/1x1", input, x, s.p1x1, 1, 1, 0);

    // Branch 2: 1x1 reduce -> 3x3.
    LayerId b2r =
        convRelu(net, name + "/3x3_reduce", input, x, s.p3x3red, 1, 1, 0);
    LayerId b2 = convRelu(net, name + "/3x3", b2r, net.node(b2r).spec.out,
                          s.p3x3, 3, 1, 1);

    // Branch 3: 1x1 reduce -> 5x5.
    LayerId b3r =
        convRelu(net, name + "/5x5_reduce", input, x, s.p5x5red, 1, 1, 0);
    LayerId b3 = convRelu(net, name + "/5x5", b3r, net.node(b3r).spec.out,
                          s.p5x5, 5, 1, 2);

    // Branch 4: 3x3/1 max pool -> 1x1 projection.
    PoolParams pp;
    pp.windowH = pp.windowW = 3;
    pp.strideH = pp.strideW = 1;
    pp.padH = pp.padW = 1;
    LayerId b4p = net.addLayer(makePool(name + "/pool", x, pp), {input});
    LayerId b4 = convRelu(net, name + "/pool_proj", b4p,
                          net.node(b4p).spec.out, s.pproj, 1, 1, 0);

    std::vector<TensorShape> shapes = {
        net.node(b1).spec.out, net.node(b2).spec.out,
        net.node(b3).spec.out, net.node(b4).spec.out};
    return net.addLayer(makeConcat(name + "/concat", shapes),
                        {b1, b2, b3, b4});
}

} // namespace

std::unique_ptr<Network>
buildGoogLeNet(std::int64_t batch)
{
    VDNN_ASSERT(batch > 0, "batch must be positive");
    TensorShape in{batch, 3, 224, 224};
    auto net = std::make_unique<Network>(
        strFormat("GoogLeNet (%lld)", (long long)batch), in);

    auto shape = [&]() {
        return net->node(LayerId(net->numLayers() - 1)).spec.out;
    };
    auto last = [&]() { return LayerId(net->numLayers() - 1); };
    auto maxpool = [&](const std::string &name, int window, int stride,
                       int pad) {
        PoolParams p;
        p.windowH = p.windowW = window;
        p.strideH = p.strideW = stride;
        p.padH = p.padW = pad;
        net->append(makePool(name, shape(), p));
    };

    // Stem.
    convRelu(*net, "conv1/7x7_s2", kInputLayer, in, 64, 7, 2, 3);
    maxpool("pool1/3x3_s2", 3, 2, 0);
    net->append(makeLrn("pool1/norm1", shape()));
    convRelu(*net, "conv2/3x3_reduce", last(), shape(), 64, 1, 1, 0);
    convRelu(*net, "conv2/3x3", last(), shape(), 192, 3, 1, 1);
    net->append(makeLrn("conv2/norm2", shape()));
    maxpool("pool2/3x3_s2", 3, 2, 0);

    // Inception 3a/3b (28x28).
    LayerId l = inception(*net, "inception_3a", last(),
                          {64, 96, 128, 16, 32, 32});
    l = inception(*net, "inception_3b", l, {128, 128, 192, 32, 96, 64});
    maxpool("pool3/3x3_s2", 3, 2, 0);

    // Inception 4a-4e (14x14).
    l = inception(*net, "inception_4a", last(),
                  {192, 96, 208, 16, 48, 64});
    l = inception(*net, "inception_4b", l, {160, 112, 224, 24, 64, 64});
    l = inception(*net, "inception_4c", l, {128, 128, 256, 24, 64, 64});
    l = inception(*net, "inception_4d", l, {112, 144, 288, 32, 64, 64});
    l = inception(*net, "inception_4e", l, {256, 160, 320, 32, 128, 128});
    maxpool("pool4/3x3_s2", 3, 2, 0);

    // Inception 5a/5b (7x7).
    l = inception(*net, "inception_5a", last(),
                  {256, 160, 320, 32, 128, 128});
    l = inception(*net, "inception_5b", l, {384, 192, 384, 48, 128, 128});

    // Classifier: global average pool, dropout, FC, loss.
    PoolParams avg;
    avg.mode = PoolParams::Mode::Avg;
    avg.windowH = avg.windowW = 7;
    avg.strideH = avg.strideW = 1;
    net->addLayer(makePool("pool5/7x7_s1", net->node(l).spec.out, avg),
                  {l});
    net->append(makeDropout("pool5/drop", shape(), 0.4));
    net->append(makeFc("loss3/classifier", shape(), FcParams{1000}));
    net->append(makeSoftmaxLoss("loss", shape()));

    net->finalize();
    return net;
}

std::vector<BenchmarkNet>
conventionalSuite()
{
    return {
        {"AlexNet (128)", [] { return buildAlexNet(128); }},
        {"OverFeat (128)", [] { return buildOverFeat(128); }},
        {"GoogLeNet (128)", [] { return buildGoogLeNet(128); }},
        {"VGG-16 (64)", [] { return buildVgg16(64); }},
        {"VGG-16 (128)", [] { return buildVgg16(128); }},
        {"VGG-16 (256)", [] { return buildVgg16(256); }},
    };
}

std::vector<BenchmarkNet>
veryDeepSuite()
{
    return {
        {"VGG-116 (32)", [] { return buildVggDeep(116, 32); }},
        {"VGG-216 (32)", [] { return buildVggDeep(216, 32); }},
        {"VGG-316 (32)", [] { return buildVggDeep(316, 32); }},
        {"VGG-416 (32)", [] { return buildVggDeep(416, 32); }},
    };
}

std::vector<BenchmarkNet>
fullSuite()
{
    std::vector<BenchmarkNet> all = conventionalSuite();
    std::vector<BenchmarkNet> deep = veryDeepSuite();
    all.insert(all.end(), std::make_move_iterator(deep.begin()),
               std::make_move_iterator(deep.end()));
    return all;
}

} // namespace vdnn::net
