#include "obs/trace.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace vdnn::obs
{

void
TraceRecorder::complete(int pid, int tid, const char *cat, std::string name,
                        TimeNs start, TimeNs end, std::string args)
{
    if (!on)
        return;
    buf.push_back(TraceEvent{'X', cat, std::move(name), start, end - start,
                             pid, tid, 0, std::move(args)});
}

void
TraceRecorder::instant(int pid, int tid, const char *cat, std::string name,
                       TimeNs ts, std::string args)
{
    if (!on)
        return;
    buf.push_back(TraceEvent{'i', cat, std::move(name), ts, 0, pid, tid, 0,
                             std::move(args)});
}

std::uint64_t
TraceRecorder::flowStart(int pid, int tid, const char *cat, std::string name,
                         TimeNs ts)
{
    if (!on)
        return 0;
    std::uint64_t id = nextFlowId++;
    buf.push_back(
        TraceEvent{'s', cat, std::move(name), ts, 0, pid, tid, id, ""});
    return id;
}

void
TraceRecorder::flowEnd(std::uint64_t id, int pid, int tid, const char *cat,
                       std::string name, TimeNs ts)
{
    if (!on || id == 0)
        return;
    buf.push_back(
        TraceEvent{'f', cat, std::move(name), ts, 0, pid, tid, id, ""});
}

void
TraceRecorder::setProcessName(int pid, std::string name)
{
    if (!on)
        return;
    processNames[pid] = std::move(name);
}

void
TraceRecorder::setThreadName(int pid, int tid, std::string name)
{
    if (!on)
        return;
    threadNames[{pid, tid}] = std::move(name);
}

void
TraceRecorder::clear()
{
    buf.clear();
    processNames.clear();
    threadNames.clear();
    nextFlowId = 1;
}

namespace
{

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
void
escapeTo(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                os << hex;
            } else {
                os << c;
            }
        }
    }
}

/** Trace timestamps are microseconds; the sim clock is nanoseconds. */
void
writeUs(std::ostream &os, TimeNs ns)
{
    char out[32];
    std::snprintf(out, sizeof(out), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    os << out;
}

} // namespace

void
TraceRecorder::writeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (const auto &[pid, name] : processNames) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":0"
           << ",\"name\":\"process_name\",\"args\":{\"name\":\"";
        escapeTo(os, name);
        os << "\"}}";
    }
    for (const auto &[key, name] : threadNames) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << key.first
           << ",\"tid\":" << key.second
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        escapeTo(os, name);
        os << "\"}}";
    }
    for (const auto &e : buf) {
        sep();
        os << "{\"ph\":\"" << e.phase << "\",\"cat\":\"" << e.cat
           << "\",\"name\":\"";
        escapeTo(os, e.name);
        os << "\",\"ts\":";
        writeUs(os, e.ts);
        if (e.phase == 'X') {
            os << ",\"dur\":";
            writeUs(os, e.dur);
        }
        os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
        if (e.phase == 's' || e.phase == 'f') {
            os << ",\"id\":" << e.flowId;
            if (e.phase == 'f')
                os << ",\"bp\":\"e\"";
        }
        if (e.phase == 'i')
            os << ",\"s\":\"t\"";
        if (!e.args.empty())
            os << ",\"args\":" << e.args;
        os << "}";
    }
    os << "]}\n";
}

bool
TraceRecorder::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeJson(os);
    return bool(os);
}

} // namespace vdnn::obs
