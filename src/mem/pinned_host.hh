/**
 * @file
 * Pinned (page-locked) host memory allocator.
 *
 * vDNN offload targets host memory allocated with cudaMallocHost():
 * pinned pages are required for async DMA. The model tracks the total
 * pinned footprint against the host DRAM capacity (64 GB DDR4 in the
 * paper's node) — Fig. 15 reports exactly this CPU-side allocation.
 */

#ifndef VDNN_MEM_PINNED_HOST_HH
#define VDNN_MEM_PINNED_HOST_HH

#include "common/types.hh"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

namespace vdnn::mem
{

/** Handle to a pinned host buffer. */
struct HostAllocation
{
    std::int64_t id = -1;
    Bytes size = 0;

    bool valid() const { return id >= 0; }
};

class PinnedHostAllocator
{
  public:
    explicit PinnedHostAllocator(Bytes capacity);

    /** cudaMallocHost(); fails when host DRAM would be exhausted. */
    std::optional<HostAllocation> tryAllocate(Bytes size,
                                              const std::string &tag = "");

    /** tryAllocate() that treats failure as a fatal user error. */
    HostAllocation allocate(Bytes size, const std::string &tag = "");

    /** cudaFreeHost(). */
    void release(const HostAllocation &alloc);

    /** Free all buffers (between experiments). */
    void releaseAll();

    Bytes capacity() const { return cap; }
    Bytes usedBytes() const { return used; }
    Bytes peakUsage() const { return peak; }
    /** Cumulative bytes ever pinned (Fig. 12's offload footprint). */
    Bytes totalAllocated() const { return totalAlloc; }
    std::size_t liveAllocations() const { return live.size(); }

  private:
    Bytes cap;
    Bytes used = 0;
    Bytes peak = 0;
    Bytes totalAlloc = 0;
    std::int64_t nextId = 1;
    std::unordered_map<std::int64_t, Bytes> live;
};

} // namespace vdnn::mem

#endif // VDNN_MEM_PINNED_HOST_HH
