/**
 * @file
 * Discrete-event simulation core.
 *
 * A minimal gem5-style event queue: events are (time, callback) pairs
 * executed in non-decreasing time order; ties are broken by insertion
 * order so simulations are fully deterministic. The queue owns the
 * simulated clock — curTick() only advances when events execute.
 */

#ifndef VDNN_SIM_EVENT_QUEUE_HH
#define VDNN_SIM_EVENT_QUEUE_HH

#include "common/types.hh"

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace vdnn::sim
{

/** Identifier of a scheduled event (usable for cancellation). */
using EventId = std::uint64_t;

class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @p when must not be in the past.
     * @return an id that can later be passed to deschedule().
     */
    EventId schedule(TimeNs when, std::function<void()> fn);

    /** Schedule @p fn @p delay after the current time. */
    EventId scheduleAfter(TimeNs delay, std::function<void()> fn);

    /** Cancel a pending event; no-op if it already ran or was cancelled. */
    void deschedule(EventId id);

    /** Execute the single earliest pending event. @return false if none. */
    bool step();

    /** Run until the queue drains. @return number of events executed. */
    std::uint64_t run();

    /**
     * Run while events exist with time <= @p until, then set the clock to
     * @p until (if it is ahead). @return number of events executed.
     */
    std::uint64_t runUntil(TimeNs until);

    /** Current simulated time. */
    TimeNs now() const { return curTime; }

    /** True when no live events remain. */
    bool empty() const { return liveEvents == 0; }

    /** Number of live (non-cancelled, pending) events. */
    std::uint64_t pending() const { return liveEvents; }

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return numExecuted; }

  private:
    struct Entry
    {
        TimeNs when;
        EventId id;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id; // earlier insertion runs first
        }
    };

    /** Pop cancelled entries off the heap top. */
    void skipCancelled();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::vector<EventId> cancelled;
    TimeNs curTime = 0;
    EventId nextId = 1;
    std::uint64_t liveEvents = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace vdnn::sim

#endif // VDNN_SIM_EVENT_QUEUE_HH
