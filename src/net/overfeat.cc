/**
 * @file
 * OverFeat builder (fast model, Sermanet et al. [30], as configured in
 * the convnet-benchmarks reference models [41]).
 */

#include "net/builders.hh"

#include "common/logging.hh"

namespace vdnn::net
{

using namespace vdnn::dnn;

std::unique_ptr<Network>
buildOverFeat(std::int64_t batch)
{
    VDNN_ASSERT(batch > 0, "batch must be positive");
    TensorShape in{batch, 3, 231, 231};
    auto net = std::make_unique<Network>(
        strFormat("OverFeat (%lld)", (long long)batch), in);

    auto shape = [&]() {
        return net->node(LayerId(net->numLayers() - 1)).spec.out;
    };
    auto conv = [&](const std::string &name, const TensorShape &x,
                    std::int64_t k, int kernel, int stride, int pad) {
        ConvParams p;
        p.outChannels = k;
        p.kernelH = p.kernelW = kernel;
        p.strideH = p.strideW = stride;
        p.padH = p.padW = pad;
        net->append(makeConv(name, x, p));
        net->append(makeActivation("relu_" + name, shape()));
    };
    auto maxpool = [&](const std::string &name, int window, int stride) {
        PoolParams p;
        p.windowH = p.windowW = window;
        p.strideH = p.strideW = stride;
        net->append(makePool(name, shape(), p));
    };

    conv("conv1", in, 96, 11, 4, 0); // 231 -> 56
    maxpool("pool1", 2, 2);          // 56 -> 28
    conv("conv2", shape(), 256, 5, 1, 0); // 28 -> 24
    maxpool("pool2", 2, 2);               // 24 -> 12
    conv("conv3", shape(), 512, 3, 1, 1);
    conv("conv4", shape(), 1024, 3, 1, 1);
    conv("conv5", shape(), 1024, 3, 1, 1);
    maxpool("pool5", 2, 2); // 12 -> 6

    net->append(makeFc("fc6", shape(), FcParams{3072}));
    net->append(makeActivation("relu6", shape()));
    net->append(makeDropout("drop6", shape()));
    net->append(makeFc("fc7", shape(), FcParams{4096}));
    net->append(makeActivation("relu7", shape()));
    net->append(makeDropout("drop7", shape()));
    net->append(makeFc("fc8", shape(), FcParams{1000}));
    net->append(makeSoftmaxLoss("loss", shape()));

    net->finalize();
    return net;
}

} // namespace vdnn::net
