#include "core/policy.hh"

#include "common/logging.hh"
#include "core/dynamic_policy.hh"

namespace vdnn::core
{

const char *
transferPolicyName(TransferPolicy p)
{
    switch (p) {
      case TransferPolicy::Baseline:
        return "base";
      case TransferPolicy::OffloadAll:
        return "vDNN_all";
      case TransferPolicy::OffloadConv:
        return "vDNN_conv";
      case TransferPolicy::Dynamic:
        return "vDNN_dyn";
    }
    panic("unknown policy %d", int(p));
}

const char *
algoModeName(AlgoMode m)
{
    switch (m) {
      case AlgoMode::MemoryOptimal:
        return "(m)";
      case AlgoMode::PerformanceOptimal:
        return "(p)";
      case AlgoMode::PerLayer:
        return "(dyn)";
    }
    panic("unknown algo mode %d", int(m));
}

namespace
{

AlgoPreference
preferenceFor(AlgoMode mode)
{
    VDNN_ASSERT(mode != AlgoMode::PerLayer,
                "per-layer algo assignments are produced by "
                "DynamicPlanner, not a static planner");
    return mode == AlgoMode::MemoryOptimal
               ? AlgoPreference::MemoryOptimal
               : AlgoPreference::PerformanceOptimal;
}

} // namespace

std::unique_ptr<Planner>
plannerForPolicy(TransferPolicy policy, AlgoMode mode,
                 const ExecutorConfig &exec)
{
    if (policy == TransferPolicy::Dynamic)
        return std::make_unique<DynamicPlanner>(exec);
    AlgoPreference pref = preferenceFor(mode);
    switch (policy) {
      case TransferPolicy::Baseline:
        return std::make_unique<BaselinePlanner>(pref);
      case TransferPolicy::OffloadAll:
        return std::make_unique<OffloadAllPlanner>(pref);
      case TransferPolicy::OffloadConv:
        return std::make_unique<OffloadConvPlanner>(pref);
      case TransferPolicy::Dynamic:
        break;
    }
    panic("unknown policy %d", int(policy));
}

std::unique_ptr<Planner>
plannerForPolicy(TransferPolicy policy, AlgoMode mode)
{
    return plannerForPolicy(policy, mode, ExecutorConfig{});
}

MemoryPlan
makeStaticPlan(const net::Network &net, const dnn::CudnnSim &cudnn,
               TransferPolicy policy, AlgoMode mode)
{
    VDNN_ASSERT(policy != TransferPolicy::Dynamic,
                "dynamic plans are produced by DynamicPlanner");
    PlannerContext ctx = PlannerContext::exclusive(cudnn.spec());
    return plannerForPolicy(policy, mode)->plan(net, ctx);
}

} // namespace vdnn::core
