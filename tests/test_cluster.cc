/**
 * @file
 * Tests for the multi-device cluster: shared-clock device overlap,
 * per-device pools, placement policies, per-device admission ledgers,
 * cross-device tenant migration (byte-identity of the migrated
 * tenant's iterations), and the scheduler's rebalance sweep.
 */

#include "gpu/cluster.hh"

#include "common/units.hh"
#include "core/dynamic_policy.hh"
#include "core/planner.hh"
#include "core/training_session.hh"
#include "net/builders.hh"
#include "serve/placement.hh"
#include "serve/scheduler.hh"

#include <gtest/gtest.h>

#include <memory>

using namespace vdnn;
using namespace vdnn::core;
using namespace vdnn::serve;
using namespace vdnn::literals;

namespace
{

std::shared_ptr<const net::Network>
tinyNet(std::int64_t batch = 16)
{
    return net::buildTinyCnn(batch);
}

std::shared_ptr<core::Planner>
vdnnAll()
{
    return std::make_shared<OffloadAllPlanner>(
        AlgoPreference::MemoryOptimal);
}

JobSpec
makeJob(const std::shared_ptr<const net::Network> &network,
        std::shared_ptr<core::Planner> planner, TimeNs arrival,
        int iterations)
{
    JobSpec spec;
    spec.network = network;
    spec.planner = std::move(planner);
    spec.arrival = arrival;
    spec.iterations = iterations;
    return spec;
}

SharedGpu
tenantOn(gpu::Cluster &cluster, int device, int client)
{
    SharedGpu shared;
    shared.runtime = &cluster.device(device);
    shared.pool = &cluster.pool(device);
    shared.host = &cluster.host(device);
    shared.clientId = client;
    return shared;
}

/** The per-iteration fields migration byte-identity compares. */
void
expectIterationsIdentical(const IterationResult &a,
                          const IterationResult &b)
{
    EXPECT_EQ(a.makespan(), b.makespan());
    EXPECT_EQ(a.classifierTime, b.classifierTime);
    EXPECT_EQ(a.transferStallTime, b.transferStallTime);
    EXPECT_EQ(a.offloadedBytes, b.offloadedBytes);
    EXPECT_EQ(a.pcieBytes, b.pcieBytes);
    EXPECT_EQ(a.offloads, b.offloads);
    EXPECT_EQ(a.prefetches, b.prefetches);
    EXPECT_EQ(a.onDemandFetches, b.onDemandFetches);
}

} // namespace

// --- the cluster substrate ---------------------------------------------------

TEST(Cluster, DevicesOverlapOnOneSharedClock)
{
    gpu::Cluster cluster(
        gpu::homogeneousCluster(gpu::titanXMaxwell(), 2));
    ASSERT_EQ(cluster.deviceCount(), 2);
    EXPECT_EQ(cluster.device(0).deviceId(), 0);
    EXPECT_EQ(cluster.device(1).deviceId(), 1);

    // One 10 ms kernel per device, launched back to back from the
    // host: on a shared clock they execute concurrently, so the node
    // drains at ~10 ms, not 20 ms (the behavior two self-clocked
    // Runtimes could never exhibit on one timeline).
    gpu::StreamId s0 = cluster.device(0).createStream("d0");
    gpu::StreamId s1 = cluster.device(1).createStream("d1");
    cluster.device(0).launchKernel(s0, {"k0", 10_ms, 0.0, 0});
    cluster.device(1).launchKernel(s1, {"k1", 10_ms, 0.0, 0});
    cluster.device(0).synchronize(s0);
    cluster.device(1).synchronize(s1);
    EXPECT_EQ(cluster.now(), 10_ms);
    EXPECT_EQ(cluster.device(0).computeBusyTime(), 10_ms);
    EXPECT_EQ(cluster.device(1).computeBusyTime(), 10_ms);
}

TEST(Cluster, PerDevicePoolsAndHostsAreIndependent)
{
    gpu::GpuSpec big = gpu::titanXMaxwell();
    gpu::GpuSpec small = gpu::smallGpu4GiB();
    gpu::Cluster cluster(gpu::ClusterSpec{{big, small}, true});

    EXPECT_EQ(cluster.pool(0).capacity(), big.dramCapacity);
    EXPECT_EQ(cluster.pool(1).capacity(), small.dramCapacity);
    EXPECT_EQ(cluster.totalCapacity(),
              big.dramCapacity + small.dramCapacity);

    auto a = cluster.pool(0).allocate(1_GiB, "d0-only");
    EXPECT_EQ(cluster.pool(0).usedBytes(), 1_GiB);
    EXPECT_EQ(cluster.pool(1).usedBytes(), 0);
    cluster.pool(0).release(a);

    auto h = cluster.host(1).allocate(1_MiB, "d1-host");
    EXPECT_EQ(cluster.host(1).usedBytes(), 1_MiB);
    EXPECT_EQ(cluster.host(0).usedBytes(), 0);
    cluster.host(1).release(h);
}

// --- placement policies ------------------------------------------------------

TEST(Placement, BestFitPacksRoundRobinRotatesLoadBalanceSpreads)
{
    std::vector<DeviceLoad> loads(2);
    loads[0] = {0, 12_GiB, 4_GiB, 2, true};
    loads[1] = {1, 12_GiB, 1_GiB, 1, true};

    BestFitPlacement best;
    EXPECT_EQ(best.place(loads), 0); // least free bytes wins

    LoadBalancePlacement lb;
    EXPECT_EQ(lb.place(loads), 1); // fewest tenants wins

    RoundRobinPlacement rr;
    EXPECT_EQ(rr.place(loads), 0);
    EXPECT_EQ(rr.place(loads), 1);
    EXPECT_EQ(rr.place(loads), 0);

    // Unfit devices are never chosen; nothing fit -> defer.
    loads[0].fits = false;
    EXPECT_EQ(best.place(loads), 1);
    loads[1].fits = false;
    EXPECT_EQ(best.place(loads), -1);
    EXPECT_EQ(lb.place(loads), -1);
    EXPECT_EQ(rr.place(loads), -1);
}

// --- the cluster scheduler ---------------------------------------------------

namespace
{

SchedulerConfig
clusterConfig(int ndev, std::shared_ptr<PlacementPolicy> placement,
              SchedPolicy policy = SchedPolicy::RoundRobin)
{
    SchedulerConfig cfg;
    cfg.policy = policy;
    cfg.devices.assign(std::size_t(ndev), gpu::titanXMaxwell());
    cfg.placement = std::move(placement);
    return cfg;
}

} // namespace

TEST(ClusterScheduler, DrainsWithPerDeviceLedgersBalancedToZero)
{
    SchedulerConfig cfg =
        clusterConfig(2, std::make_shared<LoadBalancePlacement>());
    Scheduler sched(cfg);
    auto network = tinyNet();
    // Simultaneous arrivals so the balancer sees real queue depth.
    for (int i = 0; i < 6; ++i)
        sched.submit(makeJob(network, vdnnAll(), 0, 2));
    ServeReport rep = sched.run();

    EXPECT_EQ(rep.finishedCount(), 6);
    EXPECT_EQ(rep.deviceCount, 2);
    ASSERT_EQ(rep.devices.size(), 2u);
    for (const DeviceOutcome &d : rep.devices) {
        EXPECT_EQ(d.reservedAtEnd, 0) << "device " << d.device;
        EXPECT_EQ(d.evictedLedgerAtEnd, 0) << "device " << d.device;
    }
    EXPECT_EQ(rep.reservedBytesAtEnd, 0);
    EXPECT_EQ(sched.devicePoolOn(0).usedBytes(), 0);
    EXPECT_EQ(sched.devicePoolOn(1).usedBytes(), 0);
    // Load balancing actually spread the work.
    EXPECT_GT(rep.devices[0].jobsPlaced, 0);
    EXPECT_GT(rep.devices[1].jobsPlaced, 0);
    // Every job records where it ran.
    for (const JobOutcome &j : rep.jobs) {
        EXPECT_GE(j.device, 0);
        ASSERT_EQ(j.placements.size(), 1u);
        EXPECT_EQ(j.placements[0], j.device);
    }
    // Lifecycle events carry the device.
    for (const LifecycleEvent &ev : rep.lifecycle)
        EXPECT_GE(ev.device, 0);
}

TEST(ClusterScheduler, BestFitConsolidatesLoadBalanceSpreads)
{
    auto network = tinyNet();
    auto runWith = [&](std::shared_ptr<PlacementPolicy> placement) {
        SchedulerConfig cfg = clusterConfig(2, std::move(placement));
        Scheduler sched(cfg);
        // Simultaneous arrivals; every job easily fits either device.
        for (int i = 0; i < 4; ++i)
            sched.submit(makeJob(network, vdnnAll(), 0, 2));
        return sched.run();
    };

    ServeReport best = runWith(std::make_shared<BestFitPlacement>());
    EXPECT_EQ(best.finishedCount(), 4);
    // Best fit keeps choosing the fullest feasible device: everything
    // lands on device 0 while device 1 idles.
    EXPECT_EQ(best.devices[0].jobsPlaced, 4);
    EXPECT_EQ(best.devices[1].jobsPlaced, 0);

    ServeReport lb = runWith(std::make_shared<LoadBalancePlacement>());
    EXPECT_EQ(lb.finishedCount(), 4);
    EXPECT_EQ(lb.devices[0].jobsPlaced, 2);
    EXPECT_EQ(lb.devices[1].jobsPlaced, 2);
    // Spreading four equal jobs over two devices halves the makespan.
    EXPECT_LT(lb.makespan, best.makespan);
}

TEST(ClusterScheduler, ThroughputScalesAcrossDevices)
{
    auto network = tinyNet(32);
    auto runOn = [&](int ndev) {
        SchedulerConfig cfg = clusterConfig(
            ndev, std::make_shared<LoadBalancePlacement>());
        Scheduler sched(cfg);
        for (int i = 0; i < 8; ++i)
            sched.submit(makeJob(network, vdnnAll(), 0, 3));
        return sched.run();
    };
    ServeReport one = runOn(1);
    ServeReport two = runOn(2);
    EXPECT_EQ(one.finishedCount(), 8);
    EXPECT_EQ(two.finishedCount(), 8);
    ASSERT_GT(one.aggregateThroughput(), 0.0);
    EXPECT_GE(two.aggregateThroughput() / one.aggregateThroughput(),
              1.5);
}

// --- cross-device migration --------------------------------------------------

TEST(Migration, EvictedTenantResumesOnAnotherDeviceByteIdentically)
{
    // The migrated tenant: one iteration on device 0, migrate, the
    // second iteration on device 1.
    gpu::Cluster cluster(
        gpu::homogeneousCluster(gpu::titanXMaxwell(), 2));
    auto network = net::buildTinyCnn(8);
    SessionConfig scfg;
    scfg.planner = vdnnAll();
    Session migrant(*network, scfg, tenantOn(cluster, 0, 1));
    ASSERT_TRUE(migrant.setup());
    EXPECT_EQ(migrant.deviceId(), 0);
    IterationResult first = migrant.runIteration();
    ASSERT_TRUE(first.ok);

    migrant.suspend();
    ASSERT_TRUE(migrant.evictToHost());
    Bytes staged = migrant.evictedBytes();
    EXPECT_GT(staged, 0);
    EXPECT_EQ(cluster.host(0).usedBytes(), staged);

    ASSERT_TRUE(migrant.migrate(tenantOn(cluster, 1, 1)));
    EXPECT_EQ(migrant.deviceId(), 1);
    EXPECT_EQ(migrant.migrationCount(), 1);
    EXPECT_EQ(migrant.state(), SessionState::Active);
    // The staging buffer moved to device 1's host share and was
    // consumed by the restore; device 0 is fully drained.
    EXPECT_EQ(cluster.host(0).usedBytes(), 0);
    EXPECT_EQ(cluster.pool(0).usedBytes(), 0);
    EXPECT_EQ(cluster.pool(1).usedBytes(), migrant.persistentBytes());
    // The restore crossed device 1's PCIe link, not device 0's.
    EXPECT_EQ(cluster.device(1).bytesCopiedByClient(
                  gpu::CopyDir::HostToDevice, 1),
              staged);

    IterationResult second = migrant.runIteration();
    ASSERT_TRUE(second.ok);
    migrant.teardown();
    EXPECT_EQ(cluster.pool(1).usedBytes(), 0);
    EXPECT_EQ(cluster.host(1).usedBytes(), 0);

    // Control: the same two iterations without migration.
    gpu::Cluster control_cluster(
        gpu::homogeneousCluster(gpu::titanXMaxwell(), 2));
    Session control(*network, scfg, tenantOn(control_cluster, 0, 1));
    ASSERT_TRUE(control.setup());
    IterationResult c1 = control.runIteration();
    IterationResult c2 = control.runIteration();
    ASSERT_TRUE(c1.ok);
    ASSERT_TRUE(c2.ok);
    control.teardown();

    expectIterationsIdentical(first, c1);
    expectIterationsIdentical(second, c2);
}

TEST(Migration, SqueezedDynamicTenantReplansAgainstTheTargetShare)
{
    // Device 0 is crowded by a hog, so the vDNN_dyn tenant derives an
    // offload-heavy plan; device 1 is empty, so the re-plan on
    // migration grows back to the no-offload ideal — the "different
    // free share -> different plan" half of the acceptance criterion.
    gpu::Cluster cluster(
        gpu::homogeneousCluster(gpu::titanXMaxwell(), 2));
    auto hog = cluster.pool(0).allocate(7_GiB + 512_MiB, "hog", 99);

    auto network = net::buildVgg16(64);
    SessionConfig scfg;
    scfg.planner = std::make_shared<DynamicPlanner>();
    Session session(*network, scfg, tenantOn(cluster, 0, 1));
    ASSERT_TRUE(session.setup());
    EXPECT_GT(session.plan().offloadCount(), 0); // squeezed
    ASSERT_TRUE(session.runIteration().ok);

    session.suspend();
    ASSERT_TRUE(session.evictToHost());
    ASSERT_TRUE(session.migrate(tenantOn(cluster, 1, 1)));
    EXPECT_EQ(session.deviceId(), 1);
    EXPECT_EQ(session.plan().offloadCount(), 0); // re-planned larger

    IterationResult after = session.runIteration();
    ASSERT_TRUE(after.ok);
    EXPECT_EQ(after.offloads, 0);

    // Byte-identity against a tenant planned directly on an idle
    // device: migration must be transparent to the iterations.
    gpu::Cluster control_cluster(
        gpu::homogeneousCluster(gpu::titanXMaxwell(), 1));
    Session control(*network, scfg, tenantOn(control_cluster, 0, 1));
    ASSERT_TRUE(control.setup());
    ASSERT_TRUE(control.runIteration().ok); // control's first iteration
    IterationResult control_after = control.runIteration();
    ASSERT_TRUE(control_after.ok);
    expectIterationsIdentical(after, control_after);

    control.teardown();
    session.teardown();
    cluster.pool(0).release(hog);
    EXPECT_EQ(cluster.pool(0).usedBytes(), 0);
    EXPECT_EQ(cluster.pool(1).usedBytes(), 0);
}

TEST(Migration, RefusedWhenTargetHostShareIsExhausted)
{
    gpu::GpuSpec big = gpu::titanXMaxwell();
    gpu::GpuSpec no_host = gpu::titanXMaxwell();
    no_host.hostCapacity = 1_KiB; // cannot stage anything
    gpu::Cluster cluster(gpu::ClusterSpec{{big, no_host}, true});

    auto network = net::buildTinyCnn(8);
    SessionConfig scfg;
    scfg.planner = vdnnAll();
    Session session(*network, scfg, tenantOn(cluster, 0, 1));
    ASSERT_TRUE(session.setup());
    ASSERT_TRUE(session.runIteration().ok);
    session.suspend();
    ASSERT_TRUE(session.evictToHost());

    EXPECT_FALSE(session.migrate(tenantOn(cluster, 1, 1)));
    // Still evicted, still homed on the source, still resumable there.
    EXPECT_EQ(session.state(), SessionState::Evicted);
    EXPECT_EQ(session.deviceId(), 0);
    ASSERT_TRUE(session.resume());
    EXPECT_TRUE(session.runIteration().ok);
    session.teardown();
}

TEST(ClusterScheduler, RebalanceMigratesOffTheLoadedDevice)
{
    // Best-fit placement piles every arrival onto device 0; the
    // rebalance sweep must move tenants to the idle device 1.
    SchedulerConfig cfg =
        clusterConfig(2, std::make_shared<BestFitPlacement>());
    cfg.rebalancePeriod = 2_ms;
    cfg.rebalanceThreshold = 2;
    Scheduler sched(cfg);
    auto network = tinyNet();
    for (int i = 0; i < 6; ++i)
        sched.submit(makeJob(network, vdnnAll(), 0, 6));
    ServeReport rep = sched.run();

    EXPECT_EQ(rep.finishedCount(), 6);
    int migrations = 0;
    for (const JobOutcome &j : rep.jobs)
        migrations += j.migrations;
    EXPECT_GT(migrations, 0);
    EXPECT_EQ(rep.devices[0].migrationsOut,
              rep.devices[1].migrationsIn);
    EXPECT_GT(rep.devices[1].migrationsIn, 0);
    // A migrated job's placement history shows the hop.
    bool hop_recorded = false;
    for (const JobOutcome &j : rep.jobs) {
        if (j.migrations > 0) {
            ASSERT_GE(j.placements.size(), 2u);
            hop_recorded = true;
        }
    }
    EXPECT_TRUE(hop_recorded);
    // The audit log carries migrate events with the target device.
    int migrate_events = 0;
    for (const LifecycleEvent &ev : rep.lifecycle) {
        if (std::string(ev.what) == "migrate") {
            ++migrate_events;
            EXPECT_EQ(ev.device, 1);
        }
    }
    EXPECT_EQ(migrate_events, migrations);
    // Ledgers balance to zero on both devices after the drain.
    for (const DeviceOutcome &d : rep.devices) {
        EXPECT_EQ(d.reservedAtEnd, 0);
        EXPECT_EQ(d.evictedLedgerAtEnd, 0);
    }
    EXPECT_EQ(sched.devicePoolOn(0).usedBytes(), 0);
    EXPECT_EQ(sched.devicePoolOn(1).usedBytes(), 0);
}

TEST(ClusterScheduler, HeterogeneousDevicesPlaceByCapacity)
{
    // A job too big for the small device must land on the big one
    // even when the small one is emptier.
    gpu::GpuSpec big = gpu::titanXMaxwell();
    gpu::GpuSpec small = gpu::smallGpu4GiB();
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.devices = {small, big};
    cfg.placement = std::make_shared<LoadBalancePlacement>();
    Scheduler sched(cfg);

    // Baseline VGG-16 (64) cannot train on 4 GiB at all.
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);
    sched.submit(makeJob(
        vgg,
        std::make_shared<BaselinePlanner>(
            AlgoPreference::MemoryOptimal),
        0, 1));
    ServeReport rep = sched.run();
    ASSERT_EQ(rep.finishedCount(), 1);
    EXPECT_EQ(rep.jobs[0].device, 1);
}
