#include "serve/arrival.hh"

#include "common/logging.hh"
#include "common/units.hh"

#include <algorithm>
#include <cmath>

namespace vdnn::serve
{

std::vector<TimeNs>
poissonArrivals(int count, double rate_per_sec, SplitMix64 &rng,
                TimeNs start)
{
    VDNN_ASSERT(count >= 0, "negative arrival count");
    VDNN_ASSERT(rate_per_sec > 0.0, "arrival rate must be positive");
    std::vector<TimeNs> out;
    out.reserve(std::size_t(count));
    TimeNs t = start;
    for (int i = 0; i < count; ++i) {
        // Exponential inter-arrival gap via inverse transform; clamp
        // the uniform away from 0 so log() stays finite.
        double u = std::max(rng.nextDouble(), 1e-12);
        double gap_s = -std::log(u) / rate_per_sec;
        t += secondsToNs(gap_s);
        out.push_back(t);
    }
    return out;
}

std::vector<TimeNs>
uniformArrivals(int count, TimeNs gap, TimeNs start)
{
    VDNN_ASSERT(count >= 0, "negative arrival count");
    VDNN_ASSERT(gap >= 0, "negative arrival gap");
    std::vector<TimeNs> out;
    out.reserve(std::size_t(count));
    for (int i = 0; i < count; ++i)
        out.push_back(start + TimeNs(i) * gap);
    return out;
}

std::vector<TimeNs>
traceArrivals(const std::vector<double> &seconds)
{
    std::vector<TimeNs> out;
    out.reserve(seconds.size());
    for (double s : seconds) {
        VDNN_ASSERT(s >= 0.0, "trace timestamps must be non-negative");
        out.push_back(secondsToNs(s));
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace vdnn::serve
