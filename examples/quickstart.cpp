/**
 * @file
 * Quickstart: build a small CNN, train one iteration under the
 * baseline and under vDNN, and compare memory usage and speed.
 *
 * Usage: quickstart [batch]
 */

#include "common/logging.hh"
#include "common/units.hh"
#include "core/dynamic_policy.hh"
#include "core/planner.hh"
#include "core/training_session.hh"
#include "net/builders.hh"
#include "stats/table.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

using namespace vdnn;
using namespace vdnn::core;

int
main(int argc, char **argv)
{
    std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 64;

    // 1. Build a network. Builders for the paper's benchmark DNNs are
    //    in net/builders.hh; buildTinyCnn is a toy for quick runs.
    auto network = net::buildTinyCnn(batch);
    std::printf("network: %s, %zu layers, %zu feature-map buffers\n",
                network->name().c_str(), network->numLayers(),
                network->numBuffers());

    // 2. Pick memory planners. Each produces a MemoryPlan — one
    //    directive per feature-map buffer plus per-layer algorithms —
    //    that one training session executes.
    std::vector<std::shared_ptr<Planner>> planners = {
        std::make_shared<BaselinePlanner>(),
        std::make_shared<OffloadConvPlanner>(
            AlgoPreference::PerformanceOptimal),
        std::make_shared<OffloadAllPlanner>(
            AlgoPreference::PerformanceOptimal),
        std::make_shared<DynamicPlanner>(),
    };

    // 3. Run one training session per planner on a simulated Titan X.
    stats::Table table("quickstart: baseline vs vDNN");
    table.setColumns({"planner", "iteration (ms)", "max GPU (MiB)",
                      "avg GPU (MiB)", "offloaded (MiB)"});
    for (const auto &planner : planners) {
        SessionConfig cfg;
        cfg.planner = planner;
        SessionResult r = runSession(*network, cfg);
        if (!r.trainable) {
            std::printf("%s: cannot train (%s)\n",
                        planner->name().c_str(), r.failReason.c_str());
            continue;
        }
        table.addRow({r.configName,
                      stats::Table::cell(toMs(r.iterationTime), 2),
                      stats::Table::cell(toMiB(r.maxTotalUsage), 1),
                      stats::Table::cell(toMiB(r.avgTotalUsage), 1),
                      stats::Table::cell(
                          toMiB(r.offloadedBytesPerIter), 1)});
    }
    table.print();

    std::printf("\nvDNN virtualizes feature-map memory: the offload\n"
                "policies trade PCIe transfers (hidden behind compute)\n"
                "for a much smaller device footprint.\n");
    return 0;
}
