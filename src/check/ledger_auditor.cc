#include "check/ledger_auditor.hh"

#include "common/logging.hh"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vdnn::check
{

using serve::JobOutcome;
using serve::LifecycleEvent;
using serve::ServeReport;

namespace
{

/** Replay state of one tenant (refines serve::JobState). */
enum class ReplayState : std::uint8_t
{
    Unseen,    ///< no event yet (admission pending)
    Queued,    ///< requeued, waiting for re-admission
    Running,
    Suspended,
    Evicted,
    Migrating, ///< between migrate-out and migrate/migrate-stall
    Terminal,  ///< finished or failed
};

const char *
replayStateName(ReplayState s)
{
    switch (s) {
      case ReplayState::Unseen:
        return "unseen";
      case ReplayState::Queued:
        return "queued";
      case ReplayState::Running:
        return "running";
      case ReplayState::Suspended:
        return "suspended";
      case ReplayState::Evicted:
        return "evicted";
      case ReplayState::Migrating:
        return "migrating";
      case ReplayState::Terminal:
        return "terminal";
    }
    return "?";
}

/** How an event kind must move the reserved-bytes ledger. */
enum class DeltaRule : std::uint8_t
{
    Positive, ///< reserves bytes: delta > 0
    Negative, ///< frees bytes: delta < 0
    Zero,     ///< bookkeeping only: delta == 0
    NonPos,   ///< frees or no-op: delta <= 0
};

bool
deltaLegal(DeltaRule rule, Bytes delta)
{
    switch (rule) {
      case DeltaRule::Positive:
        return delta > 0;
      case DeltaRule::Negative:
        return delta < 0;
      case DeltaRule::Zero:
        return delta == 0;
      case DeltaRule::NonPos:
        return delta <= 0;
    }
    return false;
}

const char *
deltaRuleName(DeltaRule rule)
{
    switch (rule) {
      case DeltaRule::Positive:
        return "> 0";
      case DeltaRule::Negative:
        return "< 0";
      case DeltaRule::Zero:
        return "== 0";
      case DeltaRule::NonPos:
        return "<= 0";
    }
    return "?";
}

struct JobTrail
{
    ReplayState state = ReplayState::Unseen;
    int device = -1; ///< device while Running
    int evicts = 0;
    int replans = 0;
    int migrates = 0; ///< successful "migrate" events
    int pageOuts = 0; ///< buffer-granularity "page-out" events
};

} // namespace

CheckResult
auditLedger(const ServeReport &report)
{
    CheckResult out;
    std::map<serve::JobId, JobTrail> trails;
    Bytes chained = 0; // expected reservedBefore of the next event

    for (std::size_t i = 0; i < report.lifecycle.size(); ++i) {
        const LifecycleEvent &ev = report.lifecycle[i];
        const std::string what = ev.what ? ev.what : "";
        JobTrail &t = trails[ev.job];
        int idx = int(i);

        if (ev.reservedBefore != chained) {
            out.add(DiagCode::LedgerChain, Severity::Error,
                    strFormat("event %zu ('%s' of job %d) starts from "
                              "%lld reserved bytes but the previous "
                              "event left %lld",
                              i, what.c_str(), ev.job,
                              (long long)ev.reservedBefore,
                              (long long)chained),
                    idx);
        }
        chained = ev.reservedAfter;
        Bytes delta = ev.reservedAfter - ev.reservedBefore;

        ReplayState next = t.state;
        DeltaRule rule = DeltaRule::Zero;
        bool legal = true;
        if (what == "admit") {
            if (t.state == ReplayState::Running ||
                t.state == ReplayState::Suspended ||
                t.state == ReplayState::Migrating) {
                out.add(DiagCode::DoubleResidency, Severity::Error,
                        strFormat("job %d admitted while already %s "
                                  "(on device %d)",
                                  ev.job, replayStateName(t.state),
                                  t.device),
                        idx);
            }
            legal = t.state == ReplayState::Unseen ||
                    t.state == ReplayState::Queued;
            next = ReplayState::Running;
            rule = DeltaRule::Positive;
        } else if (what == "suspend") {
            legal = t.state == ReplayState::Running;
            next = ReplayState::Suspended;
            rule = DeltaRule::Zero;
        } else if (what == "evict") {
            legal = t.state == ReplayState::Suspended;
            next = ReplayState::Evicted;
            rule = DeltaRule::Negative;
            ++t.evicts;
        } else if (what == "resume") {
            if (t.state == ReplayState::Running) {
                out.add(DiagCode::DoubleResidency, Severity::Error,
                        strFormat("job %d resumed while already "
                                  "running on device %d",
                                  ev.job, t.device),
                        idx);
            }
            legal = t.state == ReplayState::Suspended ||
                    t.state == ReplayState::Evicted;
            rule = t.state == ReplayState::Evicted
                       ? DeltaRule::Positive
                       : DeltaRule::Zero;
            next = ReplayState::Running;
        } else if (what == "profile") {
            legal = t.state == ReplayState::Running;
            rule = DeltaRule::NonPos; // reservations shrink only
        } else if (what == "replan") {
            legal = t.state == ReplayState::Running;
            rule = DeltaRule::Zero;
            ++t.replans;
        } else if (what == "page-out") {
            // Buffer-granularity eviction pages pool bytes, never
            // reservations: only a resident tenant has device copies
            // to drop, and the ledger must not move.
            legal = t.state == ReplayState::Running;
            rule = DeltaRule::Zero;
            ++t.pageOuts;
        } else if (what == "migrate-out") {
            legal = t.state == ReplayState::Running;
            next = ReplayState::Migrating;
            rule = DeltaRule::Negative;
        } else if (what == "migrate") {
            legal = t.state == ReplayState::Migrating;
            next = ReplayState::Running;
            rule = DeltaRule::Positive;
            ++t.migrates;
        } else if (what == "migrate-stall") {
            legal = t.state == ReplayState::Migrating;
            next = ReplayState::Evicted;
            rule = DeltaRule::Zero; // target reserve+evict cancel out
        } else if (what == "finish" || what == "fail") {
            legal = t.state == ReplayState::Running ||
                    t.state == ReplayState::Suspended ||
                    t.state == ReplayState::Evicted;
            next = ReplayState::Terminal;
            rule = DeltaRule::NonPos;
        } else if (what == "requeue") {
            legal = t.state == ReplayState::Running ||
                    t.state == ReplayState::Suspended ||
                    t.state == ReplayState::Evicted;
            next = ReplayState::Queued;
            rule = DeltaRule::NonPos;
        } else {
            out.add(DiagCode::BadTransition, Severity::Error,
                    strFormat("event %zu: unknown lifecycle event "
                              "'%s' for job %d",
                              i, what.c_str(), ev.job),
                    idx);
            continue;
        }

        if (!legal) {
            out.add(DiagCode::BadTransition, Severity::Error,
                    strFormat("event %zu: '%s' of job %d is illegal "
                              "from state '%s'",
                              i, what.c_str(), ev.job,
                              replayStateName(t.state)),
                    idx);
        }
        if (!deltaLegal(rule, delta)) {
            out.add(DiagCode::DeltaSign, Severity::Error,
                    strFormat("event %zu: '%s' of job %d moved the "
                              "ledger by %lld bytes (must be %s)",
                              i, what.c_str(), ev.job,
                              (long long)delta, deltaRuleName(rule)),
                    idx);
        }
        t.state = next;
        t.device = next == ReplayState::Running ? ev.device : -1;
    }

    // --- drain: everyone terminal, every ledger at zero ------------------
    for (const auto &[job, t] : trails) {
        if (t.state != ReplayState::Terminal) {
            out.add(DiagCode::LostJob, Severity::Error,
                    strFormat("job %d ends the run in state '%s' — "
                              "its preemption/requeue was never "
                              "resolved by a resume, finish or fail",
                              job, replayStateName(t.state)));
        }
    }
    if (report.reservedBytesAtEnd != 0) {
        out.add(DiagCode::LedgerNonZero, Severity::Error,
                strFormat("admission ledger holds %lld reserved bytes "
                          "after the drain",
                          (long long)report.reservedBytesAtEnd));
    }
    if (report.evictedLedgerAtEnd != 0) {
        out.add(DiagCode::LedgerNonZero, Severity::Error,
                strFormat("evicted ledger holds %d entries after the "
                          "drain",
                          report.evictedLedgerAtEnd));
    }
    for (const serve::DeviceOutcome &d : report.devices) {
        if (d.reservedAtEnd != 0 || d.evictedLedgerAtEnd != 0) {
            out.add(DiagCode::LedgerNonZero, Severity::Error,
                    strFormat("device %d ledger not drained: %lld "
                              "reserved bytes, %d evicted entries",
                              d.device, (long long)d.reservedAtEnd,
                              d.evictedLedgerAtEnd));
        }
    }
    if (!report.lifecycle.empty() &&
        report.lifecycle.front().reservedBefore != 0) {
        out.add(DiagCode::LedgerChain, Severity::Error,
                strFormat("first lifecycle event starts from %lld "
                          "reserved bytes (must start from zero)",
                          (long long)report.lifecycle.front()
                              .reservedBefore),
                0);
    }

    // --- outcome counters vs. the event log ------------------------------
    for (const JobOutcome &j : report.jobs) {
        auto it = trails.find(j.id);
        if (it == trails.end())
            continue; // never admitted (rejected / still pending)
        const JobTrail &t = it->second;
        if (j.preemptions != t.evicts) {
            out.add(DiagCode::OutcomeMismatch, Severity::Error,
                    strFormat("job %d reports %d preemptions but the "
                              "log has %d evict events",
                              j.id, j.preemptions, t.evicts));
        }
        if (j.pageOuts != t.pageOuts) {
            out.add(DiagCode::OutcomeMismatch, Severity::Error,
                    strFormat("job %d reports %d page-outs but the "
                              "log has %d page-out events",
                              j.id, j.pageOuts, t.pageOuts));
        }
        if (j.replans != t.replans) {
            out.add(DiagCode::OutcomeMismatch, Severity::Error,
                    strFormat("job %d reports %d replans but the log "
                              "has %d replan events",
                              j.id, j.replans, t.replans));
        }
        // A stalled migration that still rehomed the tenant counts in
        // JobOutcome::migrations, so the log's successful "migrate"
        // events are only a lower bound.
        if (j.migrations < t.migrates) {
            out.add(DiagCode::OutcomeMismatch, Severity::Error,
                    strFormat("job %d reports %d migrations but the "
                              "log has %d completed migrate events",
                              j.id, j.migrations, t.migrates));
        }
    }
    return out;
}

} // namespace vdnn::check
