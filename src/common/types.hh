/**
 * @file
 * Fundamental scalar types shared across the vDNN simulator.
 *
 * The simulator runs on an integer-nanosecond clock (TimeNs) and accounts
 * for memory in bytes (Bytes). Both are signed 64-bit so that subtraction
 * of two values is always well defined; negative values are only ever
 * legal as transient deltas.
 */

#ifndef VDNN_COMMON_TYPES_HH
#define VDNN_COMMON_TYPES_HH

#include <cstdint>

namespace vdnn
{

/** Simulated time in integer nanoseconds. */
using TimeNs = std::int64_t;

/** Memory size / offset in bytes. */
using Bytes = std::int64_t;

/** Floating point operation count. */
using Flops = double;

/** Sentinel for "no time" / "unscheduled". */
inline constexpr TimeNs kTimeNone = -1;

/** Sentinel for an invalid identifier. */
inline constexpr int kInvalidId = -1;

} // namespace vdnn

#endif // VDNN_COMMON_TYPES_HH
