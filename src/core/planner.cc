#include "core/planner.hh"

#include "common/logging.hh"
#include "dnn/cudnn_sim.hh"

#include <algorithm>

namespace vdnn::core
{

const char *
algoPreferenceName(AlgoPreference pref)
{
    switch (pref) {
      case AlgoPreference::MemoryOptimal:
        return "(m)";
      case AlgoPreference::PerformanceOptimal:
        return "(p)";
    }
    panic("unknown algo preference %d", int(pref));
}

const char *
replanHintName(ReplanHint h)
{
    switch (h) {
      case ReplanHint::Evict:
        return "evict";
      case ReplanHint::InPlace:
        return "in-place";
    }
    panic("unknown replan hint %d", int(h));
}

// --- MemoryPlan --------------------------------------------------------------

int
MemoryPlan::offloadCount() const
{
    int n = 0;
    for (const BufferDirective &d : buffers)
        n += d.offloaded() ? 1 : 0;
    return staticAllocation ? 0 : n;
}

Bytes
MemoryPlan::offloadedBytes(const net::Network &net) const
{
    Bytes total = 0;
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (offloads(b))
            total += net.buffer(b).bytes();
    }
    return total;
}

Bytes
MemoryPlan::offloadedDmaBytes(const net::Network &net) const
{
    Bytes total = 0;
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (offloads(b))
            total += dmaBytes(b, net.buffer(b).bytes());
    }
    return total;
}

void
MemoryPlan::clearOffloads()
{
    for (BufferDirective &d : buffers)
        d = BufferDirective{};
}

// --- PlannerContext ----------------------------------------------------------

PlannerContext
PlannerContext::exclusive(gpu::GpuSpec spec, bool contention)
{
    PlannerContext ctx;
    ctx.gpu = std::move(spec);
    ctx.availableBytes = 0;
    ctx.contention = contention;
    return ctx;
}

PlannerContext
PlannerContext::shared(gpu::GpuSpec spec, Bytes free_share,
                       bool contention, int device_id)
{
    VDNN_ASSERT(free_share >= 0, "negative free share");
    VDNN_ASSERT(device_id >= 0, "negative device id");
    PlannerContext ctx;
    ctx.gpu = std::move(spec);
    // availableBytes == 0 means "the whole device"; a momentarily
    // exhausted pool must instead plan against (effectively) nothing,
    // so trial-running planners derive their most conservative plan
    // rather than the unconstrained one.
    ctx.availableBytes = std::max<Bytes>(free_share, 1);
    ctx.contention = contention;
    ctx.deviceId = device_id;
    return ctx;
}

// --- shared planner plumbing -------------------------------------------------

bool
offloadEligible(const net::Network &net, net::BufferId buffer)
{
    const net::Buffer &b = net.buffer(buffer);
    // Classifier buffers are outside the managed pool; buffers with no
    // backward reuse are simply released, not offloaded; buffers nobody
    // reads (terminal outputs) have no last consumer to offload them.
    return !b.classifier && !b.bwdUsers.empty() && !b.readers.empty();
}

namespace
{

/** All-KeepResident plan with the preferred algorithm assignment. */
MemoryPlan
residentPlan(const net::Network &net, const PlannerContext &ctx,
             AlgoPreference pref)
{
    VDNN_ASSERT(net.finalized(), "network must be finalized");
    dnn::CudnnSim cudnn(ctx.gpu);
    MemoryPlan plan;
    plan.buffers.assign(net.numBuffers(), BufferDirective{});
    plan.algos = pref == AlgoPreference::MemoryOptimal
                     ? net::memoryOptimalAlgos(net)
                     : net::performanceOptimalAlgos(net, cudnn);
    return plan;
}

/** Buffers whose last forward consumer is a CONV layer. */
bool
lastReaderIsConv(const net::Network &net, net::BufferId b)
{
    net::LayerId last = net.buffer(b).lastFwdReader;
    return last != net::kInputLayer &&
           net.node(last).spec.kind == dnn::LayerKind::Conv;
}

std::string
staticProvenance(const std::string &name, const net::Network &net,
                 const MemoryPlan &plan)
{
    return strFormat("static %s: %d/%zu buffers offloaded",
                     name.c_str(), plan.offloadCount(),
                     net.numBuffers());
}

} // namespace

bool
holdsReluOutput(const net::Network &net, net::BufferId b)
{
    auto is_relu = [&](net::LayerId id) {
        if (id == net::kInputLayer)
            return false;
        const dnn::LayerSpec &spec = net.node(id).spec;
        return spec.kind == dnn::LayerKind::Activation &&
               spec.actv.fn == dnn::ActivationParams::Fn::ReLU;
    };
    if (is_relu(net.buffer(b).producer))
        return true;
    for (net::LayerId r : net.buffer(b).readers) {
        if (is_relu(r))
            return true;
    }
    return false;
}

// --- BaselinePlanner ---------------------------------------------------------

BaselinePlanner::BaselinePlanner(AlgoPreference pref_) : pref(pref_) {}

std::string
BaselinePlanner::name() const
{
    return strFormat("base %s", algoPreferenceName(pref));
}

MemoryPlan
BaselinePlanner::plan(const net::Network &net, const PlannerContext &ctx)
{
    MemoryPlan p = residentPlan(net, ctx, pref);
    p.staticAllocation = true;
    p.provenance = strFormat("static %s: network-wide allocation",
                             name().c_str());
    return p;
}

// --- OffloadAllPlanner -------------------------------------------------------

OffloadAllPlanner::OffloadAllPlanner(AlgoPreference pref_) : pref(pref_)
{}

std::string
OffloadAllPlanner::name() const
{
    return strFormat("vDNN_all %s", algoPreferenceName(pref));
}

MemoryPlan
OffloadAllPlanner::plan(const net::Network &net, const PlannerContext &ctx)
{
    MemoryPlan p = residentPlan(net, ctx, pref);
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (offloadEligible(net, b))
            p.directive(b).action = BufferDirective::Action::Offload;
    }
    p.provenance = staticProvenance(name(), net, p);
    return p;
}

// --- OffloadConvPlanner ------------------------------------------------------

OffloadConvPlanner::OffloadConvPlanner(AlgoPreference pref_) : pref(pref_)
{}

std::string
OffloadConvPlanner::name() const
{
    return strFormat("vDNN_conv %s", algoPreferenceName(pref));
}

MemoryPlan
OffloadConvPlanner::plan(const net::Network &net,
                         const PlannerContext &ctx)
{
    MemoryPlan p = residentPlan(net, ctx, pref);
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        // vDNN_conv: offload only the Xs of CONV layers, i.e. buffers
        // whose last forward consumer is a CONV layer (only that
        // consumer may issue the offload, and only CONV kernels are
        // long enough to hide it).
        if (offloadEligible(net, b) && lastReaderIsConv(net, b))
            p.directive(b).action = BufferDirective::Action::Offload;
    }
    p.provenance = staticProvenance(name(), net, p);
    return p;
}

// --- CompressedOffloadPlanner ------------------------------------------------

CompressedOffloadPlanner::CompressedOffloadPlanner(AlgoPreference pref_)
    : CompressedOffloadPlanner(pref_, SparsityModel{})
{}

CompressedOffloadPlanner::CompressedOffloadPlanner(AlgoPreference pref_,
                                                   SparsityModel model_)
    : pref(pref_), model(model_)
{
    VDNN_ASSERT(model.shallowSparsity >= 0.0 &&
                    model.deepSparsity <= 1.0 &&
                    model.shallowSparsity <= model.deepSparsity,
                "sparsity model must be a fraction growing with depth");
}

std::string
CompressedOffloadPlanner::name() const
{
    return strFormat("vDNN_all+cDMA %s", algoPreferenceName(pref));
}

double
CompressedOffloadPlanner::dmaScaleAtDepth(double depth_frac) const
{
    double sparsity =
        model.shallowSparsity +
        (model.deepSparsity - model.shallowSparsity) *
            std::clamp(depth_frac, 0.0, 1.0);
    double scale = (1.0 - sparsity) * (1.0 + model.metadataOverhead);
    return std::clamp(scale, 0.01, 1.0);
}

MemoryPlan
CompressedOffloadPlanner::plan(const net::Network &net,
                               const PlannerContext &ctx)
{
    MemoryPlan p = residentPlan(net, ctx, pref);

    // Depth normalization over the managed (feature extraction) region.
    int max_topo = 1;
    for (net::LayerId id : net.topoOrder()) {
        if (!net.node(id).classifier)
            max_topo = std::max(max_topo, net.node(id).topoIndex);
    }

    int compressed = 0;
    int measured = 0;
    for (net::BufferId b = 0; b < net::BufferId(net.numBuffers()); ++b) {
        if (!offloadEligible(net, b))
            continue;
        BufferDirective &d = p.directive(b);
        d.action = BufferDirective::Action::Offload;
        if (!holdsReluOutput(net, b))
            continue; // dense data: the ZVC engine is bypassed
        net::LayerId producer = net.buffer(b).producer;
        double depth = producer == net::kInputLayer
                           ? 0.0
                           : double(net.node(producer).topoIndex) /
                                 double(max_topo);
        d.compressed = true;
        // Prefer the measured first-iteration sparsity over the
        // analytic depth model when a profile covers this buffer.
        double profiled = ctx.profile && ctx.profile->valid
                              ? ctx.profile->sparsityFor(int(b))
                              : -1.0;
        if (profiled >= 0.0) {
            d.dmaScale = std::clamp(
                (1.0 - profiled) * (1.0 + model.metadataOverhead), 0.01,
                1.0);
            ++measured;
        } else {
            d.dmaScale = dmaScaleAtDepth(depth);
        }
        ++compressed;
    }
    p.provenance = strFormat(
        "static %s: %d/%zu buffers offloaded, %d compressed "
        "(%d profiled, %.0f%% of raw PCIe bytes)",
        name().c_str(), p.offloadCount(), net.numBuffers(), compressed,
        measured,
        p.offloadedBytes(net) > 0
            ? 100.0 * double(p.offloadedDmaBytes(net)) /
                  double(p.offloadedBytes(net))
            : 100.0);
    return p;
}

} // namespace vdnn::core
