/**
 * @file
 * The memory-planning API: a declarative per-buffer plan IR and the
 * pluggable Planner interface that produces it.
 *
 * vDNN's core contribution (Section III-C) is a *per-buffer* placement
 * decision; this header models it directly instead of through a closed
 * policy enum:
 *
 *  - BufferDirective: what happens to one feature-map buffer between
 *    its forward definition and backward reuse — keep it device
 *    resident, or offload it to pinned host memory (optionally through
 *    a compressing DMA engine that shrinks the PCIe traffic), plus a
 *    prefetch-priority hint consulted by the Fig. 10 search.
 *  - MemoryPlan: the fully resolved execution plan the Executor
 *    consumes — one directive per buffer, one convolution algorithm
 *    per layer, and the provenance of how the plan was derived.
 *  - Planner: plan(network, context) -> MemoryPlan. PlannerContext
 *    carries the capacity the plan may actually assume: the whole
 *    device in exclusive mode, or the tenant's current free share of
 *    the communal pool in multi-tenant serving (src/serve/).
 *
 * Concrete planners:
 *  - BaselinePlanner:        network-wide static allocation, no
 *                            offloading (Section II-C).
 *  - OffloadAllPlanner:      vDNN_all — offload every eligible buffer.
 *  - OffloadConvPlanner:     vDNN_conv — offload only the inputs of
 *                            CONV layers.
 *  - CompressedOffloadPlanner: vDNN_all through a Compressing DMA
 *                            Engine (Rhu et al., 2017): ReLU activation
 *                            sparsity shrinks offload/prefetch traffic.
 *  - DynamicPlanner:         vDNN_dyn profiling passes (declared in
 *                            core/dynamic_policy.hh; it needs the
 *                            Executor to run trial iterations).
 *
 * Planners also advertise how a *running* tenant's footprint may be
 * changed mid-run (replanHint): capacity-adaptive planners (vDNN_dyn)
 * support an in-place re-plan at an iteration boundary, while
 * capacity-independent plans require the tenant to be evicted and
 * resumed under a fresh plan (core/training_session.hh).
 */

#ifndef VDNN_CORE_PLANNER_HH
#define VDNN_CORE_PLANNER_HH

#include "common/types.hh"
#include "gpu/gpu_spec.hh"
#include "net/network.hh"
#include "net/network_stats.hh"
#include "obs/profiler.hh"

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vdnn::core
{

/**
 * Per-CONV-layer algorithm preference of the static planners. The plan
 * IR itself always carries an explicit per-layer assignment; this knob
 * only selects the starting point.
 */
enum class AlgoPreference : std::uint8_t
{
    MemoryOptimal,      ///< IMPLICIT_GEMM everywhere (zero workspace)
    PerformanceOptimal, ///< fastest algorithm regardless of workspace
};

/** Paper-style suffix: "(m)" / "(p)". */
const char *algoPreferenceName(AlgoPreference pref);

/** What to do with one feature-map buffer (the plan IR leaf). */
struct BufferDirective
{
    enum class Action : std::uint8_t
    {
        KeepResident, ///< stays on the device until its last backward use
        Offload,      ///< D2H after last forward read, H2D before backward
    };

    Action action = Action::KeepResident;

    /**
     * Offload only: route the transfer through the compressing DMA
     * engine. The device copy and the pinned host staging buffer stay
     * worst-case sized (the achieved ratio is data dependent); only
     * the bytes crossing PCIe shrink.
     */
    bool compressed = false;

    /**
     * Fraction of the raw buffer bytes that actually crosses PCIe on
     * offload and prefetch (1.0 = uncompressed). Meaningful only with
     * compressed = true.
     */
    double dmaScale = 1.0;

    /**
     * Prefetch hint for the Fig. 10 search: when one candidate layer
     * owns several offloaded buffers, higher priority is issued first;
     * a negative priority excludes the buffer from overlapped
     * prefetching entirely (it is fetched on demand).
     */
    int prefetchPriority = 0;

    bool offloaded() const { return action == Action::Offload; }
};

/**
 * How a planner supports changing a *running* tenant's memory plan
 * when its free share of the device moves (mid-run re-planning).
 */
enum class ReplanHint : std::uint8_t
{
    /**
     * The plan is capacity-independent: re-running plan() against a
     * different free share returns the same plan, so shrinking (or
     * growing) the tenant requires evicting it and resuming it under
     * a freshly derived plan.
     */
    Evict,
    /**
     * plan() adapts to PlannerContext::capacity(): the session may
     * re-plan in place at an iteration boundary and swap the compiled
     * IterationProgram without releasing its device share.
     */
    InPlace,
};

const char *replanHintName(ReplanHint h);

/** One profiling pass of a trial-running planner and its outcome. */
struct TrialRecord
{
    std::string description;
    bool passed = false;
    TimeNs makespan = 0;
    std::string failReason;
};

/**
 * A fully resolved execution plan: one directive per buffer, one
 * algorithm per CONV layer. This is what the Executor consumes — it
 * never consults a policy enum.
 */
struct MemoryPlan
{
    /**
     * Baseline-style network-wide allocation (Section II-C): every
     * buffer is materialized at setup and no memory traffic happens.
     * When false, allocation is layer-wise and the directives govern
     * offload/prefetch.
     */
    bool staticAllocation = false;

    /**
     * The planner found no trainable configuration (e.g. vDNN_dyn's
     * trainability probe failed). provenance/failReason say why.
     */
    bool feasible = true;
    std::string failReason;

    /** Per-buffer directives, indexed by BufferId. */
    std::vector<BufferDirective> buffers;
    /** Per-layer algorithm, indexed by LayerId. */
    net::AlgoAssignment algos;
    /** Human-readable description of how the plan was derived. */
    std::string provenance;
    /** Profiling history (planners that run trial iterations). */
    std::vector<TrialRecord> trials;

    const BufferDirective &directive(net::BufferId b) const
    {
        return buffers[std::size_t(b)];
    }

    BufferDirective &directive(net::BufferId b)
    {
        return buffers[std::size_t(b)];
    }

    /** Does this plan offload @p b? (Never under staticAllocation.) */
    bool offloads(net::BufferId b) const
    {
        return !staticAllocation && directive(b).offloaded();
    }

    /** Bytes actually crossing PCIe when moving @p raw bytes of @p b. */
    Bytes dmaBytes(net::BufferId b, Bytes raw) const
    {
        const BufferDirective &d = directive(b);
        if (!d.compressed)
            return raw;
        return Bytes(std::llround(double(raw) * d.dmaScale));
    }

    int offloadCount() const;

    /** Sum of raw bytes of all offloaded buffers. */
    Bytes offloadedBytes(const net::Network &net) const;

    /** Sum of PCIe bytes one offload sweep moves (compression applied). */
    Bytes offloadedDmaBytes(const net::Network &net) const;

    /** Drop every Offload directive back to KeepResident. */
    void clearOffloads();
};

/**
 * What a Planner may assume about the device it plans for. The key
 * field is the *available* capacity: an exclusive session plans
 * against the whole device, while a tenant of the shared serving pool
 * plans against its current free share — so vDNN_dyn's trial passes
 * probe what the tenant can actually get, not the nameplate capacity.
 */
struct PlannerContext
{
    /** Device the plan targets (perf model, interconnect, capacity). */
    gpu::GpuSpec gpu;

    /**
     * Device-pool bytes this plan may claim. 0 means the whole device
     * (gpu.dramCapacity).
     */
    Bytes availableBytes = 0;

    /** Model compute/DMA contention in trial iterations. */
    bool contention = true;

    /**
     * Which device of the node the plan targets (0 on a single-GPU
     * node). Plans are device-scoped: a tenant that migrates is
     * re-planned under a fresh context carrying the new device's spec,
     * free share and id.
     */
    int deviceId = 0;

    /**
     * Measured first-iteration profile of the tenant being planned
     * for, when one exists (null before the first iteration). Sparsity-
     * aware planners prefer its measured per-buffer sparsity over their
     * analytic depth model.
     */
    const obs::ProfiledFootprint *profile = nullptr;

    Bytes capacity() const
    {
        return availableBytes > 0 ? availableBytes : gpu.dramCapacity;
    }

    /** Exclusive mode: the whole device is available. */
    static PlannerContext exclusive(gpu::GpuSpec spec,
                                    bool contention = true);

    /** Shared mode: plan against a tenant's current free share of
     *  device @p device_id. */
    static PlannerContext shared(gpu::GpuSpec spec, Bytes free_share,
                                 bool contention = true,
                                 int device_id = 0);
};

/**
 * The pluggable planning interface. Implementations are stateless
 * between plan() calls; a Session (or the serve-layer scheduler) calls
 * plan() once per setup with a fresh context.
 */
class Planner
{
  public:
    virtual ~Planner() = default;

    /** Short label, e.g. "vDNN_all (m)" (report column headers). */
    virtual std::string name() const = 0;

    virtual MemoryPlan plan(const net::Network &net,
                            const PlannerContext &ctx) = 0;

    /**
     * The most memory-conservative plan this planner may settle on —
     * what admission control must budget for. Static planners return
     * plan() itself; DynamicPlanner returns its memory floor (vDNN_all
     * with memory-optimal algorithms) without running trials.
     */
    virtual MemoryPlan admissionPlan(const net::Network &net,
                                     const PlannerContext &ctx)
    {
        return plan(net, ctx);
    }

    /**
     * Whether a running tenant under this planner can be re-planned in
     * place when its free share changes, or must be evicted and
     * resumed instead. Static planners are capacity-independent, so
     * the default is ReplanHint::Evict; capacity-adaptive planners
     * (DynamicPlanner) override to ReplanHint::InPlace.
     */
    virtual ReplanHint replanHint() const { return ReplanHint::Evict; }
};

/**
 * Is @p buffer eligible for offload at all (planner-independent)?
 * Offload eligibility (Section III-A): the buffer must be reused
 * during backward propagation, belong to the vDNN-managed (feature
 * extraction) region, and have a last forward consumer to issue the
 * offload (refcount rule).
 */
bool offloadEligible(const net::Network &net, net::BufferId buffer);

/**
 * Is the buffer's content post-ReLU by the time it is offloaded?
 * In-place ReLU activations overwrite their input buffer, so a buffer
 * whose producer or any reader is a ReLU ACTV layer holds sparse data
 * when its last forward consumer issues the offload. Shared with the
 * first-iteration profiler, which measures sparsity for exactly the
 * buffers a compressing planner would route through the ZVC engine.
 */
bool holdsReluOutput(const net::Network &net, net::BufferId b);

// --- concrete planners -------------------------------------------------------

/** No offloading; network-wide static allocation (Section II-C). */
class BaselinePlanner : public Planner
{
  public:
    explicit BaselinePlanner(
        AlgoPreference pref = AlgoPreference::PerformanceOptimal);
    std::string name() const override;
    MemoryPlan plan(const net::Network &net,
                    const PlannerContext &ctx) override;

  private:
    AlgoPreference pref;
};

/** vDNN_all: offload every eligible buffer. */
class OffloadAllPlanner : public Planner
{
  public:
    explicit OffloadAllPlanner(
        AlgoPreference pref = AlgoPreference::MemoryOptimal);
    std::string name() const override;
    MemoryPlan plan(const net::Network &net,
                    const PlannerContext &ctx) override;

  private:
    AlgoPreference pref;
};

/**
 * vDNN_conv: offload only buffers whose last forward consumer is a
 * CONV layer (only those offloads hide behind long CONV kernels).
 */
class OffloadConvPlanner : public Planner
{
  public:
    explicit OffloadConvPlanner(
        AlgoPreference pref = AlgoPreference::MemoryOptimal);
    std::string name() const override;
    MemoryPlan plan(const net::Network &net,
                    const PlannerContext &ctx) override;

  private:
    AlgoPreference pref;
};

/**
 * vDNN_all with a Compressing DMA Engine (Rhu et al., 2017): post-ReLU
 * feature maps are mostly zero, and the zero fraction grows with layer
 * depth, so a zero-value compressor between the device and the PCIe
 * PHY shrinks the offload/prefetch traffic that Sections V-B/V-C show
 * to be the bottleneck. Buffers never touched by a ReLU bypass the
 * engine (dense data does not compress under ZVC).
 *
 * The same offload *set* as vDNN_all, with per-buffer DMA scaling —
 * expressible only because the plan IR is per buffer.
 */
class CompressedOffloadPlanner : public Planner
{
  public:
    /** Linear-in-depth activation-sparsity model. */
    struct SparsityModel
    {
        /** Zero fraction of post-ReLU maps at the first managed layer. */
        double shallowSparsity = 0.45;
        /** Zero fraction at the deepest managed layer. */
        double deepSparsity = 0.85;
        /** ZVC mask/metadata bytes as a fraction of the raw buffer. */
        double metadataOverhead = 0.05;
    };

    explicit CompressedOffloadPlanner(
        AlgoPreference pref = AlgoPreference::MemoryOptimal);
    CompressedOffloadPlanner(AlgoPreference pref, SparsityModel model);
    std::string name() const override;
    MemoryPlan plan(const net::Network &net,
                    const PlannerContext &ctx) override;

    /**
     * The offload set is already the vDNN_all floor and does not
     * depend on the free share, so a mid-run shrink cannot be served
     * in place — the tenant must be evicted instead. (Its compressed
     * directives still pay off there: eviction reuses the same
     * per-buffer dmaScale when moving surviving state over PCIe.)
     */
    ReplanHint replanHint() const override { return ReplanHint::Evict; }

    /** PCIe-byte fraction for a post-ReLU buffer produced at
     *  @p depth_frac (0 = shallowest, 1 = deepest managed layer). */
    double dmaScaleAtDepth(double depth_frac) const;

  private:
    AlgoPreference pref;
    SparsityModel model;
};

} // namespace vdnn::core

#endif // VDNN_CORE_PLANNER_HH
