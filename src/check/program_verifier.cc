#include "check/program_verifier.hh"

#include "common/logging.hh"
#include "core/prefetch.hh"
#include "dnn/conv_algo.hh"

#include <algorithm>
#include <optional>
#include <vector>

namespace vdnn::check
{

using core::ExecutorConfig;
using core::IterOp;
using core::IterationProgram;
using core::MemoryPlan;
using core::OpKind;

const char *
absResidencyName(AbsResidency r)
{
    switch (r) {
      case AbsResidency::Unallocated:
        return "unallocated";
      case AbsResidency::Resident:
        return "resident";
      case AbsResidency::OffloadInFlight:
        return "offload-in-flight";
      case AbsResidency::Host:
        return "host";
      case AbsResidency::FetchInFlight:
        return "fetch-in-flight";
      case AbsResidency::Released:
        return "released";
    }
    return "?";
}

namespace
{

/** Canonical in-group op order (compile's emission order). */
int
groupRank(OpKind k, bool backward)
{
    if (!backward) {
        switch (k) {
          case OpKind::Alloc:
            return 0;
          case OpKind::Kernel:
            return 1;
          case OpKind::Offload:
            return 2;
          case OpKind::Sync:
            return 3;
          case OpKind::Release:
            return 4;
          default:
            return -1;
        }
    }
    switch (k) {
      case OpKind::OnDemandFetch:
        return 0;
      case OpKind::Alloc:
        return 1;
      case OpKind::Prefetch:
        return 2;
      case OpKind::Kernel:
        return 3;
      case OpKind::Sync:
        return 4;
      case OpKind::Release:
        return 5;
      default:
        return -1;
    }
}

/** The abstract interpreter: one walk over the op stream. */
struct Interp
{
    const net::Network &net;
    const MemoryPlan &plan;
    const ExecutorConfig &cfg;
    CheckResult &out;

    bool buffersStatic;
    std::vector<bool> isStatic;        // per buffer: materialized at setup
    std::vector<AbsResidency> st;      // per buffer
    std::vector<int> readersLeft;      // forward refcount copies
    std::vector<bool> gradLive;        // per buffer: dY/dX allocated
    std::optional<Bytes> ws;           // current layer's workspace
    std::vector<net::BufferId> pendingOffloads;
    std::vector<net::BufferId> pendingPrefetches;
    std::vector<net::BufferId> deferredJoins; // async-release ablation
    std::vector<std::vector<net::BufferId>> bwdReleaseAt;
    core::PrefetchState pf;

    Bytes transient = 0;

    int op = -1;        // current op index (diagnostic anchor)
    int layer = -1;     // current op's layer

    Interp(const net::Network &net_, const MemoryPlan &plan_,
           const ExecutorConfig &cfg_, CheckResult &out_)
        : net(net_), plan(plan_), cfg(cfg_), out(out_),
          buffersStatic(plan_.staticAllocation),
          pf(net_.numBuffers())
    {
        std::size_t nb = net.numBuffers();
        isStatic.assign(nb, false);
        st.assign(nb, AbsResidency::Unallocated);
        readersLeft.assign(nb, 0);
        gradLive.assign(nb, false);
        for (net::BufferId b = 0; b < net::BufferId(nb); ++b) {
            if (buffersStatic || net.buffer(b).classifier) {
                isStatic[std::size_t(b)] = true;
                st[std::size_t(b)] = AbsResidency::Resident;
            }
        }
        bwdReleaseAt.assign(net.numLayers(), {});
        for (net::BufferId b = 0; b < net::BufferId(nb); ++b) {
            net::LayerId last = net.lastBwdUser(b);
            if (last != net::kInputLayer)
                bwdReleaseAt[std::size_t(last)].push_back(b);
        }
    }

    Diagnostic &diag(DiagCode code, std::string msg, int buffer = -1)
    {
        return out.add(code, Severity::Error, std::move(msg), op, layer,
                       buffer);
    }

    const char *layerName(net::LayerId id) const
    {
        return net.node(id).spec.name.c_str();
    }

    void addBytes(Bytes b)
    {
        transient += b;
        out.peakTransientBytes =
            std::max(out.peakTransientBytes, transient);
    }

    void subBytes(Bytes b) { transient -= b; }

    AbsResidency state(net::BufferId b) const
    {
        return st[std::size_t(b)];
    }

    void setState(net::BufferId b, AbsResidency r)
    {
        st[std::size_t(b)] = r;
    }

    std::vector<net::BufferId> inputBuffers(net::LayerId id) const
    {
        std::vector<net::BufferId> bufs;
        for (net::LayerId in_id : net.node(id).inputs) {
            bufs.push_back(in_id == net::kInputLayer
                               ? net.inputBuffer()
                               : net.node(in_id).yBuffer);
        }
        return bufs;
    }

    /** Buffers opBwdFetch must make resident (X and/or Y roles). */
    std::vector<net::BufferId> neededBackward(net::LayerId id) const
    {
        const net::LayerNode &n = net.node(id);
        std::vector<net::BufferId> needed;
        if (n.spec.backwardNeedsX()) {
            for (net::BufferId b : inputBuffers(id))
                needed.push_back(b);
        }
        if (n.spec.backwardNeedsY())
            needed.push_back(n.yBuffer);
        return needed;
    }

    Bytes workspaceBytes(net::LayerId id) const
    {
        const dnn::LayerSpec &spec = net.node(id).spec;
        if (spec.kind != dnn::LayerKind::Conv || buffersStatic)
            return 0;
        return dnn::convWorkspaceBytes(plan.algos[std::size_t(id)],
                                       spec);
    }

    /** A read access requires a valid device copy. */
    void requireReadable(net::BufferId b, const char *what)
    {
        switch (state(b)) {
          case AbsResidency::Resident:
          case AbsResidency::OffloadInFlight: // device copy still valid
            return;
          case AbsResidency::Host:
            diag(DiagCode::ReadOffloaded,
                 strFormat("%s reads buffer %d which was offloaded and "
                           "never fetched back",
                           what, b),
                 b);
            return;
          case AbsResidency::FetchInFlight:
            diag(DiagCode::ReadOffloaded,
                 strFormat("%s reads buffer %d whose fetch DMA has not "
                           "been joined by a Sync",
                           what, b),
                 b);
            return;
          case AbsResidency::Unallocated:
          case AbsResidency::Released:
            diag(DiagCode::UseUnallocated,
                 strFormat("%s touches buffer %d in state '%s'", what, b,
                           absResidencyName(state(b))),
                 b);
            return;
        }
    }

    // --- op bodies (abstract) -------------------------------------------

    void opBegin()
    {
        // Mirror opBeginIteration: the input batch is materialized here
        // under every layer-wise plan.
        net::BufferId in = net.inputBuffer();
        if (!buffersStatic && state(in) == AbsResidency::Unallocated) {
            setState(in, AbsResidency::Resident);
            addBytes(net.buffer(in).bytes());
        }
        for (net::BufferId b = 0; b < net::BufferId(net.numBuffers());
             ++b) {
            readersLeft[std::size_t(b)] = net.buffer(b).refCount;
        }
    }

    void opFwdAlloc(net::LayerId id)
    {
        const net::LayerNode &n = net.node(id);
        for (net::BufferId b : inputBuffers(id))
            requireReadable(b, "forward Alloc input check");

        if (!n.spec.inPlace()) {
            switch (state(n.yBuffer)) {
              case AbsResidency::Unallocated:
                setState(n.yBuffer, AbsResidency::Resident);
                addBytes(net.buffer(n.yBuffer).bytes());
                break;
              case AbsResidency::Resident: // static region
                break;
              case AbsResidency::Released:
                diag(DiagCode::UseUnallocated,
                     strFormat("Y buffer %d of '%s' re-allocated after "
                               "release within one iteration",
                               n.yBuffer, layerName(id)),
                     n.yBuffer);
                setState(n.yBuffer, AbsResidency::Resident);
                break;
              default:
                diag(DiagCode::UseUnallocated,
                     strFormat("Y buffer %d of '%s' allocated while in "
                               "state '%s'",
                               n.yBuffer, layerName(id),
                               absResidencyName(state(n.yBuffer))),
                     n.yBuffer);
                break;
            }
        }
        allocWorkspace(id);
    }

    void allocWorkspace(net::LayerId id)
    {
        if (ws) {
            // The runtime's ws.reset() here would strand the previous
            // allocation in the pool: its Release op never ran.
            diag(DiagCode::LeakedAlloc,
                 strFormat("workspace of a previous layer still live "
                           "entering Alloc of '%s' (its Release op is "
                           "missing)",
                           layerName(id)));
            subBytes(*ws);
            ws.reset();
        }
        Bytes bytes = workspaceBytes(id);
        if (bytes > 0) {
            ws = bytes;
            addBytes(bytes);
        }
    }

    void opFwdKernel(net::LayerId id)
    {
        const net::LayerNode &n = net.node(id);
        for (net::BufferId b : inputBuffers(id))
            requireReadable(b, "forward kernel");
        if (!n.spec.inPlace())
            requireReadable(n.yBuffer, "forward kernel output");
        requireWorkspace(id);
    }

    void requireWorkspace(net::LayerId id)
    {
        Bytes need = workspaceBytes(id);
        if (need > 0 && (!ws || *ws != need)) {
            diag(DiagCode::MissingWorkspace,
                 strFormat("conv kernel of '%s' needs %lld workspace "
                           "bytes but %lld are allocated",
                           layerName(id), (long long)need,
                           (long long)(ws ? *ws : 0)));
        }
    }

    void opFwdOffload(net::LayerId id)
    {
        for (net::BufferId b : inputBuffers(id)) {
            if (!plan.offloads(b))
                continue;
            if (net.buffer(b).lastFwdReader != id)
                continue;
            if (std::find(pendingOffloads.begin(), pendingOffloads.end(),
                          b) != pendingOffloads.end()) {
                continue; // duplicate input edge (concat), one DMA
            }
            if (isStatic[std::size_t(b)]) {
                diag(DiagCode::DoubleOffload,
                     strFormat("offload of buffer %d which lives in the "
                               "static region",
                               b),
                     b);
                continue;
            }
            switch (state(b)) {
              case AbsResidency::Resident:
                setState(b, AbsResidency::OffloadInFlight);
                pendingOffloads.push_back(b);
                pf.offloaded[std::size_t(b)] = true;
                ++out.dmasIssued;
                break;
              case AbsResidency::OffloadInFlight:
              case AbsResidency::Host:
                diag(DiagCode::DoubleOffload,
                     strFormat("buffer %d offloaded twice (state '%s')",
                               b, absResidencyName(state(b))),
                     b);
                break;
              default:
                diag(DiagCode::UseUnallocated,
                     strFormat("offload of buffer %d in state '%s'", b,
                               absResidencyName(state(b))),
                     b);
                break;
            }
        }
    }

    void opSync(bool backward)
    {
        std::vector<net::BufferId> &pending =
            backward ? pendingPrefetches : pendingOffloads;
        if (pending.empty())
            return;
        if (backward || cfg.syncAtLayerBoundary) {
            for (net::BufferId b : pending) {
                if (backward)
                    joinPrefetch(b);
                else
                    joinOffload(b);
            }
        } else {
            // Asynchronous-release ablation: the join lands at some
            // later sync; provably by the Barrier. Keeping the device
            // copy charged until then makes the peak an upper bound.
            deferredJoins.insert(deferredJoins.end(), pending.begin(),
                                 pending.end());
        }
        pending.clear();
    }

    void joinOffload(net::BufferId b)
    {
        if (state(b) == AbsResidency::OffloadInFlight) {
            setState(b, AbsResidency::Host);
            subBytes(net.buffer(b).bytes());
            ++out.dmasJoined;
        }
    }

    void joinPrefetch(net::BufferId b)
    {
        if (state(b) == AbsResidency::FetchInFlight) {
            setState(b, AbsResidency::Resident);
            ++out.dmasJoined;
        }
    }

    void opFwdRelease(net::LayerId id)
    {
        if (cfg.syncAtLayerBoundary && !pendingOffloads.empty()) {
            diag(DiagCode::SyncOrder,
                 strFormat("Release of '%s' runs under %zu un-joined "
                           "offload DMAs (Sync dropped or reordered)",
                           layerName(id), pendingOffloads.size()));
        }
        releaseWorkspace();
        if (buffersStatic)
            return;
        for (net::BufferId b : inputBuffers(id)) {
            if (--readersLeft[std::size_t(b)] < 0) {
                diag(DiagCode::DoubleRelease,
                     strFormat("forward refcount of buffer %d went "
                               "negative (duplicate Release op)",
                               b),
                     b);
                readersLeft[std::size_t(b)] = 0;
                continue;
            }
            if (readersLeft[std::size_t(b)] > 0)
                continue;
            const net::Buffer &buf = net.buffer(b);
            if (buf.bwdUsers.empty() && !buf.classifier &&
                state(b) == AbsResidency::Resident) {
                setState(b, AbsResidency::Released);
                subBytes(buf.bytes());
            }
        }
    }

    void releaseWorkspace()
    {
        if (ws) {
            subBytes(*ws);
            ws.reset();
        }
    }

    void opBarrier()
    {
        for (net::BufferId b : deferredJoins)
            joinOffload(b);
        deferredJoins.clear();
    }

    void opBwdFetch(net::LayerId id)
    {
        for (net::BufferId b : neededBackward(id)) {
            switch (state(b)) {
              case AbsResidency::Resident:
              case AbsResidency::OffloadInFlight:
                break;
              case AbsResidency::Host:
                // On-demand fetch: blocking H2D, joined synchronously.
                setState(b, AbsResidency::Resident);
                addBytes(net.buffer(b).bytes());
                pf.prefetched[std::size_t(b)] = true;
                ++out.dmasIssued;
                ++out.dmasJoined;
                break;
              case AbsResidency::FetchInFlight:
                // ensureResident joins the in-flight prefetch.
                joinPrefetch(b);
                pendingPrefetches.erase(
                    std::remove(pendingPrefetches.begin(),
                                pendingPrefetches.end(), b),
                    pendingPrefetches.end());
                break;
              case AbsResidency::Unallocated:
              case AbsResidency::Released:
                diag(DiagCode::UseUnallocated,
                     strFormat("backward of '%s' needs buffer %d which "
                               "is %s",
                               layerName(id), b,
                               absResidencyName(state(b))),
                     b);
                break;
            }
        }
    }

    void opBwdAlloc(net::LayerId id)
    {
        const net::LayerNode &n = net.node(id);
        allocGradient(n.yBuffer);
        for (net::LayerId in_id : n.inputs) {
            if (in_id == net::kInputLayer)
                continue; // the input image receives no gradient
            allocGradient(net.node(in_id).yBuffer);
        }
        allocWorkspace(id);
    }

    void allocGradient(net::BufferId b)
    {
        if (buffersStatic || net.buffer(b).classifier)
            return; // served by the static gradient region
        if (gradLive[std::size_t(b)])
            return;
        gradLive[std::size_t(b)] = true;
        addBytes(net.buffer(b).bytes());
    }

    void releaseGradient(net::BufferId b)
    {
        if (!gradLive[std::size_t(b)])
            return;
        gradLive[std::size_t(b)] = false;
        subBytes(net.buffer(b).bytes());
    }

    bool gradientAvailable(net::BufferId b) const
    {
        return buffersStatic || net.buffer(b).classifier ||
               gradLive[std::size_t(b)];
    }

    void opBwdPrefetch(net::LayerId id)
    {
        // The runtime consults the same deterministic Fig. 10 search on
        // the same per-buffer state, so the abstract DMA schedule
        // matches the concrete one exactly.
        core::PrefetchCandidate cand = core::findPrefetchLayer(
            net, id, pf, cfg.prefetchWindowBounded, &plan);
        for (net::BufferId b : cand.buffers) {
            if (state(b) != AbsResidency::Host)
                continue; // already fetched on demand earlier
            setState(b, AbsResidency::FetchInFlight);
            addBytes(net.buffer(b).bytes());
            pendingPrefetches.push_back(b);
            ++out.dmasIssued;
        }
    }

    void opBwdKernel(net::LayerId id)
    {
        const net::LayerNode &n = net.node(id);
        for (net::BufferId b : neededBackward(id)) {
            switch (state(b)) {
              case AbsResidency::Resident:
                break;
              case AbsResidency::Host:
              case AbsResidency::FetchInFlight:
              case AbsResidency::OffloadInFlight:
                diag(DiagCode::ReadOffloaded,
                     strFormat("backward kernel of '%s' reads buffer %d "
                               "in state '%s' (no fetch made it "
                               "resident)",
                               layerName(id), b,
                               absResidencyName(state(b))),
                     b);
                break;
              case AbsResidency::Unallocated:
              case AbsResidency::Released:
                diag(DiagCode::UseUnallocated,
                     strFormat("backward kernel of '%s' reads buffer %d "
                               "in state '%s'",
                               layerName(id), b,
                               absResidencyName(state(b))),
                     b);
                break;
            }
        }
        if (!gradientAvailable(n.yBuffer)) {
            diag(DiagCode::MissingGradient,
                 strFormat("backward kernel of '%s' consumes dY of "
                           "buffer %d which was never allocated",
                           layerName(id), n.yBuffer),
                 n.yBuffer);
        }
        requireWorkspace(id);
    }

    void opBwdRelease(net::LayerId id)
    {
        if (!pendingPrefetches.empty()) {
            diag(DiagCode::SyncOrder,
                 strFormat("Release of '%s' backward runs under %zu "
                           "un-joined prefetch DMAs (Sync dropped or "
                           "reordered)",
                           layerName(id), pendingPrefetches.size()));
        }
        releaseWorkspace();
        if (buffersStatic)
            return;
        const net::LayerNode &n = net.node(id);
        if (net.buffer(n.yBuffer).producer == id)
            releaseGradient(n.yBuffer);
        for (net::BufferId b : bwdReleaseAt[std::size_t(id)]) {
            if (isStatic[std::size_t(b)])
                continue;
            switch (state(b)) {
              case AbsResidency::Resident:
                setState(b, AbsResidency::Released);
                subBytes(net.buffer(b).bytes());
                break;
              case AbsResidency::Released:
                diag(DiagCode::DoubleRelease,
                     strFormat("buffer %d released twice (last backward "
                               "user '%s' ran again?)",
                               b, layerName(id)),
                     b);
                break;
              default:
                // Host / in-flight copies are left for the final drain
                // checks (an offload-without-fetch shows up there).
                break;
            }
        }
    }

    void opEnd()
    {
        // The final drain forces deferred joins exactly like Barrier.
        opBarrier();
        for (net::BufferId b : pendingOffloads) {
            diag(DiagCode::UnjoinedDma,
                 strFormat("offload DMA of buffer %d was issued but "
                           "never joined by any Sync",
                           b),
                 b);
        }
        for (net::BufferId b : pendingPrefetches) {
            diag(DiagCode::UnjoinedDma,
                 strFormat("prefetch DMA of buffer %d was issued but "
                           "never joined by any Sync",
                           b),
                 b);
        }
        for (net::BufferId b = 0; b < net::BufferId(net.numBuffers());
             ++b) {
            if (isStatic[std::size_t(b)])
                continue;
            switch (state(b)) {
              case AbsResidency::Unallocated:
              case AbsResidency::Released:
                break; // clean
              case AbsResidency::Resident:
                diag(DiagCode::LeakedAlloc,
                     strFormat("buffer %d still device-resident at "
                               "EndIteration (missing Release)",
                               b),
                     b);
                break;
              case AbsResidency::OffloadInFlight:
              case AbsResidency::FetchInFlight:
                diag(DiagCode::UnjoinedDma,
                     strFormat("buffer %d still has a DMA in flight at "
                               "EndIteration",
                               b),
                     b);
                break;
              case AbsResidency::Host:
                diag(DiagCode::HostLeak,
                     strFormat("buffer %d was offloaded to host and "
                               "never fetched back nor dropped",
                               b),
                     b);
                break;
            }
            if (gradLive[std::size_t(b)]) {
                diag(DiagCode::LeakedAlloc,
                     strFormat("gradient of buffer %d still live at "
                               "EndIteration",
                               b),
                     b);
            }
        }
        if (ws) {
            diag(DiagCode::LeakedAlloc,
                 "convolution workspace still live at EndIteration");
        }
    }
};

/** Structural validation of the op stream (phase/group well-formedness). */
struct StructureChecker
{
    const net::Network &net;
    CheckResult &out;

    net::LayerId groupLayer = net::kInputLayer - 1;
    bool groupBackward = false;
    int groupStartOp = -1;
    int lastRank = -1;
    std::vector<OpKind> groupKinds;
    std::vector<net::LayerId> fwdOrder;
    std::vector<net::LayerId> bwdOrder;
    bool barrierSeen = false;

    StructureChecker(const net::Network &net_, CheckResult &out_)
        : net(net_), out(out_)
    {}

    void structural(DiagCode code, std::string msg, int op, int layer)
    {
        out.add(code, Severity::Error, std::move(msg), op, layer);
    }

    bool hasKind(OpKind k) const
    {
        return std::find(groupKinds.begin(), groupKinds.end(), k) !=
               groupKinds.end();
    }

    void flushGroup()
    {
        if (groupLayer < 0 || groupKinds.empty())
            return;
        const char *name = net.node(groupLayer).spec.name.c_str();
        const char *phase = groupBackward ? "backward" : "forward";
        if (!groupBackward && !hasKind(OpKind::Alloc)) {
            structural(DiagCode::BadStructure,
                       strFormat("%s group of '%s' has no Alloc op",
                                 phase, name),
                       groupStartOp, groupLayer);
        }
        for (OpKind required :
             {OpKind::Kernel, OpKind::Sync, OpKind::Release}) {
            if (!hasKind(required)) {
                structural(
                    required == OpKind::Sync ? DiagCode::SyncOrder
                                             : DiagCode::BadStructure,
                    strFormat("%s group of '%s' has no %s op", phase,
                              name, core::opKindName(required)),
                    groupStartOp, groupLayer);
            }
        }
        groupKinds.clear();
    }

    void step(const IterOp &op, int idx)
    {
        if (op.layer == net::kInputLayer) {
            flushGroup();
            groupLayer = net::kInputLayer - 1;
            if (op.kind == OpKind::Barrier)
                barrierSeen = true;
            return;
        }
        if (op.layer < 0 ||
            std::size_t(op.layer) >= net.numLayers()) {
            structural(DiagCode::BadStructure,
                       strFormat("op references unknown layer %d",
                                 op.layer),
                       idx, op.layer);
            return;
        }
        if (op.backward != barrierSeen) {
            structural(DiagCode::BadStructure,
                       strFormat("%s op of '%s' on the wrong side of "
                                 "the Barrier",
                                 op.backward ? "backward" : "forward",
                                 net.node(op.layer).spec.name.c_str()),
                       idx, op.layer);
        }
        if (op.layer != groupLayer || op.backward != groupBackward) {
            flushGroup();
            groupLayer = op.layer;
            groupBackward = op.backward;
            groupStartOp = idx;
            lastRank = -1;
            (op.backward ? bwdOrder : fwdOrder).push_back(op.layer);
        }
        int rank = groupRank(op.kind, op.backward);
        if (rank < 0) {
            structural(DiagCode::BadStructure,
                       strFormat("op kind '%s' is illegal in a %s layer "
                                 "group",
                                 core::opKindName(op.kind),
                                 op.backward ? "backward" : "forward"),
                       idx, op.layer);
        } else if (rank <= lastRank) {
            structural(
                op.kind == OpKind::Sync || hasKind(OpKind::Sync)
                    ? DiagCode::SyncOrder
                    : DiagCode::BadStructure,
                strFormat("op '%s' out of canonical order in the %s "
                          "group of '%s'",
                          core::opKindName(op.kind),
                          op.backward ? "backward" : "forward",
                          net.node(op.layer).spec.name.c_str()),
                idx, op.layer);
        } else {
            lastRank = rank;
        }
        groupKinds.push_back(op.kind);
    }

    void finish(const IterationProgram &prog)
    {
        flushGroup();
        int begins = 0;
        int ends = 0;
        int barriers = 0;
        for (const IterOp &op : prog.ops) {
            begins += op.kind == OpKind::BeginIteration;
            ends += op.kind == OpKind::EndIteration;
            barriers += op.kind == OpKind::Barrier;
        }
        if (prog.ops.empty() ||
            prog.ops.front().kind != OpKind::BeginIteration ||
            begins != 1) {
            structural(DiagCode::BadStructure,
                       "program must start with exactly one "
                       "BeginIteration",
                       0, -1);
        }
        if (prog.ops.empty() ||
            prog.ops.back().kind != OpKind::EndIteration || ends != 1) {
            structural(DiagCode::BadStructure,
                       "program must end with exactly one EndIteration",
                       int(prog.ops.size()) - 1, -1);
        }
        if (barriers != 1) {
            structural(DiagCode::BadStructure,
                       strFormat("program has %d Barrier ops (need "
                                 "exactly one between the phases)",
                                 barriers),
                       -1, -1);
        }
        // Layer groups must follow the topological execution order
        // (forward) and its exact reverse (backward).
        const std::vector<net::LayerId> &topo = net.topoOrder();
        std::vector<net::LayerId> rtopo(topo.rbegin(), topo.rend());
        if (fwdOrder != topo) {
            structural(DiagCode::BadStructure,
                       "forward layer groups do not follow the "
                       "topological order",
                       -1, -1);
        }
        if (bwdOrder != rtopo) {
            structural(DiagCode::BadStructure,
                       "backward layer groups do not follow the "
                       "reverse topological order",
                       -1, -1);
        }
    }
};

} // namespace

CheckResult
verifyProgram(const net::Network &net, const MemoryPlan &plan,
              const ExecutorConfig &cfg, const IterationProgram &prog)
{
    CheckResult out;
    VDNN_ASSERT(net.finalized(), "network must be finalized");
    if (plan.buffers.size() != net.numBuffers() ||
        plan.algos.size() != net.numLayers()) {
        out.add(DiagCode::PlanShape, Severity::Error,
                strFormat("plan does not match the network (%zu/%zu "
                          "directives, %zu/%zu algos) — cannot "
                          "interpret the program",
                          plan.buffers.size(), net.numBuffers(),
                          plan.algos.size(), net.numLayers()));
        return out;
    }

    StructureChecker structure(net, out);
    Interp in(net, plan, cfg, out);

    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
        const IterOp &op = prog.ops[i];
        structure.step(op, int(i));
        in.op = int(i);
        in.layer = op.layer;
        bool layer_ok = op.layer == net::kInputLayer ||
                        (op.layer >= 0 &&
                         std::size_t(op.layer) < net.numLayers());
        if (!layer_ok)
            continue; // structure already reported it
        switch (op.kind) {
          case OpKind::BeginIteration:
            in.opBegin();
            break;
          case OpKind::Alloc:
            if (op.backward)
                in.opBwdAlloc(op.layer);
            else
                in.opFwdAlloc(op.layer);
            break;
          case OpKind::Kernel:
            if (op.backward)
                in.opBwdKernel(op.layer);
            else
                in.opFwdKernel(op.layer);
            break;
          case OpKind::Offload:
            in.opFwdOffload(op.layer);
            break;
          case OpKind::OnDemandFetch:
            in.opBwdFetch(op.layer);
            break;
          case OpKind::Prefetch:
            in.opBwdPrefetch(op.layer);
            break;
          case OpKind::Sync:
            in.opSync(op.backward);
            break;
          case OpKind::Release:
            if (op.backward)
                in.opBwdRelease(op.layer);
            else
                in.opFwdRelease(op.layer);
            break;
          case OpKind::Barrier:
            in.opBarrier();
            break;
          case OpKind::EndIteration:
            in.opEnd();
            break;
        }
    }
    structure.finish(prog);
    return out;
}

} // namespace vdnn::check
