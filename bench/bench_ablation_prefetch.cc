/**
 * @file
 * Ablation: the vDNN prefetch design (Section III-B, Fig. 10).
 *
 * Three variants of vDNN_all (m):
 *  - bounded  : the paper's design — prefetch ahead, search window
 *               limited to the next CONV layer;
 *  - unbounded: prefetch with an unlimited search window (data arrives
 *               far ahead of its reuse, re-inflating memory);
 *  - none     : no prefetching — every offloaded map is fetched on
 *               demand, serializing backward computation.
 *
 * Expected shape: bounded ~= unbounded in performance, both faster
 * than none; unbounded holds prefetched data longer and so uses more
 * average memory than bounded; none has the lowest memory but pays for
 * it with stalls.
 */

#include "bench_common.hh"

#include "common/units.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

core::SessionResult
runVariant(const net::Network &network, bool prefetch, bool bounded)
{
    core::SessionConfig cfg;
    cfg.planner =
        offloadAllPlanner(core::AlgoPreference::MemoryOptimal);
    cfg.exec.prefetchEnabled = prefetch;
    cfg.exec.prefetchWindowBounded = bounded;
    return core::runSession(network, cfg);
}

void
report()
{
    stats::Table table("Ablation: prefetch policy under vDNN_all (m)");
    table.setColumns({"network", "variant", "fe latency (ms)",
                      "stall (ms)", "on-demand fetches",
                      "avg managed (MiB)"});

    struct Variant
    {
        const char *name;
        bool prefetch;
        bool bounded;
    };
    const Variant variants[] = {{"bounded (paper)", true, true},
                                {"unbounded window", true, false},
                                {"no prefetch", false, false}};

    double bounded_ms = 0.0, none_ms = 0.0;
    double bounded_avg = 0.0, unbounded_avg = 0.0;
    int bounded_odf = 0, none_odf = 0;

    for (const char *name : {"VGG-16 (64)", "VGG-16 (256)"}) {
        auto network = std::string(name) == "VGG-16 (64)"
                           ? net::buildVgg16(64)
                           : net::buildVgg16(256);
        for (const Variant &v : variants) {
            auto r = runVariant(*network, v.prefetch, v.bounded);
            if (!r.trainable) {
                table.addRow({name, v.name, "FAILS", "-", "-", "-"});
                continue;
            }
            if (std::string(name) == "VGG-16 (64)") {
                if (std::string(v.name) == "bounded (paper)") {
                    bounded_ms = toMs(r.featureExtractionTime);
                    bounded_avg = toMiB(r.avgManagedUsage);
                    bounded_odf = r.onDemandFetches;
                } else if (std::string(v.name) == "unbounded window") {
                    unbounded_avg = toMiB(r.avgManagedUsage);
                } else {
                    none_ms = toMs(r.featureExtractionTime);
                    none_odf = r.onDemandFetches;
                }
            }
            table.addRow({name, v.name,
                          stats::Table::cell(
                              toMs(r.featureExtractionTime), 1),
                          stats::Table::cell(
                              toMs(r.transferStallTime), 1),
                          stats::Table::cellInt(r.onDemandFetches),
                          stats::Table::cell(
                              toMiB(r.avgManagedUsage), 0)});
        }
    }
    table.print();

    stats::Comparison cmp("Prefetch ablation");
    cmp.addBool("prefetching avoids on-demand fetches", true,
                bounded_odf == 0 && none_odf > 0);
    cmp.addBool("prefetching is faster than on-demand fetching", true,
                bounded_ms < none_ms);
    cmp.addBool("bounded window uses no more memory than unbounded",
                true, bounded_avg <= unbounded_avg + 1.0);
    cmp.addInfo("on-demand penalty (VGG-16 (64))", "(prefetch hides it)",
                strFormat("%.0f ms -> %.0f ms without prefetch",
                          bounded_ms, none_ms));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("ablation/no_prefetch_vgg16_64", [] {
        auto network = net::buildVgg16(64);
        benchmark::DoNotOptimize(
            runVariant(*network, false, false).iterationTime);
    });
    return benchMain(argc, argv, report);
}
