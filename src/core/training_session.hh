/**
 * @file
 * Top-level experiment driver: run a network under a policy and
 * collect every metric the paper's evaluation reports.
 *
 * A TrainingSession owns one simulated GPU runtime, one vDNN memory
 * manager and one executor; it resolves the policy (running the
 * vDNN_dyn profiling passes when requested), executes the requested
 * number of training iterations, and gathers memory / performance /
 * traffic / power statistics.
 */

#ifndef VDNN_CORE_TRAINING_SESSION_HH
#define VDNN_CORE_TRAINING_SESSION_HH

#include "core/dynamic_policy.hh"
#include "core/executor.hh"
#include "core/planner.hh"
#include "core/policy.hh"
#include "gpu/gpu_spec.hh"
#include "net/network.hh"
#include "stats/time_weighted.hh"

#include <memory>
#include <string>
#include <vector>

namespace vdnn::core
{

struct SessionConfig
{
    /**
     * The memory planner driving this session. When null, the
     * deprecated policy/algoMode enum pair below is resolved through
     * plannerForPolicy() instead.
     */
    std::shared_ptr<Planner> planner;

    /** DEPRECATED: set `planner` instead. */
    TransferPolicy policy = TransferPolicy::Dynamic;
    /**
     * DEPRECATED: set `planner` instead. Static policies only —
     * vDNN_dyn derives its own per-layer algorithms, so combining
     * policy == Dynamic with a non-default algoMode is rejected by
     * Session::setup().
     */
    AlgoMode algoMode = AlgoMode::PerformanceOptimal;
    gpu::GpuSpec gpu;
    /**
     * Oracular GPU: removes the memory capacity bottleneck (Section
     * V-C) by growing the device pool to hold any allocation. Used to
     * normalize performance when the baseline cannot train at all.
     */
    bool oracle = false;
    int iterations = 2;
    bool contention = true;
    ExecutorConfig exec;
    bool keepTimeline = false;
    bool kernelLog = false;

    SessionConfig();
};

struct SessionResult
{
    std::string network;
    std::string configName;
    bool trainable = false;
    std::string failReason;

    MemoryPlan plan;
    std::vector<TrialRecord> trials; ///< vDNN_dyn profiling history

    // Performance (steady-state, last measured iteration).
    TimeNs iterationTime = 0;
    TimeNs featureExtractionTime = 0;
    TimeNs classifierTime = 0;
    TimeNs transferStallTime = 0;

    // GPU memory (over the whole measured window).
    Bytes maxTotalUsage = 0;
    Bytes avgTotalUsage = 0;
    Bytes maxManagedUsage = 0;
    Bytes avgManagedUsage = 0;
    Bytes persistentBytes = 0;

    // Transfers.
    Bytes offloadedBytesPerIter = 0;
    /** PCIe bytes actually moved (compression applied). */
    Bytes pcieBytesPerIter = 0;
    Bytes hostPeakBytes = 0;
    int offloads = 0;
    int prefetches = 0;
    int onDemandFetches = 0;

    // Power (Section V-D).
    double avgPowerW = 0.0;
    double maxPowerW = 0.0;

    // Per-layer detail (last iteration).
    std::vector<LayerTiming> layerTimings;
    std::vector<gpu::KernelRecord> kernels; ///< when kernelLog set

    // Usage timelines (when keepTimeline set).
    std::vector<stats::TimeWeighted::Sample> totalTimeline;
    std::vector<stats::TimeWeighted::Sample> managedTimeline;
};

/**
 * Handles to a device shared among tenants (multi-tenant serving).
 * All pointers must outlive the Session; allocations are charged to
 * @p clientId in the pool's per-tenant accounting.
 */
struct SharedGpu
{
    gpu::Runtime *runtime = nullptr;
    mem::MemoryPool *pool = nullptr;
    mem::PinnedHostAllocator *host = nullptr;
    int clientId = 0;
};

/**
 * An incrementally driven training session.
 *
 * runSession() runs the whole experiment in one call; Session exposes
 * the same lifecycle as separate setup / runIteration / teardown steps
 * so an external scheduler (src/serve/) can interleave iterations of
 * many jobs on one shared device. Two construction modes:
 *
 *  - exclusive: the session owns a private runtime and device pool
 *    sized by config.gpu (this is what runSession() uses);
 *  - shared: the session is one tenant of a SharedGpu — its persistent
 *    and transient allocations come from the communal pool and its
 *    kernels/DMAs arbitrate the shared compute and copy engines.
 */
class Session
{
  public:
    Session(const net::Network &net, SessionConfig config);
    Session(const net::Network &net, SessionConfig config,
            SharedGpu shared);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Resolve the plan (running vDNN_dyn profiling passes when the
     * policy is Dynamic) and allocate the persistent state.
     * @return false when untrainable / the pool cannot hold it.
     */
    bool setup();

    /** Run one training iteration. Requires a successful setup(). */
    IterationResult runIteration();

    /**
     * Start an iteration to be driven one op at a time by an external
     * scheduler (serve-layer packed overlap). The previous iteration
     * must have been collected with completeIteration().
     */
    IterationStepper &beginIteration();

    /** The live stepper, or nullptr between iterations. */
    IterationStepper *activeStepper();

    /**
     * Fold a finished stepper's result into the session state
     * (iteration count / failure) and retire the stepper.
     */
    IterationResult completeIteration();

    /** The compiled op stream (after a successful setup()). */
    const IterationProgram &program() const;

    /** Release all device state. Idempotent after setup(). */
    void teardown();

    /** setup() succeeded and teardown() has not run yet. */
    bool active() const { return isActive; }

    /** Number of completed (successful) iterations so far. */
    int iterationsDone() const { return itersDone; }

    Bytes persistentBytes() const;
    const MemoryPlan &plan() const { return execPlan; }
    const std::string &failReason() const { return failure; }

    gpu::Runtime &runtime() { return *rt; }
    MemoryManager &memory() { return *mm; }

    /** Assemble the experiment report from the state gathered so far. */
    SessionResult result() const;

  private:
    bool resolvePlan();

    const net::Network &net;
    SessionConfig config;
    gpu::GpuSpec spec; ///< effective device spec (oracle applied)
    std::unique_ptr<dnn::CudnnSim> cudnn;

    std::unique_ptr<gpu::Runtime> ownedRt;
    std::unique_ptr<MemoryManager> mm;
    gpu::Runtime *rt = nullptr;
    bool sharedMode = false;

    MemoryPlan execPlan;
    std::vector<TrialRecord> trials;
    std::string plannerLabel;
    std::unique_ptr<Executor> ex;

    bool planResolved = false;
    bool isActive = false;
    bool failed = false;
    std::string failure;
    int itersDone = 0;
    IterationResult lastIter;
};

/** Run one complete experiment. */
SessionResult runSession(const net::Network &net, SessionConfig config);

/**
 * Short label like "vDNN_all (m)" or "base (p) [oracle]". Uses the
 * planner's name when one is set; otherwise the deprecated enum pair.
 * vDNN_dyn derives per-layer algorithms itself, so its label never
 * carries an algoMode suffix (the field is ignored — and rejected by
 * setup() when set to a non-default value).
 */
std::string sessionConfigName(const SessionConfig &config);

} // namespace vdnn::core

#endif // VDNN_CORE_TRAINING_SESSION_HH
