#include "dnn/conv_algo.hh"

#include "common/logging.hh"

#include <algorithm>
#include <cmath>

namespace vdnn::dnn
{

const std::vector<ConvAlgo> &
allConvAlgos()
{
    static const std::vector<ConvAlgo> algos = {
        ConvAlgo::ImplicitGemm, ConvAlgo::ImplicitPrecompGemm,
        ConvAlgo::Gemm,         ConvAlgo::Direct,
        ConvAlgo::Fft,          ConvAlgo::FftTiling,
        ConvAlgo::Winograd,
    };
    return algos;
}

const char *
convAlgoName(ConvAlgo algo)
{
    switch (algo) {
      case ConvAlgo::ImplicitGemm:
        return "IMPLICIT_GEMM";
      case ConvAlgo::ImplicitPrecompGemm:
        return "IMPLICIT_PRECOMP_GEMM";
      case ConvAlgo::Gemm:
        return "GEMM";
      case ConvAlgo::Direct:
        return "DIRECT";
      case ConvAlgo::Fft:
        return "FFT";
      case ConvAlgo::FftTiling:
        return "FFT_TILING";
      case ConvAlgo::Winograd:
        return "WINOGRAD";
    }
    panic("unknown conv algo %d", int(algo));
}

bool
convAlgoApplicable(ConvAlgo algo, const LayerSpec &layer)
{
    VDNN_ASSERT(layer.kind == LayerKind::Conv, "not a conv layer");
    const ConvParams &p = layer.conv;
    bool unit_stride = p.strideH == 1 && p.strideW == 1;
    switch (algo) {
      case ConvAlgo::ImplicitGemm:
      case ConvAlgo::ImplicitPrecompGemm:
      case ConvAlgo::Gemm:
      case ConvAlgo::Direct:
        return true;
      case ConvAlgo::Fft:
        // cuDNN: unit stride and filters up to 16x16 that fit the padded
        // transform.
        return unit_stride && p.kernelH <= 16 && p.kernelW <= 16;
      case ConvAlgo::FftTiling:
        // 32x32 tiles: unit stride, filter must fit a tile half.
        return unit_stride && p.kernelH <= 16 && p.kernelW <= 16 &&
               layer.in.h >= 8 && layer.in.w >= 8;
      case ConvAlgo::Winograd:
        return unit_stride && p.kernelH == 3 && p.kernelW == 3;
    }
    panic("unknown conv algo %d", int(algo));
}

namespace
{

/** Round @p v up to the next power of two. */
std::int64_t
nextPow2(std::int64_t v)
{
    std::int64_t r = 1;
    while (r < v)
        r <<= 1;
    return r;
}

} // namespace

Bytes
convWorkspaceBytes(ConvAlgo algo, const LayerSpec &layer)
{
    VDNN_ASSERT(layer.kind == LayerKind::Conv, "not a conv layer");
    const ConvParams &p = layer.conv;
    const TensorShape &in = layer.in;
    const TensorShape &out = layer.out;
    const std::int64_t N = in.n;
    const std::int64_t C = in.c;
    const std::int64_t K = p.outChannels;
    const std::int64_t RS = std::int64_t(p.kernelH) * p.kernelW;
    const std::int64_t out_hw = out.h * out.w;

    switch (algo) {
      case ConvAlgo::ImplicitGemm:
      case ConvAlgo::Direct:
        return 0;
      case ConvAlgo::ImplicitPrecompGemm:
        // Precomputed gather indices for the lowered view.
        return out_hw * RS * Bytes(sizeof(std::int32_t));
      case ConvAlgo::Gemm: {
        // Explicit im2col, materialized in batch chunks of up to 16
        // images (cuDNN lowers per mini-chunk, not the full batch).
        std::int64_t chunk = std::min<std::int64_t>(N, 16);
        return chunk * C * RS * out_hw * kElementSize;
      }
      case ConvAlgo::Fft: {
        // Transformed input, filters and output over the full padded
        // plane: (N*C + K*C + N*K) complex values of Hf x Wf.
        std::int64_t hf = nextPow2(in.h + p.kernelH - 1);
        std::int64_t wf = nextPow2(in.w + p.kernelW - 1);
        std::int64_t planes = N * C + K * C + N * K;
        return planes * hf * wf * 2 * kElementSize;
      }
      case ConvAlgo::FftTiling: {
        // 32x32 tiles processed in chunks of tiles; the transform buffer
        // holds one tile plane per (image, channel) pair of the chunk.
        constexpr std::int64_t tile = 32;
        std::int64_t chunk_tiles = 1; // one tile position at a time
        std::int64_t planes = N * C + K * C + N * K;
        return planes * tile * tile * 2 * kElementSize * chunk_tiles;
      }
      case ConvAlgo::Winograd: {
        // F(2x2,3x3), non-fused: materializes both the input-transform
        // and output-transform tile buffers (16 coefficients per 4x4
        // tile each), processed in chunks of 1/8 of the tile plane.
        std::int64_t tiles = (out_hw + 7) / 8;
        return 4 * (C + K) * N * tiles * kElementSize;
      }
    }
    panic("unknown conv algo %d", int(algo));
}

double
convAlgoEfficiency(ConvAlgo algo, const LayerSpec &layer)
{
    VDNN_ASSERT(layer.kind == LayerKind::Conv, "not a conv layer");
    const ConvParams &p = layer.conv;

    // Base efficiencies calibrated to Titan X + cuDNN 4 throughput in
    // direct-convolution FLOP accounting. Transform-domain algorithms
    // exceed 1.0-adjacent values because they perform ~2.25x (Winograd
    // F(2x2,3x3)) less real arithmetic than the direct-FLOP count.
    double eff = 0.0;
    switch (algo) {
      case ConvAlgo::ImplicitGemm:
        eff = 0.40;
        break;
      case ConvAlgo::ImplicitPrecompGemm:
        eff = 0.50;
        break;
      case ConvAlgo::Gemm:
        eff = 0.52;
        break;
      case ConvAlgo::Direct:
        eff = 0.45;
        break;
      case ConvAlgo::Fft:
        eff = 0.80;
        break;
      case ConvAlgo::FftTiling:
        eff = 0.85;
        break;
      case ConvAlgo::Winograd:
        eff = 1.02;
        break;
    }

    // Geometry derates: very few input channels starve the GEMM inner
    // dimension (AlexNet conv1 with C=3 runs far below peak on every
    // algorithm), and tiny spatial extents underutilize FFT tiles.
    double c_derate =
        std::min(1.0, 0.25 + 0.75 * double(layer.in.c) / 48.0);
    eff *= c_derate;

    if (algo == ConvAlgo::Fft || algo == ConvAlgo::FftTiling) {
        // Transform overhead is amortized worse for large filters'
        // padding and for small images.
        if (layer.in.h < 16 || layer.in.w < 16)
            eff *= 0.7;
    }
    if (algo == ConvAlgo::Winograd && layer.in.h < 8)
        eff *= 0.8;

    // Large-stride convolutions (AlexNet/OverFeat first layers) achieve
    // lower fractions of peak on the GEMM family too.
    if (p.strideH > 1 || p.strideW > 1)
        eff *= 0.75;

    return std::max(eff, 0.02);
}

} // namespace vdnn::dnn
