/**
 * @file
 * Serving metrics: the report the multi-tenant scheduler produces.
 *
 * Per job: queueing delay (arrival to admission) and job completion
 * time (arrival to finish). Aggregate: makespan, mean/p99 JCT, jobs
 * admitted concurrently (peak and time-weighted average), and the
 * shared pool occupancy (peak, time-weighted average, timeline).
 */

#ifndef VDNN_SERVE_SERVE_STATS_HH
#define VDNN_SERVE_SERVE_STATS_HH

#include "serve/job.hh"
#include "stats/table.hh"
#include "stats/time_weighted.hh"

#include <string>
#include <vector>

namespace vdnn::serve
{

/** Final per-job line of the report. */
struct JobOutcome
{
    JobId id = -1;
    std::string name;
    std::string configName;
    JobState state = JobState::Pending;
    int priority = 0;
    TimeNs arrival = 0;
    TimeNs admitTime = kTimeNone;
    /** First iteration dispatch (preemption responsiveness metric). */
    TimeNs firstDispatchTime = kTimeNone;
    TimeNs finishTime = kTimeNone;
    TimeNs queueingDelay = 0;
    TimeNs completionTime = 0; ///< JCT; 0 unless Finished
    TimeNs serviceTime = 0;
    int iterations = 0;
    int oomRequeues = 0;
    int preemptions = 0;
    int replans = 0;
    /** Times this tenant's cold buffers were paged out for a
     *  co-tenant (buffer-granularity eviction). */
    int pageOuts = 0;
    /** Tenants this job evicted to get admitted. */
    int victimsPreempted = 0;
    /** Cross-device rebalance migrations. */
    int migrations = 0;
    /** Device the job last ran on (-1: never admitted). */
    int device = -1;
    /** Placement history: every device the job ran on, in order. */
    std::vector<int> placements;
    Bytes persistentBytes = 0;
    Bytes peakPoolBytes = 0;
    Bytes offloadedBytes = 0;
    /** JCT service-level objective carried by the spec (0 = none). */
    TimeNs sloJct = 0;
    std::string failReason;

    /** Finished within the SLO (false when none was set). */
    bool sloMet() const
    {
        return sloJct > 0 && state == JobState::Finished &&
               completionTime <= sloJct;
    }
};

/** Per-device section of a cluster report. */
struct DeviceOutcome
{
    int device = -1;
    std::string gpuName;
    Bytes poolCapacity = 0;
    Bytes poolPeakBytes = 0;
    Bytes poolAvgBytes = 0; ///< time-weighted
    /** Busy time of this device's compute engine. */
    TimeNs computeBusyTime = 0;
    /** Admissions onto this device (including migrations in). */
    int jobsPlaced = 0;
    int migrationsIn = 0;
    int migrationsOut = 0;
    /** Ledger state after the drain (both must be zero). */
    Bytes reservedAtEnd = 0;
    int evictedLedgerAtEnd = 0;
};

/**
 * One tenant lifecycle transition, with the admission ledger's
 * reserved bytes on both sides — the audit trail the state machine
 * leaves behind (dumped by `memory_timeline lifecycle`).
 */
struct LifecycleEvent
{
    TimeNs when = 0;
    JobId job = -1;
    /** "admit" / "suspend" / "evict" / "replan" / "resume" /
     *  "migrate" / "migrate-out" / "migrate-stall" / "page-out" /
     *  "finish" / "requeue" / "fail". */
    const char *what = "";
    /** Device the transition happened on (migrate: the target). */
    int device = -1;
    /** Reserved bytes summed over every device's ledger. */
    Bytes reservedBefore = 0;
    Bytes reservedAfter = 0;
};

struct ServeReport
{
    std::string schedulerName;
    std::string gpuName;
    /** Placement policy label ("" on a single-device run). */
    std::string placementName;
    /** Devices of the serving cluster (1 = the classic single GPU). */
    int deviceCount = 1;
    std::vector<JobOutcome> jobs;
    /** One section per device (aggregates sum these). */
    std::vector<DeviceOutcome> devices;

    /** First arrival to last completion. */
    TimeNs makespan = 0;
    /** Most jobs admitted (device-resident) at once. */
    int peakJobsInFlight = 0;
    /** Time-weighted average of admitted jobs over the run. */
    double avgJobsInFlight = 0.0;

    Bytes poolCapacity = 0;
    Bytes poolPeakBytes = 0;
    Bytes poolAvgBytes = 0; ///< time-weighted

    /** Busy time summed over every device's compute engine. */
    TimeNs computeBusyTime = 0;
    /** Busy time summed over every device's DMA engines. */
    TimeNs copyBusyTime = 0;
    /** Mean per-device compute busy fraction over the makespan. */
    double computeUtilization() const
    {
        return makespan > 0 && deviceCount > 0
                   ? double(computeBusyTime) /
                         (double(makespan) * deviceCount)
                   : 0.0;
    }

    /** Completed iterations per second over the makespan — the
     *  aggregate-throughput metric the scaling bench reports. */
    double aggregateThroughput() const;

    /** Shared-pool usage change points (when keepTimeline was set). */
    std::vector<stats::TimeWeighted::Sample> poolTimeline;
    /** Jobs-in-flight change points (when keepTimeline was set). */
    std::vector<stats::TimeWeighted::Sample> inflightTimeline;

    /** Every lifecycle transition, in time order. */
    std::vector<LifecycleEvent> lifecycle;

    /** Admission ledger after the run drained: both must be zero when
     *  every job reached a terminal state. */
    Bytes reservedBytesAtEnd = 0;
    int evictedLedgerAtEnd = 0;

    /**
     * Event-driven serve-loop accounting: device wake-hook firings
     * (one per executed completion event), step offers that made no
     * progress, and idle clock advances to the next pending arrival.
     * Telemetry for the polling -> wake-list rework; never printed in
     * the golden-pinned tables.
     */
    std::uint64_t loopWakeups = 0;
    std::uint64_t loopFruitlessPolls = 0;
    std::uint64_t loopIdleAdvances = 0;

    int finishedCount() const;
    int failedCount() const;
    int rejectedCount() const;

    /** Mean job completion time over finished jobs. */
    TimeNs meanJct() const;
    /** p95 (nearest-rank) job completion time over finished jobs. */
    TimeNs p95Jct() const;
    /** p99 (nearest-rank) job completion time over finished jobs. */
    TimeNs p99Jct() const;
    TimeNs meanQueueingDelay() const;
    /** p95 (nearest-rank) queueing delay over admitted jobs. */
    TimeNs p95QueueingDelay() const;
    /** p99 (nearest-rank) queueing delay over admitted jobs. */
    TimeNs p99QueueingDelay() const;

    /** Jobs that carried a JCT SLO (JobSpec::sloJct > 0). */
    int sloEligible() const;
    /** Eligible jobs that finished within their SLO. */
    int sloMet() const;
    /** sloMet() / sloEligible(); 1.0 when nothing carried an SLO. */
    double sloAttainment() const;

    /** Mean JCT over finished jobs at exactly @p priority. */
    TimeNs meanJctAtPriority(int priority) const;
    /** p95 (nearest-rank) JCT over finished jobs at @p priority. */
    TimeNs p95JctAtPriority(int priority) const;

    /**
     * Preemption latency: arrival to first kernel dispatch, sampled
     * over every job that evicted at least one victim to get in (the
     * responsiveness a high-priority arrival actually observed). At
     * op granularity this is microseconds; at iteration granularity
     * it includes the victim's full remaining iteration.
     */
    std::vector<TimeNs> preemptionLatencies() const;
    TimeNs meanPreemptionLatency() const;
    /** p95 (nearest-rank) preemption latency (0 when none). */
    TimeNs p95PreemptionLatency() const;
    /** Buffer-granularity page-outs summed over all tenants. */
    int totalPageOuts() const;

    /** Per-job ASCII table (gains a placement column on a cluster). */
    stats::Table jobTable() const;
    /** One-row aggregate summary. */
    stats::Table summaryTable() const;
    /** One row per device: placements, migrations, pool, busy time. */
    stats::Table deviceTable() const;
};

} // namespace vdnn::serve

#endif // VDNN_SERVE_SERVE_STATS_HH
