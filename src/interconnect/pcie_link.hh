/**
 * @file
 * PCI Express link model for DMA transfers between host and GPU.
 *
 * The vDNN paper's node uses a gen3 x16 switch: 16 GB/s raw, with DMA
 * initiated cudaMemcpy achieving ~12.8 GB/s effective (Section II-C).
 * The model is: a per-transfer fixed setup latency plus bytes divided by
 * the effective bandwidth. Effective bandwidth ramps down for very small
 * transfers (the setup cost dominates), matching the measured behaviour
 * that motivates batching transfers at feature-map granularity.
 */

#ifndef VDNN_INTERCONNECT_PCIE_LINK_HH
#define VDNN_INTERCONNECT_PCIE_LINK_HH

#include "common/types.hh"

#include <string>

namespace vdnn::ic
{

struct PcieSpec
{
    /** Marketing name, e.g. "PCIe gen3 x16". */
    std::string name = "PCIe gen3 x16";
    /** Raw link bandwidth, bytes/sec (16 GB/s for gen3 x16). */
    double rawBandwidth = 16.0e9;
    /** Effective DMA bandwidth, bytes/sec (12.8 GB/s measured). */
    double dmaBandwidth = 12.8e9;
    /** Fixed per-transfer setup latency (driver + DMA engine kick). */
    TimeNs setupLatency = 8000; // 8 us
};

/** Preset matching the paper's evaluation node (Section IV-B). */
PcieSpec pcieGen3x16();

/** Hypothetical NVLINK-class interconnect (Section III-A mentions it). */
PcieSpec nvlinkGen1();

class PcieLink
{
  public:
    explicit PcieLink(PcieSpec spec);

    /** Time to DMA @p bytes across the link (either direction). */
    TimeNs transferTime(Bytes bytes) const;

    /** Effective achieved bandwidth for a transfer of @p bytes. */
    double achievedBandwidth(Bytes bytes) const;

    const PcieSpec &spec() const { return linkSpec; }

  private:
    PcieSpec linkSpec;
};

} // namespace vdnn::ic

#endif // VDNN_INTERCONNECT_PCIE_LINK_HH
