/**
 * @file
 * vDNN_dyn: the dynamic memory-transfer / algorithm policy
 * (Section III-C).
 *
 * Before real training starts, vDNN_dyn runs a short sequence of
 * profiling passes (simulated trial iterations — the paper runs real
 * ones; their cost is negligible against days of training):
 *
 *  1. vDNN_all with memory-optimal algorithms: the least-memory
 *     configuration. If this fails, the network is untrainable.
 *  2. No offloading with the fastest algorithms: adopted outright if
 *     it fits — highest performance, no transfer overhead.
 *  3. vDNN_conv then vDNN_all with the fastest algorithms.
 *  4. A greedy pass per transfer policy (conv, then all): start from
 *     the fastest algorithm everywhere; whenever a trial overflows on
 *     a layer's workspace, locally downgrade that layer to the next
 *     fastest algorithm with a smaller workspace and retry, bottoming
 *     out at the zero-workspace IMPLICIT_GEMM.
 *  5. Fall back to the step-1 configuration.
 */

#ifndef VDNN_CORE_DYNAMIC_POLICY_HH
#define VDNN_CORE_DYNAMIC_POLICY_HH

#include "core/executor.hh"
#include "core/policy.hh"
#include "dnn/cudnn_sim.hh"
#include "gpu/gpu_spec.hh"
#include "net/network.hh"

#include <string>
#include <vector>

namespace vdnn::core
{

/** One profiling pass and its outcome. */
struct TrialRecord
{
    std::string description;
    bool passed = false;
    TimeNs makespan = 0;
    std::string failReason;
};

/** The derived plan plus the profiling history. */
struct DynamicResult
{
    bool trainable = false;
    Plan plan;
    std::vector<TrialRecord> trials;
};

class DynamicPolicy
{
  public:
    DynamicPolicy(const net::Network &net, const dnn::CudnnSim &cudnn,
                  gpu::GpuSpec spec, ExecutorConfig exec_config = {},
                  bool contention = true);

    /** Run the profiling passes and derive the execution plan. */
    DynamicResult derive();

    /** Maximum trial iterations in the greedy downgrade loop. */
    static constexpr int kMaxGreedyTrials = 256;

  private:
    TrialRecord trial(const Plan &plan, const std::string &what,
                      IterationResult *detail = nullptr);
    Plan noOffloadPlan(AlgoMode mode) const;
    bool greedy(TransferPolicy policy, DynamicResult &result);

    const net::Network &net;
    const dnn::CudnnSim &cudnn;
    gpu::GpuSpec gpu;
    ExecutorConfig execCfg;
    bool contention;
};

} // namespace vdnn::core

#endif // VDNN_CORE_DYNAMIC_POLICY_HH
