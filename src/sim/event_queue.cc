#include "sim/event_queue.hh"

#include "common/logging.hh"

#include <algorithm>

namespace vdnn::sim
{

EventId
EventQueue::schedule(TimeNs when, std::function<void()> fn)
{
    VDNN_ASSERT(when >= curTime,
                "scheduling into the past: when=%lld now=%lld",
                (long long)when, (long long)curTime);
    VDNN_ASSERT(fn != nullptr, "scheduling a null callback");
    EventId id = nextId++;
    heap.push(Entry{when, id, std::move(fn)});
    ++liveEvents;
    return id;
}

EventId
EventQueue::scheduleAfter(TimeNs delay, std::function<void()> fn)
{
    VDNN_ASSERT(delay >= 0, "negative delay %lld", (long long)delay);
    return schedule(curTime + delay, std::move(fn));
}

void
EventQueue::deschedule(EventId id)
{
    // Lazy deletion: remember the id and drop the entry when it surfaces.
    if (std::find(cancelled.begin(), cancelled.end(), id) == cancelled.end()) {
        cancelled.push_back(id);
        VDNN_ASSERT(liveEvents > 0, "descheduling with no live events");
        --liveEvents;
    }
}

void
EventQueue::skipCancelled()
{
    while (!heap.empty()) {
        auto it = std::find(cancelled.begin(), cancelled.end(),
                            heap.top().id);
        if (it == cancelled.end())
            return;
        cancelled.erase(it);
        heap.pop();
    }
}

bool
EventQueue::step()
{
    skipCancelled();
    if (heap.empty())
        return false;
    // The callback may schedule new events; copy out first.
    Entry e = heap.top();
    heap.pop();
    --liveEvents;
    VDNN_ASSERT(e.when >= curTime, "event time went backwards");
    curTime = e.when;
    ++numExecuted;
    e.fn();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(TimeNs until)
{
    std::uint64_t n = 0;
    for (;;) {
        skipCancelled();
        if (heap.empty() || heap.top().when > until)
            break;
        step();
        ++n;
    }
    if (curTime < until)
        curTime = until;
    return n;
}

} // namespace vdnn::sim
