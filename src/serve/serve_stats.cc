#include "serve/serve_stats.hh"

#include "common/units.hh"

#include <algorithm>

namespace vdnn::serve
{

namespace
{

int
countState(const std::vector<JobOutcome> &jobs, JobState s)
{
    int n = 0;
    for (const JobOutcome &j : jobs)
        n += j.state == s ? 1 : 0;
    return n;
}

std::vector<TimeNs>
finishedJcts(const std::vector<JobOutcome> &jobs)
{
    std::vector<TimeNs> jcts;
    for (const JobOutcome &j : jobs) {
        if (j.state == JobState::Finished)
            jcts.push_back(j.completionTime);
    }
    std::sort(jcts.begin(), jcts.end());
    return jcts;
}

} // namespace

int
ServeReport::finishedCount() const
{
    return countState(jobs, JobState::Finished);
}

int
ServeReport::failedCount() const
{
    return countState(jobs, JobState::Failed);
}

int
ServeReport::rejectedCount() const
{
    return countState(jobs, JobState::Rejected);
}

TimeNs
ServeReport::meanJct() const
{
    std::vector<TimeNs> jcts = finishedJcts(jobs);
    if (jcts.empty())
        return 0;
    double sum = 0.0;
    for (TimeNs t : jcts)
        sum += double(t);
    return TimeNs(sum / double(jcts.size()));
}

TimeNs
ServeReport::p99Jct() const
{
    std::vector<TimeNs> jcts = finishedJcts(jobs);
    if (jcts.empty())
        return 0;
    // Nearest-rank percentile.
    std::size_t rank = std::size_t(std::max<double>(
        1.0, std::ceil(0.99 * double(jcts.size()))));
    return jcts[rank - 1];
}

TimeNs
ServeReport::meanQueueingDelay() const
{
    double sum = 0.0;
    int n = 0;
    for (const JobOutcome &j : jobs) {
        if (j.admitTime != kTimeNone) {
            sum += double(j.queueingDelay);
            ++n;
        }
    }
    return n > 0 ? TimeNs(sum / double(n)) : 0;
}

stats::Table
ServeReport::jobTable() const
{
    stats::Table t(schedulerName + " on " + gpuName + ": per-job report");
    t.setColumns({"job", "config", "state", "arrive (ms)", "queue (ms)",
                  "iters", "JCT (ms)", "persistent (MiB)",
                  "peak pool (MiB)"});
    for (const JobOutcome &j : jobs) {
        t.addRow({j.name, j.configName, jobStateName(j.state),
                  stats::Table::cell(toMs(j.arrival), 1),
                  stats::Table::cell(toMs(j.queueingDelay), 1),
                  stats::Table::cellInt(j.iterations),
                  j.state == JobState::Finished
                      ? stats::Table::cell(toMs(j.completionTime), 1)
                      : std::string("-"),
                  stats::Table::cell(toMiB(j.persistentBytes), 1),
                  stats::Table::cell(toMiB(j.peakPoolBytes), 1)});
    }
    return t;
}

stats::Table
ServeReport::summaryTable() const
{
    stats::Table t(schedulerName + " on " + gpuName + ": summary");
    t.setColumns({"finished", "failed", "rejected", "makespan (ms)",
                  "mean JCT (ms)", "p99 JCT (ms)", "mean queue (ms)",
                  "peak jobs", "avg jobs", "peak pool (GiB)",
                  "avg pool (GiB)"});
    t.addRow({stats::Table::cellInt(finishedCount()),
              stats::Table::cellInt(failedCount()),
              stats::Table::cellInt(rejectedCount()),
              stats::Table::cell(toMs(makespan), 1),
              stats::Table::cell(toMs(meanJct()), 1),
              stats::Table::cell(toMs(p99Jct()), 1),
              stats::Table::cell(toMs(meanQueueingDelay()), 1),
              stats::Table::cellInt(peakJobsInFlight),
              stats::Table::cell(avgJobsInFlight, 2),
              stats::Table::cell(toGiB(poolPeakBytes), 2),
              stats::Table::cell(toGiB(poolAvgBytes), 2)});
    return t;
}

} // namespace vdnn::serve
