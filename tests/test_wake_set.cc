/**
 * @file
 * Tests for the event-driven serve loop's wake machinery: the WakeSet
 * bitset (dedup, ascending sweep order, live mutation during a sweep)
 * and the Device/Cluster completion hooks that populate it — every
 * computeFinish/copyFinish must wake exactly the owning device.
 */

#include "serve/wake_set.hh"

#include "common/units.hh"
#include "gpu/cluster.hh"
#include "gpu/gpu_spec.hh"

#include <gtest/gtest.h>

#include <vector>

using namespace vdnn;
using namespace vdnn::serve;
using namespace vdnn::literals;

// --- WakeSet -----------------------------------------------------------------

TEST(WakeSet, AddIsDedupedAndQueryable)
{
    WakeSet s(8);
    EXPECT_TRUE(s.empty());
    s.add(3);
    s.add(5);
    s.add(3); // dup absorbed
    EXPECT_EQ(s.size(), 2);
    EXPECT_TRUE(s.contains(3));
    EXPECT_TRUE(s.contains(5));
    EXPECT_FALSE(s.contains(4));
}

TEST(WakeSet, NextSweepsAscendingAcrossWords)
{
    // Members straddle three 64-bit words; the sweep must still come
    // out in ascending id order (the polling loop's device order).
    WakeSet s(192);
    s.add(130);
    s.add(3);
    s.add(64);
    s.add(63);
    std::vector<int> seen;
    for (int id = s.next(0); id != -1; id = s.next(id + 1))
        seen.push_back(id);
    EXPECT_EQ(seen, (std::vector<int>{3, 63, 64, 130}));
}

TEST(WakeSet, RemoveAndClear)
{
    WakeSet s(16);
    s.add(1);
    s.add(9);
    s.remove(1);
    s.remove(2); // non-member: no-op
    EXPECT_EQ(s.size(), 1);
    EXPECT_FALSE(s.contains(1));
    EXPECT_TRUE(s.contains(9));
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.next(0), -1);
}

TEST(WakeSet, NextPastCapacityIsEmpty)
{
    WakeSet s(4);
    s.add(3);
    EXPECT_EQ(s.next(4), -1);
    EXPECT_EQ(s.next(3), 3);
}

TEST(WakeSet, LiveMutationDuringSweep)
{
    // The serve loop's contract: a bit added above the cursor during
    // a sweep is visited in the same sweep; a bit added at/below the
    // cursor waits for the next sweep.
    WakeSet s(8);
    s.add(1);
    s.add(4);
    std::vector<int> seen;
    for (int id = s.next(0); id != -1; id = s.next(id + 1)) {
        seen.push_back(id);
        if (id == 1) {
            s.add(6); // above cursor: visited this sweep
            s.add(0); // below cursor: not visited this sweep
        }
    }
    EXPECT_EQ(seen, (std::vector<int>{1, 4, 6}));
    EXPECT_TRUE(s.contains(0)); // still pending for the next sweep
}

TEST(WakeSet, ResizeDropsMembers)
{
    WakeSet s(8);
    s.add(7);
    s.resize(128);
    EXPECT_TRUE(s.empty());
    s.add(127);
    EXPECT_EQ(s.next(0), 127);
}

// --- Device / Cluster wake hooks ---------------------------------------------

namespace
{

gpu::KernelDesc
kernel(const char *name, TimeNs dur)
{
    gpu::KernelDesc k;
    k.name = name;
    k.duration = dur;
    return k;
}

struct WakeLog
{
    std::vector<int> wakes;
    std::vector<int> clients;
    static void
    hook(void *ctx, int device, int client)
    {
        static_cast<WakeLog *>(ctx)->wakes.push_back(device);
        static_cast<WakeLog *>(ctx)->clients.push_back(client);
    }
};

} // namespace

TEST(WakeHook, KernelCompletionWakesOwningDevice)
{
    gpu::Cluster cluster(
        gpu::homogeneousCluster(gpu::titanXMaxwell(), 2));
    WakeLog log;
    cluster.setWakeHook(&WakeLog::hook, &log);

    auto s = cluster.device(0).createStream("compute");
    cluster.device(0).launchKernel(s, kernel("k", 10_us));
    cluster.device(0).synchronize(s);

    ASSERT_EQ(log.wakes.size(), 1u);
    EXPECT_EQ(log.wakes[0], 0);
}

TEST(WakeHook, HooksFanOutPerDevice)
{
    gpu::Cluster cluster(
        gpu::homogeneousCluster(gpu::titanXMaxwell(), 3));
    WakeLog log;
    cluster.setWakeHook(&WakeLog::hook, &log);

    // A kernel on device 2 and a copy on device 1: each completion
    // must wake its own device — never a sibling.
    auto sk = cluster.device(2).createStream("compute");
    auto sc = cluster.device(1).createStream("memory");
    cluster.device(2).launchKernel(sk, kernel("k", 10_us));
    cluster.device(1).memcpyAsync(sc, 1_MiB, gpu::CopyDir::DeviceToHost,
                                  "offload");
    cluster.device(2).synchronize(sk);
    cluster.device(1).synchronize(sc);

    ASSERT_EQ(log.wakes.size(), 2u);
    // Kernel (10 us) completes before the 1 MiB copy drains.
    EXPECT_EQ(log.wakes[0], 2);
    EXPECT_EQ(log.wakes[1], 1);
}

TEST(WakeHook, UnsetHookIsInert)
{
    gpu::Cluster cluster(
        gpu::homogeneousCluster(gpu::titanXMaxwell(), 1));
    auto s = cluster.device(0).createStream("compute");
    cluster.device(0).launchKernel(s, kernel("k", 10_us));
    cluster.device(0).synchronize(s); // no hook installed: no crash
    EXPECT_EQ(cluster.device(0).now(), 10_us);
}
