/**
 * @file
 * VGG builders: the paper's "VGG-16" and its very-deep extensions
 * VGG-116/216/316/416 (Section IV-C).
 *
 * Note on naming: the paper counts CONV layers only — its "VGG-16" has
 * "16 CONV and 3 FC layers" (Figure 5 shows CONV_01..CONV_16), i.e.
 * Simonyan & Zisserman's configuration E with conv groups {2,2,4,4,4}.
 * We follow the paper's nomenclature.
 *
 * VGG is homogeneous: 3x3 convolutions (stride 1, pad 1) in five groups
 * separated by 2x2/2 max-pooling, with output channels 64/128/256/512/
 * 512 per group. The deep variants add 20 CONV layers per group for
 * each +100 total CONV layers, keeping each group's channel width.
 */

#include "net/builders.hh"

#include "common/logging.hh"

namespace vdnn::net
{

using namespace vdnn::dnn;

namespace
{

std::unique_ptr<Network>
buildVggStyle(const std::string &name, std::int64_t batch,
              const std::vector<int> &convs_per_group)
{
    VDNN_ASSERT(convs_per_group.size() == 5, "VGG has five conv groups");
    const std::int64_t group_channels[5] = {64, 128, 256, 512, 512};

    TensorShape in{batch, 3, 224, 224};
    auto net = std::make_unique<Network>(name, in);

    auto shape = [&]() {
        return net->node(LayerId(net->numLayers() - 1)).spec.out;
    };

    for (int g = 0; g < 5; ++g) {
        for (int i = 0; i < convs_per_group[std::size_t(g)]; ++i) {
            TensorShape x = net->numLayers() == 0 ? in : shape();
            ConvParams p;
            p.outChannels = group_channels[g];
            p.kernelH = p.kernelW = 3;
            p.strideH = p.strideW = 1;
            p.padH = p.padW = 1;
            std::string id = strFormat("conv%d_%d", g + 1, i + 1);
            net->append(makeConv(id, x, p));
            net->append(makeActivation("relu" + id.substr(4), shape()));
        }
        PoolParams p;
        p.windowH = p.windowW = 2;
        p.strideH = p.strideW = 2;
        net->append(makePool(strFormat("pool%d", g + 1), shape(), p));
    }

    net->append(makeFc("fc6", shape(), FcParams{4096}));
    net->append(makeActivation("relu6", shape()));
    net->append(makeDropout("drop6", shape()));
    net->append(makeFc("fc7", shape(), FcParams{4096}));
    net->append(makeActivation("relu7", shape()));
    net->append(makeDropout("drop7", shape()));
    net->append(makeFc("fc8", shape(), FcParams{1000}));
    net->append(makeSoftmaxLoss("loss", shape()));

    net->finalize();
    return net;
}

} // namespace

std::unique_ptr<Network>
buildVgg16(std::int64_t batch)
{
    VDNN_ASSERT(batch > 0, "batch must be positive");
    return buildVggStyle(strFormat("VGG-16 (%lld)", (long long)batch),
                         batch, {2, 2, 4, 4, 4});
}

std::unique_ptr<Network>
buildVggDeep(int conv_layers, std::int64_t batch)
{
    VDNN_ASSERT(batch > 0, "batch must be positive");
    if (conv_layers == 16)
        return buildVgg16(batch);
    VDNN_ASSERT(conv_layers > 16 && (conv_layers - 16) % 100 == 0,
                "VGG depth must be 16 + k*100, got %d", conv_layers);
    // Each +100 adds 20 CONV layers to each of the five groups
    // (Section IV-C).
    int extra_per_group = (conv_layers - 16) / 100 * 20;
    std::vector<int> groups = {2, 2, 4, 4, 4};
    for (int &g : groups)
        g += extra_per_group;
    return buildVggStyle(strFormat("VGG-%d (%lld)", conv_layers,
                                   (long long)batch),
                         batch, groups);
}

std::unique_ptr<Network>
buildTinyCnn(std::int64_t batch, std::int64_t image)
{
    VDNN_ASSERT(batch > 0 && image >= 8, "bad tiny-cnn geometry");
    TensorShape in{batch, 3, image, image};
    auto net = std::make_unique<Network>(
        strFormat("TinyCNN (%lld)", (long long)batch), in);

    auto shape = [&]() {
        return net->node(LayerId(net->numLayers() - 1)).spec.out;
    };

    ConvParams c1;
    c1.outChannels = 16;
    c1.padH = c1.padW = 1;
    net->append(makeConv("conv1", in, c1));
    net->append(makeActivation("relu1", shape()));
    PoolParams p;
    net->append(makePool("pool1", shape(), p));
    ConvParams c2;
    c2.outChannels = 32;
    c2.padH = c2.padW = 1;
    net->append(makeConv("conv2", shape(), c2));
    net->append(makeActivation("relu2", shape()));
    net->append(makePool("pool2", shape(), p));
    net->append(makeFc("fc1", shape(), FcParams{64}));
    net->append(makeActivation("relu3", shape()));
    net->append(makeFc("fc2", shape(), FcParams{10}));
    net->append(makeSoftmaxLoss("loss", shape()));

    net->finalize();
    return net;
}

} // namespace vdnn::net
