/**
 * @file
 * The paper's headline experiment: training VGG-16 with batch size 256
 * — a ~28 GB workload — on a single 12 GB Titan X.
 *
 * The baseline policy cannot even allocate the network; vDNN_dyn
 * profiles the configuration space and finds a plan that trains it
 * with a modest performance loss versus a hypothetical GPU with
 * unlimited memory (the "oracular baseline" of Section V-C).
 *
 * Usage: train_vgg16_titanx [batch]
 */

#include "common/logging.hh"
#include "common/units.hh"
#include "core/dynamic_policy.hh"
#include "core/planner.hh"
#include "core/training_session.hh"
#include "dnn/conv_algo.hh"
#include "net/builders.hh"
#include "stats/table.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace vdnn;
using namespace vdnn::core;

int
main(int argc, char **argv)
{
    std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 256;
    auto network = net::buildVgg16(batch);
    std::printf("== %s on NVIDIA Titan X (12 GB) ==\n\n",
                network->name().c_str());

    // Baseline: network-wide allocation.
    SessionConfig base_cfg;
    base_cfg.planner = std::make_shared<BaselinePlanner>(
        AlgoPreference::PerformanceOptimal);
    auto base = runSession(*network, base_cfg);
    std::printf("baseline (p): %s\n",
                base.trainable
                    ? strFormat("trains, %.0f ms/iteration",
                                toMs(base.iterationTime))
                          .c_str()
                    : strFormat("FAILS — %s", base.failReason.c_str())
                          .c_str());

    // Oracular baseline: unlimited memory, for normalization.
    base_cfg.oracle = true;
    auto oracle = runSession(*network, base_cfg);
    std::printf("oracular baseline: %.0f ms/iteration "
                "(would need %.1f GB)\n\n",
                toMs(oracle.iterationTime),
                double(oracle.maxTotalUsage) / 1e9);

    // vDNN_dyn: profile, then train.
    SessionConfig dyn_cfg;
    dyn_cfg.planner = std::make_shared<DynamicPlanner>();
    auto dyn = runSession(*network, dyn_cfg);
    if (!dyn.trainable) {
        std::printf("vDNN_dyn: cannot train (%s)\n",
                    dyn.failReason.c_str());
        return 1;
    }

    std::printf("vDNN_dyn profiling passes:\n");
    for (const auto &trial : dyn.trials) {
        std::printf("  %-34s %s\n", trial.description.c_str(),
                    trial.passed
                        ? strFormat("pass (%.0f ms)",
                                    toMs(trial.makespan))
                              .c_str()
                        : strFormat("fail (%s)",
                                    trial.failReason.substr(0, 48).c_str())
                              .c_str());
    }
    std::printf("selected plan: %s\n\n", dyn.plan.provenance.c_str());

    // How many CONV layers kept their fastest algorithm?
    int downgraded = 0;
    for (net::LayerId id : network->topoOrder()) {
        if (network->node(id).spec.kind == dnn::LayerKind::Conv &&
            dyn.plan.algos[std::size_t(id)] ==
                dnn::kMemoryOptimalAlgo) {
            ++downgraded;
        }
    }

    stats::Table table("result");
    table.setColumns({"metric", "value"});
    table.addRow({"iteration latency",
                  strFormat("%.0f ms", toMs(dyn.iterationTime))});
    table.addRow({"vs oracular baseline",
                  strFormat("%.1f%%",
                            100.0 * double(oracle.featureExtractionTime) /
                                double(dyn.featureExtractionTime))});
    table.addRow({"max GPU memory",
                  strFormat("%.2f GB of 12.9 GB",
                            double(dyn.maxTotalUsage) / 1e9)});
    table.addRow({"avg GPU memory",
                  strFormat("%.2f GB", double(dyn.avgTotalUsage) / 1e9)});
    table.addRow({"offloaded per iteration",
                  strFormat("%.1f GB",
                            double(dyn.offloadedBytesPerIter) / 1e9)});
    table.addRow({"pinned host memory peak",
                  strFormat("%.1f GB", double(dyn.hostPeakBytes) / 1e9)});
    table.addRow({"conv layers at IMPLICIT_GEMM",
                  strFormat("%d of %d", downgraded,
                            network->countKind(dnn::LayerKind::Conv))});
    table.print();
    return 0;
}
