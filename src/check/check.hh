/**
 * @file
 * The static-analysis subsystem's shared vocabulary: diagnostics,
 * check results, and the CheckConfig that gates verification.
 *
 * Three passes build on these types (each in its own header):
 *
 *  - ProgramVerifier (check/program_verifier.hh): abstract
 *    interpretation over the IterationProgram op stream, tracking every
 *    buffer through a residency lattice and proving the invariants the
 *    Executor's op bodies silently rely on.
 *  - PlanVerifier (check/plan_verifier.hh): MemoryPlan admissibility
 *    against its PlannerContext, before compilation.
 *  - LedgerAuditor (check/ledger_auditor.hh): replayable checks over
 *    the serve layer's admission ledgers and LifecycleEvent log.
 *
 * Verification is wired into Executor program compilation and
 * Session plan resolution: on by default in Debug and the default
 * RelWithDebInfo (test) builds, one branch off in Release (CMake sets
 * VDNN_CHECK_OFF_BY_DEFAULT there). Either way a caller can force it
 * per-executor through ExecutorConfig::check.
 */

#ifndef VDNN_CHECK_CHECK_HH
#define VDNN_CHECK_CHECK_HH

#include "common/types.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace vdnn::check
{

/** What a diagnostic means for the run. */
enum class Severity : std::uint8_t
{
    Info,    ///< observation, never fails a check
    Warning, ///< suspicious but not provably wrong (or demoted)
    Error,   ///< proven invariant violation; the check fails
};

const char *severityName(Severity s);

/** Machine-readable defect class of a diagnostic. */
enum class DiagCode : std::uint8_t
{
    // --- ProgramVerifier: op-stream structure ---------------------------
    BadStructure,   ///< begin/end/barrier placement, malformed groups
    SyncOrder,      ///< Sync dropped/reordered against its layer's DMAs
    // --- ProgramVerifier: residency dataflow ----------------------------
    UseUnallocated, ///< op touches an Unallocated or Released buffer
    ReadOffloaded,  ///< kernel reads offloaded data with no fetch before
    DoubleOffload,  ///< offload of an already-offloaded/static buffer
    DoubleRelease,  ///< release of a Released buffer / refcount underflow
    MissingGradient,///< backward kernel runs without its dY allocated
    MissingWorkspace,///< conv kernel runs without its workspace
    UnjoinedDma,    ///< DMA issued but never joined by a Sync/Barrier
    LeakedAlloc,    ///< device allocation still live at EndIteration
    HostLeak,       ///< host copy never fetched back nor dropped
    // --- PlanVerifier: plan admissibility -------------------------------
    PlanShape,      ///< directive/algo vectors do not match the network
    Infeasible,     ///< plan marked infeasible reached verification
    IneligibleOffload, ///< offload directive on an ineligible buffer
    CompressedDense,///< compressed directive without ReLU sparsity
    BadDmaScale,    ///< dmaScale outside (0, 1] / without compression
    StaticPlanTraffic, ///< static-allocation plan carries directives
    PriorityConflict,  ///< ambiguous/cyclic prefetch-priority ordering
    ShareExceeded,  ///< provable peak residency exceeds the free share
    // --- LedgerAuditor: serve-layer replay ------------------------------
    LedgerChain,    ///< reservedBefore does not chain from the last event
    LedgerNonZero,  ///< reserved/evicted ledger nonzero at drain
    BadTransition,  ///< illegal lifecycle transition for a job
    DoubleResidency,///< job admitted while already running somewhere
    LostJob,        ///< preempted/evicted job never resumed or failed
    DeltaSign,      ///< ledger delta sign contradicts the event kind
    OutcomeMismatch,///< JobOutcome counters disagree with the event log
};

const char *diagCodeName(DiagCode c);

/** One finding of a verifier pass. */
struct Diagnostic
{
    DiagCode code = DiagCode::BadStructure;
    Severity severity = Severity::Error;
    std::string message;
    /** Op index in the program (-1 when not op-scoped). */
    int op = -1;
    /** Layer the finding anchors to (-1 when not layer-scoped). */
    int layer = -1;
    /** Buffer the finding anchors to (-1 when not buffer-scoped). */
    int buffer = -1;

    /** "error[UnjoinedDma] op 12: ..." single-line rendering. */
    std::string str() const;
};

/** Outcome of one verifier pass. */
struct CheckResult
{
    std::vector<Diagnostic> diags;

    /** ProgramVerifier: provable peak of per-iteration (transient)
     *  device bytes along the op stream. */
    Bytes peakTransientBytes = 0;
    /** PlanVerifier: analytic persistent footprint (setup state). */
    Bytes persistentBytes = 0;
    /** PlanVerifier: persistent + transient peak — the residency the
     *  plan provably needs from its share. */
    Bytes provablePeakBytes = 0;
    /** ProgramVerifier: DMAs issued / joined along the stream. */
    int dmasIssued = 0;
    int dmasJoined = 0;

    int errorCount() const;
    int warningCount() const;
    /** No errors (warnings and infos do not fail a check). */
    bool ok() const { return errorCount() == 0; }

    /** Multi-line report: one diagnostic per line. */
    std::string report() const;

    Diagnostic &add(DiagCode code, Severity sev, std::string message,
                    int op = -1, int layer = -1, int buffer = -1);
    /** Fold another pass's findings into this result. */
    void merge(const CheckResult &other);
};

/** Verification gate carried by ExecutorConfig. */
struct CheckConfig
{
    /** Run the ProgramVerifier on every compiled IterationProgram. */
    bool verifyPrograms = defaultEnabled();
    /** Run the PlanVerifier on every resolved MemoryPlan. */
    bool verifyPlans = defaultEnabled();
    /**
     * Treat ShareExceeded as an error. Wired (Executor/Session) paths
     * leave this false: a plan that outgrows its share is a capacity
     * condition the runtime handles gracefully (OOM -> requeue), not a
     * program bug — standalone verification (memory_timeline verify,
     * tests) turns it on to prove admissibility.
     */
    bool enforceCapacity = false;
    /** Wired paths panic on invariant errors (vs. report-and-continue). */
    bool failFast = true;

    /**
     * Build-type default: true in Debug and the default RelWithDebInfo
     * (test) builds, false when CMake defines VDNN_CHECK_OFF_BY_DEFAULT
     * (Release/MinSizeRel) — the "one branch off" promise.
     */
    static bool defaultEnabled();
};

} // namespace vdnn::check

#endif // VDNN_CHECK_CHECK_HH
