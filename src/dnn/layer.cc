#include "dnn/layer.hh"

#include "common/logging.hh"

#include <vector>

namespace vdnn::dnn
{

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv:
        return "CONV";
      case LayerKind::Activation:
        return "ACTV";
      case LayerKind::Pool:
        return "POOL";
      case LayerKind::Fc:
        return "FC";
      case LayerKind::Lrn:
        return "LRN";
      case LayerKind::Concat:
        return "CONCAT";
      case LayerKind::Dropout:
        return "DROPOUT";
      case LayerKind::SoftmaxLoss:
        return "LOSS";
    }
    panic("unknown layer kind %d", int(kind));
}

Bytes
LayerSpec::weightBytes() const
{
    return paramCount() * kElementSize;
}

std::int64_t
LayerSpec::paramCount() const
{
    switch (kind) {
      case LayerKind::Conv:
        // K * C * R * S filters + K biases.
        return conv.outChannels * in.c * conv.kernelH * conv.kernelW +
               conv.outChannels;
      case LayerKind::Fc:
        // In * Out matrix + Out biases.
        return in.elementsPerImage() * fc.outFeatures + fc.outFeatures;
      default:
        return 0;
    }
}

bool
LayerSpec::inPlace() const
{
    return kind == LayerKind::Activation || kind == LayerKind::Dropout;
}

bool
LayerSpec::backwardNeedsX() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Fc:
        return true; // X feeds the weight-gradient computation
      case LayerKind::Pool:
      case LayerKind::Lrn:
        return true; // cuDNN pooling/LRN backward takes (x, y, dy)
      case LayerKind::Activation:
      case LayerKind::Dropout:
        return false; // in-place: gradient derived from Y alone
      case LayerKind::Concat:
        return false; // pure data movement
      case LayerKind::SoftmaxLoss:
        return false;
    }
    panic("unknown layer kind %d", int(kind));
}

bool
LayerSpec::backwardNeedsY() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Fc:
      case LayerKind::Concat:
        return false;
      case LayerKind::Pool:
      case LayerKind::Lrn:
        return true;
      case LayerKind::Activation:
      case LayerKind::Dropout:
        return true;
      case LayerKind::SoftmaxLoss:
        return true;
    }
    panic("unknown layer kind %d", int(kind));
}

bool
LayerSpec::isFeatureExtraction() const
{
    // The paper splits networks into feature-extraction layers
    // (CONV/ACTV/POOL and friends) and the classifier (the FC chain and
    // its dropout/loss tail). FC marks the boundary.
    switch (kind) {
      case LayerKind::Fc:
      case LayerKind::SoftmaxLoss:
        return false;
      default:
        return true;
    }
}

bool
LayerSpec::hasWeights() const
{
    return kind == LayerKind::Conv || kind == LayerKind::Fc;
}

// --- shape inference -----------------------------------------------------------

TensorShape
convOutShape(const TensorShape &in, const ConvParams &p)
{
    VDNN_ASSERT(in.valid(), "invalid conv input %s", in.str().c_str());
    VDNN_ASSERT(p.outChannels > 0 && p.kernelH > 0 && p.kernelW > 0 &&
                    p.strideH > 0 && p.strideW > 0,
                "invalid conv params");
    TensorShape out;
    out.n = in.n;
    out.c = p.outChannels;
    out.h = (in.h + 2 * p.padH - p.kernelH) / p.strideH + 1;
    out.w = (in.w + 2 * p.padW - p.kernelW) / p.strideW + 1;
    VDNN_ASSERT(out.h > 0 && out.w > 0,
                "conv output collapsed: in=%s k=%dx%d s=%d p=%d",
                in.str().c_str(), p.kernelH, p.kernelW, p.strideH, p.padH);
    return out;
}

TensorShape
poolOutShape(const TensorShape &in, const PoolParams &p)
{
    VDNN_ASSERT(in.valid(), "invalid pool input %s", in.str().c_str());
    TensorShape out;
    out.n = in.n;
    out.c = in.c;
    // Caffe/Torch-style ceil mode so 224 -> 112 -> 56 -> 28 -> 14 -> 7.
    out.h = (in.h + 2 * p.padH - p.windowH + p.strideH - 1) / p.strideH + 1;
    out.w = (in.w + 2 * p.padW - p.windowW + p.strideW - 1) / p.strideW + 1;
    VDNN_ASSERT(out.h > 0 && out.w > 0, "pool output collapsed");
    return out;
}

TensorShape
fcOutShape(const TensorShape &in, const FcParams &p)
{
    VDNN_ASSERT(in.valid() && p.outFeatures > 0, "invalid fc geometry");
    return TensorShape{in.n, p.outFeatures, 1, 1};
}

// --- factories --------------------------------------------------------------------

LayerSpec
makeConv(const std::string &name, const TensorShape &in,
         const ConvParams &p)
{
    LayerSpec l;
    l.kind = LayerKind::Conv;
    l.name = name;
    l.in = in;
    l.conv = p;
    l.out = convOutShape(in, p);
    return l;
}

LayerSpec
makeActivation(const std::string &name, const TensorShape &in,
               ActivationParams::Fn fn)
{
    LayerSpec l;
    l.kind = LayerKind::Activation;
    l.name = name;
    l.in = in;
    l.out = in;
    l.actv.fn = fn;
    return l;
}

LayerSpec
makePool(const std::string &name, const TensorShape &in,
         const PoolParams &p)
{
    LayerSpec l;
    l.kind = LayerKind::Pool;
    l.name = name;
    l.in = in;
    l.pool = p;
    l.out = poolOutShape(in, p);
    return l;
}

LayerSpec
makeFc(const std::string &name, const TensorShape &in, const FcParams &p)
{
    LayerSpec l;
    l.kind = LayerKind::Fc;
    l.name = name;
    l.in = in;
    l.fc = p;
    l.out = fcOutShape(in, p);
    return l;
}

LayerSpec
makeLrn(const std::string &name, const TensorShape &in, const LrnParams &p)
{
    LayerSpec l;
    l.kind = LayerKind::Lrn;
    l.name = name;
    l.in = in;
    l.out = in;
    l.lrn = p;
    return l;
}

LayerSpec
makeDropout(const std::string &name, const TensorShape &in, double prob)
{
    VDNN_ASSERT(prob >= 0.0 && prob < 1.0, "dropout prob %f", prob);
    LayerSpec l;
    l.kind = LayerKind::Dropout;
    l.name = name;
    l.in = in;
    l.out = in;
    l.dropout.prob = prob;
    return l;
}

LayerSpec
makeSoftmaxLoss(const std::string &name, const TensorShape &in)
{
    LayerSpec l;
    l.kind = LayerKind::SoftmaxLoss;
    l.name = name;
    l.in = in;
    l.out = in;
    return l;
}

LayerSpec
makeConcat(const std::string &name, const std::vector<TensorShape> &inputs)
{
    VDNN_ASSERT(!inputs.empty(), "concat needs inputs");
    TensorShape out = inputs.front();
    for (size_t i = 1; i < inputs.size(); ++i) {
        const TensorShape &s = inputs[i];
        VDNN_ASSERT(s.n == out.n && s.h == out.h && s.w == out.w,
                    "concat shape mismatch: %s vs %s", out.str().c_str(),
                    s.str().c_str());
        out.c += s.c;
    }
    LayerSpec l;
    l.kind = LayerKind::Concat;
    l.name = name;
    // "Input" records the concatenated shape; the graph tracks the
    // individual producers.
    l.in = out;
    l.out = out;
    return l;
}

} // namespace vdnn::dnn
