/**
 * @file
 * Preemptive priorities over the tenant lifecycle state machine.
 *
 * Without preemption, an important arrival waits behind whatever the
 * packing scheduler already admitted: its JCT is hostage to the
 * low-priority mix. SchedPolicy::PreemptivePriority instead drives
 * victims through Session::suspend() -> evictToHost() — releasing
 * their *entire* device share over PCIe — admits the arrival at once,
 * and resumes the victims (re-planning against the then-current free
 * share) when it leaves.
 *
 * Scenario A — 8 mixed VGG-16 (64) / AlexNet (128) vDNN_all (m)
 * low-priority tenants resident on one 12 GB Titan X, plus three
 * short high-priority jobs arriving mid-run. Claims checked:
 *  - every job finishes under preemptive-priority;
 *  - high-priority mean and p95 JCT beat RoundRobin and PackedOverlap;
 *  - the high-priority arrivals reach first-iteration dispatch;
 *  - the admission ledger balances to zero after the drain;
 *  - the non-preempted tenants' iteration outputs (offload traffic,
 *    iteration counts) are byte-identical to a run without the
 *    high-priority arrivals.
 *
 * Scenario B — JCT recovery from grow-back: a vDNN_dyn tenant
 * admitted beside a Baseline hog derives a squeezed, offload-heavy
 * plan; when the hog exits, the preemptive scheduler's re-plan sweep
 * lets it swap to the no-offload ideal at an iteration boundary
 * (ReplanHint::InPlace), recovering JCT versus a scheduler with no
 * sweep.
 *
 * `bench_preemption smoke` runs a downsized Scenario A to completion
 * and exits (the CI Release smoke stage).
 */

#include "bench_common.hh"

#include "check/ledger_auditor.hh"
#include "common/units.hh"
#include "serve/scheduler.hh"


#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace vdnn;
using namespace vdnn::bench;
using namespace vdnn::literals;
using namespace vdnn::serve;

namespace
{

constexpr int kLowPriorityJobs = 8;
constexpr int kHighPriorityJobs = 3;
constexpr int kHighPriority = 10;

std::vector<JobSpec>
lowPriorityMix(int njobs, int base_iters)
{
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);
    std::shared_ptr<const net::Network> alex = net::buildAlexNet(128);
    std::vector<JobSpec> specs;
    for (int i = 0; i < njobs; ++i) {
        JobSpec spec;
        bool is_vgg = i % 2 == 0;
        spec.name = strFormat(is_vgg ? "vgg-%d" : "alex-%d", i);
        spec.network = is_vgg ? vgg : alex;
        spec.planner = offloadAllPlanner();
        spec.priority = 0;
        spec.arrival = TimeNs(i) * 50 * kNsPerMs;
        spec.iterations = base_iters + i % 3;
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::vector<JobSpec>
highPriorityArrivals(int njobs, int iterations)
{
    // Urgent Baseline tenants: their network-wide allocation cannot
    // fit beside the full resident mix, so admitting one *requires*
    // evicting some low-priority incumbents (batch 32 keeps the
    // reservation mid-sized: a few victims, not the whole mix).
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(32);
    std::vector<JobSpec> specs;
    for (int i = 0; i < njobs; ++i) {
        JobSpec spec;
        spec.name = strFormat("urgent-%d", i);
        spec.network = vgg;
        spec.planner = baselinePlanner();
        spec.priority = kHighPriority;
        spec.arrival = (400 + TimeNs(i) * 700) * kNsPerMs;
        spec.iterations = iterations;
        specs.push_back(std::move(spec));
    }
    return specs;
}

ServeReport
runMix(SchedPolicy policy, bool with_high, int low_iters = 4,
       int high_iters = 2, int low_jobs = kLowPriorityJobs,
       int high_jobs = kHighPriorityJobs)
{
    SchedulerConfig cfg;
    cfg.policy = policy;
    Scheduler sched(cfg);
    for (JobSpec &spec : lowPriorityMix(low_jobs, low_iters))
        sched.submit(std::move(spec));
    if (with_high) {
        for (JobSpec &spec : highPriorityArrivals(high_jobs, high_iters))
            sched.submit(std::move(spec));
    }
    return sched.run();
}

int
totalJobs(bool with_high)
{
    return kLowPriorityJobs + (with_high ? kHighPriorityJobs : 0);
}

void
scenarioA()
{
    const std::vector<std::pair<const char *, SchedPolicy>> grid = {
        {"round-robin", SchedPolicy::RoundRobin},
        {"packed-overlap", SchedPolicy::PackedOverlap},
        {"preemptive-priority", SchedPolicy::PreemptivePriority},
    };

    stats::Table table(strFormat(
        "Preemptive priorities: %d low-priority VGG-16/AlexNet "
        "vDNN_all (m) tenants + %d high-priority arrivals on a 12 GB "
        "Titan X",
        kLowPriorityJobs, kHighPriorityJobs));
    table.setColumns({"scheduler", "finished", "hi mean JCT (s)",
                      "hi p95 JCT (s)", "hi first dispatch (s)",
                      "low mean JCT (s)", "makespan (s)", "preempts",
                      "ledger (B)"});

    std::map<SchedPolicy, ServeReport> reports;
    for (const auto &[label, policy] : grid) {
        ServeReport rep = runMix(policy, /*with_high=*/true);
        int preempts = 0;
        TimeNs first_dispatch_delay = 0;
        int hi_seen = 0;
        for (const JobOutcome &j : rep.jobs) {
            preempts += j.preemptions;
            if (j.priority == kHighPriority &&
                j.firstDispatchTime != kTimeNone) {
                first_dispatch_delay += j.firstDispatchTime - j.arrival;
                ++hi_seen;
            }
        }
        table.addRow(
            {label, stats::Table::cellInt(rep.finishedCount()),
             stats::Table::cell(
                 toSeconds(rep.meanJctAtPriority(kHighPriority)), 2),
             stats::Table::cell(
                 toSeconds(rep.p95JctAtPriority(kHighPriority)), 2),
             hi_seen > 0 ? stats::Table::cell(
                               toSeconds(first_dispatch_delay / hi_seen),
                               2)
                         : std::string("-"),
             stats::Table::cell(toSeconds(rep.meanJctAtPriority(0)), 2),
             stats::Table::cell(toSeconds(rep.makespan), 2),
             stats::Table::cellInt(preempts),
             strFormat("%lld", (long long)rep.reservedBytesAtEnd)});
        reports.emplace(policy, std::move(rep));
    }
    table.print();

    const ServeReport &rr = reports.at(SchedPolicy::RoundRobin);
    const ServeReport &packed = reports.at(SchedPolicy::PackedOverlap);
    const ServeReport &pp =
        reports.at(SchedPolicy::PreemptivePriority);

    // Byte-identity of the non-preempted tenants: the same preemptive
    // run without the high-priority arrivals must move exactly the
    // same offload traffic through every low-priority tenant.
    ServeReport baseline_run =
        runMix(SchedPolicy::PreemptivePriority, /*with_high=*/false);
    bool outputs_identical = true;
    int untouched = 0;
    for (int i = 0; i < kLowPriorityJobs; ++i) {
        const JobOutcome &with = pp.jobs[std::size_t(i)];
        const JobOutcome &without = baseline_run.jobs[std::size_t(i)];
        if (with.preemptions > 0)
            continue; // preempted tenants re-ran a cancelled iteration
        ++untouched;
        outputs_identical = outputs_identical &&
                            with.iterations == without.iterations &&
                            with.offloadedBytes ==
                                without.offloadedBytes &&
                            with.persistentBytes ==
                                without.persistentBytes;
    }
    int total_preemptions = 0;
    for (const JobOutcome &j : pp.jobs)
        total_preemptions += j.preemptions;

    bool hi_dispatched = true;
    for (const JobOutcome &j : pp.jobs) {
        if (j.priority == kHighPriority)
            hi_dispatched =
                hi_dispatched && j.firstDispatchTime != kTimeNone;
    }

    stats::Comparison cmp("Preemptive priority (suspend/evict/resume)");
    cmp.addBool("every job finishes under preemptive-priority", true,
                pp.finishedCount() == totalJobs(true));
    cmp.addBool("high-priority arrivals reach first dispatch", true,
                hi_dispatched);
    cmp.addBool("high-priority mean JCT below round-robin", true,
                pp.meanJctAtPriority(kHighPriority) <
                    rr.meanJctAtPriority(kHighPriority));
    cmp.addBool("high-priority mean JCT below packed-overlap", true,
                pp.meanJctAtPriority(kHighPriority) <
                    packed.meanJctAtPriority(kHighPriority));
    cmp.addBool("high-priority p95 JCT below round-robin", true,
                pp.p95JctAtPriority(kHighPriority) <
                    rr.p95JctAtPriority(kHighPriority));
    cmp.addBool("admission ledger balances to zero after drain", true,
                pp.reservedBytesAtEnd == 0 &&
                    pp.evictedLedgerAtEnd == 0);
    cmp.addBool("admitting the urgent tenants required preemption",
                true, total_preemptions > 0);
    cmp.addBool("non-preempted tenants' outputs byte-identical to a "
                "run without the arrival",
                true, outputs_identical && untouched > 0);
    cmp.addInfo("high-priority mean JCT reduction vs round-robin",
                "large (preemption removes the queueing)",
                strFormat("%.1fx",
                          toSeconds(rr.meanJctAtPriority(kHighPriority)) /
                              toSeconds(pp.meanJctAtPriority(
                                  kHighPriority))));
    cmp.print();
}

void
scenarioB()
{
    // JCT recovery from grow-back: a vDNN_dyn tenant planned against
    // a hog-squeezed share, with and without the re-plan sweep.
    auto runDyn = [](SchedPolicy policy) {
        SchedulerConfig cfg;
        cfg.policy = policy;
        // An 11 GiB device: the Baseline hog fits beside the
        // vDNN_dyn tenant's floor, but squeezes its free share
        // enough that the derived plan must offload.
        cfg.gpu.dramCapacity = 11_GiB;
        Scheduler sched(cfg);

        JobSpec hog;
        hog.name = "hog";
        hog.network = net::buildVgg16(64);
        hog.planner = baselinePlanner();
        hog.iterations = 2;
        sched.submit(std::move(hog));

        JobSpec dyn;
        dyn.name = "dyn";
        dyn.network = net::buildVgg16(64);
        dyn.planner = dynamicPlanner();
        dyn.arrival = 1 * kNsPerMs;
        dyn.iterations = 8;
        JobId dyn_id = sched.submit(std::move(dyn));

        ServeReport rep = sched.run();
        return std::make_pair(rep, dyn_id);
    };

    auto [rr, rr_dyn] = runDyn(SchedPolicy::RoundRobin);
    auto [pp, pp_dyn] = runDyn(SchedPolicy::PreemptivePriority);
    const JobOutcome &rr_out = rr.jobs[std::size_t(rr_dyn)];
    const JobOutcome &pp_out = pp.jobs[std::size_t(pp_dyn)];

    stats::Table table("Grow-back after co-tenant exit: vDNN_dyn "
                       "tenant beside a Baseline VGG-16 (64) hog "
                       "on an 11 GiB device");
    table.setColumns({"scheduler", "dyn JCT (s)", "dyn replans",
                      "dyn offloaded (GiB)"});
    table.addRow({"round-robin (no sweep)",
                  stats::Table::cell(toSeconds(rr_out.completionTime), 2),
                  stats::Table::cellInt(rr_out.replans),
                  stats::Table::cell(toGiB(rr_out.offloadedBytes), 2)});
    table.addRow({"preemptive-priority (re-plan sweep)",
                  stats::Table::cell(toSeconds(pp_out.completionTime), 2),
                  stats::Table::cellInt(pp_out.replans),
                  stats::Table::cell(toGiB(pp_out.offloadedBytes), 2)});
    table.print();

    stats::Comparison cmp("Mid-run re-planning (grow-back)");
    cmp.addBool("both schedulers finish the pair", true,
                rr.finishedCount() == 2 && pp.finishedCount() == 2);
    cmp.addBool("re-plan sweep fires after the hog exits", true,
                pp_out.replans >= 1);
    cmp.addBool("grown-back tenant moves less offload traffic", true,
                pp_out.offloadedBytes < rr_out.offloadedBytes);
    cmp.addBool("grow-back recovers JCT", true,
                pp_out.completionTime <= rr_out.completionTime);
    cmp.print();
}

void
report()
{
    scenarioA();
    std::printf("\n");
    scenarioB();
}

int
smoke()
{
    // Downsized Scenario A run to completion: 4 low-priority tenants,
    // one high-priority arrival, short budgets.
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::PreemptivePriority;
    Scheduler sched(cfg);
    for (JobSpec &spec : lowPriorityMix(4, 2))
        sched.submit(std::move(spec));
    for (JobSpec &spec : highPriorityArrivals(1, 1))
        sched.submit(std::move(spec));
    ServeReport rep = sched.run();
    rep.summaryTable().print();
    check::CheckResult audit = check::auditLedger(rep);
    if (!audit.ok())
        std::printf("ledger audit:\n%s", audit.report().c_str());
    bool ok = rep.finishedCount() == 5 && rep.reservedBytesAtEnd == 0 &&
              rep.evictedLedgerAtEnd == 0 && audit.ok();
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "smoke") == 0) {
        setQuiet(true);
        return smoke();
    }
    registerSim("preemption/mixed8_plus_high_priority",
                [] { runMix(SchedPolicy::PreemptivePriority, true); });
    return benchMain(argc, argv, report);
}
