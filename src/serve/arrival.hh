/**
 * @file
 * Job arrival generators for the serving workload.
 *
 * Two shapes cover the evaluation needs: Poisson arrivals (the classic
 * open-loop cluster model — exponential inter-arrival gaps at a given
 * rate) and trace-driven arrivals (explicit timestamps, e.g. replayed
 * from a cluster log). Both return absolute simulated times suitable
 * for JobSpec::arrival.
 */

#ifndef VDNN_SERVE_ARRIVAL_HH
#define VDNN_SERVE_ARRIVAL_HH

#include "common/random.hh"
#include "common/types.hh"

#include <vector>

namespace vdnn::serve
{

/**
 * @p count arrival times of a Poisson process with @p rate_per_sec
 * expected arrivals per simulated second, starting at @p start.
 * Deterministic for a given @p rng seed.
 */
std::vector<TimeNs> poissonArrivals(int count, double rate_per_sec,
                                    SplitMix64 &rng, TimeNs start = 0);

/** @p count arrivals spaced a fixed @p gap apart, starting at @p start. */
std::vector<TimeNs> uniformArrivals(int count, TimeNs gap,
                                    TimeNs start = 0);

/** Convert trace timestamps in (double) seconds to arrival times. */
std::vector<TimeNs> traceArrivals(const std::vector<double> &seconds);

} // namespace vdnn::serve

#endif // VDNN_SERVE_ARRIVAL_HH
