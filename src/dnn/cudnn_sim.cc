#include "dnn/cudnn_sim.hh"

#include "common/logging.hh"

#include <algorithm>

namespace vdnn::dnn
{

CudnnSim::CudnnSim(gpu::GpuSpec spec) : perfModel(std::move(spec)) {}

ConvAlgoPerf
CudnnSim::algoPerf(const LayerSpec &layer, ConvAlgo algo) const
{
    VDNN_ASSERT(layer.kind == LayerKind::Conv, "not a conv layer");
    ConvAlgoPerf p;
    p.algo = algo;
    p.fwdTime = perfModel.convForward(layer, algo).time;
    p.bwdDataTime = perfModel.convBackwardData(layer, algo).time;
    p.bwdFilterTime = perfModel.convBackwardFilter(layer, algo).time;
    p.workspace = convWorkspaceBytes(algo, layer);
    return p;
}

std::vector<ConvAlgoPerf>
CudnnSim::findConvAlgorithms(const LayerSpec &layer) const
{
    std::vector<ConvAlgoPerf> result;
    for (ConvAlgo algo : allConvAlgos()) {
        if (convAlgoApplicable(algo, layer))
            result.push_back(algoPerf(layer, algo));
    }
    std::sort(result.begin(), result.end(),
              [](const ConvAlgoPerf &a, const ConvAlgoPerf &b) {
                  if (a.totalTime() != b.totalTime())
                      return a.totalTime() < b.totalTime();
                  // Tie break: least workspace first.
                  return a.workspace < b.workspace;
              });
    VDNN_ASSERT(!result.empty(), "no applicable algorithm for %s",
                layer.name.c_str());
    return result;
}

ConvAlgo
CudnnSim::fastestAlgo(const LayerSpec &layer) const
{
    return findConvAlgorithms(layer).front().algo;
}

ConvAlgo
CudnnSim::fastestAlgoWithin(const LayerSpec &layer, Bytes ws_limit) const
{
    for (const ConvAlgoPerf &p : findConvAlgorithms(layer)) {
        if (p.workspace <= ws_limit)
            return p.algo;
    }
    // IMPLICIT_GEMM has zero workspace; with ws_limit >= 0 the loop
    // must have found it.
    panic("no algorithm fits workspace limit %lld for %s",
          (long long)ws_limit, layer.name.c_str());
}

} // namespace vdnn::dnn
