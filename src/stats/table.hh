/**
 * @file
 * ASCII table and CSV emission for experiment reports.
 *
 * Every bench binary renders its figure/table through this class so the
 * outputs share one format: a titled, column-aligned ASCII table plus an
 * optional CSV dump for external plotting.
 */

#ifndef VDNN_STATS_TABLE_HH
#define VDNN_STATS_TABLE_HH

#include <string>
#include <vector>

namespace vdnn::stats
{

class Table
{
  public:
    explicit Table(std::string title) : tableTitle(std::move(title)) {}

    /** Define the column headers; must precede addRow(). */
    void setColumns(std::vector<std::string> names);

    /** Append a row; must have exactly as many cells as columns. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format helpers for numeric cells. */
    static std::string cell(double v, int precision = 2);
    static std::string cellInt(long long v);
    static std::string cellPercent(double fraction, int precision = 1);

    /** Render the aligned ASCII table (with title and rule lines). */
    std::string render() const;

    /** Render as CSV (header + rows, comma separated, quoted as needed). */
    std::string csv() const;

    /** Write render() to stdout. */
    void print() const;

    const std::string &title() const { return tableTitle; }
    std::size_t rows() const { return body.size(); }
    std::size_t columns() const { return header.size(); }

  private:
    std::string tableTitle;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

} // namespace vdnn::stats

#endif // VDNN_STATS_TABLE_HH
