/**
 * @file
 * Tests for the vDNN executor and the planner surface: offload
 * decisions, per-planner behaviour, iteration invariants, failure
 * handling, and the dynamic planner's profiling passes.
 */

#include "core/dynamic_policy.hh"
#include "core/executor.hh"
#include "core/training_session.hh"

#include "common/units.hh"
#include "net/builders.hh"

#include <gtest/gtest.h>

#include <memory>

using namespace vdnn;
using namespace vdnn::core;
using namespace vdnn::literals;

namespace
{

core::SessionResult
run(const net::Network &network, std::shared_ptr<Planner> planner,
    bool oracle = false)
{
    SessionConfig cfg;
    cfg.planner = std::move(planner);
    cfg.oracle = oracle;
    return runSession(network, cfg);
}

std::shared_ptr<Planner>
baseM()
{
    return std::make_shared<BaselinePlanner>(
        AlgoPreference::MemoryOptimal);
}

std::shared_ptr<Planner>
baseP()
{
    return std::make_shared<BaselinePlanner>(
        AlgoPreference::PerformanceOptimal);
}

std::shared_ptr<Planner>
allM()
{
    return std::make_shared<OffloadAllPlanner>(
        AlgoPreference::MemoryOptimal);
}

std::shared_ptr<Planner>
convM()
{
    return std::make_shared<OffloadConvPlanner>(
        AlgoPreference::MemoryOptimal);
}

MemoryPlan
planWith(Planner &&planner, const net::Network &net)
{
    return planner.plan(net,
                        PlannerContext::exclusive(gpu::titanXMaxwell()));
}

} // namespace

// --- plan resolution -----------------------------------------------------------

TEST(Plans, BaselinePlanOffloadsNothing)
{
    auto network = net::buildVgg16(64);
    MemoryPlan plan = planWith(
        BaselinePlanner(AlgoPreference::MemoryOptimal), *network);
    EXPECT_TRUE(plan.staticAllocation);
    EXPECT_EQ(plan.offloadCount(), 0);
}

TEST(Plans, OffloadAllMarksEveryEligibleBuffer)
{
    auto network = net::buildVgg16(64);
    MemoryPlan plan = planWith(
        OffloadAllPlanner(AlgoPreference::MemoryOptimal), *network);
    int offloaded = 0;
    for (net::BufferId b = 0; b < net::BufferId(network->numBuffers());
         ++b) {
        if (plan.offloads(b)) {
            ++offloaded;
            EXPECT_TRUE(offloadEligible(*network, b));
            EXPECT_FALSE(network->buffer(b).classifier);
        }
    }
    // Input + every feature-extraction buffer that is reused backward.
    EXPECT_GT(offloaded, 15);
}

TEST(Plans, OffloadConvIsSubsetEndingAtConvReaders)
{
    auto network = net::buildVgg16(64);
    MemoryPlan all = planWith(
        OffloadAllPlanner(AlgoPreference::MemoryOptimal), *network);
    MemoryPlan conv = planWith(
        OffloadConvPlanner(AlgoPreference::MemoryOptimal), *network);
    for (net::BufferId b = 0; b < net::BufferId(network->numBuffers());
         ++b) {
        if (conv.offloads(b)) {
            EXPECT_TRUE(all.offloads(b));
            net::LayerId last = network->buffer(b).lastFwdReader;
            EXPECT_EQ(network->node(last).spec.kind,
                      dnn::LayerKind::Conv);
        }
    }
}

TEST(Plans, ClassifierBuffersNeverEligible)
{
    auto network = net::buildAlexNet(32);
    for (net::BufferId b = 0; b < net::BufferId(network->numBuffers());
         ++b) {
        if (network->buffer(b).classifier) {
            EXPECT_FALSE(offloadEligible(*network, b));
        }
    }
}

TEST(Plans, NullPlannerDefaultsToDynamic)
{
    // SessionConfig without a planner resolves to vDNN_dyn.
    auto network = net::buildTinyCnn(8);
    SessionConfig cfg;
    auto r = runSession(*network, cfg);
    ASSERT_TRUE(r.trainable);
    EXPECT_EQ(r.configName, "vDNN_dyn");
    EXPECT_FALSE(r.trials.empty());
}

TEST(Plans, ReplanHints)
{
    // Static planners cannot shrink in place; vDNN_dyn can.
    EXPECT_EQ(BaselinePlanner().replanHint(), ReplanHint::Evict);
    EXPECT_EQ(OffloadAllPlanner().replanHint(), ReplanHint::Evict);
    EXPECT_EQ(CompressedOffloadPlanner().replanHint(),
              ReplanHint::Evict);
    EXPECT_EQ(DynamicPlanner().replanHint(), ReplanHint::InPlace);
}

// --- executor invariants ------------------------------------------------------------

TEST(Executor, TinyCnnRunsUnderEveryPlanner)
{
    auto network = net::buildTinyCnn(8);
    for (const auto &planner :
         {baseM(), allM(), convM(),
          std::shared_ptr<Planner>(std::make_shared<DynamicPlanner>())}) {
        auto r = run(*network, planner);
        EXPECT_TRUE(r.trainable) << planner->name();
        EXPECT_GT(r.iterationTime, 0);
    }
}

TEST(Executor, BaselineUsageIsFlat)
{
    auto network = net::buildTinyCnn(8);
    auto r = run(*network, baseM());
    // Network-wide allocation: max == avg.
    EXPECT_EQ(r.maxTotalUsage, r.avgTotalUsage);
    EXPECT_EQ(r.offloadedBytesPerIter, 0);
    EXPECT_EQ(r.offloads, 0);
}

TEST(Executor, VdnnUsesLessMemoryThanBaseline)
{
    auto network = net::buildVgg16(64);
    auto base = run(*network, baseM());
    auto all = run(*network, allM());
    EXPECT_LT(all.maxManagedUsage, base.maxManagedUsage);
    EXPECT_LT(all.avgManagedUsage, base.avgManagedUsage / 2);
}

TEST(Executor, OffloadAllMovesEveryEligibleBufferOnce)
{
    auto network = net::buildVgg16(64);
    MemoryPlan plan = planWith(
        OffloadAllPlanner(AlgoPreference::MemoryOptimal), *network);
    Bytes expected = plan.offloadedBytes(*network);
    auto r = run(*network, allM());
    EXPECT_EQ(r.offloadedBytesPerIter, expected);
    // No compression directives: PCIe traffic equals the raw bytes
    // moved out and back (offloads + prefetches + fetches).
    EXPECT_GE(r.pcieBytesPerIter, 2 * expected);
}

TEST(Executor, IterationsAreSteadyState)
{
    auto network = net::buildVgg16(64);
    SessionConfig cfg;
    cfg.planner = allM();
    cfg.iterations = 3;
    auto r3 = runSession(*network, cfg);
    cfg.iterations = 1;
    auto r1 = runSession(*network, cfg);
    // Per-iteration metrics identical across steady-state iterations.
    EXPECT_EQ(r3.offloadedBytesPerIter, r1.offloadedBytesPerIter);
    EXPECT_NEAR(double(r3.iterationTime), double(r1.iterationTime),
                double(r1.iterationTime) * 0.01);
}

TEST(Executor, StallTimeOnlyWithTransfers)
{
    auto network = net::buildVgg16(64);
    auto base = run(*network, baseM());
    EXPECT_EQ(base.transferStallTime, 0);
    auto all = run(*network, allM());
    EXPECT_GT(all.transferStallTime, 0);
    // Stall is a small fraction of the iteration.
    EXPECT_LT(all.transferStallTime, all.iterationTime / 2);
}

TEST(Executor, VdnnSlowerOrEqualToOracle)
{
    auto network = net::buildVgg16(64);
    auto oracle = run(*network, baseP(), true);
    for (const auto &planner :
         {allM(),
          std::shared_ptr<Planner>(std::make_shared<OffloadAllPlanner>(
              AlgoPreference::PerformanceOptimal)),
          convM(),
          std::shared_ptr<Planner>(std::make_shared<OffloadConvPlanner>(
              AlgoPreference::PerformanceOptimal))}) {
        auto r = run(*network, planner);
        ASSERT_TRUE(r.trainable);
        EXPECT_GE(r.featureExtractionTime,
                  oracle.featureExtractionTime);
    }
}

TEST(Executor, UntrainableReportsReason)
{
    auto network = net::buildVgg16(256);
    auto r = run(*network, baseM());
    EXPECT_FALSE(r.trainable);
    EXPECT_FALSE(r.failReason.empty());
}

TEST(Executor, FailedIterationLeavesCleanPool)
{
    // Static (p) plans fail VGG-16 (256) mid-iteration; the abort
    // path must unwind every allocation so the pool balances.
    auto network = net::buildVgg16(256);
    dnn::CudnnSim cudnn(gpu::titanXMaxwell());
    gpu::Runtime rt(gpu::titanXMaxwell());
    MemoryManager mm(rt);
    MemoryPlan plan = planWith(
        OffloadAllPlanner(AlgoPreference::PerformanceOptimal), *network);
    Executor ex(*network, cudnn, rt, mm, plan);
    ASSERT_TRUE(ex.setup());
    Bytes persistent = ex.persistentBytes();
    auto res = ex.runIteration();
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(mm.pool().usedBytes(), persistent);
    ex.teardown();
    EXPECT_EQ(mm.pool().usedBytes(), 0);
    EXPECT_EQ(mm.host().usedBytes(), 0);
}

TEST(Executor, GoogLeNetForkJoinRunsUnderOffloadAll)
{
    auto network = net::buildGoogLeNet(32);
    auto r = run(*network, allM());
    EXPECT_TRUE(r.trainable);
    EXPECT_GT(r.offloads, 20);
    EXPECT_GT(r.prefetches, 20);
}

TEST(Executor, SmallGpuForcesFailuresGracefully)
{
    gpu::GpuSpec small = gpu::smallGpu4GiB();
    SessionConfig cfg;
    cfg.gpu = small;
    cfg.planner = baseP();
    auto network = net::buildVgg16(64);
    auto base = runSession(*network, cfg);
    EXPECT_FALSE(base.trainable); // ~7 GB > 4 GiB
    cfg.planner = allM();
    auto all = runSession(*network, cfg);
    EXPECT_TRUE(all.trainable); // vDNN rescues it
}

// --- per-layer timings -------------------------------------------------------------

TEST(Executor, LayerTimingsAreOrdered)
{
    auto network = net::buildTinyCnn(8);
    auto r = run(*network, allM());
    ASSERT_EQ(r.layerTimings.size(), network->numLayers());
    const auto &topo = network->topoOrder();
    for (std::size_t i = 1; i < topo.size(); ++i) {
        const auto &prev = r.layerTimings[std::size_t(topo[i - 1])];
        const auto &cur = r.layerTimings[std::size_t(topo[i])];
        EXPECT_GE(cur.fwdStart, prev.fwdEnd); // forward in topo order
        EXPECT_LE(cur.bwdEnd, prev.bwdStart + 1); // backward reversed
    }
    // Reuse distance positive for all but the final layers.
    EXPECT_GT(r.layerTimings[0].reuseDistance(), 0);
}

TEST(Executor, ClassifierTimeIsPartOfMakespan)
{
    auto network = net::buildAlexNet(32);
    auto r = run(*network, baseP());
    EXPECT_GT(r.classifierTime, 0);
    EXPECT_LT(r.classifierTime, r.iterationTime);
    EXPECT_EQ(r.featureExtractionTime,
              r.iterationTime - r.classifierTime);
}

// --- dynamic planner -----------------------------------------------------------------

TEST(DynamicPlannerTest, PicksNoOffloadWhenEverythingFits)
{
    auto network = net::buildAlexNet(128);
    DynamicPlanner dyn;
    MemoryPlan plan = dyn.plan(
        *network, PlannerContext::exclusive(gpu::titanXMaxwell()));
    EXPECT_TRUE(plan.feasible);
    // Phase 2 wins: fastest algorithms, empty offload set.
    EXPECT_EQ(plan.offloadCount(), 0);
    EXPECT_GE(plan.trials.size(), 2u);
    EXPECT_TRUE(plan.trials[0].passed); // vDNN_all (m) probe
    EXPECT_TRUE(plan.trials[1].passed); // no-offload (p)
}

TEST(DynamicPlannerTest, FallsToOffloadWhenNoOffloadOverflows)
{
    auto network = net::buildVgg16(256);
    DynamicPlanner dyn;
    MemoryPlan plan = dyn.plan(
        *network, PlannerContext::exclusive(gpu::titanXMaxwell()));
    EXPECT_TRUE(plan.feasible);
    EXPECT_GT(plan.offloadCount(), 0);
    EXPECT_FALSE(plan.trials[1].passed); // no-offload (p) must fail
}

TEST(DynamicPlannerTest, GreedyDowngradesWorkspaceHogs)
{
    // On VGG-16 (256) the static (p) planners overflow on conv1_2's
    // backward workspace; the greedy pass must downgrade it while
    // keeping faster algorithms elsewhere.
    auto network = net::buildVgg16(256);
    dnn::CudnnSim cudnn(gpu::titanXMaxwell());
    DynamicPlanner dyn;
    MemoryPlan plan = dyn.plan(
        *network, PlannerContext::exclusive(gpu::titanXMaxwell()));
    ASSERT_TRUE(plan.feasible);
    auto fastest = net::performanceOptimalAlgos(*network, cudnn);
    int downgraded = 0;
    int kept = 0;
    for (net::LayerId id : network->topoOrder()) {
        if (network->node(id).spec.kind != dnn::LayerKind::Conv)
            continue;
        if (plan.algos[std::size_t(id)] == fastest[std::size_t(id)]) {
            ++kept;
        } else {
            ++downgraded;
        }
    }
    EXPECT_GT(downgraded, 0);
    EXPECT_GT(kept, downgraded); // local, not global, downgrade
}

TEST(DynamicPlannerTest, UntrainableOnAbsurdlySmallGpu)
{
    gpu::GpuSpec tiny = gpu::titanXMaxwell();
    tiny.dramCapacity = 64_MiB;
    auto network = net::buildVgg16(64);
    DynamicPlanner dyn;
    MemoryPlan plan = dyn.plan(*network, PlannerContext::exclusive(tiny));
    EXPECT_FALSE(plan.feasible);
    EXPECT_FALSE(plan.failReason.empty());
    EXPECT_FALSE(plan.trials.empty());
    EXPECT_FALSE(plan.trials[0].passed);
}

TEST(DynamicPlannerTest, TrialsRecordMakespans)
{
    auto network = net::buildAlexNet(64);
    DynamicPlanner dyn;
    MemoryPlan plan = dyn.plan(
        *network, PlannerContext::exclusive(gpu::titanXMaxwell()));
    for (const auto &trial : plan.trials) {
        if (trial.passed) {
            EXPECT_GT(trial.makespan, 0);
        }
        EXPECT_FALSE(trial.description.empty());
    }
}

// --- parameterized cross-planner invariants ------------------------------------------

namespace
{

struct PlannerCase
{
    const char *label;
    std::shared_ptr<Planner> (*make)();
};

std::shared_ptr<Planner>
makeBaseM()
{
    return baseM();
}
std::shared_ptr<Planner>
makeBaseP()
{
    return baseP();
}
std::shared_ptr<Planner>
makeAllM()
{
    return allM();
}
std::shared_ptr<Planner>
makeAllP()
{
    return std::make_shared<OffloadAllPlanner>(
        AlgoPreference::PerformanceOptimal);
}
std::shared_ptr<Planner>
makeConvM()
{
    return convM();
}
std::shared_ptr<Planner>
makeConvP()
{
    return std::make_shared<OffloadConvPlanner>(
        AlgoPreference::PerformanceOptimal);
}
std::shared_ptr<Planner>
makeDyn()
{
    return std::make_shared<DynamicPlanner>();
}

} // namespace

class PlannerInvariantTest : public ::testing::TestWithParam<PlannerCase>
{};

TEST_P(PlannerInvariantTest, TinyAndSmallNetsBehave)
{
    const PlannerCase &c = GetParam();
    for (std::int64_t batch : {1, 4, 16}) {
        auto network = net::buildTinyCnn(batch);
        auto r = run(*network, c.make());
        ASSERT_TRUE(r.trainable);
        // Memory balanced, makespan positive, usage bounded by pool.
        EXPECT_GT(r.iterationTime, 0);
        EXPECT_LE(r.maxTotalUsage,
                  gpu::titanXMaxwell().dramCapacity);
        EXPECT_LE(r.avgTotalUsage, r.maxTotalUsage);
        EXPECT_LE(r.avgManagedUsage, r.avgTotalUsage);
        if (r.plan.staticAllocation) {
            EXPECT_EQ(r.offloadedBytesPerIter, 0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlannerInvariantTest,
    ::testing::Values(PlannerCase{"base_m", makeBaseM},
                      PlannerCase{"base_p", makeBaseP},
                      PlannerCase{"all_m", makeAllM},
                      PlannerCase{"all_p", makeAllP},
                      PlannerCase{"conv_m", makeConvM},
                      PlannerCase{"conv_p", makeConvP},
                      PlannerCase{"dyn", makeDyn}),
    [](const ::testing::TestParamInfo<PlannerCase> &info) {
        return info.param.label;
    });
