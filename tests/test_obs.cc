/**
 * @file
 * Tests for the telemetry subsystem (src/obs/): the Chrome trace-event
 * recorder, the metrics registry, the first-iteration profiler, and
 * the profiled-footprint feedback into admission control.
 *
 * The golden-count tests pin the instrumentation contract: a
 * deterministic run must emit exactly as many kernel / iteration /
 * lifecycle events as the simulation executed, a disabled recorder
 * must emit none, and a preemption must leave a flow arrow connecting
 * the victim's eviction to the beneficiary's admission.
 */

#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"

#include "common/units.hh"
#include "core/planner.hh"
#include "core/training_session.hh"
#include "net/builders.hh"
#include "serve/admission.hh"
#include "serve/scheduler.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

using namespace vdnn;
using namespace vdnn::literals;

namespace
{

/** A tiny conv->relu->loss net for fast single-session runs. */
std::unique_ptr<net::Network>
tinyNet()
{
    dnn::TensorShape in{16, 3, 32, 32};
    auto n = std::make_unique<net::Network>("Tiny (16)", in);
    dnn::ConvParams c;
    c.outChannels = 16;
    c.padH = c.padW = 1;
    n->append(dnn::makeConv("conv1", in, c));
    auto out = n->node(0).spec.out;
    n->append(dnn::makeActivation("relu1", out));
    n->append(dnn::makeSoftmaxLoss("loss", out));
    n->finalize();
    return n;
}

int
countEvents(const obs::TraceRecorder &tr, char phase,
            const std::string &cat)
{
    int n = 0;
    for (const obs::TraceEvent &e : tr.events())
        n += (e.phase == phase && cat == e.cat) ? 1 : 0;
    return n;
}

} // namespace

// --- trace recorder ----------------------------------------------------------

TEST(TraceRecorder, RecordsAndSerializes)
{
    obs::TraceRecorder tr;
    tr.setProcessName(0, "GPU 0");
    tr.setThreadName(0, 7, "tenantA");
    tr.complete(0, 7, "kernel", "conv1 fwd", 1000, 3500,
                "{\"bytes\":42}");
    tr.instant(0, 7, "sched", "admit", 500);
    std::uint64_t flow = tr.flowStart(0, 7, "sched", "preempt", 4000);
    EXPECT_NE(flow, 0u);
    tr.flowEnd(flow, 0, 9, "sched", "preempt", 5000);
    EXPECT_EQ(tr.eventCount(), 4u);

    std::ostringstream os;
    tr.writeJson(os);
    std::string json = os.str();
    // Structure: metadata first, then the recorded events; 'f' events
    // bind to the enclosing slice, instants are thread-scoped.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("tenantA"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    // ns -> us: the 1000 ns kernel start prints as 1.000 us.
    EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
    EXPECT_LT(json.find("process_name"), json.find("\"ph\":\"X\""));
}

TEST(TraceRecorder, DisabledRecordsNothing)
{
    obs::TraceRecorder tr(/*enabled=*/false);
    tr.complete(0, 0, "kernel", "k", 0, 10);
    tr.instant(0, 0, "sched", "admit", 0);
    EXPECT_EQ(tr.flowStart(0, 0, "sched", "preempt", 0), 0u);
    tr.flowEnd(0, 0, 0, "sched", "preempt", 1);
    EXPECT_EQ(tr.eventCount(), 0u);
}

// --- metrics registry --------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateAndSnapshotRoundTrip)
{
    obs::MetricsRegistry m;
    obs::Counter &c = m.counter("gpu0.kernels");
    c.add();
    c.add(2.0);
    // Find-or-create returns the same object.
    EXPECT_EQ(&m.counter("gpu0.kernels"), &c);
    EXPECT_DOUBLE_EQ(m.counter("gpu0.kernels").value(), 3.0);

    double busy = 12.5;
    m.gauge("gpu0.busy", [&busy] { return busy; });
    m.accumulator("jct").add(100.0);
    m.accumulator("jct").add(300.0);
    stats::Histogram &h = m.histogram("iter_ms", 0.0, 100.0, 10);
    EXPECT_EQ(&m.histogram("iter_ms", 0.0, 100.0, 10), &h);
    h.add(50.0);
    EXPECT_EQ(m.size(), 4u);

    std::string json = m.snapshotJson(123456789);
    EXPECT_NE(json.find("\"sim_time_ns\":123456789"), std::string::npos);
    EXPECT_NE(json.find("\"gpu0.kernels\":3"), std::string::npos);
    EXPECT_NE(json.find("\"gpu0.busy\":12.5"), std::string::npos);
    EXPECT_NE(json.find("\"jct\":{\"count\":2,\"mean\":200"),
              std::string::npos);
    EXPECT_NE(json.find("\"iter_ms\":{\"count\":1"), std::string::npos);

    // The gauge samples lazily: a later snapshot sees the new value.
    busy = 99.0;
    EXPECT_NE(m.snapshotJson(0).find("\"gpu0.busy\":99"),
              std::string::npos);
}

// --- first-iteration profiler ------------------------------------------------

TEST(Profiler, GroundTruthSparsityDeterministicAndBounded)
{
    for (int b = 0; b < 64; ++b) {
        for (double depth : {0.0, 0.25, 0.5, 1.0}) {
            double s = obs::groundTruthReluSparsity(b, depth);
            EXPECT_GE(s, 0.0);
            EXPECT_LE(s, 0.97);
            EXPECT_DOUBLE_EQ(s, obs::groundTruthReluSparsity(b, depth));
        }
    }
    // Depth dominates the jitter: deep layers are sparser.
    EXPECT_GT(obs::groundTruthReluSparsity(3, 1.0),
              obs::groundTruthReluSparsity(3, 0.0));
}

TEST(Profiler, SessionCollectsFootprintOnFirstIteration)
{
    auto network = tinyNet();
    core::SessionConfig cfg;
    cfg.planner = std::make_shared<core::OffloadAllPlanner>(
        core::AlgoPreference::MemoryOptimal);
    core::Session session(*network, cfg);
    ASSERT_TRUE(session.setup());
    EXPECT_FALSE(session.profiledFootprint().valid);

    ASSERT_TRUE(session.runIteration().ok);
    const obs::ProfiledFootprint &fp = session.profiledFootprint();
    EXPECT_TRUE(fp.valid);
    EXPECT_GT(fp.persistent, 0);
    EXPECT_GT(fp.transientPeak, 0);
    EXPECT_GT(fp.iterationTime, 0);
    EXPECT_GT(fp.pcieBytes, 0);
    EXPECT_EQ(fp.layers.size(), network->numLayers());
    // The relu output buffer got a measured sparsity; non-relu
    // buffers stay unmeasured (-1).
    int measured = 0;
    for (std::size_t b = 0; b < fp.bufferSparsity.size(); ++b) {
        double s = fp.sparsityFor(int(b));
        if (s >= 0.0) {
            ++measured;
            EXPECT_LE(s, 0.97);
        }
    }
    EXPECT_GE(measured, 1);
    EXPECT_DOUBLE_EQ(fp.sparsityFor(-1), -1.0);
    EXPECT_DOUBLE_EQ(fp.sparsityFor(1000), -1.0);
    session.teardown();
}

TEST(Profiler, MeasuredSparsityFeedsCompressedPlanner)
{
    auto network = tinyNet();
    core::CompressedOffloadPlanner planner(
        core::AlgoPreference::MemoryOptimal);
    core::PlannerContext ctx =
        core::PlannerContext::exclusive(gpu::titanXMaxwell());
    core::MemoryPlan analytic = planner.plan(*network, ctx);

    // Hand the planner a profile claiming the relu outputs compress
    // far better than the analytic ramp assumes.
    obs::ProfiledFootprint fp;
    fp.valid = true;
    fp.bufferSparsity.assign(network->numBuffers(), -1.0);
    int relus = 0;
    for (net::BufferId b = 0;
         b < net::BufferId(network->numBuffers()); ++b) {
        if (core::holdsReluOutput(*network, b)) {
            fp.bufferSparsity[std::size_t(b)] = 0.95;
            ++relus;
        }
    }
    ASSERT_GE(relus, 1);
    ctx.profile = &fp;
    core::MemoryPlan measured = planner.plan(*network, ctx);
    EXPECT_NE(measured.provenance.find("profiled"), std::string::npos);

    // Measured sparsity 0.95 -> dmaScale ~0.05x; strictly below the
    // analytic ramp on at least one compressed buffer.
    bool shrunk = false;
    for (std::size_t b = 0; b < analytic.buffers.size(); ++b) {
        if (fp.bufferSparsity[b] >= 0.0 &&
            measured.buffers[b].dmaScale <
                analytic.buffers[b].dmaScale) {
            shrunk = true;
        }
    }
    EXPECT_TRUE(shrunk);
}

// --- profiled footprint -> admission -----------------------------------------

TEST(Admission, UpdateReservationIsShrinkOnly)
{
    serve::AdmissionController ac(10_GiB, /*safety=*/1.0);
    serve::FootprintEstimate analytic;
    analytic.persistent = 4_GiB;
    analytic.transient = 2_GiB;
    ac.admit(0, analytic);
    EXPECT_EQ(ac.reservedBytes(), 6_GiB);

    // A measured footprint below the analytic estimate shrinks the
    // reservation and returns the difference to the pool.
    serve::FootprintEstimate measured;
    measured.persistent = 3_GiB;
    measured.transient = 1_GiB;
    EXPECT_EQ(ac.updateReservation(0, measured), 2_GiB);
    EXPECT_EQ(ac.reservedBytes(), 4_GiB);

    // A measurement above the current reservation never grows it.
    serve::FootprintEstimate above;
    above.persistent = 8_GiB;
    above.transient = 8_GiB;
    EXPECT_EQ(ac.updateReservation(0, above), 0);
    EXPECT_EQ(ac.reservedBytes(), 4_GiB);

    // The shrunken reservation survives the evict/readmit round trip.
    ac.evict(0);
    EXPECT_EQ(ac.reservedBytes(), 0);
    ac.readmit(0);
    EXPECT_EQ(ac.reservedBytes(), 4_GiB);
    ac.release(0);
    EXPECT_EQ(ac.reservedBytes(), 0);
}

TEST(Scheduler, AdoptsProfiledFootprintAfterFirstIteration)
{
    serve::SchedulerConfig cfg;
    serve::Scheduler sched(cfg);
    serve::JobSpec spec;
    spec.network = net::buildAlexNet(128);
    spec.iterations = 3;
    serve::JobId id = sched.submit(std::move(spec));
    serve::ServeReport rep = sched.run();

    ASSERT_EQ(rep.finishedCount(), 1);
    // The measured footprint was adopted...
    EXPECT_TRUE(sched.job(id).measured.valid);
    EXPECT_GT(sched.job(id).measured.persistent, 0);
    // ...and the audit log shows the profile event shrinking (or at
    // worst keeping) the reservation right after iteration 1.
    bool saw_profile = false;
    for (const serve::LifecycleEvent &ev : rep.lifecycle) {
        if (std::string(ev.what) != "profile")
            continue;
        saw_profile = true;
        EXPECT_EQ(ev.job, id);
        EXPECT_LE(ev.reservedAfter, ev.reservedBefore);
    }
    EXPECT_TRUE(saw_profile);
    EXPECT_EQ(rep.reservedBytesAtEnd, 0);
}

// --- end-to-end instrumentation ----------------------------------------------

TEST(Telemetry, GoldenEventCountsOnSingleTenantRun)
{
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    serve::SchedulerConfig cfg;
    cfg.telemetry.trace = &trace;
    cfg.telemetry.metrics = &metrics;
    serve::Scheduler sched(cfg);
    serve::JobSpec spec;
    spec.name = "solo";
    spec.network = net::buildAlexNet(128);
    spec.iterations = 2;
    serve::JobId id = sched.submit(std::move(spec));
    serve::ServeReport rep = sched.run();
    ASSERT_EQ(rep.finishedCount(), 1);

    // Every kernel completion landed on the timeline, and the counter
    // agrees with the event stream.
    int kernels = countEvents(trace, 'X', "kernel");
    EXPECT_GT(kernels, 0);
    EXPECT_DOUBLE_EQ(metrics.counter("gpu0.kernels").value(),
                     double(kernels));
    // DMA spans and byte counters moved together.
    EXPECT_GT(countEvents(trace, 'X', "dma"), 0);
    EXPECT_GT(metrics.counter("gpu0.dma_d2h_bytes").value(), 0.0);
    // One iteration span per completed iteration, in time order.
    std::vector<TimeNs> iter_starts;
    for (const obs::TraceEvent &e : trace.events()) {
        if (e.phase == 'X' && std::string(e.cat) == "iteration")
            iter_starts.push_back(e.ts);
    }
    ASSERT_EQ(iter_starts.size(), 2u);
    EXPECT_LT(iter_starts[0], iter_starts[1]);
    EXPECT_DOUBLE_EQ(metrics.counter("exec.iterations").value(), 2.0);
    // Scheduler decisions: admit, profile, finish — on tenant lane id.
    EXPECT_GE(countEvents(trace, 'i', "sched"), 3);
    for (const obs::TraceEvent &e : trace.events()) {
        if (std::string(e.cat) == "sched") {
            EXPECT_EQ(e.tid, id);
        }
    }
    EXPECT_DOUBLE_EQ(metrics.counter("sched.admissions").value(), 1.0);
    EXPECT_DOUBLE_EQ(metrics.counter("sched.profiled_updates").value(),
                     1.0);
}

TEST(Telemetry, PreemptionFlowConnectsVictimAndBeneficiary)
{
    // Two Baseline VGG-16 (64) tenants can never share the 12 GiB
    // device: the high-priority arrival evicts the incumbent, and the
    // trace must draw the arrow from victim to beneficiary.
    obs::TraceRecorder trace;
    serve::SchedulerConfig cfg;
    cfg.policy = serve::SchedPolicy::PreemptivePriority;
    cfg.telemetry.trace = &trace;
    serve::Scheduler sched(cfg);
    std::shared_ptr<const net::Network> vgg = net::buildVgg16(64);

    serve::JobSpec low;
    low.network = vgg;
    low.planner = std::make_shared<core::BaselinePlanner>();
    low.iterations = 3;
    serve::JobId low_id = sched.submit(std::move(low));

    serve::JobSpec high;
    high.network = vgg;
    high.planner = std::make_shared<core::BaselinePlanner>();
    high.priority = 10;
    high.arrival = 1 * kNsPerMs;
    high.iterations = 2;
    serve::JobId high_id = sched.submit(std::move(high));

    serve::ServeReport rep = sched.run();
    ASSERT_EQ(rep.finishedCount(), 2);
    ASSERT_EQ(rep.jobs[std::size_t(low_id)].preemptions, 1);

    const obs::TraceEvent *start = nullptr;
    const obs::TraceEvent *end = nullptr;
    for (const obs::TraceEvent &e : trace.events()) {
        if (e.phase == 's' && e.name == "preempt")
            start = &e;
        if (e.phase == 'f' && e.name == "preempt")
            end = &e;
    }
    ASSERT_NE(start, nullptr);
    ASSERT_NE(end, nullptr);
    EXPECT_EQ(start->flowId, end->flowId);
    EXPECT_EQ(start->tid, low_id);  // arrow leaves the victim...
    EXPECT_EQ(end->tid, high_id);   // ...and lands on the beneficiary
    EXPECT_LE(start->ts, end->ts);
    // Session lifecycle instants flank the arrow on the victim lane.
    bool saw_suspend = false, saw_resume = false;
    for (const obs::TraceEvent &e : trace.events()) {
        if (e.tid != low_id || std::string(e.cat) != "session")
            continue;
        saw_suspend |= e.name == "suspend";
        saw_resume |= e.name == "resume-from-evict";
    }
    EXPECT_TRUE(saw_suspend);
    EXPECT_TRUE(saw_resume);
}

TEST(Telemetry, DisabledRecorderLeavesZeroEvents)
{
    // The always-compiled hooks must be inert when the recorder is
    // disabled — the <2% bench_simspeed overhead budget depends on it.
    obs::TraceRecorder trace(/*enabled=*/false);
    obs::MetricsRegistry metrics;
    serve::SchedulerConfig cfg;
    cfg.telemetry.trace = &trace;
    cfg.telemetry.metrics = &metrics;
    serve::Scheduler sched(cfg);
    serve::JobSpec spec;
    spec.network = net::buildAlexNet(128);
    spec.iterations = 2;
    sched.submit(std::move(spec));
    serve::ServeReport rep = sched.run();
    ASSERT_EQ(rep.finishedCount(), 1);
    EXPECT_EQ(trace.eventCount(), 0u);
    // Counters still accumulate (they are registered, not traced).
    EXPECT_GT(metrics.counter("gpu0.kernels").value(), 0.0);
}
