/**
 * @file
 * Integration and property tests across the whole stack: the paper's
 * qualitative results must hold for every network in the benchmark
 * suite, and executor invariants must survive randomized network
 * shapes.
 */

#include "core/dynamic_policy.hh"
#include "core/training_session.hh"
#include "net/builders.hh"
#include "net/network_stats.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "common/units.hh"
#include "dnn/cudnn_sim.hh"
#include "gpu/gpu_spec.hh"

#include <gtest/gtest.h>

using namespace vdnn;
using namespace vdnn::core;
using namespace vdnn::literals;

namespace
{

SessionResult
run(const net::Network &network, std::shared_ptr<Planner> planner,
    bool oracle = false)
{
    SessionConfig cfg;
    cfg.planner = std::move(planner);
    cfg.oracle = oracle;
    return runSession(network, cfg);
}

std::shared_ptr<Planner>
baseM()
{
    return std::make_shared<BaselinePlanner>(
        AlgoPreference::MemoryOptimal);
}

std::shared_ptr<Planner>
baseP()
{
    return std::make_shared<BaselinePlanner>(
        AlgoPreference::PerformanceOptimal);
}

std::shared_ptr<Planner>
allM()
{
    return std::make_shared<OffloadAllPlanner>(
        AlgoPreference::MemoryOptimal);
}

std::shared_ptr<Planner>
allP()
{
    return std::make_shared<OffloadAllPlanner>(
        AlgoPreference::PerformanceOptimal);
}

std::shared_ptr<Planner>
convM()
{
    return std::make_shared<OffloadConvPlanner>(
        AlgoPreference::MemoryOptimal);
}

std::shared_ptr<Planner>
dynP()
{
    return std::make_shared<DynamicPlanner>();
}

} // namespace

// --- suite-wide qualitative results ---------------------------------------------

class SuiteTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    std::unique_ptr<net::Network>
    network() const
    {
        return net::conventionalSuite()[GetParam()].build();
    }
};

TEST_P(SuiteTest, VdnnAllMemoryOptimalTrainsEverything)
{
    auto n = network();
    auto r = run(*n, allM());
    EXPECT_TRUE(r.trainable) << n->name() << ": " << r.failReason;
}

TEST_P(SuiteTest, DynTrainsAndIsFastestVdnnVariant)
{
    auto n = network();
    auto dyn = run(*n, dynP());
    ASSERT_TRUE(dyn.trainable);
    auto all_m = run(*n, allM());
    ASSERT_TRUE(all_m.trainable);
    EXPECT_LE(dyn.featureExtractionTime, all_m.featureExtractionTime);
}

TEST_P(SuiteTest, MemoryOptimalAlgosAreSlowerButSmaller)
{
    auto n = network();
    auto m = run(*n, allM());
    auto p = run(*n, allP());
    if (!m.trainable || !p.trainable)
        GTEST_SKIP() << "configuration does not fit";
    EXPECT_LE(m.featureExtractionTime * 99,
              p.featureExtractionTime * 100 * 4); // sanity bound
    EXPECT_GE(p.featureExtractionTime, 0);
    EXPECT_LE(m.avgTotalUsage, p.avgTotalUsage);
    EXPECT_GT(m.featureExtractionTime, p.featureExtractionTime);
}

TEST_P(SuiteTest, OffloadTrafficConsistentAcrossPolicies)
{
    auto n = network();
    auto all = run(*n, allM());
    auto conv = run(*n, convM());
    ASSERT_TRUE(all.trainable);
    ASSERT_TRUE(conv.trainable);
    EXPECT_GE(all.offloadedBytesPerIter, conv.offloadedBytesPerIter);
    EXPECT_EQ(all.onDemandFetches, 0);
    EXPECT_EQ(conv.onDemandFetches, 0);
}

TEST_P(SuiteTest, AverageBelowMaxBelowCapacityWhenTrainable)
{
    auto n = network();
    for (const auto &planner : {allM(), convM(), dynP()}) {
        auto r = run(*n, planner);
        if (!r.trainable)
            continue;
        EXPECT_LE(r.avgManagedUsage, r.maxManagedUsage);
        EXPECT_LE(r.maxTotalUsage, gpu::titanXMaxwell().dramCapacity);
    }
}

INSTANTIATE_TEST_SUITE_P(ConventionalNetworks, SuiteTest,
                         ::testing::Range<std::size_t>(0, 6));

// --- headline cross-checks ------------------------------------------------------------

TEST(Integration, Vgg16b256HeadlineResult)
{
    // The abstract's flagship: 28 GB VGG-16 (256) trains on a 12 GB
    // Titan X under vDNN with bounded performance loss.
    auto n = net::buildVgg16(256);
    auto base = run(*n, baseP());
    EXPECT_FALSE(base.trainable);
    auto dyn = run(*n, dynP());
    ASSERT_TRUE(dyn.trainable);
    auto oracle = run(*n, baseP(), true);
    double loss = 1.0 - double(oracle.featureExtractionTime) /
                            double(dyn.featureExtractionTime);
    EXPECT_GT(loss, 0.0);
    EXPECT_LT(loss, 0.25); // paper: 18%
}

TEST(Integration, VeryDeepNetworksTrainOnlyWithVdnn)
{
    auto n = net::buildVggDeep(216, 32);
    auto base = run(*n, baseM());
    EXPECT_FALSE(base.trainable);
    auto dyn = run(*n, dynP());
    ASSERT_TRUE(dyn.trainable);
    // Most of the allocation lives on the host (Fig. 15).
    EXPECT_GT(dyn.hostPeakBytes, 3 * dyn.maxTotalUsage);
}

TEST(Integration, OffloadVolumeMatchesStaticAnalysis)
{
    // Fig. 12 cross-check: executed offload bytes equal the sum of
    // offload-eligible buffer sizes chosen by the plan.
    auto n = net::buildGoogLeNet(64);
    dnn::CudnnSim cudnn(gpu::titanXMaxwell());
    MemoryPlan plan =
        OffloadConvPlanner(AlgoPreference::MemoryOptimal)
            .plan(*n, PlannerContext::exclusive(cudnn.spec()));
    Bytes expected = plan.offloadedBytes(*n);
    auto r = run(*n, convM());
    EXPECT_EQ(r.offloadedBytesPerIter, expected);
}

TEST(Integration, ContentionNeverSpeedsThingsUp)
{
    auto n = net::buildVgg16(64);
    SessionConfig with;
    with.planner = allP();
    with.contention = true;
    SessionConfig without = with;
    without.contention = false;
    auto r_with = runSession(*n, with);
    auto r_without = runSession(*n, without);
    EXPECT_GE(r_with.iterationTime, r_without.iterationTime);
    // Bounded by the paper's 4.7% worst case.
    EXPECT_LE(double(r_with.iterationTime),
              double(r_without.iterationTime) * 1.047);
}

TEST(Integration, PowerRanking)
{
    // More offload traffic -> higher max power, never lower.
    auto n = net::buildVgg16(64);
    auto base = run(*n, baseM());
    auto all = run(*n, allM());
    ASSERT_TRUE(base.trainable);
    ASSERT_TRUE(all.trainable);
    EXPECT_GE(all.maxPowerW, base.maxPowerW);
    EXPECT_GT(base.avgPowerW, gpu::titanXMaxwell().idlePowerW);
}

TEST(Integration, TimelineCapturesFluctuation)
{
    auto n = net::buildVgg16(64);
    SessionConfig cfg;
    cfg.planner = allM();
    cfg.keepTimeline = true;
    auto r = runSession(*n, cfg);
    ASSERT_TRUE(r.trainable);
    // The managed-usage signal rises and falls by construction.
    ASSERT_GT(r.managedTimeline.size(), 100u);
    double max_v = 0, min_after_peak = 1e18;
    for (const auto &s : r.managedTimeline)
        max_v = std::max(max_v, s.value);
    bool seen_peak = false;
    for (const auto &s : r.managedTimeline) {
        if (s.value == max_v)
            seen_peak = true;
        if (seen_peak) {
            min_after_peak = std::min(min_after_peak, s.value);
        }
    }
    EXPECT_LT(min_after_peak, max_v / 4);
}

// --- randomized property sweep ----------------------------------------------------------

/**
 * Random linear CNNs must satisfy the executor's core invariants under
 * every policy: pool balanced after the run (checked internally via
 * VDNN_ASSERT), vDNN memory <= baseline memory, vDNN time >= oracle.
 */
class RandomNetworkTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomNetworkTest, InvariantsHoldOnRandomLinearCnn)
{
    SplitMix64 rng(GetParam());
    std::int64_t batch = 1 << rng.nextRange(0, 5);
    std::int64_t image = 16 << rng.nextRange(0, 3);
    std::int64_t channels = 8 << rng.nextRange(0, 3);
    int groups = int(rng.nextRange(1, 4));

    dnn::TensorShape in{batch, 3, image, image};
    auto network = std::make_unique<net::Network>("random", in);
    auto shape = [&]() {
        return network
            ->node(net::LayerId(network->numLayers() - 1))
            .spec.out;
    };
    dnn::TensorShape cur = in;
    for (int g = 0; g < groups; ++g) {
        int convs = int(rng.nextRange(1, 3));
        for (int i = 0; i < convs; ++i) {
            dnn::ConvParams p;
            p.outChannels = channels << g;
            p.kernelH = p.kernelW = 3;
            p.padH = p.padW = 1;
            network->append(dnn::makeConv(
                strFormat("conv%d_%d", g, i), cur, p));
            network->append(dnn::makeActivation(
                strFormat("relu%d_%d", g, i), shape()));
            cur = shape();
        }
        if (cur.h >= 4) {
            network->append(dnn::makePool(strFormat("pool%d", g), cur,
                                          dnn::PoolParams{}));
            cur = shape();
        }
    }
    network->append(dnn::makeFc("fc", cur, dnn::FcParams{10}));
    network->append(dnn::makeSoftmaxLoss("loss", shape()));
    network->finalize();

    auto oracle = run(*network, baseP(), true);
    ASSERT_TRUE(oracle.trainable);
    for (const auto &planner : {allM(), convM()}) {
        auto r = run(*network, planner);
        ASSERT_TRUE(r.trainable) << r.failReason;
        EXPECT_GE(r.featureExtractionTime,
                  oracle.featureExtractionTime);
        auto base = run(*network, baseM());
        if (base.trainable) {
            EXPECT_LE(r.avgManagedUsage, base.avgManagedUsage);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u));

// --- golden byte-identity ---------------------------------------------------

// Pins the exact simulated numbers of a fig14-style AlexNet run so
// that performance work on the event queue, dispatch tables, or
// accounting cannot silently change simulation results.  Every value
// here is a deterministic function of the model; a legitimate
// behavioral change must update these constants deliberately.
TEST(Golden, AlexNetOffloadAllExactValues)
{
    auto network = net::buildAlexNet(128);
    SessionResult r = run(*network, allM());
    ASSERT_TRUE(r.trainable) << r.failReason;
    EXPECT_EQ(r.iterationTime, 304848815);
    EXPECT_EQ(r.featureExtractionTime, 288575029);
    EXPECT_EQ(r.transferStallTime, 45416944);
    EXPECT_EQ(r.maxTotalUsage, 881930752);
    EXPECT_EQ(r.avgManagedUsage, 162068502);
    EXPECT_EQ(r.offloadedBytesPerIter, 541392896);
    EXPECT_EQ(r.offloads, 11);
    EXPECT_EQ(r.prefetches, 11);
}

// Same pin for the dynamic planner, which exercises the profiling
// trials and the oracle comparison path on top of the base executor.
TEST(Golden, AlexNetDynamicExactValues)
{
    auto network = net::buildAlexNet(128);
    SessionResult r = run(*network, dynP());
    ASSERT_TRUE(r.trainable) << r.failReason;
    EXPECT_EQ(r.iterationTime, 145738367);
    EXPECT_EQ(r.transferStallTime, 0);
    EXPECT_EQ(r.maxTotalUsage, 1172222464);
    EXPECT_EQ(r.offloadedBytesPerIter, 0);
}
