/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 *
 * Every bench binary follows the same shape:
 *   1. run the experiment(s) on the simulated Titan X node,
 *   2. print the paper-style table plus a paper-vs-measured comparison,
 *   3. register google-benchmark entries that re-run representative
 *      simulations so the binary doubles as a perf benchmark of the
 *      simulator itself.
 */

#ifndef VDNN_BENCH_COMMON_HH
#define VDNN_BENCH_COMMON_HH

#include "common/logging.hh"
#include "common/units.hh"
#include "core/planner.hh"
#include "core/training_session.hh"
#include "net/builders.hh"
#include "net/network_stats.hh"
#include "stats/comparison.hh"
#include "stats/table.hh"

#include <benchmark/benchmark.h>

#include <functional>
#include <string>

namespace vdnn::bench
{

/** The policy x algorithm grid of Figs. 11/12/14. */
struct PolicyPoint
{
    core::TransferPolicy policy;
    core::AlgoMode mode;
    const char *label;
};

/** all/conv x (m)/(p), dyn, base x (m)/(p) — the paper's column order. */
const std::vector<PolicyPoint> &figurePolicyGrid();

/**
 * Run one (network, policy, mode) session on the default Titan X node.
 * Resolved through the Planner API (plannerForPolicy), so every figure
 * bench exercises the same path new planners use.
 */
core::SessionResult runPoint(const net::Network &net,
                             core::TransferPolicy policy,
                             core::AlgoMode mode, bool oracle = false);

/** Run one session under an explicit planner on the Titan X node. */
core::SessionResult runPlanner(const net::Network &net,
                               std::shared_ptr<core::Planner> planner,
                               bool oracle = false);

/**
 * Register a google-benchmark that executes @p fn once per iteration.
 * The simulation is deterministic, so a single iteration suffices.
 */
void registerSim(const std::string &name, std::function<void()> fn);

/** Standard bench main body: print tables, then run the registry. */
int benchMain(int argc, char **argv, std::function<void()> report);

} // namespace vdnn::bench

#endif // VDNN_BENCH_COMMON_HH
