/**
 * @file
 * Headline claims of the abstract and introduction, cross-checked
 * end to end:
 *
 *  - vDNN reduces the average GPU memory usage of AlexNet by up to
 *    89%, OverFeat by 91%, and GoogLeNet by 95%;
 *  - VGG-16 (256), a 28 GB workload, trains on a single 12 GB card
 *    with 18% performance loss versus an oracular GPU;
 *  - the baseline fails 6 of the 10 studied DNNs (14-67 GB needed);
 *  - vDNN cuts the average usage of those six memory-hungry networks
 *    by 73%-98%.
 */

#include "bench_common.hh"

#include "common/units.hh"
#include "dnn/cudnn_sim.hh"
#include "gpu/gpu_spec.hh"

using namespace vdnn;
using namespace vdnn::bench;

namespace
{

/** Best average-usage savings of vDNN_all over the best baseline. */
double
bestAvgSavings(const net::Network &network)
{
    auto base_p = runPlanner(network, baselinePlanner(core::AlgoPreference::PerformanceOptimal));
    auto base = base_p.trainable
                    ? base_p
                    : runPlanner(network, baselinePlanner(core::AlgoPreference::PerformanceOptimal), /*oracle=*/true);
    auto all_m = runPlanner(network, offloadAllPlanner(core::AlgoPreference::MemoryOptimal));
    if (!all_m.trainable)
        return 0.0;
    return 1.0 - double(all_m.avgManagedUsage) /
                     double(base.avgManagedUsage);
}

void
report()
{
    dnn::CudnnSim cudnn(gpu::titanXMaxwell());

    // --- per-network savings -------------------------------------------------
    auto alex = net::buildAlexNet(128);
    auto over = net::buildOverFeat(128);
    auto goog = net::buildGoogLeNet(128);
    double alex_savings = bestAvgSavings(*alex);
    double over_savings = bestAvgSavings(*over);
    double goog_savings = bestAvgSavings(*goog);

    // --- VGG-16 (256) trainability and performance ---------------------------
    auto vgg256 = net::buildVgg16(256);
    auto vgg_dyn = runPlanner(*vgg256, dynamicPlanner());
    auto vgg_oracle = runPlanner(*vgg256, baselinePlanner(core::AlgoPreference::PerformanceOptimal), /*oracle=*/true);
    double vgg_loss = 1.0 - double(vgg_oracle.featureExtractionTime) /
                                double(vgg_dyn.featureExtractionTime);

    // --- trainability across the ten networks ---------------------------------
    int baseline_failures = 0;
    int vdnn_failures = 0;
    double worst_savings = 1.0;
    double best_savings = 0.0;
    stats::Table table("Headline: trainability of the ten studied DNNs");
    table.setColumns({"network", "baseline", "vDNN_dyn",
                      "vDNN_all (m) avg savings"});
    for (const auto &entry : net::fullSuite()) {
        auto network = entry.build();
        // The paper's 6-of-10 count uses the configurations frameworks
        // pick by default: performance-optimal algorithms (VGG-16
        // (128) at 15 GB counts as a failure even though the (m)
        // fallback squeaks in).
        auto base_p = runPlanner(*network, baselinePlanner(core::AlgoPreference::PerformanceOptimal));
        bool base_ok = base_p.trainable;
        auto dyn = runPlanner(*network, dynamicPlanner());
        double savings = bestAvgSavings(*network);
        if (!base_ok) {
            ++baseline_failures;
            worst_savings = std::min(worst_savings, savings);
            best_savings = std::max(best_savings, savings);
        }
        if (!dyn.trainable)
            ++vdnn_failures;
        table.addRow({entry.name, base_ok ? "trains" : "FAILS",
                      dyn.trainable ? "trains" : "FAILS",
                      stats::Table::cellPercent(savings)});
    }
    table.print();

    stats::Comparison cmp("Headline claims");
    cmp.addNumeric("AlexNet avg memory reduction (%)", 89.0,
                   100.0 * alex_savings, 0.2);
    cmp.addNumeric("OverFeat avg memory reduction (%)", 91.0,
                   100.0 * over_savings, 0.25);
    cmp.addNumeric("GoogLeNet avg memory reduction (%)", 95.0,
                   100.0 * goog_savings, 0.15);
    cmp.addBool("VGG-16 (256) trains on the 12 GB card with vDNN", true,
                vgg_dyn.trainable);
    cmp.addNumeric("VGG-16 (256) performance loss vs oracle (%)", 18.0,
                   100.0 * vgg_loss, 0.8);
    cmp.addNumeric("baseline failures among the ten DNNs", 6.0,
                   double(baseline_failures), 0.0);
    cmp.addNumeric("vDNN failures among the ten DNNs", 0.0,
                   double(vdnn_failures), 0.0);
    cmp.addBool("memory-hungry networks saved by 73-98% (>=70%)", true,
                worst_savings >= 0.70 && best_savings <= 0.99);
    cmp.addInfo("savings band over untrainable networks", "73% - 98%",
                strFormat("%.0f%% - %.0f%%", 100.0 * worst_savings,
                          100.0 * best_savings));
    cmp.print();
}

} // namespace

int
main(int argc, char **argv)
{
    registerSim("headline/dyn_over_full_suite", [] {
        for (const auto &entry : net::conventionalSuite()) {
            auto network = entry.build();
            benchmark::DoNotOptimize(
                runPlanner(*network, dynamicPlanner())
                    .trainable);
        }
    });
    return benchMain(argc, argv, report);
}
