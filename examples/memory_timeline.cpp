/**
 * @file
 * Memory timeline dump: run one iteration and emit the GPU pool usage
 * as a CSV time series (for plotting the sawtooth the vDNN policies
 * produce versus the baseline's flat line).
 *
 * Usage: memory_timeline [policy] > usage.csv
 *   policy: base | conv | all | dyn   (default all)
 */

#include "common/logging.hh"
#include "common/units.hh"
#include "core/dynamic_policy.hh"
#include "core/planner.hh"
#include "core/training_session.hh"
#include "net/builders.hh"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace vdnn;
using namespace vdnn::core;

int
main(int argc, char **argv)
{
    std::string policy_name = argc > 1 ? argv[1] : "all";
    std::shared_ptr<Planner> planner;
    if (policy_name == "base") {
        planner = std::make_shared<BaselinePlanner>(
            AlgoPreference::MemoryOptimal);
    } else if (policy_name == "conv") {
        planner = std::make_shared<OffloadConvPlanner>();
    } else if (policy_name == "all") {
        planner = std::make_shared<OffloadAllPlanner>();
    } else if (policy_name == "dyn") {
        planner = std::make_shared<DynamicPlanner>();
    } else {
        fatal("unknown policy '%s'", policy_name.c_str());
    }

    auto network = net::buildVgg16(64);
    SessionConfig cfg;
    cfg.planner = planner;
    cfg.iterations = 1;
    cfg.keepTimeline = true;
    auto r = runSession(*network, cfg);
    if (!r.trainable) {
        std::fprintf(stderr, "cannot train: %s\n", r.failReason.c_str());
        return 1;
    }

    std::printf("# %s under %s on Titan X; usage in MiB, time in ms\n",
                network->name().c_str(), planner->name().c_str());
    std::printf("time_ms,total_mib,managed_mib\n");
    // Merge the two signals on the total-usage change points.
    std::size_t mi = 0;
    double managed = 0.0;
    for (const auto &s : r.totalTimeline) {
        while (mi < r.managedTimeline.size() &&
               r.managedTimeline[mi].when <= s.when) {
            managed = r.managedTimeline[mi].value;
            ++mi;
        }
        std::printf("%.3f,%.1f,%.1f\n", toMs(s.when),
                    s.value / double(kMiB), managed / double(kMiB));
    }
    std::fprintf(stderr,
                 "%zu samples; peak %.0f MiB, average %.0f MiB\n",
                 r.totalTimeline.size(), toMiB(r.maxTotalUsage),
                 toMiB(r.avgTotalUsage));
    return 0;
}
