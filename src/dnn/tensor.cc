#include "dnn/tensor.hh"

#include "common/logging.hh"

namespace vdnn::dnn
{

std::string
TensorShape::str() const
{
    return strFormat("%lldx%lldx%lldx%lld", (long long)n, (long long)c,
                     (long long)h, (long long)w);
}

} // namespace vdnn::dnn
